// Interpolation tests: kernel exactness (tricubic reproduces cubic
// polynomials, trilinear reproduces linear ones), convergence order on
// smooth fields, the distributed scatter-phase plan against serial
// evaluation — including points that left the owner's pencil (large CFL) —
// plus the caching contract: batched == sequential bitwise, fixed exchange
// counts per plan operation, and allocation-free steady-state interpolation.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <new>
#include <random>
#include <span>
#include <utility>

#include "grid/field_io.hpp"
#include "interp/interp_plan.hpp"
#include "interp/kernels.hpp"
#include "mpisim/communicator.hpp"

// Global allocation counter backing the zero-allocation assertions below.
// Replacing the global operator new/delete pair is the only portable way to
// observe heap traffic; counting is gated so the rest of the suite pays one
// relaxed atomic load per allocation.
namespace {
std::atomic<long long> g_alloc_count{0};
std::atomic<bool> g_count_allocs{false};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed))
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

// GCC pairs the std::free here with the replaced operator new above and
// (wrongly) reports a mismatched allocation function when both ends inline
// into the same caller; the pair is malloc/free by construction. The
// suppression is push/pop-scoped to these two definitions so a genuine
// mismatch elsewhere in the file still warns.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace diffreg::interp {
namespace {

TEST(CubicWeights, PartitionOfUnity) {
  for (real_t t : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999}) {
    real_t w[4];
    cubic_weights(t, w);
    EXPECT_NEAR(w[0] + w[1] + w[2] + w[3], 1.0, 1e-14) << "t=" << t;
  }
}

TEST(CubicWeights, InterpolatesNodesExactly) {
  real_t w[4];
  cubic_weights(0.0, w);  // at node 0
  EXPECT_NEAR(w[0], 0.0, 1e-14);
  EXPECT_NEAR(w[1], 1.0, 1e-14);
  EXPECT_NEAR(w[2], 0.0, 1e-14);
  EXPECT_NEAR(w[3], 0.0, 1e-14);
}

TEST(CubicWeights, ReproducesCubicIn1d) {
  // Nodes at -1, 0, 1, 2 with values of q(s) = 2 s^3 - s^2 + 3 s - 4.
  auto q = [](real_t s) { return 2 * s * s * s - s * s + 3 * s - 4; };
  for (real_t t : {0.05, 0.3, 0.62, 0.97}) {
    real_t w[4];
    cubic_weights(t, w);
    const real_t got =
        w[0] * q(-1) + w[1] * q(0) + w[2] * q(1) + w[3] * q(2);
    EXPECT_NEAR(got, q(t), 1e-12);
  }
}

/// Builds a small dense block filled from f(i1, i2, i3) in index space.
template <typename F>
std::vector<real_t> index_block(const Int3& dims, F&& f) {
  std::vector<real_t> g(dims.prod());
  for (index_t a = 0; a < dims[0]; ++a)
    for (index_t b = 0; b < dims[1]; ++b)
      for (index_t c = 0; c < dims[2]; ++c)
        g[linear_index(a, b, c, dims)] = f(static_cast<real_t>(a),
                                           static_cast<real_t>(b),
                                           static_cast<real_t>(c));
  return g;
}

TEST(TricubicKernel, ExactOnTriCubicPolynomials) {
  const Int3 dims{8, 8, 8};
  auto poly = [](real_t a, real_t b, real_t c) {
    return 0.5 * a * a * a - a * b * c + 2 * b * b - c * c * c / 3 + a - 7;
  };
  const auto g = index_block(dims, poly);
  std::mt19937 rng(5);
  std::uniform_real_distribution<real_t> dist(1.0, 5.0);
  for (int trial = 0; trial < 50; ++trial) {
    const real_t u1 = dist(rng), u2 = dist(rng), u3 = dist(rng);
    EXPECT_NEAR(tricubic_eval(g.data(), dims, u1, u2, u3), poly(u1, u2, u3),
                1e-10);
  }
}

TEST(TrilinearKernel, ExactOnTriLinearPolynomials) {
  const Int3 dims{6, 6, 6};
  auto poly = [](real_t a, real_t b, real_t c) {
    return 2 * a - 3 * b + 0.5 * c + a * b - b * c + a * c + a * b * c + 1;
  };
  const auto g = index_block(dims, poly);
  std::mt19937 rng(6);
  std::uniform_real_distribution<real_t> dist(0.0, 4.5);
  for (int trial = 0; trial < 50; ++trial) {
    const real_t u1 = dist(rng), u2 = dist(rng), u3 = dist(rng);
    EXPECT_NEAR(trilinear_eval(g.data(), dims, u1, u2, u3), poly(u1, u2, u3),
                1e-11);
  }
}

TEST(TricubicKernel, FourthOrderConvergenceOnSmoothField) {
  // Interpolate sin(2*pi*x) sampled on grids of spacing h and h/2 at the
  // same physical points; error must drop by about 2^4.
  auto run = [](index_t n) {
    const Int3 dims{n + 4, n + 4, 4};  // padded in the first axis
    std::vector<real_t> g(dims.prod());
    const real_t h = 1.0 / static_cast<real_t>(n);
    for (index_t a = 0; a < dims[0]; ++a)
      for (index_t b = 0; b < dims[1]; ++b)
        for (index_t c = 0; c < dims[2]; ++c)
          g[linear_index(a, b, c, dims)] =
              std::sin(kTwoPi * (a - 2) * h);
    real_t max_err = 0;
    for (int k = 0; k < 40; ++k) {
      const real_t x = 0.012 + 0.97 * k / 40.0;  // physical in [0,1)
      const real_t u1 = x / h + 2;
      const real_t got = tricubic_eval(g.data(), dims, u1, 3.3, 1.6);
      max_err = std::max(max_err, std::abs(got - std::sin(kTwoPi * x)));
    }
    return max_err;
  };
  const real_t e1 = run(16);
  const real_t e2 = run(32);
  EXPECT_GT(e1 / e2, 10.0) << "expected ~16x error reduction";
}

TEST(TrilinearKernel, SecondOrderConvergenceOnSmoothField) {
  auto run = [](index_t n) {
    const Int3 dims{n + 4, 4, 4};
    std::vector<real_t> g(dims.prod());
    const real_t h = 1.0 / static_cast<real_t>(n);
    for (index_t a = 0; a < dims[0]; ++a)
      for (index_t b = 0; b < dims[1]; ++b)
        for (index_t c = 0; c < dims[2]; ++c)
          g[linear_index(a, b, c, dims)] = std::sin(kTwoPi * (a - 2) * h);
    real_t max_err = 0;
    for (int k = 0; k < 40; ++k) {
      const real_t x = 0.012 + 0.97 * k / 40.0;
      const real_t got =
          trilinear_eval(g.data(), dims, x / h + 2, 1.5, 1.5);
      max_err = std::max(max_err, std::abs(got - std::sin(kTwoPi * x)));
    }
    return max_err;
  };
  const real_t ratio = run(16) / run(32);
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 6.0);  // second order, not fourth
}

// --------------------------------------------------------------------------
// Distributed plan.

struct PlanCase {
  Int3 dims;
  int p1, p2;
};

class PlanSweep : public ::testing::TestWithParam<PlanCase> {};

TEST_P(PlanSweep, MatchesAnalyticSmoothFunction) {
  const auto [dims, p1, p2] = GetParam();
  auto f_analytic = [](const Vec3& x) {
    return std::sin(x[0]) * std::cos(x[1]) + std::sin(2 * x[2]);
  };
  // Deterministic query points, including some far outside [0, 2*pi)^3.
  std::vector<Vec3> points;
  std::mt19937 rng(77);
  std::uniform_real_distribution<real_t> dist(-2 * kTwoPi, 3 * kTwoPi);
  for (int k = 0; k < 200; ++k)
    points.push_back({dist(rng), dist(rng), dist(rng)});

  mpisim::run_spmd(p1 * p2, [&, dims = dims, p1 = p1,
                             p2 = p2](mpisim::Communicator& comm) {
    grid::PencilDecomp decomp(comm, dims, p1, p2);
    // Each rank queries a distinct slice of the points.
    const BlockRange my =
        block_range(static_cast<index_t>(points.size()), comm.size(),
                    comm.rank());
    std::vector<Vec3> mine(points.begin() + my.begin,
                           points.begin() + my.end);

    // Field sampled on the grid.
    const Int3 ld = decomp.local_real_dims();
    grid::ScalarField field(decomp.local_real_size());
    const real_t h1 = kTwoPi / dims[0], h2 = kTwoPi / dims[1],
                 h3 = kTwoPi / dims[2];
    index_t idx = 0;
    for (index_t a = 0; a < ld[0]; ++a)
      for (index_t b = 0; b < ld[1]; ++b)
        for (index_t c = 0; c < ld[2]; ++c, ++idx)
          field[idx] = f_analytic({(decomp.range1().begin + a) * h1,
                                   (decomp.range2().begin + b) * h2, c * h3});

    grid::GhostExchange gx(decomp, kGhostWidth);
    InterpPlan plan(decomp, mine);
    std::vector<real_t> out(mine.size());
    plan.interpolate(gx, field, out);

    const real_t h = std::max({h1, h2, h3});
    const real_t tol = 12 * h * h * h * h;  // O(h^4) with a safety factor
    for (size_t k = 0; k < mine.size(); ++k)
      EXPECT_NEAR(out[k], f_analytic(mine[k]), tol) << "point " << k;
  });
}

TEST_P(PlanSweep, GridPointsReproduceExactly) {
  // Querying exactly at grid nodes must return the nodal values.
  const auto [dims, p1, p2] = GetParam();
  mpisim::run_spmd(p1 * p2, [&, dims = dims, p1 = p1,
                             p2 = p2](mpisim::Communicator& comm) {
    grid::PencilDecomp decomp(comm, dims, p1, p2);
    const real_t h1 = kTwoPi / dims[0], h2 = kTwoPi / dims[1],
                 h3 = kTwoPi / dims[2];
    // Query a few nodes owned by *other* ranks to exercise the exchange.
    std::vector<Vec3> pts;
    std::vector<real_t> expected;
    for (index_t k = 0; k < 20; ++k) {
      const index_t g1 = (7 * k + comm.rank()) % dims[0];
      const index_t g2 = (3 * k + 2 * comm.rank()) % dims[1];
      const index_t g3 = (5 * k) % dims[2];
      pts.push_back({g1 * h1, g2 * h2, g3 * h3});
      expected.push_back(std::sin(g1 * h1 + 2 * g2 * h2) + std::cos(g3 * h3));
    }
    grid::ScalarField field(decomp.local_real_size());
    const Int3 ld = decomp.local_real_dims();
    index_t idx = 0;
    for (index_t a = 0; a < ld[0]; ++a)
      for (index_t b = 0; b < ld[1]; ++b)
        for (index_t c = 0; c < ld[2]; ++c, ++idx)
          field[idx] = std::sin((decomp.range1().begin + a) * h1 +
                                2 * ((decomp.range2().begin + b) * h2)) +
                       std::cos(c * h3);
    grid::GhostExchange gx(decomp, kGhostWidth);
    InterpPlan plan(decomp, pts);
    std::vector<real_t> out(pts.size());
    plan.interpolate(gx, field, out);
    for (size_t k = 0; k < pts.size(); ++k)
      EXPECT_NEAR(out[k], expected[k], 1e-12);
  });
}

TEST_P(PlanSweep, DecompositionInvariance) {
  // The same query must give bit-identical answers for p = 1 and p > 1:
  // each point is evaluated by exactly one rank with the same stencil.
  const auto [dims, p1, p2] = GetParam();
  auto field_fn = [](const Vec3& x) {
    return std::cos(x[0]) * std::sin(2 * x[1]) * std::cos(x[2]);
  };
  std::vector<Vec3> points;
  std::mt19937 rng(123);
  std::uniform_real_distribution<real_t> dist(0, kTwoPi);
  for (int k = 0; k < 100; ++k)
    points.push_back({dist(rng), dist(rng), dist(rng)});

  auto run_with = [&](int q1, int q2) {
    std::vector<real_t> result(points.size());
    mpisim::run_spmd(q1 * q2, [&](mpisim::Communicator& comm) {
      grid::PencilDecomp decomp(comm, dims, q1, q2);
      grid::ScalarField field(decomp.local_real_size());
      const Int3 ld = decomp.local_real_dims();
      const real_t h1 = kTwoPi / dims[0], h2 = kTwoPi / dims[1],
                   h3 = kTwoPi / dims[2];
      index_t idx = 0;
      for (index_t a = 0; a < ld[0]; ++a)
        for (index_t b = 0; b < ld[1]; ++b)
          for (index_t c = 0; c < ld[2]; ++c, ++idx)
            field[idx] = field_fn({(decomp.range1().begin + a) * h1,
                                   (decomp.range2().begin + b) * h2, c * h3});
      grid::GhostExchange gx(decomp, kGhostWidth);
      // Rank 0 queries everything; others query nothing.
      std::vector<Vec3> mine = comm.is_root() ? points : std::vector<Vec3>{};
      InterpPlan plan(decomp, mine);
      std::vector<real_t> out(mine.size());
      plan.interpolate(gx, field, out);
      if (comm.is_root()) result = out;
    });
    return result;
  };

  const auto serial = run_with(1, 1);
  const auto parallel = run_with(p1, p2);
  for (size_t k = 0; k < points.size(); ++k)
    EXPECT_NEAR(parallel[k], serial[k], 1e-13);
}

TEST_P(PlanSweep, PlanReuseIsDeterministic) {
  const auto [dims, p1, p2] = GetParam();
  mpisim::run_spmd(p1 * p2, [&, dims = dims, p1 = p1,
                             p2 = p2](mpisim::Communicator& comm) {
    grid::PencilDecomp decomp(comm, dims, p1, p2);
    grid::ScalarField field(decomp.local_real_size());
    for (size_t i = 0; i < field.size(); ++i)
      field[i] = static_cast<real_t>((i * 2654435761u) % 1000) / 1000;
    std::vector<Vec3> pts = {{0.3, 1.2, 4.4}, {5.9, 0.1, 2.2}};
    grid::GhostExchange gx(decomp, kGhostWidth);
    InterpPlan plan(decomp, pts);
    std::vector<real_t> out1(pts.size()), out2(pts.size());
    plan.interpolate(gx, field, out1);
    plan.interpolate(gx, field, out2);
    for (size_t k = 0; k < pts.size(); ++k)
      EXPECT_DOUBLE_EQ(out1[k], out2[k]);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlanSweep,
    ::testing::Values(PlanCase{{16, 16, 16}, 1, 1},
                      PlanCase{{16, 16, 16}, 2, 2},
                      PlanCase{{16, 16, 16}, 1, 4},
                      PlanCase{{16, 12, 10}, 2, 3},
                      PlanCase{{18, 14, 16}, 2, 2}));

TEST(InterpPlan, VectorFieldInterpolation) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    grid::PencilDecomp decomp(comm, {16, 16, 16});
    grid::VectorField v(decomp.local_real_size());
    const Int3 ld = decomp.local_real_dims();
    const real_t h = kTwoPi / 16;
    index_t idx = 0;
    for (index_t a = 0; a < ld[0]; ++a)
      for (index_t b = 0; b < ld[1]; ++b)
        for (index_t c = 0; c < ld[2]; ++c, ++idx) {
          const real_t x1 = (decomp.range1().begin + a) * h;
          v[0][idx] = std::sin(x1);
          v[1][idx] = std::cos(x1);
          v[2][idx] = 2 * std::sin(x1);
        }
    std::vector<Vec3> pts = {{1.0, 2.0, 3.0}, {4.5, 0.5, 5.5}};
    grid::GhostExchange gx(decomp, kGhostWidth);
    InterpPlan plan(decomp, pts);
    std::vector<Vec3> out;
    plan.interpolate_vec(gx, v, out);
    ASSERT_EQ(out.size(), pts.size());
    for (size_t k = 0; k < pts.size(); ++k) {
      EXPECT_NEAR(out[k][0], std::sin(pts[k][0]), 2e-3);
      EXPECT_NEAR(out[k][1], std::cos(pts[k][0]), 2e-3);
      EXPECT_NEAR(out[k][2], 2 * std::sin(pts[k][0]), 4e-3);
    }
  });
}

TEST(InterpPlan, PointsJustBelowThePeriodStayInBoundsAndWrap) {
  // Regression: h = 2*pi/n is a rounded double, so wrap(x)/h could land on
  // exactly n for points just below the period. That misclassified the
  // owning rank (periodic_index(n, n) = 0 sends the point to the rank
  // owning column 0, whose ghosted block it lies far outside) and pushed
  // the 4-point stencil one cell past the ghosted block — a silent
  // out-of-bounds read. periodic_grid_units folds such coordinates back
  // into [0, n).
  for (int p : {1, 2, 3}) {
    mpisim::run_spmd(p, [&](mpisim::Communicator& comm) {
      for (index_t n : {index_t(8), index_t(12), index_t(24)}) {
        grid::PencilDecomp decomp(comm, {n, n, n});
        const Int3 ld = decomp.local_real_dims();
        const real_t h = kTwoPi / n;
        grid::ScalarField field(decomp.local_real_size());
        index_t idx = 0;
        for (index_t a = 0; a < ld[0]; ++a)
          for (index_t b = 0; b < ld[1]; ++b)
            for (index_t c = 0; c < ld[2]; ++c, ++idx)
              field[idx] = std::cos((decomp.range1().begin + a) * h) +
                           std::sin(c * h);
        // Adversarial coordinates: every rounding neighbourhood of the
        // period, including n*h itself (which exceeds or undershoots 2*pi
        // by rounding) and exact multiples that may divide back to n.
        std::vector<real_t> edges = {
            real_t(0),
            std::nextafter(kTwoPi, real_t(0)),
            std::nextafter(std::nextafter(kTwoPi, real_t(0)), real_t(0)),
            n * h,
            std::nextafter(n * h, real_t(0)),
            -std::numeric_limits<real_t>::denorm_min(),
            kTwoPi - 1e-15,
            kTwoPi - 1e-14};
        std::vector<Vec3> pts;
        for (real_t e1 : edges)
          for (real_t e3 : edges) pts.push_back({e1, real_t(0.5), e3});
        grid::GhostExchange gx(decomp, kGhostWidth);
        InterpPlan plan(decomp, pts);
        std::vector<real_t> out(pts.size());
        plan.interpolate(gx, field, out);
        for (size_t k = 0; k < pts.size(); ++k)
          ASSERT_NEAR(out[k], 1.0, 5e-3)  // cos(0) + sin(0/2pi) = 1
              << "p=" << p << " n=" << n << " k=" << k;
      }
    });
  }
}

TEST(InterpPlan, BatchedMatchesSequentialBitwise) {
  // interpolate_many must produce bit-identical values to one interpolate
  // per field: same stencils, same evaluation order per point.
  mpisim::run_spmd(4, [&](mpisim::Communicator& comm) {
    grid::PencilDecomp decomp(comm, {16, 12, 10}, 2, 2);
    const index_t n = decomp.local_real_size();
    constexpr int kFields = 3;
    std::array<grid::ScalarField, kFields> fields;
    for (int f = 0; f < kFields; ++f) {
      fields[f].resize(n);
      for (index_t i = 0; i < n; ++i)
        fields[f][i] =
            static_cast<real_t>(((i + 7 * f) * 2654435761u) % 1000) / 1000;
    }
    std::vector<Vec3> pts;
    std::mt19937 rng(31 + comm.rank());
    std::uniform_real_distribution<real_t> dist(0, kTwoPi);
    for (int k = 0; k < 60; ++k)
      pts.push_back({dist(rng), dist(rng), dist(rng)});

    grid::GhostExchange gx(decomp, kGhostWidth);
    InterpPlan plan(decomp, pts);

    std::array<std::vector<real_t>, kFields> seq, bat;
    for (int f = 0; f < kFields; ++f) {
      seq[f].resize(pts.size());
      bat[f].resize(pts.size());
      plan.interpolate(gx, fields[f], seq[f]);
    }
    const real_t* in[kFields] = {fields[0].data(), fields[1].data(),
                                 fields[2].data()};
    real_t* out[kFields] = {bat[0].data(), bat[1].data(), bat[2].data()};
    plan.interpolate_many(gx, std::span<const real_t* const>(in, kFields),
                          std::span<real_t* const>(out, kFields));
    for (int f = 0; f < kFields; ++f)
      for (size_t k = 0; k < pts.size(); ++k)
        ASSERT_EQ(seq[f][k], bat[f][k]) << "field " << f << " point " << k;
  });
}

TEST(InterpPlan, RebuildWithSamePointsIsBitwiseDeterministic) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    grid::PencilDecomp decomp(comm, {16, 16, 16});
    grid::ScalarField field(decomp.local_real_size());
    for (size_t i = 0; i < field.size(); ++i)
      field[i] = static_cast<real_t>((i * 2654435761u) % 1000) / 1000;
    std::vector<Vec3> pts = {{0.3, 1.2, 4.4}, {5.9, 0.1, 2.2},
                             {2.5, 3.3, 0.7}};
    grid::GhostExchange gx(decomp, kGhostWidth);
    InterpPlan plan(decomp, pts);
    std::vector<real_t> out1(pts.size()), out2(pts.size());
    plan.interpolate(gx, field, out1);
    plan.build(pts);  // rebuild with identical points
    plan.interpolate(gx, field, out2);
    EXPECT_EQ(plan.build_count(), 2);
    for (size_t k = 0; k < pts.size(); ++k) ASSERT_EQ(out1[k], out2[k]);
  });
}

TEST(InterpPlan, ExchangeCountsAreFixedPerOperation) {
  // The comm schedule of the plan: 2 collective exchanges per build (counts
  // alltoall + coordinate alltoallv), 1 per interpolate, and 1 per
  // interpolate_many REGARDLESS of the batch size. p covers 1, 2, 4, 6.
  for (int p : {1, 2, 4, 6}) {
    mpisim::run_spmd(p, [&](mpisim::Communicator& comm) {
      grid::PencilDecomp decomp(comm, {18, 12, 16});
      const index_t n = decomp.local_real_size();
      grid::ScalarField f0(n, 1.0), f1(n, 2.0), f2(n, 3.0);
      std::vector<real_t> o0(5), o1(5), o2(5);
      std::vector<Vec3> pts;
      for (int k = 0; k < 5; ++k)
        pts.push_back({0.5 + k + 0.1 * comm.rank(), 1.0 + k, 2.0 + k});
      grid::GhostExchange gx(decomp, kGhostWidth);

      comm.timings().clear();
      InterpPlan plan(decomp, pts);
      EXPECT_EQ(comm.timings().exchanges(TimeKind::kInterpComm), 2u)
          << "p=" << p;
      plan.interpolate(gx, f0, o0);
      EXPECT_EQ(comm.timings().exchanges(TimeKind::kInterpComm), 3u)
          << "p=" << p;
      const real_t* in[3] = {f0.data(), f1.data(), f2.data()};
      real_t* out[3] = {o0.data(), o1.data(), o2.data()};
      plan.interpolate_many(gx, std::span<const real_t* const>(in, 3),
                            std::span<real_t* const>(out, 3));
      EXPECT_EQ(comm.timings().exchanges(TimeKind::kInterpComm), 4u)
          << "p=" << p;
    });
  }
}

TEST(InterpPlan, Fp32WireValuesMatchFp64WithinRounding) {
  // fp32-wire vs fp64-wire interpolation (mixed-precision contract):
  // identical plans and stencils — the coordinate exchange stays fp64 — so
  // the returned values differ only by the fp32 value-scatter rounding
  // (relative error <= 1e-6), with the same message schedule at roughly
  // half the value bytes.
  for (int p : {1, 2, 4, 6}) {
    mpisim::run_spmd(p, [&](mpisim::Communicator& comm) {
      grid::PencilDecomp decomp(comm, {16, 16, 16});
      const index_t n = decomp.local_real_size();
      grid::ScalarField f(n);
      for (index_t i = 0; i < n; ++i)
        f[i] = 0.5 + 0.3 * std::sin(0.37 * static_cast<real_t>(i));

      // Same per-rank points for both plans (rank-salted, deterministic).
      std::vector<Vec3> pts;
      std::mt19937 rng(101 + comm.rank());
      std::uniform_real_distribution<real_t> dist(0, kTwoPi);
      for (int k = 0; k < 150; ++k)
        pts.push_back({dist(rng), dist(rng), dist(rng)});

      grid::GhostExchange gx64(decomp, kGhostWidth);
      grid::GhostExchange gx32(decomp, kGhostWidth, TimeKind::kInterpComm,
                               WirePrecision::kF32);
      InterpPlan plan64(decomp, pts);
      InterpPlan plan32(decomp, pts, WirePrecision::kF32);

      std::vector<real_t> out64(pts.size()), out32(pts.size());
      const Timings before = comm.timings();
      plan64.interpolate(gx64, f, out64);
      const Timings mid = comm.timings();
      plan32.interpolate(gx32, f, out32);
      const Timings d64 = timings_delta(before, mid);
      const Timings d32 = timings_delta(mid, comm.timings());

      for (size_t i = 0; i < pts.size(); ++i)
        ASSERT_NEAR(out32[i], out64[i], 1e-6 * (1 + std::abs(out64[i])))
            << "p=" << p << " i=" << i;

      EXPECT_EQ(d64.messages(TimeKind::kInterpComm),
                d32.messages(TimeKind::kInterpComm));
      EXPECT_EQ(d64.exchanges(TimeKind::kInterpComm),
                d32.exchanges(TimeKind::kInterpComm));
      EXPECT_EQ(d64.bytes(TimeKind::kInterpComm) -
                    d32.bytes(TimeKind::kInterpComm),
                d32.saved_bytes(TimeKind::kInterpComm));
      if (p > 1) {
        EXPECT_GT(d32.saved_bytes(TimeKind::kInterpComm), 0u) << "p=" << p;
      }
    });
  }
}

TEST(InterpPlan, Fp32WireWarmInterpolationIsAllocationFree) {
  // Mirror of SteadyStateInterpolationIsAllocationFree for the mixed wire:
  // the fp32 staging buffers are plan-owned and presized, so a warm
  // fp32-wire matvec-path interpolation performs zero heap allocations.
  mpisim::run_spmd(1, [&](mpisim::Communicator& comm) {
    grid::PencilDecomp decomp(comm, {16, 16, 16});
    const index_t n = decomp.local_real_size();
    grid::ScalarField fa(n), fb(n), fc(n);
    for (index_t i = 0; i < n; ++i) {
      fa[i] = static_cast<real_t>((i * 2654435761u) % 1000) / 1000;
      fb[i] = fa[i] * 0.5 + 0.1;
      fc[i] = fa[i] * fa[i];
    }
    std::vector<Vec3> pts;
    std::mt19937 rng(13);
    std::uniform_real_distribution<real_t> dist(0, kTwoPi);
    for (int k = 0; k < 200; ++k)
      pts.push_back({dist(rng), dist(rng), dist(rng)});
    std::vector<real_t> oa(pts.size()), ob(pts.size()), oc(pts.size());
    const real_t* in[3] = {fa.data(), fb.data(), fc.data()};
    real_t* out[3] = {oa.data(), ob.data(), oc.data()};

    grid::GhostExchange gx(decomp, kGhostWidth, TimeKind::kInterpComm,
                           WirePrecision::kF32);
    InterpPlan plan(decomp, pts, WirePrecision::kF32);
    plan.interpolate(gx, fa, oa);  // warm-up
    plan.interpolate_many(gx, std::span<const real_t* const>(in, 3),
                          std::span<real_t* const>(out, 3));

    g_alloc_count.store(0);
    g_count_allocs.store(true);
    plan.interpolate(gx, fa, oa);
    const long long single = g_alloc_count.exchange(0);
    plan.interpolate_many(gx, std::span<const real_t* const>(in, 3),
                          std::span<real_t* const>(out, 3));
    const long long many = g_alloc_count.exchange(0);
    plan.build(pts);
    const long long rebuild = g_alloc_count.exchange(0);
    g_count_allocs.store(false);

    EXPECT_EQ(single, 0) << "fp32-wire interpolate allocated";
    EXPECT_EQ(many, 0) << "fp32-wire interpolate_many allocated";
    EXPECT_EQ(rebuild, 0) << "fp32-wire same-size plan rebuild allocated";
  });
}

TEST(InterpPlan, SteadyStateInterpolationIsAllocationFree) {
  // After the plan and the ghost scratch are warm, interpolate,
  // interpolate_many, and a same-size rebuild must not touch the heap
  // (single rank: the mailbox transport itself is out of the picture).
  mpisim::run_spmd(1, [&](mpisim::Communicator& comm) {
    grid::PencilDecomp decomp(comm, {16, 16, 16});
    const index_t n = decomp.local_real_size();
    grid::ScalarField fa(n), fb(n), fc(n);
    for (index_t i = 0; i < n; ++i) {
      fa[i] = static_cast<real_t>((i * 2654435761u) % 1000) / 1000;
      fb[i] = fa[i] * 0.5 + 0.1;
      fc[i] = fa[i] * fa[i];
    }
    std::vector<Vec3> pts;
    std::mt19937 rng(11);
    std::uniform_real_distribution<real_t> dist(0, kTwoPi);
    for (int k = 0; k < 200; ++k)
      pts.push_back({dist(rng), dist(rng), dist(rng)});
    std::vector<real_t> oa(pts.size()), ob(pts.size()), oc(pts.size());
    const real_t* in[3] = {fa.data(), fb.data(), fc.data()};
    real_t* out[3] = {oa.data(), ob.data(), oc.data()};

    grid::GhostExchange gx(decomp, kGhostWidth);
    InterpPlan plan(decomp, pts);
    // Warm-up: grows the ghost/value scratch once.
    plan.interpolate(gx, fa, oa);
    plan.interpolate_many(gx, std::span<const real_t* const>(in, 3),
                          std::span<real_t* const>(out, 3));

    long long single = -1, many = -1, rebuild = -1;
    g_alloc_count.store(0);
    g_count_allocs.store(true);
    plan.interpolate(gx, fa, oa);
    single = g_alloc_count.exchange(0);
    plan.interpolate_many(gx, std::span<const real_t* const>(in, 3),
                          std::span<real_t* const>(out, 3));
    many = g_alloc_count.exchange(0);
    plan.build(pts);
    rebuild = g_alloc_count.exchange(0);
    g_count_allocs.store(false);

    EXPECT_EQ(single, 0) << "interpolate allocated";
    EXPECT_EQ(many, 0) << "interpolate_many allocated";
    EXPECT_EQ(rebuild, 0) << "same-size plan rebuild allocated";
  });
}

TEST(InterpPlan, OverlapPlanMatchesBlockingBitwise) {
  // An overlap plan evaluates the SELF points under the value alltoallv
  // flight; every point uses the same stencil against the same ghosted
  // block, so the results must be bit-identical to a blocking plan and the
  // value-exchange counters must show the exact same message schedule.
  const Int3 dims{16, 14, 12};
  for (auto [p1, p2] : {std::pair{1, 1}, {2, 1}, {2, 2}, {3, 2}}) {
    for (WirePrecision wire : {WirePrecision::kF64, WirePrecision::kF32}) {
      mpisim::run_spmd(p1 * p2, [&, p1 = p1, p2 = p2](
                                    mpisim::Communicator& comm) {
        grid::PencilDecomp decomp(comm, dims, p1, p2);
        grid::ScalarField field(decomp.local_real_size());
        for (size_t i = 0; i < field.size(); ++i)
          field[i] = static_cast<real_t>((i * 2654435761u) % 1000) / 1000;
        // Points spread across ranks (cross-rank) plus near-cell offsets
        // (SELF-owned), like a semi-Lagrangian displacement field.
        std::vector<Vec3> pts;
        std::mt19937 rng(41 + comm.rank());
        std::uniform_real_distribution<real_t> dist(0, kTwoPi);
        for (int k = 0; k < 64; ++k)
          pts.push_back({dist(rng), dist(rng), dist(rng)});

        grid::GhostExchange gx(decomp, kGhostWidth);
        InterpPlan blocking(decomp, pts, wire);
        InterpPlan overlapped(decomp, pts, wire, /*overlap=*/true);
        EXPECT_TRUE(overlapped.overlap());

        std::vector<real_t> out_b(pts.size()), out_o(pts.size());
        comm.timings().clear();
        const Timings t0 = comm.timings();
        blocking.interpolate(gx, field, out_b);
        const Timings t1 = comm.timings();
        overlapped.interpolate(gx, field, out_o);
        const Timings t2 = comm.timings();

        for (size_t k = 0; k < pts.size(); ++k)
          ASSERT_EQ(out_b[k], out_o[k]) << "k=" << k;

        const Timings db = timings_delta(t0, t1);
        const Timings dn = timings_delta(t1, t2);
        EXPECT_EQ(db.exchanges(TimeKind::kInterpComm),
                  dn.exchanges(TimeKind::kInterpComm));
        EXPECT_EQ(db.messages(TimeKind::kInterpComm),
                  dn.messages(TimeKind::kInterpComm));
        EXPECT_EQ(db.bytes(TimeKind::kInterpComm),
                  dn.bytes(TimeKind::kInterpComm));
        EXPECT_EQ(db.saved_bytes(TimeKind::kInterpComm),
                  dn.saved_bytes(TimeKind::kInterpComm));
        EXPECT_EQ(db.hidden(TimeKind::kInterpComm), 0.0);
      });
    }
  }
}

TEST(InterpPlan, OverlapBatchedManyMatchesBlockingBitwise) {
  // The batched three-component path under overlap: one nonblocking value
  // exchange for the whole batch, bit-identical outputs.
  const Int3 dims{12, 12, 12};
  mpisim::run_spmd(4, [&](mpisim::Communicator& comm) {
    grid::PencilDecomp decomp(comm, dims, 2, 2);
    const index_t n = decomp.local_real_size();
    std::vector<real_t> fields[3];
    for (int c = 0; c < 3; ++c) {
      fields[c].resize(n);
      for (index_t i = 0; i < n; ++i)
        fields[c][i] =
            static_cast<real_t>(((i + 17 * c) * 2654435761u) % 997) / 997;
    }
    std::vector<Vec3> pts;
    std::mt19937 rng(7 + comm.rank());
    std::uniform_real_distribution<real_t> dist(0, kTwoPi);
    for (int k = 0; k < 50; ++k)
      pts.push_back({dist(rng), dist(rng), dist(rng)});

    grid::GhostExchange gx(decomp, kGhostWidth);
    InterpPlan blocking(decomp, pts);
    InterpPlan overlapped(decomp, pts, WirePrecision::kF64, /*overlap=*/true);
    const real_t* fptrs[3] = {fields[0].data(), fields[1].data(),
                              fields[2].data()};
    std::vector<real_t> out_b[3], out_o[3];
    real_t* optrs_b[3];
    real_t* optrs_o[3];
    for (int c = 0; c < 3; ++c) {
      out_b[c].assign(pts.size(), -1);
      out_o[c].assign(pts.size(), -1);
      optrs_b[c] = out_b[c].data();
      optrs_o[c] = out_o[c].data();
    }
    blocking.interpolate_many(gx, std::span<const real_t* const>(fptrs, 3),
                              std::span<real_t* const>(optrs_b, 3));
    overlapped.interpolate_many(gx, std::span<const real_t* const>(fptrs, 3),
                                std::span<real_t* const>(optrs_o, 3));
    for (int c = 0; c < 3; ++c)
      for (size_t k = 0; k < pts.size(); ++k)
        ASSERT_EQ(out_b[c][k], out_o[c][k]) << "c=" << c << " k=" << k;
  });
}

}  // namespace
}  // namespace diffreg::interp
