// Chaos tests of the fault-tolerant runtime: the fault-spec grammar, the
// transparency of benign perturbations (delay, checksums), and — the core
// contract — that every injected failure mode ends in a STRUCTURED error
// (CommTimeoutError / CommIntegrityError / RankCrashError) on a bounded
// clock instead of a hang or a silently wrong answer. The CI chaos job runs
// the regular suites under these same specs via DIFFREG_FAULT_SPEC.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>

#include "mpisim/backend.hpp"
#include "mpisim/communicator.hpp"
#include "mpisim/fault_injection.hpp"

namespace diffreg::mpisim {
namespace {

TEST(FaultSpec, ParsesTheFullGrammar) {
  const FaultSpec spec = FaultSpec::parse(
      "seed=7,drop=0.25,dup=0.5,truncate=0.125,bitflip=1,delay_ms=2.5,"
      "delay_prob=0.5,crash_rank=1,crash_at=40,checksum=1");
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_DOUBLE_EQ(spec.drop, 0.25);
  EXPECT_DOUBLE_EQ(spec.dup, 0.5);
  EXPECT_DOUBLE_EQ(spec.truncate, 0.125);
  EXPECT_DOUBLE_EQ(spec.bitflip, 1.0);
  EXPECT_DOUBLE_EQ(spec.delay_ms, 2.5);
  EXPECT_DOUBLE_EQ(spec.delay_prob, 0.5);
  EXPECT_EQ(spec.crash_rank, 1);
  EXPECT_EQ(spec.crash_at, 40);
  EXPECT_TRUE(spec.checksum);
  EXPECT_TRUE(spec.enabled());
  EXPECT_FALSE(FaultSpec{}.enabled());
  // Checksums alone are not a perturbation.
  EXPECT_FALSE(FaultSpec::parse("checksum=1").enabled());
  // The empty spec is valid (no faults).
  EXPECT_FALSE(FaultSpec::parse("").enabled());
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultSpec::parse("warp=0.5"), CommConfigError);
  EXPECT_THROW(FaultSpec::parse("drop=banana"), CommConfigError);
  EXPECT_THROW(FaultSpec::parse("drop=1.5"), CommConfigError);
  EXPECT_THROW(FaultSpec::parse("drop=-0.1"), CommConfigError);
  EXPECT_THROW(FaultSpec::parse("drop"), CommConfigError);
  // crash_rank without a step is a schedule with no trigger.
  EXPECT_THROW(FaultSpec::parse("crash_rank=0"), CommConfigError);
}

TEST(Chaos, DelayOnlySpecIsTransparent) {
  // Delays reorder nothing (per-pair FIFO holds) and corrupt nothing: every
  // collective must still produce exact results.
  SpmdOptions opts;
  opts.fault_spec = "seed=3,delay_ms=1,delay_prob=0.5";
  std::atomic<int> checked{0};
  run_spmd(
      4,
      [&](Communicator& comm) {
        const int sum = comm.allreduce_sum(comm.rank() + 1);
        if (sum == 1 + 2 + 3 + 4) ++checked;
        std::vector<double> data;
        if (comm.rank() == 2) data = {2.5, -1.25};
        comm.broadcast(data, 2);
        if (data == std::vector<double>{2.5, -1.25}) ++checked;
        comm.barrier();
      },
      opts);
  EXPECT_EQ(checked.load(), 8);
}

TEST(Chaos, ChecksumTrailersAreTransparentWithoutCorruption) {
  SpmdOptions opts;
  opts.wire_checksums = true;
  std::atomic<int> checked{0};
  run_spmd(
      3,
      [&](Communicator& comm) {
        const auto all = comm.allgather(index_t(10 * comm.rank()));
        if (all == std::vector<index_t>{0, 10, 20}) ++checked;
      },
      opts);
  EXPECT_EQ(checked.load(), 3);
}

TEST(Chaos, WatchdogTimesOutOnAMissingMessage) {
  // Rank 0 blocks on a receive nobody will ever send: the watchdog must
  // convert the would-be deadlock into a diagnosis naming the peer.
  SpmdOptions opts;
  opts.comm_timeout_ms = 150;
  try {
    run_spmd(
        2,
        [&](Communicator& comm) {
          if (comm.rank() == 0) comm.recv<double>(1, /*tag=*/5);
        },
        opts);
    FAIL() << "expected CommTimeoutError";
  } catch (const CommTimeoutError& e) {
    EXPECT_EQ(e.diagnosis().rank, 0);
    EXPECT_EQ(e.diagnosis().src, 1);
    EXPECT_EQ(e.diagnosis().tag, 5);
    EXPECT_GE(e.diagnosis().waited_ms, 100.0);
    const std::string what = e.what();
    EXPECT_NE(what.find("CommTimeoutError"), std::string::npos);
    EXPECT_NE(what.find("blocked in recv"), std::string::npos);
    EXPECT_NE(what.find("src=1"), std::string::npos);
  }
}

TEST(Chaos, WatchdogTimesOutOnAnAbandonedBarrier) {
  SpmdOptions opts;
  opts.comm_timeout_ms = 150;
  try {
    run_spmd(
        2,
        [&](Communicator& comm) {
          if (comm.rank() == 0) comm.barrier();  // rank 1 never joins
        },
        opts);
    FAIL() << "expected CommTimeoutError";
  } catch (const CommTimeoutError& e) {
    EXPECT_EQ(e.diagnosis().operation, "barrier");
  }
}

TEST(Chaos, WatchdogNonblockingWaitReportsTheMissingPeer) {
  // A posted receive whose peer never sends: wait() must time out with the
  // outstanding (src, tag) in the diagnosis, not block forever.
  SpmdOptions opts;
  opts.comm_timeout_ms = 150;
  std::atomic<int> diagnosed{0};
  try {
    run_spmd(
        2,
        [&](Communicator& comm) {
          if (comm.rank() == 1) return;  // never sends
          std::vector<double> a(1);
          auto req = comm.irecv_into(std::span<double>(a), 1, /*tag=*/12);
          try {
            req.wait();
          } catch (const CommTimeoutError& e) {
            if (e.diagnosis().operation == "nonblocking wait" &&
                e.diagnosis().missing ==
                    std::vector<std::pair<int, int>>{{1, 12}})
              ++diagnosed;
            throw;
          }
        },
        opts);
    FAIL() << "expected CommTimeoutError";
  } catch (const CommTimeoutError&) {
    EXPECT_EQ(diagnosed.load(), 1);
  }
}

TEST(Chaos, DroppedMessagesEndInTimeoutNotHang) {
  // drop=1 destroys every payload; the watchdog must surface the loss as a
  // structured timeout on the receiving side.
  SpmdOptions opts;
  opts.fault_spec = "seed=7,drop=1";
  opts.comm_timeout_ms = 150;
  EXPECT_THROW(run_spmd(
                   2,
                   [&](Communicator& comm) {
                     const double x = 3.5;
                     if (comm.rank() == 0)
                       comm.send(std::span<const double>(&x, 1), 1, 9);
                     else
                       comm.recv<double>(0, 9);
                   },
                   opts),
               CommTimeoutError);
}

TEST(Chaos, BitflipSurfacesAsIntegrityError) {
  SpmdOptions opts;
  opts.fault_spec = "seed=11,bitflip=1,checksum=1";
  try {
    run_spmd(
        2,
        [&](Communicator& comm) {
          const double x = 3.5;
          if (comm.rank() == 0)
            comm.send(std::span<const double>(&x, 1), 1, 9);
          else
            comm.recv<double>(0, 9);
        },
        opts);
    FAIL() << "expected CommIntegrityError";
  } catch (const CommIntegrityError& e) {
    EXPECT_EQ(e.src(), 0);
    EXPECT_EQ(e.tag(), 9);
    EXPECT_NE(std::string(e.what()).find("corrupt payload"),
              std::string::npos);
  }
}

TEST(Chaos, TruncationSurfacesAsIntegrityError) {
  SpmdOptions opts;
  opts.fault_spec = "seed=13,truncate=1,checksum=1";
  EXPECT_THROW(run_spmd(
                   2,
                   [&](Communicator& comm) {
                     const double x = 3.5;
                     if (comm.rank() == 0)
                       comm.send(std::span<const double>(&x, 1), 1, 9);
                     else
                       comm.recv<double>(0, 9);
                   },
                   opts),
               CommIntegrityError);
}

TEST(Chaos, CrashedRankEndsTheRunStructured) {
  // Rank 0 dies after its third backend operation; rank 1's watchdog kicks
  // in for whatever rank 0 never sent. The run must end in a CommError
  // (the crash itself, registered first) — never a hang.
  SpmdOptions opts;
  opts.fault_spec = "seed=1,crash_rank=0,crash_at=3";
  opts.comm_timeout_ms = 200;
  try {
    run_spmd(
        2,
        [&](Communicator& comm) {
          const double x = 1.0;
          for (int k = 0; k < 8; ++k) {
            if (comm.rank() == 0)
              comm.send(std::span<const double>(&x, 1), 1, 40 + k);
            else
              comm.recv<double>(0, 40 + k);
          }
        },
        opts);
    FAIL() << "expected a structured CommError";
  } catch (const CommError& e) {
    EXPECT_NE(std::string(e.what()).find("RankCrashError"),
              std::string::npos);
  }
}

TEST(Chaos, DropFaultsWithScheduleVerifierEndStructuredNotHung) {
  // Chaos leg of the schedule verifier: with messages being destroyed on
  // the wire AND verification on, a run must still die structured — either
  // the watchdog fires on the missing payload (CommTimeoutError) or the
  // verifier catches the resulting schedule divergence
  // (ScheduleDivergenceError). Never a hang, never a silent mispairing.
  SpmdOptions opts;
  opts.fault_spec = "seed=19,drop=0.3";
  opts.comm_timeout_ms = 150;
  opts.verify_schedule = true;
  try {
    run_spmd(
        3,
        [&](Communicator& comm) {
          std::vector<index_t> counts(3, 4);
          std::vector<double> buf(12, comm.rank()), out(12);
          for (int round = 0; round < 8; ++round) {
            comm.alltoallv(std::span<const double>(buf), counts,
                           std::span<double>(out), counts, 600 + round);
            comm.barrier();
          }
        },
        opts);
    FAIL() << "expected a structured CommError under drop faults";
  } catch (const CommTimeoutError&) {
  } catch (const ScheduleDivergenceError&) {
  }
}

TEST(Chaos, EnvironmentHooksConfigureTheDefaultRunSpmd) {
  // DIFFREG_FAULT_SPEC / DIFFREG_COMM_TIMEOUT_MS let the chaos CI job run
  // unmodified test suites under a fault schedule.
  ::setenv("DIFFREG_FAULT_SPEC", "seed=2,drop=1", 1);
  ::setenv("DIFFREG_COMM_TIMEOUT_MS", "150", 1);
  EXPECT_THROW(run_spmd(2,
                        [&](Communicator& comm) {
                          const double x = 1.0;
                          if (comm.rank() == 0)
                            comm.send(std::span<const double>(&x, 1), 1, 3);
                          else
                            comm.recv<double>(0, 3);
                        }),
               CommTimeoutError);
  ::unsetenv("DIFFREG_FAULT_SPEC");
  ::unsetenv("DIFFREG_COMM_TIMEOUT_MS");
}

TEST(Chaos, VerifyScheduleEnvironmentHookArmsTheVerifier) {
  // DIFFREG_VERIFY_SCHEDULE reruns unmodified suites under schedule
  // verification, exactly like the fault/watchdog hooks.
  ::setenv("DIFFREG_VERIFY_SCHEDULE", "1", 1);
  std::atomic<int> armed{0};
  run_spmd(2, [&](Communicator& comm) {
    if (comm.verify_schedule()) armed.fetch_add(1);
    comm.barrier();
  });
  ::unsetenv("DIFFREG_VERIFY_SCHEDULE");
  EXPECT_EQ(armed.load(), 2);
}

TEST(Chaos, SplitRendezvousHonorsTheWatchdogWhenAPeerDied) {
  // Regression: the backend's split() rendezvous used to wait on an
  // untimed barrier, so a rank that died after the collective agreement
  // (e.g. on a checksum failure) stranded the survivors forever. With the
  // watchdog armed, the lone arrival must get nullptr within the deadline
  // instead of hanging.
  auto state = std::make_shared<detail::SharedState>(2);
  MailboxBackend backend(state, 0);
  EXPECT_EQ(backend.split(/*color=*/0, /*new_rank=*/0, /*new_size=*/1,
                          /*timeout_ms=*/150),
            nullptr);
}

TEST(Chaos, PeerDeathBeforeSplitEndsInTimeoutNotHang) {
  // End-to-end version: one rank dies before ever entering split(); the
  // survivor's split must end (its timeout fires, the run rethrows the
  // first failure) instead of hanging the join. run_spmd reports the
  // first-registered error, which is the dying rank's own exception.
  SpmdOptions opts;
  opts.comm_timeout_ms = 150;
  EXPECT_ANY_THROW(run_spmd(
      2,
      [&](Communicator& comm) {
        if (comm.rank() == 1)
          throw std::runtime_error("rank 1 dies before split");
        Communicator sub = comm.split(0);
      },
      opts));
}

TEST(FaultSpec, ParsesCrashRepeat) {
  // crash_repeat keeps the rank down across recovery attempts; the default
  // crash is one-shot (a restarted rank whose retries can succeed).
  EXPECT_FALSE(
      FaultSpec::parse("crash_rank=1,crash_at=5").crash_repeat);
  EXPECT_TRUE(
      FaultSpec::parse("crash_rank=1,crash_at=5,crash_repeat=1").crash_repeat);
  EXPECT_FALSE(
      FaultSpec::parse("crash_rank=1,crash_at=5,crash_repeat=0").crash_repeat);
}

TEST(Chaos, RecoverAfterFaultDrainsStaleInFlightMessages) {
  // The drain contract behind every batch retry: a message abandoned by a
  // faulted exchange must NOT be matched by the next exchange on the same
  // (src, tag). Without the drain, the post-recovery recv below would read
  // the stale payload.
  std::atomic<int> checked{0};
  run_spmd(2, [&](Communicator& comm) {
    const double stale = 2.0, fresh = 42.0;
    if (comm.rank() == 0)
      comm.send(std::span<const double>(&stale, 1), 1, /*tag=*/7);
    // Rank 1 never receives it — the exchange "died" here.
    EXPECT_TRUE(comm.recover_after_fault(1000));
    if (comm.rank() == 0) {
      comm.send(std::span<const double>(&fresh, 1), 1, /*tag=*/7);
    } else {
      if (comm.recv<double>(0, /*tag=*/7) == std::vector<double>{fresh})
        ++checked;
    }
    comm.barrier();
  });
  EXPECT_EQ(checked.load(), 1);
}

TEST(Chaos, OneShotCrashIsRecoverable) {
  // The default crash fires ONCE per rank family: after the victim catches
  // its RankCrashError and the ranks run fault recovery (which also drains
  // the undelivered payloads of the dead exchange), the wire works again.
  SpmdOptions opts;
  opts.fault_spec = "seed=1,crash_rank=1,crash_at=2";
  std::atomic<int> crashed{0}, recovered{0}, clean{0};
  run_spmd(
      2,
      [&](Communicator& comm) {
        try {
          const double x = 2.0;
          for (int k = 0; k < 4; ++k) {
            if (comm.rank() == 0)
              comm.send(std::span<const double>(&x, 1), 1, 7);
            else
              comm.recv<double>(0, 7);  // third recv trips the crash
          }
        } catch (const RankCrashError&) {
          ++crashed;
        }
        if (comm.recover_after_fault(1000)) ++recovered;
        const double fresh = 42.0;
        if (comm.rank() == 0) {
          comm.send(std::span<const double>(&fresh, 1), 1, 7);
        } else {
          // One-shot: the recv must not rethrow. Drained: it must see the
          // post-recovery payload, not a stale 2.0 left by the crash.
          if (comm.recv<double>(0, 7) == std::vector<double>{fresh}) ++clean;
        }
        if (comm.allreduce_sum(comm.rank() + 1) == 3) ++clean;
      },
      opts);
  EXPECT_EQ(crashed.load(), 1);
  EXPECT_EQ(recovered.load(), 2);
  EXPECT_EQ(clean.load(), 3);
}

TEST(Chaos, PermanentCrashMakesRecoveryFail) {
  // With crash_repeat the node stays down: its own recovery rendezvous
  // keeps throwing (reported as unrecoverable, never rethrown) and the
  // survivor times out of the rendezvous — both sides learn the
  // communicator is beyond repair, which is what triggers shard failover
  // in the batch service.
  SpmdOptions opts;
  opts.fault_spec = "seed=1,crash_rank=1,crash_at=2,crash_repeat=1";
  std::atomic<int> unrecoverable{0};
  run_spmd(
      2,
      [&](Communicator& comm) {
        try {
          const double x = 1.0;
          for (int k = 0; k < 4; ++k) {
            if (comm.rank() == 0)
              comm.send(std::span<const double>(&x, 1), 1, 7);
            else
              comm.recv<double>(0, 7);
          }
        } catch (const RankCrashError&) {
        }
        if (!comm.recover_after_fault(200)) ++unrecoverable;
      },
      opts);
  EXPECT_EQ(unrecoverable.load(), 2);
}

TEST(Chaos, SplitCommunicatorsInheritWatchdogAndFaults) {
  // The pencil decomposition runs its transposes on row/col
  // sub-communicators: the watchdog must follow the split.
  SpmdOptions opts;
  opts.comm_timeout_ms = 150;
  EXPECT_THROW(run_spmd(
                   4,
                   [&](Communicator& comm) {
                     Communicator sub = comm.split(comm.rank() % 2);
                     if (comm.rank() == 0) sub.recv<double>(1, 77);
                   },
                   opts),
               CommTimeoutError);
}

}  // namespace
}  // namespace diffreg::mpisim
