// Tests for the distributed spectral grid transfer (ResamplePlan) and the
// multilevel grid continuation built on it: cross-checks against the old
// serial gather-to-all reference, restrict/prolong identities, zero warm
// allocations, exact exchange counts, and the coarse-to-fine pyramid.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/continuation.hpp"
#include "fft/fft3d_serial.hpp"
#include "grid/field_io.hpp"
#include "imaging/synthetic.hpp"
#include "mpisim/communicator.hpp"
#include "spectral/resample.hpp"

// Global allocation counter backing the zero-allocation assertions below
// (same pattern as test_interp: replacing global operator new/delete is the
// only portable way to observe heap traffic).
namespace {
std::atomic<long long> g_alloc_count{0};
std::atomic<bool> g_count_allocs{false};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed))
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

// GCC pairs the std::free here with the replaced operator new above and
// (wrongly) reports a mismatched allocation function when both ends inline
// into the same caller; the pair is malloc/free by construction. The
// suppression is push/pop-scoped to these two definitions so a genuine
// mismatch elsewhere in the file still warns.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace diffreg::spectral {
namespace {

using grid::PencilDecomp;
using grid::ScalarField;

template <typename F>
ScalarField fill(PencilDecomp& d, F&& f) {
  const Int3 dims = d.dims();
  const Int3 ld = d.local_real_dims();
  const real_t h1 = kTwoPi / dims[0], h2 = kTwoPi / dims[1],
               h3 = kTwoPi / dims[2];
  ScalarField out(d.local_real_size());
  index_t idx = 0;
  for (index_t a = 0; a < ld[0]; ++a)
    for (index_t b = 0; b < ld[1]; ++b)
      for (index_t c = 0; c < ld[2]; ++c, ++idx)
        out[idx] = f((d.range1().begin + a) * h1, (d.range2().begin + b) * h2,
                     c * h3);
  return out;
}

/// The pre-distributed algorithm, kept verbatim as the reference: gather the
/// full field on every rank, serial 3D FFT, copy every mode strictly below
/// the Nyquist limit of both grids, serial inverse, extract the local block.
ScalarField serial_reference_resample(PencilDecomp& src,
                                      std::span<const real_t> field,
                                      PencilDecomp& dst) {
  using fft::fft_frequency;
  const Int3 sd = src.dims();
  const Int3 dd = dst.dims();

  auto full = grid::gather_to_all(src, field);
  fft::SerialFft3d fft_src(sd);
  std::vector<complex_t> spec_src(fft_src.spectral_size());
  fft_src.forward(full, spec_src);

  fft::SerialFft3d fft_dst(dd);
  std::vector<complex_t> spec_dst(fft_dst.spectral_size(), complex_t(0, 0));
  const Int3 ssd = fft_src.spectral_dims();
  const Int3 dsd = fft_dst.spectral_dims();
  const real_t scale =
      static_cast<real_t>(dd.prod()) / static_cast<real_t>(sd.prod());

  auto below_nyquist = [](index_t f, index_t n) { return 2 * std::abs(f) < n; };
  for (index_t a = 0; a < dsd[0]; ++a) {
    const index_t f1 = fft_frequency(a, dd[0]);
    if (!below_nyquist(f1, dd[0]) || !below_nyquist(f1, sd[0])) continue;
    const index_t sa = periodic_index(f1, sd[0]);
    for (index_t b = 0; b < dsd[1]; ++b) {
      const index_t f2 = fft_frequency(b, dd[1]);
      if (!below_nyquist(f2, dd[1]) || !below_nyquist(f2, sd[1])) continue;
      const index_t sb = periodic_index(f2, sd[1]);
      for (index_t c = 0; c < dsd[2]; ++c) {
        if (!below_nyquist(c, dd[2]) || !below_nyquist(c, sd[2])) continue;
        spec_dst[linear_index(a, b, c, dsd)] =
            scale * spec_src[linear_index(sa, sb, c, ssd)];
      }
    }
  }

  std::vector<real_t> full_dst(dd.prod());
  fft_dst.inverse(spec_dst, full_dst);

  const Int3 ld = dst.local_real_dims();
  ScalarField local(dst.local_real_size());
  index_t pos = 0;
  for (index_t a = 0; a < ld[0]; ++a)
    for (index_t b = 0; b < ld[1]; ++b)
      for (index_t c = 0; c < ld[2]; ++c)
        local[pos++] = full_dst[linear_index(dst.range1().begin + a,
                                             dst.range2().begin + b, c, dd)];
  return local;
}

ScalarField pseudo_random_field(PencilDecomp& d, unsigned seed) {
  ScalarField out(d.local_real_size());
  const Int3 ld = d.local_real_dims();
  index_t idx = 0;
  for (index_t a = 0; a < ld[0]; ++a)
    for (index_t b = 0; b < ld[1]; ++b)
      for (index_t c = 0; c < ld[2]; ++c, ++idx) {
        // Deterministic hash of the GLOBAL index so every p produces the
        // same field.
        const std::uint64_t g =
            static_cast<std::uint64_t>(
                linear_index(d.range1().begin + a, d.range2().begin + b, c,
                             d.dims())) *
                2654435761u +
            seed;
        out[idx] = static_cast<real_t>(g % 10000) / 10000 - real_t(0.5);
      }
  return out;
}

TEST(Resample, MatchesSerialReferenceAcrossRanksAndDims) {
  struct Case {
    Int3 src, dst;
  };
  const Case cases[] = {
      {{16, 16, 16}, {8, 8, 8}},    // even restriction
      {{8, 8, 8}, {16, 16, 16}},    // even prolongation
      {{9, 15, 7}, {7, 9, 5}},      // odd -> odd
      {{7, 9, 5}, {9, 15, 7}},      // odd prolongation
      {{12, 10, 9}, {8, 7, 6}},     // mixed parity
  };
  for (int p : {1, 2, 4, 6}) {
    for (const auto& cs : cases) {
      mpisim::run_spmd(p, [&](mpisim::Communicator& comm) {
        PencilDecomp src(comm, cs.src);
        PencilDecomp dst(comm, cs.dst);
        auto field = pseudo_random_field(src, 17);
        auto got = spectral_resample(src, field, dst);
        auto want = serial_reference_resample(src, field, dst);
        ASSERT_EQ(got.size(), want.size());
        for (size_t i = 0; i < got.size(); ++i)
          ASSERT_NEAR(got[i], want[i], 1e-10)
              << "p=" << p << " src=" << cs.src[0] << "," << cs.src[1] << ","
              << cs.src[2] << " dst=" << cs.dst[0] << "," << cs.dst[1] << ","
              << cs.dst[2] << " i=" << i;
      });
    }
  }
}

TEST(Resample, BandLimitedFieldTransfersExactlyBothWays) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp fine(comm, {16, 16, 16});
    PencilDecomp coarse(comm, {8, 8, 8});
    // Band limited for BOTH grids: |k| <= 2 < 8/2.
    auto f = [](real_t x1, real_t x2, real_t x3) {
      return 1.5 + std::sin(x1) * std::cos(2 * x2) + std::cos(x3);
    };
    auto on_fine = fill(fine, f);
    auto on_coarse = fill(coarse, f);

    auto restricted = spectral_resample(fine, on_fine, coarse);
    for (size_t i = 0; i < restricted.size(); ++i)
      ASSERT_NEAR(restricted[i], on_coarse[i], 1e-11);

    auto prolonged = spectral_resample(coarse, on_coarse, fine);
    for (size_t i = 0; i < prolonged.size(); ++i)
      ASSERT_NEAR(prolonged[i], on_fine[i], 1e-11);
  });
}

TEST(Resample, CoarseningRemovesOnlyHighFrequencies) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp fine(comm, {16, 16, 16});
    PencilDecomp coarse(comm, {8, 8, 8});
    // Low mode (k=1, survives) + high mode (k=6 >= coarse Nyquist 4, dies).
    auto on_fine = fill(fine, [](real_t x1, real_t, real_t) {
      return std::sin(x1) + std::sin(6 * x1);
    });
    auto restricted = spectral_resample(fine, on_fine, coarse);
    auto expected = fill(coarse, [](real_t x1, real_t, real_t) {
      return std::sin(x1);
    });
    for (size_t i = 0; i < restricted.size(); ++i)
      ASSERT_NEAR(restricted[i], expected[i], 1e-11);
  });
}

TEST(Resample, AnisotropicGridsSupported) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp src(comm, {12, 16, 8});
    PencilDecomp dst(comm, {8, 12, 12});
    auto f = [](real_t x1, real_t x2, real_t x3) {
      return std::cos(x1) + std::sin(x2) * std::cos(x3);
    };
    auto resampled = spectral_resample(src, fill(src, f), dst);
    auto expected = fill(dst, f);
    for (size_t i = 0; i < resampled.size(); ++i)
      ASSERT_NEAR(resampled[i], expected[i], 1e-11);
  });
}

TEST(Resample, ProlongThenRestrictIsIdentityOnBandLimitedFields) {
  // On odd coarse dims EVERY mode is strictly below the Nyquist limit, so
  // an arbitrary field is band limited and zero padding followed by
  // truncation must return it exactly.
  for (int p : {1, 4}) {
    mpisim::run_spmd(p, [&](mpisim::Communicator& comm) {
      PencilDecomp coarse(comm, {9, 7, 7});
      PencilDecomp fine(comm, {18, 16, 13});
      auto field = pseudo_random_field(coarse, 3);
      ResamplePlan prolong(coarse, fine), restrict_plan(fine, coarse);
      ScalarField up(fine.local_real_size()), back(coarse.local_real_size());
      prolong.apply(field, up);
      restrict_plan.apply(up, back);
      for (size_t i = 0; i < field.size(); ++i)
        ASSERT_NEAR(back[i], field[i], 1e-11) << "p=" << p;
    });
  }
}

TEST(Resample, RestrictAfterProlongIsIdempotent) {
  // With even coarse axes the transfer legitimately drops the coarse
  // Nyquist modes, so prolong-restrict is not the identity on arbitrary
  // fields — but it IS a spectral projector: one roundtrip band-limits the
  // field, and a second roundtrip must reproduce it exactly.
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp coarse(comm, {8, 10, 6});
    PencilDecomp fine(comm, {16, 20, 12});
    auto field = pseudo_random_field(coarse, 9);
    ResamplePlan prolong(coarse, fine), restrict_plan(fine, coarse);
    ScalarField up(fine.local_real_size());
    ScalarField once(coarse.local_real_size()), twice(coarse.local_real_size());
    prolong.apply(field, up);
    restrict_plan.apply(up, once);  // band-limited from here on
    prolong.apply(once, up);
    restrict_plan.apply(up, twice);
    for (size_t i = 0; i < once.size(); ++i)
      ASSERT_NEAR(twice[i], once[i], 1e-11);
  });
}

TEST(Resample, ApplyManyMatchesScalarApplies) {
  mpisim::run_spmd(4, [&](mpisim::Communicator& comm) {
    PencilDecomp src(comm, {12, 10, 9});
    PencilDecomp dst(comm, {8, 8, 6});
    auto fa = pseudo_random_field(src, 1);
    auto fb = pseudo_random_field(src, 2);
    auto fc = pseudo_random_field(src, 3);
    ResamplePlan plan(src, dst);
    const index_t n = dst.local_real_size();
    ScalarField oa(n), ob(n), oc(n), ra(n), rb(n), rc(n);
    const real_t* ins[3] = {fa.data(), fb.data(), fc.data()};
    real_t* outs[3] = {oa.data(), ob.data(), oc.data()};
    plan.apply_many(std::span<const real_t* const>(ins, 3),
                    std::span<real_t* const>(outs, 3));
    plan.apply(fa, ra);
    plan.apply(fb, rb);
    plan.apply(fc, rc);
    for (index_t i = 0; i < n; ++i) {
      ASSERT_EQ(oa[i], ra[i]);  // batched == sequential, bitwise
      ASSERT_EQ(ob[i], rb[i]);
      ASSERT_EQ(oc[i], rc[i]);
    }
  });
}

TEST(Resample, ExactlyFiveExchangesPerApplyRegardlessOfBatchAndRanks) {
  // 2 (forward FFT) + 1 (spectral remap) + 2 (inverse FFT) alltoallv per
  // apply — independent of the component count (batching) and of p.
  for (int p : {1, 2, 4, 6}) {
    mpisim::run_spmd(p, [&](mpisim::Communicator& comm) {
      PencilDecomp src(comm, {12, 16, 8});
      PencilDecomp dst(comm, {8, 12, 12});
      ResamplePlan plan(src, dst);
      auto fa = pseudo_random_field(src, 5);
      auto fb = pseudo_random_field(src, 6);
      auto fc = pseudo_random_field(src, 7);
      const index_t n = dst.local_real_size();
      ScalarField oa(n), ob(n), oc(n);

      auto before = comm.timings().exchanges(TimeKind::kFftComm);
      plan.apply(fa, oa);
      EXPECT_EQ(comm.timings().exchanges(TimeKind::kFftComm) - before, 5u)
          << "scalar apply, p=" << p;

      const real_t* ins[3] = {fa.data(), fb.data(), fc.data()};
      real_t* outs[3] = {oa.data(), ob.data(), oc.data()};
      before = comm.timings().exchanges(TimeKind::kFftComm);
      plan.apply_many(std::span<const real_t* const>(ins, 3),
                      std::span<real_t* const>(outs, 3));
      EXPECT_EQ(comm.timings().exchanges(TimeKind::kFftComm) - before, 5u)
          << "3-component apply_many, p=" << p;
    });
  }
}

TEST(Resample, Fp32WireMatchesFp64WithinRounding) {
  // fp32-wire vs fp64-wire grid transfer (mixed-precision contract):
  // restriction and prolongation agree to a relative L2 error <= 1e-6 per
  // field, on the same 5-exchange schedule at roughly half the bytes.
  const Int3 fine{12, 10, 8};
  const Int3 coarse{6, 5, 4};
  for (int p : {1, 2, 4, 6}) {
    mpisim::run_spmd(p, [&](mpisim::Communicator& comm) {
      PencilDecomp src(comm, fine);
      PencilDecomp dst(comm, coarse);
      ResamplePlan plan64(src, dst);
      ResamplePlan plan32(src, dst, WirePrecision::kF32);
      ResamplePlan up32(dst, src, WirePrecision::kF32);
      ResamplePlan up64(dst, src);

      auto f = pseudo_random_field(src, 41);
      ScalarField down64(dst.local_real_size()), down32(dst.local_real_size());
      const Timings before = comm.timings();
      plan64.apply(f, down64);
      const Timings mid = comm.timings();
      plan32.apply(f, down32);
      const Timings d64 = timings_delta(before, mid);
      const Timings d32 = timings_delta(mid, comm.timings());

      ScalarField back64(src.local_real_size()), back32(src.local_real_size());
      up64.apply(down64, back64);
      up32.apply(down32, back32);

      auto rel_l2 = [&](const ScalarField& a, const ScalarField& b) {
        real_t num = 0, den = 0;
        for (size_t i = 0; i < a.size(); ++i) {
          num += (a[i] - b[i]) * (a[i] - b[i]);
          den += a[i] * a[i];
        }
        comm.set_time_kind(TimeKind::kOther);
        num = comm.allreduce_sum(num);
        den = comm.allreduce_sum(den);
        return den > 0 ? std::sqrt(num / den) : std::sqrt(num);
      };
      EXPECT_LE(rel_l2(down64, down32), 1e-6) << "restriction p=" << p;
      EXPECT_LE(rel_l2(back64, back32), 1e-6) << "prolongation p=" << p;

      EXPECT_EQ(d64.exchanges(TimeKind::kFftComm),
                d32.exchanges(TimeKind::kFftComm));
      EXPECT_EQ(d64.messages(TimeKind::kFftComm),
                d32.messages(TimeKind::kFftComm));
      EXPECT_EQ(d64.bytes(TimeKind::kFftComm) - d32.bytes(TimeKind::kFftComm),
                d32.saved_bytes(TimeKind::kFftComm));
      if (p > 1) {
        EXPECT_GT(d32.saved_bytes(TimeKind::kFftComm), 0u) << "p=" << p;
      }
    });
  }
}

TEST(Resample, Fp32WireWarmPlanAppliesAreAllocationFree) {
  // The fp32 staging buffers (remap + both FFT plans) are plan-owned, so a
  // warm fp32-wire transfer allocates nothing — the mixed-precision mirror
  // of WarmPlanAppliesAreAllocationFree.
  mpisim::run_spmd(1, [&](mpisim::Communicator& comm) {
    PencilDecomp src(comm, {16, 16, 16});
    PencilDecomp dst(comm, {8, 8, 8});
    ResamplePlan plan(src, dst, WirePrecision::kF32);
    auto fa = pseudo_random_field(src, 21);
    auto fb = pseudo_random_field(src, 22);
    auto fc = pseudo_random_field(src, 23);
    const index_t n = dst.local_real_size();
    ScalarField oa(n), ob(n), oc(n);
    const real_t* ins[3] = {fa.data(), fb.data(), fc.data()};
    real_t* outs[3] = {oa.data(), ob.data(), oc.data()};

    plan.apply(fa, oa);  // warm-up
    plan.apply_many(std::span<const real_t* const>(ins, 3),
                    std::span<real_t* const>(outs, 3));

    g_alloc_count.store(0);
    g_count_allocs.store(true);
    plan.apply(fa, oa);
    const long long scalar_allocs = g_alloc_count.exchange(0);
    plan.apply_many(std::span<const real_t* const>(ins, 3),
                    std::span<real_t* const>(outs, 3));
    const long long batched_allocs = g_alloc_count.exchange(0);
    g_count_allocs.store(false);

    EXPECT_EQ(scalar_allocs, 0) << "fp32-wire scalar apply allocated";
    EXPECT_EQ(batched_allocs, 0) << "fp32-wire apply_many allocated";
  });
}

TEST(Resample, WarmPlanAppliesAreAllocationFree) {
  // After one warm-up apply, scalar and batched transfers must not touch
  // the heap (single rank: the mailbox transport itself is out of the
  // picture). This is the per-rank O(N/p) memory contract: everything the
  // transfer needs is owned by the plan.
  mpisim::run_spmd(1, [&](mpisim::Communicator& comm) {
    PencilDecomp src(comm, {16, 16, 16});
    PencilDecomp dst(comm, {8, 8, 8});
    ResamplePlan plan(src, dst);
    auto fa = pseudo_random_field(src, 11);
    auto fb = pseudo_random_field(src, 12);
    auto fc = pseudo_random_field(src, 13);
    const index_t n = dst.local_real_size();
    ScalarField oa(n), ob(n), oc(n);
    const real_t* ins[3] = {fa.data(), fb.data(), fc.data()};
    real_t* outs[3] = {oa.data(), ob.data(), oc.data()};

    plan.apply(fa, oa);  // warm-up
    plan.apply_many(std::span<const real_t* const>(ins, 3),
                    std::span<real_t* const>(outs, 3));

    g_alloc_count.store(0);
    g_count_allocs.store(true);
    plan.apply(fa, oa);
    const long long scalar_allocs = g_alloc_count.exchange(0);
    plan.apply_many(std::span<const real_t* const>(ins, 3),
                    std::span<real_t* const>(outs, 3));
    const long long batched_allocs = g_alloc_count.exchange(0);
    g_count_allocs.store(false);

    EXPECT_EQ(scalar_allocs, 0) << "scalar apply allocated";
    EXPECT_EQ(batched_allocs, 0) << "apply_many allocated";
  });
}

// --------------------------------------------------------------------------
// Grid continuation on the distributed transfer.

TEST(GridContinuation, CoarseWarmStartHelpsTheFineSolve) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp fine(comm, {24, 24, 24});
    spectral::SpectralOps ops(fine);
    auto rho_t = imaging::synthetic_template(fine);
    auto v_star = imaging::synthetic_velocity(fine, 0.5);
    auto rho_r = imaging::make_reference(ops, rho_t, v_star);

    core::RegistrationOptions opt;
    opt.beta = 1e-2;
    opt.gtol = 1e-2;
    opt.max_newton_iters = 10;

    core::RegistrationSolver cold_solver(fine, opt);
    auto cold = cold_solver.run(rho_t, rho_r);

    auto two_level = core::run_grid_continuation(fine, opt, rho_t, rho_r);

    // The two-level fine solve must reach a comparable fit with no more
    // fine-grid work than the cold start.
    EXPECT_LE(two_level.fine.newton.total_matvecs,
              cold.newton.total_matvecs);
    EXPECT_LT(two_level.fine.rel_residual, cold.rel_residual + 0.05);
    EXPECT_GT(two_level.fine.min_det, 0.0);
    // And the coarse stage did real work.
    EXPECT_GT(two_level.coarse.newton.total_matvecs, 0);
  });
}

TEST(Multilevel, ThreeLevelPyramidReachesTheFitWithLessFineWork) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp fine(comm, {24, 24, 24});
    spectral::SpectralOps ops(fine);
    auto rho_t = imaging::synthetic_template(fine);
    auto v_star = imaging::synthetic_velocity(fine, 0.5);
    auto rho_r = imaging::make_reference(ops, rho_t, v_star);

    core::RegistrationOptions opt;
    opt.beta = 1e-2;
    opt.gtol = 1e-2;
    opt.max_newton_iters = 10;

    core::RegistrationSolver cold_solver(fine, opt);
    auto cold = cold_solver.run(rho_t, rho_r);

    core::MultilevelOptions mopt;
    mopt.levels = 3;
    mopt.coarsest_dim = 6;
    auto ml = core::run_multilevel_continuation(fine, opt, rho_t, rho_r,
                                                mopt);

    ASSERT_EQ(ml.levels.size(), 3u);  // 24 -> 12 -> 6, coarsest first
    EXPECT_EQ(ml.levels[0].dims, (Int3{6, 6, 6}));
    EXPECT_EQ(ml.levels[1].dims, (Int3{12, 12, 12}));
    EXPECT_EQ(ml.levels[2].dims, (Int3{24, 24, 24}));
    EXPECT_GT(ml.gradient_reference, 0);
    EXPECT_GT(ml.coarsest.newton.total_matvecs, 0);

    // The warm start absorbs outer iterations on the coarse grids: the fine
    // level needs strictly fewer Newton iterations (its PCG may spend a few
    // extra matvecs inside one tighter forcing-term solve, so matvecs get a
    // small slack).
    EXPECT_LT(ml.fine.newton.iterations, cold.newton.iterations);
    EXPECT_LE(ml.fine.newton.total_matvecs, cold.newton.total_matvecs + 2);
    EXPECT_TRUE(ml.fine.newton.converged);
    EXPECT_LT(ml.fine.rel_residual, cold.rel_residual + 0.05);
    EXPECT_GT(ml.fine.min_det, 0.0);
  });
}

TEST(Multilevel, OddDimsSupported) {
  // The old two-level driver threw std::invalid_argument on odd dims; the
  // pyramid handles them through the resample's Nyquist rules.
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp fine(comm, {10, 9, 12});
    spectral::SpectralOps ops(fine);
    auto rho_t = imaging::synthetic_template(fine);
    auto v_star = imaging::synthetic_velocity(fine, 0.3);
    auto rho_r = imaging::make_reference(ops, rho_t, v_star);

    core::RegistrationOptions opt;
    opt.max_newton_iters = 2;
    opt.gtol = 0.5;

    core::MultilevelOptions mopt;
    mopt.levels = 2;
    mopt.coarsest_dim = 4;
    auto ml = core::run_multilevel_continuation(fine, opt, rho_t, rho_r,
                                                mopt);
    ASSERT_EQ(ml.levels.size(), 2u);
    EXPECT_EQ(ml.levels[0].dims, (Int3{5, 5, 6}));
    EXPECT_TRUE(std::isfinite(ml.fine.rel_residual));
    EXPECT_LT(ml.fine.rel_residual, 1.0);
    EXPECT_GT(ml.fine.min_det, 0.0);
  });
}

TEST(Multilevel, ComposesWithBetaContinuation) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp fine(comm, {16, 16, 16});
    spectral::SpectralOps ops(fine);
    auto rho_t = imaging::synthetic_template(fine);
    auto v_star = imaging::synthetic_velocity(fine, 0.5);
    auto rho_r = imaging::make_reference(ops, rho_t, v_star);

    core::RegistrationOptions opt;
    opt.max_newton_iters = 4;
    core::MultilevelOptions mopt;
    mopt.levels = 2;
    mopt.coarsest_dim = 8;
    core::ContinuationOptions copt;
    copt.beta_start = 1e-1;
    copt.beta_target = 1e-3;
    mopt.coarse_beta_cont = copt;

    auto ml = core::run_multilevel_continuation(fine, opt, rho_t, rho_r,
                                                mopt);
    // The coarse beta continuation determines the beta of every finer
    // level; the fine solve runs at that beta, not at opt.beta.
    EXPECT_LE(ml.final_beta, copt.beta_start);
    EXPECT_GE(ml.final_beta, copt.beta_target);
    EXPECT_EQ(ml.levels.back().beta, ml.final_beta);
    EXPECT_LT(ml.fine.rel_residual, 1.0);
    EXPECT_GT(ml.fine.min_det, 0.0);
  });
}

}  // namespace
}  // namespace diffreg::spectral
