// Tests for spectral grid transfer and two-level grid continuation.
#include <gtest/gtest.h>

#include <cmath>

#include "core/continuation.hpp"
#include "imaging/synthetic.hpp"
#include "mpisim/communicator.hpp"
#include "spectral/resample.hpp"

namespace diffreg::spectral {
namespace {

using grid::PencilDecomp;
using grid::ScalarField;

template <typename F>
ScalarField fill(PencilDecomp& d, F&& f) {
  const Int3 dims = d.dims();
  const Int3 ld = d.local_real_dims();
  const real_t h1 = kTwoPi / dims[0], h2 = kTwoPi / dims[1],
               h3 = kTwoPi / dims[2];
  ScalarField out(d.local_real_size());
  index_t idx = 0;
  for (index_t a = 0; a < ld[0]; ++a)
    for (index_t b = 0; b < ld[1]; ++b)
      for (index_t c = 0; c < ld[2]; ++c, ++idx)
        out[idx] = f((d.range1().begin + a) * h1, (d.range2().begin + b) * h2,
                     c * h3);
  return out;
}

TEST(Resample, BandLimitedFieldTransfersExactlyBothWays) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp fine(comm, {16, 16, 16});
    PencilDecomp coarse(comm, {8, 8, 8});
    // Band limited for BOTH grids: |k| <= 2 < 8/2.
    auto f = [](real_t x1, real_t x2, real_t x3) {
      return 1.5 + std::sin(x1) * std::cos(2 * x2) + std::cos(x3);
    };
    auto on_fine = fill(fine, f);
    auto on_coarse = fill(coarse, f);

    auto restricted = spectral_resample(fine, on_fine, coarse);
    for (size_t i = 0; i < restricted.size(); ++i)
      ASSERT_NEAR(restricted[i], on_coarse[i], 1e-11);

    auto prolonged = spectral_resample(coarse, on_coarse, fine);
    for (size_t i = 0; i < prolonged.size(); ++i)
      ASSERT_NEAR(prolonged[i], on_fine[i], 1e-11);
  });
}

TEST(Resample, CoarseningRemovesOnlyHighFrequencies) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp fine(comm, {16, 16, 16});
    PencilDecomp coarse(comm, {8, 8, 8});
    // Low mode (k=1, survives) + high mode (k=6 >= coarse Nyquist 4, dies).
    auto on_fine = fill(fine, [](real_t x1, real_t, real_t) {
      return std::sin(x1) + std::sin(6 * x1);
    });
    auto restricted = spectral_resample(fine, on_fine, coarse);
    auto expected = fill(coarse, [](real_t x1, real_t, real_t) {
      return std::sin(x1);
    });
    for (size_t i = 0; i < restricted.size(); ++i)
      ASSERT_NEAR(restricted[i], expected[i], 1e-11);
  });
}

TEST(Resample, AnisotropicGridsSupported) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp src(comm, {12, 16, 8});
    PencilDecomp dst(comm, {8, 12, 12});
    auto f = [](real_t x1, real_t x2, real_t x3) {
      return std::cos(x1) + std::sin(x2) * std::cos(x3);
    };
    auto resampled = spectral_resample(src, fill(src, f), dst);
    auto expected = fill(dst, f);
    for (size_t i = 0; i < resampled.size(); ++i)
      ASSERT_NEAR(resampled[i], expected[i], 1e-11);
  });
}

TEST(GridContinuation, CoarseWarmStartHelpsTheFineSolve) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp fine(comm, {24, 24, 24});
    spectral::SpectralOps ops(fine);
    auto rho_t = imaging::synthetic_template(fine);
    auto v_star = imaging::synthetic_velocity(fine, 0.5);
    auto rho_r = imaging::make_reference(ops, rho_t, v_star);

    core::RegistrationOptions opt;
    opt.beta = 1e-2;
    opt.gtol = 1e-2;
    opt.max_newton_iters = 10;

    core::RegistrationSolver cold_solver(fine, opt);
    auto cold = cold_solver.run(rho_t, rho_r);

    auto two_level = core::run_grid_continuation(fine, opt, rho_t, rho_r);

    // The two-level fine solve must reach a comparable fit with no more
    // fine-grid work than the cold start.
    EXPECT_LE(two_level.fine.newton.total_matvecs,
              cold.newton.total_matvecs);
    EXPECT_LT(two_level.fine.rel_residual, cold.rel_residual + 0.05);
    EXPECT_GT(two_level.fine.min_det, 0.0);
    // And the coarse stage did real work.
    EXPECT_GT(two_level.coarse.newton.total_matvecs, 0);
  });
}

TEST(GridContinuation, RejectsOddDims) {
  mpisim::run_spmd(1, [&](mpisim::Communicator& comm) {
    PencilDecomp fine(comm, {9, 8, 8});
    core::RegistrationOptions opt;
    ScalarField a(fine.local_real_size(), 0), b(fine.local_real_size(), 0);
    EXPECT_THROW(core::run_grid_continuation(fine, opt, a, b),
                 std::invalid_argument);
  });
}

}  // namespace
}  // namespace diffreg::spectral
