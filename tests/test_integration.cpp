// Cross-module integration tests and ablations:
//  * tricubic vs trilinear accuracy in the transport solve (paper section
//    III-B2: cubic interpolation is needed because interpolation errors
//    accumulate across time steps without a dt factor);
//  * full registration on anisotropic, non-power-of-two grids (the paper's
//    256x300x256 class via the mixed-radix FFT path);
//  * registration recovers a known ground-truth deformation (self
//    consistency: warping the template with the recovered velocity matches
//    the reference);
//  * warm starting reduces work (the mechanism behind beta continuation);
//  * Hessian matvec consistency between Gauss-Newton and full Newton at a
//    ground-truth-consistent iterate (at the solution lam = 0 makes the
//    extra full-Newton terms vanish).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/diffreg.hpp"
#include "imaging/metrics.hpp"
#include "imaging/synthetic.hpp"

namespace diffreg {
namespace {

using grid::PencilDecomp;
using grid::ScalarField;
using grid::VectorField;

TEST(Ablation, TricubicBeatsTrilinearInTransportAccuracy) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {32, 32, 32});
    spectral::SpectralOps ops(decomp);
    // Constant velocity: exact solution is a pure translation.
    const Vec3 c{0.61, -0.37, 0.29};
    VectorField v(decomp.local_real_size());
    for (int d = 0; d < 3; ++d)
      for (auto& val : v[d]) val = c[d];

    const Int3 dims = decomp.dims();
    const Int3 ld = decomp.local_real_dims();
    const real_t h = kTwoPi / dims[0];
    ScalarField rho0(decomp.local_real_size());
    index_t idx = 0;
    for (index_t a = 0; a < ld[0]; ++a)
      for (index_t b = 0; b < ld[1]; ++b)
        for (index_t cc = 0; cc < ld[2]; ++cc, ++idx)
          rho0[idx] = std::sin((decomp.range1().begin + a) * h) *
                      std::cos(2 * (decomp.range2().begin + b) * h) *
                      std::sin(cc * h);

    auto solve_error = [&](interp::Method method) {
      semilag::TransportConfig tc;
      tc.nt = 8;
      tc.method = method;
      semilag::Transport transport(ops, tc);
      transport.set_velocity(v);
      transport.solve_state(rho0);
      // Analytic solution rho0(x - c).
      real_t err = 0;
      index_t i = 0;
      for (index_t a = 0; a < ld[0]; ++a)
        for (index_t b = 0; b < ld[1]; ++b)
          for (index_t cc = 0; cc < ld[2]; ++cc, ++i) {
            const real_t exact =
                std::sin((decomp.range1().begin + a) * h - c[0]) *
                std::cos(2 * ((decomp.range2().begin + b) * h - c[1])) *
                std::sin(cc * h - c[2]);
            err = std::max(err, std::abs(transport.final_state()[i] - exact));
          }
      return comm.allreduce_max(err);
    };

    const real_t cubic_err = solve_error(interp::Method::kTricubic);
    const real_t linear_err = solve_error(interp::Method::kTrilinear);
    // The paper's reason for tricubic: at this resolution the accumulated
    // linear-interpolation error is at least an order of magnitude worse.
    EXPECT_LT(cubic_err * 10, linear_err)
        << "cubic " << cubic_err << " linear " << linear_err;
  });
}

TEST(Integration, AnisotropicNonPowerOfTwoGridRegisters) {
  // 20x24x20 exercises uneven pencil blocks and the mixed-radix FFT
  // (24 = 2^3 * 3, 20 = 2^2 * 5) — the paper's 256x300x256 shape class.
  mpisim::run_spmd(4, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {20, 24, 20});
    spectral::SpectralOps ops(decomp);
    auto rho_t = imaging::synthetic_template(decomp);
    auto v_star = imaging::synthetic_velocity(decomp, 0.5);
    auto rho_r = imaging::make_reference(ops, rho_t, v_star);

    core::RegistrationOptions opt;
    opt.beta = 1e-2;
    opt.max_newton_iters = 8;
    core::RegistrationSolver solver(decomp, opt);
    auto result = solver.run(rho_t, rho_r);
    EXPECT_LT(result.rel_residual, 0.7);
    EXPECT_GT(result.min_det, 0.0);
  });
}

TEST(Integration, RecoveredVelocityWarpsTemplateOntoReference) {
  // Self-consistency: deform_template with the recovered velocity must
  // reproduce the solver's own final residual.
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    spectral::SpectralOps ops(decomp);
    auto rho_t = imaging::synthetic_template(decomp);
    auto v_star = imaging::synthetic_velocity(decomp, 0.5);
    auto rho_r = imaging::make_reference(ops, rho_t, v_star);

    core::RegistrationOptions opt;
    opt.beta = 1e-3;
    opt.max_newton_iters = 8;
    core::RegistrationSolver solver(decomp, opt);
    auto result = solver.run(rho_t, rho_r);

    ScalarField deformed;
    solver.deform_template(rho_t, result.velocity, deformed);
    const real_t rel =
        imaging::relative_residual(decomp, deformed, rho_r, rho_t);
    // deform_template uses the unsmoothed template while the solver works
    // on smoothed images, so allow a modest gap.
    EXPECT_LT(rel, result.rel_residual + 0.15);
    EXPECT_LT(rel, 0.6);
  });
}

TEST(Integration, WarmStartReducesNewtonWork) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    spectral::SpectralOps ops(decomp);
    auto rho_t = imaging::synthetic_template(decomp);
    auto v_star = imaging::synthetic_velocity(decomp, 0.5);
    auto rho_r = imaging::make_reference(ops, rho_t, v_star);

    core::RegistrationOptions opt;
    opt.beta = 1e-2;
    opt.max_newton_iters = 10;
    core::RegistrationSolver solver(decomp, opt);

    auto cold = solver.run(rho_t, rho_r);
    // Warm start from the converged velocity: should terminate almost
    // immediately with no additional matvec work.
    auto warm = solver.run(rho_t, rho_r, &cold.velocity);
    EXPECT_LE(warm.newton.total_matvecs, cold.newton.total_matvecs);
    EXPECT_LE(warm.newton.iterations, 1);
  });
}

TEST(Integration, FullNewtonMatchesGaussNewtonAtPerfectFit) {
  // With rho_R = rho_T and v = 0 the adjoint vanishes, so the full-Newton
  // extra terms are zero and both matvecs must agree.
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {12, 12, 12});
    spectral::SpectralOps ops(decomp);
    auto rho = imaging::synthetic_template(decomp);

    auto matvec_with = [&](bool gauss_newton) {
      semilag::TransportConfig tc;
      semilag::Transport transport(ops, tc);
      core::Regularization reg(ops, core::RegType::kH2Seminorm, 1e-2);
      core::OptimalitySystem system(ops, transport, reg, rho, rho, false,
                                    gauss_newton);
      VectorField v(decomp.local_real_size());
      system.evaluate(v);
      VectorField g(decomp.local_real_size());
      system.gradient(g);
      auto dir = imaging::synthetic_velocity(decomp, 0.3);
      VectorField out(decomp.local_real_size());
      system.hessian_matvec(dir, out);
      return out;
    };

    auto gn = matvec_with(true);
    auto full = matvec_with(false);
    for (int d = 0; d < 3; ++d)
      for (size_t i = 0; i < gn[d].size(); ++i)
        ASSERT_NEAR(gn[d][i], full[d][i], 1e-10);
  });
}

TEST(Integration, SmoothingControlsNonSmoothInputs) {
  // A discontinuous (binary sphere) input: without spectral smoothing the
  // registration still runs, with smoothing the residual is at least as
  // good and the map stays diffeomorphic (paper section III-B1 motivates
  // the Gaussian pre-smoothing).
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {24, 24, 24});
    const Vec3 c{kTwoPi / 2, kTwoPi / 2, kTwoPi / 2};
    auto rho_t = imaging::sphere_phantom(decomp, c, 1.2, 0.02);  // sharp edge
    const Vec3 c2{kTwoPi / 2 + 0.35, kTwoPi / 2 - 0.2, kTwoPi / 2};
    auto rho_r = imaging::sphere_phantom(decomp, c2, 1.2, 0.02);

    core::RegistrationOptions opt;
    opt.beta = 1e-2;
    opt.max_newton_iters = 8;
    opt.smooth_inputs = true;
    core::RegistrationSolver solver(decomp, opt);
    auto result = solver.run(rho_t, rho_r);
    EXPECT_LT(result.rel_residual, 0.8);
    EXPECT_GT(result.min_det, 0.0);
  });
}

TEST(Integration, TimingCategoriesAreAllExercisedByASolve) {
  auto timings = mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    spectral::SpectralOps ops(decomp);
    auto rho_t = imaging::synthetic_template(decomp);
    auto v_star = imaging::synthetic_velocity(decomp, 0.4);
    auto rho_r = imaging::make_reference(ops, rho_t, v_star);
    core::RegistrationOptions opt;
    opt.max_newton_iters = 2;
    core::RegistrationSolver solver(decomp, opt);
    solver.run(rho_t, rho_r);
  });
  Timings max;
  for (const auto& t : timings) max.max_with(t);
  EXPECT_GT(max.get(TimeKind::kFftComm), 0.0);
  EXPECT_GT(max.get(TimeKind::kFftExec), 0.0);
  EXPECT_GT(max.get(TimeKind::kInterpComm), 0.0);
  EXPECT_GT(max.get(TimeKind::kInterpExec), 0.0);
}

/// Thrown by the kill-switch iterate hook below: models a job dying
/// mid-continuation (every rank throws at the same accepted iterate).
struct KillSwitch : std::runtime_error {
  KillSwitch() : std::runtime_error("kill switch") {}
};

TEST(Integration, CheckpointResumeReproducesTheContinuationRun) {
  // The checkpoint/restart acceptance test: a 3-level 48^3 continuation is
  // (1) run uninterrupted for reference, (2) killed right after the first
  // accepted Newton iterate past the coarsest level with --checkpoint-every
  // 1, and (3) resumed from the surviving checkpoint. Newton state is fully
  // determined by (velocity, options), so the resumed run must converge to
  // the same gtol with the same final-level Newton iterate count — and in
  // this thread-backed deterministic runtime, a bitwise-identical velocity.
  const std::string ckpt = ::testing::TempDir() + "diffreg_resume_test.ckpt";
  core::RegistrationOptions opt;
  opt.beta = 1e-2;
  opt.gtol = 1e-2;
  opt.max_newton_iters = 10;
  core::MultilevelOptions mopt;
  mopt.levels = 3;
  mopt.coarsest_dim = 8;

  auto body = [&](mpisim::Communicator& comm, const core::MultilevelOptions&
                                                  run_mopt,
                  core::MultilevelResult& out) {
    PencilDecomp decomp(comm, {48, 48, 48});
    spectral::SpectralOps ops(decomp);
    auto rho_t = imaging::synthetic_template(decomp);
    auto v_star = imaging::synthetic_velocity(decomp, 0.5);
    auto rho_r = imaging::make_reference(ops, rho_t, v_star);
    out = core::run_multilevel_continuation(decomp, opt, rho_t, rho_r,
                                            run_mopt);
  };

  // (1) Uninterrupted reference.
  core::MultilevelResult ref;
  int ref_coarsest_iters = 0;
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    core::MultilevelResult ml;
    body(comm, mopt, ml);
    if (comm.is_root()) {
      ref = std::move(ml);
      ref_coarsest_iters = ref.levels.front().newton_iterations;
    }
  });
  ASSERT_TRUE(ref.fine.newton.converged);
  ASSERT_GE(ref_coarsest_iters, 1);

  // (2) Kill the run at the first accepted iterate past the coarsest level.
  const int kill_at = ref_coarsest_iters + 1;
  EXPECT_THROW(
      mpisim::run_spmd(2,
                       [&](mpisim::Communicator& comm) {
                         core::MultilevelOptions kmopt = mopt;
                         kmopt.checkpoint_path = ckpt;
                         kmopt.checkpoint_every = 1;
                         core::RegistrationOptions kopt = opt;
                         int accepted = 0;  // per-rank, advances in lockstep
                         kopt.iterate_hook =
                             [&](const core::NewtonIterateInfo&) {
                               if (++accepted == kill_at) throw KillSwitch();
                             };
                         PencilDecomp decomp(comm, {48, 48, 48});
                         spectral::SpectralOps ops(decomp);
                         auto rho_t = imaging::synthetic_template(decomp);
                         auto v_star = imaging::synthetic_velocity(decomp,
                                                                   0.5);
                         auto rho_r =
                             imaging::make_reference(ops, rho_t, v_star);
                         core::run_multilevel_continuation(decomp, kopt,
                                                           rho_t, rho_r,
                                                           kmopt);
                       }),
      KillSwitch);

  // (3) Resume from the surviving checkpoint and compare.
  core::MultilevelResult resumed;
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    core::MultilevelOptions rmopt = mopt;
    rmopt.resume_path = ckpt;
    core::MultilevelResult ml;
    body(comm, rmopt, ml);
    if (comm.is_root()) resumed = std::move(ml);
  });

  EXPECT_TRUE(resumed.fine.newton.converged);
  EXPECT_EQ(resumed.fine.newton.iterations, ref.fine.newton.iterations);
  EXPECT_DOUBLE_EQ(resumed.fine.newton.final_gradient_norm,
                   ref.fine.newton.final_gradient_norm);
  EXPECT_DOUBLE_EQ(resumed.gradient_reference, ref.gradient_reference);
  ASSERT_EQ(resumed.fine.velocity.local_size(),
            ref.fine.velocity.local_size());
  for (int d = 0; d < 3; ++d)
    for (size_t i = 0; i < ref.fine.velocity[d].size(); ++i)
      ASSERT_EQ(resumed.fine.velocity[d][i], ref.fine.velocity[d][i])
          << "d=" << d << " i=" << i;
  std::remove(ckpt.c_str());
}

}  // namespace
}  // namespace diffreg
