// Imaging module tests: synthetic generators (ranges, determinism,
// divergence-free property), reference construction, phantoms, IO round
// trips, metrics.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "grid/field_io.hpp"
#include "imaging/io.hpp"
#include "imaging/metrics.hpp"
#include "imaging/synthetic.hpp"
#include "mpisim/communicator.hpp"

namespace diffreg::imaging {
namespace {

using grid::PencilDecomp;

TEST(Synthetic, TemplateIsInUnitRangeAndMatchesFormula) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    auto rho = synthetic_template(decomp);
    for (real_t v : rho) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
    // Spot check the formula at the block origin.
    const real_t h = kTwoPi / 16;
    const real_t x1 = decomp.range1().begin * h;
    const real_t x2 = decomp.range2().begin * h;
    const real_t expected =
        (std::sin(x1) * std::sin(x1) + std::sin(x2) * std::sin(x2)) / 3;
    EXPECT_NEAR(rho[0], expected, 1e-14);
  });
}

TEST(Synthetic, VelocityAmplitudeScales) {
  mpisim::run_spmd(1, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {8, 8, 8});
    auto v1 = synthetic_velocity(decomp, 1.0);
    auto v2 = synthetic_velocity(decomp, 2.0);
    for (int d = 0; d < 3; ++d)
      for (size_t i = 0; i < v1[d].size(); ++i)
        EXPECT_NEAR(v2[d][i], 2 * v1[d][i], 1e-14);
  });
}

TEST(Synthetic, DivFreeVelocityHasZeroDivergence) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    spectral::SpectralOps ops(decomp);
    auto v = synthetic_velocity_divfree(decomp, 1.3);
    grid::ScalarField div;
    ops.divergence(v, div);
    EXPECT_LT(grid::norm_inf(decomp, div), 1e-11);
  });
}

TEST(Synthetic, ReferenceDiffersFromTemplateUnderFlow) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    spectral::SpectralOps ops(decomp);
    auto rho_t = synthetic_template(decomp);
    auto v = synthetic_velocity(decomp, 0.5);
    auto rho_r = make_reference(ops, rho_t, v);
    EXPECT_GT(max_abs_difference(decomp, rho_r, rho_t), 0.01);
    // Zero velocity: reference equals template.
    grid::VectorField zero(decomp.local_real_size());
    auto same = make_reference(ops, rho_t, zero);
    EXPECT_LT(max_abs_difference(decomp, same, rho_t), 1e-12);
  });
}

TEST(Synthetic, SpherePhantomDecaysWithRadius) {
  mpisim::run_spmd(1, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    const Vec3 c{kTwoPi / 2, kTwoPi / 2, kTwoPi / 2};
    auto s = sphere_phantom(decomp, c, 1.0, 0.1);
    // Center voxel ~ 1, corner ~ 0.
    const real_t h = kTwoPi / 16;
    const index_t center =
        linear_index(8, 8, 8, decomp.local_real_dims());
    EXPECT_GT(s[center], 0.99);
    EXPECT_LT(s[0], 0.01);
    (void)h;
  });
}

TEST(Synthetic, BrainPhantomIsDeterministicPerSubject) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 20, 16});
    auto a1 = brain_phantom(decomp, 3);
    auto a2 = brain_phantom(decomp, 3);
    auto b = brain_phantom(decomp, 4);
    real_t same = 0, diff = 0;
    for (size_t i = 0; i < a1.size(); ++i) {
      same = std::max(same, std::abs(a1[i] - a2[i]));
      diff = std::max(diff, std::abs(a1[i] - b[i]));
    }
    EXPECT_EQ(same, 0.0) << "same subject must be bitwise identical";
    diff = comm.allreduce_max(diff);
    EXPECT_GT(diff, 0.05) << "different subjects must differ";
    for (real_t v : a1) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.2);
    }
  });
}

TEST(Synthetic, BrainPhantomHasTissueContrast) {
  mpisim::run_spmd(1, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {24, 28, 24});
    auto brain = brain_phantom(decomp, 1);
    real_t lo = 1e9, hi = -1e9;
    for (real_t v : brain) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    EXPECT_LT(lo, 0.05) << "background must be dark";
    EXPECT_GT(hi, 0.5) << "tissue must be bright";
  });
}

TEST(Io, RawVolumeRoundTrip) {
  const Int3 dims{6, 5, 4};
  std::vector<real_t> vol(dims.prod());
  for (index_t i = 0; i < dims.prod(); ++i) vol[i] = 0.5 * i - 7;
  const std::string path = "/tmp/diffreg_test_volume";
  write_raw_volume(path, dims, vol);
  auto back = read_raw_volume(path, dims);
  ASSERT_EQ(back.size(), vol.size());
  for (size_t i = 0; i < vol.size(); ++i) EXPECT_DOUBLE_EQ(back[i], vol[i]);
  std::remove((path + ".raw").c_str());
  std::remove((path + ".mhd").c_str());
}

TEST(Io, TruncatedRawVolumeThrowsNamingTheFile) {
  // A partially written (or partially copied) volume must fail loudly with
  // the file name, not return a short buffer padded with stale memory.
  const Int3 dims{6, 5, 4};
  std::vector<real_t> vol(dims.prod(), 1.25);
  const std::string path = ::testing::TempDir() + "diffreg_truncated_volume";
  write_raw_volume(path, dims, vol);
  std::filesystem::resize_file(path + ".raw", 100);
  try {
    read_raw_volume(path, dims);
    FAIL() << "expected a truncated-file error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("truncated"), std::string::npos);
    EXPECT_NE(what.find(path), std::string::npos);
  }
  std::remove((path + ".raw").c_str());
  std::remove((path + ".mhd").c_str());
}

TEST(Io, PgmSliceHasCorrectHeaderAndSize) {
  const Int3 dims{4, 3, 5};
  std::vector<real_t> vol(dims.prod());
  for (index_t i = 0; i < dims.prod(); ++i) vol[i] = static_cast<real_t>(i);
  const std::string path = "/tmp/diffreg_test_slice.pgm";
  write_pgm_slice(path, dims, vol, 2);
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  int w = 0, h = 0, maxval = 0;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(w, 5);
  EXPECT_EQ(h, 3);
  EXPECT_EQ(maxval, 255);
  in.get();  // single whitespace after header
  std::vector<char> data(w * h);
  in.read(data.data(), w * h);
  EXPECT_EQ(in.gcount(), w * h);
  std::remove(path.c_str());
}

TEST(Io, PgmRejectsOutOfRangeSlice) {
  const Int3 dims{4, 3, 5};
  std::vector<real_t> vol(dims.prod(), 0.0);
  EXPECT_THROW(write_pgm_slice("/tmp/x.pgm", dims, vol, 4),
               std::invalid_argument);
  EXPECT_THROW(write_pgm_slice("/tmp/x.pgm", dims, vol, -1),
               std::invalid_argument);
}

TEST(Io, CsvWritesHeaderAndRows) {
  const std::string path = "/tmp/diffreg_test.csv";
  write_csv(path, {"a", "b"}, {{1, 2}, {3.5, -4}});
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3.5,-4");
  std::remove(path.c_str());
}

TEST(Metrics, RelativeResidualBoundaryCases) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {8, 8, 8});
    auto a = synthetic_template(decomp);
    grid::ScalarField b = a;
    // Perfect match -> 0; no improvement (deformed == original) -> 1.
    grid::ScalarField shifted = a;
    for (auto& v : shifted) v += 0.25;
    EXPECT_NEAR(relative_residual(decomp, b, a, shifted), 0.0, 1e-14);
    EXPECT_NEAR(relative_residual(decomp, shifted, a, shifted), 1.0, 1e-12);
  });
}

}  // namespace
}  // namespace diffreg::imaging
