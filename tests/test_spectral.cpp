// Spectral operator tests: exactness of derivatives on trigonometric
// polynomials (spectral methods are exact below the Nyquist limit),
// operator/inverse consistency, Leray projector invariants, Gaussian
// smoothing behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "grid/field_io.hpp"
#include "mpisim/communicator.hpp"
#include "spectral/operators.hpp"

namespace diffreg::spectral {
namespace {

using grid::PencilDecomp;

/// Fills a local field from f(x1, x2, x3).
template <typename F>
ScalarField fill(PencilDecomp& d, F&& f) {
  const Int3 dims = d.dims();
  const Int3 ld = d.local_real_dims();
  const real_t h1 = kTwoPi / dims[0], h2 = kTwoPi / dims[1],
               h3 = kTwoPi / dims[2];
  ScalarField out(d.local_real_size());
  index_t idx = 0;
  for (index_t a = 0; a < ld[0]; ++a)
    for (index_t b = 0; b < ld[1]; ++b)
      for (index_t c = 0; c < ld[2]; ++c, ++idx)
        out[idx] = f((d.range1().begin + a) * h1, (d.range2().begin + b) * h2,
                     c * h3);
  return out;
}

void expect_field_near(const ScalarField& got, const ScalarField& want,
                       real_t tol) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i)
    ASSERT_NEAR(got[i], want[i], tol) << "i=" << i;
}

struct SpectralCase {
  Int3 dims;
  int p;
};

class SpectralSweep : public ::testing::TestWithParam<SpectralCase> {};

TEST_P(SpectralSweep, GradientExactOnTrigPolynomial) {
  const auto [dims, p] = GetParam();
  mpisim::run_spmd(p, [&, dims = dims](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, dims);
    SpectralOps ops(decomp);
    // f = sin(2 x1) cos(x2) + sin(3 x3)
    auto f = fill(decomp, [](real_t x1, real_t x2, real_t x3) {
      return std::sin(2 * x1) * std::cos(x2) + std::sin(3 * x3);
    });
    VectorField g(decomp.local_real_size());
    ops.gradient(f, g);
    auto g1 = fill(decomp, [](real_t x1, real_t x2, real_t) {
      return 2 * std::cos(2 * x1) * std::cos(x2);
    });
    auto g2 = fill(decomp, [](real_t x1, real_t x2, real_t) {
      return -std::sin(2 * x1) * std::sin(x2);
    });
    auto g3 = fill(decomp, [](real_t, real_t, real_t x3) {
      return 3 * std::cos(3 * x3);
    });
    expect_field_near(g[0], g1, 1e-10);
    expect_field_near(g[1], g2, 1e-10);
    expect_field_near(g[2], g3, 1e-10);
  });
}

TEST_P(SpectralSweep, DivergenceMatchesAnalytic) {
  const auto [dims, p] = GetParam();
  mpisim::run_spmd(p, [&, dims = dims](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, dims);
    SpectralOps ops(decomp);
    VectorField v(decomp.local_real_size());
    v[0] = fill(decomp, [](real_t x1, real_t, real_t) { return std::sin(x1); });
    v[1] = fill(decomp, [](real_t, real_t x2, real_t) { return std::cos(2 * x2); });
    v[2] = fill(decomp, [](real_t, real_t, real_t x3) { return std::sin(x3); });
    ScalarField div;
    ops.divergence(v, div);
    auto expected = fill(decomp, [](real_t x1, real_t x2, real_t x3) {
      return std::cos(x1) - 2 * std::sin(2 * x2) + std::cos(x3);
    });
    expect_field_near(div, expected, 1e-10);
  });
}

TEST_P(SpectralSweep, LaplacianEigenfunction) {
  const auto [dims, p] = GetParam();
  mpisim::run_spmd(p, [&, dims = dims](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, dims);
    SpectralOps ops(decomp);
    // lap sin(x1)cos(2 x3) = -(1 + 4) sin(x1)cos(2 x3)
    auto f = fill(decomp, [](real_t x1, real_t, real_t x3) {
      return std::sin(x1) * std::cos(2 * x3);
    });
    ScalarField lap;
    ops.laplacian(f, lap);
    ScalarField expected = f;
    for (auto& v : expected) v *= -5.0;
    expect_field_near(lap, expected, 1e-10);

    // Biharmonic: lap^2 = 25 f.
    ScalarField bih;
    ops.biharmonic(f, bih);
    expected = f;
    for (auto& v : expected) v *= 25.0;
    expect_field_near(bih, expected, 1e-9);
  });
}

TEST_P(SpectralSweep, InverseLaplacianIsRightInverseOnZeroMean) {
  const auto [dims, p] = GetParam();
  mpisim::run_spmd(p, [&, dims = dims](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, dims);
    SpectralOps ops(decomp);
    auto f = fill(decomp, [](real_t x1, real_t x2, real_t x3) {
      return std::sin(x1) + std::cos(x2) * std::sin(2 * x3);  // zero mean
    });
    ScalarField u, back;
    ops.inv_laplacian(f, u);
    ops.laplacian(u, back);
    expect_field_near(back, f, 1e-9);

    // Same for the biharmonic.
    ops.inv_biharmonic(f, u);
    ops.biharmonic(u, back);
    expect_field_near(back, f, 1e-8);
  });
}

TEST_P(SpectralSweep, LerayProjectionMakesDivergenceFree) {
  const auto [dims, p] = GetParam();
  mpisim::run_spmd(p, [&, dims = dims](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, dims);
    SpectralOps ops(decomp);
    VectorField v(decomp.local_real_size());
    v[0] = fill(decomp, [](real_t x1, real_t x2, real_t) {
      return std::sin(x1) * std::cos(x2);
    });
    v[1] = fill(decomp, [](real_t, real_t x2, real_t x3) {
      return std::cos(x2) + std::sin(x3);
    });
    v[2] = fill(decomp, [](real_t x1, real_t, real_t x3) {
      return std::sin(x1 + x3);
    });
    ops.leray_project(v);
    ScalarField div;
    ops.divergence(v, div);
    EXPECT_LT(grid::norm_inf(decomp, div), 1e-10);
  });
}

TEST_P(SpectralSweep, LerayIsIdempotentAndKeepsDivFreeFields) {
  const auto [dims, p] = GetParam();
  mpisim::run_spmd(p, [&, dims = dims](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, dims);
    SpectralOps ops(decomp);
    // Analytically divergence-free field.
    VectorField v(decomp.local_real_size());
    v[0] = fill(decomp, [](real_t, real_t x2, real_t) { return std::sin(x2); });
    v[1] = fill(decomp, [](real_t, real_t, real_t x3) { return std::cos(x3); });
    v[2] = fill(decomp, [](real_t x1, real_t, real_t) { return std::sin(x1); });
    VectorField original = v;
    ops.leray_project(v);
    for (int d = 0; d < 3; ++d) expect_field_near(v[d], original[d], 1e-10);

    // Idempotence on a generic field: P(Pv) = Pv.
    VectorField w(decomp.local_real_size());
    w[0] = fill(decomp, [](real_t x1, real_t, real_t) { return std::cos(x1); });
    w[1] = fill(decomp, [](real_t x1, real_t x2, real_t) {
      return std::sin(x1) * std::sin(x2);
    });
    w[2] = fill(decomp, [](real_t, real_t x2, real_t) { return std::cos(x2); });
    ops.leray_project(w);
    VectorField w_once = w;
    ops.leray_project(w);
    for (int d = 0; d < 3; ++d) expect_field_near(w[d], w_once[d], 1e-10);
  });
}

TEST_P(SpectralSweep, RegularizationInverseIsExactInverse) {
  const auto [dims, p] = GetParam();
  mpisim::run_spmd(p, [&, dims = dims](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, dims);
    SpectralOps ops(decomp);
    VectorField v(decomp.local_real_size());
    v[0] = fill(decomp, [](real_t x1, real_t, real_t) { return std::sin(x1); });
    v[1] = fill(decomp, [](real_t, real_t x2, real_t) { return std::cos(x2); });
    v[2] = fill(decomp,
                [](real_t, real_t, real_t x3) { return std::sin(2 * x3); });
    for (int gamma : {1, 2}) {
      VectorField av(v.local_size()), back(v.local_size());
      ops.neg_laplacian_pow(v, gamma, av);
      ops.inv_neg_laplacian_pow(av, gamma, back);
      // Inputs are zero-mean, so the pseudo-inverse is exact.
      for (int d = 0; d < 3; ++d) expect_field_near(back[d], v[d], 1e-9);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sweep, SpectralSweep,
                         ::testing::Values(SpectralCase{{16, 16, 16}, 1},
                                           SpectralCase{{16, 16, 16}, 4},
                                           SpectralCase{{16, 12, 10}, 2},
                                           SpectralCase{{12, 18, 16}, 6}));

TEST(Spectral, GradientUsesBatchedInverseExchanges) {
  // Pre-batching, gradient cost 1 forward + 3 scalar inverses = 8 alltoallv
  // exchanges per rank; the batched inverse_many brings that to 4 (2 for the
  // forward, 2 for all three components together).
  const Int3 dims{8, 8, 8};
  mpisim::run_spmd(4, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, dims, 2, 2);
    SpectralOps ops(decomp);
    ScalarField f(decomp.local_real_size(), 1.0);
    VectorField g(decomp.local_real_size());
    comm.timings().clear();
    ops.gradient(f, g);
    EXPECT_EQ(comm.timings().exchanges(TimeKind::kFftComm), 4u);

    // Divergence batches its forward the same way: 2 + 2 instead of 6 + 2.
    VectorField v(decomp.local_real_size());
    ScalarField div(decomp.local_real_size());
    comm.timings().clear();
    ops.divergence(v, div);
    EXPECT_EQ(comm.timings().exchanges(TimeKind::kFftComm), 4u);

    // Vector Laplacian (the regularization apply): 4 instead of 12.
    VectorField w(decomp.local_real_size());
    comm.timings().clear();
    ops.neg_laplacian_pow(v, 1, w);
    EXPECT_EQ(comm.timings().exchanges(TimeKind::kFftComm), 4u);
  });
}

TEST(Spectral, GaussianSmoothingDampsHighFrequencies) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    SpectralOps ops(decomp);
    // Low mode + high mode; smoothing must keep the former, damp the latter.
    auto f = fill(decomp, [](real_t x1, real_t, real_t) {
      return std::sin(x1) + std::sin(7 * x1);
    });
    const real_t sigma = kTwoPi / 16;
    ScalarField smooth;
    ops.gaussian_smooth(f, {sigma, sigma, sigma}, smooth);
    auto low = fill(decomp, [&](real_t x1, real_t, real_t) {
      return std::exp(-0.5 * sigma * sigma) * std::sin(x1) +
             std::exp(-0.5 * 49 * sigma * sigma) * std::sin(7 * x1);
    });
    expect_field_near(smooth, low, 1e-10);
  });
}

TEST(Spectral, GaussianSmoothingPreservesMean) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {12, 12, 12});
    SpectralOps ops(decomp);
    auto f = fill(decomp, [](real_t x1, real_t x2, real_t) {
      return 2.5 + std::sin(3 * x1) * std::cos(2 * x2);
    });
    ScalarField smooth;
    ops.gaussian_smooth(f, {0.4, 0.4, 0.4}, smooth);
    ScalarField ones(decomp.local_real_size(), 1.0);
    const real_t vol = kTwoPi * kTwoPi * kTwoPi;
    EXPECT_NEAR(grid::dot(decomp, smooth, ones) / vol, 2.5, 1e-10);
  });
}

TEST(Spectral, GradientOfConstantIsZero) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {8, 8, 8});
    SpectralOps ops(decomp);
    ScalarField f(decomp.local_real_size(), 3.75);
    VectorField g(decomp.local_real_size());
    ops.gradient(f, g);
    for (int d = 0; d < 3; ++d)
      EXPECT_LT(grid::norm_inf(decomp, g[d]), 1e-12);
  });
}

}  // namespace
}  // namespace diffreg::spectral
