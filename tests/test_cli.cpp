// CLI parser tests: the one-grammar contract of cli/cli_options.hpp — a
// full command line and a --batch job-spec line share the same flag set,
// job lines inherit the command-line defaults and may override any per-job
// flag, and every malformed input produces a one-line error (never a
// print/exit from the library).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cli/cli_options.hpp"

namespace diffreg::cli {
namespace {

std::optional<CliOptions> parse_argv(std::vector<std::string> args,
                                     std::string& error) {
  std::vector<char*> argv;
  static std::string prog = "diffreg";
  argv.push_back(prog.data());
  for (auto& a : args) argv.push_back(a.data());
  return parse_options(static_cast<int>(argv.size()), argv.data(), error);
}

TEST(CliParse, DefaultsSurviveAnEmptyCommandLine) {
  std::string error;
  auto opt = parse_argv({}, error);
  ASSERT_TRUE(opt.has_value()) << error;
  EXPECT_EQ(opt->dims[0], 64);
  EXPECT_EQ(opt->ranks, 2);
  EXPECT_EQ(opt->workload, "synthetic");
  EXPECT_TRUE(opt->batch_file.empty());
  EXPECT_FALSE(opt->help);
}

TEST(CliParse, FullCommandLineRoundTrips) {
  std::string error;
  auto opt = parse_argv({"--grid", "32,16,16", "--ranks", "4", "--beta",
                         "1e-3", "--nt", "8", "--precision", "mixed",
                         "--amplitude", "0.7", "--batch", "jobs.txt",
                         "--shards", "2", "--incompressible", "--overlap",
                         "on"},
                        error);
  ASSERT_TRUE(opt.has_value()) << error;
  EXPECT_EQ(opt->dims[0], 32);
  EXPECT_EQ(opt->dims[1], 16);
  EXPECT_EQ(opt->dims[2], 16);
  EXPECT_EQ(opt->ranks, 4);
  EXPECT_DOUBLE_EQ(opt->reg.beta, 1e-3);
  EXPECT_EQ(opt->reg.nt, 8);
  EXPECT_EQ(opt->reg.precision, core::Precision::kMixed);
  EXPECT_DOUBLE_EQ(opt->synthetic_amplitude, 0.7);
  EXPECT_EQ(opt->batch_file, "jobs.txt");
  EXPECT_EQ(opt->shards, 2);
  EXPECT_TRUE(opt->reg.incompressible);
  EXPECT_TRUE(opt->reg.overlap);
}

TEST(CliParse, HelpShortCircuits) {
  std::string error;
  auto opt = parse_argv({"--help"}, error);
  ASSERT_TRUE(opt.has_value());
  EXPECT_TRUE(opt->help);
}

TEST(CliParse, ErrorsAreOneLineAndNameTheFlag) {
  std::string error;
  EXPECT_FALSE(parse_argv({"--no-such-flag"}, error).has_value());
  EXPECT_NE(error.find("--no-such-flag"), std::string::npos);

  EXPECT_FALSE(parse_argv({"--grid"}, error).has_value());
  EXPECT_NE(error.find("--grid"), std::string::npos);

  EXPECT_FALSE(parse_argv({"--grid", "banana"}, error).has_value());
  EXPECT_NE(error.find("--grid"), std::string::npos);

  // Axes below the 4-point floor are rejected even when well-formed.
  EXPECT_FALSE(parse_argv({"--grid", "2,2,2"}, error).has_value());

  EXPECT_FALSE(parse_argv({"--ranks", "0"}, error).has_value());
  EXPECT_NE(error.find("--ranks"), std::string::npos);

  // files workload needs both image paths.
  EXPECT_FALSE(parse_argv({"--workload", "files"}, error).has_value());
  EXPECT_FALSE(
      parse_argv({"--workload", "files", "--template", "t.bin"}, error)
          .has_value());
}

TEST(CliParse, JobLineInheritsAndOverridesDefaults) {
  std::string error;
  auto defaults = parse_argv({"--grid", "32,32,32", "--beta", "1e-3",
                              "--nt", "8"},
                             error);
  ASSERT_TRUE(defaults.has_value()) << error;

  // An empty job line is exactly the defaults.
  auto job = parse_options("", *defaults, error);
  ASSERT_TRUE(job.has_value()) << error;
  EXPECT_EQ(job->dims[0], 32);
  EXPECT_DOUBLE_EQ(job->reg.beta, 1e-3);
  EXPECT_EQ(job->reg.nt, 8);

  // Overrides replace only what they name.
  job = parse_options("--grid 16,16,16 --amplitude 0.35 --priority 5 "
                      "--deadline 2.5",
                      *defaults, error);
  ASSERT_TRUE(job.has_value()) << error;
  EXPECT_EQ(job->dims[0], 16);
  EXPECT_DOUBLE_EQ(job->reg.beta, 1e-3);  // inherited
  EXPECT_EQ(job->reg.nt, 8);              // inherited
  EXPECT_DOUBLE_EQ(job->synthetic_amplitude, 0.35);
  EXPECT_EQ(job->priority, 5);
  EXPECT_DOUBLE_EQ(job->deadline, 2.5);
}

TEST(CliParse, JobLineRejectsGlobalOnlyFlags) {
  std::string error;
  auto defaults = parse_argv({}, error);
  ASSERT_TRUE(defaults.has_value());
  for (const char* flag :
       {"--ranks 4", "--batch other.txt", "--shards 2", "--fault-spec x",
        "--comm-timeout-ms 5", "--help"}) {
    error.clear();
    EXPECT_FALSE(parse_options(flag, *defaults, error).has_value())
        << flag << " should be rejected in a job line";
    EXPECT_NE(error.find("global-only"), std::string::npos) << flag;
  }
}

TEST(CliParse, JobLineMalformedValuesError) {
  std::string error;
  auto defaults = parse_argv({}, error);
  ASSERT_TRUE(defaults.has_value());
  EXPECT_FALSE(parse_options("--grid", *defaults, error).has_value());
  EXPECT_NE(error.find("--grid"), std::string::npos);
  EXPECT_FALSE(parse_options("--nt notanumber", *defaults, error)
                   .has_value());
  EXPECT_NE(error.find("--nt"), std::string::npos);
  EXPECT_FALSE(
      parse_options("--unknown-flag 3", *defaults, error).has_value());
  EXPECT_NE(error.find("--unknown-flag"), std::string::npos);
}

TEST(CliParse, PrecisionAndRegularizerValuesAreValidated) {
  std::string error;
  auto opt = parse_argv({"--precision", "mixed", "--reg", "h1"}, error);
  ASSERT_TRUE(opt.has_value()) << error;
  EXPECT_EQ(opt->reg.reg_type, core::RegType::kH1Seminorm);
  EXPECT_FALSE(parse_argv({"--precision", "f16"}, error).has_value());
  EXPECT_NE(error.find("--precision"), std::string::npos);
  EXPECT_FALSE(parse_argv({"--reg", "h3"}, error).has_value());
  EXPECT_NE(error.find("--reg"), std::string::npos);
}

}  // namespace
}  // namespace diffreg::cli
