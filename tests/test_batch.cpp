// Batch service tests: PlanRegistry lease/reuse semantics (same-shape jobs
// build each plan family exactly once, mixed shapes and wire precisions get
// distinct entries), the transport pool, SolveRequest/solve() vs the legacy
// run() entrypoint, BatchSolver-vs-sequential bitwise identity at p = 1, 2
// and 4, priority/deadline semantics, and the fused cross-job paths
// (gaussian_smooth_many, solve_states_fused through FusedInterp).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/batch_manifest.hpp"
#include "core/diffreg.hpp"
#include "imaging/synthetic.hpp"

namespace diffreg::core {
namespace {

using grid::PencilDecomp;
using grid::ScalarField;
using grid::VectorField;

bool same_bits(const std::vector<real_t>& a, const std::vector<real_t>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(real_t)) == 0);
}

bool same_bits(const VectorField& a, const VectorField& b) {
  return same_bits(a.comp[0], b.comp[0]) && same_bits(a.comp[1], b.comp[1]) &&
         same_bits(a.comp[2], b.comp[2]);
}

void make_pair(PencilDecomp& decomp, real_t amplitude, int nt,
               ScalarField& rho_t, ScalarField& rho_r) {
  spectral::SpectralOps ops(decomp);
  rho_t = imaging::synthetic_template(decomp);
  auto v = imaging::synthetic_velocity(decomp, amplitude);
  rho_r = imaging::make_reference(ops, rho_t, v, nt);
}

RegistrationOptions small_options() {
  RegistrationOptions opt;
  opt.nt = 2;
  opt.max_newton_iters = 2;
  return opt;
}

// --------------------------------------------------------------------------
// PlanRegistry keying and reuse.

TEST(PlanRegistry, SameShapeLeasesBuildEachPlanOnce) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PlanRegistry reg(comm);
    auto d1 = reg.decomp({16, 16, 16});
    auto d2 = reg.decomp({16, 16, 16});
    EXPECT_EQ(d1.get(), d2.get());
    EXPECT_EQ(reg.stats().decomp_builds, 1);
    EXPECT_EQ(reg.stats().leases, 2);

    auto s1 = reg.spectral({16, 16, 16}, WirePrecision::kF64, false);
    auto s2 = reg.spectral({16, 16, 16}, WirePrecision::kF64, false);
    EXPECT_EQ(s1.get(), s2.get());
    EXPECT_EQ(reg.stats().spectral_builds, 1);
    // A spectral lease nests a decomp lease, so leases exceed builds.
    EXPECT_GT(reg.stats().leases, reg.plan_build_count());
  });
}

TEST(PlanRegistry, MixedShapesGetDistinctEntries) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PlanRegistry reg(comm);
    auto a = reg.decomp({16, 16, 16});
    auto b = reg.decomp({20, 16, 16});
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(reg.stats().decomp_builds, 2);
    EXPECT_EQ(reg.decomp_entries(), 2u);
  });
}

TEST(PlanRegistry, WirePrecisionAndOverlapKeysDoNotCollide) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PlanRegistry reg(comm);
    auto f64 = reg.spectral({16, 16, 16}, WirePrecision::kF64, false);
    auto f32 = reg.spectral({16, 16, 16}, WirePrecision::kF32, false);
    auto f64_ov = reg.spectral({16, 16, 16}, WirePrecision::kF64, true);
    EXPECT_NE(f64.get(), f32.get());
    EXPECT_NE(f64.get(), f64_ov.get());
    EXPECT_NE(f32.get(), f64_ov.get());
    EXPECT_EQ(reg.stats().spectral_builds, 3);
    EXPECT_EQ(reg.spectral_entries(), 3u);
    // One decomposition serves all three spectral plans.
    EXPECT_EQ(reg.stats().decomp_builds, 1);
  });
}

TEST(PlanRegistry, TransportPoolReusesReleasedInstances) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PlanRegistry reg(comm);
    semilag::TransportConfig tc;
    tc.nt = 2;
    auto t1 = reg.acquire_transport({16, 16, 16}, tc);
    auto* raw1 = t1.get();
    reg.release_transport({16, 16, 16}, tc, std::move(t1));
    auto t2 = reg.acquire_transport({16, 16, 16}, tc);
    EXPECT_EQ(raw1, t2.get());
    EXPECT_EQ(reg.stats().transport_builds, 1);
    // A second concurrent checkout needs a second instance.
    auto t3 = reg.acquire_transport({16, 16, 16}, tc);
    EXPECT_NE(t2.get(), t3.get());
    EXPECT_EQ(reg.stats().transport_builds, 2);
    reg.release_transport({16, 16, 16}, tc, std::move(t2));
    reg.release_transport({16, 16, 16}, tc, std::move(t3));
  });
}

// --------------------------------------------------------------------------
// SolveRequest as the one entrypoint.

TEST(SolveRequest, MatchesLegacyRunBitwise) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    ScalarField rho_t, rho_r;
    const RegistrationOptions opt = small_options();
    make_pair(decomp, 0.5, opt.nt, rho_t, rho_r);

    RegistrationSolver legacy(decomp, opt);
    auto ref = legacy.run(rho_t, rho_r);

    RegistrationSolver solver(decomp, opt);
    SolveRequest req;
    req.rho_t = &rho_t;
    req.rho_r = &rho_r;
    req.options = opt;
    req.job_id = 42;
    auto rep = solver.solve(req);

    EXPECT_TRUE(same_bits(ref.velocity, rep.velocity));
    EXPECT_EQ(ref.newton.iterations, rep.newton.iterations);
    EXPECT_EQ(rep.job_id, 42u);
    EXPECT_TRUE(rep.deadline_met);  // no deadline set
  });
}

TEST(SolveRequest, RegistryBackedSolverMatchesStandaloneBitwise) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    ScalarField rho_t, rho_r;
    const RegistrationOptions opt = small_options();
    PencilDecomp standalone_decomp(comm, {16, 16, 16});
    make_pair(standalone_decomp, 0.5, opt.nt, rho_t, rho_r);
    RegistrationSolver standalone(standalone_decomp, opt);
    auto ref = standalone.run(rho_t, rho_r);

    auto reg = std::make_shared<PlanRegistry>(comm);
    auto decomp = reg->decomp({16, 16, 16});
    RegistrationSolver pooled(*decomp, opt, reg);
    SolveRequest req;
    req.rho_t = &rho_t;
    req.rho_r = &rho_r;
    req.options = opt;
    auto rep = pooled.solve(req);

    EXPECT_TRUE(same_bits(ref.velocity, rep.velocity));
    EXPECT_GE(reg->stats().leases, 2);
  });
}

TEST(SolveRequest, DeadlineSemantics) {
  mpisim::run_spmd(1, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    ScalarField rho_t, rho_r;
    const RegistrationOptions opt = small_options();
    make_pair(decomp, 0.4, opt.nt, rho_t, rho_r);
    RegistrationSolver solver(decomp, opt);

    SolveRequest req;
    req.rho_t = &rho_t;
    req.rho_r = &rho_r;
    req.options = opt;
    req.deadline_seconds = 1e-9;  // impossible
    EXPECT_FALSE(solver.solve(req).deadline_met);
    req.deadline_seconds = 3600;  // generous
    EXPECT_TRUE(solver.solve(req).deadline_met);
  });
}

// --------------------------------------------------------------------------
// BatchSolver vs sequential: bitwise identity in the shards=1 mode.

void expect_batch_matches_sequential(int ranks) {
  mpisim::run_spmd(ranks, [&](mpisim::Communicator& comm) {
    const Int3 dims{16, 16, 16};
    const RegistrationOptions opt = small_options();
    const std::vector<real_t> amps{0.30, 0.35, 0.40};

    // Sequential reference: fresh solver and plans per job.
    std::vector<VectorField> ref;
    for (real_t amp : amps) {
      PencilDecomp decomp(comm, dims);
      ScalarField rho_t, rho_r;
      make_pair(decomp, amp, opt.nt, rho_t, rho_r);
      RegistrationSolver solver(decomp, opt);
      ref.push_back(solver.run(rho_t, rho_r).velocity);
    }

    BatchSolver batch(comm);
    for (std::size_t j = 0; j < amps.size(); ++j) {
      BatchJobSpec spec;
      spec.dims = dims;
      spec.request.options = opt;
      const real_t amp = amps[j];
      const int nt = opt.nt;
      spec.make_inputs = [amp, nt](PencilDecomp& d, ScalarField& t,
                                   ScalarField& r) {
        make_pair(d, amp, nt, t, r);
      };
      batch.submit(std::move(spec));
    }
    BatchOptions bopt;
    bopt.shards = 1;  // the bitwise-reference mode
    auto rep = batch.run_all(bopt);

    ASSERT_EQ(rep.reports.size(), amps.size());
    for (std::size_t j = 0; j < amps.size(); ++j)
      EXPECT_TRUE(same_bits(ref[j], rep.reports[j].velocity))
          << "job " << j << " diverged from its standalone solve at p="
          << ranks;
    // All jobs share one decomposition and one spectral plan set.
    EXPECT_EQ(rep.registry.decomp_builds, 1);
    EXPECT_EQ(rep.registry.spectral_builds, 1);
  });
}

TEST(BatchSolver, MatchesSequentialBitwiseP1) {
  expect_batch_matches_sequential(1);
}
TEST(BatchSolver, MatchesSequentialBitwiseP2) {
  expect_batch_matches_sequential(2);
}
TEST(BatchSolver, MatchesSequentialBitwiseP4) {
  expect_batch_matches_sequential(4);
}

TEST(BatchSolver, MixedShapesShareNothingButSolve) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    const RegistrationOptions opt = small_options();
    BatchSolver batch(comm);
    for (const Int3& dims : {Int3{16, 16, 16}, Int3{20, 16, 16}}) {
      BatchJobSpec spec;
      spec.dims = dims;
      spec.request.options = opt;
      const int nt = opt.nt;
      spec.make_inputs = [nt](PencilDecomp& d, ScalarField& t,
                              ScalarField& r) {
        make_pair(d, 0.4, nt, t, r);
      };
      batch.submit(std::move(spec));
    }
    BatchOptions bopt;
    bopt.shards = 1;
    auto rep = batch.run_all(bopt);
    ASSERT_EQ(rep.summary.size(), 2u);
    EXPECT_TRUE(rep.summary[0].converged || rep.summary[0].newton_iters > 0);
    EXPECT_EQ(rep.registry.decomp_builds, 2);
    EXPECT_EQ(rep.registry.spectral_builds, 2);
  });
}

TEST(BatchSolver, PriorityOrdersExecutionAndDeadlinesAreAdvisory) {
  mpisim::run_spmd(1, [&](mpisim::Communicator& comm) {
    const RegistrationOptions opt = small_options();
    BatchSolver batch(comm);
    const int priorities[4] = {0, 5, 0, 5};
    for (int j = 0; j < 4; ++j) {
      BatchJobSpec spec;
      spec.dims = {16, 16, 16};
      spec.request.options = opt;
      spec.request.priority = priorities[j];
      spec.request.deadline_seconds = (j == 0) ? 1e-9 : 0;  // job 1 misses
      const int nt = opt.nt;
      spec.make_inputs = [nt](PencilDecomp& d, ScalarField& t,
                              ScalarField& r) {
        make_pair(d, 0.4, nt, t, r);
      };
      batch.submit(std::move(spec));
    }
    BatchOptions bopt;
    bopt.shards = 1;
    auto rep = batch.run_all(bopt);
    ASSERT_EQ(rep.summary.size(), 4u);
    // Priority-5 jobs (ids 2 and 4) finish before every priority-0 job.
    const auto done = [&](int j) { return rep.summary[j].completed_at_seconds; };
    EXPECT_LT(done(1), done(0));
    EXPECT_LT(done(1), done(2));
    EXPECT_LT(done(3), done(0));
    EXPECT_LT(done(3), done(2));
    // FIFO within a class.
    EXPECT_LT(done(1), done(3));
    EXPECT_LT(done(0), done(2));
    // The impossible deadline is recorded, not enforced: the job still ran.
    EXPECT_FALSE(rep.summary[0].deadline_met);
    EXPECT_GT(rep.summary[0].newton_iters, 0);
    EXPECT_TRUE(rep.summary[1].deadline_met);
  });
}

TEST(BatchSolver, InvalidConfigurationsThrow) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    const RegistrationOptions opt = small_options();
    BatchSolver batch(comm);
    BatchJobSpec bad_dims;
    bad_dims.dims = {0, 16, 16};
    EXPECT_THROW(batch.submit(std::move(bad_dims)), std::invalid_argument);
    BatchJobSpec no_inputs;
    no_inputs.dims = {16, 16, 16};  // neither pointers nor a factory
    EXPECT_THROW(batch.submit(std::move(no_inputs)), std::invalid_argument);

    BatchJobSpec spec;
    spec.dims = {16, 16, 16};
    spec.request.options = opt;
    const int nt = opt.nt;
    spec.make_inputs = [nt](PencilDecomp& d, ScalarField& t, ScalarField& r) {
      make_pair(d, 0.4, nt, t, r);
    };
    batch.submit(std::move(spec));
    BatchOptions bopt;
    bopt.shards = 3;  // does not divide p=2
    EXPECT_THROW(batch.run_all(bopt), std::invalid_argument);

    // Raw-pointer inputs live on the parent decomposition and pin shards=1.
    PencilDecomp decomp(comm, {16, 16, 16});
    ScalarField rho_t, rho_r;
    make_pair(decomp, 0.4, nt, rho_t, rho_r);
    BatchJobSpec raw;
    raw.dims = {16, 16, 16};
    raw.request.options = opt;
    raw.request.rho_t = &rho_t;
    raw.request.rho_r = &rho_r;
    batch.submit(std::move(raw));
    bopt.shards = 2;
    EXPECT_THROW(batch.run_all(bopt), std::invalid_argument);
  });
}

// --------------------------------------------------------------------------
// Fused cross-job phases are bitwise identical to their per-job forms.

TEST(FusedPhases, GaussianSmoothManyMatchesPerField) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    spectral::SpectralOps ops(decomp);
    const index_t n = decomp.local_real_size();

    std::vector<ScalarField> fields;
    fields.push_back(imaging::synthetic_template(decomp));
    fields.push_back(imaging::sphere_phantom(decomp, {3.0, 3.0, 3.0}, 1.2));
    fields.push_back(imaging::brain_phantom(decomp, 1));
    const std::vector<Vec3> sigmas{{0.2, 0.2, 0.2}, {0.3, 0.1, 0.2},
                                   {0.05, 0.4, 0.15}};

    std::vector<ScalarField> ref(3, ScalarField(n));
    for (int i = 0; i < 3; ++i)
      ops.gaussian_smooth(fields[i], sigmas[i], ref[i]);

    std::vector<ScalarField> out(3, ScalarField(n));
    const real_t* ins[3] = {fields[0].data(), fields[1].data(),
                            fields[2].data()};
    real_t* outs[3] = {out[0].data(), out[1].data(), out[2].data()};
    ops.gaussian_smooth_many(std::span<const real_t* const>(ins, 3),
                             std::span<const Vec3>(sigmas),
                             std::span<real_t* const>(outs, 3));
    for (int i = 0; i < 3; ++i)
      EXPECT_TRUE(same_bits(ref[i], out[i])) << "field " << i;
  });
}

void expect_fused_states_match(WirePrecision wire, bool overlap) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    spectral::SpectralOps ops(decomp, wire, overlap);
    semilag::TransportConfig tc;
    tc.nt = 3;
    tc.wire = wire;
    tc.overlap = overlap;

    auto rho_a = imaging::synthetic_template(decomp);
    auto rho_b = imaging::sphere_phantom(decomp, {3.0, 3.0, 3.0}, 1.3);
    auto va = imaging::synthetic_velocity(decomp, 0.4);
    auto vb = imaging::synthetic_velocity(decomp, 0.55);

    semilag::Transport ta(ops, tc), tb(ops, tc);
    ta.set_velocity(va);
    tb.set_velocity(vb);

    // Per-transport reference.
    ta.solve_state(rho_a);
    tb.solve_state(rho_b);
    const ScalarField ref_a = ta.final_state();
    const ScalarField ref_b = tb.final_state();

    // Fused lockstep solve.
    interp::FusedInterp fused(decomp, wire, overlap);
    semilag::Transport* transports[2] = {&ta, &tb};
    const ScalarField* rho0[2] = {&rho_a, &rho_b};
    semilag::solve_states_fused(
        std::span<semilag::Transport* const>(transports, 2),
        std::span<const ScalarField* const>(rho0, 2), fused);

    EXPECT_TRUE(same_bits(ref_a, ta.final_state()));
    EXPECT_TRUE(same_bits(ref_b, tb.final_state()));
    EXPECT_EQ(fused.fused_calls(), tc.nt);
  });
}

TEST(FusedPhases, SolveStatesFusedMatchesSolveState) {
  expect_fused_states_match(WirePrecision::kF64, false);
}
TEST(FusedPhases, SolveStatesFusedMatchesSolveStateF32Wire) {
  expect_fused_states_match(WirePrecision::kF32, false);
}
TEST(FusedPhases, SolveStatesFusedMatchesSolveStateOverlap) {
  expect_fused_states_match(WirePrecision::kF64, true);
}

TEST(FusedPhases, FusedDeformedTemplateMatchesPerJob) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    const Int3 dims{16, 16, 16};
    const RegistrationOptions opt = small_options();
    const std::vector<real_t> amps{0.30, 0.45};

    // Per-job reference: solve, then deform_template.
    std::vector<ScalarField> ref;
    std::vector<VectorField> velocities;
    for (real_t amp : amps) {
      PencilDecomp decomp(comm, dims);
      ScalarField rho_t, rho_r;
      make_pair(decomp, amp, opt.nt, rho_t, rho_r);
      RegistrationSolver solver(decomp, opt);
      auto res = solver.run(rho_t, rho_r);
      ScalarField deformed;
      solver.deform_template(rho_t, res.velocity, deformed);
      ref.push_back(std::move(deformed));
      velocities.push_back(std::move(res.velocity));
    }

    BatchSolver batch(comm);
    for (real_t amp : amps) {
      BatchJobSpec spec;
      spec.dims = dims;
      spec.request.options = opt;
      const int nt = opt.nt;
      spec.make_inputs = [amp, nt](PencilDecomp& d, ScalarField& t,
                                   ScalarField& r) {
        make_pair(d, amp, nt, t, r);
      };
      batch.submit(std::move(spec));
    }
    BatchOptions bopt;
    bopt.shards = 1;
    bopt.want_deformed = true;
    bopt.fuse_exchanges = true;
    auto rep = batch.run_all(bopt);

    ASSERT_EQ(rep.deformed.size(), amps.size());
    for (std::size_t j = 0; j < amps.size(); ++j) {
      EXPECT_TRUE(same_bits(velocities[j], rep.reports[j].velocity));
      EXPECT_TRUE(same_bits(ref[j], rep.deformed[j])) << "job " << j;
    }
  });
}

// --------------------------------------------------------------------------
// Deadline enforcement (BatchOptions::enforce_deadlines; advisory remains
// the library default, pinned above).

TEST(BatchSolver, EnforcedDeadlineCancelsAtAdmission) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    const RegistrationOptions opt = small_options();
    BatchSolver batch(comm);
    BatchJobSpec late;
    late.dims = {16, 16, 16};
    late.request.options = opt;
    late.request.deadline_seconds = 1e-9;  // already passed at admission
    const int nt = opt.nt;
    late.make_inputs = [nt](PencilDecomp& d, ScalarField& t, ScalarField& r) {
      make_pair(d, 0.4, nt, t, r);
    };
    batch.submit(std::move(late));

    BatchJobSpec fine;
    fine.dims = {16, 16, 16};
    fine.request.options = opt;
    fine.make_inputs = [nt](PencilDecomp& d, ScalarField& t, ScalarField& r) {
      make_pair(d, 0.35, nt, t, r);
    };
    batch.submit(std::move(fine));

    BatchOptions bopt;
    bopt.shards = 1;
    bopt.enforce_deadlines = true;
    auto rep = batch.run_all(bopt);

    ASSERT_EQ(rep.summary.size(), 2u);
    EXPECT_EQ(rep.summary[0].outcome, JobOutcome::kDeadlineExceeded);
    EXPECT_EQ(rep.summary[0].newton_iters, 0);  // no solve was spent on it
    EXPECT_FALSE(rep.summary[0].deadline_met);
    EXPECT_GT(rep.summary[0].completed_at_seconds, 0.0);
    EXPECT_EQ(rep.summary[1].outcome, JobOutcome::kDone);
    EXPECT_TRUE(rep.summary[1].deadline_met);
    // The cancelled job produced no report.
    ASSERT_EQ(rep.reports.size(), 1u);
    EXPECT_EQ(rep.reports[0].job_id, rep.summary[1].job_id);
  });
}

TEST(BatchSolver, EnforcedDeadlineCancelsBetweenNewtonIterates) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    const RegistrationOptions opt = small_options();
    BatchSolver batch(comm);
    BatchJobSpec spec;
    spec.dims = {16, 16, 16};
    spec.request.options = opt;
    // Admission is comfortably inside the budget; the first Newton iterate
    // then burns past it (the caller hook sleeps, chained BEFORE the
    // lateness vote), so the cancellation fires mid-solve.
    spec.request.deadline_seconds = 0.5;
    spec.request.options.iterate_hook = [](const NewtonIterateInfo&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(600));
    };
    const int nt = opt.nt;
    spec.make_inputs = [nt](PencilDecomp& d, ScalarField& t, ScalarField& r) {
      make_pair(d, 0.4, nt, t, r);
    };
    batch.submit(std::move(spec));

    BatchOptions bopt;
    bopt.shards = 1;
    bopt.enforce_deadlines = true;
    auto rep = batch.run_all(bopt);

    ASSERT_EQ(rep.summary.size(), 1u);
    EXPECT_EQ(rep.summary[0].outcome, JobOutcome::kDeadlineExceeded);
    EXPECT_EQ(rep.summary[0].attempts, 1);
    EXPECT_FALSE(rep.summary[0].deadline_met);
    EXPECT_GE(rep.summary[0].completed_at_seconds, 0.5);
    EXPECT_TRUE(rep.reports.empty());
  });
}

TEST(BatchSolver, DegradeReadmitsACancelledJobOnce) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    const RegistrationOptions opt = small_options();
    BatchSolver batch(comm);
    bool slept = false;
    BatchJobSpec spec;
    spec.dims = {16, 16, 16};
    spec.request.options = opt;
    spec.request.deadline_seconds = 0.5;
    // First attempt: the hook burns the budget once, the lateness vote
    // cancels. The degraded re-admission runs the same hook without the
    // sleep and without enforcement, and must complete.
    spec.request.options.iterate_hook = [&slept](const NewtonIterateInfo&) {
      if (slept) return;
      slept = true;
      std::this_thread::sleep_for(std::chrono::milliseconds(600));
    };
    const int nt = opt.nt;
    spec.make_inputs = [nt](PencilDecomp& d, ScalarField& t, ScalarField& r) {
      make_pair(d, 0.4, nt, t, r);
    };
    batch.submit(std::move(spec));

    BatchOptions bopt;
    bopt.shards = 1;
    bopt.enforce_deadlines = true;
    bopt.degrade = true;
    auto rep = batch.run_all(bopt);

    ASSERT_EQ(rep.summary.size(), 1u);
    EXPECT_EQ(rep.summary[0].outcome, JobOutcome::kDegraded);
    EXPECT_EQ(rep.summary[0].attempts, 2);
    EXPECT_FALSE(rep.summary[0].deadline_met);  // judged vs admission
    // The degrade ladder halves max_newton_iters (2 -> 1): the job ran,
    // but on the cheaper configuration.
    EXPECT_GT(rep.summary[0].newton_iters, 0);
    EXPECT_LE(rep.summary[0].newton_iters, 1);
    ASSERT_EQ(rep.reports.size(), 1u);
  });
}

// --------------------------------------------------------------------------
// Batch manifests: persistence round-trip and resume semantics.

TEST(BatchManifest, FileRoundTripPreservesEveryField) {
  const std::string path = "test_batch_manifest_roundtrip.json";
  std::remove(path.c_str());
  EXPECT_TRUE(read_manifest_file(path).empty());  // missing file: first run

  std::vector<BatchManifestEntry> entries(2);
  entries[0].job_id = 7;
  entries[0].outcome = "done";
  entries[0].attempts = 2;
  entries[0].completed_at_seconds = 1.25;
  entries[0].deadline_met = false;
  entries[0].checkpoint_path = "state.json.job7.ckpt";
  entries[1].job_id = 9;
  entries[1].outcome = "retrying";
  entries[1].attempts = 1;
  write_manifest_file(path, entries);

  const auto back = read_manifest_file(path);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].job_id, 7u);
  EXPECT_EQ(back[0].outcome, "done");
  EXPECT_EQ(back[0].attempts, 2);
  EXPECT_DOUBLE_EQ(back[0].completed_at_seconds, 1.25);
  EXPECT_FALSE(back[0].deadline_met);
  EXPECT_EQ(back[0].checkpoint_path, "state.json.job7.ckpt");
  EXPECT_EQ(back[1].job_id, 9u);
  EXPECT_EQ(back[1].outcome, "retrying");
  EXPECT_TRUE(back[1].deadline_met);

  // Corruption is a structured error, not a silent re-run.
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a manifest\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(read_manifest_file(path), BatchManifestError);
  std::remove(path.c_str());
}

TEST(BatchManifest, ResumeSkipsCompletedJobsWithZeroPlanWork) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    const std::string path = "test_batch_manifest_resume.json";
    if (comm.rank() == 0) std::remove(path.c_str());
    comm.barrier();

    const RegistrationOptions opt = small_options();
    const std::vector<real_t> amps{0.30, 0.40};
    auto submit_jobs = [&](BatchSolver& batch) {
      for (std::size_t j = 0; j < amps.size(); ++j) {
        BatchJobSpec spec;
        spec.dims = {16, 16, 16};
        spec.request.options = opt;
        spec.request.job_id = 100 + j;  // stable ids: the resume match key
        const real_t amp = amps[j];
        const int nt = opt.nt;
        spec.make_inputs = [amp, nt](PencilDecomp& d, ScalarField& t,
                                     ScalarField& r) {
          make_pair(d, amp, nt, t, r);
        };
        batch.submit(std::move(spec));
      }
    };

    BatchOptions bopt;
    bopt.shards = 1;
    bopt.manifest_path = path;

    BatchSolver first(comm);
    submit_jobs(first);
    auto rep1 = first.run_all(bopt);
    ASSERT_EQ(rep1.summary.size(), amps.size());
    for (const auto& s : rep1.summary)
      EXPECT_EQ(s.outcome, JobOutcome::kDone);

    // Second launch (fresh solver = fresh registries, as after a kill):
    // every job is final in the manifest, so nothing runs and no plan is
    // built or leased.
    BatchSolver second(comm);
    submit_jobs(second);
    auto rep2 = second.run_all(bopt);
    ASSERT_EQ(rep2.summary.size(), amps.size());
    for (std::size_t j = 0; j < amps.size(); ++j) {
      EXPECT_EQ(rep2.summary[j].outcome, JobOutcome::kDone);
      EXPECT_EQ(rep2.summary[j].shard, -1);  // restored, not placed
      EXPECT_FALSE(rep2.summary[j].ran_here);
      EXPECT_EQ(rep2.summary[j].attempts, rep1.summary[j].attempts);
      EXPECT_DOUBLE_EQ(rep2.summary[j].completed_at_seconds,
                       rep1.summary[j].completed_at_seconds);
    }
    EXPECT_TRUE(rep2.reports.empty());
    EXPECT_EQ(rep2.rounds, 1);
    EXPECT_EQ(rep2.registry.decomp_builds, 0);
    EXPECT_EQ(rep2.registry.spectral_builds, 0);
    EXPECT_EQ(rep2.registry.leases, 0);

    comm.barrier();
    if (comm.rank() == 0) std::remove(path.c_str());
  });
}

TEST(BatchManifest, ResumeWarmStartsAnInFlightJobFromItsCheckpoint) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    const std::string path = "test_batch_manifest_warm.json";
    const std::string ckpt = "test_batch_manifest_warm.ckpt";
    if (comm.rank() == 0) {
      std::remove(path.c_str());
      std::remove(ckpt.c_str());
    }
    comm.barrier();

    const RegistrationOptions opt = small_options();
    const int nt = opt.nt;
    auto make_spec = [&]() {
      BatchJobSpec spec;
      spec.dims = {16, 16, 16};
      spec.request.options = opt;
      spec.request.job_id = 201;
      spec.request.checkpoint_path = ckpt;
      spec.make_inputs = [nt](PencilDecomp& d, ScalarField& t,
                              ScalarField& r) {
        make_pair(d, 0.4, nt, t, r);
      };
      return spec;
    };

    // First launch, no manifest: runs the job and leaves its per-iterate
    // solver checkpoint behind (as a killed batch would).
    BatchSolver first(comm);
    first.submit(make_spec());
    BatchOptions bopt;
    bopt.shards = 1;
    auto rep1 = first.run_all(bopt);
    ASSERT_EQ(rep1.summary.size(), 1u);
    ASSERT_EQ(rep1.summary[0].outcome, JobOutcome::kDone);

    // Craft the manifest a kill mid-job would have left: non-final
    // outcome, one attempt spent, checkpoint path recorded.
    if (comm.rank() == 0) {
      BatchManifestEntry e;
      e.job_id = 201;
      e.outcome = "retrying";
      e.attempts = 1;
      e.checkpoint_path = ckpt;
      write_manifest_file(path, {e});
    }
    comm.barrier();

    // Resume: the job re-runs (non-final outcome) with the prior attempt
    // count carried over and the checkpoint velocity as its warm start.
    BatchSolver second(comm);
    second.submit(make_spec());
    bopt.manifest_path = path;
    auto rep2 = second.run_all(bopt);
    ASSERT_EQ(rep2.summary.size(), 1u);
    EXPECT_EQ(rep2.summary[0].outcome, JobOutcome::kDone);
    EXPECT_EQ(rep2.summary[0].attempts, 2);  // 1 restored + this run
    EXPECT_TRUE(rep2.summary[0].ran_here);
    // Warm-started from the converged iterate, the resume needs no more
    // Newton iterations than the cold run.
    EXPECT_LE(rep2.summary[0].newton_iters, rep1.summary[0].newton_iters);
    ASSERT_EQ(rep2.reports.size(), 1u);

    comm.barrier();
    if (comm.rank() == 0) {
      std::remove(path.c_str());
      std::remove(ckpt.c_str());
    }
  });
}

}  // namespace
}  // namespace diffreg::core
