// Unit tests for common/: block distribution, periodic helpers, timers,
// small linear algebra.
#include <gtest/gtest.h>

#include "common/partition.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"

namespace diffreg {
namespace {

TEST(Types, LinearIndexRowMajor) {
  const Int3 n{4, 5, 6};
  EXPECT_EQ(linear_index(0, 0, 0, n), 0);
  EXPECT_EQ(linear_index(0, 0, 5, n), 5);
  EXPECT_EQ(linear_index(0, 1, 0, n), 6);
  EXPECT_EQ(linear_index(1, 0, 0, n), 30);
  EXPECT_EQ(linear_index(3, 4, 5, n), 4 * 5 * 6 - 1);
}

TEST(Types, PeriodicWrapRange) {
  EXPECT_DOUBLE_EQ(periodic_wrap(0.5, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(periodic_wrap(2.5, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(periodic_wrap(-0.5, 2.0), 1.5);
  EXPECT_DOUBLE_EQ(periodic_wrap(-4.0, 2.0), 0.0);
  // Tiny negative values must not round up to the period itself.
  const real_t w = periodic_wrap(-1e-18, kTwoPi);
  EXPECT_GE(w, 0.0);
  EXPECT_LT(w, kTwoPi);
}

TEST(Types, PeriodicIndex) {
  EXPECT_EQ(periodic_index(5, 4), 1);
  EXPECT_EQ(periodic_index(-1, 4), 3);
  EXPECT_EQ(periodic_index(-5, 4), 3);
  EXPECT_EQ(periodic_index(0, 4), 0);
}

TEST(Types, Det3Identity) {
  EXPECT_DOUBLE_EQ(det3({1, 0, 0}, {0, 1, 0}, {0, 0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(det3({2, 0, 0}, {0, 3, 0}, {0, 0, 4}), 24.0);
  // Swapping rows flips the sign.
  EXPECT_DOUBLE_EQ(det3({0, 1, 0}, {1, 0, 0}, {0, 0, 1}), -1.0);
  // Singular matrix.
  EXPECT_DOUBLE_EQ(det3({1, 2, 3}, {2, 4, 6}, {0, 0, 1}), 0.0);
}

struct PartitionCase {
  index_t n;
  int p;
};

class PartitionProperty : public ::testing::TestWithParam<PartitionCase> {};

TEST_P(PartitionProperty, RangesTileExactly) {
  const auto [n, p] = GetParam();
  index_t covered = 0;
  index_t prev_end = 0;
  for (int r = 0; r < p; ++r) {
    const BlockRange b = block_range(n, p, r);
    EXPECT_EQ(b.begin, prev_end) << "ranges must be contiguous";
    EXPECT_GE(b.size(), n / p);
    EXPECT_LE(b.size(), n / p + 1);
    covered += b.size();
    prev_end = b.end;
  }
  EXPECT_EQ(covered, n);
}

TEST_P(PartitionProperty, OwnerMatchesRange) {
  const auto [n, p] = GetParam();
  for (index_t i = 0; i < n; ++i) {
    const int owner = block_owner(i, n, p);
    const BlockRange b = block_range(n, p, owner);
    EXPECT_GE(i, b.begin);
    EXPECT_LT(i, b.end);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionProperty,
    ::testing::Values(PartitionCase{1, 1}, PartitionCase{7, 1},
                      PartitionCase{8, 2}, PartitionCase{7, 2},
                      PartitionCase{300, 7}, PartitionCase{256, 16},
                      PartitionCase{10, 10}, PartitionCase{64, 3},
                      PartitionCase{1024, 32}));

TEST(Timer, AccumulatesByKind) {
  Timings t;
  t.add(TimeKind::kFftComm, 1.0);
  t.add(TimeKind::kFftComm, 0.5);
  t.add(TimeKind::kInterpExec, 2.0);
  EXPECT_DOUBLE_EQ(t.get(TimeKind::kFftComm), 1.5);
  EXPECT_DOUBLE_EQ(t.get(TimeKind::kInterpExec), 2.0);
  EXPECT_DOUBLE_EQ(t.get(TimeKind::kFftExec), 0.0);
}

TEST(Timer, MaxWithTakesElementwiseMax) {
  Timings a, b;
  a.add(TimeKind::kFftComm, 1.0);
  b.add(TimeKind::kFftComm, 2.0);
  a.add(TimeKind::kOther, 3.0);
  a.max_with(b);
  EXPECT_DOUBLE_EQ(a.get(TimeKind::kFftComm), 2.0);
  EXPECT_DOUBLE_EQ(a.get(TimeKind::kOther), 3.0);
}

TEST(Timer, DeltaSubtracts) {
  Timings before, after;
  before.add(TimeKind::kFftExec, 1.0);
  after.add(TimeKind::kFftExec, 3.5);
  const Timings d = timings_delta(before, after);
  EXPECT_DOUBLE_EQ(d.get(TimeKind::kFftExec), 2.5);
}

TEST(Timer, ScopedTimerMeasuresNonNegative) {
  Timings t;
  {
    ScopedTimer s(t, TimeKind::kOther);
    volatile double x = 0;
    for (int i = 0; i < 1000; ++i) x = x + i;
    (void)x;
  }
  EXPECT_GE(t.get(TimeKind::kOther), 0.0);
}

TEST(Timer, HiddenCommPlumbing) {
  // The hidden-comm counter must ride clear/+=/max_with/timings_delta like
  // every other Timings field, and the overlap efficiency is the hidden
  // fraction of total wire time.
  Timings a, b;
  a.add(TimeKind::kFftComm, 3.0);
  a.add_hidden(TimeKind::kFftComm, 1.0);
  EXPECT_DOUBLE_EQ(a.hidden(TimeKind::kFftComm), 1.0);
  EXPECT_DOUBLE_EQ(a.overlap_efficiency(TimeKind::kFftComm), 0.25);
  EXPECT_DOUBLE_EQ(a.overlap_efficiency(TimeKind::kInterpComm), 0.0);

  b.add_hidden(TimeKind::kFftComm, 0.5);
  b.add_hidden(TimeKind::kInterpComm, 2.0);
  a += b;
  EXPECT_DOUBLE_EQ(a.hidden(TimeKind::kFftComm), 1.5);
  EXPECT_DOUBLE_EQ(a.hidden(TimeKind::kInterpComm), 2.0);

  Timings c;
  c.add_hidden(TimeKind::kFftComm, 9.0);
  a.max_with(c);
  EXPECT_DOUBLE_EQ(a.hidden(TimeKind::kFftComm), 9.0);
  EXPECT_DOUBLE_EQ(a.hidden(TimeKind::kInterpComm), 2.0);

  Timings before, after;
  before.add_hidden(TimeKind::kInterpComm, 1.0);
  after.add_hidden(TimeKind::kInterpComm, 4.0);
  EXPECT_DOUBLE_EQ(timings_delta(before, after).hidden(TimeKind::kInterpComm),
                   3.0);

  a.clear();
  EXPECT_DOUBLE_EQ(a.hidden(TimeKind::kFftComm), 0.0);
  EXPECT_DOUBLE_EQ(a.overlap_efficiency(TimeKind::kFftComm), 0.0);
}

TEST(Timer, KindNames) {
  EXPECT_EQ(time_kind_name(TimeKind::kFftComm), "fft_comm");
  EXPECT_EQ(time_kind_name(TimeKind::kInterpExec), "interp_exec");
}

}  // namespace
}  // namespace diffreg
