// Chaos tests of the batch service's fault isolation (docs/FAULT_MODEL.md):
// a fault is confined to the job (and at worst the shard) it hit. Retried
// jobs are bitwise identical to their fault-free runs, poison jobs burn
// exactly the retry budget, a shard whose recovery fails is rebuilt with its
// unfinished jobs redistributed, and retries never reset a job's admission
// clock. Faults are injected two ways: the mpisim fault injector (seeded
// rank crash, watchdog timeouts — the "real" path) and iterate hooks that
// throw structured errors on every rank at the same Newton iterate (the
// deterministic path, independent of backend op counts).
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <thread>
#include <vector>

#include "core/diffreg.hpp"
#include "imaging/synthetic.hpp"

namespace diffreg::core {
namespace {

using grid::PencilDecomp;
using grid::ScalarField;
using grid::VectorField;

bool same_bits(const std::vector<real_t>& a, const std::vector<real_t>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(real_t)) == 0);
}

bool same_bits(const VectorField& a, const VectorField& b) {
  return same_bits(a.comp[0], b.comp[0]) && same_bits(a.comp[1], b.comp[1]) &&
         same_bits(a.comp[2], b.comp[2]);
}

void make_pair(PencilDecomp& decomp, real_t amplitude, int nt,
               ScalarField& rho_t, ScalarField& rho_r) {
  spectral::SpectralOps ops(decomp);
  rho_t = imaging::synthetic_template(decomp);
  auto v = imaging::synthetic_velocity(decomp, amplitude);
  rho_r = imaging::make_reference(ops, rho_t, v, nt);
}

RegistrationOptions small_options() {
  RegistrationOptions opt;
  opt.nt = 2;
  opt.max_newton_iters = 2;
  return opt;
}

BatchJobSpec synthetic_job(real_t amplitude,
                           const RegistrationOptions& opt) {
  BatchJobSpec spec;
  spec.dims = {16, 16, 16};
  spec.request.options = opt;
  const int nt = opt.nt;
  spec.make_inputs = [amplitude, nt](PencilDecomp& d, ScalarField& t,
                                     ScalarField& r) {
    make_pair(d, amplitude, nt, t, r);
  };
  return spec;
}

// --------------------------------------------------------------------------
// Retry transparency: a job whose first attempt dies with a structured
// error is requeued and its retry — a cold start on drained communicators —
// is bitwise identical to the fault-free run.

TEST(BatchChaos, HookFaultRetryIsBitwiseIdentical) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    const RegistrationOptions opt = small_options();
    const std::vector<real_t> amps{0.30, 0.40};

    // Fault-free reference batch.
    BatchSolver ref_batch(comm);
    for (real_t amp : amps) ref_batch.submit(synthetic_job(amp, opt));
    BatchOptions bopt;
    bopt.shards = 1;
    auto ref = ref_batch.run_all(bopt);
    ASSERT_EQ(ref.reports.size(), amps.size());

    // Same jobs, but job 0's first attempt dies after its first Newton
    // iterate. The hook throws on EVERY rank at the same iterate (rank-local
    // flag, lockstep execution), so no messages are stranded.
    BatchSolver batch(comm);
    bool thrown = false;
    for (std::size_t j = 0; j < amps.size(); ++j) {
      BatchJobSpec spec = synthetic_job(amps[j], opt);
      if (j == 0)
        spec.request.options.iterate_hook =
            [&thrown](const NewtonIterateInfo&) {
              if (thrown) return;
              thrown = true;
              throw grid::NonFiniteFieldError(
                  "injected: first attempt dies at iterate 1");
            };
      batch.submit(std::move(spec));
    }
    auto rep = batch.run_all(bopt);

    ASSERT_EQ(rep.summary.size(), amps.size());
    EXPECT_EQ(rep.summary[0].outcome, JobOutcome::kDone);
    EXPECT_EQ(rep.summary[0].attempts, 2);
    EXPECT_EQ(rep.summary[1].outcome, JobOutcome::kDone);
    EXPECT_EQ(rep.summary[1].attempts, 1);
    EXPECT_EQ(rep.rounds, 1);
    EXPECT_EQ(rep.shard_rebuilds, 0);
    // Reports are in completion order — the retried job finishes LAST
    // (requeued behind its shardmates) — so match them by job id.
    ASSERT_EQ(rep.reports.size(), amps.size());
    for (const auto& got : rep.reports) {
      bool matched = false;
      for (const auto& want : ref.reports)
        if (want.job_id == got.job_id) {
          EXPECT_TRUE(same_bits(want.velocity, got.velocity))
              << "job " << got.job_id << " diverged from its fault-free run";
          matched = true;
        }
      EXPECT_TRUE(matched);
    }
  });
}

// --------------------------------------------------------------------------
// The injected-crash path end to end: a seeded one-shot rank crash lands
// mid-batch; the victim's peer times out on the watchdog, the shard
// recovers (quiesce + drain), the hit job retries, and every job of the
// batch still completes bitwise identical to the fault-free run.

TEST(BatchChaos, InjectedRankCrashRetriesAndCompletes) {
  const std::vector<real_t> amps{0.30, 0.35, 0.40};
  const RegistrationOptions opt = small_options();
  BatchOptions bopt;
  bopt.shards = 1;

  // Fault-free reference, per-rank results kept across the two launches
  // (ranks are threads of this process), keyed by job id: the faulted
  // run's completion order differs once the hit job is requeued.
  std::array<std::map<std::uint64_t, VectorField>, 2> ref;
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    BatchSolver batch(comm);
    for (real_t amp : amps) batch.submit(synthetic_job(amp, opt));
    auto rep = batch.run_all(bopt);
    for (auto& r : rep.reports)
      ref[static_cast<std::size_t>(comm.rank())][r.job_id] =
          std::move(r.velocity);
  });

  mpisim::SpmdOptions sopts;
  // One-shot crash of rank 1, placed (empirically) inside a solve; the
  // retry boundary also absorbs input-phase placements, but mid-solve
  // exercises the full watchdog + recover + requeue chain.
  sopts.fault_spec = "seed=3,crash_rank=1,crash_at=500";
  sopts.comm_timeout_ms = 400;
  mpisim::run_spmd(
      2,
      [&](mpisim::Communicator& comm) {
        BatchSolver batch(comm);
        for (real_t amp : amps) batch.submit(synthetic_job(amp, opt));
        auto rep = batch.run_all(bopt);

        ASSERT_EQ(rep.summary.size(), amps.size());
        int attempts = 0;
        for (const auto& s : rep.summary) {
          EXPECT_EQ(s.outcome, JobOutcome::kDone);
          attempts += s.attempts;
        }
        // Exactly one job was hit and retried once.
        EXPECT_EQ(attempts, static_cast<int>(amps.size()) + 1);
        ASSERT_EQ(rep.reports.size(), amps.size());
        auto& mine = ref[static_cast<std::size_t>(comm.rank())];
        for (const auto& got : rep.reports) {
          ASSERT_EQ(mine.count(got.job_id), 1u);
          EXPECT_TRUE(same_bits(mine[got.job_id], got.velocity))
              << "job " << got.job_id << " diverged from its fault-free run";
        }
      },
      sopts);
}

// --------------------------------------------------------------------------
// Poison containment: a job that fails EVERY attempt (non-finite inputs
// under --guard — the sweep throws collectively on each try) burns exactly
// retry_budget + 1 attempts, ends kPoisoned, and never touches its
// neighbors.

TEST(BatchChaos, PoisonJobExhaustsExactlyTheRetryBudget) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    const RegistrationOptions opt = small_options();
    BatchSolver batch(comm);

    BatchJobSpec poison;
    poison.dims = {16, 16, 16};
    poison.request.options = opt;
    poison.request.options.guard = true;
    poison.make_inputs = [](PencilDecomp& d, ScalarField& t, ScalarField& r) {
      const auto nan = std::numeric_limits<real_t>::quiet_NaN();
      t.assign(static_cast<std::size_t>(d.local_real_size()), nan);
      r.assign(static_cast<std::size_t>(d.local_real_size()), nan);
    };
    batch.submit(std::move(poison));
    batch.submit(synthetic_job(0.4, opt));

    BatchOptions bopt;
    bopt.shards = 1;
    bopt.retry_budget = 1;
    auto rep = batch.run_all(bopt);

    ASSERT_EQ(rep.summary.size(), 2u);
    EXPECT_EQ(rep.summary[0].outcome, JobOutcome::kPoisoned);
    EXPECT_EQ(rep.summary[0].attempts, bopt.retry_budget + 1);
    EXPECT_GT(rep.summary[0].completed_at_seconds, 0.0);
    EXPECT_EQ(rep.summary[1].outcome, JobOutcome::kDone);
    EXPECT_EQ(rep.summary[1].attempts, 1);
    EXPECT_EQ(rep.rounds, 1);
    // The poisoned job produced no report; the healthy one did.
    ASSERT_EQ(rep.reports.size(), 1u);
    EXPECT_EQ(rep.reports[0].job_id, rep.summary[1].job_id);
  });
}

// --------------------------------------------------------------------------
// Shard failover: when post-fault recovery itself fails (peers cannot
// rendezvous within the recovery deadline), the shard is voted down, its
// registry is purged and rebuilt on a fresh communicator, and its
// unfinished jobs — including never-attempted ones — are redistributed
// across shards in the next round.

TEST(BatchChaos, ShardFailoverRedistributesUnfinishedJobs) {
  mpisim::run_spmd(4, [&](mpisim::Communicator& comm) {
    const RegistrationOptions opt = small_options();
    const int lrank = comm.rank();
    BatchSolver batch(comm);

    // Job 0 lands on shard 0 (ranks 0-1). Its first attempt throws a
    // CommError from the iterate hook — with the two ranks deliberately
    // skewed (rank 1 sleeps well past the tiny recovery deadline), both
    // recovery rendezvous fail, so the shard reports itself down instead
    // of retrying in place.
    bool thrown = false;
    BatchJobSpec faulty = synthetic_job(0.30, opt);
    faulty.request.options.iterate_hook =
        [&thrown, lrank](const NewtonIterateInfo&) {
          if (thrown) return;
          thrown = true;
          if (lrank == 1)
            std::this_thread::sleep_for(std::chrono::milliseconds(250));
          throw mpisim::CommError("injected: shard 0 fault");
        };
    batch.submit(std::move(faulty));
    batch.submit(synthetic_job(0.35, opt));  // shard 1, round 1
    batch.submit(synthetic_job(0.40, opt));  // shard 0, abandoned round 1
    batch.submit(synthetic_job(0.45, opt));  // shard 1, round 1

    BatchOptions bopt;
    bopt.shards = 2;
    bopt.recover_timeout_ms = 10;  // guarantees the rendezvous misses
    auto rep = batch.run_all(bopt);

    ASSERT_EQ(rep.summary.size(), 4u);
    for (const auto& s : rep.summary)
      EXPECT_EQ(s.outcome, JobOutcome::kDone) << "job id " << s.job_id;
    EXPECT_EQ(rep.rounds, 2);
    EXPECT_EQ(rep.shard_rebuilds, 1);
    // The faulted job retried on the rebuilt shard 0.
    EXPECT_EQ(rep.summary[0].attempts, 2);
    EXPECT_EQ(rep.summary[0].shard, 0);
    // Its never-attempted shardmate was redistributed to shard 1.
    EXPECT_EQ(rep.summary[2].attempts, 1);
    EXPECT_EQ(rep.summary[2].shard, 1);
    EXPECT_EQ(rep.summary[1].shard, 1);
    EXPECT_EQ(rep.summary[3].shard, 1);
  });
}

// --------------------------------------------------------------------------
// Retries never reset the admission clock: the final successful attempt is
// judged against the job's ORIGINAL admission, so a job that only finished
// in time because its failures were forgiven still reports deadline_met =
// false, and the backoff wait is visible in completed_at_seconds.

TEST(BatchChaos, RetryKeepsTheAdmissionClock) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    const RegistrationOptions opt = small_options();
    BatchSolver batch(comm);

    bool thrown = false;
    BatchJobSpec spec = synthetic_job(0.35, opt);
    spec.request.deadline_seconds = 0.05;  // advisory (library default)
    spec.request.options.iterate_hook = [&thrown](const NewtonIterateInfo&) {
      if (thrown) return;
      thrown = true;
      throw grid::NonFiniteFieldError("injected: first attempt dies");
    };
    batch.submit(std::move(spec));

    BatchOptions bopt;
    bopt.shards = 1;
    bopt.backoff_ms = 200;  // retry 1 waits 200 ms on the batch clock
    auto rep = batch.run_all(bopt);

    ASSERT_EQ(rep.summary.size(), 1u);
    EXPECT_EQ(rep.summary[0].outcome, JobOutcome::kDone);
    EXPECT_EQ(rep.summary[0].attempts, 2);
    // The batch clock is monotone across the requeue: completion includes
    // the first attempt AND the backoff, so it lands past the deadline.
    EXPECT_GE(rep.summary[0].completed_at_seconds, 0.2);
    EXPECT_FALSE(rep.summary[0].deadline_met);
  });
}

}  // namespace
}  // namespace diffreg::core
