// Tests for the non-stationary (time-varying) velocity extension:
// consistency with the stationary solver when all intervals carry the same
// velocity, analytic two-phase translations, and the adjoint/displacement
// paths.
#include <gtest/gtest.h>

#include <cmath>

#include "core/deformation.hpp"
#include "imaging/synthetic.hpp"
#include "mpisim/communicator.hpp"
#include "semilag/time_varying.hpp"
#include "semilag/transport.hpp"

namespace diffreg::semilag {
namespace {

using grid::PencilDecomp;
using grid::ScalarField;
using grid::VectorField;

TEST(TimeVarying, ConstantSeriesMatchesStationarySolver) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {24, 24, 24});
    spectral::SpectralOps ops(decomp);
    auto rho0 = imaging::synthetic_template(decomp);
    auto v = imaging::synthetic_velocity(decomp, 0.5);

    TransportConfig tc;
    tc.nt = 4;
    Transport stationary(ops, tc);
    stationary.set_velocity(v);
    stationary.solve_state(rho0);

    std::vector<VectorField> series(4, v);
    TimeVaryingTransport tv(ops, series);
    tv.solve_state(rho0);

    const auto& a = stationary.final_state();
    const auto& b = tv.final_state();
    for (size_t i = 0; i < a.size(); ++i) ASSERT_NEAR(a[i], b[i], 1e-12);

    // The adjoint path must agree as well.
    auto lam1 = imaging::synthetic_template(decomp);
    VectorField bfield;
    stationary.solve_adjoint(lam1, bfield, /*store_lambda=*/true);
    tv.solve_adjoint(lam1);
    for (int j = 0; j <= 4; ++j) {
      const auto& sa = stationary.adjoint(j);
      const auto& ta = tv.adjoint(j);
      for (size_t i = 0; i < sa.size(); ++i) ASSERT_NEAR(sa[i], ta[i], 1e-12);
    }
  });
}

TEST(TimeVarying, TwoPhaseTranslationComposesShifts) {
  // First half: shift by c1; second half: shift by c2. Final state is
  // rho0(x - (c1 + c2)/2) with dt = 1/2 per interval.
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {32, 32, 32});
    spectral::SpectralOps ops(decomp);
    const index_t n = decomp.local_real_size();
    const Vec3 c1{0.8, 0.0, 0.0}, c2{0.0, 0.6, 0.0};
    std::vector<VectorField> series(2, VectorField(n));
    for (int d = 0; d < 3; ++d) {
      for (auto& x : series[0][d]) x = c1[d];
      for (auto& x : series[1][d]) x = c2[d];
    }

    const Int3 dims = decomp.dims();
    const Int3 ld = decomp.local_real_dims();
    const real_t h = kTwoPi / dims[0];
    ScalarField rho0(n);
    index_t idx = 0;
    for (index_t a = 0; a < ld[0]; ++a)
      for (index_t b = 0; b < ld[1]; ++b)
        for (index_t c = 0; c < ld[2]; ++c, ++idx)
          rho0[idx] = std::sin((decomp.range1().begin + a) * h) *
                      std::cos((decomp.range2().begin + b) * h);

    TimeVaryingTransport tv(ops, series);
    tv.solve_state(rho0);

    // Total displacement: (c1 + c2) * dt with dt = 1/2.
    const Vec3 total{0.5 * (c1[0] + c2[0]), 0.5 * (c1[1] + c2[1]), 0.0};
    idx = 0;
    for (index_t a = 0; a < ld[0]; ++a)
      for (index_t b = 0; b < ld[1]; ++b)
        for (index_t c = 0; c < ld[2]; ++c, ++idx) {
          const real_t expected =
              std::sin((decomp.range1().begin + a) * h - total[0]) *
              std::cos((decomp.range2().begin + b) * h - total[1]);
          ASSERT_NEAR(tv.final_state()[idx], expected, 5e-4);
        }

    // Displacement map agrees: u = -(c1 + c2)/2, det(grad y) = 1.
    VectorField u;
    tv.solve_displacement(u);
    for (int d = 0; d < 3; ++d)
      for (real_t val : u[d]) ASSERT_NEAR(val, -total[d], 1e-10);
    ScalarField det;
    core::jacobian_determinant(ops, u, det);
    for (real_t v : det) ASSERT_NEAR(v, 1.0, 1e-9);
  });
}

TEST(TimeVarying, GenuinelyNonStationaryDiffersFromAveragedVelocity) {
  // A time-varying flow is not equivalent to its time average when the
  // velocity varies in space (flows do not commute).
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {24, 24, 24});
    spectral::SpectralOps ops(decomp);
    auto rho0 = imaging::synthetic_template(decomp);
    auto va = imaging::synthetic_velocity(decomp, 0.8);
    auto vb = imaging::synthetic_velocity_divfree(decomp, 0.8);

    std::vector<VectorField> series = {va, vb};
    TimeVaryingTransport tv(ops, series);
    tv.solve_state(rho0);

    VectorField avg = va;
    grid::axpy(real_t(1), vb, avg);
    grid::scale(real_t(0.5), avg);
    TransportConfig tc;
    tc.nt = 2;
    Transport stationary(ops, tc);
    stationary.set_velocity(avg);
    stationary.solve_state(rho0);

    real_t diff = 0;
    for (size_t i = 0; i < rho0.size(); ++i)
      diff = std::max(diff, std::abs(tv.final_state()[i] -
                                     stationary.final_state()[i]));
    diff = comm.allreduce_max(diff);
    EXPECT_GT(diff, 1e-3) << "non-commuting flows must differ";
  });
}

TEST(TimeVarying, RejectsEmptySeries) {
  mpisim::run_spmd(1, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {8, 8, 8});
    spectral::SpectralOps ops(decomp);
    std::vector<VectorField> empty;
    EXPECT_THROW(TimeVaryingTransport(ops, empty), std::invalid_argument);
  });
}

}  // namespace
}  // namespace diffreg::semilag
