// Tests of the thread-backed message-passing runtime: point-to-point
// ordering, collectives, alltoallv with uneven buffers, splitting, and
// exception propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "mpisim/communicator.hpp"

namespace diffreg::mpisim {
namespace {

class SpmdSize : public ::testing::TestWithParam<int> {};

TEST_P(SpmdSize, RankAndSize) {
  const int p = GetParam();
  std::vector<int> seen(p, -1);
  run_spmd(p, [&](Communicator& comm) {
    EXPECT_EQ(comm.size(), p);
    seen[comm.rank()] = comm.rank();
  });
  for (int r = 0; r < p; ++r) EXPECT_EQ(seen[r], r);
}

TEST_P(SpmdSize, SendRecvRing) {
  const int p = GetParam();
  if (p == 1) GTEST_SKIP();
  std::vector<double> received(p, -1);
  run_spmd(p, [&](Communicator& comm) {
    const int next = (comm.rank() + 1) % p;
    const int prev = (comm.rank() - 1 + p) % p;
    const double payload = 100.0 + comm.rank();
    auto got = comm.sendrecv(std::span<const double>(&payload, 1), next, prev,
                             /*tag=*/7);
    ASSERT_EQ(got.size(), 1u);
    received[comm.rank()] = got[0];
  });
  for (int r = 0; r < p; ++r)
    EXPECT_DOUBLE_EQ(received[r], 100.0 + (r - 1 + p) % p);
}

TEST_P(SpmdSize, PerPairTagOrderingIsFifo) {
  const int p = GetParam();
  if (p == 1) GTEST_SKIP();
  std::vector<std::vector<int>> got(p);
  run_spmd(p, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int k = 0; k < 10; ++k)
        for (int r = 1; r < p; ++r)
          comm.send(std::span<const int>(&k, 1), r, /*tag=*/3);
    } else {
      for (int k = 0; k < 10; ++k)
        got[comm.rank()].push_back(comm.recv<int>(0, 3)[0]);
    }
  });
  for (int r = 1; r < p; ++r) {
    ASSERT_EQ(got[r].size(), 10u);
    for (int k = 0; k < 10; ++k) EXPECT_EQ(got[r][k], k);
  }
}

TEST_P(SpmdSize, BroadcastFromEveryRoot) {
  const int p = GetParam();
  for (int root = 0; root < p; ++root) {
    std::atomic<int> failures{0};
    run_spmd(p, [&](Communicator& comm) {
      std::vector<double> data;
      if (comm.rank() == root) data = {1.5, 2.5, 3.5};
      comm.broadcast(data, root);
      if (data != std::vector<double>{1.5, 2.5, 3.5}) ++failures;
    });
    EXPECT_EQ(failures.load(), 0) << "root " << root;
  }
}

TEST_P(SpmdSize, AllreduceSumMaxMin) {
  const int p = GetParam();
  std::atomic<int> failures{0};
  run_spmd(p, [&](Communicator& comm) {
    const double sum = comm.allreduce_sum(static_cast<double>(comm.rank() + 1));
    const int mx = comm.allreduce_max(comm.rank());
    const int mn = comm.allreduce_min(comm.rank() + 5);
    if (sum != p * (p + 1) / 2.0 || mx != p - 1 || mn != 5) ++failures;
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST_P(SpmdSize, AllgatherOrdered) {
  const int p = GetParam();
  std::atomic<int> failures{0};
  run_spmd(p, [&](Communicator& comm) {
    auto all = comm.allgather(comm.rank() * 10);
    for (int r = 0; r < p; ++r)
      if (all[r] != r * 10) ++failures;
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST_P(SpmdSize, AlltoallvUnevenPayloads) {
  // Rank r sends r+q+1 values "r*1000 + q" to rank q.
  const int p = GetParam();
  std::atomic<int> failures{0};
  run_spmd(p, [&](Communicator& comm) {
    const int r = comm.rank();
    std::vector<std::vector<int>> send(p);
    for (int q = 0; q < p; ++q) send[q].assign(r + q + 1, r * 1000 + q);
    auto recv = comm.alltoallv(std::move(send), /*tag=*/11);
    for (int q = 0; q < p; ++q) {
      if (recv[q].size() != static_cast<size_t>(q + r + 1)) ++failures;
      for (int v : recv[q])
        if (v != q * 1000 + r) ++failures;
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST_P(SpmdSize, BarrierSeparatesPhases) {
  const int p = GetParam();
  std::atomic<int> phase_counter{0};
  std::atomic<int> failures{0};
  run_spmd(p, [&](Communicator& comm) {
    for (int round = 0; round < 5; ++round) {
      ++phase_counter;
      comm.barrier();
      // After the barrier every rank of this round has incremented.
      if (phase_counter.load() < (round + 1) * p) ++failures;
      comm.barrier();
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST_P(SpmdSize, SplitRowsAndColumns) {
  const int p = GetParam();
  if (p % 2 != 0) GTEST_SKIP();
  std::atomic<int> failures{0};
  run_spmd(p, [&](Communicator& comm) {
    // Two colors: even and odd ranks.
    Communicator sub = comm.split(comm.rank() % 2);
    const int expected_size = p / 2;
    if (sub.size() != expected_size) ++failures;
    if (sub.rank() != comm.rank() / 2) ++failures;
    // The sub-communicator must work for collectives.
    const int sum = sub.allreduce_sum(1);
    if (sum != expected_size) ++failures;
    // A second split from the same parent must also work.
    Communicator sub2 = comm.split(comm.rank() % 2 == 0 ? 7 : 9);
    if (sub2.size() != expected_size) ++failures;
  });
  EXPECT_EQ(failures.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SpmdSize, ::testing::Values(1, 2, 3, 4, 8));

TEST(Spmd, ExceptionPropagatesToLauncher) {
  EXPECT_THROW(
      run_spmd(3,
               [&](Communicator& comm) {
                 comm.barrier();
                 if (comm.rank() == 1)
                   throw std::runtime_error("rank 1 failed");
               }),
      std::runtime_error);
}

TEST(Spmd, TimingsReturnedPerRank) {
  auto timings = run_spmd(2, [&](Communicator& comm) {
    comm.set_time_kind(TimeKind::kFftComm);
    comm.barrier();
    ScopedTimer t(comm.timings(), TimeKind::kInterpExec);
  });
  ASSERT_EQ(timings.size(), 2u);
  for (const auto& t : timings) {
    EXPECT_GE(t.get(TimeKind::kFftComm), 0.0);
    EXPECT_GE(t.get(TimeKind::kInterpExec), 0.0);
  }
}

TEST(Spmd, LargeMessageRoundTrip) {
  const size_t n = 1 << 18;  // 2 MB of doubles
  run_spmd(2, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<double> data(n);
      std::iota(data.begin(), data.end(), 0.0);
      comm.send(std::span<const double>(data), 1, 5);
    } else {
      auto got = comm.recv<double>(0, 5);
      ASSERT_EQ(got.size(), n);
      EXPECT_DOUBLE_EQ(got[12345], 12345.0);
      EXPECT_DOUBLE_EQ(got[n - 1], static_cast<double>(n - 1));
    }
  });
}

}  // namespace
}  // namespace diffreg::mpisim
