// Tests of the thread-backed message-passing runtime: point-to-point
// ordering, collectives, alltoallv with uneven buffers, splitting, and
// exception propagation.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>
#include <thread>

#include "common/logger.hpp"
#include "mpisim/communicator.hpp"

namespace diffreg::mpisim {
namespace {

class SpmdSize : public ::testing::TestWithParam<int> {};

TEST_P(SpmdSize, RankAndSize) {
  const int p = GetParam();
  std::vector<int> seen(p, -1);
  run_spmd(p, [&](Communicator& comm) {
    EXPECT_EQ(comm.size(), p);
    seen[comm.rank()] = comm.rank();
  });
  for (int r = 0; r < p; ++r) EXPECT_EQ(seen[r], r);
}

TEST_P(SpmdSize, SendRecvRing) {
  const int p = GetParam();
  if (p == 1) GTEST_SKIP();
  std::vector<double> received(p, -1);
  run_spmd(p, [&](Communicator& comm) {
    const int next = (comm.rank() + 1) % p;
    const int prev = (comm.rank() - 1 + p) % p;
    const double payload = 100.0 + comm.rank();
    auto got = comm.sendrecv(std::span<const double>(&payload, 1), next, prev,
                             /*tag=*/7);
    ASSERT_EQ(got.size(), 1u);
    received[comm.rank()] = got[0];
  });
  for (int r = 0; r < p; ++r)
    EXPECT_DOUBLE_EQ(received[r], 100.0 + (r - 1 + p) % p);
}

TEST_P(SpmdSize, PerPairTagOrderingIsFifo) {
  const int p = GetParam();
  if (p == 1) GTEST_SKIP();
  std::vector<std::vector<int>> got(p);
  run_spmd(p, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int k = 0; k < 10; ++k)
        for (int r = 1; r < p; ++r)
          comm.send(std::span<const int>(&k, 1), r, /*tag=*/3);
    } else {
      for (int k = 0; k < 10; ++k)
        got[comm.rank()].push_back(comm.recv<int>(0, 3)[0]);
    }
  });
  for (int r = 1; r < p; ++r) {
    ASSERT_EQ(got[r].size(), 10u);
    for (int k = 0; k < 10; ++k) EXPECT_EQ(got[r][k], k);
  }
}

TEST_P(SpmdSize, BroadcastFromEveryRoot) {
  const int p = GetParam();
  for (int root = 0; root < p; ++root) {
    std::atomic<int> failures{0};
    run_spmd(p, [&](Communicator& comm) {
      std::vector<double> data;
      if (comm.rank() == root) data = {1.5, 2.5, 3.5};
      comm.broadcast(data, root);
      if (data != std::vector<double>{1.5, 2.5, 3.5}) ++failures;
    });
    EXPECT_EQ(failures.load(), 0) << "root " << root;
  }
}

TEST_P(SpmdSize, AllreduceSumMaxMin) {
  const int p = GetParam();
  std::atomic<int> failures{0};
  run_spmd(p, [&](Communicator& comm) {
    const double sum = comm.allreduce_sum(static_cast<double>(comm.rank() + 1));
    const int mx = comm.allreduce_max(comm.rank());
    const int mn = comm.allreduce_min(comm.rank() + 5);
    if (sum != p * (p + 1) / 2.0 || mx != p - 1 || mn != 5) ++failures;
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST_P(SpmdSize, AllgatherOrdered) {
  const int p = GetParam();
  std::atomic<int> failures{0};
  run_spmd(p, [&](Communicator& comm) {
    auto all = comm.allgather(comm.rank() * 10);
    for (int r = 0; r < p; ++r)
      if (all[r] != r * 10) ++failures;
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST_P(SpmdSize, AlltoallvUnevenPayloads) {
  // Rank r sends r+q+1 values "r*1000 + q" to rank q.
  const int p = GetParam();
  std::atomic<int> failures{0};
  run_spmd(p, [&](Communicator& comm) {
    const int r = comm.rank();
    std::vector<std::vector<int>> send(p);
    for (int q = 0; q < p; ++q) send[q].assign(r + q + 1, r * 1000 + q);
    auto recv = comm.alltoallv(std::move(send), /*tag=*/11);
    for (int q = 0; q < p; ++q) {
      if (recv[q].size() != static_cast<size_t>(q + r + 1)) ++failures;
      for (int v : recv[q])
        if (v != q * 1000 + r) ++failures;
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST_P(SpmdSize, BarrierSeparatesPhases) {
  const int p = GetParam();
  std::atomic<int> phase_counter{0};
  std::atomic<int> failures{0};
  run_spmd(p, [&](Communicator& comm) {
    for (int round = 0; round < 5; ++round) {
      ++phase_counter;
      comm.barrier();
      // After the barrier every rank of this round has incremented.
      if (phase_counter.load() < (round + 1) * p) ++failures;
      comm.barrier();
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST_P(SpmdSize, SplitRowsAndColumns) {
  const int p = GetParam();
  if (p % 2 != 0) GTEST_SKIP();
  std::atomic<int> failures{0};
  run_spmd(p, [&](Communicator& comm) {
    // Two colors: even and odd ranks.
    Communicator sub = comm.split(comm.rank() % 2);
    const int expected_size = p / 2;
    if (sub.size() != expected_size) ++failures;
    if (sub.rank() != comm.rank() / 2) ++failures;
    // The sub-communicator must work for collectives.
    const int sum = sub.allreduce_sum(1);
    if (sum != expected_size) ++failures;
    // A second split from the same parent must also work.
    Communicator sub2 = comm.split(comm.rank() % 2 == 0 ? 7 : 9);
    if (sub2.size() != expected_size) ++failures;
  });
  EXPECT_EQ(failures.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SpmdSize, ::testing::Values(1, 2, 3, 4, 8));

// Cross-checks of the logarithmic collectives against a serial reference,
// covering the power-of-two (2, 8) and non-power-of-two (3) code paths of
// the recursive-doubling fold/unfold phases and the Bruck dissemination.
class CollectiveVsSerial : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveVsSerial, TreeBroadcastMatchesSerialPayload) {
  const int p = GetParam();
  // Reference: what a single rank holds is what every rank must end up with.
  std::vector<double> reference(257);
  std::iota(reference.begin(), reference.end(), 0.25);
  for (int root = 0; root < p; ++root) {
    std::atomic<int> failures{0};
    run_spmd(p, [&](Communicator& comm) {
      std::vector<double> data;
      if (comm.rank() == root) data = reference;
      comm.broadcast(data, root);
      if (data != reference) ++failures;
    });
    EXPECT_EQ(failures.load(), 0) << "p " << p << " root " << root;
  }
}

TEST_P(CollectiveVsSerial, AllreduceMatchesSerialReference) {
  const int p = GetParam();
  // Integer-valued doubles: the tree combination order cannot change the
  // result, so the comparison against the serial loop is exact.
  auto contribution = [](int rank) { return static_cast<double>(3 * rank + 1); };
  double ref_sum = 0, ref_max = contribution(0), ref_min = contribution(0);
  for (int r = 0; r < p; ++r) {
    ref_sum += contribution(r);
    ref_max = std::max(ref_max, contribution(r));
    ref_min = std::min(ref_min, contribution(r));
  }
  std::atomic<int> failures{0};
  run_spmd(p, [&](Communicator& comm) {
    if (comm.allreduce_sum(contribution(comm.rank())) != ref_sum) ++failures;
    if (comm.allreduce_max(contribution(comm.rank())) != ref_max) ++failures;
    if (comm.allreduce_min(contribution(comm.rank())) != ref_min) ++failures;
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST_P(CollectiveVsSerial, AllreduceIsIdenticalOnEveryRank) {
  // With "messy" floating-point contributions the tree sum may round
  // differently from a serial loop, but all ranks must agree bitwise and
  // match the serial reference to rounding accuracy.
  const int p = GetParam();
  auto contribution = [](int rank) { return 0.1 * (rank + 1) + 1e-13 * rank; };
  double ref_sum = 0;
  for (int r = 0; r < p; ++r) ref_sum += contribution(r);
  std::vector<double> per_rank(p);
  run_spmd(p, [&](Communicator& comm) {
    per_rank[comm.rank()] = comm.allreduce_sum(contribution(comm.rank()));
  });
  for (int r = 1; r < p; ++r) EXPECT_EQ(per_rank[r], per_rank[0]);
  EXPECT_NEAR(per_rank[0], ref_sum, 1e-12 * std::abs(ref_sum));
}

TEST_P(CollectiveVsSerial, VectorAllreduceSumMaxMin) {
  const int p = GetParam();
  const size_t n = 33;
  std::atomic<int> failures{0};
  run_spmd(p, [&](Communicator& comm) {
    const int r = comm.rank();
    std::vector<double> sums(n), maxs(n), mins(n);
    for (size_t i = 0; i < n; ++i) {
      sums[i] = r + static_cast<double>(i);
      maxs[i] = (r * 7 + static_cast<int>(i) * 3) % 11;
      mins[i] = maxs[i];
    }
    comm.allreduce_sum(sums);
    comm.allreduce_max(maxs);
    comm.allreduce_min(mins);
    for (size_t i = 0; i < n; ++i) {
      double ref_sum = 0;
      double ref_max = std::numeric_limits<double>::lowest();
      double ref_min = std::numeric_limits<double>::max();
      for (int q = 0; q < p; ++q) {
        ref_sum += q + static_cast<double>(i);
        const double v = (q * 7 + static_cast<int>(i) * 3) % 11;
        ref_max = std::max(ref_max, v);
        ref_min = std::min(ref_min, v);
      }
      if (sums[i] != ref_sum || maxs[i] != ref_max || mins[i] != ref_min)
        ++failures;
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST_P(CollectiveVsSerial, AllgatherMatchesSerialReference) {
  const int p = GetParam();
  std::atomic<int> failures{0};
  run_spmd(p, [&](Communicator& comm) {
    auto all = comm.allgather(7.5 * comm.rank() - 3);
    for (int r = 0; r < p; ++r)
      if (all[r] != 7.5 * r - 3) ++failures;
  });
  EXPECT_EQ(failures.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CollectiveVsSerial,
                         ::testing::Values(1, 2, 3, 8));

TEST(Collectives, VectorAllreduceRejectsMismatchedLengths) {
  EXPECT_THROW(run_spmd(2,
                        [&](Communicator& comm) {
                          std::vector<double> data(comm.rank() == 0 ? 4 : 5,
                                                   1.0);
                          comm.allreduce_sum(data);
                        }),
               std::runtime_error);
  // Zero-length vs non-zero-length must also be caught (the poison marker is
  // an empty buffer, the sentinel element disambiguates a clean empty batch).
  EXPECT_THROW(run_spmd(3,
                        [&](Communicator& comm) {
                          std::vector<double> data(comm.rank() == 1 ? 3 : 0,
                                                   1.0);
                          comm.allreduce_sum(data);
                        }),
               std::runtime_error);
}

TEST(Collectives, VectorAllreduceEmptyBatchIsClean) {
  std::atomic<int> failures{0};
  run_spmd(3, [&](Communicator& comm) {
    std::vector<double> data;
    comm.allreduce_sum(data);
    if (!data.empty()) ++failures;
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST_P(SpmdSize, SpanAlltoallvMatchesVectorOverload) {
  // The zero-allocation flat-buffer alltoallv must deliver exactly what the
  // vector-of-vectors overload does, including uneven per-peer chunks.
  const int p = GetParam();
  std::atomic<int> failures{0};
  run_spmd(p, [&](Communicator& comm) {
    const int r = comm.rank();
    // Same payload schedule as AlltoallvUnevenPayloads: r sends r+q+1
    // values "r*1000 + q" to q.
    std::vector<index_t> send_counts(p), recv_counts(p);
    for (int q = 0; q < p; ++q) {
      send_counts[q] = r + q + 1;
      recv_counts[q] = q + r + 1;
    }
    index_t stotal = 0, rtotal = 0;
    for (int q = 0; q < p; ++q) {
      stotal += send_counts[q];
      rtotal += recv_counts[q];
    }
    std::vector<int> send(stotal), recv(rtotal);
    index_t pos = 0;
    for (int q = 0; q < p; ++q)
      for (index_t i = 0; i < send_counts[q]; ++i) send[pos++] = r * 1000 + q;
    comm.alltoallv(std::span<const int>(send),
                   std::span<const index_t>(send_counts),
                   std::span<int>(recv), std::span<const index_t>(recv_counts),
                   /*tag=*/31);
    pos = 0;
    for (int q = 0; q < p; ++q)
      for (index_t i = 0; i < recv_counts[q]; ++i)
        if (recv[pos++] != q * 1000 + r) ++failures;
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(Collectives, SpanAlltoallvRejectsBadCounts) {
  EXPECT_THROW(
      run_spmd(2,
               [&](Communicator& comm) {
                 std::vector<int> send(4), recv(4);
                 std::vector<index_t> counts{2, 2};
                 std::vector<index_t> bad{1, 2};  // sums to 3, buffer has 4
                 comm.alltoallv(std::span<const int>(send),
                                std::span<const index_t>(bad),
                                std::span<int>(recv),
                                std::span<const index_t>(counts), 33);
               }),
      std::runtime_error);
}

TEST(Collectives, SendAccountsBytesAndMessages) {
  auto timings = run_spmd(2, [&](Communicator& comm) {
    comm.set_time_kind(TimeKind::kFftComm);
    comm.timings().clear();
    const int peer = 1 - comm.rank();
    std::vector<double> payload(16, 1.0);
    comm.send(std::span<const double>(payload), peer, /*tag=*/7);
    (void)comm.recv<double>(peer, /*tag=*/7);
  });
  for (const auto& t : timings) {
    EXPECT_EQ(t.messages(TimeKind::kFftComm), 1u);
    EXPECT_EQ(t.bytes(TimeKind::kFftComm), 16 * sizeof(double));
    EXPECT_EQ(t.exchanges(TimeKind::kFftComm), 0u);
  }
}

TEST(Collectives, AlltoallvDetectsCollectiveMismatch) {
  // Ranks disagreeing on which alltoallv they entered must be caught by the
  // consistency self-check instead of silently mixing exchanges.
  EXPECT_THROW(run_spmd(2,
                        [&](Communicator& comm) {
                          std::vector<std::vector<int>> bufs(2);
                          comm.alltoallv(std::move(bufs),
                                         comm.rank() == 0 ? 21 : 22);
                        }),
               std::runtime_error);
}

TEST(Collectives, AlltoallFixedCountMatchesReference) {
  // alltoall: element j of rank r's send buffer lands at recv[r] on rank j.
  for (int p : {1, 2, 3, 4, 6}) {
    auto timings = run_spmd(p, [&](Communicator& comm) {
      comm.set_time_kind(TimeKind::kInterpComm);
      std::vector<index_t> send(p), recv(p, -1);
      for (int j = 0; j < p; ++j) send[j] = 100 * comm.rank() + j;
      comm.alltoall(std::span<const index_t>(send), std::span<index_t>(recv),
                    /*tag=*/31);
      for (int r = 0; r < p; ++r)
        EXPECT_EQ(recv[r], 100 * r + comm.rank()) << "p=" << p;
    });
    for (const auto& t : timings)
      EXPECT_EQ(t.exchanges(TimeKind::kInterpComm), 1u) << "p=" << p;
  }
}

TEST(Collectives, AlltoallRejectsWrongBufferSize) {
  run_spmd(2, [&](Communicator& comm) {
    std::vector<index_t> send(3), recv(2);
    EXPECT_THROW(comm.alltoall(std::span<const index_t>(send),
                               std::span<index_t>(recv), /*tag=*/32),
                 std::runtime_error);
    comm.barrier();
  });
}

TEST(Spmd, ExceptionPropagatesToLauncher) {
  EXPECT_THROW(
      run_spmd(3,
               [&](Communicator& comm) {
                 comm.barrier();
                 if (comm.rank() == 1)
                   throw std::runtime_error("rank 1 failed");
               }),
      std::runtime_error);
}

TEST(Spmd, TimingsReturnedPerRank) {
  auto timings = run_spmd(2, [&](Communicator& comm) {
    comm.set_time_kind(TimeKind::kFftComm);
    comm.barrier();
    ScopedTimer t(comm.timings(), TimeKind::kInterpExec);
  });
  ASSERT_EQ(timings.size(), 2u);
  for (const auto& t : timings) {
    EXPECT_GE(t.get(TimeKind::kFftComm), 0.0);
    EXPECT_GE(t.get(TimeKind::kInterpExec), 0.0);
  }
}

TEST(MixedWire, AlltoallvConvertedMatchesWideAndAccountsWireBytes) {
  // The converting alltoallv must deliver exactly the fp32 rounding of the
  // fp64 payload for every PEER chunk (recv[i] == double(float(sent[i])))
  // and the bit-exact fp64 value for the SELF chunk (it never crosses the
  // wire, so it is copied wide), keep the schedule (same counts, same
  // tags), and account post-conversion wire bytes plus the volume saved —
  // the difference between the fp64 and fp32 byte deltas must be exactly
  // the saved counter.
  for (int p : {1, 2, 3, 4}) {
    run_spmd(p, [&](Communicator& comm) {
      const int rank = comm.rank();
      std::vector<index_t> send_counts(p), recv_counts(p);
      index_t send_total = 0, recv_total = 0, wire_elems = 0;
      for (int r = 0; r < p; ++r) {
        send_counts[r] = rank + r + 1;  // uneven, asymmetric
        recv_counts[r] = r + rank + 1;
        send_total += send_counts[r];
        recv_total += recv_counts[r];
        if (r != rank) wire_elems += send_counts[r];
      }
      std::vector<double> send(send_total), wide(recv_total),
          conv(recv_total);
      for (index_t i = 0; i < send_total; ++i)
        send[i] = 0.1 + rank + i * 0.7853981633974483;  // needs rounding
      std::vector<float> send_stage(send_total), recv_stage(recv_total);

      comm.set_time_kind(TimeKind::kFftComm);
      const Timings before64 = comm.timings();
      comm.alltoallv(std::span<const double>(send),
                     std::span<const index_t>(send_counts),
                     std::span<double>(wide),
                     std::span<const index_t>(recv_counts), 61);
      const Timings after64 = comm.timings();
      comm.alltoallv_converted(std::span<const double>(send),
                               std::span<const index_t>(send_counts),
                               std::span<double>(conv),
                               std::span<const index_t>(recv_counts),
                               std::span<float>(send_stage),
                               std::span<float>(recv_stage), 62);
      const Timings after32 = comm.timings();

      index_t self_off = 0;
      for (int r = 0; r < rank; ++r) self_off += recv_counts[r];
      for (index_t i = 0; i < recv_total; ++i) {
        const bool self =
            i >= self_off && i < self_off + recv_counts[rank];
        const double expected =
            self ? wide[i] : static_cast<double>(static_cast<float>(wide[i]));
        ASSERT_EQ(conv[i], expected)
            << "p=" << p << " rank=" << rank << " i=" << i;
      }

      const Timings d64 = timings_delta(before64, after64);
      const Timings d32 = timings_delta(after64, after32);
      EXPECT_EQ(d64.messages(TimeKind::kFftComm),
                d32.messages(TimeKind::kFftComm));
      EXPECT_EQ(d32.exchanges(TimeKind::kFftComm), 1u);
      EXPECT_EQ(d64.saved_bytes(TimeKind::kFftComm), 0u);
      EXPECT_EQ(d32.saved_bytes(TimeKind::kFftComm),
                static_cast<std::uint64_t>(wire_elems) * sizeof(float));
      // Identical schedules, so the byte difference is exactly the saving.
      EXPECT_EQ(d64.bytes(TimeKind::kFftComm) - d32.bytes(TimeKind::kFftComm),
                d32.saved_bytes(TimeKind::kFftComm));
    });
  }
}

TEST(MixedWire, ConvertedCallsRejectUndersizedStaging) {
  run_spmd(1, [&](Communicator& comm) {
    std::vector<double> payload(4, 1.0);
    std::vector<float> small(2);
    const std::vector<index_t> counts{4};
    std::vector<double> out(4);
    std::vector<float> stage(4);
    EXPECT_THROW(comm.alltoallv_converted(
                     std::span<const double>(payload),
                     std::span<const index_t>(counts), std::span<double>(out),
                     std::span<const index_t>(counts), std::span<float>(small),
                     std::span<float>(stage), 63),
                 std::runtime_error);
    EXPECT_THROW(
        comm.send_narrowed(std::span<const double>(payload),
                           std::span<float>(small), 0, 64),
        std::runtime_error);
  });
}

TEST(Spmd, LargeMessageRoundTrip) {
  const size_t n = 1 << 18;  // 2 MB of doubles
  run_spmd(2, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<double> data(n);
      std::iota(data.begin(), data.end(), 0.0);
      comm.send(std::span<const double>(data), 1, 5);
    } else {
      auto got = comm.recv<double>(0, 5);
      ASSERT_EQ(got.size(), n);
      EXPECT_DOUBLE_EQ(got[12345], 12345.0);
      EXPECT_DOUBLE_EQ(got[n - 1], static_cast<double>(n - 1));
    }
  });
}

TEST(Nonblocking, IalltoallvMatchesBlocking) {
  // The nonblocking alltoallv must deliver bitwise what the blocking call
  // does — same payloads, same counters — for every process count; the
  // self chunk must already be valid at post time (before wait()).
  for (int p : {1, 2, 4, 6}) {
    run_spmd(p, [&](Communicator& comm) {
      const int r = comm.rank();
      std::vector<index_t> send_counts(p), recv_counts(p);
      index_t stotal = 0, rtotal = 0;
      for (int q = 0; q < p; ++q) {
        send_counts[q] = r + q + 1;
        recv_counts[q] = q + r + 1;
        stotal += send_counts[q];
        rtotal += recv_counts[q];
      }
      std::vector<double> send(stotal), blocking(rtotal), nb(rtotal, -1);
      for (index_t i = 0; i < stotal; ++i)
        send[i] = 0.25 + r + i * 0.9162907318741551;

      comm.set_time_kind(TimeKind::kFftComm);
      const Timings t0 = comm.timings();
      comm.alltoallv(std::span<const double>(send),
                     std::span<const index_t>(send_counts),
                     std::span<double>(blocking),
                     std::span<const index_t>(recv_counts), 71);
      const Timings t1 = comm.timings();
      auto req = comm.ialltoallv(std::span<const double>(send),
                                 std::span<const index_t>(send_counts),
                                 std::span<double>(nb),
                                 std::span<const index_t>(recv_counts), 72);
      // The self chunk never crosses the wire: it is delivered at post.
      index_t self_off = 0;
      for (int q = 0; q < r; ++q) self_off += recv_counts[q];
      for (index_t i = 0; i < recv_counts[r]; ++i)
        ASSERT_EQ(nb[self_off + i], blocking[self_off + i])
            << "p=" << p << " rank=" << r;
      req.wait();
      const Timings t2 = comm.timings();

      for (index_t i = 0; i < rtotal; ++i)
        ASSERT_EQ(nb[i], blocking[i]) << "p=" << p << " rank=" << r;
      EXPECT_TRUE(req.done());

      // Identical message schedule: the counter deltas of the two calls
      // match exactly.
      const Timings db = timings_delta(t0, t1);
      const Timings dn = timings_delta(t1, t2);
      EXPECT_EQ(db.messages(TimeKind::kFftComm),
                dn.messages(TimeKind::kFftComm));
      EXPECT_EQ(db.bytes(TimeKind::kFftComm), dn.bytes(TimeKind::kFftComm));
      EXPECT_EQ(dn.exchanges(TimeKind::kFftComm), 1u);
    });
  }
}

TEST(Nonblocking, IalltoallvConvertedMatchesBlocking) {
  // The nonblocking mixed-wire alltoallv must round exactly like the
  // blocking one (peer chunks through fp32, self chunk wide) and account
  // the same narrowed bytes + savings.
  for (int p : {1, 2, 4}) {
    run_spmd(p, [&](Communicator& comm) {
      const int r = comm.rank();
      std::vector<index_t> send_counts(p), recv_counts(p);
      index_t stotal = 0, rtotal = 0;
      for (int q = 0; q < p; ++q) {
        send_counts[q] = r + q + 1;
        recv_counts[q] = q + r + 1;
        stotal += send_counts[q];
        rtotal += recv_counts[q];
      }
      std::vector<double> send(stotal), blocking(rtotal), nb(rtotal, -1);
      for (index_t i = 0; i < stotal; ++i)
        send[i] = 0.1 + r + i * 0.7853981633974483;
      std::vector<float> sstage(stotal), rstage(rtotal);

      comm.set_time_kind(TimeKind::kInterpComm);
      const Timings t0 = comm.timings();
      comm.alltoallv_converted(
          std::span<const double>(send), std::span<const index_t>(send_counts),
          std::span<double>(blocking), std::span<const index_t>(recv_counts),
          std::span<float>(sstage), std::span<float>(rstage), 73);
      const Timings t1 = comm.timings();
      auto req = comm.ialltoallv_converted(
          std::span<const double>(send), std::span<const index_t>(send_counts),
          std::span<double>(nb), std::span<const index_t>(recv_counts),
          std::span<float>(sstage), std::span<float>(rstage), 74);
      req.wait();
      const Timings t2 = comm.timings();

      for (index_t i = 0; i < rtotal; ++i)
        ASSERT_EQ(nb[i], blocking[i]) << "p=" << p << " rank=" << r;
      const Timings db = timings_delta(t0, t1);
      const Timings dn = timings_delta(t1, t2);
      EXPECT_EQ(db.messages(TimeKind::kInterpComm),
                dn.messages(TimeKind::kInterpComm));
      EXPECT_EQ(db.bytes(TimeKind::kInterpComm),
                dn.bytes(TimeKind::kInterpComm));
      EXPECT_EQ(db.saved_bytes(TimeKind::kInterpComm),
                dn.saved_bytes(TimeKind::kInterpComm));
    });
  }
}

TEST(Nonblocking, CommCallWhileRequestOutstandingThrows) {
  // One outstanding request at a time: any receive posted before wait()
  // must be rejected loudly instead of racing the pending matches.
  std::atomic<int> threw{0};
  run_spmd(2, [&](Communicator& comm) {
    const int r = comm.rank();
    const int peer = 1 - r;
    const std::vector<index_t> counts{1, 1};
    std::vector<double> send{static_cast<double>(10 + r),
                             static_cast<double>(10 + r)};
    std::vector<double> recv(2, -1);
    auto req = comm.ialltoallv(std::span<const double>(send),
                               std::span<const index_t>(counts),
                               std::span<double>(recv),
                               std::span<const index_t>(counts), 75);
    EXPECT_FALSE(req.done());
    try {
      (void)comm.recv<double>(peer, /*tag=*/99);
    } catch (const std::runtime_error&) {
      ++threw;
    }
    req.wait();
    EXPECT_EQ(recv[r], 10.0 + r);        // self chunk
    EXPECT_EQ(recv[peer], 10.0 + peer);  // wire chunk
  });
  EXPECT_EQ(threw.load(), 2);
}

TEST(Nonblocking, WaitRejectsMismatchedPayloadSize) {
  // A pending receive whose posted buffer disagrees with the payload that
  // actually arrives must fail at wait() (exact-size contract).
  std::atomic<int> threw{0};
  run_spmd(2, [&](Communicator& comm) {
    const int peer = 1 - comm.rank();
    std::vector<double> payload(4, 1.5);
    comm.send(std::span<const double>(payload), peer, /*tag=*/76);
    std::vector<double> small(3);
    auto req = comm.irecv_into(std::span<double>(small), peer, /*tag=*/76);
    try {
      req.wait();
    } catch (const std::runtime_error&) {
      ++threw;
    }
  });
  EXPECT_EQ(threw.load(), 2);
}

TEST(Nonblocking, IsendNarrowedIrecvWidenedPairwise) {
  // The nonblocking narrowing/widening point-to-point pair must round
  // exactly like send_narrowed/recv_widened.
  run_spmd(2, [&](Communicator& comm) {
    const int r = comm.rank();
    const int peer = 1 - r;
    const size_t n = 64;
    std::vector<double> out_send(n), got(n, -1);
    for (size_t i = 0; i < n; ++i)
      out_send[i] = 0.3 + r + i * 1.0471975511965976;
    std::vector<float> sstage(n), rstage(n);
    comm.set_time_kind(TimeKind::kInterpComm);
    auto sreq = comm.isend_narrowed(std::span<const double>(out_send),
                                    std::span<float>(sstage), peer, 77);
    EXPECT_TRUE(sreq.done());  // buffered send: complete at post
    auto rreq = comm.irecv_widened(std::span<double>(got),
                                   std::span<float>(rstage), peer, 77);
    rreq.wait();
    for (size_t i = 0; i < n; ++i) {
      const double expected = static_cast<double>(
          static_cast<float>(0.3 + peer + i * 1.0471975511965976));
      ASSERT_EQ(got[i], expected) << "i=" << i;
    }
  });
}

TEST(Nonblocking, HiddenTimeAccountsOverlappedFlight) {
  // Compute performed between post and wait must surface as hidden comm
  // time; a blocking exchange hides nothing. Hidden time is clamped to the
  // span between a rank's OWN post and the last arrival, so the rank that
  // posts last may legitimately hide nothing (its peer's payload already
  // landed) — the invariant is per-rank nonnegativity plus a positive total
  // for the earlier poster.
  auto timings = run_spmd(2, [&](Communicator& comm) {
    comm.set_time_kind(TimeKind::kFftComm);
    comm.timings().clear();
    const std::vector<index_t> counts{8, 8};
    std::vector<double> send(16, 1.0), recv(16);
    comm.alltoallv(std::span<const double>(send),
                   std::span<const index_t>(counts), std::span<double>(recv),
                   std::span<const index_t>(counts), 78);
    EXPECT_EQ(comm.timings().hidden(TimeKind::kFftComm), 0.0);

    const Timings before = comm.timings();
    auto req = comm.ialltoallv(std::span<const double>(send),
                               std::span<const index_t>(counts),
                               std::span<double>(recv),
                               std::span<const index_t>(counts), 79);
    // "Compute" under the flight, so the payload lands before wait().
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    req.wait();
    const Timings d = timings_delta(before, comm.timings());
    EXPECT_GE(d.hidden(TimeKind::kFftComm), 0.0);
    // The delta carries exactly what the full counter accumulated.
    EXPECT_EQ(d.hidden(TimeKind::kFftComm),
              comm.timings().hidden(TimeKind::kFftComm));
  });
  double total = 0;
  for (const auto& t : timings) total += t.hidden(TimeKind::kFftComm);
  EXPECT_GT(total, 0.0);
}

TEST(Collectives, AlltoallvConsistencyThrowsOnEveryRank) {
  // The consistency self-check's contract is collective failure: when any
  // rank disagrees on the alltoallv tag, ALL ranks must throw (none may
  // hang waiting for an exchange that will never match up).
  std::atomic<int> threw{0};
  EXPECT_THROW(run_spmd(4,
                        [&](Communicator& comm) {
                          std::vector<std::vector<int>> bufs(4);
                          try {
                            comm.alltoallv(std::move(bufs),
                                           comm.rank() == 2 ? 22 : 21);
                          } catch (const std::runtime_error&) {
                            ++threw;
                            throw;
                          }
                        }),
               std::runtime_error);
  EXPECT_EQ(threw.load(), 4);
}

TEST(Nonblocking, WaitRejectsMismatchedFp32WirePayload) {
  // The exact-size contract must hold on the fp32 wire too: a widened
  // receive posted for 6 elements against an 8-element narrowed payload
  // fails at wait() instead of widening garbage.
  std::atomic<int> threw{0};
  run_spmd(2, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<double> payload(8, 2.25);
      std::vector<float> sstage(8);
      comm.send_narrowed(std::span<const double>(payload),
                         std::span<float>(sstage), 1, /*tag=*/81);
    } else {
      std::vector<double> out(6);
      std::vector<float> rstage(6);
      auto req = comm.irecv_widened(std::span<double>(out),
                                    std::span<float>(rstage), 0, /*tag=*/81);
      try {
        req.wait();
      } catch (const std::runtime_error&) {
        ++threw;
      }
    }
  });
  EXPECT_EQ(threw.load(), 1);
}

TEST(Nonblocking, DrainOnDestroyLogsRatedWarning) {
  // Dropping a CommRequest without wait() is a correctness smell (failures
  // it would have surfaced are swallowed): the destructor must drain the
  // pending receives and say so through the logger, with enough context to
  // find the call site.
  std::vector<std::string> warnings;
  Logger::instance().set_sink(
      [&](LogLevel level, const std::string& message) {
        if (level == LogLevel::kWarn) warnings.push_back(message);
      });
  run_spmd(2, [&](Communicator& comm) {
    const int peer = 1 - comm.rank();
    std::vector<double> payload(4, 1.5), out(4);
    comm.send(std::span<const double>(payload), peer, /*tag=*/83);
    {
      auto req = comm.irecv_into(std::span<double>(out), peer, /*tag=*/83);
      // req destroyed without wait(): must drain and warn, not throw.
    }
    comm.barrier();
  });
  Logger::instance().set_sink(nullptr);
  ASSERT_EQ(warnings.size(), 2u);  // one per rank
  for (const auto& w : warnings) {
    EXPECT_NE(w.find("CommRequest destroyed before wait()"),
              std::string::npos);
    EXPECT_NE(w.find("tag=83"), std::string::npos);
  }
}

TEST(Nonblocking, DrainWarningIsRateLimited) {
  // The drain warning fires per destroyed request; the rate limiter must
  // cap the noise at kRatedLimit emissions (the last one carrying the
  // suppression notice) no matter how many leaks follow.
  std::vector<std::string> warnings;
  Logger::instance().set_sink(
      [&](LogLevel level, const std::string& message) {
        if (level == LogLevel::kWarn) warnings.push_back(message);
      });
  run_spmd(1, [&](Communicator& comm) {
    for (int k = 0; k < 6; ++k) {
      std::vector<double> payload(1, 1.0), out(1);
      comm.send(std::span<const double>(payload), 0, /*tag=*/84);
      auto req = comm.irecv_into(std::span<double>(out), 0, /*tag=*/84);
    }
  });
  Logger::instance().set_sink(nullptr);
  ASSERT_EQ(warnings.size(), 3u);
  EXPECT_NE(warnings.back().find("suppressing"), std::string::npos);
}

// Concurrency stress of the thread-shared runtime paths. These tests exist
// primarily for the TSan CI leg: each one drives a path where rank threads
// contend on shared state (the logger's level filter and rate-limit
// counters, mailbox probes racing sends, watchdog deadline pops, repeated
// barrier generations, split rendezvous) hard enough that a missing
// happens-before edge shows up as a ThreadSanitizer report. They assert
// functional outcomes too, so they stay meaningful in plain builds.
TEST(ConcurrencyStress, LogLevelChangesRaceRatedWarnings) {
  // Regression: Logger::level_ was a plain LogLevel, so a driver adjusting
  // verbosity while rank threads emit rated warnings was a data race
  // (found by TSan on this exact pattern; level_ is now atomic).
  const LogLevel before = Logger::instance().level();
  Logger::instance().set_sink([](LogLevel, const std::string&) {});
  run_spmd(6, [](Communicator& comm) {
    for (int i = 0; i < 100; ++i) {
      if (comm.rank() == 0)
        Logger::instance().set_level(i % 2 ? LogLevel::kWarn
                                           : LogLevel::kError);
      log_warn_rated("test.stress.key" + std::to_string(i % 3), "stress");
    }
    comm.barrier();
  });
  Logger::instance().set_level(before);
  Logger::instance().set_sink(nullptr);
}

TEST(ConcurrencyStress, ProbesAndDeadlinePopsRaceBufferedSends) {
  // Mailbox hammer: every rank blasts tagged messages at every peer while
  // the receivers interleave nonblocking probes with deadline pops — the
  // buffered-send/probe contention the watchdog snapshot path relies on.
  run_spmd(6, [](Communicator& comm) {
    const int p = comm.size();
    for (int round = 0; round < 30; ++round) {
      for (int peer = 0; peer < p; ++peer) {
        if (peer == comm.rank()) continue;
        const double payload = 100.0 * comm.rank() + round;
        comm.send(std::span<const double>(&payload, 1), peer, round % 5);
      }
      for (int peer = 0; peer < p; ++peer) {
        if (peer == comm.rank()) continue;
        comm.backend()->probe(peer, round % 5);
        auto got = comm.backend()->try_recv_bytes(peer, round % 5, 5000.0);
        ASSERT_TRUE(got.has_value());
        double value = 0;
        ASSERT_EQ(got->data.size(), sizeof value);
        std::memcpy(&value, got->data.data(), sizeof value);
        EXPECT_DOUBLE_EQ(value, 100.0 * peer + round);
      }
    }
    comm.barrier();
  });
}

TEST(ConcurrencyStress, NonblockingTestPollsRaceArrivals) {
  // test() polls probe() while peer sends are still landing, then wait()
  // reads the arrival timestamps — the overlap path's hot contention.
  run_spmd(4, [](Communicator& comm) {
    comm.set_comm_timeout_ms(10000);
    std::vector<double> send(4 * 8, comm.rank());
    std::vector<double> recv(4 * 8);
    std::vector<index_t> counts(4, 8);
    for (int round = 0; round < 30; ++round) {
      auto req = comm.ialltoallv(std::span<const double>(send), counts,
                                 std::span<double>(recv), counts,
                                 /*tag=*/99);
      while (!req.test()) {
      }
      for (int r = 0; r < 4; ++r)
        EXPECT_DOUBLE_EQ(recv[static_cast<size_t>(r) * 8], r);
    }
    comm.barrier();
  });
}

TEST(ConcurrencyStress, RepeatedSplitsRaceRendezvousState) {
  // Split storm: the (epoch, color) exchange board and the two rendezvous
  // barriers under repeated sub-communicator creation and traffic.
  run_spmd(6, [](Communicator& comm) {
    for (int round = 0; round < 15; ++round) {
      Communicator sub = comm.split(comm.rank() % 2);
      int expected = 0;
      for (int r = comm.rank() % 2; r < 6; r += 2) expected += r;
      EXPECT_EQ(sub.allreduce_sum(comm.rank()), expected);
      sub.barrier();
    }
  });
}

// Collective-schedule verifier (--verify-schedule / SpmdOptions): the
// rolling per-rank schedule hash cross-checked at barrier/exchange entry.

// A comm workload touching every recorded op class: uneven span alltoallvs,
// scalar and vector allreduces, a broadcast, an allgather, split traffic,
// and barriers. Returns a per-rank digest of every value that arrived, so
// two runs can be compared bitwise.
std::vector<double> schedule_probe_workload(Communicator& comm) {
  const int p = comm.size();
  std::vector<double> digest;
  for (int round = 0; round < 3; ++round) {
    // Pair-symmetric counts (c(a, b) == c(b, a)), so one table serves as
    // both send_counts and recv_counts on every rank and transposes.
    std::vector<index_t> counts(p);
    for (int r = 0; r < p; ++r) counts[r] = 1 + (comm.rank() + r + round) % 3;
    index_t total = 0;
    for (index_t c : counts) total += c;
    std::vector<double> send(static_cast<size_t>(total));
    for (size_t i = 0; i < send.size(); ++i)
      send[i] = 1000.0 * comm.rank() + 10.0 * round + static_cast<double>(i);
    std::vector<double> recv(static_cast<size_t>(total));
    comm.alltoallv(std::span<const double>(send), counts,
                   std::span<double>(recv), counts, /*tag=*/500 + round);
    digest.insert(digest.end(), recv.begin(), recv.end());
    digest.push_back(comm.allreduce_sum(0.5 + comm.rank() + round));
    digest.push_back(comm.allreduce_max(0.5 + comm.rank() + round));
    std::vector<double> batch(3, comm.rank() + round);
    comm.allreduce_sum(batch);
    digest.insert(digest.end(), batch.begin(), batch.end());
    comm.barrier();
  }
  std::vector<double> seed{comm.is_root() ? 42.0 : 0.0};
  comm.broadcast(seed, 0);
  digest.push_back(seed[0]);
  auto all = comm.allgather(static_cast<double>(comm.rank()));
  digest.insert(digest.end(), all.begin(), all.end());
  Communicator sub = comm.split(comm.rank() % 2);
  digest.push_back(sub.allreduce_sum(static_cast<double>(comm.rank())));
  sub.barrier();
  comm.barrier();
  return digest;
}

TEST(ScheduleVerify, OnIsBitwiseIdenticalToOffWithEqualExchangeCounts) {
  // Acceptance gate: verification must be pure observation — identical
  // payload results bit for bit, identical exchange counters. (The
  // checkpoint allreduce may add MESSAGES; it must never add exchanges.)
  const int p = 4;
  std::vector<std::vector<double>> digest_off(p), digest_on(p);
  SpmdOptions off;  // defaults: verifier off
  auto t_off = run_spmd(
      p, [&](Communicator& comm) {
        digest_off[comm.rank()] = schedule_probe_workload(comm);
      },
      off);
  SpmdOptions on;
  on.verify_schedule = true;
  auto t_on = run_spmd(
      p, [&](Communicator& comm) {
        EXPECT_TRUE(comm.verify_schedule());
        digest_on[comm.rank()] = schedule_probe_workload(comm);
      },
      on);
  for (int r = 0; r < p; ++r) {
    ASSERT_EQ(digest_off[r].size(), digest_on[r].size());
    ASSERT_EQ(std::memcmp(digest_off[r].data(), digest_on[r].data(),
                          digest_off[r].size() * sizeof(double)),
              0)
        << "rank " << r << " payload results differ with --verify-schedule";
    EXPECT_EQ(t_off[r].total_exchanges(), t_on[r].total_exchanges());
    // The checkpoints really ran: their allreduce traffic is visible in the
    // message counters.
    EXPECT_GT(t_on[r].total_messages(), t_off[r].total_messages());
  }
}

TEST(ScheduleVerify, SkippedExchangeRaisesOnEveryRankNamingTheFirstOp) {
  // Rank 1 skips the second of three alltoallvs. The entry checkpoint of
  // its NEXT exchange meets the peers' checkpoint of the skipped one (the
  // verifier traffic rides a dedicated tag), so every rank throws a
  // structured divergence instead of deadlocking on mismatched payload
  // tags — and the recovery pass pins the first mismatching op index.
  const int p = 4;
  std::vector<long> index(p, -2);
  std::vector<std::string> description(p);
  SpmdOptions opts;
  opts.verify_schedule = true;
  run_spmd(
      p,
      [&](Communicator& comm) {
        std::vector<index_t> counts(p, 2);
        std::vector<double> buf(2 * p, comm.rank()), out(2 * p);
        try {
          for (int tag : {401, 402, 403}) {
            if (comm.rank() == 1 && tag == 402) continue;
            comm.alltoallv(std::span<const double>(buf), counts,
                           std::span<double>(out), counts, tag);
          }
          comm.barrier();
        } catch (const ScheduleDivergenceError& e) {
          index[comm.rank()] = e.first_mismatch_index();
          description[comm.rank()] = e.op_description();
        }
      },
      opts);
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(index[r], 1) << "rank " << r;
    EXPECT_NE(description[r].find("alltoallv"), std::string::npos);
    // Each rank names ITS op at the diverging index: the skipping rank had
    // already moved on to tag 403, everyone else was entering tag 402.
    EXPECT_NE(description[r].find(r == 1 ? "403" : "402"), std::string::npos)
        << "rank " << r << ": " << description[r];
  }
}

TEST(ScheduleVerify, MixedReductionOpsAreCaughtAtTheNextBarrier) {
  // All three scalar allreduces share one wire tag, so a rank calling
  // allreduce_max while its peers call allreduce_sum combines values and
  // returns garbage SILENTLY — only the schedule hash (which folds the
  // reduction-op identity) can catch it. The divergence surfaces at the
  // next barrier checkpoint, naming op 0.
  const int p = 3;
  std::atomic<int> caught{0};
  std::vector<long> index(p, -2);
  SpmdOptions opts;
  opts.verify_schedule = true;
  run_spmd(
      p,
      [&](Communicator& comm) {
        try {
          if (comm.rank() == 0)
            comm.allreduce_max(1.0 * comm.rank());
          else
            comm.allreduce_sum(1.0 * comm.rank());
          comm.barrier();
        } catch (const ScheduleDivergenceError& e) {
          caught.fetch_add(1);
          index[comm.rank()] = e.first_mismatch_index();
          EXPECT_NE(std::string(e.what()).find("allreduce"),
                    std::string::npos);
        }
      },
      opts);
  EXPECT_EQ(caught.load(), p);
  for (int r = 0; r < p; ++r) EXPECT_EQ(index[r], 0) << "rank " << r;
}

TEST(ScheduleVerify, SkippedMarkRaisesDivergenceAtPhaseEntry) {
  // verify_mark is the hook for symmetric point-to-point phases (the
  // ghost-halo exchange): a rank that skips the marked phase diverges at
  // op 0 even though no collective was involved — and because marks
  // checkpoint at entry, the divergence is caught before the phase's p2p
  // traffic could strand anyone.
  const int p = 3;
  std::atomic<int> caught{0};
  SpmdOptions opts;
  opts.verify_schedule = true;
  run_spmd(
      p,
      [&](Communicator& comm) {
        try {
          if (comm.rank() != 2) comm.verify_mark(/*tag=*/7);
          comm.barrier();
        } catch (const ScheduleDivergenceError& e) {
          caught.fetch_add(1);
          EXPECT_EQ(e.first_mismatch_index(), 0);
          if (comm.rank() != 2) {
            EXPECT_NE(e.op_description().find("mark"), std::string::npos);
          }
        }
      },
      opts);
  EXPECT_EQ(caught.load(), p);
}

TEST(ScheduleVerify, SubCommunicatorsInheritVerificationWithFreshState) {
  const int p = 4;
  std::atomic<int> caught{0};
  SpmdOptions opts;
  opts.verify_schedule = true;
  run_spmd(
      p,
      [&](Communicator& comm) {
        Communicator sub = comm.split(comm.rank() / 2);
        EXPECT_TRUE(sub.verify_schedule());
        // A clean sub-communicator schedule passes its own checkpoints...
        sub.barrier();
        EXPECT_EQ(sub.allreduce_sum(1), 2);
        // ...and a divergence WITHIN one split is caught there: in the
        // first sub-communicator, sub-rank 0 skips a marked phase.
        try {
          if (comm.rank() != 0) sub.verify_mark(/*tag=*/11);
          sub.barrier();
        } catch (const ScheduleDivergenceError&) {
          caught.fetch_add(1);
        }
      },
      opts);
  // Only the diverging split's two members throw; the other split's
  // schedule is internally consistent.
  EXPECT_EQ(caught.load(), 2);
}

}  // namespace
}  // namespace diffreg::mpisim
