// Grid module tests: pencil decomposition geometry, gather/scatter
// round trips, periodic ghost exchange (edges and corners), distributed
// field math reductions.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <random>
#include <utility>

#include "grid/decomposition.hpp"
#include "grid/field_io.hpp"
#include "grid/field_math.hpp"
#include "grid/ghost_exchange.hpp"
#include "mpisim/communicator.hpp"

namespace diffreg::grid {
namespace {

std::vector<real_t> random_full(const Int3& dims, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<real_t> dist(-1, 1);
  std::vector<real_t> x(dims.prod());
  for (auto& v : x) v = dist(rng);
  return x;
}

TEST(ProcessGrid, NearSquareFactorization) {
  EXPECT_EQ(choose_process_grid(1), (std::pair<int, int>{1, 1}));
  EXPECT_EQ(choose_process_grid(2), (std::pair<int, int>{1, 2}));
  EXPECT_EQ(choose_process_grid(4), (std::pair<int, int>{2, 2}));
  EXPECT_EQ(choose_process_grid(6), (std::pair<int, int>{2, 3}));
  EXPECT_EQ(choose_process_grid(8), (std::pair<int, int>{2, 4}));
  EXPECT_EQ(choose_process_grid(16), (std::pair<int, int>{4, 4}));
  EXPECT_EQ(choose_process_grid(7), (std::pair<int, int>{1, 7}));
}

struct DecompCase {
  Int3 dims;
  int p1, p2;
};

class DecompGeometry : public ::testing::TestWithParam<DecompCase> {};

TEST_P(DecompGeometry, BlocksTileTheGrid) {
  const auto [dims, p1, p2] = GetParam();
  mpisim::run_spmd(p1 * p2, [&, dims = dims, p1 = p1,
                             p2 = p2](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, dims, p1, p2);
    // Sum of local sizes over all ranks equals the grid size.
    const index_t total = comm.allreduce_sum(decomp.local_real_size());
    EXPECT_EQ(total, dims.prod());
    const index_t stotal = comm.allreduce_sum(decomp.local_spectral_size());
    EXPECT_EQ(stotal, (dims[2] / 2 + 1) * dims[1] * dims[0]);
    // owner_of agrees with my own ranges.
    for (index_t i1 = decomp.range1().begin; i1 < decomp.range1().end; ++i1)
      for (index_t i2 = decomp.range2().begin; i2 < decomp.range2().end; ++i2)
        EXPECT_EQ(decomp.owner_of(i1, i2), comm.rank());
    // Row/col communicators have the advertised sizes.
    EXPECT_EQ(decomp.row_comm().size(), p2);
    EXPECT_EQ(decomp.col_comm().size(), p1);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DecompGeometry,
    ::testing::Values(DecompCase{{8, 8, 8}, 1, 1}, DecompCase{{8, 8, 8}, 2, 2},
                      DecompCase{{16, 12, 8}, 2, 3},
                      DecompCase{{10, 7, 6}, 4, 2},
                      DecompCase{{9, 9, 9}, 3, 3}));

TEST(FieldIo, GatherScatterRoundTrip) {
  const Int3 dims{10, 7, 6};
  auto full = random_full(dims, 5);
  mpisim::run_spmd(4, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, dims, 2, 2);
    auto local = scatter_from_root(
        decomp, comm.is_root() ? std::span<const real_t>(full)
                               : std::span<const real_t>());
    EXPECT_EQ(static_cast<index_t>(local.size()), decomp.local_real_size());
    auto gathered = gather_to_root(decomp, local);
    if (comm.is_root()) {
      ASSERT_EQ(gathered.size(), full.size());
      for (size_t i = 0; i < full.size(); ++i)
        EXPECT_DOUBLE_EQ(gathered[i], full[i]);
    }
    // gather_to_all gives everyone the full volume.
    auto everywhere = gather_to_all(decomp, local);
    ASSERT_EQ(everywhere.size(), full.size());
    EXPECT_DOUBLE_EQ(everywhere[3], full[3]);
  });
}

TEST(FieldIo, ScatterPlacesBlocksCorrectly) {
  const Int3 dims{8, 8, 4};
  // full[i] encodes its own (i1, i2, i3).
  std::vector<real_t> full(dims.prod());
  for (index_t i1 = 0; i1 < dims[0]; ++i1)
    for (index_t i2 = 0; i2 < dims[1]; ++i2)
      for (index_t i3 = 0; i3 < dims[2]; ++i3)
        full[linear_index(i1, i2, i3, dims)] =
            100 * i1 + 10 * i2 + i3;
  mpisim::run_spmd(4, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, dims, 2, 2);
    auto local = scatter_from_root(
        decomp, comm.is_root() ? std::span<const real_t>(full)
                               : std::span<const real_t>());
    const Int3 ld = decomp.local_real_dims();
    for (index_t a = 0; a < ld[0]; ++a)
      for (index_t b = 0; b < ld[1]; ++b)
        for (index_t c = 0; c < ld[2]; ++c) {
          const real_t expected = 100 * (decomp.range1().begin + a) +
                                  10 * (decomp.range2().begin + b) + c;
          EXPECT_DOUBLE_EQ(local[linear_index(a, b, c, ld)], expected);
        }
  });
}

struct GhostCase {
  Int3 dims;
  int p1, p2;
  index_t width;
};

class GhostExchangeSweep : public ::testing::TestWithParam<GhostCase> {};

TEST_P(GhostExchangeSweep, HaloMatchesPeriodicFullArray) {
  const auto [dims, p1, p2, width] = GetParam();
  auto full = random_full(dims, 17);
  mpisim::run_spmd(p1 * p2, [&, dims = dims, p1 = p1, p2 = p2,
                             width = width](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, dims, p1, p2);
    auto local = scatter_from_root(
        decomp, comm.is_root() ? std::span<const real_t>(full)
                               : std::span<const real_t>());
    GhostExchange gx(decomp, width);
    std::vector<real_t> ghosted;
    gx.exchange(local, ghosted);

    const Int3 gd = gx.ghost_dims();
    const index_t lo1 = decomp.range1().begin, lo2 = decomp.range2().begin;
    for (index_t a = 0; a < gd[0]; ++a)
      for (index_t b = 0; b < gd[1]; ++b)
        for (index_t c = 0; c < gd[2]; ++c) {
          const index_t g1 = periodic_index(lo1 + a - width, dims[0]);
          const index_t g2 = periodic_index(lo2 + b - width, dims[1]);
          const index_t g3 = periodic_index(c - width, dims[2]);
          ASSERT_DOUBLE_EQ(ghosted[linear_index(a, b, c, gd)],
                           full[linear_index(g1, g2, g3, dims)])
              << "ghost (" << a << "," << b << "," << c << ")";
        }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GhostExchangeSweep,
    ::testing::Values(GhostCase{{8, 8, 8}, 1, 1, 2},
                      GhostCase{{8, 8, 8}, 2, 2, 2},
                      GhostCase{{8, 8, 8}, 2, 2, 1},
                      GhostCase{{12, 10, 6}, 2, 3, 2},
                      GhostCase{{10, 7, 6}, 2, 2, 3},
                      GhostCase{{8, 8, 4}, 4, 2, 2},
                      GhostCase{{9, 9, 9}, 3, 3, 2}));

TEST(GhostExchange, BatchedExchangeMatchesSequential) {
  // exchange_many must produce, per field, exactly what exchange produces —
  // while packing all fields into the same four neighbour messages.
  const Int3 dims{12, 10, 8};
  mpisim::run_spmd(4, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, dims, 2, 2);
    GhostExchange gx(decomp, 2);
    const index_t n = decomp.local_real_size();
    constexpr int kFields = 3;
    std::array<std::vector<real_t>, kFields> fields;
    for (int f = 0; f < kFields; ++f) {
      fields[f].resize(n);
      for (index_t i = 0; i < n; ++i)
        fields[f][i] = std::sin(0.01 * static_cast<real_t>(i) + f) +
                       comm.rank();
    }

    std::vector<real_t> batched(kFields * gx.ghost_size());
    const real_t* ptrs[kFields] = {fields[0].data(), fields[1].data(),
                                   fields[2].data()};
    const auto msgs_before = comm.timings().messages(TimeKind::kInterpComm);
    gx.exchange_many(std::span<const real_t* const>(ptrs, kFields), batched);
    const auto batched_msgs =
        comm.timings().messages(TimeKind::kInterpComm) - msgs_before;
    // 2x2 grid: two neighbour messages per distributed dimension,
    // independent of the batch size.
    EXPECT_EQ(batched_msgs, 4u);

    std::vector<real_t> single;
    for (int f = 0; f < kFields; ++f) {
      gx.exchange(fields[f], single);
      for (index_t i = 0; i < gx.ghost_size(); ++i)
        ASSERT_DOUBLE_EQ(batched[f * gx.ghost_size() + i], single[i])
            << "field " << f << " at " << i;
    }
  });
}

TEST(GhostExchange, ReusedExchangerIsDeterministic) {
  // The persistent pack buffers must not leak state between calls.
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {8, 8, 8});
    GhostExchange gx(decomp, 2);
    std::vector<real_t> f(decomp.local_real_size());
    for (size_t i = 0; i < f.size(); ++i)
      f[i] = static_cast<real_t>((i * 2654435761u) % 997);
    std::vector<real_t> g1, g2;
    gx.exchange(f, g1);
    gx.exchange(f, g2);
    ASSERT_EQ(g1.size(), g2.size());
    for (size_t i = 0; i < g1.size(); ++i) ASSERT_EQ(g1[i], g2[i]);
  });
}

TEST(GhostExchange, Fp32WireHaloMatchesFp64WithinRounding) {
  // Every ghost value of the fp32-wire exchanger must be (at worst) the
  // single fp32 rounding of the fp64-wire value — relative error <= 1e-6 —
  // with the identical four-message schedule and halved slab bytes.
  struct Case {
    Int3 dims;
    int p1, p2;
  };
  for (const Case& c : {Case{{8, 8, 8}, 1, 1}, Case{{8, 8, 8}, 2, 2},
                        Case{{12, 10, 6}, 2, 3}, Case{{8, 8, 4}, 4, 2},
                        Case{{12, 10, 6}, 2, 1}}) {
    auto full = random_full(c.dims, 23);
    mpisim::run_spmd(c.p1 * c.p2, [&, c](mpisim::Communicator& comm) {
      PencilDecomp decomp(comm, c.dims, c.p1, c.p2);
      auto local = scatter_from_root(
          decomp, comm.is_root() ? std::span<const real_t>(full)
                                 : std::span<const real_t>());
      GhostExchange gx64(decomp, 2);
      GhostExchange gx32(decomp, 2, TimeKind::kInterpComm,
                         WirePrecision::kF32);
      std::vector<real_t> g64, g32;
      const Timings before = comm.timings();
      gx64.exchange(local, g64);
      const Timings mid = comm.timings();
      gx32.exchange(local, g32);
      const Timings d64 = timings_delta(before, mid);
      const Timings d32 = timings_delta(mid, comm.timings());

      ASSERT_EQ(g64.size(), g32.size());
      for (size_t i = 0; i < g64.size(); ++i)
        ASSERT_NEAR(g32[i], g64[i], 1e-6 * (1 + std::abs(g64[i])))
            << "i=" << i << " p=" << c.p1 << "x" << c.p2;

      EXPECT_EQ(d64.messages(TimeKind::kInterpComm),
                d32.messages(TimeKind::kInterpComm));
      EXPECT_EQ(d64.bytes(TimeKind::kInterpComm) -
                    d32.bytes(TimeKind::kInterpComm),
                d32.saved_bytes(TimeKind::kInterpComm));
      if (c.p1 * c.p2 > 1) {
        EXPECT_GT(d32.saved_bytes(TimeKind::kInterpComm), 0u);
      }
    });
  }
}

TEST(FieldMath, MixedPrecisionOverloadsConvertAndAccumulateInFp64) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {8, 8, 8});
    const index_t n = decomp.local_real_size();
    VectorField a(n);
    for (int d = 0; d < 3; ++d)
      for (index_t i = 0; i < n; ++i)
        a[d][i] = 0.3 + 0.001 * static_cast<real_t>(i + d);

    // Narrow then widen: every element is the fp32 rounding of the source.
    grid::VectorField32 a32;
    grid::copy(a, a32);
    VectorField back;
    grid::copy(a32, back);
    for (int d = 0; d < 3; ++d)
      for (index_t i = 0; i < n; ++i)
        ASSERT_EQ(back[d][i],
                  static_cast<real_t>(static_cast<real32_t>(a[d][i])));

    // fp32 dot with fp64 accumulation tracks the fp64 dot to fp32 rounding.
    const real_t d64 = grid::dot(decomp, a, a);
    const real_t d32 = grid::dot(decomp, a32, a32);
    EXPECT_NEAR(d32, d64, 1e-6 * std::abs(d64));

    // fp32 axpy updates the fp32 storage.
    grid::VectorField32 y32;
    grid::resize_zero(y32, n);
    grid::axpy(2.0, a32, y32);
    for (int d = 0; d < 3; ++d)
      ASSERT_EQ(y32[d][7], 2.0f * a32[d][7]);
  });
}

TEST(GhostExchange, RejectsOversizedHalo) {
  mpisim::run_spmd(4, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {8, 8, 8}, 2, 2);
    EXPECT_THROW(GhostExchange(decomp, 5), std::invalid_argument);
  });
}

TEST(FieldMath, DistributedDotMatchesSerial) {
  const Int3 dims{8, 6, 4};
  auto a = random_full(dims, 1);
  auto b = random_full(dims, 2);
  real_t serial = 0;
  for (index_t i = 0; i < dims.prod(); ++i) serial += a[i] * b[i];
  serial *= cell_volume(dims);

  mpisim::run_spmd(4, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, dims, 2, 2);
    auto la = scatter_from_root(decomp, comm.is_root()
                                            ? std::span<const real_t>(a)
                                            : std::span<const real_t>());
    auto lb = scatter_from_root(decomp, comm.is_root()
                                            ? std::span<const real_t>(b)
                                            : std::span<const real_t>());
    EXPECT_NEAR(dot(decomp, la, lb), serial, 1e-12 * std::abs(serial) + 1e-14);
    EXPECT_NEAR(norm_l2(decomp, la) * norm_l2(decomp, la),
                dot(decomp, la, la), 1e-12);
  });
}

TEST(FieldMath, NormInfIsGlobalMax) {
  const Int3 dims{8, 8, 8};
  std::vector<real_t> full(dims.prod(), 0.5);
  full[linear_index(7, 7, 3, dims)] = -9.25;  // owned by the last rank
  mpisim::run_spmd(4, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, dims, 2, 2);
    auto local = scatter_from_root(
        decomp, comm.is_root() ? std::span<const real_t>(full)
                               : std::span<const real_t>());
    EXPECT_DOUBLE_EQ(norm_inf(decomp, local), 9.25);
  });
}

TEST(FieldMath, VectorFieldOps) {
  VectorField x(10), y(10);
  x.fill(2.0);
  y.fill(1.0);
  axpy(3.0, x, y);  // y = 1 + 3*2 = 7
  for (int d = 0; d < 3; ++d)
    for (real_t v : y[d]) EXPECT_DOUBLE_EQ(v, 7.0);
  scale(0.5, y);
  for (int d = 0; d < 3; ++d)
    for (real_t v : y[d]) EXPECT_DOUBLE_EQ(v, 3.5);
  VectorField z;
  copy(y, z);
  EXPECT_EQ(z.local_size(), y.local_size());
  EXPECT_DOUBLE_EQ(z[2][9], 3.5);
}

TEST(GhostExchange, OverlapExchangerMatchesBlockingBitwise) {
  // An overlap exchanger packs and sends the second slab of each dimension
  // under the first halo's flight; the ghosted block must be bit-identical
  // to the blocking exchanger on both wire formats, with the exact same
  // message schedule, and (for p > 1) some wire time surfacing as hidden.
  const Int3 dims{12, 10, 8};
  for (auto [p1, p2] : {std::pair{1, 1}, {2, 1}, {2, 2}, {3, 2}}) {
    for (WirePrecision wire : {WirePrecision::kF64, WirePrecision::kF32}) {
      auto timings = mpisim::run_spmd(
          p1 * p2, [&, p1 = p1, p2 = p2](mpisim::Communicator& comm) {
            grid::PencilDecomp decomp(comm, dims, p1, p2);
            ScalarField field(decomp.local_real_size());
            for (size_t i = 0; i < field.size(); ++i)
              field[i] = static_cast<real_t>((i * 2654435761u) % 991) / 991;

            GhostExchange blocking(decomp, 2, TimeKind::kInterpComm, wire);
            GhostExchange overlapped(decomp, 2, TimeKind::kInterpComm, wire,
                                     /*overlap=*/true);
            EXPECT_TRUE(overlapped.overlap());

            std::vector<real_t> g_b, g_o;
            comm.timings().clear();
            const Timings t0 = comm.timings();
            blocking.exchange(field, g_b);
            const Timings t1 = comm.timings();
            overlapped.exchange(field, g_o);
            const Timings t2 = comm.timings();

            ASSERT_EQ(g_b.size(), g_o.size());
            for (size_t i = 0; i < g_b.size(); ++i)
              ASSERT_EQ(g_b[i], g_o[i]) << "i=" << i;

            const Timings db = timings_delta(t0, t1);
            const Timings dn = timings_delta(t1, t2);
            EXPECT_EQ(db.messages(TimeKind::kInterpComm),
                      dn.messages(TimeKind::kInterpComm));
            EXPECT_EQ(db.bytes(TimeKind::kInterpComm),
                      dn.bytes(TimeKind::kInterpComm));
            EXPECT_EQ(db.saved_bytes(TimeKind::kInterpComm),
                      dn.saved_bytes(TimeKind::kInterpComm));
            EXPECT_EQ(db.hidden(TimeKind::kInterpComm), 0.0);
          });
      if (p1 * p2 > 1) {
        double hidden = 0;
        for (const auto& t : timings)
          hidden += t.hidden(TimeKind::kInterpComm);
        EXPECT_GT(hidden, 0.0) << "p1=" << p1 << " p2=" << p2;
      }
    }
  }
}

TEST(GhostExchange, SkippedExchangeIsCaughtByScheduleVerifier) {
  // The halo exchange is pure point-to-point, but it calls
  // Communicator::verify_mark per distributed dimension — so under
  // --verify-schedule a rank that skips a whole exchange round (the classic
  // lockstep bug: divergent control flow around an exchange) is caught at
  // the next barrier, naming the first diverging op, instead of feeding its
  // stale halos into the interpolation.
  mpisim::SpmdOptions opts;
  opts.verify_schedule = true;
  std::atomic<int> caught{0};
  mpisim::run_spmd(
      4,
      [&](mpisim::Communicator& comm) {
        PencilDecomp decomp(comm, {16, 16, 8});
        GhostExchange ghost(decomp, /*width=*/2);
        std::vector<real_t> local(decomp.local_real_size(), comm.rank());
        std::vector<real_t> ghosted;
        try {
          ghost.exchange(local, ghosted);  // round every rank runs
          if (comm.rank() != 3) ghost.exchange(local, ghosted);
          // The decomp holds its own copy of the communicator, and the
          // verifier history lives per object — barrier on the same comm
          // the exchange marked, as solver code does.
          decomp.comm().barrier();
        } catch (const mpisim::ScheduleDivergenceError& e) {
          caught.fetch_add(1);
          // The decomp's schedule is: two ctor splits at two recorded ops
          // each (the split plus its internal allgather, ops 0-3), then
          // the first exchange's two marked dimension phases (ops 4-5);
          // the skipped second exchange diverges at its first mark, op 6.
          EXPECT_EQ(e.first_mismatch_index(), 6) << "rank " << comm.rank();
        }
      },
      opts);
  EXPECT_EQ(caught.load(), 4);
}

}  // namespace
}  // namespace diffreg::grid
