// FFT stack tests: 1D engine against a naive DFT (power-of-two and
// Bluestein sizes), Parseval/linearity properties, serial 3D round trips and
// spectral values, and the distributed pencil FFT against the serial
// reference for several process grids and uneven block sizes.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "fft/fft1d.hpp"
#include "fft/fft3d_distributed.hpp"
#include "fft/fft3d_serial.hpp"
#include "grid/field_io.hpp"
#include "mpisim/communicator.hpp"

namespace diffreg::fft {
namespace {

std::vector<complex_t> naive_dft(std::span<const complex_t> x) {
  const index_t n = static_cast<index_t>(x.size());
  std::vector<complex_t> out(n);
  for (index_t j = 0; j < n; ++j) {
    complex_t sum(0, 0);
    for (index_t k = 0; k < n; ++k) {
      const real_t phase = -kTwoPi * static_cast<real_t>(j * k) / n;
      sum += x[k] * complex_t(std::cos(phase), std::sin(phase));
    }
    out[j] = sum;
  }
  return out;
}

std::vector<complex_t> random_signal(index_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<real_t> dist(-1, 1);
  std::vector<complex_t> x(n);
  for (auto& v : x) v = complex_t(dist(rng), dist(rng));
  return x;
}

class Fft1dSize : public ::testing::TestWithParam<index_t> {};

TEST_P(Fft1dSize, MatchesNaiveDft) {
  const index_t n = GetParam();
  auto x = random_signal(n, 42 + static_cast<unsigned>(n));
  const auto expected = naive_dft(x);
  Fft1d plan(n);
  plan.forward(x.data());
  for (index_t j = 0; j < n; ++j) {
    EXPECT_NEAR(x[j].real(), expected[j].real(), 1e-9 * n) << "j=" << j;
    EXPECT_NEAR(x[j].imag(), expected[j].imag(), 1e-9 * n) << "j=" << j;
  }
}

TEST_P(Fft1dSize, InverseRoundTrip) {
  const index_t n = GetParam();
  auto x = random_signal(n, 7 + static_cast<unsigned>(n));
  const auto original = x;
  Fft1d plan(n);
  plan.forward(x.data());
  plan.inverse(x.data());
  for (index_t j = 0; j < n; ++j) {
    EXPECT_NEAR(x[j].real(), original[j].real(), 1e-10 * n);
    EXPECT_NEAR(x[j].imag(), original[j].imag(), 1e-10 * n);
  }
}

TEST_P(Fft1dSize, ParsevalHolds) {
  const index_t n = GetParam();
  auto x = random_signal(n, 3 + static_cast<unsigned>(n));
  real_t time_energy = 0;
  for (const auto& v : x) time_energy += std::norm(v);
  Fft1d plan(n);
  plan.forward(x.data());
  real_t freq_energy = 0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, time_energy * n, 1e-8 * n * time_energy);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, Fft1dSize,
                         ::testing::Values(1, 2, 4, 8, 64, 256));
INSTANTIATE_TEST_SUITE_P(MixedRadix, Fft1dSize,
                         ::testing::Values(3, 5, 6, 12, 27, 48, 75, 300));
INSTANTIATE_TEST_SUITE_P(BluesteinLargePrime, Fft1dSize,
                         ::testing::Values(67, 127, 134));

TEST(Fft1d, LinearityAndDelta) {
  // DFT of a delta at k0 is a pure exponential.
  const index_t n = 16;
  std::vector<complex_t> x(n, complex_t(0, 0));
  x[3] = complex_t(1, 0);
  Fft1d plan(n);
  plan.forward(x.data());
  for (index_t j = 0; j < n; ++j) {
    const real_t phase = -kTwoPi * 3.0 * j / n;
    EXPECT_NEAR(x[j].real(), std::cos(phase), 1e-12);
    EXPECT_NEAR(x[j].imag(), std::sin(phase), 1e-12);
  }
}

TEST(Fft1d, BatchTransformsRowsIndependently) {
  const index_t n = 32, rows = 5;
  auto all = random_signal(n * rows, 11);
  auto expected = all;
  Fft1d plan(n);
  for (index_t r = 0; r < rows; ++r) plan.forward(expected.data() + r * n);
  plan.forward_batch(all.data(), rows);
  for (index_t i = 0; i < n * rows; ++i) {
    EXPECT_NEAR(all[i].real(), expected[i].real(), 1e-12);
    EXPECT_NEAR(all[i].imag(), expected[i].imag(), 1e-12);
  }
}

TEST(Fft1d, ThrowsOnNonPositiveSize) {
  EXPECT_THROW(Fft1d(0), std::invalid_argument);
  EXPECT_THROW(Fft1d(-4), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Serial 3D.

std::vector<real_t> random_real(index_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<real_t> dist(-1, 1);
  std::vector<real_t> x(n);
  for (auto& v : x) v = dist(rng);
  return x;
}

class SerialFftDims : public ::testing::TestWithParam<Int3> {};

TEST_P(SerialFftDims, RoundTripIsIdentity) {
  const Int3 dims = GetParam();
  SerialFft3d fft(dims);
  auto x = random_real(dims.prod(), 99);
  std::vector<complex_t> spec(fft.spectral_size());
  std::vector<real_t> back(dims.prod());
  fft.forward(x, spec);
  fft.inverse(spec, back);
  for (index_t i = 0; i < dims.prod(); ++i)
    EXPECT_NEAR(back[i], x[i], 1e-10) << "i=" << i;
}

TEST_P(SerialFftDims, ConstantFieldHasOnlyMeanMode) {
  const Int3 dims = GetParam();
  SerialFft3d fft(dims);
  std::vector<real_t> x(dims.prod(), 2.5);
  std::vector<complex_t> spec(fft.spectral_size());
  fft.forward(x, spec);
  EXPECT_NEAR(spec[0].real(), 2.5 * dims.prod(), 1e-8 * dims.prod());
  EXPECT_NEAR(spec[0].imag(), 0.0, 1e-9 * dims.prod());
  real_t rest = 0;
  for (size_t i = 1; i < spec.size(); ++i) rest += std::abs(spec[i]);
  EXPECT_NEAR(rest, 0.0, 1e-7 * dims.prod());
}

INSTANTIATE_TEST_SUITE_P(Sweep, SerialFftDims,
                         ::testing::Values(Int3{8, 8, 8}, Int3{4, 8, 16},
                                           Int3{8, 12, 10}, Int3{6, 5, 7}));

TEST(SerialFft3d, SingleCosineModeLandsOnOneCoefficient) {
  const Int3 dims{8, 8, 8};
  SerialFft3d fft(dims);
  std::vector<real_t> x(dims.prod());
  // cos(2 x1) -> modes (±2, 0, 0); the half-spectrum keeps both.
  const real_t h = kTwoPi / dims[0];
  for (index_t i1 = 0; i1 < 8; ++i1)
    for (index_t i2 = 0; i2 < 8; ++i2)
      for (index_t i3 = 0; i3 < 8; ++i3)
        x[linear_index(i1, i2, i3, dims)] = std::cos(2 * i1 * h);
  std::vector<complex_t> spec(fft.spectral_size());
  fft.forward(x, spec);
  const Int3 sd = fft.spectral_dims();
  const index_t total = dims.prod();
  for (index_t k1 = 0; k1 < sd[0]; ++k1)
    for (index_t k2 = 0; k2 < sd[1]; ++k2)
      for (index_t k3 = 0; k3 < sd[2]; ++k3) {
        const complex_t v = spec[linear_index(k1, k2, k3, sd)];
        if ((k1 == 2 || k1 == 6) && k2 == 0 && k3 == 0)
          EXPECT_NEAR(v.real(), total / 2.0, 1e-8 * total);
        else
          EXPECT_NEAR(std::abs(v), 0.0, 1e-8 * total);
      }
}

// --------------------------------------------------------------------------
// Distributed 3D against the serial reference.

struct DistCase {
  Int3 dims;
  int p1, p2;
};

class DistributedFft : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributedFft, MatchesSerialForwardAndInverse) {
  const auto [dims, p1, p2] = GetParam();
  const int p = p1 * p2;

  // Serial reference.
  auto full = random_real(dims.prod(), 1234);
  SerialFft3d serial(dims);
  std::vector<complex_t> serial_spec(serial.spectral_size());
  serial.forward(full, serial_spec);

  mpisim::run_spmd(p, [&, dims = dims, p1 = p1, p2 = p2](
                           mpisim::Communicator& comm) {
    grid::PencilDecomp decomp(comm, dims, p1, p2);
    DistributedFft3d fft(decomp);

    auto local = grid::scatter_from_root(
        decomp, comm.is_root() ? std::span<const real_t>(full)
                               : std::span<const real_t>());
    std::vector<complex_t> spec(fft.local_spectral_size());
    fft.forward(local, spec);

    // Check every local spectral value against the serial layout
    // [k1][k2][k3c] (distributed layout is [k3c][k2][k1]).
    const Int3 sd = decomp.local_spectral_dims();
    const Int3 serial_sd = serial.spectral_dims();
    for (index_t a = 0; a < sd[0]; ++a) {
      const index_t k3 = decomp.srange3().begin + a;
      for (index_t b = 0; b < sd[1]; ++b) {
        const index_t k2 = decomp.srange2().begin + b;
        for (index_t c = 0; c < sd[2]; ++c) {
          const complex_t mine = spec[(a * sd[1] + b) * sd[2] + c];
          const complex_t ref =
              serial_spec[linear_index(c, k2, k3, serial_sd)];
          ASSERT_NEAR(mine.real(), ref.real(), 1e-8 * dims.prod());
          ASSERT_NEAR(mine.imag(), ref.imag(), 1e-8 * dims.prod());
        }
      }
    }

    // Round trip.
    std::vector<real_t> back(fft.local_real_size());
    fft.inverse(spec, back);
    for (index_t i = 0; i < fft.local_real_size(); ++i)
      ASSERT_NEAR(back[i], local[i], 1e-10);
  });
}

INSTANTIATE_TEST_SUITE_P(
    ProcessGrids, DistributedFft,
    ::testing::Values(DistCase{{8, 8, 8}, 1, 1}, DistCase{{8, 8, 8}, 1, 2},
                      DistCase{{8, 8, 8}, 2, 1}, DistCase{{8, 8, 8}, 2, 2},
                      DistCase{{16, 8, 12}, 2, 2},
                      DistCase{{8, 12, 8}, 2, 3},
                      DistCase{{12, 10, 6}, 3, 2},
                      // Uneven blocks: 10 over 4 and 7 over 2/3.
                      DistCase{{10, 7, 8}, 4, 2},
                      DistCase{{7, 10, 6}, 2, 3}));

// r2c/c2r axis-3 coverage: even/odd/mixed-radix/Bluestein N3, including odd
// local row counts (exercising the unpaired-last-row path) and the
// transpose-correctness sweep over p in {1, 2, 4, 6}.
INSTANTIATE_TEST_SUITE_P(
    RealTransformSizes, DistributedFft,
    ::testing::Values(DistCase{{5, 5, 5}, 1, 1},     // odd N3, odd rows
                      DistCase{{5, 5, 8}, 1, 2},     // odd local rows, p = 2
                      DistCase{{6, 6, 9}, 2, 2},     // mixed-radix odd N3
                      DistCase{{8, 6, 12}, 2, 3},    // mixed-radix even N3
                      DistCase{{5, 4, 67}, 1, 2},    // Bluestein N3
                      DistCase{{67, 4, 6}, 2, 1},    // Bluestein N1
                      DistCase{{4, 67, 6}, 2, 2},    // Bluestein N2
                      DistCase{{9, 7, 10}, 1, 4},    // p = 4, uneven
                      DistCase{{10, 9, 7}, 4, 1},    // p = 4, col-only
                      DistCase{{12, 7, 9}, 6, 1},    // p = 6, col-only
                      DistCase{{7, 12, 9}, 1, 6}));  // p = 6, row-only

TEST(DistributedFft3d, BatchedManyMatchesSequentialBitwise) {
  // forward_many/inverse_many must agree bitwise with per-component
  // transforms: the batch changes the exchange schedule, not the arithmetic.
  const Int3 dims{8, 12, 10};
  mpisim::run_spmd(4, [&](mpisim::Communicator& comm) {
    grid::PencilDecomp decomp(comm, dims, 2, 2);
    DistributedFft3d fft(decomp);
    const index_t nr = fft.local_real_size();
    const index_t ns = fft.local_spectral_size();

    std::vector<std::vector<real_t>> x(3);
    for (int c = 0; c < 3; ++c)
      x[c] = random_real(nr, 100 + 7 * static_cast<unsigned>(c) +
                                 static_cast<unsigned>(comm.rank()));

    // Sequential reference.
    std::vector<std::vector<complex_t>> spec_seq(3);
    for (int c = 0; c < 3; ++c) {
      spec_seq[c].resize(ns);
      fft.forward(x[c], spec_seq[c]);
    }
    std::vector<std::vector<real_t>> back_seq(3);
    for (int c = 0; c < 3; ++c) {
      back_seq[c].resize(nr);
      fft.inverse(spec_seq[c], back_seq[c]);
    }

    // Batched.
    std::vector<std::vector<complex_t>> spec_many(3);
    for (auto& s : spec_many) s.resize(ns);
    const real_t* reals[3] = {x[0].data(), x[1].data(), x[2].data()};
    complex_t* specs[3] = {spec_many[0].data(), spec_many[1].data(),
                           spec_many[2].data()};
    fft.forward_many(std::span<const real_t* const>(reals),
                     std::span<complex_t* const>(specs));
    for (int c = 0; c < 3; ++c)
      for (index_t i = 0; i < ns; ++i) {
        ASSERT_EQ(spec_many[c][i].real(), spec_seq[c][i].real());
        ASSERT_EQ(spec_many[c][i].imag(), spec_seq[c][i].imag());
      }

    std::vector<std::vector<real_t>> back_many(3);
    for (auto& b : back_many) b.resize(nr);
    const complex_t* cspecs[3] = {spec_many[0].data(), spec_many[1].data(),
                                  spec_many[2].data()};
    real_t* backs[3] = {back_many[0].data(), back_many[1].data(),
                        back_many[2].data()};
    fft.inverse_many(std::span<const complex_t* const>(cspecs),
                     std::span<real_t* const>(backs));
    for (int c = 0; c < 3; ++c)
      for (index_t i = 0; i < nr; ++i)
        ASSERT_EQ(back_many[c][i], back_seq[c][i]);
  });
}

TEST(DistributedFft3d, RepeatedTransformsReuseBuffersBitwise) {
  // All pack/unpack scratch lives in the plan; running the same transform
  // twice must produce bit-identical results with the buffers reused (the
  // zero-allocation acceptance check of the flat-buffer pipeline).
  const Int3 dims{12, 10, 8};
  mpisim::run_spmd(4, [&](mpisim::Communicator& comm) {
    grid::PencilDecomp decomp(comm, dims, 2, 2);
    DistributedFft3d fft(decomp);
    auto x = random_real(fft.local_real_size(),
                         55 + static_cast<unsigned>(comm.rank()));
    std::vector<complex_t> spec1(fft.local_spectral_size());
    std::vector<complex_t> spec2(fft.local_spectral_size());
    std::vector<real_t> back1(fft.local_real_size());
    std::vector<real_t> back2(fft.local_real_size());
    fft.forward(x, spec1);
    fft.inverse(spec1, back1);
    fft.forward(x, spec2);
    fft.inverse(spec2, back2);
    for (index_t i = 0; i < fft.local_spectral_size(); ++i) {
      ASSERT_EQ(spec1[i].real(), spec2[i].real());
      ASSERT_EQ(spec1[i].imag(), spec2[i].imag());
    }
    for (index_t i = 0; i < fft.local_real_size(); ++i)
      ASSERT_EQ(back1[i], back2[i]);
  });
}

TEST(DistributedFft3d, CommCountersTrackExchangesAndBytes) {
  // One forward = 2 alltoallv exchanges (row + col); with p1 = p2 = 2 every
  // rank ships data to one peer per exchange, so bytes and messages are
  // nonzero and attributed to the FFT comm category.
  const Int3 dims{8, 8, 8};
  auto timings = mpisim::run_spmd(4, [&](mpisim::Communicator& comm) {
    grid::PencilDecomp decomp(comm, dims, 2, 2);
    DistributedFft3d fft(decomp);
    std::vector<real_t> x(fft.local_real_size(), 1.0);
    std::vector<complex_t> spec(fft.local_spectral_size());
    comm.timings().clear();
    fft.forward(x, spec);
    EXPECT_EQ(comm.timings().exchanges(TimeKind::kFftComm), 2u);
    fft.inverse(spec, x);
    EXPECT_EQ(comm.timings().exchanges(TimeKind::kFftComm), 4u);
  });
  for (const auto& t : timings) {
    EXPECT_EQ(t.exchanges(TimeKind::kFftComm), 4u);
    EXPECT_GT(t.bytes(TimeKind::kFftComm), 0u);
    EXPECT_GT(t.messages(TimeKind::kFftComm), 0u);
  }
}

TEST(DistributedFft3d, Fp32WireMatchesFp64WithinRounding) {
  // fp32-wire vs fp64-wire comparison (mixed-precision contract): the
  // forward spectrum and the full round trip must agree to a relative L2
  // error <= 1e-6 per field, the exchange/message schedule must be
  // identical, and the byte counters must show the halving (bytes64 -
  // bytes32 == saved32).
  const Int3 dims{20, 16, 12};
  for (int p : {1, 2, 4, 6}) {
    auto timings = mpisim::run_spmd(p, [&](mpisim::Communicator& comm) {
      grid::PencilDecomp decomp(comm, dims);
      DistributedFft3d fft64(decomp);
      DistributedFft3d fft32(decomp, WirePrecision::kF32);

      // Deterministic field keyed on the global index, so every process
      // grid transforms the same data.
      const Int3 ld = decomp.local_real_dims();
      std::vector<real_t> x(fft64.local_real_size());
      index_t idx = 0;
      for (index_t a = 0; a < ld[0]; ++a)
        for (index_t b = 0; b < ld[1]; ++b)
          for (index_t c = 0; c < ld[2]; ++c, ++idx) {
            const index_t g =
                linear_index(decomp.range1().begin + a,
                             decomp.range2().begin + b, c, dims);
            x[idx] = static_cast<real_t>((g * 2654435761u) % 997) / 997.0;
          }

      std::vector<complex_t> spec64(fft64.local_spectral_size());
      std::vector<complex_t> spec32(fft64.local_spectral_size());
      std::vector<real_t> back64(x.size()), back32(x.size());

      comm.set_time_kind(TimeKind::kFftComm);
      const Timings before = comm.timings();
      fft64.forward(x, spec64);
      fft64.inverse(spec64, back64);
      const Timings mid = comm.timings();
      fft32.forward(x, spec32);
      fft32.inverse(spec32, back32);
      const Timings d64 = timings_delta(before, mid);
      const Timings d32 = timings_delta(mid, comm.timings());

      // Relative L2 error of the spectrum and of the round trip.
      real_t snum = 0, sden = 0, rnum = 0, rden = 0;
      for (size_t i = 0; i < spec64.size(); ++i) {
        snum += std::norm(spec64[i] - spec32[i]);
        sden += std::norm(spec64[i]);
      }
      for (size_t i = 0; i < back64.size(); ++i) {
        rnum += (back64[i] - back32[i]) * (back64[i] - back32[i]);
        rden += back64[i] * back64[i];
      }
      comm.set_time_kind(TimeKind::kOther);
      snum = comm.allreduce_sum(snum);
      sden = comm.allreduce_sum(sden);
      rnum = comm.allreduce_sum(rnum);
      rden = comm.allreduce_sum(rden);
      EXPECT_LE(std::sqrt(snum / sden), 1e-6) << "p=" << p;
      EXPECT_LE(std::sqrt(rnum / rden), 1e-6) << "p=" << p;

      // Identical schedule, halved wire volume.
      EXPECT_EQ(d64.exchanges(TimeKind::kFftComm),
                d32.exchanges(TimeKind::kFftComm));
      EXPECT_EQ(d64.messages(TimeKind::kFftComm),
                d32.messages(TimeKind::kFftComm));
      EXPECT_EQ(d64.bytes(TimeKind::kFftComm) - d32.bytes(TimeKind::kFftComm),
                d32.saved_bytes(TimeKind::kFftComm));
      if (p > 1) {
        EXPECT_GT(d32.saved_bytes(TimeKind::kFftComm), 0u) << "p=" << p;
      }
    });
  }
}

TEST(DistributedFft3d, Fp32WireBatchedManyMatchesScalarTransforms) {
  // The batched path must ride the converted exchanges too: forward_many at
  // fp32 wire equals per-component fp32-wire forwards bitwise (same
  // conversions, same order).
  const Int3 dims{12, 12, 12};
  mpisim::run_spmd(4, [&](mpisim::Communicator& comm) {
    grid::PencilDecomp decomp(comm, dims, 2, 2);
    DistributedFft3d fft32(decomp, WirePrecision::kF32);
    const index_t n = fft32.local_real_size();
    std::vector<real_t> xs[3];
    for (int c = 0; c < 3; ++c) {
      xs[c].resize(n);
      for (index_t i = 0; i < n; ++i)
        xs[c][i] = std::sin(0.01 * static_cast<real_t>(i + c * 7));
    }
    std::vector<complex_t> batched[3], single[3];
    for (int c = 0; c < 3; ++c) {
      batched[c].resize(fft32.local_spectral_size());
      single[c].resize(fft32.local_spectral_size());
      fft32.forward(xs[c], single[c]);
    }
    const real_t* reals[3] = {xs[0].data(), xs[1].data(), xs[2].data()};
    complex_t* specs[3] = {batched[0].data(), batched[1].data(),
                           batched[2].data()};
    fft32.forward_many(std::span<const real_t* const>(reals, 3),
                       std::span<complex_t* const>(specs, 3));
    for (int c = 0; c < 3; ++c)
      for (size_t i = 0; i < batched[c].size(); ++i) {
        ASSERT_EQ(batched[c][i].real(), single[c][i].real());
        ASSERT_EQ(batched[c][i].imag(), single[c][i].imag());
      }
  });
}

TEST(DistributedFft3d, TimingsAreAttributed) {
  const Int3 dims{16, 16, 16};
  auto timings = mpisim::run_spmd(4, [&](mpisim::Communicator& comm) {
    grid::PencilDecomp decomp(comm, dims, 2, 2);
    DistributedFft3d fft(decomp);
    std::vector<real_t> x(fft.local_real_size(), 1.0);
    std::vector<complex_t> spec(fft.local_spectral_size());
    for (int rep = 0; rep < 3; ++rep) fft.forward(x, spec);
  });
  for (const auto& t : timings)
    EXPECT_GT(t.get(TimeKind::kFftExec), 0.0);
}

TEST(DistributedFft3d, OverlapPlanMatchesBlockingBitwise) {
  // An overlap plan posts the transpose exchanges nonblocking and unpacks
  // the self chunk under their flight; the spectra and round trips must be
  // bit-identical to the blocking plan on both wire formats, the comm
  // counters must show the exact same message schedule, and (for p > 1)
  // some wire time must surface as hidden.
  const Int3 dims{20, 16, 12};
  for (int p : {1, 2, 4, 6}) {
    for (WirePrecision wire : {WirePrecision::kF64, WirePrecision::kF32}) {
      auto timings = mpisim::run_spmd(p, [&](mpisim::Communicator& comm) {
        grid::PencilDecomp decomp(comm, dims);
        DistributedFft3d blocking(decomp, wire);
        DistributedFft3d overlapped(decomp, wire, /*overlap=*/true);
        EXPECT_TRUE(overlapped.overlap());

        auto x = random_real(blocking.local_real_size(),
                             91 + static_cast<unsigned>(comm.rank()));
        std::vector<complex_t> spec_b(blocking.local_spectral_size());
        std::vector<complex_t> spec_o(blocking.local_spectral_size());
        std::vector<real_t> back_b(x.size()), back_o(x.size());

        comm.timings().clear();
        const Timings t0 = comm.timings();
        blocking.forward(x, spec_b);
        blocking.inverse(spec_b, back_b);
        const Timings t1 = comm.timings();
        overlapped.forward(x, spec_o);
        overlapped.inverse(spec_o, back_o);
        const Timings t2 = comm.timings();

        for (size_t i = 0; i < spec_b.size(); ++i) {
          ASSERT_EQ(spec_b[i].real(), spec_o[i].real());
          ASSERT_EQ(spec_b[i].imag(), spec_o[i].imag());
        }
        for (size_t i = 0; i < back_b.size(); ++i)
          ASSERT_EQ(back_b[i], back_o[i]);

        const Timings db = timings_delta(t0, t1);
        const Timings dn = timings_delta(t1, t2);
        EXPECT_EQ(db.exchanges(TimeKind::kFftComm),
                  dn.exchanges(TimeKind::kFftComm));
        EXPECT_EQ(db.messages(TimeKind::kFftComm),
                  dn.messages(TimeKind::kFftComm));
        EXPECT_EQ(db.bytes(TimeKind::kFftComm), dn.bytes(TimeKind::kFftComm));
        EXPECT_EQ(db.saved_bytes(TimeKind::kFftComm),
                  dn.saved_bytes(TimeKind::kFftComm));
        // Only the overlapped plan hides wire time.
        EXPECT_EQ(db.hidden(TimeKind::kFftComm), 0.0);
      });
      if (p > 1) {
        double hidden = 0;
        for (const auto& t : timings) hidden += t.hidden(TimeKind::kFftComm);
        EXPECT_GT(hidden, 0.0) << "p=" << p;
      }
    }
  }
}

}  // namespace
}  // namespace diffreg::fft
