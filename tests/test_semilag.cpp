// Semi-Lagrangian transport tests: analytic advection solutions, second
// order convergence in time, unconditional stability at large CFL numbers,
// state/adjoint inner-product consistency, incremental solvers as
// directional derivatives, and the displacement/deformation map.
#include <gtest/gtest.h>

#include <cmath>

#include "core/deformation.hpp"
#include "imaging/synthetic.hpp"
#include "mpisim/communicator.hpp"
#include "semilag/transport.hpp"

namespace diffreg::semilag {
namespace {

using grid::PencilDecomp;
using grid::ScalarField;
using grid::VectorField;

template <typename F>
ScalarField fill(PencilDecomp& d, F&& f) {
  const Int3 dims = d.dims();
  const Int3 ld = d.local_real_dims();
  const real_t h1 = kTwoPi / dims[0], h2 = kTwoPi / dims[1],
               h3 = kTwoPi / dims[2];
  ScalarField out(d.local_real_size());
  index_t idx = 0;
  for (index_t a = 0; a < ld[0]; ++a)
    for (index_t b = 0; b < ld[1]; ++b)
      for (index_t c = 0; c < ld[2]; ++c, ++idx)
        out[idx] = f((d.range1().begin + a) * h1, (d.range2().begin + b) * h2,
                     c * h3);
  return out;
}

class TransportRanks : public ::testing::TestWithParam<int> {};

TEST_P(TransportRanks, ConstantVelocityTranslatesExactly) {
  // For constant v the solution is rho(x, 1) = rho0(x - v); with the smooth
  // trig field the only error is O(h^4) interpolation.
  const int p = GetParam();
  mpisim::run_spmd(p, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {32, 32, 32});
    spectral::SpectralOps ops(decomp);
    TransportConfig tc;
    tc.nt = 4;
    Transport transport(ops, tc);

    const Vec3 c{0.7, -0.4, 0.25};
    VectorField v(decomp.local_real_size());
    for (int d = 0; d < 3; ++d)
      for (auto& val : v[d]) val = c[d];
    transport.set_velocity(v);

    auto rho0 = fill(decomp, [](real_t x1, real_t x2, real_t x3) {
      return std::sin(x1) * std::cos(x2) + 0.5 * std::sin(x3);
    });
    transport.solve_state(rho0);
    auto expected = fill(decomp, [&](real_t x1, real_t x2, real_t x3) {
      return std::sin(x1 - c[0]) * std::cos(x2 - c[1]) +
             0.5 * std::sin(x3 - c[2]);
    });
    const auto& got = transport.final_state();
    for (size_t i = 0; i < got.size(); ++i)
      ASSERT_NEAR(got[i], expected[i], 5e-4) << i;
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, TransportRanks, ::testing::Values(1, 2, 4));

TEST(Transport, SecondOrderConvergenceInTime) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {32, 32, 32});
    spectral::SpectralOps ops(decomp);
    auto rho0 = imaging::synthetic_template(decomp);
    auto v = imaging::synthetic_velocity(decomp, 0.8);

    auto solve_with_nt = [&](int nt) {
      TransportConfig tc;
      tc.nt = nt;
      Transport transport(ops, tc);
      transport.set_velocity(v);
      transport.solve_state(rho0);
      return transport.final_state();
    };

    const auto coarse = solve_with_nt(2);
    const auto medium = solve_with_nt(4);
    const auto fine = solve_with_nt(16);  // reference

    real_t e_coarse = 0, e_medium = 0;
    for (size_t i = 0; i < fine.size(); ++i) {
      e_coarse = std::max(e_coarse, std::abs(coarse[i] - fine[i]));
      e_medium = std::max(e_medium, std::abs(medium[i] - fine[i]));
    }
    e_coarse = comm.allreduce_max(e_coarse);
    e_medium = comm.allreduce_max(e_medium);
    // RK2: halving dt should reduce the error by about 4 (allow slack for
    // the interpolation-error floor).
    EXPECT_GT(e_coarse / e_medium, 2.5)
        << "coarse " << e_coarse << " medium " << e_medium;
  });
}

TEST(Transport, UnconditionallyStableAtLargeCfl) {
  // CFL = |v| dt / h ~ 0.9 * (1/2) / (2*pi/16) ~ 1.15 per step with nt = 2;
  // amplify the velocity so a CFL-limited scheme would explode.
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    spectral::SpectralOps ops(decomp);
    auto rho0 = imaging::synthetic_template(decomp);
    auto v = imaging::synthetic_velocity(decomp, 6.0);  // CFL >> 1
    TransportConfig tc;
    tc.nt = 2;
    Transport transport(ops, tc);
    transport.set_velocity(v);
    transport.solve_state(rho0);
    const real_t max_val = grid::norm_inf(decomp, transport.final_state());
    // Pure advection cannot amplify the field (modulo interpolation
    // overshoot); anything beyond a small factor indicates instability.
    EXPECT_LT(max_val, 1.5);
  });
}

TEST(Transport, StateHistoryEndpointsAreConsistent) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    spectral::SpectralOps ops(decomp);
    auto rho0 = imaging::synthetic_template(decomp);
    auto v = imaging::synthetic_velocity(decomp, 0.5);
    TransportConfig tc;
    tc.nt = 4;
    Transport transport(ops, tc);
    transport.set_velocity(v);
    transport.solve_state(rho0);
    // slice 0 is the initial condition, slice nt the final state.
    for (size_t i = 0; i < rho0.size(); ++i)
      ASSERT_DOUBLE_EQ(transport.state(0)[i], rho0[i]);
    for (size_t i = 0; i < rho0.size(); ++i)
      ASSERT_DOUBLE_EQ(transport.state(4)[i], transport.final_state()[i]);
  });
}

TEST(Transport, AdjointInnerProductConsistency) {
  // The adjoint transport is (approximately) the L2 adjoint of the state
  // transport: <S rho0, lam1> == <rho0, S* lam1> up to discretization error.
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {24, 24, 24});
    spectral::SpectralOps ops(decomp);
    auto v = imaging::synthetic_velocity(decomp, 0.4);
    TransportConfig tc;
    tc.nt = 4;
    Transport transport(ops, tc);
    transport.set_velocity(v);

    auto rho0 = fill(decomp, [](real_t x1, real_t x2, real_t) {
      return std::sin(x1) * std::cos(2 * x2);
    });
    auto lam1 = fill(decomp, [](real_t, real_t x2, real_t x3) {
      return std::cos(x2) * std::sin(x3);
    });

    transport.solve_state(rho0);
    const real_t lhs = grid::dot(decomp, transport.final_state(), lam1);

    // S* lam1: backward solve; solve_adjoint stores lam(0) in the history.
    VectorField b;
    transport.solve_adjoint(lam1, b, /*store_lambda=*/true);
    const real_t rhs = grid::dot(decomp, rho0, transport.adjoint(0));

    const real_t scale = std::max(std::abs(lhs), std::abs(rhs));
    EXPECT_NEAR(lhs, rhs, 0.02 * scale + 1e-3);
  });
}

TEST(Transport, IncrementalStateIsDirectionalDerivative) {
  // rho_tilde(1) must match (rho(1; v + eps w) - rho(1; v - eps w)) / 2 eps.
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    spectral::SpectralOps ops(decomp);
    auto rho0 = imaging::synthetic_template(decomp);
    auto v = imaging::synthetic_velocity(decomp, 0.4);
    auto w = imaging::synthetic_velocity_divfree(decomp, 0.3);

    TransportConfig tc;
    tc.nt = 4;
    Transport transport(ops, tc);
    transport.set_velocity(v);
    transport.solve_state(rho0);
    ScalarField rho_tilde1;
    transport.solve_incremental_state(w, rho_tilde1);

    const real_t eps = 1e-4;
    auto perturbed = [&](real_t sign) {
      VectorField vp = v;
      grid::axpy(sign * eps, w, vp);
      Transport t2(ops, tc);
      t2.set_velocity(vp);
      t2.solve_state(rho0);
      return t2.final_state();
    };
    const auto plus = perturbed(+1);
    const auto minus = perturbed(-1);

    real_t max_err = 0, max_ref = 0;
    for (size_t i = 0; i < plus.size(); ++i) {
      const real_t fd = (plus[i] - minus[i]) / (2 * eps);
      max_err = std::max(max_err, std::abs(fd - rho_tilde1[i]));
      max_ref = std::max(max_ref, std::abs(fd));
    }
    max_err = comm.allreduce_max(max_err);
    max_ref = comm.allreduce_max(max_ref);
    EXPECT_LT(max_err, 0.06 * max_ref + 1e-6)
        << "err " << max_err << " ref " << max_ref;
  });
}

TEST(Transport, DisplacementForConstantVelocityIsMinusV) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    spectral::SpectralOps ops(decomp);
    const Vec3 c{0.5, -0.3, 0.2};
    VectorField v(decomp.local_real_size());
    for (int d = 0; d < 3; ++d)
      for (auto& val : v[d]) val = c[d];
    TransportConfig tc;
    tc.nt = 4;
    Transport transport(ops, tc);
    transport.set_velocity(v);
    VectorField u;
    transport.solve_displacement(u);
    // y(x, 1) = x - v  =>  u = -v, det(grad y) = 1.
    for (int d = 0; d < 3; ++d)
      for (real_t val : u[d]) ASSERT_NEAR(val, -c[d], 1e-10);

    ScalarField det;
    core::jacobian_determinant(ops, u, det);
    for (real_t d : det) ASSERT_NEAR(d, 1.0, 1e-9);
  });
}

TEST(Transport, DivergenceFreeVelocityPreservesVolume) {
  // Incompressible velocity => det(grad y) = 1 pointwise (paper section
  // II-A); discretization errors of O(dt^2 + h^4) remain.
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {24, 24, 24});
    spectral::SpectralOps ops(decomp);
    auto v = imaging::synthetic_velocity_divfree(decomp, 0.5);
    TransportConfig tc;
    tc.nt = 8;
    tc.incompressible = true;
    Transport transport(ops, tc);
    transport.set_velocity(v);
    auto analysis = core::analyze_deformation(ops, transport);
    EXPECT_NEAR(analysis.min_det, 1.0, 0.02);
    EXPECT_NEAR(analysis.max_det, 1.0, 0.02);
    EXPECT_NEAR(analysis.mean_det, 1.0, 0.005);
  });
}

TEST(Transport, CompressibleVelocityChangesVolumeButStaysDiffeomorphic) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {24, 24, 24});
    spectral::SpectralOps ops(decomp);
    auto v = imaging::synthetic_velocity(decomp, 0.5);  // div v != 0
    TransportConfig tc;
    tc.nt = 4;
    Transport transport(ops, tc);
    transport.set_velocity(v);
    auto analysis = core::analyze_deformation(ops, transport);
    EXPECT_GT(analysis.min_det, 0.0) << "map must stay diffeomorphic";
    EXPECT_GT(analysis.max_det - analysis.min_det, 0.05)
        << "compressible flow should change volume somewhere";
  });
}

TEST(Transport, AdjointOfConstantVelocityTranslatesBackward) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {32, 32, 32});
    spectral::SpectralOps ops(decomp);
    const Vec3 c{0.6, 0.0, -0.3};
    VectorField v(decomp.local_real_size());
    for (int d = 0; d < 3; ++d)
      for (auto& val : v[d]) val = c[d];
    TransportConfig tc;
    tc.nt = 4;
    Transport transport(ops, tc);
    transport.set_velocity(v);
    // With div v = 0 (constant), the adjoint is advection along -v:
    // lam(x, 0) = lam1(x + v).
    auto rho0 = fill(decomp, [](real_t x1, real_t, real_t) {
      return std::sin(x1);
    });
    transport.solve_state(rho0);
    auto lam1 = fill(decomp, [](real_t x1, real_t x2, real_t) {
      return std::cos(x1) * std::sin(x2);
    });
    VectorField b;
    transport.solve_adjoint(lam1, b, /*store_lambda=*/true);
    auto expected = fill(decomp, [&](real_t x1, real_t x2, real_t) {
      return std::cos(x1 + c[0]) * std::sin(x2 + c[1]);
    });
    const auto& lam0 = transport.adjoint(0);
    for (size_t i = 0; i < lam0.size(); ++i)
      ASSERT_NEAR(lam0[i], expected[i], 5e-4);
  });
}

TEST(Transport, PlanCacheRebuildsOnlyOnVelocityChange) {
  // The caching contract of the tentpole: set_velocity builds the plans
  // once; every solve (state, adjoint, incremental = PCG matvec transport)
  // reuses them; re-setting the SAME velocity is a no-op; a different
  // velocity invalidates and rebuilds.
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    spectral::SpectralOps ops(decomp);
    auto rho0 = imaging::synthetic_template(decomp);
    auto v = imaging::synthetic_velocity(decomp, 0.5);
    auto w = imaging::synthetic_velocity_divfree(decomp, 0.3);
    TransportConfig tc;
    tc.nt = 4;
    Transport transport(ops, tc);

    EXPECT_EQ(transport.plan_build_count(), 0);
    transport.set_velocity(v);
    EXPECT_EQ(transport.plan_build_count(), 1);

    transport.solve_state(rho0);
    VectorField b;
    transport.solve_adjoint(transport.final_state(), b);
    ScalarField rho_tilde1;
    for (int k = 0; k < 3; ++k) {  // PCG-style repeated matvec transports
      transport.solve_incremental_state(w, rho_tilde1);
      transport.solve_incremental_adjoint_gn(rho_tilde1, b);
    }
    VectorField u1;
    transport.solve_displacement(u1);
    EXPECT_EQ(transport.plan_build_count(), 1)
        << "solves must reuse the cached plans";

    transport.set_velocity(v);  // identical velocity: cache hit
    EXPECT_EQ(transport.plan_build_count(), 1);
    transport.solve_state(rho0);  // still valid after a cache hit
    EXPECT_EQ(transport.plan_build_count(), 1);

    transport.set_velocity(w);  // velocity changed: plans invalidated
    EXPECT_EQ(transport.plan_build_count(), 2);
  });
}

TEST(Transport, ExchangeCountsPerSolveAreFixed) {
  // One alltoallv per semi-Lagrangian step, batch-invariant: solve_state is
  // nt exchanges; the incremental state batches its two interpolations per
  // step into one exchange; the GN incremental adjoint is nt exchanges.
  for (int p : {1, 2, 4}) {
    mpisim::run_spmd(p, [&](mpisim::Communicator& comm) {
      PencilDecomp decomp(comm, {16, 16, 16});
      spectral::SpectralOps ops(decomp);
      auto rho0 = imaging::synthetic_template(decomp);
      auto v = imaging::synthetic_velocity(decomp, 0.5);
      auto w = imaging::synthetic_velocity_divfree(decomp, 0.3);
      TransportConfig tc;
      tc.nt = 4;
      Transport transport(ops, tc);
      transport.set_velocity(v);

      auto interp_exchanges = [&] {
        return comm.timings().exchanges(TimeKind::kInterpComm);
      };
      comm.timings().clear();
      transport.solve_state(rho0);
      EXPECT_EQ(interp_exchanges(), 4u) << "p=" << p;

      comm.timings().clear();
      ScalarField rho_tilde1;
      transport.solve_incremental_state(w, rho_tilde1);
      EXPECT_EQ(interp_exchanges(), 4u) << "p=" << p;

      comm.timings().clear();
      VectorField b;
      transport.solve_incremental_adjoint_gn(rho_tilde1, b);
      EXPECT_EQ(interp_exchanges(), 4u) << "p=" << p;

      // Displacement: one batched exchange per step after the first.
      comm.timings().clear();
      VectorField u1;
      transport.solve_displacement(u1);
      EXPECT_EQ(interp_exchanges(), 3u) << "p=" << p;
    });
  }
}

TEST(Transport, RepeatedSolvesAreBitwiseDeterministic) {
  // Same velocity, same input => bit-identical transport results across
  // repeated solves on the same cached plan (buffer reuse must not leak).
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    spectral::SpectralOps ops(decomp);
    auto rho0 = imaging::synthetic_template(decomp);
    auto v = imaging::synthetic_velocity(decomp, 0.6);
    TransportConfig tc;
    tc.nt = 4;
    Transport transport(ops, tc);
    transport.set_velocity(v);
    transport.solve_state(rho0);
    ScalarField first = transport.final_state();
    transport.set_velocity(v);  // cache hit
    transport.solve_state(rho0);
    const ScalarField& second = transport.final_state();
    for (size_t i = 0; i < first.size(); ++i)
      ASSERT_EQ(first[i], second[i]) << i;
  });
}

TEST(Transport, RejectsUseBeforeSetVelocity) {
  mpisim::run_spmd(1, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {8, 8, 8});
    spectral::SpectralOps ops(decomp);
    TransportConfig tc;
    Transport transport(ops, tc);
    ScalarField rho(decomp.local_real_size(), 0);
    EXPECT_THROW(transport.solve_state(rho), std::logic_error);
    VectorField b;
    EXPECT_THROW(transport.solve_adjoint(rho, b), std::logic_error);
  });
}

TEST(Transport, RejectsInvalidNt) {
  mpisim::run_spmd(1, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {8, 8, 8});
    spectral::SpectralOps ops(decomp);
    TransportConfig tc;
    tc.nt = 0;
    EXPECT_THROW(Transport(ops, tc), std::invalid_argument);
  });
}

}  // namespace
}  // namespace diffreg::semilag
