// Core solver tests: regularization functional values, PCG on a known SPD
// system, finite-difference gradient check of the reduced gradient, Hessian
// symmetry/positive-definiteness, Newton convergence on the synthetic
// problem, the incompressibility invariants, beta continuation, and the
// rigid baseline.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <string>

#include "core/diffreg.hpp"
#include "imaging/synthetic.hpp"

namespace diffreg::core {
namespace {

using grid::PencilDecomp;
using grid::ScalarField;
using grid::VectorField;

template <typename F>
ScalarField fill(PencilDecomp& d, F&& f) {
  const Int3 dims = d.dims();
  const Int3 ld = d.local_real_dims();
  const real_t h1 = kTwoPi / dims[0], h2 = kTwoPi / dims[1],
               h3 = kTwoPi / dims[2];
  ScalarField out(d.local_real_size());
  index_t idx = 0;
  for (index_t a = 0; a < ld[0]; ++a)
    for (index_t b = 0; b < ld[1]; ++b)
      for (index_t c = 0; c < ld[2]; ++c, ++idx)
        out[idx] = f((d.range1().begin + a) * h1, (d.range2().begin + b) * h2,
                     c * h3);
  return out;
}

TEST(Regularization, H1SeminormMatchesAnalyticValue) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    spectral::SpectralOps ops(decomp);
    // v = (sin x1, 0, 0): ||grad v||^2 = integral cos^2 x1 = (2 pi)^3 / 2.
    VectorField v(decomp.local_real_size());
    v[0] = fill(decomp, [](real_t x1, real_t, real_t) { return std::sin(x1); });
    const real_t beta = 0.37;
    Regularization reg(ops, RegType::kH1Seminorm, beta);
    const real_t expected = 0.5 * beta * kTwoPi * kTwoPi * kTwoPi / 2;
    EXPECT_NEAR(reg.evaluate(v), expected, 1e-9 * expected);
  });
}

TEST(Regularization, H2SeminormMatchesAnalyticValue) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    spectral::SpectralOps ops(decomp);
    // v = (sin(2 x2), 0, 0): lap v = -4 v, <v, lap^2 v> = 16 ||v||^2
    //                        = 16 (2 pi)^3 / 2.
    VectorField v(decomp.local_real_size());
    v[0] = fill(decomp, [](real_t, real_t x2, real_t) {
      return std::sin(2 * x2);
    });
    const real_t beta = 0.1;
    Regularization reg(ops, RegType::kH2Seminorm, beta);
    const real_t expected = 0.5 * beta * 16 * kTwoPi * kTwoPi * kTwoPi / 2;
    EXPECT_NEAR(reg.evaluate(v), expected, 1e-9 * expected);
  });
}

TEST(Regularization, InvertIsInverseOfApplyOnZeroMeanFields) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {12, 12, 12});
    spectral::SpectralOps ops(decomp);
    VectorField v(decomp.local_real_size());
    v[0] = fill(decomp, [](real_t x1, real_t, real_t) { return std::sin(x1); });
    v[1] = fill(decomp, [](real_t, real_t x2, real_t x3) {
      return std::cos(x2) * std::sin(x3);
    });
    v[2] = fill(decomp,
                [](real_t x1, real_t, real_t x3) { return std::sin(x1 + x3); });
    for (RegType type : {RegType::kH1Seminorm, RegType::kH2Seminorm}) {
      Regularization reg(ops, type, 3.5);
      VectorField av(v.local_size()), back(v.local_size());
      reg.apply(v, av);
      reg.invert(av, back);
      for (int d = 0; d < 3; ++d)
        for (size_t i = 0; i < back[d].size(); ++i)
          ASSERT_NEAR(back[d][i], v[d][i], 1e-9);
    }
  });
}

TEST(Pcg, SolvesSpdSystemAndExactPreconditionerConvergesInOneIteration) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {12, 12, 12});
    spectral::SpectralOps ops(decomp);
    // SPD operator A = 2 I + (-lap); exact inverse available spectrally? Not
    // directly — use A = beta (-lap)^2 with the seminorm trick on zero-mean
    // fields, where Regularization::invert is the exact inverse.
    Regularization reg(ops, RegType::kH2Seminorm, 2.0);
    VectorField x_true(decomp.local_real_size());
    x_true[0] = fill(decomp, [](real_t x1, real_t, real_t) {
      return std::sin(x1);
    });
    x_true[1] = fill(decomp, [](real_t, real_t x2, real_t) {
      return std::sin(2 * x2);
    });
    x_true[2] = fill(decomp, [](real_t, real_t, real_t x3) {
      return std::cos(x3);
    });
    VectorField b(x_true.local_size());
    reg.apply(x_true, b);

    // Identity preconditioner: still converges, more iterations.
    VectorField x(x_true.local_size());
    auto apply_a = [&](const VectorField& in, VectorField& out) {
      reg.apply(in, out);
    };
    auto apply_id = [&](const VectorField& in, VectorField& out) {
      out = in;
    };
    PcgResult plain = pcg_solve(decomp, apply_a, apply_id, b, x, 1e-10, 200);
    EXPECT_TRUE(plain.converged);
    for (int d = 0; d < 3; ++d)
      for (size_t i = 0; i < x[d].size(); ++i)
        ASSERT_NEAR(x[d][i], x_true[d][i], 1e-6);

    // Exact preconditioner: one iteration.
    auto apply_m = [&](const VectorField& in, VectorField& out) {
      reg.invert(in, out);
    };
    PcgResult precond = pcg_solve(decomp, apply_a, apply_m, b, x, 1e-10, 200);
    EXPECT_TRUE(precond.converged);
    EXPECT_LE(precond.iterations, 2);
  });
}

TEST(Pcg, MixedPrecisionSolvesTheSameSpdSystem) {
  // pcg_solve_mixed must reach the fp64 solution to fp32 storage accuracy
  // on the SPD system of the plain-PCG test (A = beta (-lap)^2 with exact
  // spectral inverse as preconditioner -> a couple of iterations).
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {12, 12, 12});
    spectral::SpectralOps ops(decomp);
    Regularization reg(ops, RegType::kH2Seminorm, 2.0);
    VectorField x_true(decomp.local_real_size());
    x_true[0] = fill(decomp, [](real_t x1, real_t, real_t) {
      return std::sin(x1);
    });
    x_true[1] = fill(decomp, [](real_t, real_t x2, real_t) {
      return std::sin(2 * x2);
    });
    x_true[2] = fill(decomp, [](real_t, real_t, real_t x3) {
      return std::cos(x3);
    });
    VectorField b(x_true.local_size());
    reg.apply(x_true, b);

    auto apply_a = [&](const VectorField& in, VectorField& out) {
      reg.apply(in, out);
    };
    auto apply_m = [&](const VectorField& in, VectorField& out) {
      reg.invert(in, out);
    };
    VectorField x;
    PcgWorkspace32 ws;
    PcgResult res =
        pcg_solve_mixed(decomp, apply_a, apply_m, b, x, 1e-6, 50, ws);
    EXPECT_TRUE(res.converged);
    EXPECT_LE(res.iterations, 3);
    for (int d = 0; d < 3; ++d)
      for (size_t i = 0; i < x[d].size(); ++i)
        ASSERT_NEAR(x[d][i], x_true[d][i], 1e-5) << "d=" << d << " i=" << i;
  });
}

TEST(MixedPrecision, Fp32WireDropsGnMatvecCommBytesAtLeast1_8x) {
  // Acceptance criterion of the mixed-precision pipeline: with the fp32
  // wire enabled on every exchange path, the comm bytes of one Gauss-Newton
  // Hessian matvec (FFT transposes + ghost halos + interpolation value
  // scatter) drop by >= 1.8x against the fp64 wire, on the identical
  // message/exchange schedule. Asserted per rank via the Timings counters.
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {32, 32, 32});
    auto run_matvec = [&](WirePrecision wire, Timings& delta) {
      spectral::SpectralOps ops(decomp, wire);
      auto rho_t = imaging::synthetic_template(decomp);
      auto v_star = imaging::synthetic_velocity(decomp, 0.5);
      auto rho_r = imaging::make_reference(ops, rho_t, v_star);

      semilag::TransportConfig tc;
      tc.wire = wire;
      semilag::Transport transport(ops, tc);
      Regularization reg(ops, RegType::kH2Seminorm, 1e-2);
      OptimalitySystem system(ops, transport, reg, rho_t, rho_r,
                              /*incompressible=*/false,
                              /*gauss_newton=*/true);
      VectorField v = imaging::synthetic_velocity(decomp, 0.25);
      system.evaluate(v);
      VectorField g;
      system.gradient(g);
      VectorField vt = imaging::synthetic_velocity_divfree(decomp, 0.3);
      VectorField out;
      system.hessian_matvec(vt, out);  // warm the plans/buffers
      const Timings before = comm.timings();
      system.hessian_matvec(vt, out);
      delta = timings_delta(before, comm.timings());
    };

    Timings d64, d32;
    run_matvec(WirePrecision::kF64, d64);
    run_matvec(WirePrecision::kF32, d32);

    const auto comm_bytes = [](const Timings& t) {
      return t.bytes(TimeKind::kFftComm) + t.bytes(TimeKind::kInterpComm);
    };
    ASSERT_GT(comm_bytes(d32), 0u);
    EXPECT_GE(static_cast<double>(comm_bytes(d64)),
              1.8 * static_cast<double>(comm_bytes(d32)))
        << "fp64 " << comm_bytes(d64) << " B vs fp32 " << comm_bytes(d32)
        << " B per matvec";
    // Identical schedule: the format changes, the plan does not.
    EXPECT_EQ(d64.messages(TimeKind::kFftComm),
              d32.messages(TimeKind::kFftComm));
    EXPECT_EQ(d64.messages(TimeKind::kInterpComm),
              d32.messages(TimeKind::kInterpComm));
    EXPECT_EQ(d64.exchanges(TimeKind::kFftComm),
              d32.exchanges(TimeKind::kFftComm));
    EXPECT_EQ(d64.exchanges(TimeKind::kInterpComm),
              d32.exchanges(TimeKind::kInterpComm));
    EXPECT_GT(d32.saved_bytes(TimeKind::kFftComm) +
                  d32.saved_bytes(TimeKind::kInterpComm),
              0u);
    EXPECT_EQ(d64.saved_bytes(TimeKind::kFftComm) +
                  d64.saved_bytes(TimeKind::kInterpComm),
              0u);
  });
}

TEST(MixedPrecision, MixedSolveReachesTheSameGtolWithinOneNewtonIteration) {
  // The 32^3 synthetic accuracy contract: --precision mixed must converge
  // to the same outer gtol as the all-fp64 solver, spending at most one
  // extra Newton iteration (iterative refinement: the outer gradient is
  // fp64 in both cases, only the wire format and the inner Krylov storage
  // differ).
  NewtonReport double_report, mixed_report;
  real_t double_res = 1, mixed_res = 1;
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {32, 32, 32});
    spectral::SpectralOps ops(decomp);
    auto rho_t = imaging::synthetic_template(decomp);
    auto v_star = imaging::synthetic_velocity(decomp, 0.5);
    auto rho_r = imaging::make_reference(ops, rho_t, v_star);

    RegistrationOptions opt;
    opt.beta = 1e-2;
    opt.gtol = 1e-2;
    opt.max_newton_iters = 10;

    RegistrationSolver solver_double(decomp, opt);
    auto res_double = solver_double.run(rho_t, rho_r);

    opt.precision = Precision::kMixed;
    RegistrationSolver solver_mixed(decomp, opt);
    auto res_mixed = solver_mixed.run(rho_t, rho_r);

    if (comm.is_root()) {
      double_report = res_double.newton;
      mixed_report = res_mixed.newton;
      double_res = res_double.rel_residual;
      mixed_res = res_mixed.rel_residual;
    }
  });
  EXPECT_TRUE(double_report.converged);
  EXPECT_TRUE(mixed_report.converged);
  EXPECT_LE(mixed_report.iterations, double_report.iterations + 1)
      << "mixed precision cost more than one extra Newton iteration";
  // Same registration quality (the fit, not just the stopping test).
  EXPECT_NEAR(mixed_res, double_res, 0.05);
}

TEST(Pcg, ZeroRhsReturnsZero) {
  mpisim::run_spmd(1, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {8, 8, 8});
    spectral::SpectralOps ops(decomp);
    Regularization reg(ops, RegType::kH1Seminorm, 1.0);
    VectorField b(decomp.local_real_size()), x;
    auto apply_a = [&](const VectorField& in, VectorField& out) {
      reg.apply(in, out);
    };
    auto apply_id = [&](const VectorField& in, VectorField& out) { out = in; };
    PcgResult r = pcg_solve(decomp, apply_a, apply_id, b, x, 1e-8, 10);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(grid::norm_inf(decomp, x), 0.0);
  });
}

// --------------------------------------------------------------------------
// Optimality system.

struct SystemParts {
  std::unique_ptr<spectral::SpectralOps> ops;
  std::unique_ptr<semilag::Transport> transport;
  std::unique_ptr<Regularization> reg;
  std::unique_ptr<OptimalitySystem> system;
};

SystemParts make_system(PencilDecomp& decomp, bool incompressible,
                        bool gauss_newton, real_t beta) {
  SystemParts parts;
  parts.ops = std::make_unique<spectral::SpectralOps>(decomp);
  semilag::TransportConfig tc;
  tc.nt = 4;
  tc.incompressible = incompressible;
  parts.transport = std::make_unique<semilag::Transport>(*parts.ops, tc);
  parts.reg = std::make_unique<Regularization>(*parts.ops,
                                               RegType::kH2Seminorm, beta);
  auto rho_t = imaging::synthetic_template(decomp);
  auto v_star = incompressible
                    ? imaging::synthetic_velocity_divfree(decomp, 0.4)
                    : imaging::synthetic_velocity(decomp, 0.4);
  auto rho_r = imaging::make_reference(*parts.ops, rho_t, v_star);
  parts.system = std::make_unique<OptimalitySystem>(
      *parts.ops, *parts.transport, *parts.reg, rho_t, rho_r, incompressible,
      gauss_newton);
  return parts;
}

TEST(OptimalitySystem, GradientPassesFiniteDifferenceCheck) {
  // <g(v), w> must match (J(v + eps w) - J(v - eps w)) / (2 eps) up to the
  // optimize-then-discretize inconsistency (a few percent on a 16^3 grid).
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    auto parts = make_system(decomp, false, true, 1e-2);
    auto& system = *parts.system;

    VectorField v = imaging::synthetic_velocity(decomp, 0.2);
    VectorField w = imaging::synthetic_velocity_divfree(decomp, 0.3);

    system.evaluate(v);
    VectorField g(decomp.local_real_size());
    system.gradient(g);
    const real_t gw = grid::dot(decomp, g, w);

    const real_t eps = 1e-4;
    VectorField vp = v, vm = v;
    grid::axpy(eps, w, vp);
    grid::axpy(-eps, w, vm);
    const real_t jp = system.evaluate(vp);
    const real_t jm = system.evaluate(vm);
    const real_t fd = (jp - jm) / (2 * eps);

    EXPECT_NEAR(gw, fd, 0.05 * std::abs(fd) + 1e-6)
        << "analytic " << gw << " fd " << fd;
  });
}

TEST(OptimalitySystem, GradientVanishesAtGroundTruthOnPerfectData) {
  // If rho_R == rho_T the optimum is v = 0 and the gradient there vanishes.
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {12, 12, 12});
    spectral::SpectralOps ops(decomp);
    semilag::TransportConfig tc;
    semilag::Transport transport(ops, tc);
    Regularization reg(ops, RegType::kH2Seminorm, 1e-2);
    auto rho = imaging::synthetic_template(decomp);
    OptimalitySystem system(ops, transport, reg, rho, rho, false, true);
    VectorField v(decomp.local_real_size());
    system.evaluate(v);
    VectorField g(decomp.local_real_size());
    system.gradient(g);
    EXPECT_LT(grid::norm_l2(decomp, g), 1e-12);
  });
}

TEST(OptimalitySystem, GaussNewtonHessianIsSymmetricAndPositive) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {12, 12, 12});
    auto parts = make_system(decomp, false, true, 1e-2);
    auto& system = *parts.system;
    VectorField v = imaging::synthetic_velocity(decomp, 0.2);
    system.evaluate(v);
    VectorField g(decomp.local_real_size());
    system.gradient(g);

    VectorField u = imaging::synthetic_velocity_divfree(decomp, 0.5);
    VectorField w(decomp.local_real_size());
    w[0] = fill(decomp, [](real_t x1, real_t x2, real_t) {
      return std::sin(x1) * std::sin(x2);
    });
    w[1] = fill(decomp, [](real_t, real_t x2, real_t) { return std::cos(x2); });
    w[2] = fill(decomp, [](real_t x1, real_t, real_t x3) {
      return std::cos(x1) * std::sin(x3);
    });

    VectorField hu(decomp.local_real_size()), hw(decomp.local_real_size());
    system.hessian_matvec(u, hu);
    system.hessian_matvec(w, hw);
    const real_t uhw = grid::dot(decomp, u, hw);
    const real_t whu = grid::dot(decomp, w, hu);
    const real_t scale = std::max(std::abs(uhw), std::abs(whu));
    EXPECT_NEAR(uhw, whu, 0.03 * scale + 1e-8);

    // Positive definiteness along both directions.
    EXPECT_GT(grid::dot(decomp, u, hu), 0.0);
    EXPECT_GT(grid::dot(decomp, w, hw), 0.0);
  });
}

TEST(OptimalitySystem, MatvecCountTracksCalls) {
  mpisim::run_spmd(1, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {8, 8, 8});
    auto parts = make_system(decomp, false, true, 1e-2);
    auto& system = *parts.system;
    VectorField v(decomp.local_real_size());
    system.evaluate(v);
    system.gradient(v);  // reuse v as scratch for g
    VectorField u = imaging::synthetic_velocity(decomp, 0.1), out;
    out = u;
    EXPECT_EQ(system.matvec_count(), 0);
    system.hessian_matvec(u, out);
    system.hessian_matvec(u, out);
    EXPECT_EQ(system.matvec_count(), 2);
    system.reset_matvec_count();
    EXPECT_EQ(system.matvec_count(), 0);
  });
}

TEST(OptimalitySystem, PcgMatvecsReuseOneCachedInterpolationPlan) {
  // The acceptance criterion of the plan-caching tentpole: one evaluate =
  // one plan build; gradient and every Hessian matvec of the Newton
  // iteration reuse it.
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    auto parts = make_system(decomp, false, true, 1e-2);
    auto& system = *parts.system;
    auto& transport = *parts.transport;

    VectorField v = imaging::synthetic_velocity(decomp, 0.2);
    system.evaluate(v);
    EXPECT_EQ(transport.plan_build_count(), 1);
    VectorField g(decomp.local_real_size());
    system.gradient(g);
    VectorField u = imaging::synthetic_velocity_divfree(decomp, 0.1);
    VectorField out = u;
    for (int k = 0; k < 5; ++k) system.hessian_matvec(u, out);
    EXPECT_EQ(transport.plan_build_count(), 1)
        << "PCG matvecs must reuse the evaluate()'s cached plan";

    system.evaluate(v);  // line-search restore of the same iterate
    EXPECT_EQ(transport.plan_build_count(), 1);
    grid::axpy(real_t(0.5), u, v);
    system.evaluate(v);  // genuinely new iterate
    EXPECT_EQ(transport.plan_build_count(), 2);
  });
}

TEST(Newton, ReportsPlanBuildsWellBelowMatvecs) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    spectral::SpectralOps ops(decomp);
    auto rho_t = imaging::synthetic_template(decomp);
    auto v_star = imaging::synthetic_velocity(decomp, 0.5);
    auto rho_r = imaging::make_reference(ops, rho_t, v_star);

    RegistrationOptions opt;
    opt.beta = 1e-2;
    opt.gtol = 1e-2;
    opt.max_newton_iters = 6;
    RegistrationSolver solver(decomp, opt);
    auto result = solver.run(rho_t, rho_r);

    EXPECT_GT(result.newton.plan_builds, 0);
    // Builds are one per objective evaluation of a new trial velocity —
    // bounded by line-search capacity, NOT by the matvec count. A
    // build-per-matvec regression would blow well past this bound. (The
    // cache-hit contract itself is asserted directly in
    // PcgMatvecsReuseOneCachedInterpolationPlan.)
    EXPECT_LE(result.newton.plan_builds,
              opt.max_line_search * result.newton.iterations + 2);
    EXPECT_GT(result.newton.total_matvecs, result.newton.plan_builds);
  });
}

// --------------------------------------------------------------------------
// Newton solver end to end.

class NewtonRanks : public ::testing::TestWithParam<int> {};

TEST_P(NewtonRanks, ConvergesOnSyntheticProblem) {
  const int p = GetParam();
  mpisim::run_spmd(p, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    spectral::SpectralOps ops(decomp);
    auto rho_t = imaging::synthetic_template(decomp);
    auto v_star = imaging::synthetic_velocity(decomp, 0.5);
    auto rho_r = imaging::make_reference(ops, rho_t, v_star);

    RegistrationOptions opt;
    opt.beta = 1e-2;
    opt.gtol = 1e-2;
    opt.max_newton_iters = 10;
    RegistrationSolver solver(decomp, opt);
    auto result = solver.run(rho_t, rho_r);

    EXPECT_TRUE(result.newton.converged);
    EXPECT_LT(result.rel_residual, 0.6);
    EXPECT_GT(result.min_det, 0.0);
    EXPECT_GT(result.newton.total_matvecs, 0);
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, NewtonRanks, ::testing::Values(1, 2, 4));

TEST(Newton, DecompositionInvarianceOfTheSolve) {
  // The full solver must produce the same objective decrease regardless of
  // the process grid (same arithmetic, different partitioning).
  auto run_with = [&](int p) {
    real_t rel = 0;
    mpisim::run_spmd(p, [&](mpisim::Communicator& comm) {
      PencilDecomp decomp(comm, {16, 16, 16});
      spectral::SpectralOps ops(decomp);
      auto rho_t = imaging::synthetic_template(decomp);
      auto v_star = imaging::synthetic_velocity(decomp, 0.5);
      auto rho_r = imaging::make_reference(ops, rho_t, v_star);
      RegistrationOptions opt;
      opt.beta = 1e-2;
      opt.max_newton_iters = 3;
      RegistrationSolver solver(decomp, opt);
      auto result = solver.run(rho_t, rho_r);
      if (comm.is_root()) rel = result.rel_residual;
    });
    return rel;
  };
  const real_t serial = run_with(1);
  const real_t parallel = run_with(4);
  EXPECT_NEAR(serial, parallel, 1e-8);
}

TEST(Newton, IncompressibleSolveKeepsInvariants) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    spectral::SpectralOps ops(decomp);
    auto rho_t = imaging::synthetic_template(decomp);
    auto v_star = imaging::synthetic_velocity_divfree(decomp, 0.5);
    auto rho_r = imaging::make_reference(ops, rho_t, v_star);

    RegistrationOptions opt;
    opt.incompressible = true;
    opt.beta = 1e-2;
    opt.max_newton_iters = 6;
    RegistrationSolver solver(decomp, opt);
    auto result = solver.run(rho_t, rho_r);

    grid::ScalarField div_v;
    ops.divergence(result.velocity, div_v);
    EXPECT_LT(grid::norm_inf(decomp, div_v), 1e-8);
    EXPECT_NEAR(result.min_det, 1.0, 0.05);
    EXPECT_NEAR(result.max_det, 1.0, 0.05);
    EXPECT_LT(result.rel_residual, 0.8);
  });
}

TEST(Newton, FullNewtonAlsoConverges) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {12, 12, 12});
    spectral::SpectralOps ops(decomp);
    auto rho_t = imaging::synthetic_template(decomp);
    auto v_star = imaging::synthetic_velocity(decomp, 0.4);
    auto rho_r = imaging::make_reference(ops, rho_t, v_star);
    RegistrationOptions opt;
    opt.gauss_newton = false;  // full Newton terms
    opt.beta = 1e-2;
    opt.max_newton_iters = 8;
    RegistrationSolver solver(decomp, opt);
    auto result = solver.run(rho_t, rho_r);
    EXPECT_LT(result.rel_residual, 0.8);
    EXPECT_GT(result.min_det, 0.0);
  });
}

TEST(Newton, SmallerBetaGivesBetterMatchAndMoreWork) {
  // The essence of the paper's Table V: reducing beta increases the number
  // of Hessian matvecs but improves the data fit.
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    spectral::SpectralOps ops(decomp);
    auto rho_t = imaging::synthetic_template(decomp);
    auto v_star = imaging::synthetic_velocity(decomp, 0.5);
    auto rho_r = imaging::make_reference(ops, rho_t, v_star);

    auto solve_with_beta = [&](real_t beta) {
      RegistrationOptions opt;
      opt.beta = beta;
      opt.max_newton_iters = 4;
      opt.gtol = 1e-3;
      RegistrationSolver solver(decomp, opt);
      return solver.run(rho_t, rho_r);
    };
    auto strong = solve_with_beta(1e-1);
    auto weak = solve_with_beta(1e-4);
    EXPECT_LT(weak.rel_residual, strong.rel_residual);
    EXPECT_GE(weak.newton.total_matvecs, strong.newton.total_matvecs);
  });
}

TEST(Continuation, ReducesBetaAndImprovesFit) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    spectral::SpectralOps ops(decomp);
    auto rho_t = imaging::synthetic_template(decomp);
    auto v_star = imaging::synthetic_velocity(decomp, 0.5);
    auto rho_r = imaging::make_reference(ops, rho_t, v_star);

    RegistrationOptions opt;
    opt.max_newton_iters = 4;
    RegistrationSolver solver(decomp, opt);
    ContinuationOptions copt;
    copt.beta_start = 1e-1;
    copt.beta_target = 1e-3;
    auto cont = run_beta_continuation(solver, rho_t, rho_r, copt);

    ASSERT_GE(cont.stages, 2);
    EXPECT_LT(cont.stage_residuals.back(), cont.stage_residuals.front());
    EXPECT_LE(cont.final_beta, copt.beta_start);
    EXPECT_GT(cont.best.min_det, copt.min_det_bound);
    // Betas decrease monotonically across stages.
    for (int s = 1; s < cont.stages; ++s)
      EXPECT_LT(cont.stage_betas[s], cont.stage_betas[s - 1]);
    EXPECT_TRUE(cont.admissible);
  });
}

TEST(Continuation, InadmissibleFirstStageStillReturnsTheStageResult) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    spectral::SpectralOps ops(decomp);
    auto rho_t = imaging::synthetic_template(decomp);
    auto v_star = imaging::synthetic_velocity(decomp, 0.5);
    auto rho_r = imaging::make_reference(ops, rho_t, v_star);

    RegistrationOptions opt;
    opt.max_newton_iters = 3;
    RegistrationSolver solver(decomp, opt);
    ContinuationOptions copt;
    copt.beta_start = 1e-1;
    copt.beta_target = 1e-3;
    // An impossible det bound: even the first stage is inadmissible. The
    // caller must still get that stage's solve — not a default-constructed
    // result with an empty velocity and final_beta = 0.
    copt.min_det_bound = 10.0;
    auto cont = run_beta_continuation(solver, rho_t, rho_r, copt);

    EXPECT_EQ(cont.stages, 1);
    EXPECT_FALSE(cont.admissible);
    EXPECT_EQ(cont.final_beta, copt.beta_start);
    EXPECT_EQ(cont.best.velocity.local_size(), decomp.local_real_size());
    EXPECT_GT(cont.best.newton.total_matvecs, 0);
    EXPECT_GT(cont.gradient_reference, 0);
  });
}

// The continuation driver passes per-stage parameters (beta,
// gradient_reference) through each stage's SolveRequest and never touches
// the solver's own options, so the caller's configuration survives every
// exit path by construction — this pins that contract.
TEST(Continuation, RestoresTheSolverOptionsOnEveryExitPath) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    spectral::SpectralOps ops(decomp);
    auto rho_t = imaging::synthetic_template(decomp);
    auto v_star = imaging::synthetic_velocity(decomp, 0.5);
    auto rho_r = imaging::make_reference(ops, rho_t, v_star);

    RegistrationOptions opt;
    opt.max_newton_iters = 3;
    opt.beta = 0.5;  // sentinel values the driver must not clobber
    opt.gradient_reference = 0;
    RegistrationSolver solver(decomp, opt);
    ContinuationOptions copt;
    copt.beta_start = 1e-1;
    copt.beta_target = 1e-2;

    (void)run_beta_continuation(solver, rho_t, rho_r, copt);
    EXPECT_EQ(solver.options().beta, 0.5);
    EXPECT_EQ(solver.options().gradient_reference, 0.0);

    // Early-exit path (inadmissible first stage) restores too.
    copt.min_det_bound = 10.0;
    (void)run_beta_continuation(solver, rho_t, rho_r, copt);
    EXPECT_EQ(solver.options().beta, 0.5);
    EXPECT_EQ(solver.options().gradient_reference, 0.0);
  });
}

// --------------------------------------------------------------------------
// Deformation statistics.

TEST(Deformation, EmptyRankDoesNotBiasTheDeterminantExtrema) {
  // 3 parts along an axis with 2 slabs: rank 2 owns zero points. The
  // min/max reduction must be seeded with the +-inf identities — a sentinel
  // seed (the old code used 1.0) corrupts the global extrema whenever every
  // true determinant lies on one side of it.
  mpisim::run_spmd(3, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {2, 8, 8}, /*p1=*/3, /*p2=*/1);
    ScalarField det(decomp.local_real_size());
    // All true determinants > 1 (an everywhere-expanding map).
    for (size_t i = 0; i < det.size(); ++i)
      det[i] = real_t(1.5) + real_t(0.01) * static_cast<real_t>(comm.rank());
    DeformationAnalysis stats;
    reduce_determinant_stats(decomp, det, stats);
    EXPECT_GE(stats.min_det, 1.5);
    EXPECT_LE(stats.max_det, 1.51);
    EXPECT_GT(stats.mean_det, 1.0);

    // And the mirrored case: all determinants < 1.
    for (auto& d : det) d = real_t(0.25);
    reduce_determinant_stats(decomp, det, stats);
    EXPECT_EQ(stats.min_det, 0.25);
    EXPECT_EQ(stats.max_det, 0.25);
  });
}

// --------------------------------------------------------------------------
// PCG workspace and the two-level preconditioner.

TEST(Pcg, WorkspaceOverloadIsBitwiseIdenticalToTheTransientOne) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {12, 12, 12});
    spectral::SpectralOps ops(decomp);
    Regularization reg(ops, RegType::kH2Seminorm, 2.0);
    VectorField x_true(decomp.local_real_size());
    x_true[0] = fill(decomp, [](real_t x1, real_t, real_t) {
      return std::sin(x1);
    });
    x_true[1] = fill(decomp, [](real_t, real_t x2, real_t) {
      return std::cos(2 * x2);
    });
    VectorField b(x_true.local_size());
    reg.apply(x_true, b);

    auto apply_a = [&](const VectorField& in, VectorField& out) {
      reg.apply(in, out);
    };
    auto apply_id = [&](const VectorField& in, VectorField& out) {
      out = in;
    };
    VectorField x1v, x2v;
    PcgResult plain = pcg_solve(decomp, apply_a, apply_id, b, x1v, 1e-8, 50);
    PcgWorkspace ws;
    PcgResult with_ws =
        pcg_solve(decomp, apply_a, apply_id, b, x2v, 1e-8, 50, ws);
    // A second solve through the SAME workspace must also be identical
    // (stale workspace contents must not leak into the iteration).
    VectorField x3v;
    PcgResult reused =
        pcg_solve(decomp, apply_a, apply_id, b, x3v, 1e-8, 50, ws);

    EXPECT_EQ(plain.iterations, with_ws.iterations);
    EXPECT_EQ(plain.iterations, reused.iterations);
    for (int d = 0; d < 3; ++d)
      for (size_t i = 0; i < x1v[d].size(); ++i) {
        ASSERT_EQ(x1v[d][i], x2v[d][i]);
        ASSERT_EQ(x1v[d][i], x3v[d][i]);
      }
  });
}

TEST(TwoLevelPreconditioner, ReducesKrylovIterationsAtSmallBeta) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {24, 24, 24});
    spectral::SpectralOps ops(decomp);
    auto rho_t = imaging::synthetic_template(decomp);
    auto v_star = imaging::synthetic_velocity(decomp, 0.5);
    auto rho_r = imaging::make_reference(ops, rho_t, v_star);

    // Small beta: the regime where the spectral smoother alone degrades
    // (the data term dominates the low-frequency end of the Hessian).
    RegistrationOptions opt;
    opt.beta = 1e-3;
    opt.gtol = 1e-2;
    opt.max_newton_iters = 8;

    auto krylov_total = [](const RegistrationResult& r) {
      int total = 0;
      for (const auto& e : r.newton.log) total += e.krylov_iterations;
      return total;
    };

    RegistrationSolver smooth_solver(decomp, opt);
    auto smooth = smooth_solver.run(rho_t, rho_r);

    opt.two_level_precond = true;
    opt.precond_coarsest_dim = 8;
    RegistrationSolver two_level_solver(decomp, opt);
    auto two_level = two_level_solver.run(rho_t, rho_r);

    EXPECT_LT(krylov_total(two_level), krylov_total(smooth));
    EXPECT_GT(two_level.coarse_matvecs, 0);
    // Same solution quality: both converge to the same problem's optimum.
    EXPECT_TRUE(two_level.newton.converged);
    EXPECT_NEAR(two_level.rel_residual, smooth.rel_residual, 0.05);
    EXPECT_GT(two_level.min_det, 0.0);
  });
}

TEST(TwoLevelPreconditioner, IncompressibleSolveStaysDivergenceFree) {
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    spectral::SpectralOps ops(decomp);
    auto rho_t = imaging::synthetic_template(decomp);
    auto v_star = imaging::synthetic_velocity_divfree(decomp, 0.4);
    auto rho_r = imaging::make_reference(ops, rho_t, v_star);

    RegistrationOptions opt;
    opt.beta = 1e-2;
    opt.gtol = 5e-2;
    opt.max_newton_iters = 5;
    opt.incompressible = true;
    opt.two_level_precond = true;
    RegistrationSolver solver(decomp, opt);
    auto result = solver.run(rho_t, rho_r);

    ScalarField div;
    ops.divergence(result.velocity, div);
    EXPECT_LT(grid::norm_inf(decomp, div), 1e-8);
    EXPECT_LT(result.rel_residual, 1.0);
  });
}

// --------------------------------------------------------------------------
// Rigid baseline.

TEST(Rigid, RecoversPureTranslation) {
  const Int3 dims{24, 24, 24};
  // Serial full images: a blob and its translate.
  auto fill_full = [&](const Vec3& shift) {
    std::vector<real_t> img(dims.prod());
    const real_t h = kTwoPi / 24;
    for (index_t a = 0; a < 24; ++a)
      for (index_t b = 0; b < 24; ++b)
        for (index_t c = 0; c < 24; ++c) {
          const real_t x1 = a * h - shift[0], x2 = b * h - shift[1],
                       x3 = c * h - shift[2];
          img[linear_index(a, b, c, dims)] =
              std::exp(std::cos(x1 - kTwoPi / 2)) *
              std::exp(std::cos(x2 - kTwoPi / 2)) *
              std::exp(std::cos(x3 - kTwoPi / 2));
        }
    return img;
  };
  const Vec3 shift{0.25, -0.15, 0.1};
  auto rho_t = fill_full({0, 0, 0});
  auto rho_r = fill_full(shift);

  RigidRegistration rigid(dims);
  auto result = rigid.run(rho_t, rho_r, 150);
  EXPECT_LT(result.final_residual, 0.1 * result.initial_residual);
  // Recovered translation should be close to the true shift: the template is
  // resampled at y = x + t, matching rho_r(x) = rho_t(x - shift) requires
  // t ~ -shift.
  EXPECT_NEAR(result.params.translation[0], -shift[0], 0.05);
  EXPECT_NEAR(result.params.translation[1], -shift[1], 0.05);
  EXPECT_NEAR(result.params.translation[2], -shift[2], 0.05);
}

TEST(Rigid, IdentityWhenImagesMatch) {
  const Int3 dims{16, 16, 16};
  std::vector<real_t> img(dims.prod());
  for (index_t i = 0; i < dims.prod(); ++i)
    img[i] = std::sin(0.3 * static_cast<real_t>(i % 97));
  RigidRegistration rigid(dims);
  auto result = rigid.run(img, img, 30);
  EXPECT_NEAR(result.final_residual, 0.0, 1e-9);
  EXPECT_NEAR(result.params.translation.norm(), 0.0, 1e-6);
}

// ---- Numerical safeguards (--guard) -------------------------------------

TEST(Pcg, BreakdownFallsBackToAFiniteDirection) {
  // An operator that emits NaNs must trip the breakdown detector on the
  // first sweep and fall back to the (finite) preconditioned gradient
  // instead of iterating on garbage.
  mpisim::run_spmd(1, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {8, 8, 8});
    VectorField b(decomp.local_real_size());
    b.fill(1.0);
    auto apply_nan = [&](const VectorField& in, VectorField& out) {
      out = in;
      out[0][0] = std::numeric_limits<real_t>::quiet_NaN();
    };
    auto apply_id = [&](const VectorField& in, VectorField& out) {
      out = in;
    };
    VectorField x;
    PcgResult result = pcg_solve(decomp, apply_nan, apply_id, b, x, 1e-6, 50);
    EXPECT_TRUE(result.breakdown);
    EXPECT_EQ(result.iterations, 0);
    EXPECT_FALSE(result.converged);
    EXPECT_EQ(grid::count_nonfinite(x), 0);
    // The fallback is the preconditioned gradient: z = M r = b here.
    for (int d = 0; d < 3; ++d)
      for (size_t i = 0; i < x[d].size(); ++i) ASSERT_EQ(x[d][i], b[d][i]);
  });
}

TEST(Guard, ValidateFiniteIsCollective) {
  // A NaN local to rank 1 must throw on BOTH ranks (a one-sided throw would
  // strand the healthy rank in the next collective).
  std::atomic<int> threw{0};
  EXPECT_THROW(
      mpisim::run_spmd(2,
                       [&](mpisim::Communicator& comm) {
                         PencilDecomp decomp(comm, {8, 8, 8});
                         VectorField v(decomp.local_real_size());
                         if (comm.rank() == 1)
                           v[2][3] = std::numeric_limits<
                               real_t>::quiet_NaN();
                         try {
                           grid::validate_finite(decomp, v, "test field");
                         } catch (const grid::NonFiniteFieldError&) {
                           ++threw;
                           throw;
                         }
                       }),
      grid::NonFiniteFieldError);
  EXPECT_EQ(threw.load(), 2);
}

TEST(Guard, ThrowsOnNonFiniteInputImages) {
  // A poisoned template image must surface as NonFiniteFieldError at the
  // first guarded Newton iterate, on every rank, instead of converging to
  // garbage or diverging silently.
  EXPECT_THROW(
      mpisim::run_spmd(2,
                       [&](mpisim::Communicator& comm) {
                         PencilDecomp decomp(comm, {16, 16, 16});
                         spectral::SpectralOps ops(decomp);
                         auto rho_t = imaging::synthetic_template(decomp);
                         auto v_star = imaging::synthetic_velocity(decomp,
                                                                   0.5);
                         auto rho_r =
                             imaging::make_reference(ops, rho_t, v_star);
                         if (comm.rank() == 0)
                           rho_t[1] =
                               std::numeric_limits<real_t>::infinity();
                         RegistrationOptions opt;
                         opt.guard = true;
                         opt.smooth_inputs = false;  // keep the Inf local
                         opt.max_newton_iters = 3;
                         RegistrationSolver solver(decomp, opt);
                         solver.run(rho_t, rho_r);
                       }),
      grid::NonFiniteFieldError);
}

TEST(Guard, GuardedSolveIsBitwiseIdenticalToUnguarded) {
  // On healthy inputs --guard adds sweeps but must not perturb a single
  // bit of the solve (the acceptance criterion for having it default off).
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    spectral::SpectralOps ops(decomp);
    auto rho_t = imaging::synthetic_template(decomp);
    auto v_star = imaging::synthetic_velocity(decomp, 0.5);
    auto rho_r = imaging::make_reference(ops, rho_t, v_star);

    RegistrationOptions opt;
    opt.max_newton_iters = 5;
    RegistrationSolver plain(decomp, opt);
    auto res_plain = plain.run(rho_t, rho_r);

    opt.guard = true;
    RegistrationSolver guarded(decomp, opt);
    auto res_guarded = guarded.run(rho_t, rho_r);

    EXPECT_EQ(res_guarded.newton.iterations, res_plain.newton.iterations);
    EXPECT_EQ(res_guarded.newton.line_search_recoveries, 0);
    EXPECT_EQ(res_guarded.newton.fp64_escalations, 0);
    for (int d = 0; d < 3; ++d)
      for (size_t i = 0; i < res_plain.velocity[d].size(); ++i)
        ASSERT_EQ(res_guarded.velocity[d][i], res_plain.velocity[d][i])
            << "d=" << d << " i=" << i;
  });
}

TEST(Guard, MixedPrecisionStagnationEscalatesToFp64) {
  // A starved Krylov budget leaves the fp32 inner solve unconverged at
  // every iterate: with guard on, each one must be redone at fp64 and
  // counted, and the solve must still complete.
  NewtonReport report;
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    spectral::SpectralOps ops(decomp);
    auto rho_t = imaging::synthetic_template(decomp);
    auto v_star = imaging::synthetic_velocity(decomp, 0.5);
    auto rho_r = imaging::make_reference(ops, rho_t, v_star);

    RegistrationOptions opt;
    opt.precision = Precision::kMixed;
    opt.guard = true;
    opt.max_krylov_iters = 1;
    opt.forcing = Forcing::kConstant;
    opt.forcing_max = 1e-6;  // unreachable in one sweep
    opt.max_newton_iters = 3;
    RegistrationSolver solver(decomp, opt);
    auto res = solver.run(rho_t, rho_r);
    if (comm.is_root()) report = res.newton;
  });
  EXPECT_GE(report.fp64_escalations, 1);
  EXPECT_GE(report.iterations, 1);
}

TEST(Newton, IterateHookSeesEveryAcceptedIterate) {
  std::atomic<int> calls{0};
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {16, 16, 16});
    spectral::SpectralOps ops(decomp);
    auto rho_t = imaging::synthetic_template(decomp);
    auto v_star = imaging::synthetic_velocity(decomp, 0.5);
    auto rho_r = imaging::make_reference(ops, rho_t, v_star);

    RegistrationOptions opt;
    opt.max_newton_iters = 5;
    int local_calls = 0;
    opt.iterate_hook = [&](const NewtonIterateInfo& info) {
      ++local_calls;
      EXPECT_EQ(info.iterates_done, local_calls);
      EXPECT_GT(info.gradient_reference, 0);
      ASSERT_NE(info.velocity, nullptr);
      EXPECT_EQ(grid::count_nonfinite(*info.velocity), 0);
    };
    RegistrationSolver solver(decomp, opt);
    auto res = solver.run(rho_t, rho_r);
    EXPECT_EQ(local_calls, res.newton.iterations);
    calls += local_calls;
  });
  EXPECT_GT(calls.load(), 0);
}

// ---- Checkpoint/restart -------------------------------------------------

TEST(Checkpoint, RoundTripsHeaderAndVelocityBitwise) {
  const std::string path = ::testing::TempDir() + "diffreg_ckpt_rt.bin";
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {12, 10, 8});
    VectorField v(decomp.local_real_size());
    for (int d = 0; d < 3; ++d)
      for (size_t i = 0; i < v[d].size(); ++i)
        v[d][i] = 0.25 * d + 1e-3 * static_cast<real_t>(i) +
                  comm.rank() * 7.5;
    CheckpointHeader hdr;
    hdr.fine_dims = {24, 20, 16};
    hdr.level_dims = decomp.dims();
    hdr.beta = 1e-2;
    hdr.beta_override = 5e-3;
    hdr.gradient_reference = 3.75;
    hdr.admissible = false;
    hdr.newton_iters_done = 4;
    write_checkpoint(decomp, hdr, v, path);

    const CheckpointHeader back = read_checkpoint_header(comm, path);
    EXPECT_EQ(back.fine_dims, hdr.fine_dims);
    EXPECT_EQ(back.level_dims, hdr.level_dims);
    EXPECT_EQ(back.beta, hdr.beta);
    EXPECT_EQ(back.beta_override, hdr.beta_override);
    EXPECT_EQ(back.gradient_reference, hdr.gradient_reference);
    EXPECT_EQ(back.admissible, hdr.admissible);
    EXPECT_EQ(back.newton_iters_done, hdr.newton_iters_done);

    const VectorField got = read_checkpoint_velocity(decomp, path);
    for (int d = 0; d < 3; ++d)
      for (size_t i = 0; i < v[d].size(); ++i)
        ASSERT_EQ(got[d][i], v[d][i]) << "d=" << d << " i=" << i;
  });
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingAndCorruptFilesThrowOnEveryRank) {
  const std::string garbage =
      ::testing::TempDir() + "diffreg_ckpt_garbage.bin";
  {
    std::FILE* f = std::fopen(garbage.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "not a checkpoint at all";
    std::fwrite(junk, 1, sizeof junk, f);
    std::fclose(f);
  }
  std::atomic<int> threw{0};
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {8, 8, 8});
    try {
      read_checkpoint_header(comm, "/nonexistent/diffreg.ckpt");
    } catch (const CheckpointError&) {
      ++threw;
    }
    try {
      read_checkpoint_velocity(decomp, garbage);
    } catch (const CheckpointError&) {
      ++threw;
    }
  });
  // Both failure modes, on both ranks.
  EXPECT_EQ(threw.load(), 4);
  std::remove(garbage.c_str());
}

TEST(Checkpoint, TruncatedPayloadThrowsOnEveryRank) {
  const std::string path = ::testing::TempDir() + "diffreg_ckpt_trunc.bin";
  std::atomic<int> threw{0};
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    PencilDecomp decomp(comm, {8, 8, 8});
    VectorField v(decomp.local_real_size());
    v.fill(1.5);
    CheckpointHeader hdr;
    hdr.fine_dims = decomp.dims();
    hdr.level_dims = decomp.dims();
    write_checkpoint(decomp, hdr, v, path);
    comm.barrier();
    if (comm.is_root()) {
      std::filesystem::resize_file(path, 200);  // header + partial payload
    }
    comm.barrier();
    try {
      read_checkpoint_velocity(decomp, path);
    } catch (const CheckpointError& e) {
      EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
      ++threw;
    }
  });
  EXPECT_EQ(threw.load(), 2);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace diffreg::core
