#include "spectral/operators.hpp"

#include <cassert>
#include <cmath>

#include "fft/fft3d_serial.hpp"  // fft_frequency

namespace diffreg::spectral {

using fft::fft_frequency;

SpectralOps::SpectralOps(grid::PencilDecomp& decomp, WirePrecision wire,
                         bool overlap)
    : decomp_(&decomp), fft_(decomp, wire, overlap) {
  const Int3 dims = decomp.dims();
  const Int3 sd = decomp.local_spectral_dims();

  // Axis 1: full range, FFT order.
  k1_.resize(sd[2]);
  k1_odd_.resize(sd[2]);
  for (index_t c = 0; c < sd[2]; ++c) {
    k1_[c] = static_cast<real_t>(fft_frequency(c, dims[0]));
    const bool nyquist = (dims[0] % 2 == 0) && (c == dims[0] / 2);
    k1_odd_[c] = nyquist ? real_t(0) : k1_[c];
  }
  // Axis 2: local slice of the full range.
  k2_.resize(sd[1]);
  k2_odd_.resize(sd[1]);
  for (index_t b = 0; b < sd[1]; ++b) {
    const index_t g = decomp.srange2().begin + b;
    k2_[b] = static_cast<real_t>(fft_frequency(g, dims[1]));
    const bool nyquist = (dims[1] % 2 == 0) && (g == dims[1] / 2);
    k2_odd_[b] = nyquist ? real_t(0) : k2_[b];
  }
  // Axis 3: Hermitian half dimension, frequencies 0 .. N3/2.
  k3_.resize(sd[0]);
  k3_odd_.resize(sd[0]);
  for (index_t a = 0; a < sd[0]; ++a) {
    const index_t g = decomp.srange3().begin + a;
    k3_[a] = static_cast<real_t>(g);
    const bool nyquist = (dims[2] % 2 == 0) && (g == dims[2] / 2);
    k3_odd_[a] = nyquist ? real_t(0) : k3_[a];
  }

  const index_t ns = decomp.local_spectral_size();
  spec_.resize(ns);
  for (auto& s : spec_v_) s.resize(ns);
}

void SpectralOps::forward_vector(const VectorField& v) {
  const real_t* reals[3] = {v[0].data(), v[1].data(), v[2].data()};
  complex_t* specs[3] = {spec_v_[0].data(), spec_v_[1].data(),
                         spec_v_[2].data()};
  fft_.forward_many(std::span<const real_t* const>(reals),
                    std::span<complex_t* const>(specs));
}

void SpectralOps::inverse_vector(VectorField& w) {
  for (int d = 0; d < 3; ++d)
    if (w[d].size() != static_cast<size_t>(local_size()))
      w[d].resize(local_size());
  const complex_t* specs[3] = {spec_v_[0].data(), spec_v_[1].data(),
                               spec_v_[2].data()};
  real_t* reals[3] = {w[0].data(), w[1].data(), w[2].data()};
  fft_.inverse_many(std::span<const complex_t* const>(specs),
                    std::span<real_t* const>(reals));
}

void SpectralOps::gradient(std::span<const real_t> f, VectorField& g) {
  // 1 forward + 1 batched inverse (2 + 2 alltoallv exchanges). The i*k_d
  // scaling is fused into a single sweep that writes all three component
  // spectra straight from the cached forward spectrum.
  fft_.forward(f, spec_);
  const Int3 sd = decomp_->local_spectral_dims();
  index_t idx = 0;
  for (index_t a = 0; a < sd[0]; ++a)
    for (index_t b = 0; b < sd[1]; ++b)
      for (index_t c = 0; c < sd[2]; ++c, ++idx) {
        const Vec3 k = wavenumber(a, b, c, /*odd=*/true);
        const complex_t iv(-spec_[idx].imag(), spec_[idx].real());  // i * spec
        spec_v_[0][idx] = k[0] * iv;
        spec_v_[1][idx] = k[1] * iv;
        spec_v_[2][idx] = k[2] * iv;
      }
  inverse_vector(g);
}

void SpectralOps::divergence(const VectorField& v, ScalarField& out) {
  // 1 batched forward + 1 inverse; the i*k dot-product accumulation runs in
  // one fused sweep over the three component spectra.
  forward_vector(v);
  const Int3 sd = decomp_->local_spectral_dims();
  index_t idx = 0;
  for (index_t a = 0; a < sd[0]; ++a)
    for (index_t b = 0; b < sd[1]; ++b)
      for (index_t c = 0; c < sd[2]; ++c, ++idx) {
        const Vec3 k = wavenumber(a, b, c, /*odd=*/true);
        const complex_t kv = k[0] * spec_v_[0][idx] + k[1] * spec_v_[1][idx] +
                             k[2] * spec_v_[2][idx];
        spec_[idx] = complex_t(-kv.imag(), kv.real());  // i * (k . v_hat)
      }
  if (out.size() != static_cast<size_t>(local_size()))
    out.resize(local_size());
  fft_.inverse(spec_, out);
}

void SpectralOps::laplacian(std::span<const real_t> f, ScalarField& out) {
  fft_.forward(f, spec_);
  scale_spectrum(std::span<complex_t>(spec_),
                 [&](index_t a, index_t b, index_t c) {
                   const Vec3 k = wavenumber(a, b, c, false);
                   return -k.dot(k);
                 });
  if (out.size() != static_cast<size_t>(local_size()))
    out.resize(local_size());
  fft_.inverse(spec_, out);
}

void SpectralOps::inv_laplacian(std::span<const real_t> f, ScalarField& out) {
  fft_.forward(f, spec_);
  scale_spectrum(std::span<complex_t>(spec_),
                 [&](index_t a, index_t b, index_t c) {
                   const Vec3 k = wavenumber(a, b, c, false);
                   const real_t k2 = k.dot(k);
                   return k2 == 0 ? real_t(0) : real_t(-1) / k2;
                 });
  if (out.size() != static_cast<size_t>(local_size()))
    out.resize(local_size());
  fft_.inverse(spec_, out);
}

void SpectralOps::biharmonic(std::span<const real_t> f, ScalarField& out) {
  fft_.forward(f, spec_);
  scale_spectrum(std::span<complex_t>(spec_),
                 [&](index_t a, index_t b, index_t c) {
                   const Vec3 k = wavenumber(a, b, c, false);
                   const real_t k2 = k.dot(k);
                   return k2 * k2;
                 });
  if (out.size() != static_cast<size_t>(local_size()))
    out.resize(local_size());
  fft_.inverse(spec_, out);
}

void SpectralOps::inv_biharmonic(std::span<const real_t> f, ScalarField& out) {
  fft_.forward(f, spec_);
  scale_spectrum(std::span<complex_t>(spec_),
                 [&](index_t a, index_t b, index_t c) {
                   const Vec3 k = wavenumber(a, b, c, false);
                   const real_t k2 = k.dot(k);
                   return k2 == 0 ? real_t(0) : real_t(1) / (k2 * k2);
                 });
  if (out.size() != static_cast<size_t>(local_size()))
    out.resize(local_size());
  fft_.inverse(spec_, out);
}

void SpectralOps::neg_laplacian_pow(const VectorField& v, int gamma,
                                    VectorField& w) {
  assert(gamma == 1 || gamma == 2);
  // One batched forward + one batched inverse for all three components
  // (4 alltoallv exchanges instead of 12); the |k|^(2 gamma) scaling is a
  // single fused sweep sharing one wavenumber evaluation per mode.
  forward_vector(v);
  const Int3 sd = decomp_->local_spectral_dims();
  index_t idx = 0;
  for (index_t a = 0; a < sd[0]; ++a)
    for (index_t b = 0; b < sd[1]; ++b)
      for (index_t c = 0; c < sd[2]; ++c, ++idx) {
        const Vec3 k = wavenumber(a, b, c, false);
        const real_t k2 = k.dot(k);
        const real_t factor = gamma == 1 ? k2 : k2 * k2;
        for (int d = 0; d < 3; ++d) spec_v_[d][idx] *= factor;
      }
  inverse_vector(w);
}

void SpectralOps::inv_neg_laplacian_pow(const VectorField& v, int gamma,
                                        VectorField& w, real_t scale,
                                        real_t mean_scale) {
  assert(gamma == 1 || gamma == 2);
  forward_vector(v);
  const Int3 sd = decomp_->local_spectral_dims();
  index_t idx = 0;
  for (index_t a = 0; a < sd[0]; ++a)
    for (index_t b = 0; b < sd[1]; ++b)
      for (index_t c = 0; c < sd[2]; ++c, ++idx) {
        const Vec3 k = wavenumber(a, b, c, false);
        const real_t k2 = k.dot(k);
        const real_t factor =
            k2 == 0 ? mean_scale
                    : (gamma == 1 ? scale / k2 : scale / (k2 * k2));
        for (int d = 0; d < 3; ++d) spec_v_[d][idx] *= factor;
      }
  inverse_vector(w);
}

void SpectralOps::leray_project(VectorField& v) {
  // v_hat <- v_hat - k (k . v_hat) / |k|^2 with the odd-derivative k vector,
  // so the projected field is discretely divergence free. Both transforms
  // are batched over the three components.
  forward_vector(v);
  const Int3 sd = decomp_->local_spectral_dims();
  index_t idx = 0;
  for (index_t a = 0; a < sd[0]; ++a)
    for (index_t b = 0; b < sd[1]; ++b)
      for (index_t c = 0; c < sd[2]; ++c, ++idx) {
        const Vec3 k = wavenumber(a, b, c, true);
        const real_t k2 = k.dot(k);
        if (k2 == 0) continue;
        const complex_t kv =
            k[0] * spec_v_[0][idx] + k[1] * spec_v_[1][idx] +
            k[2] * spec_v_[2][idx];
        const complex_t s = kv / k2;
        for (int d = 0; d < 3; ++d) spec_v_[d][idx] -= k[d] * s;
      }
  inverse_vector(v);
}

void SpectralOps::gaussian_smooth(std::span<const real_t> f, const Vec3& sigma,
                                  ScalarField& out) {
  fft_.forward(f, spec_);
  scale_spectrum(std::span<complex_t>(spec_),
                 [&](index_t a, index_t b, index_t c) {
                   const Vec3 k = wavenumber(a, b, c, false);
                   const real_t e = sigma[0] * sigma[0] * k[0] * k[0] +
                                    sigma[1] * sigma[1] * k[1] * k[1] +
                                    sigma[2] * sigma[2] * k[2] * k[2];
                   return std::exp(real_t(-0.5) * e);
                 });
  if (out.size() != static_cast<size_t>(local_size()))
    out.resize(local_size());
  fft_.inverse(spec_, out);
}

void SpectralOps::gaussian_smooth_many(std::span<const real_t* const> fs,
                                       std::span<const Vec3> sigmas,
                                       std::span<real_t* const> outs) {
  const int m = static_cast<int>(fs.size());
  assert(m >= 1 && m <= fft::DistributedFft3d::kMaxBatch);
  assert(sigmas.size() == fs.size() && outs.size() == fs.size());
  complex_t* specs[fft::DistributedFft3d::kMaxBatch];
  for (int i = 0; i < m; ++i) specs[i] = spec_v_[i].data();
  fft_.forward_many(fs, std::span<complex_t* const>(specs, m));
  for (int i = 0; i < m; ++i) {
    const Vec3 sigma = sigmas[i];
    scale_spectrum(std::span<complex_t>(spec_v_[i]),
                   [&](index_t a, index_t b, index_t c) {
                     const Vec3 k = wavenumber(a, b, c, false);
                     const real_t e = sigma[0] * sigma[0] * k[0] * k[0] +
                                      sigma[1] * sigma[1] * k[1] * k[1] +
                                      sigma[2] * sigma[2] * k[2] * k[2];
                     return std::exp(real_t(-0.5) * e);
                   });
  }
  const complex_t* cspecs[fft::DistributedFft3d::kMaxBatch];
  for (int i = 0; i < m; ++i) cspecs[i] = spec_v_[i].data();
  fft_.inverse_many(std::span<const complex_t* const>(cspecs, m),
                    std::span<real_t* const>(outs.data(), m));
}

}  // namespace diffreg::spectral
