#include "spectral/resample.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/timer.hpp"
#include "fft/fft3d_serial.hpp"

namespace diffreg::spectral {

using fft::fft_frequency;
using grid::PencilDecomp;
using grid::ScalarField;
using grid::VectorField;

namespace {

/// Surviving (dst index, src index) pairs of one axis: FFT-ordered dst
/// indices whose signed frequency is strictly below the Nyquist limit of
/// BOTH grids, paired with the src index of the same frequency.
std::vector<std::pair<index_t, index_t>> axis_pairs(index_t nd, index_t ns) {
  std::vector<std::pair<index_t, index_t>> pairs;
  for (index_t i = 0; i < nd; ++i) {
    const index_t f = fft_frequency(i, nd);
    if (2 * std::abs(f) < nd && 2 * std::abs(f) < ns)
      pairs.emplace_back(i, periodic_index(f, ns));
  }
  return pairs;
}

/// Half-spectrum axis 3: k3 >= 0, so dst and src indices coincide.
std::vector<std::pair<index_t, index_t>> axis3_pairs(index_t nd, index_t ns) {
  std::vector<std::pair<index_t, index_t>> pairs;
  for (index_t k = 0; k < nd / 2 + 1; ++k)
    if (2 * k < nd && 2 * k < ns) pairs.emplace_back(k, k);
  return pairs;
}

}  // namespace

ResamplePlan::ResamplePlan(PencilDecomp& src, PencilDecomp& dst,
                           WirePrecision wire)
    : src_(&src),
      dst_(&dst),
      wire_(wire),
      fft_src_(src, wire),
      fft_dst_(dst, wire),
      scale_(static_cast<real_t>(dst.dims().prod()) /
             static_cast<real_t>(src.dims().prod())) {
  if (src.comm().size() != dst.comm().size() ||
      src.comm().rank() != dst.comm().rank())
    throw std::invalid_argument(
        "ResamplePlan: decompositions must wrap the same rank set");

  const Int3 sd = src.dims();
  const Int3 dd = dst.dims();
  const int p = src.comm().size();
  const int rank = src.comm().rank();

  const auto pairs1 = axis_pairs(dd[0], sd[0]);
  const auto pairs2 = axis_pairs(dd[1], sd[1]);
  const auto pairs3 = axis3_pairs(dd[2], sd[2]);

  // Route every surviving mode in one canonical global order (k3 outer, k2,
  // k1 inner — the destination memory layout), so the per-peer chunk order
  // agrees between each sender's pack loop and each receiver's unpack loop.
  // Ownership in the spectral pencil layout [k3_loc][k2_loc][N1] depends
  // only on (k3, k2); k1 rides along fully local on both sides.
  std::vector<std::vector<index_t>> send_lists(p), recv_lists(p);
  const index_t n1s = sd[0], n1d = dd[0];
  const index_t n2kl_s = src.srange2().size();
  const index_t n2kl_d = dst.srange2().size();
  for (const auto& [c_d, c_s] : pairs3) {
    const int src_r2 = block_owner(c_s, src.n3c(), src.p2());
    const int dst_r2 = block_owner(c_d, dst.n3c(), dst.p2());
    for (const auto& [b_d, b_s] : pairs2) {
      const int src_rank = src.rank_of(block_owner(b_s, sd[1], src.p1()),
                                       src_r2);
      const int dst_rank = dst.rank_of(block_owner(b_d, dd[1], dst.p1()),
                                       dst_r2);
      const bool sends = src_rank == rank;
      const bool recvs = dst_rank == rank;
      if (!sends && !recvs) continue;
      const index_t src_base =
          sends ? ((c_s - src.srange3().begin) * n2kl_s +
                   (b_s - src.srange2().begin)) *
                      n1s
                : 0;
      const index_t dst_base =
          recvs ? ((c_d - dst.srange3().begin) * n2kl_d +
                   (b_d - dst.srange2().begin)) *
                      n1d
                : 0;
      for (const auto& [a_d, a_s] : pairs1) {
        if (sends) send_lists[dst_rank].push_back(src_base + a_s);
        if (recvs) recv_lists[src_rank].push_back(dst_base + a_d);
      }
    }
  }

  send_counts_.resize(p);
  recv_counts_.resize(p);
  for (int q = 0; q < p; ++q) {
    send_counts_[q] = static_cast<index_t>(send_lists[q].size());
    recv_counts_[q] = static_cast<index_t>(recv_lists[q].size());
    send_total_ += send_counts_[q];
    recv_total_ += recv_counts_[q];
  }
  send_idx_.reserve(send_total_);
  recv_idx_.reserve(recv_total_);
  for (int q = 0; q < p; ++q) {
    send_idx_.insert(send_idx_.end(), send_lists[q].begin(),
                     send_lists[q].end());
    recv_idx_.insert(recv_idx_.end(), recv_lists[q].begin(),
                     recv_lists[q].end());
  }

  scaled_send_counts_.resize(p);
  scaled_recv_counts_.resize(p);
  ensure_batch_capacity(1);
}

void ResamplePlan::ensure_batch_capacity(int m) {
  // Stage buffers grow to the largest batch seen (not eagerly to
  // kMaxBatch): one-shot scalar transfers then pay for one component, and
  // repeated applies at any fixed batch size stay allocation free after
  // the first.
  const size_t ss = static_cast<size_t>(m) * src_->local_spectral_size();
  const size_t ds = static_cast<size_t>(m) * dst_->local_spectral_size();
  if (spec_src_.size() < ss) spec_src_.resize(ss);
  if (spec_dst_.size() < ds) spec_dst_.resize(ds);
  const size_t st = static_cast<size_t>(m) * send_total_;
  const size_t rt = static_cast<size_t>(m) * recv_total_;
  if (send_buf_.size() < st) send_buf_.resize(st);
  if (recv_buf_.size() < rt) recv_buf_.resize(rt);
  if (wire_ == WirePrecision::kF32) {
    if (send_buf32_.size() < st) send_buf32_.resize(st);
    if (recv_buf32_.size() < rt) recv_buf32_.resize(rt);
  }
}

void ResamplePlan::apply_many(std::span<const real_t* const> ins,
                              std::span<real_t* const> outs) {
  const int m = static_cast<int>(ins.size());
  if (m < 1 || m > kMaxBatch || outs.size() != static_cast<size_t>(m))
    throw std::invalid_argument("ResamplePlan: bad batch size");
  ensure_batch_capacity(m);
  const index_t s_stride = src_->local_spectral_size();
  const index_t d_stride = dst_->local_spectral_size();
  const int p = src_->comm().size();

  complex_t* sspec[kMaxBatch];
  complex_t* dspec[kMaxBatch];
  for (int c = 0; c < m; ++c) {
    sspec[c] = spec_src_.data() + c * s_stride;
    dspec[c] = spec_dst_.data() + c * d_stride;
  }
  fft_src_.forward_many(ins, std::span<complex_t* const>(sspec,
                                                         static_cast<size_t>(
                                                             m)));

  auto& comm = src_->comm();
  Timings& timings = comm.timings();
  {  // Pack: peer-major, components back to back inside each peer chunk.
    ScopedTimer t(timings, TimeKind::kFftExec);
    index_t pos = 0, off = 0;
    for (int q = 0; q < p; ++q) {
      for (int c = 0; c < m; ++c) {
        const complex_t* s = sspec[c];
        for (index_t i = 0; i < send_counts_[q]; ++i)
          send_buf_[pos++] = s[send_idx_[off + i]];
      }
      off += send_counts_[q];
    }
  }

  for (int q = 0; q < p; ++q) {
    scaled_send_counts_[q] = m * send_counts_[q];
    scaled_recv_counts_[q] = m * recv_counts_[q];
  }
  comm.set_time_kind(TimeKind::kFftComm);
  const std::span<const complex_t> remap_send(
      send_buf_.data(), static_cast<size_t>(m * send_total_));
  const std::span<const index_t> remap_scounts(
      scaled_send_counts_.data(), static_cast<size_t>(p));
  const std::span<complex_t> remap_recv(
      recv_buf_.data(), static_cast<size_t>(m * recv_total_));
  const std::span<const index_t> remap_rcounts(
      scaled_recv_counts_.data(), static_cast<size_t>(p));
  if (wire_ == WirePrecision::kF32) {
    comm.alltoallv_converted(
        remap_send, remap_scounts, remap_recv, remap_rcounts,
        std::span<complex32_t>(send_buf32_.data(), remap_send.size()),
        std::span<complex32_t>(recv_buf32_.data(), remap_recv.size()),
        kTagRemap);
  } else {
    comm.alltoallv(remap_send, remap_scounts, remap_recv, remap_rcounts,
                   kTagRemap);
  }

  {  // Unpack: zero the destination spectrum (only surviving modes are
     // written — truncation/zero-padding happens right here) and scatter
     // with the grid-size rescaling fused in.
    ScopedTimer t(timings, TimeKind::kFftExec);
    std::fill_n(spec_dst_.data(), static_cast<size_t>(m) * d_stride,
                complex_t(0, 0));
    index_t pos = 0, off = 0;
    for (int q = 0; q < p; ++q) {
      for (int c = 0; c < m; ++c) {
        complex_t* d = dspec[c];
        for (index_t i = 0; i < recv_counts_[q]; ++i)
          d[recv_idx_[off + i]] = scale_ * recv_buf_[pos++];
      }
      off += recv_counts_[q];
    }
  }

  fft_dst_.inverse_many(
      std::span<const complex_t* const>(dspec, static_cast<size_t>(m)), outs);
}

void ResamplePlan::apply(std::span<const real_t> in, std::span<real_t> out) {
  if (static_cast<index_t>(in.size()) != src_->local_real_size() ||
      static_cast<index_t>(out.size()) != dst_->local_real_size())
    throw std::invalid_argument("ResamplePlan: block size mismatch");
  const real_t* ins[1] = {in.data()};
  real_t* outs[1] = {out.data()};
  apply_many(std::span<const real_t* const>(ins, 1),
             std::span<real_t* const>(outs, 1));
}

void ResamplePlan::apply(const VectorField& in, VectorField& out) {
  if (in.local_size() != src_->local_real_size())
    throw std::invalid_argument("ResamplePlan: block size mismatch");
  grid::resize_zero(out, dst_->local_real_size());
  const real_t* ins[3] = {in[0].data(), in[1].data(), in[2].data()};
  real_t* outs[3] = {out[0].data(), out[1].data(), out[2].data()};
  apply_many(std::span<const real_t* const>(ins, 3),
             std::span<real_t* const>(outs, 3));
}

ScalarField spectral_resample(PencilDecomp& src, std::span<const real_t> field,
                              PencilDecomp& dst) {
  ResamplePlan plan(src, dst);
  ScalarField out(dst.local_real_size());
  plan.apply(field, out);
  return out;
}

VectorField spectral_resample(PencilDecomp& src, const VectorField& field,
                              PencilDecomp& dst) {
  ResamplePlan plan(src, dst);
  VectorField out;
  plan.apply(field, out);
  return out;
}

}  // namespace diffreg::spectral
