#include "spectral/resample.hpp"

#include "fft/fft3d_serial.hpp"
#include "grid/field_io.hpp"

namespace diffreg::spectral {

using fft::fft_frequency;
using grid::PencilDecomp;
using grid::ScalarField;
using grid::VectorField;

ScalarField spectral_resample(PencilDecomp& src,
                              std::span<const real_t> field,
                              PencilDecomp& dst) {
  const Int3 sd = src.dims();
  const Int3 dd = dst.dims();

  // Full field everywhere, then a serial transform (setup-phase cost).
  auto full = grid::gather_to_all(src, field);
  fft::SerialFft3d fft_src(sd);
  std::vector<complex_t> spec_src(fft_src.spectral_size());
  fft_src.forward(full, spec_src);

  // Copy every mode whose signed frequency is strictly below the Nyquist
  // limit of BOTH grids (Nyquist modes are dropped: they have no faithful
  // counterpart on the other grid).
  fft::SerialFft3d fft_dst(dd);
  std::vector<complex_t> spec_dst(fft_dst.spectral_size(), complex_t(0, 0));
  const Int3 ssd = fft_src.spectral_dims();
  const Int3 dsd = fft_dst.spectral_dims();
  const real_t scale = static_cast<real_t>(dd.prod()) /
                       static_cast<real_t>(sd.prod());

  auto below_nyquist = [](index_t f, index_t n) {
    return 2 * std::abs(f) < n;  // strict: excludes the Nyquist mode
  };
  for (index_t a = 0; a < dsd[0]; ++a) {
    const index_t f1 = fft_frequency(a, dd[0]);
    if (!below_nyquist(f1, dd[0]) || !below_nyquist(f1, sd[0])) continue;
    const index_t sa = periodic_index(f1, sd[0]);
    for (index_t b = 0; b < dsd[1]; ++b) {
      const index_t f2 = fft_frequency(b, dd[1]);
      if (!below_nyquist(f2, dd[1]) || !below_nyquist(f2, sd[1])) continue;
      const index_t sb = periodic_index(f2, sd[1]);
      for (index_t c = 0; c < dsd[2]; ++c) {
        const index_t f3 = c;  // half spectrum: k3 >= 0
        if (!below_nyquist(f3, dd[2]) || !below_nyquist(f3, sd[2])) continue;
        spec_dst[linear_index(a, b, c, dsd)] =
            scale * spec_src[linear_index(sa, sb, f3, ssd)];
      }
    }
  }

  std::vector<real_t> full_dst(dd.prod());
  fft_dst.inverse(spec_dst, full_dst);

  // Extract the locally owned block of the destination decomposition.
  const Int3 ld = dst.local_real_dims();
  ScalarField local(dst.local_real_size());
  index_t pos = 0;
  for (index_t a = 0; a < ld[0]; ++a)
    for (index_t b = 0; b < ld[1]; ++b)
      for (index_t c = 0; c < ld[2]; ++c)
        local[pos++] = full_dst[linear_index(dst.range1().begin + a,
                                             dst.range2().begin + b, c, dd)];
  return local;
}

VectorField spectral_resample(PencilDecomp& src, const VectorField& field,
                              PencilDecomp& dst) {
  VectorField out(dst.local_real_size());
  for (int d = 0; d < 3; ++d)
    out[d] = spectral_resample(src, field[d], dst);
  return out;
}

}  // namespace diffreg::spectral
