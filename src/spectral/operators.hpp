// Spectral differential operators on the pencil decomposition
// (paper section III-B1): gradient, divergence, (vector) Laplacian,
// biharmonic, their inverses, the Leray projector that eliminates the
// incompressibility constraint, and Gaussian smoothing.
//
// Everything is a diagonal scaling in Fourier space between one forward and
// one inverse distributed FFT; the gradient shares a single forward
// transform across its three output components (paper's "optimizations for
// the grad and div operators"), and every vector-field transform goes
// through the FFT's batched forward_many/inverse_many, so all three
// components ride the same two alltoallv exchanges per transform (3x fewer
// messages than transforming the components one by one). The diagonal
// scalings are fused into a single pass that reads the cached forward
// spectrum and writes the component spectra directly — no spectrum copy,
// no separate scaling sweep.
//
// Wavenumber conventions on the [0, 2*pi)^3 domain: integer frequencies; for
// odd derivatives the Nyquist mode is zeroed (its derivative is not
// representable and would break the Hermitian symmetry of real fields). The
// same zeroed-Nyquist vector is used inside grad, div, and the Leray
// projector, so `div(leray(v)) == 0` holds in exact arithmetic *discretely*.
#pragma once

#include <functional>
#include <span>

#include "fft/fft3d_distributed.hpp"
#include "grid/field_math.hpp"

namespace diffreg::spectral {

using grid::ScalarField;
using grid::VectorField;

class SpectralOps {
 public:
  /// `wire` is handed to the distributed FFT plan: kF32 halves the bytes of
  /// every transpose exchange behind these operators. `overlap` makes the
  /// FFT unpack its self chunk under the transpose flight (same results,
  /// same message schedule).
  explicit SpectralOps(grid::PencilDecomp& decomp,
                       WirePrecision wire = WirePrecision::kF64,
                       bool overlap = false);

  grid::PencilDecomp& decomp() { return *decomp_; }
  fft::DistributedFft3d& fft() { return fft_; }
  WirePrecision wire() const { return fft_.wire(); }
  index_t local_size() const { return decomp_->local_real_size(); }

  /// g_d = d f / d x_d for d = 0,1,2 (1 forward + 3 inverse FFTs).
  void gradient(std::span<const real_t> f, VectorField& g);

  /// out = div v (3 forward + 1 inverse FFTs).
  void divergence(const VectorField& v, ScalarField& out);

  /// out = lap f.
  void laplacian(std::span<const real_t> f, ScalarField& out);

  /// out = pseudo-inverse of the Laplacian (zero-mean convention).
  void inv_laplacian(std::span<const real_t> f, ScalarField& out);

  /// out = lap^2 f (biharmonic).
  void biharmonic(std::span<const real_t> f, ScalarField& out);

  /// out = pseudo-inverse of the biharmonic (zero-mean convention).
  void inv_biharmonic(std::span<const real_t> f, ScalarField& out);

  /// Componentwise vector Laplacian (and powers): w = (-lap)^gamma v,
  /// gamma in {1, 2}; used by the H1/H2 regularization operators.
  void neg_laplacian_pow(const VectorField& v, int gamma, VectorField& w);

  /// w = scale * ((-lap)^gamma)^{-1} v on nonzero modes; the k=0 (mean) mode
  /// is multiplied by `mean_scale` instead. With positive factors the
  /// operator is SPD, so it can serve as a preconditioner.
  void inv_neg_laplacian_pow(const VectorField& v, int gamma, VectorField& w,
                             real_t scale = 1, real_t mean_scale = 1);

  /// In-place Leray projection w = (I - grad inv_lap div) v; afterwards the
  /// discrete divergence of v vanishes (paper eq. (4)).
  void leray_project(VectorField& v);

  /// Spectral Gaussian smoothing with per-axis standard deviation sigma
  /// (paper: images are smoothed with bandwidth ~ one grid cell).
  void gaussian_smooth(std::span<const real_t> f, const Vec3& sigma,
                       ScalarField& out);

  /// Batched smoothing of up to DistributedFft3d::kMaxBatch fields (each
  /// with its own sigma) through ONE exchange set (4 alltoallv total,
  /// independent of the field count) — used by the batch service to fuse
  /// the input preprocessing of co-resident jobs. `outs[i]` must already
  /// hold local_size() elements. Results are bitwise identical to calling
  /// gaussian_smooth per field.
  void gaussian_smooth_many(std::span<const real_t* const> fs,
                            std::span<const Vec3> sigmas,
                            std::span<real_t* const> outs);

  /// Wavenumbers of the local spectral index (a, b, c) -> (k1, k2, k3).
  /// `odd` selects the zeroed-Nyquist convention used for odd derivatives.
  Vec3 wavenumber(index_t a, index_t b, index_t c, bool odd) const {
    if (odd) return {k1_odd_[c], k2_odd_[b], k3_odd_[a]};
    return {k1_[c], k2_[b], k3_[a]};
  }

 private:
  /// Applies `factor(mode) * spec[mode]` for every local spectral mode.
  template <typename F>
  void scale_spectrum(std::span<complex_t> spec, F&& factor) const;

  /// Batched forward of the three components of `v` into spec_v_ (one pass,
  /// 2 alltoallv exchanges total).
  void forward_vector(const VectorField& v);
  /// Batched inverse of spec_v_ into the three components of `w` (resizing
  /// them if needed).
  void inverse_vector(VectorField& w);

  grid::PencilDecomp* decomp_;
  fft::DistributedFft3d fft_;

  // Local wavenumber tables; *_odd_ zero the Nyquist mode.
  std::vector<real_t> k1_, k2_, k3_;
  std::vector<real_t> k1_odd_, k2_odd_, k3_odd_;

  // Scratch spectra.
  std::vector<complex_t> spec_, spec_v_[3];
};

// ---------------------------------------------------------------------------

template <typename F>
void SpectralOps::scale_spectrum(std::span<complex_t> spec, F&& factor) const {
  const Int3 sd = decomp_->local_spectral_dims();
  index_t idx = 0;
  for (index_t a = 0; a < sd[0]; ++a)
    for (index_t b = 0; b < sd[1]; ++b)
      for (index_t c = 0; c < sd[2]; ++c, ++idx) spec[idx] *= factor(a, b, c);
}

}  // namespace diffreg::spectral
