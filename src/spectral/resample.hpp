// Distributed spectral resampling between grids (restriction / prolongation).
//
// The paper names "grid continuation and multilevel preconditioning" as the
// remedy for the preconditioner's beta sensitivity (section I, Limitations).
// This module provides the grid-transfer half: a field on one pencil
// decomposition is mapped onto another decomposition with different grid
// dimensions by Fourier truncation (coarsening) or zero padding
// (refinement). Band-limited fields transfer exactly.
//
// Memory contract: no rank ever holds the full field. The transfer runs
// entirely on the distributed half-spectrum:
//
//   1. batched pencil forward FFT on the source decomposition;
//   2. ONE alltoallv remap over the world communicator that moves every
//      surviving mode (signed frequency strictly below the Nyquist limit of
//      BOTH grids — Nyquist modes are dropped, they have no faithful
//      counterpart on the other grid) from its source-layout owner to its
//      destination-layout owner, applying the truncation / zero padding in
//      the process;
//   3. batched pencil inverse FFT on the destination decomposition.
//
// Per-rank memory and work stay O(N/p); the mode routing is precomputed at
// plan-build time, and once the largest batch size in use has been seen a
// warm plan performs no heap allocation. apply_many pushes up to kMaxBatch
// components (a 3-component velocity) through the same 5 alltoallv
// exchanges (2 forward + 1 remap + 2 inverse) that a scalar transfer costs.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "fft/fft3d_distributed.hpp"
#include "grid/decomposition.hpp"
#include "grid/field_math.hpp"

namespace diffreg::spectral {

/// Next-coarser grid of the multilevel hierarchy: every axis is halved
/// (rounding up, so odd dims are supported) but never taken below
/// `floor_dim` — and never above the current dim when `floor_dim` exceeds
/// it. Returns `dims` unchanged when no axis can be coarsened further.
inline Int3 coarsen_dims(const Int3& dims, index_t floor_dim) {
  Int3 out;
  for (int d = 0; d < 3; ++d)
    out[d] = std::min(dims[d],
                      std::max<index_t>(floor_dim, (dims[d] + 1) / 2));
  return out;
}

/// Persistent grid-transfer plan between two pencil decompositions (which
/// must wrap the same rank set). Owns the two distributed FFT plans, the
/// remap routing tables, and all stage buffers, so every apply after the
/// first performs zero heap allocations. Collective.
class ResamplePlan {
 public:
  /// Components that can share one batched transfer.
  static constexpr int kMaxBatch = fft::DistributedFft3d::kMaxBatch;

  /// With WirePrecision::kF32 the two pencil FFTs AND the remap alltoallv
  /// ship fp32 payloads (all 5 exchanges of a transfer at half the bytes).
  ResamplePlan(grid::PencilDecomp& src, grid::PencilDecomp& dst,
               WirePrecision wire = WirePrecision::kF64);

  grid::PencilDecomp& src() { return *src_; }
  grid::PencilDecomp& dst() { return *dst_; }
  WirePrecision wire() const { return wire_; }

  /// Resamples one scalar field; `in` is a src-local block, `out` a
  /// dst-local block (resized by the caller). Collective.
  void apply(std::span<const real_t> in, std::span<real_t> out);

  /// Batched transfer of up to kMaxBatch components through ONE exchange
  /// set (5 alltoallv total, independent of the component count). Results
  /// are identical to applying each component separately.
  void apply_many(std::span<const real_t* const> ins,
                  std::span<real_t* const> outs);

  /// Convenience: 3-component batched transfer of a vector field (`out` is
  /// resized to the destination block).
  void apply(const grid::VectorField& in, grid::VectorField& out);

 private:
  /// Grows the stage buffers to hold `m` components; applies stay
  /// allocation free once the largest batch size in use has been seen.
  void ensure_batch_capacity(int m);
  grid::PencilDecomp* src_;
  grid::PencilDecomp* dst_;
  WirePrecision wire_;
  fft::DistributedFft3d fft_src_, fft_dst_;
  real_t scale_;

  // Per-component stage spectra ([kMaxBatch][local_spectral_size]).
  std::vector<complex_t> spec_src_, spec_dst_;

  // Remap routing: peer-major lists of local spectral indices, in a
  // canonical global mode order shared by sender and receiver, plus flat
  // exchange buffers and per-peer counts (scaled by the batch size into the
  // scratch arrays at call time).
  std::vector<index_t> send_idx_, recv_idx_;
  std::vector<index_t> send_counts_, recv_counts_;
  std::vector<index_t> scaled_send_counts_, scaled_recv_counts_;
  std::vector<complex_t> send_buf_, recv_buf_;
  // fp32 staging of the remap exchange (kF32 plans only).
  std::vector<complex32_t> send_buf32_, recv_buf32_;
  index_t send_total_ = 0, recv_total_ = 0;

  static constexpr int kTagRemap = 141;
};

/// Returns the local block of `field` (living on `src`) resampled onto the
/// grid of `dst`. One-shot convenience over ResamplePlan (builds and drops
/// the plan); continuation drivers that transfer repeatedly between the
/// same grids should hold a ResamplePlan instead. Collective.
grid::ScalarField spectral_resample(grid::PencilDecomp& src,
                                    std::span<const real_t> field,
                                    grid::PencilDecomp& dst);

/// Component-wise resampling of a vector field (e.g. a velocity for
/// coarse-to-fine warm starts); all three components ride one batched
/// transfer.
grid::VectorField spectral_resample(grid::PencilDecomp& src,
                                    const grid::VectorField& field,
                                    grid::PencilDecomp& dst);

}  // namespace diffreg::spectral
