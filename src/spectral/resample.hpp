// Spectral resampling between grids (restriction / prolongation).
//
// The paper names "grid continuation and multilevel preconditioning" as the
// remedy for the preconditioner's beta sensitivity (section I, Limitations).
// This utility provides the grid-transfer half: a field on one pencil
// decomposition is mapped onto another decomposition with different grid
// dimensions by Fourier truncation (coarsening) or zero padding
// (refinement). Band-limited fields transfer exactly.
//
// Setup-phase utility: it gathers the full field on every rank (one
// broadcast), so it is meant for continuation drivers, not inner loops.
#pragma once

#include <span>

#include "grid/decomposition.hpp"
#include "grid/field_math.hpp"

namespace diffreg::spectral {

/// Returns the local block of `field` (living on `src`) resampled onto the
/// grid of `dst`. Collective over both decompositions' communicators (which
/// must wrap the same rank set).
grid::ScalarField spectral_resample(grid::PencilDecomp& src,
                                    std::span<const real_t> field,
                                    grid::PencilDecomp& dst);

/// Component-wise resampling of a vector field (e.g. a velocity for
/// coarse-to-fine warm starts).
grid::VectorField spectral_resample(grid::PencilDecomp& src,
                                    const grid::VectorField& field,
                                    grid::PencilDecomp& dst);

}  // namespace diffreg::spectral
