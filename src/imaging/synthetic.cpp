#include "imaging/synthetic.hpp"

#include <cmath>

#include "semilag/transport.hpp"

namespace diffreg::imaging {

namespace {

/// Applies fn(x1, x2, x3) over the locally owned block.
template <typename F>
void fill_local(grid::PencilDecomp& decomp, ScalarField& out, F&& fn) {
  const Int3 dims = decomp.dims();
  const Int3 ld = decomp.local_real_dims();
  const real_t h1 = kTwoPi / dims[0], h2 = kTwoPi / dims[1],
               h3 = kTwoPi / dims[2];
  const index_t lo1 = decomp.range1().begin, lo2 = decomp.range2().begin;
  out.resize(decomp.local_real_size());
  index_t idx = 0;
  for (index_t i1 = 0; i1 < ld[0]; ++i1) {
    const real_t x1 = (lo1 + i1) * h1;
    for (index_t i2 = 0; i2 < ld[1]; ++i2) {
      const real_t x2 = (lo2 + i2) * h2;
      for (index_t i3 = 0; i3 < ld[2]; ++i3, ++idx)
        out[idx] = fn(x1, x2, i3 * h3);
    }
  }
}

}  // namespace

ScalarField synthetic_template(grid::PencilDecomp& decomp) {
  ScalarField out;
  fill_local(decomp, out, [](real_t x1, real_t x2, real_t x3) {
    const real_t s1 = std::sin(x1), s2 = std::sin(x2), s3 = std::sin(x3);
    return (s1 * s1 + s2 * s2 + s3 * s3) / 3;
  });
  return out;
}

VectorField synthetic_velocity(grid::PencilDecomp& decomp, real_t amplitude) {
  VectorField v(decomp.local_real_size());
  ScalarField c;
  fill_local(decomp, c, [&](real_t x1, real_t x2, real_t) {
    return amplitude * std::cos(x1) * std::sin(x2);
  });
  v[0] = c;
  fill_local(decomp, c, [&](real_t x1, real_t x2, real_t) {
    return amplitude * std::cos(x2) * std::sin(x1);
  });
  v[1] = c;
  fill_local(decomp, c, [&](real_t x1, real_t, real_t x3) {
    return amplitude * std::cos(x1) * std::sin(x3);
  });
  v[2] = c;
  return v;
}

VectorField synthetic_velocity_divfree(grid::PencilDecomp& decomp,
                                       real_t amplitude) {
  VectorField v(decomp.local_real_size());
  ScalarField c;
  fill_local(decomp, c, [&](real_t, real_t x2, real_t x3) {
    return amplitude * std::cos(x2) * std::sin(x3);
  });
  v[0] = c;
  fill_local(decomp, c, [&](real_t x1, real_t, real_t x3) {
    return amplitude * std::cos(x3) * std::sin(x1);
  });
  v[1] = c;
  fill_local(decomp, c, [&](real_t x1, real_t x2, real_t) {
    return amplitude * std::cos(x1) * std::sin(x2);
  });
  v[2] = c;
  return v;
}

ScalarField make_reference(spectral::SpectralOps& ops,
                           const ScalarField& rho_t, const VectorField& v,
                           int nt) {
  semilag::TransportConfig tc;
  tc.nt = nt;
  semilag::Transport transport(ops, tc);
  transport.set_velocity(v);
  transport.solve_state(rho_t);
  return transport.final_state();
}

ScalarField sphere_phantom(grid::PencilDecomp& decomp, const Vec3& center,
                           real_t radius, real_t edge) {
  ScalarField out;
  fill_local(decomp, out, [&](real_t x1, real_t x2, real_t x3) {
    const Vec3 d{x1 - center[0], x2 - center[1], x3 - center[2]};
    const real_t r = d.norm();
    return real_t(1) / (1 + std::exp((r - radius) / edge));
  });
  return out;
}

ScalarField brain_phantom(grid::PencilDecomp& decomp, unsigned subject) {
  // Subject-specific smooth warp parameters from a tiny deterministic LCG.
  auto lcg = [state = subject * 2654435761u + 12345u]() mutable {
    state = state * 1664525u + 1013904223u;
    return static_cast<real_t>(state >> 8) /
           static_cast<real_t>(1u << 24);  // in [0, 1)
  };
  real_t wa[6], wp[6];
  for (int i = 0; i < 6; ++i) {
    wa[i] = real_t(0.08) + real_t(0.10) * lcg();  // warp amplitudes
    wp[i] = kTwoPi * lcg();                       // warp phases
  }
  const real_t fold_freq = 7 + std::floor(3 * lcg());
  const real_t fold_amp = real_t(0.06) + real_t(0.04) * lcg();
  const real_t vent_scale = real_t(0.85) + real_t(0.3) * lcg();

  ScalarField out;
  const Vec3 c{kTwoPi / 2, kTwoPi / 2, kTwoPi / 2};
  fill_local(decomp, out, [&](real_t x1, real_t x2, real_t x3) {
    // Smooth subject-specific anatomical warp of the coordinates.
    const real_t y1 =
        x1 + wa[0] * std::sin(x2 + wp[0]) + wa[1] * std::sin(2 * x3 + wp[1]);
    const real_t y2 =
        x2 + wa[2] * std::sin(x3 + wp[2]) + wa[3] * std::sin(2 * x1 + wp[3]);
    const real_t y3 =
        x3 + wa[4] * std::sin(x1 + wp[4]) + wa[5] * std::sin(2 * x2 + wp[5]);

    // Head: ellipsoid radius in a slightly anisotropic norm.
    const real_t d1 = (y1 - c[0]) / real_t(1.00);
    const real_t d2 = (y2 - c[1]) / real_t(1.20);
    const real_t d3 = (y3 - c[2]) / real_t(0.95);
    const real_t r = std::sqrt(d1 * d1 + d2 * d2 + d3 * d3);
    const real_t theta = std::atan2(d2, d1);
    const real_t phi = std::atan2(d3, std::sqrt(d1 * d1 + d2 * d2));

    const real_t skull_r = real_t(1.9);
    const real_t cortex_r =
        real_t(1.65) +
        fold_amp * std::sin(fold_freq * theta) * std::cos(real_t(0.5) * fold_freq * phi);
    const real_t vent_r = real_t(0.55) * vent_scale;

    auto sigmoid = [](real_t t) { return real_t(1) / (1 + std::exp(-t)); };
    const real_t sharp = 18;

    // Tissue classes: background 0, CSF rim 0.35, gray 0.6, white 0.9,
    // ventricles 0.15.
    real_t intensity = 0;
    intensity += real_t(0.35) * sigmoid(sharp * (skull_r - r));       // inside skull
    intensity += real_t(0.25) * sigmoid(sharp * (cortex_r - r));      // gray matter
    intensity += real_t(0.30) * sigmoid(sharp * (cortex_r * real_t(0.82) - r));
    intensity -= real_t(0.75) * sigmoid(sharp * (vent_r - r));        // ventricles
    return std::max(real_t(0), intensity);
  });
  return out;
}

}  // namespace diffreg::imaging
