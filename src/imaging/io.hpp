// Minimal volume/slice IO: raw volumes with a MetaImage-style text header,
// PGM grayscale slice dumps (used to render the paper's figure panels), and
// CSV series. All functions operate on full (gathered) arrays and are
// intended for rank 0.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace diffreg::imaging {

/// Writes `full` as <path>.raw plus a small <path>.mhd-style header.
void write_raw_volume(const std::string& path, const Int3& dims,
                      std::span<const real_t> full);

/// Reads a volume written by write_raw_volume. Throws on size mismatch.
std::vector<real_t> read_raw_volume(const std::string& path,
                                    const Int3& dims);

/// Writes the axial slice i1 = `slice` of a [N1][N2][N3] volume as an 8-bit
/// PGM image (N2 x N3), normalized to [lo, hi] (hi <= lo -> auto range).
void write_pgm_slice(const std::string& path, const Int3& dims,
                     std::span<const real_t> full, index_t slice,
                     real_t lo = 0, real_t hi = -1);

/// Writes rows of (label, values...) as CSV.
void write_csv(const std::string& path,
               const std::vector<std::string>& header,
               const std::vector<std::vector<real_t>>& rows);

}  // namespace diffreg::imaging
