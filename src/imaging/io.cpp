#include "imaging/io.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace diffreg::imaging {

void write_raw_volume(const std::string& path, const Int3& dims,
                      std::span<const real_t> full) {
  if (static_cast<index_t>(full.size()) != dims.prod())
    throw std::invalid_argument("write_raw_volume: size mismatch");
  {
    std::ofstream raw(path + ".raw", std::ios::binary);
    if (!raw) throw std::runtime_error("cannot open " + path + ".raw");
    raw.write(reinterpret_cast<const char*>(full.data()),
              static_cast<std::streamsize>(full.size() * sizeof(real_t)));
  }
  std::ofstream hdr(path + ".mhd");
  hdr << "ObjectType = Image\nNDims = 3\n"
      << "DimSize = " << dims[0] << ' ' << dims[1] << ' ' << dims[2] << '\n'
      << "ElementType = MET_DOUBLE\n"
      << "ElementDataFile = " << path << ".raw\n";
}

std::vector<real_t> read_raw_volume(const std::string& path,
                                    const Int3& dims) {
  std::ifstream raw(path + ".raw", std::ios::binary);
  if (!raw) throw std::runtime_error("cannot open " + path + ".raw");
  std::vector<real_t> full(dims.prod());
  raw.read(reinterpret_cast<char*>(full.data()),
           static_cast<std::streamsize>(full.size() * sizeof(real_t)));
  if (raw.gcount() !=
      static_cast<std::streamsize>(full.size() * sizeof(real_t)))
    throw std::runtime_error("read_raw_volume: truncated file " + path);
  return full;
}

void write_pgm_slice(const std::string& path, const Int3& dims,
                     std::span<const real_t> full, index_t slice, real_t lo,
                     real_t hi) {
  if (slice < 0 || slice >= dims[0])
    throw std::invalid_argument("write_pgm_slice: slice out of range");
  const real_t* plane = full.data() + slice * dims[1] * dims[2];
  const index_t n = dims[1] * dims[2];
  if (hi <= lo) {
    lo = *std::min_element(plane, plane + n);
    hi = *std::max_element(plane, plane + n);
    if (hi <= lo) hi = lo + 1;
  }
  std::ofstream pgm(path, std::ios::binary);
  if (!pgm) throw std::runtime_error("cannot open " + path);
  pgm << "P5\n" << dims[2] << ' ' << dims[1] << "\n255\n";
  std::vector<unsigned char> bytes(n);
  for (index_t i = 0; i < n; ++i) {
    const real_t t = std::clamp((plane[i] - lo) / (hi - lo), real_t(0),
                                real_t(1));
    bytes[i] = static_cast<unsigned char>(t * 255 + real_t(0.5));
  }
  pgm.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void write_csv(const std::string& path,
               const std::vector<std::string>& header,
               const std::vector<std::vector<real_t>>& rows) {
  std::ofstream csv(path);
  if (!csv) throw std::runtime_error("cannot open " + path);
  for (size_t i = 0; i < header.size(); ++i)
    csv << header[i] << (i + 1 < header.size() ? ',' : '\n');
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i)
      csv << row[i] << (i + 1 < row.size() ? ',' : '\n');
  }
}

}  // namespace diffreg::imaging
