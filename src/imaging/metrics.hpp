// Registration quality metrics reported in the paper's figures.
#pragma once

#include "grid/field_math.hpp"

namespace diffreg::imaging {

/// ||a - b|| / ||a0 - b|| style relative residual used throughout the
/// evaluation: mismatch of the deformed template relative to the initial
/// mismatch. Collective.
inline real_t relative_residual(grid::PencilDecomp& decomp,
                                std::span<const real_t> deformed,
                                std::span<const real_t> reference,
                                std::span<const real_t> original) {
  grid::ScalarField diff(deformed.size());
  for (size_t i = 0; i < deformed.size(); ++i)
    diff[i] = deformed[i] - reference[i];
  const real_t after = grid::norm_l2(decomp, diff);
  for (size_t i = 0; i < original.size(); ++i)
    diff[i] = original[i] - reference[i];
  const real_t before = grid::norm_l2(decomp, diff);
  return before > 0 ? after / before : real_t(0);
}

/// Max-normalized L-infinity mismatch (a secondary metric for tests).
inline real_t max_abs_difference(grid::PencilDecomp& decomp,
                                 std::span<const real_t> a,
                                 std::span<const real_t> b) {
  grid::ScalarField diff(a.size());
  for (size_t i = 0; i < a.size(); ++i) diff[i] = a[i] - b[i];
  return grid::norm_inf(decomp, diff);
}

}  // namespace diffreg::imaging
