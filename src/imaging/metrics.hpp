// Registration quality metrics reported in the paper's figures.
#pragma once

#include "grid/field_math.hpp"

namespace diffreg::imaging {

/// ||a - b|| / ||a0 - b|| style relative residual used throughout the
/// evaluation: mismatch of the deformed template relative to the initial
/// mismatch. Collective.
inline real_t relative_residual(grid::PencilDecomp& decomp,
                                std::span<const real_t> deformed,
                                std::span<const real_t> reference,
                                std::span<const real_t> original) {
  // Both squared sums ride one vector allreduce instead of two scalar
  // collectives, accumulated in place so no grid-sized temporaries are made
  // (the volume element cancels in the ratio).
  std::vector<real_t> sums(2, 0);
  for (size_t i = 0; i < deformed.size(); ++i) {
    const real_t d = deformed[i] - reference[i];
    sums[0] += d * d;
  }
  for (size_t i = 0; i < original.size(); ++i) {
    const real_t d = original[i] - reference[i];
    sums[1] += d * d;
  }
  decomp.comm().set_time_kind(TimeKind::kOther);
  decomp.comm().allreduce_sum(sums);
  return sums[1] > 0 ? std::sqrt(sums[0] / sums[1]) : real_t(0);
}

/// Max-normalized L-infinity mismatch (a secondary metric for tests).
inline real_t max_abs_difference(grid::PencilDecomp& decomp,
                                 std::span<const real_t> a,
                                 std::span<const real_t> b) {
  grid::ScalarField diff(a.size());
  for (size_t i = 0; i < a.size(); ++i) diff[i] = a[i] - b[i];
  return grid::norm_inf(decomp, diff);
}

}  // namespace diffreg::imaging
