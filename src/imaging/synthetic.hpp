// Synthetic registration problems (paper section IV-A1) and procedural
// "brain" phantoms that stand in for the NIREP MRI data (see DESIGN.md,
// substitutions table).
//
// All generators evaluate a closed-form intensity function on the locally
// owned pencil block, so they scale to any decomposition without IO.
#pragma once

#include "grid/decomposition.hpp"
#include "grid/field_math.hpp"
#include "spectral/operators.hpp"

namespace diffreg::imaging {

using grid::ScalarField;
using grid::VectorField;

/// Paper's synthetic template: rho_T = (sin^2 x1 + sin^2 x2 + sin^2 x3) / 3.
ScalarField synthetic_template(grid::PencilDecomp& decomp);

/// Paper's synthetic velocity
/// v* = (cos x1 sin x2, cos x2 sin x1, cos x1 sin x3)^T, scaled by
/// `amplitude`.
VectorField synthetic_velocity(grid::PencilDecomp& decomp,
                               real_t amplitude = 1);

/// Divergence-free variant (ABC-type flow)
/// v* = (cos x2 sin x3, cos x3 sin x1, cos x1 sin x2)^T * amplitude;
/// div v* = 0 analytically (paper footnote 5).
VectorField synthetic_velocity_divfree(grid::PencilDecomp& decomp,
                                       real_t amplitude = 1);

/// Reference image: solves the forward problem (2b) with the given velocity,
/// i.e. rho_R = rho(1) (the paper's construction for the scaling studies).
ScalarField make_reference(spectral::SpectralOps& ops,
                           const ScalarField& rho_t, const VectorField& v,
                           int nt = 4);

/// Smooth sphere phantom: intensity 1 inside radius r (physical units),
/// sigmoidal falloff of width `edge`.
ScalarField sphere_phantom(grid::PencilDecomp& decomp, const Vec3& center,
                           real_t radius, real_t edge = 0.15);

/// Procedural brain-like phantom: skull/CSF rim, cortical band with
/// sinusoidal folds, white-matter interior, dark ventricles. `subject`
/// seeds a smooth anatomical warp, so different subjects are genuinely
/// different anatomies (multi-subject registration, paper section IV-C).
ScalarField brain_phantom(grid::PencilDecomp& decomp, unsigned subject);

}  // namespace diffreg::imaging
