// Distributed vector-space operations on pencil-local field blocks.
// Local loops + one allreduce for reductions; the L2 inner products use the
// grid volume element h1*h2*h3 of the [0,2*pi)^3 domain.
#pragma once

#include <array>
#include <cmath>
#include <span>
#include <vector>

#include "grid/decomposition.hpp"

namespace diffreg::grid {

using ScalarField = std::vector<real_t>;

/// Velocity / displacement field: three scalar components on the same block.
struct VectorField {
  std::array<ScalarField, 3> comp;

  VectorField() = default;
  explicit VectorField(index_t local_size) {
    for (auto& c : comp) c.assign(local_size, real_t(0));
  }
  index_t local_size() const { return static_cast<index_t>(comp[0].size()); }
  ScalarField& operator[](int d) { return comp[d]; }
  const ScalarField& operator[](int d) const { return comp[d]; }

  void fill(real_t value) {
    for (auto& c : comp) c.assign(c.size(), value);
  }
};

/// Volume element of one grid cell.
inline real_t cell_volume(const Int3& dims) {
  return (kTwoPi / dims[0]) * (kTwoPi / dims[1]) * (kTwoPi / dims[2]);
}

/// Distributed L2 inner product <a, b> (collective).
inline real_t dot(PencilDecomp& decomp, std::span<const real_t> a,
                  std::span<const real_t> b) {
  real_t local = 0;
  for (size_t i = 0; i < a.size(); ++i) local += a[i] * b[i];
  decomp.comm().set_time_kind(TimeKind::kOther);
  return decomp.comm().allreduce_sum(local) * cell_volume(decomp.dims());
}

inline real_t dot(PencilDecomp& decomp, const VectorField& a,
                  const VectorField& b) {
  real_t local = 0;
  for (int d = 0; d < 3; ++d)
    for (size_t i = 0; i < a[d].size(); ++i) local += a[d][i] * b[d][i];
  decomp.comm().set_time_kind(TimeKind::kOther);
  return decomp.comm().allreduce_sum(local) * cell_volume(decomp.dims());
}

inline real_t norm_l2(PencilDecomp& decomp, std::span<const real_t> a) {
  return std::sqrt(dot(decomp, a, a));
}

inline real_t norm_l2(PencilDecomp& decomp, const VectorField& a) {
  return std::sqrt(dot(decomp, a, a));
}

/// Distributed max |a_i| (collective).
inline real_t norm_inf(PencilDecomp& decomp, std::span<const real_t> a) {
  real_t local = 0;
  for (real_t v : a) local = std::max(local, std::abs(v));
  decomp.comm().set_time_kind(TimeKind::kOther);
  return decomp.comm().allreduce_max(local);
}

inline real_t norm_inf(PencilDecomp& decomp, const VectorField& a) {
  real_t local = 0;
  for (int d = 0; d < 3; ++d)
    for (real_t v : a[d]) local = std::max(local, std::abs(v));
  decomp.comm().set_time_kind(TimeKind::kOther);
  return decomp.comm().allreduce_max(local);
}

// Local (no communication) BLAS-1 style helpers.

inline void axpy(real_t alpha, std::span<const real_t> x,
                 std::span<real_t> y) {
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

inline void axpy(real_t alpha, const VectorField& x, VectorField& y) {
  for (int d = 0; d < 3; ++d) axpy(alpha, x[d], y[d]);
}

inline void scale(real_t alpha, std::span<real_t> x) {
  for (auto& v : x) v *= alpha;
}

inline void scale(real_t alpha, VectorField& x) {
  for (int d = 0; d < 3; ++d) scale(alpha, x[d]);
}

/// y = x (sizes must match).
inline void copy(const VectorField& x, VectorField& y) {
  for (int d = 0; d < 3; ++d) y[d] = x[d];
}

/// Sizes x to n and zeroes it, reusing the existing storage when the size
/// already matches (hot-path accumulator reset without reallocation).
inline void resize_zero(VectorField& x, index_t n) {
  if (x.local_size() != n)
    x = VectorField(n);
  else
    x.fill(real_t(0));
}

}  // namespace diffreg::grid
