// Distributed vector-space operations on pencil-local field blocks.
// Local loops + one allreduce for reductions; the L2 inner products use the
// grid volume element h1*h2*h3 of the [0,2*pi)^3 domain.
//
// Fields come in two storage precisions: the solver's native fp64
// (ScalarField / VectorField) and the fp32 variants (ScalarField32 /
// VectorField32) that back the mixed-precision inner Krylov solve. The
// converting copy overloads narrow/widen between them, and every reduction
// over fp32 operands accumulates in fp64 (one double allreduce), so norms
// and dot products lose nothing to the storage precision.
#pragma once

#include <array>
#include <cmath>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/precision.hpp"
#include "grid/decomposition.hpp"

namespace diffreg::grid {

using ScalarField = std::vector<real_t>;
using ScalarField32 = std::vector<real32_t>;

/// Velocity / displacement field: three scalar components on the same
/// block, parameterized over the storage scalar.
template <typename T>
struct BasicVectorField {
  std::array<std::vector<T>, 3> comp;

  BasicVectorField() = default;
  explicit BasicVectorField(index_t local_size) {
    for (auto& c : comp) c.assign(local_size, T(0));
  }
  index_t local_size() const { return static_cast<index_t>(comp[0].size()); }
  std::vector<T>& operator[](int d) { return comp[d]; }
  const std::vector<T>& operator[](int d) const { return comp[d]; }

  void fill(T value) {
    for (auto& c : comp) c.assign(c.size(), value);
  }
};

using VectorField = BasicVectorField<real_t>;
/// fp32 storage variant (inner-Krylov work vectors of the mixed solve).
using VectorField32 = BasicVectorField<real32_t>;

/// Volume element of one grid cell.
inline real_t cell_volume(const Int3& dims) {
  return (kTwoPi / dims[0]) * (kTwoPi / dims[1]) * (kTwoPi / dims[2]);
}

/// Distributed L2 inner product <a, b> (collective).
inline real_t dot(PencilDecomp& decomp, std::span<const real_t> a,
                  std::span<const real_t> b) {
  real_t local = 0;
  for (size_t i = 0; i < a.size(); ++i) local += a[i] * b[i];
  decomp.comm().set_time_kind(TimeKind::kOther);
  return decomp.comm().allreduce_sum(local) * cell_volume(decomp.dims());
}

inline real_t dot(PencilDecomp& decomp, const VectorField& a,
                  const VectorField& b) {
  real_t local = 0;
  for (int d = 0; d < 3; ++d)
    for (size_t i = 0; i < a[d].size(); ++i) local += a[d][i] * b[d][i];
  decomp.comm().set_time_kind(TimeKind::kOther);
  return decomp.comm().allreduce_sum(local) * cell_volume(decomp.dims());
}

inline real_t norm_l2(PencilDecomp& decomp, std::span<const real_t> a) {
  return std::sqrt(dot(decomp, a, a));
}

inline real_t norm_l2(PencilDecomp& decomp, const VectorField& a) {
  return std::sqrt(dot(decomp, a, a));
}

/// Distributed L2 inner product of fp32-stored fields. The local sum (and
/// every product) accumulates in fp64 and the allreduce carries doubles, so
/// only the operand storage is single precision.
inline real_t dot(PencilDecomp& decomp, const VectorField32& a,
                  const VectorField32& b) {
  real_t local = 0;
  for (int d = 0; d < 3; ++d)
    for (size_t i = 0; i < a[d].size(); ++i)
      local += static_cast<real_t>(a[d][i]) * static_cast<real_t>(b[d][i]);
  decomp.comm().set_time_kind(TimeKind::kOther);
  return decomp.comm().allreduce_sum(local) * cell_volume(decomp.dims());
}

inline real_t norm_l2(PencilDecomp& decomp, const VectorField32& a) {
  return std::sqrt(dot(decomp, a, a));
}

/// Distributed max |a_i| (collective).
inline real_t norm_inf(PencilDecomp& decomp, std::span<const real_t> a) {
  real_t local = 0;
  for (real_t v : a) local = std::max(local, std::abs(v));
  decomp.comm().set_time_kind(TimeKind::kOther);
  return decomp.comm().allreduce_max(local);
}

inline real_t norm_inf(PencilDecomp& decomp, const VectorField& a) {
  real_t local = 0;
  for (int d = 0; d < 3; ++d)
    for (real_t v : a[d]) local = std::max(local, std::abs(v));
  decomp.comm().set_time_kind(TimeKind::kOther);
  return decomp.comm().allreduce_max(local);
}

// Local (no communication) BLAS-1 style helpers.

inline void axpy(real_t alpha, std::span<const real_t> x,
                 std::span<real_t> y) {
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

inline void axpy(real_t alpha, const VectorField& x, VectorField& y) {
  for (int d = 0; d < 3; ++d) axpy(alpha, x[d], y[d]);
}

/// fp32-storage axpy of the mixed-precision Krylov recurrence: the update
/// arithmetic runs at fp32 (the CLAIRE trade), only reductions stay fp64.
inline void axpy(real_t alpha, std::span<const real32_t> x,
                 std::span<real32_t> y) {
  const real32_t a = static_cast<real32_t>(alpha);
  for (size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

inline void axpy(real_t alpha, const VectorField32& x, VectorField32& y) {
  for (int d = 0; d < 3; ++d)
    axpy(alpha, std::span<const real32_t>(x[d]), std::span<real32_t>(y[d]));
}

inline void scale(real_t alpha, std::span<real_t> x) {
  for (auto& v : x) v *= alpha;
}

inline void scale(real_t alpha, VectorField& x) {
  for (int d = 0; d < 3; ++d) scale(alpha, x[d]);
}

/// y = x (sizes must match).
inline void copy(const VectorField& x, VectorField& y) {
  for (int d = 0; d < 3; ++d) y[d] = x[d];
}

/// Converting copy between storage precisions (narrowing fp64 -> fp32 or
/// widening fp32 -> fp64); resizes y to match.
template <typename A, typename B>
inline void copy(const BasicVectorField<A>& x, BasicVectorField<B>& y) {
  for (int d = 0; d < 3; ++d) {
    y[d].resize(x[d].size());
    for (size_t i = 0; i < x[d].size(); ++i)
      y[d][i] = static_cast<B>(x[d][i]);
  }
}

/// Sizes x to n and zeroes it, reusing the existing storage when the size
/// already matches (hot-path accumulator reset without reallocation).
template <typename T>
inline void resize_zero(BasicVectorField<T>& x, index_t n) {
  if (x.local_size() != n)
    x = BasicVectorField<T>(n);
  else
    x.fill(T(0));
}

// Numerical safeguards (the opt-in --guard sweeps of the fault-tolerant
// runtime; docs/FAULT_MODEL.md).

/// Raised by validate_finite. The throw is COLLECTIVE: the non-finite count
/// is allreduced first, so every rank throws together (a one-sided throw
/// would strand its peers mid-communication-schedule).
class NonFiniteFieldError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Local count of NaN/Inf entries (no communication).
inline index_t count_nonfinite(std::span<const real_t> a) {
  index_t bad = 0;
  for (real_t v : a)
    if (!std::isfinite(v)) ++bad;
  return bad;
}

inline index_t count_nonfinite(const VectorField& a) {
  index_t bad = 0;
  for (int d = 0; d < 3; ++d)
    bad += count_nonfinite(std::span<const real_t>(a[d]));
  return bad;
}

/// Collective finite sweep: allreduces the local non-finite count and throws
/// NonFiniteFieldError (on EVERY rank, naming `what` and the global count)
/// when any entry is NaN/Inf. One scalar allreduce — cheap enough for
/// Newton-iterate granularity.
inline void validate_finite(PencilDecomp& decomp, std::span<const real_t> a,
                            const char* what) {
  decomp.comm().set_time_kind(TimeKind::kOther);
  const index_t bad = decomp.comm().allreduce_sum(count_nonfinite(a));
  if (bad > 0)
    throw NonFiniteFieldError(std::string("non-finite values in ") + what +
                              ": " + std::to_string(bad) +
                              " entries across ranks");
}

inline void validate_finite(PencilDecomp& decomp, const VectorField& a,
                            const char* what) {
  decomp.comm().set_time_kind(TimeKind::kOther);
  const index_t bad = decomp.comm().allreduce_sum(count_nonfinite(a));
  if (bad > 0)
    throw NonFiniteFieldError(std::string("non-finite values in ") + what +
                              ": " + std::to_string(bad) +
                              " entries across ranks");
}

}  // namespace diffreg::grid
