// 2D pencil decomposition of the N1 x N2 x N3 grid over p = p1 x p2 ranks
// (paper Fig. 4, the AccFFT data layout).
//
// Real space:     dim 1 split over p1, dim 2 split over p2, dim 3 local.
//                 Local layout [n1loc][n2loc][N3], i3 fastest.
// Spectral space: after the 3D r2c transform the local layout is
//                 [n3c_loc][n2k_loc][N1], k1 fastest, where the Hermitian
//                 half-dimension k3 (size N3/2+1) is split over p2 and k2
//                 over p1. Both splits allow non-divisible sizes.
#pragma once

#include <cmath>
#include <stdexcept>

#include "common/partition.hpp"
#include "common/types.hpp"
#include "mpisim/communicator.hpp"

namespace diffreg::grid {

/// Chooses a near-square process grid p1 x p2 = p (p1 <= p2).
inline std::pair<int, int> choose_process_grid(int p) {
  int p1 = static_cast<int>(std::sqrt(static_cast<double>(p)));
  while (p1 > 1 && p % p1 != 0) --p1;
  return {p1, p / p1};
}

class PencilDecomp {
 public:
  /// Collective over `comm`: builds row/col sub-communicators.
  PencilDecomp(mpisim::Communicator comm, const Int3& dims, int p1, int p2)
      : comm_(comm), dims_(dims), p1_(p1), p2_(p2) {
    if (p1_ * p2_ != comm_.size())
      throw std::invalid_argument("PencilDecomp: p1 * p2 != communicator size");
    rank_ = comm_.rank();
    r1_ = rank_ / p2_;
    r2_ = rank_ % p2_;
    row_comm_ = comm_.split(/*color=*/r1_);  // varies r2, size p2
    col_comm_ = comm_.split(/*color=*/r2_);  // varies r1, size p1
    range1_ = block_range(dims_[0], p1_, r1_);
    range2_ = block_range(dims_[1], p2_, r2_);
    n3c_ = dims_[2] / 2 + 1;
    srange3_ = block_range(n3c_, p2_, r2_);
    srange2_ = block_range(dims_[1], p1_, r1_);
  }

  PencilDecomp(mpisim::Communicator comm, const Int3& dims)
      : PencilDecomp(comm, dims,
                     choose_process_grid(comm.size()).first,
                     choose_process_grid(comm.size()).second) {}

  mpisim::Communicator& comm() { return comm_; }
  mpisim::Communicator& row_comm() { return row_comm_; }
  mpisim::Communicator& col_comm() { return col_comm_; }

  /// Collective fault recovery across every communicator this decomposition
  /// exchanges on (parent, then row, then col — the same order on all
  /// ranks): each is quiesced and its stale in-flight messages drained (see
  /// mpisim::Communicator::recover_after_fault). Returns false when any of
  /// them is unrecoverable (a rank is truly down). Never throws.
  bool recover_after_fault(double timeout_ms) {
    bool ok = comm_.recover_after_fault(timeout_ms);
    ok = row_comm_.recover_after_fault(timeout_ms) && ok;
    ok = col_comm_.recover_after_fault(timeout_ms) && ok;
    return ok;
  }

  const Int3& dims() const { return dims_; }
  int p1() const { return p1_; }
  int p2() const { return p2_; }
  int rank() const { return rank_; }
  int r1() const { return r1_; }
  int r2() const { return r2_; }

  /// Owned real-space ranges (dim 3 is always fully local).
  const BlockRange& range1() const { return range1_; }
  const BlockRange& range2() const { return range2_; }
  Int3 local_real_dims() const {
    return {range1_.size(), range2_.size(), dims_[2]};
  }
  index_t local_real_size() const { return local_real_dims().prod(); }

  /// Owned spectral ranges: k3 in [srange3), k2 in [srange2), k1 full.
  index_t n3c() const { return n3c_; }
  const BlockRange& srange3() const { return srange3_; }
  const BlockRange& srange2() const { return srange2_; }
  Int3 local_spectral_dims() const {
    return {srange3_.size(), srange2_.size(), dims_[0]};
  }
  index_t local_spectral_size() const { return local_spectral_dims().prod(); }

  /// Rank owning real-space point (i1, i2) (dim 3 irrelevant).
  int owner_of(index_t i1, index_t i2) const {
    const int o1 = block_owner(i1, dims_[0], p1_);
    const int o2 = block_owner(i2, dims_[1], p2_);
    return o1 * p2_ + o2;
  }

  /// Rank at process-grid coordinates (c1, c2).
  int rank_of(int c1, int c2) const { return c1 * p2_ + c2; }

 private:
  mpisim::Communicator comm_, row_comm_, col_comm_;
  Int3 dims_;
  int p1_, p2_;
  int rank_ = 0, r1_ = 0, r2_ = 0;
  BlockRange range1_, range2_;
  index_t n3c_ = 0;
  BlockRange srange3_, srange2_;
};

}  // namespace diffreg::grid
