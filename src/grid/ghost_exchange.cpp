#include "grid/ghost_exchange.hpp"

#include <cassert>
#include <stdexcept>

namespace diffreg::grid {

GhostExchange::GhostExchange(PencilDecomp& decomp, index_t width,
                             TimeKind comm_kind)
    : decomp_(&decomp),
      width_(width),
      ldims_(decomp.local_real_dims()),
      comm_kind_(comm_kind) {
  // Single-neighbour halos: every rank's block must be at least as wide as
  // the halo, on every rank (uneven blocks differ by one).
  const index_t min1 = decomp.dims()[0] / decomp.p1();
  const index_t min2 = decomp.dims()[1] / decomp.p2();
  if (width_ > min1 || width_ > min2 || width_ > decomp.dims()[2])
    throw std::invalid_argument(
        "GhostExchange: halo width exceeds smallest local block");
  gdims_ = {ldims_[0] + 2 * width_, ldims_[1] + 2 * width_,
            ldims_[2] + 2 * width_};
}

void GhostExchange::exchange(std::span<const real_t> local,
                             std::vector<real_t>& ghosted) {
  assert(static_cast<index_t>(local.size()) == ldims_.prod());
  ghosted.assign(ghost_size(), real_t(0));
  const index_t w = width_;
  const index_t n3 = ldims_[2];

  // Interior copy + local periodic wrap along dim 3.
  for (index_t i1 = 0; i1 < ldims_[0]; ++i1) {
    for (index_t i2 = 0; i2 < ldims_[1]; ++i2) {
      const real_t* src = local.data() + (i1 * ldims_[1] + i2) * n3;
      real_t* dst =
          ghosted.data() + linear_index(i1 + w, i2 + w, 0, gdims_);
      for (index_t i3 = 0; i3 < n3; ++i3) dst[w + i3] = src[i3];
      for (index_t i3 = 0; i3 < w; ++i3) {
        dst[i3] = src[n3 - w + i3];          // low halo <- high interior
        dst[w + n3 + i3] = src[i3];          // high halo <- low interior
      }
    }
  }

  exchange_dim1(ghosted);
  exchange_dim2(ghosted);
}

void GhostExchange::exchange_dim1(std::vector<real_t>& ghosted) {
  // Slabs cover interior dim 2 and the already-wrapped dim 3.
  const index_t w = width_;
  const index_t slab = w * ldims_[1] * gdims_[2];
  const index_t n1l = ldims_[0];
  auto pack = [&](index_t i1_begin) {
    std::vector<real_t> buf(slab);
    index_t pos = 0;
    for (index_t i1 = i1_begin; i1 < i1_begin + w; ++i1)
      for (index_t i2 = 0; i2 < ldims_[1]; ++i2) {
        const real_t* src =
            ghosted.data() + linear_index(i1, i2 + w, 0, gdims_);
        for (index_t i3 = 0; i3 < gdims_[2]; ++i3) buf[pos++] = src[i3];
      }
    return buf;
  };
  auto unpack = [&](const std::vector<real_t>& buf, index_t i1_begin) {
    index_t pos = 0;
    for (index_t i1 = i1_begin; i1 < i1_begin + w; ++i1)
      for (index_t i2 = 0; i2 < ldims_[1]; ++i2) {
        real_t* dst = ghosted.data() + linear_index(i1, i2 + w, 0, gdims_);
        for (index_t i3 = 0; i3 < gdims_[2]; ++i3) dst[i3] = buf[pos++];
      }
  };

  const int p1 = decomp_->p1();
  if (p1 == 1) {
    unpack(pack(w + n1l - w), 0);      // low halo <- own high interior
    unpack(pack(w), w + n1l);          // high halo <- own low interior
    return;
  }
  auto& comm = decomp_->comm();
  comm.set_time_kind(comm_kind_);
  const int lo_nbr = decomp_->rank_of((decomp_->r1() - 1 + p1) % p1,
                                      decomp_->r2());
  const int hi_nbr = decomp_->rank_of((decomp_->r1() + 1) % p1,
                                      decomp_->r2());
  // My high interior goes to hi_nbr's low halo (travels "high", kTagHigh);
  // I receive my low halo from lo_nbr.
  auto high_interior = pack(w + n1l - w);
  auto low_halo = comm.sendrecv(std::span<const real_t>(high_interior),
                                hi_nbr, lo_nbr, kTagHigh);
  unpack(low_halo, 0);
  auto low_interior = pack(w);
  auto high_halo = comm.sendrecv(std::span<const real_t>(low_interior),
                                 lo_nbr, hi_nbr, kTagLow);
  unpack(high_halo, w + n1l);
}

void GhostExchange::exchange_dim2(std::vector<real_t>& ghosted) {
  // Slabs cover the FULL ghosted dim 1 (so corners come along) and dim 3.
  const index_t w = width_;
  const index_t slab = gdims_[0] * w * gdims_[2];
  const index_t n2l = ldims_[1];
  auto pack = [&](index_t i2_begin) {
    std::vector<real_t> buf(slab);
    index_t pos = 0;
    for (index_t i1 = 0; i1 < gdims_[0]; ++i1)
      for (index_t i2 = i2_begin; i2 < i2_begin + w; ++i2) {
        const real_t* src = ghosted.data() + linear_index(i1, i2, 0, gdims_);
        for (index_t i3 = 0; i3 < gdims_[2]; ++i3) buf[pos++] = src[i3];
      }
    return buf;
  };
  auto unpack = [&](const std::vector<real_t>& buf, index_t i2_begin) {
    index_t pos = 0;
    for (index_t i1 = 0; i1 < gdims_[0]; ++i1)
      for (index_t i2 = i2_begin; i2 < i2_begin + w; ++i2) {
        real_t* dst = ghosted.data() + linear_index(i1, i2, 0, gdims_);
        for (index_t i3 = 0; i3 < gdims_[2]; ++i3) dst[i3] = buf[pos++];
      }
  };

  const int p2 = decomp_->p2();
  if (p2 == 1) {
    unpack(pack(w + n2l - w), 0);
    unpack(pack(w), w + n2l);
    return;
  }
  auto& comm = decomp_->comm();
  comm.set_time_kind(comm_kind_);
  const int lo_nbr = decomp_->rank_of(decomp_->r1(),
                                      (decomp_->r2() - 1 + p2) % p2);
  const int hi_nbr = decomp_->rank_of(decomp_->r1(),
                                      (decomp_->r2() + 1) % p2);
  auto high_interior = pack(w + n2l - w);
  auto low_halo = comm.sendrecv(std::span<const real_t>(high_interior),
                                hi_nbr, lo_nbr, kTagHigh);
  unpack(low_halo, 0);
  auto low_interior = pack(w);
  auto high_halo = comm.sendrecv(std::span<const real_t>(low_interior),
                                 lo_nbr, hi_nbr, kTagLow);
  unpack(high_halo, w + n2l);
}

}  // namespace diffreg::grid
