#include "grid/ghost_exchange.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace diffreg::grid {

GhostExchange::GhostExchange(PencilDecomp& decomp, index_t width,
                             TimeKind comm_kind, WirePrecision wire,
                             bool overlap)
    : decomp_(&decomp),
      width_(width),
      ldims_(decomp.local_real_dims()),
      comm_kind_(comm_kind),
      wire_(wire),
      overlap_(overlap) {
  // Single-neighbour halos: every rank's block must be at least as wide as
  // the halo, on every rank (uneven blocks differ by one).
  const index_t min1 = decomp.dims()[0] / decomp.p1();
  const index_t min2 = decomp.dims()[1] / decomp.p2();
  if (width_ > min1 || width_ > min2 || width_ > decomp.dims()[2])
    throw std::invalid_argument(
        "GhostExchange: halo width exceeds smallest local block");
  gdims_ = {ldims_[0] + 2 * width_, ldims_[1] + 2 * width_,
            ldims_[2] + 2 * width_};
}

void GhostExchange::ensure_slab_capacity(int nfields) {
  const index_t slab1 = width_ * ldims_[1] * gdims_[2];
  const index_t slab2 = gdims_[0] * width_ * gdims_[2];
  const size_t need =
      static_cast<size_t>(std::max(slab1, slab2)) * nfields;
  if (pack_buf_.size() < need) pack_buf_.resize(need);
  if (recv_buf_.size() < need) recv_buf_.resize(need);
  if (wire_ == WirePrecision::kF32) {
    if (pack32_.size() < need) pack32_.resize(need);
    if (recv32_.size() < need) recv32_.resize(need);
  }
}

void GhostExchange::slab_sendrecv(std::span<const real_t> buf, int dest,
                                  std::span<real_t> halo, int src, int tag) {
  auto& comm = decomp_->comm();
  if (wire_ == WirePrecision::kF32) {
    comm.send_narrowed(buf, std::span<real32_t>(pack32_.data(), buf.size()),
                       dest, tag);
    comm.recv_widened(halo, std::span<real32_t>(recv32_.data(), halo.size()),
                      src, tag);
  } else {
    comm.send(buf, dest, tag);
    comm.recv_into(halo, src, tag);
  }
}

mpisim::CommRequest GhostExchange::slab_isendrecv(std::span<const real_t> buf,
                                                  int dest,
                                                  std::span<real_t> halo,
                                                  int src, int tag) {
  auto& comm = decomp_->comm();
  if (wire_ == WirePrecision::kF32) {
    comm.isend_narrowed(buf, std::span<real32_t>(pack32_.data(), buf.size()),
                        dest, tag);
    return comm.irecv_widened(
        halo, std::span<real32_t>(recv32_.data(), halo.size()), src, tag);
  }
  comm.send(buf, dest, tag);
  return comm.irecv_into(halo, src, tag);
}

void GhostExchange::exchange(std::span<const real_t> local,
                             std::vector<real_t>& ghosted) {
  assert(static_cast<index_t>(local.size()) == ldims_.prod());
  if (ghosted.size() != static_cast<size_t>(ghost_size()))
    ghosted.resize(ghost_size());
  const real_t* locals[1] = {local.data()};
  exchange_many(std::span<const real_t* const>(locals, 1), ghosted);
}

void GhostExchange::exchange_many(std::span<const real_t* const> locals,
                                  std::span<real_t> ghosted) {
  const int m = static_cast<int>(locals.size());
  assert(static_cast<index_t>(ghosted.size()) == m * ghost_size());
  ensure_slab_capacity(m);
  const index_t w = width_;
  const index_t n3 = ldims_[2];
  const index_t gsize = ghost_size();

  // Interior copy + local periodic wrap along dim 3, one block per field.
  for (int f = 0; f < m; ++f) {
    const real_t* local = locals[f];
    real_t* gblock = ghosted.data() + f * gsize;
    for (index_t i1 = 0; i1 < ldims_[0]; ++i1) {
      for (index_t i2 = 0; i2 < ldims_[1]; ++i2) {
        const real_t* src = local + (i1 * ldims_[1] + i2) * n3;
        real_t* dst = gblock + linear_index(i1 + w, i2 + w, 0, gdims_);
        for (index_t i3 = 0; i3 < n3; ++i3) dst[w + i3] = src[i3];
        for (index_t i3 = 0; i3 < w; ++i3) {
          dst[i3] = src[n3 - w + i3];          // low halo <- high interior
          dst[w + n3 + i3] = src[i3];          // high halo <- low interior
        }
      }
    }
  }

  exchange_dim1(ghosted, m);
  exchange_dim2(ghosted, m);
}

void GhostExchange::exchange_dim1(std::span<real_t> ghosted, int nfields) {
  // Slabs cover interior dim 2 and the already-wrapped dim 3; all fields of
  // the batch are packed back to back into the same message.
  const index_t w = width_;
  const index_t slab = w * ldims_[1] * gdims_[2];
  const index_t n1l = ldims_[0];
  const index_t gsize = ghost_size();
  auto pack = [&](std::span<real_t> buf, index_t i1_begin) {
    index_t pos = 0;
    for (int f = 0; f < nfields; ++f) {
      const real_t* gblock = ghosted.data() + f * gsize;
      for (index_t i1 = i1_begin; i1 < i1_begin + w; ++i1)
        for (index_t i2 = 0; i2 < ldims_[1]; ++i2) {
          const real_t* src = gblock + linear_index(i1, i2 + w, 0, gdims_);
          for (index_t i3 = 0; i3 < gdims_[2]; ++i3) buf[pos++] = src[i3];
        }
    }
  };
  auto unpack = [&](std::span<const real_t> buf, index_t i1_begin) {
    index_t pos = 0;
    for (int f = 0; f < nfields; ++f) {
      real_t* gblock = ghosted.data() + f * gsize;
      for (index_t i1 = i1_begin; i1 < i1_begin + w; ++i1)
        for (index_t i2 = 0; i2 < ldims_[1]; ++i2) {
          real_t* dst = gblock + linear_index(i1, i2 + w, 0, gdims_);
          for (index_t i3 = 0; i3 < gdims_[2]; ++i3) dst[i3] = buf[pos++];
        }
    }
  };

  const index_t msg = slab * nfields;
  const std::span<real_t> send_buf(pack_buf_.data(), msg);
  const std::span<real_t> halo_buf(recv_buf_.data(), msg);
  const int p1 = decomp_->p1();
  if (p1 == 1) {
    pack(send_buf, w + n1l - w);       // low halo <- own high interior
    unpack(send_buf, 0);
    pack(send_buf, w);                 // high halo <- own low interior
    unpack(send_buf, w + n1l);
    return;
  }
  auto& comm = decomp_->comm();
  comm.set_time_kind(comm_kind_);
  // The halo exchange is point-to-point (the verifier cannot observe it
  // through a collective), but every rank of the pencil grid enters it in
  // lockstep — so mark the phase in the schedule hash, labelled by the
  // distributed dimension. A rank skipping a halo pass is then caught at
  // the next checkpoint instead of corrupting an unrelated exchange.
  comm.verify_mark(/*dimension=*/1);
  const int lo_nbr = decomp_->rank_of((decomp_->r1() - 1 + p1) % p1,
                                      decomp_->r2());
  const int hi_nbr = decomp_->rank_of((decomp_->r1() + 1) % p1,
                                      decomp_->r2());
  // My high interior goes to hi_nbr's low halo (travels "high", kTagHigh);
  // I receive my low halo from lo_nbr.
  pack(send_buf, w + n1l - w);
  if (overlap_) {
    // Pack + send the low-travelling slab while the first halo is in
    // flight. The buffered send copied pack_buf_ at post, so repacking it
    // is safe, and plain sends are legal while a receive is pending.
    auto req = slab_isendrecv(send_buf, hi_nbr, halo_buf, lo_nbr, kTagHigh);
    pack(send_buf, w);
    if (wire_ == WirePrecision::kF32)
      comm.send_narrowed(std::span<const real_t>(send_buf),
                         std::span<real32_t>(pack32_.data(), send_buf.size()),
                         lo_nbr, kTagLow);
    else
      comm.send(std::span<const real_t>(send_buf), lo_nbr, kTagLow);
    req.wait();
    unpack(halo_buf, 0);
    if (wire_ == WirePrecision::kF32)
      comm.recv_widened(halo_buf,
                        std::span<real32_t>(recv32_.data(), halo_buf.size()),
                        hi_nbr, kTagLow);
    else
      comm.recv_into(halo_buf, hi_nbr, kTagLow);
    unpack(halo_buf, w + n1l);
  } else {
    slab_sendrecv(send_buf, hi_nbr, halo_buf, lo_nbr, kTagHigh);
    unpack(halo_buf, 0);
    pack(send_buf, w);
    slab_sendrecv(send_buf, lo_nbr, halo_buf, hi_nbr, kTagLow);
    unpack(halo_buf, w + n1l);
  }
}

void GhostExchange::exchange_dim2(std::span<real_t> ghosted, int nfields) {
  // Slabs cover the FULL ghosted dim 1 (so corners come along) and dim 3.
  const index_t w = width_;
  const index_t slab = gdims_[0] * w * gdims_[2];
  const index_t n2l = ldims_[1];
  const index_t gsize = ghost_size();
  auto pack = [&](std::span<real_t> buf, index_t i2_begin) {
    index_t pos = 0;
    for (int f = 0; f < nfields; ++f) {
      const real_t* gblock = ghosted.data() + f * gsize;
      for (index_t i1 = 0; i1 < gdims_[0]; ++i1)
        for (index_t i2 = i2_begin; i2 < i2_begin + w; ++i2) {
          const real_t* src = gblock + linear_index(i1, i2, 0, gdims_);
          for (index_t i3 = 0; i3 < gdims_[2]; ++i3) buf[pos++] = src[i3];
        }
    }
  };
  auto unpack = [&](std::span<const real_t> buf, index_t i2_begin) {
    index_t pos = 0;
    for (int f = 0; f < nfields; ++f) {
      real_t* gblock = ghosted.data() + f * gsize;
      for (index_t i1 = 0; i1 < gdims_[0]; ++i1)
        for (index_t i2 = i2_begin; i2 < i2_begin + w; ++i2) {
          real_t* dst = gblock + linear_index(i1, i2, 0, gdims_);
          for (index_t i3 = 0; i3 < gdims_[2]; ++i3) dst[i3] = buf[pos++];
        }
    }
  };

  const index_t msg = slab * nfields;
  const std::span<real_t> send_buf(pack_buf_.data(), msg);
  const std::span<real_t> halo_buf(recv_buf_.data(), msg);
  const int p2 = decomp_->p2();
  if (p2 == 1) {
    pack(send_buf, w + n2l - w);
    unpack(send_buf, 0);
    pack(send_buf, w);
    unpack(send_buf, w + n2l);
    return;
  }
  auto& comm = decomp_->comm();
  comm.set_time_kind(comm_kind_);
  comm.verify_mark(/*dimension=*/2);  // see exchange_dim1
  const int lo_nbr = decomp_->rank_of(decomp_->r1(),
                                      (decomp_->r2() - 1 + p2) % p2);
  const int hi_nbr = decomp_->rank_of(decomp_->r1(),
                                      (decomp_->r2() + 1) % p2);
  pack(send_buf, w + n2l - w);
  if (overlap_) {
    // Same overlapped schedule as dim 1 (see exchange_dim1).
    auto req = slab_isendrecv(send_buf, hi_nbr, halo_buf, lo_nbr, kTagHigh);
    pack(send_buf, w);
    if (wire_ == WirePrecision::kF32)
      comm.send_narrowed(std::span<const real_t>(send_buf),
                         std::span<real32_t>(pack32_.data(), send_buf.size()),
                         lo_nbr, kTagLow);
    else
      comm.send(std::span<const real_t>(send_buf), lo_nbr, kTagLow);
    req.wait();
    unpack(halo_buf, 0);
    if (wire_ == WirePrecision::kF32)
      comm.recv_widened(halo_buf,
                        std::span<real32_t>(recv32_.data(), halo_buf.size()),
                        hi_nbr, kTagLow);
    else
      comm.recv_into(halo_buf, hi_nbr, kTagLow);
    unpack(halo_buf, w + n2l);
  } else {
    slab_sendrecv(send_buf, hi_nbr, halo_buf, lo_nbr, kTagHigh);
    unpack(halo_buf, 0);
    pack(send_buf, w);
    slab_sendrecv(send_buf, lo_nbr, halo_buf, hi_nbr, kTagLow);
    unpack(halo_buf, w + n2l);
  }
}

}  // namespace diffreg::grid
