// Periodic ghost-layer exchange for pencil-decomposed scalar fields
// (paper section III-C2: "every processor maintains a layer of ghost
// points... values must be synchronized before interpolation takes place").
//
// The tricubic stencil needs `width` extra points on each side. Dims 1 and 2
// are distributed, so their halos come from the four edge neighbours of the
// process grid; corner values are picked up by exchanging dimension 1 first
// and then dimension 2 over the already-widened slabs (two-phase trick).
// Dimension 3 is fully local, so its halo is a periodic wrap in memory.
//
// The exchanger owns persistent pack/unpack buffers, so a steady-state
// exchange performs no heap allocation, and `exchange_many` widens several
// fields through the SAME four neighbour messages (one packed slab per
// direction instead of one per field) — the halo analogue of the batched
// interpolation exchange.
//
// With WirePrecision::kF32 every neighbour slab is down-converted into
// persistent fp32 staging before it ships and up-converted on receive (half
// the halo bytes, ~1e-7 relative rounding); the degenerate single-rank
// directions stay local fp64 copies.
//
// Comm/compute overlap: an `overlap` exchanger posts the FIRST halo receive
// of each dimension nonblocking and packs + sends the SECOND slab while it
// is in flight (buffered sends copy the payload at post, so reusing the
// pack buffer is safe, and plain sends are legal while a receive is
// pending). Same two sends, two receives, and tags per dimension — the
// message schedule and the ghosted result are identical to the blocking
// exchanger, bitwise; the overlapped wire time lands in the Timings
// hidden-comm counter.
#pragma once

#include <span>
#include <vector>

#include "grid/decomposition.hpp"

namespace diffreg::grid {

class GhostExchange {
 public:
  /// `width` ghost points on every side. Requires width <= the smallest
  /// local block extent in dims 1 and 2 (single-neighbour halos).
  /// `overlap` packs/sends the second slab of each dimension under the
  /// first halo's flight; results and message schedule are identical
  /// either way.
  GhostExchange(PencilDecomp& decomp, index_t width,
                TimeKind comm_kind = TimeKind::kInterpComm,
                WirePrecision wire = WirePrecision::kF64,
                bool overlap = false);

  index_t width() const { return width_; }
  WirePrecision wire() const { return wire_; }
  /// True when the per-dimension halo receives are posted nonblocking.
  bool overlap() const { return overlap_; }
  /// Dimensions of the ghosted block: (n1l + 2w, n2l + 2w, N3 + 2w).
  const Int3& ghost_dims() const { return gdims_; }
  index_t ghost_size() const { return gdims_.prod(); }

  /// Fills `ghosted` (resized to ghost_size()) from the owned block.
  void exchange(std::span<const real_t> local, std::vector<real_t>& ghosted);

  /// Batched exchange: widens `locals.size()` fields into consecutive
  /// ghost_size() blocks of `ghosted` (which must hold exactly
  /// locals.size() * ghost_size() elements). All fields share the four
  /// neighbour messages, so the message count is independent of the batch.
  void exchange_many(std::span<const real_t* const> locals,
                     std::span<real_t> ghosted);

 private:
  void exchange_dim1(std::span<real_t> ghosted, int nfields);
  void exchange_dim2(std::span<real_t> ghosted, int nfields);
  /// Grows the two slab buffers to fit `nfields` packed slabs.
  void ensure_slab_capacity(int nfields);

  /// Sends `buf` to `dest` and receives the opposite slab from `src` into
  /// `halo`, narrowing to fp32 on the wire when the exchanger is kF32.
  void slab_sendrecv(std::span<const real_t> buf, int dest,
                     std::span<real_t> halo, int src, int tag);

  /// Nonblocking twin: sends `buf` (complete at post — buffered) and posts
  /// the receive of `halo`, returning its completion handle. `halo` (and
  /// the fp32 recv staging) must stay untouched until wait().
  mpisim::CommRequest slab_isendrecv(std::span<const real_t> buf, int dest,
                                     std::span<real_t> halo, int src, int tag);

  PencilDecomp* decomp_;
  index_t width_;
  Int3 ldims_;   // local owned block
  Int3 gdims_;   // ghosted block
  TimeKind comm_kind_;
  WirePrecision wire_;
  bool overlap_ = false;

  // Persistent slab buffers (grow-only): sized for the larger of the dim-1
  // and dim-2 slabs times the widest batch seen so far. The fp32 pair is
  // the wire staging of the kF32 format (same element capacity).
  std::vector<real_t> pack_buf_, recv_buf_;
  std::vector<real32_t> pack32_, recv32_;

  static constexpr int kTagLow = 201;   // data travelling toward lower index
  static constexpr int kTagHigh = 202;  // data travelling toward higher index
};

}  // namespace diffreg::grid
