#include "grid/field_io.hpp"

#include <cassert>

namespace diffreg::grid {

namespace {
constexpr int kTagGather = 301;
constexpr int kTagScatter = 302;
}  // namespace

std::vector<real_t> gather_to_root(PencilDecomp& decomp,
                                   std::span<const real_t> local) {
  auto& comm = decomp.comm();
  comm.set_time_kind(TimeKind::kOther);
  const Int3 dims = decomp.dims();
  assert(static_cast<index_t>(local.size()) == decomp.local_real_size());

  if (comm.rank() != 0) {
    comm.send(local, 0, kTagGather);
    return {};
  }
  std::vector<real_t> full(dims.prod());
  for (int r = 0; r < comm.size(); ++r) {
    const int r1 = r / decomp.p2();
    const int r2 = r % decomp.p2();
    const BlockRange b1 = block_range(dims[0], decomp.p1(), r1);
    const BlockRange b2 = block_range(dims[1], decomp.p2(), r2);
    std::vector<real_t> block;
    if (r == 0)
      block.assign(local.begin(), local.end());
    else
      block = comm.recv<real_t>(r, kTagGather);
    index_t pos = 0;
    for (index_t i1 = b1.begin; i1 < b1.end; ++i1)
      for (index_t i2 = b2.begin; i2 < b2.end; ++i2)
        for (index_t i3 = 0; i3 < dims[2]; ++i3)
          full[linear_index(i1, i2, i3, dims)] = block[pos++];
  }
  return full;
}

std::vector<real_t> scatter_from_root(PencilDecomp& decomp,
                                      std::span<const real_t> full) {
  auto& comm = decomp.comm();
  comm.set_time_kind(TimeKind::kOther);
  const Int3 dims = decomp.dims();

  if (comm.rank() == 0) {
    assert(static_cast<index_t>(full.size()) == dims.prod());
    std::vector<real_t> my_block;
    for (int r = 0; r < comm.size(); ++r) {
      const int r1 = r / decomp.p2();
      const int r2 = r % decomp.p2();
      const BlockRange b1 = block_range(dims[0], decomp.p1(), r1);
      const BlockRange b2 = block_range(dims[1], decomp.p2(), r2);
      std::vector<real_t> block(b1.size() * b2.size() * dims[2]);
      index_t pos = 0;
      for (index_t i1 = b1.begin; i1 < b1.end; ++i1)
        for (index_t i2 = b2.begin; i2 < b2.end; ++i2)
          for (index_t i3 = 0; i3 < dims[2]; ++i3)
            block[pos++] = full[linear_index(i1, i2, i3, dims)];
      if (r == 0)
        my_block = std::move(block);
      else
        comm.send(std::span<const real_t>(block), r, kTagScatter);
    }
    return my_block;
  }
  return comm.recv<real_t>(0, kTagScatter);
}

std::vector<real_t> gather_to_all(PencilDecomp& decomp,
                                  std::span<const real_t> local) {
  auto full = gather_to_root(decomp, local);
  auto& comm = decomp.comm();
  if (comm.rank() != 0) full.resize(decomp.dims().prod());
  comm.broadcast(full, 0);
  return full;
}

}  // namespace diffreg::grid
