// Gather/scatter between pencil-decomposed local blocks and a full
// [N1][N2][N3] array on rank 0 (used by image IO, tests, and diagnostics —
// never inside the solver loop).
#pragma once

#include <span>
#include <vector>

#include "grid/decomposition.hpp"

namespace diffreg::grid {

/// Gathers the distributed field to a full array on rank 0 (empty on other
/// ranks). Collective.
std::vector<real_t> gather_to_root(PencilDecomp& decomp,
                                   std::span<const real_t> local);

/// Scatters a full array held on rank 0 to per-rank local blocks. Collective;
/// `full` is ignored on non-root ranks.
std::vector<real_t> scatter_from_root(PencilDecomp& decomp,
                                      std::span<const real_t> full);

/// Gathers to every rank (gather_to_root + broadcast). Collective.
std::vector<real_t> gather_to_all(PencilDecomp& decomp,
                                  std::span<const real_t> local);

}  // namespace diffreg::grid
