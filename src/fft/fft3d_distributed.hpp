// Distributed 3D real-to-complex FFT on the pencil decomposition
// (AccFFT-style, paper section III-C1 and Fig. 4).
//
// Forward pipeline (inverse runs the same stages backwards):
//   A. r2c 1D FFTs along the locally-contiguous axis 3 — two real rows are
//      packed into one complex FFT (z = x0 + i*x1) and the half-spectra are
//      recovered from the Hermitian split, halving the axis-3 transform
//      count relative to padding each row to a full complex FFT;
//   B. "row" transpose: alltoallv inside the row communicator exchanges the
//      k3 half-spectrum against axis 2, giving every rank full axis-2 rows;
//   C. c2c 1D FFTs along axis 2;
//   D. "col" transpose: alltoallv inside the column communicator exchanges
//      k2 against axis 1, giving every rank full axis-1 rows;
//   E. c2c 1D FFTs along axis 1.
//
// All transpose pack/unpack traffic goes through flat send/recv buffers and
// per-peer count tables owned by the plan, so forward/inverse perform no
// heap allocation after construction (the thread-backed mpisim transport
// still copies message payloads — that is the simulated wire).
//
// `forward_many`/`inverse_many` transform up to kMaxBatch components (the
// three components of a velocity field) in one pass: every component rides
// the same two alltoallv exchanges per transform, cutting the message count
// of vector-field transforms by the batch factor (the CLAIRE-style batching
// of Mang et al. 2019 / Brunn et al. 2020).
//
// Cost model (paper): O(7.5 N^3/p log N) flops and two sqrt(p)-wide
// alltoall rounds per transform. Time spent inside the exchanges is charged
// to TimeKind::kFftComm, local 1D FFTs and pack/unpack to kFftExec; the
// exchange/message/byte counters of Timings track comm volume.
//
// Wire precision: with WirePrecision::kF32 both transpose exchanges ship
// complex<float> payloads through plan-owned staging buffers (half the
// bytes of the solver's bandwidth-hottest path, ~1e-7 relative rounding per
// mode); the local stages stay fp64 throughout. The byte counters record
// the narrowed wire volume plus the bytes saved.
//
// Comm/compute overlap: an `overlap` plan posts each transpose alltoallv
// nonblocking and unpacks the SELF chunk of the receive buffer — already
// valid at post time, it never crosses the wire — while the peer chunks are
// in flight, waiting only before the peer unpack. (The downstream 1D FFT
// stages each need FULL rows spanning every peer, so the self unpack is
// exactly the independent work available under the exchange.) The message
// schedule and all comm counters are identical to the blocking plan, and so
// are the results, bitwise; the overlapped wire time lands in the Timings
// hidden-comm counter.
#pragma once

#include <span>
#include <vector>

#include "fft/fft1d.hpp"
#include "grid/decomposition.hpp"

namespace diffreg::fft {

class DistributedFft3d {
 public:
  /// Components that can share one batched transform (a 3-vector field).
  static constexpr int kMaxBatch = 3;

  /// `overlap` posts the transpose exchanges nonblocking and unpacks the
  /// self chunk under their flight; results and message schedule are
  /// identical either way.
  explicit DistributedFft3d(grid::PencilDecomp& decomp,
                            WirePrecision wire = WirePrecision::kF64,
                            bool overlap = false);

  const grid::PencilDecomp& decomp() const { return *decomp_; }
  WirePrecision wire() const { return wire_; }
  bool overlap() const { return overlap_; }
  index_t local_real_size() const { return decomp_->local_real_size(); }
  index_t local_spectral_size() const {
    return decomp_->local_spectral_size();
  }

  /// Unnormalized forward transform of the locally owned real block
  /// [n1loc][n2loc][N3] into the local spectral block [n3c_loc][n2k_loc][N1].
  void forward(std::span<const real_t> local_real,
               std::span<complex_t> local_spectral);

  /// Inverse transform with full 1/(N1 N2 N3) normalization.
  void inverse(std::span<const complex_t> local_spectral,
               std::span<real_t> local_real);

  /// Batched forward: transforms reals[c] into specs[c] for every component,
  /// aggregating all components into the same two alltoallv exchanges.
  /// Results are bitwise identical to calling forward() per component.
  void forward_many(std::span<const real_t* const> reals,
                    std::span<complex_t* const> specs);

  /// Batched inverse, the mirror of forward_many (2 exchanges total instead
  /// of 2 per component).
  void inverse_many(std::span<const complex_t* const> specs,
                    std::span<real_t* const> reals);

 private:
  // Stage A helpers: r2c of all [n1l*n2l] axis-3 rows of one component
  // (paired two-in-one-complex-FFT), and the c2r mirror.
  void stage_a_forward(const real_t* real_in, complex_t* half_out);
  void stage_a_inverse(const complex_t* half_in, real_t* real_out);

  // Transposes between the [n1l][n2l][n3c] layout (stage A/B boundary) and
  // the [n1l][n3c_l][N2] layout (stage B/C boundary), and between
  // [n1l][n3c_l][N2] and [n3c_l][n2k_l][N1]. All of them pack `ncomp`
  // components into one exchange.
  void row_transpose_forward(int ncomp);
  void row_transpose_inverse(int ncomp);
  void col_transpose_forward(int ncomp, std::span<complex_t* const> specs);
  void col_transpose_inverse(int ncomp);

  /// Scales the per-component peer counts by ncomp into the scratch count
  /// arrays and runs the span alltoallv over send_buf_/recv_buf_.
  void exchange(mpisim::Communicator& comm, int npeers, int ncomp,
                const std::vector<index_t>& send_counts,
                const std::vector<index_t>& recv_counts, index_t send_total,
                index_t recv_total, int tag);

  /// Nonblocking twin of exchange(): posts the identical alltoallv and
  /// returns its completion handle; the SELF chunk of recv_buf_ is already
  /// valid on return (delivered locally at post), the peer chunks only
  /// after wait().
  mpisim::CommRequest iexchange(mpisim::Communicator& comm, int npeers,
                                int ncomp,
                                const std::vector<index_t>& send_counts,
                                const std::vector<index_t>& recv_counts,
                                index_t send_total, index_t recv_total,
                                int tag);

  grid::PencilDecomp* decomp_;
  WirePrecision wire_;
  bool overlap_ = false;
  Fft1d fft1_, fft2_, fft3_;

  // Per-component strides of the stage buffers (see layouts above).
  index_t a_stride_ = 0;  // [n1l][n2l][n3c]
  index_t b_stride_ = 0;  // [n1l][n3c_l][N2]
  index_t s_stride_ = 0;  // [n3c_l][n2k_l][N1]

  // Stage buffers, sized eagerly for kMaxBatch components: the plan's
  // zero-allocation guarantee covers the *first* batched call too, and every
  // solver plan does vector-field transforms (gradient, Leray projection,
  // regularization applies). A scalar-only plan pays ~3x the stage-buffer
  // footprint it strictly needs.
  std::vector<complex_t> stage_a_;
  std::vector<complex_t> stage_b_;
  std::vector<complex_t> stage_e_;  // inverse stage E output (out-of-place)
  std::vector<complex_t> row_;      // length max(N3, N1) scratch

  // Stage A runs its axis-3 transforms over blocks of packed rows so the
  // 1D batch path (stage-major butterflies) applies there too.
  index_t ablock_rows_ = 1;
  std::vector<complex_t> arow_block_;  // [ablock_rows_][N3]

  // Persistent flat transpose buffers plus per-peer element counts for one
  // component; `exchange` scales them by the batch size into the scratch
  // arrays, so no call allocates. The fp32 staging pair is sized eagerly
  // (like send_buf_/recv_buf_) when the plan ships an fp32 wire format, so
  // the zero-allocation guarantee holds on the mixed path too.
  std::vector<complex_t> send_buf_, recv_buf_;
  std::vector<complex32_t> send_buf32_, recv_buf32_;
  std::vector<index_t> row_send_counts_, row_recv_counts_;
  std::vector<index_t> col_send_counts_, col_recv_counts_;
  std::vector<index_t> scaled_send_counts_, scaled_recv_counts_;

  static constexpr int kTagRowFwd = 101;
  static constexpr int kTagColFwd = 102;
  static constexpr int kTagColInv = 103;
  static constexpr int kTagRowInv = 104;
};

}  // namespace diffreg::fft
