// Distributed 3D real-to-complex FFT on the pencil decomposition
// (AccFFT-style, paper section III-C1 and Fig. 4).
//
// Forward pipeline (inverse runs the same stages backwards):
//   A. r2c 1D FFTs along the locally-contiguous axis 3;
//   B. "row" transpose: alltoallv inside the row communicator exchanges the
//      k3 half-spectrum against axis 2, giving every rank full axis-2 rows;
//   C. c2c 1D FFTs along axis 2;
//   D. "col" transpose: alltoallv inside the column communicator exchanges
//      k2 against axis 1, giving every rank full axis-1 rows;
//   E. c2c 1D FFTs along axis 1.
//
// Cost model (paper): O(7.5 N^3/p log N) flops and two sqrt(p)-wide
// alltoall rounds per transform. Time spent inside the exchanges is charged
// to TimeKind::kFftComm, local 1D FFTs and pack/unpack to kFftExec.
#pragma once

#include <span>
#include <vector>

#include "fft/fft1d.hpp"
#include "grid/decomposition.hpp"

namespace diffreg::fft {

class DistributedFft3d {
 public:
  explicit DistributedFft3d(grid::PencilDecomp& decomp);

  const grid::PencilDecomp& decomp() const { return *decomp_; }
  index_t local_real_size() const { return decomp_->local_real_size(); }
  index_t local_spectral_size() const {
    return decomp_->local_spectral_size();
  }

  /// Unnormalized forward transform of the locally owned real block
  /// [n1loc][n2loc][N3] into the local spectral block [n3c_loc][n2k_loc][N1].
  void forward(std::span<const real_t> local_real,
               std::span<complex_t> local_spectral);

  /// Inverse transform with full 1/(N1 N2 N3) normalization.
  void inverse(std::span<const complex_t> local_spectral,
               std::span<real_t> local_real);

 private:
  // Transposes between the [n1l][n2l][n3c] layout (stage A/B boundary) and
  // the [n1l][n3c_l][N2] layout (stage B/C boundary), and between
  // [n1l][n3c_l][N2] and [n3c_l][n2k_l][N1].
  void row_transpose_forward();
  void row_transpose_inverse();
  void col_transpose_forward(std::span<complex_t> spectral);
  void col_transpose_inverse(std::span<const complex_t> spectral);

  grid::PencilDecomp* decomp_;
  Fft1d fft1_, fft2_, fft3_;

  // Stage buffers (see layouts above).
  std::vector<complex_t> stage_a_;  // [n1l][n2l][n3c]
  std::vector<complex_t> stage_b_;  // [n1l][n3c_l][N2]
  std::vector<complex_t> row_;      // length max(N3, N1) scratch

  static constexpr int kTagRowFwd = 101;
  static constexpr int kTagColFwd = 102;
  static constexpr int kTagColInv = 103;
  static constexpr int kTagRowInv = 104;
};

}  // namespace diffreg::fft
