#include "fft/fft1d.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace diffreg::fft {

namespace {
constexpr real_t kPi = std::numbers::pi_v<real_t>;
}

index_t Fft1d::smallest_prime_factor(index_t n) {
  for (index_t f = 2; f * f <= n; ++f)
    if (n % f == 0) return f;
  return n;
}

index_t Fft1d::largest_prime_factor(index_t n) {
  index_t largest = 1;
  for (index_t f = 2; n > 1; ++f) {
    while (n % f == 0) {
      largest = f;
      n /= f;
    }
    if (f * f > n && n > 1) {
      largest = std::max(largest, n);
      break;
    }
  }
  return largest;
}

Fft1d::Fft1d(index_t n) : n_(n) {
  if (n <= 0) throw std::invalid_argument("Fft1d: size must be positive");
  if (is_power_of_two(n)) {
    path_ = Path::kPow2;
    twiddles_ = make_twiddles(n_);
    inv_twiddles_ = conj_all(twiddles_);
    bitrev_ = make_bitrev(n_);
    swap_pairs_ = make_swap_pairs(bitrev_);
  } else if (largest_prime_factor(n) <= 61) {
    path_ = Path::kMixedRadix;
    root_table_.resize(n_);
    for (index_t t = 0; t < n_; ++t) {
      const real_t phase = -2 * kPi * static_cast<real_t>(t) / static_cast<real_t>(n_);
      root_table_[t] = complex_t(std::cos(phase), std::sin(phase));
    }
    mixed_scratch_.resize(n_);
  } else {
    path_ = Path::kBluestein;
    m_ = next_pow2(2 * n_ - 1);
    twiddles_m_ = make_twiddles(m_);
    inv_twiddles_m_ = conj_all(twiddles_m_);
    bitrev_m_ = make_bitrev(m_);
    swap_pairs_m_ = make_swap_pairs(bitrev_m_);
    chirp_.resize(n_);
    for (index_t k = 0; k < n_; ++k) {
      // k^2 mod 2n keeps the phase argument small for large n.
      const index_t k2 = (k * k) % (2 * n_);
      const real_t phase = -kPi * static_cast<real_t>(k2) / static_cast<real_t>(n_);
      chirp_[k] = complex_t(std::cos(phase), std::sin(phase));
    }
    // Filter v[m] = conj(chirp(|m|)) on the circularly wrapped support.
    std::vector<complex_t> filter(m_, complex_t(0, 0));
    for (index_t k = 0; k < n_; ++k) {
      filter[k] = std::conj(chirp_[k]);
      if (k > 0) filter[m_ - k] = std::conj(chirp_[k]);
    }
    pow2_transform(filter.data(), m_, /*inverse=*/false);
    chirp_filter_fft_ = std::move(filter);
    scratch_.resize(m_);
  }
}

index_t Fft1d::next_pow2(index_t n) {
  index_t m = 1;
  while (m < n) m <<= 1;
  return m;
}

namespace {
/// Snaps a twiddle component to the exact lattice values {-1, 0, 1} when the
/// libm result is within a couple of ulps (e.g. cos(pi/2) = 6.1e-17).
real_t snap(real_t v) {
  constexpr real_t eps = 4e-16;
  if (std::abs(v) < eps) return 0;
  if (std::abs(v - 1) < eps) return 1;
  if (std::abs(v + 1) < eps) return -1;
  return v;
}
}  // namespace

std::vector<complex_t> Fft1d::make_twiddles(index_t n) {
  // Layout: for stage length len = 2,4,...,n the len/2 twiddles are stored
  // consecutively starting at offset len/2 - 1 (total n - 1 entries).
  std::vector<complex_t> tw(n > 1 ? n - 1 : 0);
  for (index_t len = 2; len <= n; len <<= 1) {
    const index_t half = len / 2;
    for (index_t j = 0; j < half; ++j) {
      const real_t phase = -2.0 * kPi * static_cast<real_t>(j) / static_cast<real_t>(len);
      tw[half - 1 + j] = complex_t(snap(std::cos(phase)), snap(std::sin(phase)));
    }
  }
  return tw;
}

std::vector<complex_t> Fft1d::conj_all(const std::vector<complex_t>& tw) {
  std::vector<complex_t> out(tw.size());
  for (size_t i = 0; i < tw.size(); ++i) out[i] = std::conj(tw[i]);
  return out;
}

std::vector<index_t> Fft1d::make_bitrev(index_t n) {
  std::vector<index_t> rev(n);
  index_t bits = 0;
  while ((index_t{1} << bits) < n) ++bits;
  for (index_t i = 0; i < n; ++i) {
    index_t r = 0;
    for (index_t b = 0; b < bits; ++b)
      if (i & (index_t{1} << b)) r |= index_t{1} << (bits - 1 - b);
    rev[i] = r;
  }
  return rev;
}

std::vector<Fft1d::SwapPair> Fft1d::make_swap_pairs(
    const std::vector<index_t>& rev) {
  std::vector<SwapPair> pairs;
  for (index_t i = 0; i < static_cast<index_t>(rev.size()); ++i)
    if (i < rev[i]) pairs.push_back({i, rev[i]});
  return pairs;
}

void Fft1d::pow2_stages(complex_t* data, index_t rows, index_t n,
                        const complex_t* twiddles, bool inverse) {
  // Stage-major over the block: one stage's twiddles stay hot across every
  // row before the next stage starts. The first two stages are multiply
  // free: their twiddles are 1 and -+i.
  if (n >= 2) {
    for (index_t r = 0; r < rows; ++r) {
      complex_t* row = data + r * n;
      for (index_t s = 0; s < n; s += 2) {
        const complex_t t = row[s + 1];
        row[s + 1] = row[s] - t;
        row[s] += t;
      }
    }
  }
  if (n >= 4) {
    for (index_t r = 0; r < rows; ++r) {
      complex_t* row = data + r * n;
      for (index_t s = 0; s < n; s += 4) {
        {
          const complex_t t = row[s + 2];
          row[s + 2] = row[s] - t;
          row[s] += t;
        }
        {
          const complex_t hi = row[s + 3];
          const complex_t t = inverse ? complex_t(-hi.imag(), hi.real())
                                      : complex_t(hi.imag(), -hi.real());
          row[s + 3] = row[s + 1] - t;
          row[s + 1] += t;
        }
      }
    }
  }
  for (index_t len = 8; len <= n; len <<= 1) {
    const index_t half = len / 2;
    const complex_t* tw = twiddles + (half - 1);
    for (index_t r = 0; r < rows; ++r) {
      complex_t* row = data + r * n;
      for (index_t start = 0; start < n; start += len) {
        complex_t* lo = row + start;
        complex_t* hi = lo + half;
        for (index_t j = 0; j < half; ++j) {
          const complex_t t = hi[j] * tw[j];
          hi[j] = lo[j] - t;
          lo[j] += t;
        }
      }
    }
  }
}

void Fft1d::pow2_transform(complex_t* data, index_t n, bool inverse) {
  const bool own = (n == n_ && path_ == Path::kPow2);
  const std::vector<SwapPair>& pairs = own ? swap_pairs_ : swap_pairs_m_;
  const std::vector<complex_t>& tw =
      own ? (inverse ? inv_twiddles_ : twiddles_)
          : (inverse ? inv_twiddles_m_ : twiddles_m_);
  for (const SwapPair& pr : pairs) std::swap(data[pr.a], data[pr.b]);
  pow2_stages(data, 1, n, tw.data(), inverse);
  if (inverse) {
    const real_t scale = real_t(1) / static_cast<real_t>(n);
    for (index_t i = 0; i < n; ++i) data[i] *= scale;
  }
}

void Fft1d::pow2_batch(complex_t* data, index_t count, bool inverse,
                       real_t scale) {
  const complex_t* tw = (inverse ? inv_twiddles_ : twiddles_).data();
  const index_t block = std::max<index_t>(
      1, kBatchBlockBytes / (n_ * static_cast<index_t>(sizeof(complex_t))));
  for (index_t r0 = 0; r0 < count; r0 += block) {
    const index_t rows = std::min(block, count - r0);
    complex_t* base = data + r0 * n_;
    for (index_t r = 0; r < rows; ++r) {
      complex_t* row = base + r * n_;
      for (const SwapPair& pr : swap_pairs_) std::swap(row[pr.a], row[pr.b]);
    }
    pow2_stages(base, rows, n_, tw, inverse);
    if (scale != real_t(1))
      for (index_t i = 0; i < rows * n_; ++i) base[i] *= scale;
  }
}

void Fft1d::bluestein_transform(complex_t* data, bool inverse, real_t scale) {
  // Forward: X_j = c_j * (u conv v)_j with u_k = x_k c_k, v = conj-chirp.
  // Inverse: IDFT(x) = conj(DFT(conj(x))) / n.
  if (inverse)
    for (index_t k = 0; k < n_; ++k) data[k] = std::conj(data[k]);

  complex_t* u = scratch_.data();
  for (index_t k = 0; k < n_; ++k) u[k] = data[k] * chirp_[k];
  for (index_t k = n_; k < m_; ++k) u[k] = complex_t(0, 0);

  pow2_transform(u, m_, /*inverse=*/false);
  for (index_t k = 0; k < m_; ++k) u[k] *= chirp_filter_fft_[k];
  pow2_transform(u, m_, /*inverse=*/true);

  for (index_t k = 0; k < n_; ++k) data[k] = u[k] * chirp_[k];

  if (inverse)
    for (index_t k = 0; k < n_; ++k) data[k] = std::conj(data[k]) * scale;
}

void Fft1d::mixed_radix_rec(complex_t* x, complex_t* tmp, index_t n,
                            index_t rs) {
  if (n == 1) return;
  const index_t r = smallest_prime_factor(n);
  const index_t m = n / r;

  if (r == n) {
    // Prime base case: naive DFT via the exact root table, O(r^2) with
    // r <= 61.
    for (index_t k = 0; k < n; ++k) {
      complex_t sum(0, 0);
      for (index_t t = 0; t < n; ++t)
        sum += x[t] * root_table_[(rs * ((k * t) % n)) % n_];
      tmp[k] = sum;
    }
    std::copy(tmp, tmp + n, x);
    return;
  }

  // Decimation in time: sub-sequence j holds x[t*r + j].
  for (index_t j = 0; j < r; ++j)
    for (index_t t = 0; t < m; ++t) tmp[j * m + t] = x[t * r + j];
  for (index_t j = 0; j < r; ++j)
    mixed_radix_rec(tmp + j * m, x + j * m, m, rs * r);

  // Combine: X[k] = sum_j w_n^{j k} Y_j[k mod m].
  for (index_t k = 0; k < n; ++k) {
    const index_t km = k % m;
    complex_t sum = tmp[km];  // j = 0 term (w^0 = 1)
    for (index_t j = 1; j < r; ++j)
      sum += tmp[j * m + km] * root_table_[(rs * ((j * k) % n)) % n_];
    x[k] = sum;
  }
}

void Fft1d::transform(complex_t* data, bool inverse) {
  if (n_ == 1) return;
  switch (path_) {
    case Path::kPow2:
      pow2_transform(data, n_, inverse);
      break;
    case Path::kMixedRadix: {
      // Inverse via conjugation: IDFT(x) = conj(DFT(conj(x))) / n.
      if (inverse)
        for (index_t k = 0; k < n_; ++k) data[k] = std::conj(data[k]);
      mixed_radix_rec(data, mixed_scratch_.data(), n_, 1);
      if (inverse) {
        const real_t scale = real_t(1) / static_cast<real_t>(n_);
        for (index_t k = 0; k < n_; ++k) data[k] = std::conj(data[k]) * scale;
      }
      break;
    }
    case Path::kBluestein:
      bluestein_transform(data, inverse,
                          real_t(1) / static_cast<real_t>(n_));
      break;
  }
}

void Fft1d::forward_batch(complex_t* data, index_t count) {
  if (n_ == 1) return;
  if (path_ == Path::kPow2) {
    pow2_batch(data, count, /*inverse=*/false, /*scale=*/real_t(1));
    return;
  }
  for (index_t r = 0; r < count; ++r) forward(data + r * n_);
}

void Fft1d::inverse_batch(complex_t* data, index_t count) {
  if (n_ == 1) return;
  if (path_ == Path::kPow2) {
    pow2_batch(data, count, /*inverse=*/true,
               real_t(1) / static_cast<real_t>(n_));
    return;
  }
  for (index_t r = 0; r < count; ++r) inverse(data + r * n_);
}

void Fft1d::inverse_batch_noscale(complex_t* data, index_t count) {
  if (n_ == 1) return;
  switch (path_) {
    case Path::kPow2:
      pow2_batch(data, count, /*inverse=*/true, /*scale=*/real_t(1));
      break;
    case Path::kMixedRadix:
      // Unnormalized IDFT(x) = conj(DFT(conj(x))).
      for (index_t r = 0; r < count; ++r) {
        complex_t* row = data + r * n_;
        for (index_t k = 0; k < n_; ++k) row[k] = std::conj(row[k]);
        mixed_radix_rec(row, mixed_scratch_.data(), n_, 1);
        for (index_t k = 0; k < n_; ++k) row[k] = std::conj(row[k]);
      }
      break;
    case Path::kBluestein:
      for (index_t r = 0; r < count; ++r)
        bluestein_transform(data + r * n_, /*inverse=*/true,
                            /*scale=*/real_t(1));
      break;
  }
}

void Fft1d::inverse_batch_noscale(const complex_t* src, complex_t* dst,
                                  index_t count) {
  if (n_ == 1) {
    std::copy(src, src + count, dst);
    return;
  }
  if (path_ != Path::kPow2) {
    std::copy(src, src + count * n_, dst);
    inverse_batch_noscale(dst, count);
    return;
  }
  const complex_t* tw = inv_twiddles_.data();
  const index_t block = std::max<index_t>(
      1, kBatchBlockBytes / (n_ * static_cast<index_t>(sizeof(complex_t))));
  for (index_t r0 = 0; r0 < count; r0 += block) {
    const index_t rows = std::min(block, count - r0);
    complex_t* base = dst + r0 * n_;
    // The bit-reversal permutation doubles as the src -> dst gather.
    for (index_t r = 0; r < rows; ++r) {
      const complex_t* s = src + (r0 + r) * n_;
      complex_t* d = base + r * n_;
      for (index_t i = 0; i < n_; ++i) d[i] = s[bitrev_[i]];
    }
    pow2_stages(base, rows, n_, tw, /*inverse=*/true);
  }
}

}  // namespace diffreg::fft
