// Plan-based 1D complex FFT.
//
// Three execution paths, chosen at plan time:
//  * power-of-two sizes: iterative radix-2 Cooley-Tukey with precomputed
//    twiddle tables;
//  * smooth composite sizes (all prime factors <= 61, e.g. the 300 of the
//    paper's 256x300x256 brain grid = 2^2*3*5^2, or 48 = 2^4*3): recursive
//    mixed-radix Cooley-Tukey over an exact root-of-unity table;
//  * sizes with a large prime factor: Bluestein's algorithm built on a
//    power-of-two convolution.
//
// Forward transforms are unnormalized; inverse transforms scale by 1/N, so
// inverse(forward(x)) == x.
//
// A plan owns scratch buffers, so a single plan must not be used from two
// threads concurrently; in SPMD runs each rank creates its own plans.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace diffreg::fft {

class Fft1d {
 public:
  explicit Fft1d(index_t n);

  index_t size() const { return n_; }

  /// In-place transform of one length-n row.
  void forward(complex_t* data) { transform(data, /*inverse=*/false); }
  void inverse(complex_t* data) { transform(data, /*inverse=*/true); }

  /// In-place transform of `count` contiguous rows of length n.
  void forward_batch(complex_t* data, index_t count);
  void inverse_batch(complex_t* data, index_t count);

 private:
  enum class Path { kPow2, kMixedRadix, kBluestein };

  void transform(complex_t* data, bool inverse);
  void pow2_transform(complex_t* data, index_t n, bool inverse,
                      const std::vector<complex_t>& twiddles);
  void bluestein_transform(complex_t* data, bool inverse);

  /// Recursive mixed-radix step: transforms x (length n) in place using tmp
  /// as scratch; the roots of unity of this level are root_table_[k * rs].
  void mixed_radix_rec(complex_t* x, complex_t* tmp, index_t n, index_t rs);

  static std::vector<complex_t> make_twiddles(index_t n);
  static index_t smallest_prime_factor(index_t n);
  static index_t largest_prime_factor(index_t n);

  index_t n_;
  Path path_;

  // Radix-2 path: forward twiddles for the size-n transform (inverse uses
  // conjugates), plus the bit-reversal permutation.
  std::vector<complex_t> twiddles_;
  std::vector<index_t> bitrev_;

  // Mixed-radix path: exact table of exp(-2 pi i t / n), t = 0..n-1, plus a
  // scratch buffer for the recursion.
  std::vector<complex_t> root_table_;
  std::vector<complex_t> mixed_scratch_;

  // Bluestein path: chirp c_k = exp(-i pi k^2 / n), the padded convolution
  // size m (power of two >= 2n-1), its twiddles/permutation, and the
  // precomputed spectrum of the chirp filter.
  index_t m_ = 0;
  std::vector<complex_t> chirp_;
  std::vector<complex_t> chirp_filter_fft_;
  std::vector<complex_t> twiddles_m_;
  std::vector<index_t> bitrev_m_;
  std::vector<complex_t> scratch_;

  static bool is_power_of_two(index_t n) { return n > 0 && (n & (n - 1)) == 0; }
  static index_t next_pow2(index_t n);
  static std::vector<index_t> make_bitrev(index_t n);
};

}  // namespace diffreg::fft
