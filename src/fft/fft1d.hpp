// Plan-based 1D complex FFT.
//
// Three execution paths, chosen at plan time:
//  * power-of-two sizes: iterative radix-2 Cooley-Tukey with precomputed
//    twiddle tables;
//  * smooth composite sizes (all prime factors <= 61, e.g. the 300 of the
//    paper's 256x300x256 brain grid = 2^2*3*5^2, or 48 = 2^4*3): recursive
//    mixed-radix Cooley-Tukey over an exact root-of-unity table;
//  * sizes with a large prime factor: Bluestein's algorithm built on a
//    power-of-two convolution.
//
// The power-of-two path keeps a separate conjugated twiddle table so the
// inverse butterflies never call std::conj per element, and the bit-reversal
// permutation is precomputed once as a swap-pair list that every row of a
// batch reuses. Batched transforms run the butterfly stages over blocks of
// rows (stage-major within a cache-sized block), which keeps each stage's
// twiddles hot across rows.
//
// Forward transforms are unnormalized; inverse transforms scale by 1/N, so
// inverse(forward(x)) == x.
//
// A plan owns scratch buffers, so a single plan must not be used from two
// threads concurrently; in SPMD runs each rank creates its own plans.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace diffreg::fft {

class Fft1d {
 public:
  explicit Fft1d(index_t n);

  index_t size() const { return n_; }

  /// In-place transform of one length-n row.
  void forward(complex_t* data) { transform(data, /*inverse=*/false); }
  void inverse(complex_t* data) { transform(data, /*inverse=*/true); }

  /// In-place transform of `count` contiguous rows of length n.
  void forward_batch(complex_t* data, index_t count);
  void inverse_batch(complex_t* data, index_t count);

  /// In-place inverse without the 1/N normalization, for pipelines that fold
  /// the overall scale of a multi-dimensional inverse into one final pass.
  void inverse_batch_noscale(complex_t* data, index_t count);

  /// Out-of-place unnormalized inverse of `count` contiguous rows: reads
  /// `src`, writes `dst` (must not alias). On the power-of-two path the
  /// bit-reversal permutation doubles as the src->dst gather, so no separate
  /// copy pass is needed.
  void inverse_batch_noscale(const complex_t* src, complex_t* dst,
                             index_t count);

 private:
  enum class Path { kPow2, kMixedRadix, kBluestein };

  /// One bit-reversal swap (i < j); the in-place permutation is the list of
  /// all such swaps, applied per row.
  struct SwapPair {
    index_t a, b;
  };

  /// Butterfly-stage block size: rows processed stage-major in groups whose
  /// working set stays around L1 size.
  static constexpr index_t kBatchBlockBytes = 1 << 15;

  void transform(complex_t* data, bool inverse);
  void pow2_transform(complex_t* data, index_t n, bool inverse);
  /// Butterfly stages (no permutation, no scaling) over `rows` contiguous
  /// rows of length n, using the given stage-indexed twiddle table. The
  /// first two stages are specialized: their twiddles are 1 and -+i, so they
  /// run multiply-free (`inverse` selects the +-i direction).
  static void pow2_stages(complex_t* data, index_t rows, index_t n,
                          const complex_t* twiddles, bool inverse);
  void pow2_batch(complex_t* data, index_t count, bool inverse, real_t scale);
  /// `scale` is the normalization applied on the inverse path (1/n for the
  /// standard inverse, 1 for the unnormalized variant); ignored on forward.
  void bluestein_transform(complex_t* data, bool inverse, real_t scale);

  /// Recursive mixed-radix step: transforms x (length n) in place using tmp
  /// as scratch; the roots of unity of this level are root_table_[k * rs].
  void mixed_radix_rec(complex_t* x, complex_t* tmp, index_t n, index_t rs);

  static std::vector<complex_t> make_twiddles(index_t n);
  static std::vector<complex_t> conj_all(const std::vector<complex_t>& tw);
  static std::vector<SwapPair> make_swap_pairs(const std::vector<index_t>& rev);
  static index_t smallest_prime_factor(index_t n);
  static index_t largest_prime_factor(index_t n);

  index_t n_;
  Path path_;

  // Radix-2 path: forward and (pre-conjugated) inverse twiddles for the
  // size-n transform, the bit-reversal permutation, and its swap-pair list.
  std::vector<complex_t> twiddles_, inv_twiddles_;
  std::vector<index_t> bitrev_;
  std::vector<SwapPair> swap_pairs_;

  // Mixed-radix path: exact table of exp(-2 pi i t / n), t = 0..n-1, plus a
  // scratch buffer for the recursion.
  std::vector<complex_t> root_table_;
  std::vector<complex_t> mixed_scratch_;

  // Bluestein path: chirp c_k = exp(-i pi k^2 / n), the padded convolution
  // size m (power of two >= 2n-1), its twiddles/permutation, and the
  // precomputed spectrum of the chirp filter.
  index_t m_ = 0;
  std::vector<complex_t> chirp_;
  std::vector<complex_t> chirp_filter_fft_;
  std::vector<complex_t> twiddles_m_, inv_twiddles_m_;
  std::vector<index_t> bitrev_m_;
  std::vector<SwapPair> swap_pairs_m_;
  std::vector<complex_t> scratch_;

  static bool is_power_of_two(index_t n) { return n > 0 && (n & (n - 1)) == 0; }
  static index_t next_pow2(index_t n);
  static std::vector<index_t> make_bitrev(index_t n);
};

}  // namespace diffreg::fft
