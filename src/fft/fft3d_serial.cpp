#include "fft/fft3d_serial.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace diffreg::fft {

SerialFft3d::SerialFft3d(const Int3& dims)
    : dims_(dims),
      n3c_(dims[2] / 2 + 1),
      fft1_(dims[0]),
      fft2_(dims[1]),
      fft3_(dims[2]) {
  if (dims[0] < 1 || dims[1] < 1 || dims[2] < 1)
    throw std::invalid_argument("SerialFft3d: dims must be positive");
  row_.resize(std::max({dims_[0], dims_[1], dims_[2]}));
  work_.resize(spectral_size());
}

void SerialFft3d::forward(std::span<const real_t> real_in,
                          std::span<complex_t> spectral_out) {
  assert(static_cast<index_t>(real_in.size()) == real_size());
  assert(static_cast<index_t>(spectral_out.size()) == spectral_size());
  const index_t n1 = dims_[0], n2 = dims_[1], n3 = dims_[2];

  // Axis 3 (contiguous): r2c via a full complex transform, keep half.
  for (index_t i1 = 0; i1 < n1; ++i1) {
    for (index_t i2 = 0; i2 < n2; ++i2) {
      const real_t* src = real_in.data() + (i1 * n2 + i2) * n3;
      for (index_t i3 = 0; i3 < n3; ++i3) row_[i3] = complex_t(src[i3], 0);
      fft3_.forward(row_.data());
      complex_t* dst = work_.data() + (i1 * n2 + i2) * n3c_;
      std::copy_n(row_.data(), n3c_, dst);
    }
  }

  // Axis 2 (stride n3c_): gather, transform, scatter.
  for (index_t i1 = 0; i1 < n1; ++i1) {
    for (index_t k3 = 0; k3 < n3c_; ++k3) {
      complex_t* base = work_.data() + i1 * n2 * n3c_ + k3;
      for (index_t i2 = 0; i2 < n2; ++i2) row_[i2] = base[i2 * n3c_];
      fft2_.forward(row_.data());
      for (index_t i2 = 0; i2 < n2; ++i2) base[i2 * n3c_] = row_[i2];
    }
  }

  // Axis 1 (stride n2 * n3c_).
  const index_t stride1 = n2 * n3c_;
  for (index_t k2 = 0; k2 < n2; ++k2) {
    for (index_t k3 = 0; k3 < n3c_; ++k3) {
      complex_t* base = work_.data() + k2 * n3c_ + k3;
      for (index_t i1 = 0; i1 < n1; ++i1) row_[i1] = base[i1 * stride1];
      fft1_.forward(row_.data());
      for (index_t i1 = 0; i1 < n1; ++i1) base[i1 * stride1] = row_[i1];
    }
  }
  std::copy(work_.begin(), work_.end(), spectral_out.begin());
}

void SerialFft3d::inverse(std::span<const complex_t> spectral_in,
                          std::span<real_t> real_out) {
  assert(static_cast<index_t>(spectral_in.size()) == spectral_size());
  assert(static_cast<index_t>(real_out.size()) == real_size());
  const index_t n1 = dims_[0], n2 = dims_[1], n3 = dims_[2];
  std::copy(spectral_in.begin(), spectral_in.end(), work_.begin());

  // Axis 1 inverse.
  const index_t stride1 = n2 * n3c_;
  for (index_t k2 = 0; k2 < n2; ++k2) {
    for (index_t k3 = 0; k3 < n3c_; ++k3) {
      complex_t* base = work_.data() + k2 * n3c_ + k3;
      for (index_t i1 = 0; i1 < n1; ++i1) row_[i1] = base[i1 * stride1];
      fft1_.inverse(row_.data());
      for (index_t i1 = 0; i1 < n1; ++i1) base[i1 * stride1] = row_[i1];
    }
  }

  // Axis 2 inverse.
  for (index_t i1 = 0; i1 < n1; ++i1) {
    for (index_t k3 = 0; k3 < n3c_; ++k3) {
      complex_t* base = work_.data() + i1 * n2 * n3c_ + k3;
      for (index_t i2 = 0; i2 < n2; ++i2) row_[i2] = base[i2 * n3c_];
      fft2_.inverse(row_.data());
      for (index_t i2 = 0; i2 < n2; ++i2) base[i2 * n3c_] = row_[i2];
    }
  }

  // Axis 3 inverse: rebuild the Hermitian full row, c2c inverse, take reals.
  for (index_t i1 = 0; i1 < n1; ++i1) {
    for (index_t i2 = 0; i2 < n2; ++i2) {
      const complex_t* src = work_.data() + (i1 * n2 + i2) * n3c_;
      // After the axis-1/axis-2 inverses each row is the r2c spectrum of a
      // real 1D signal, so the missing half is the row's own conjugate.
      for (index_t k3 = 0; k3 < n3c_; ++k3) row_[k3] = src[k3];
      for (index_t k3 = n3c_; k3 < n3; ++k3)
        row_[k3] = std::conj(src[n3 - k3]);
      fft3_.inverse(row_.data());
      real_t* dst = real_out.data() + (i1 * n2 + i2) * n3;
      for (index_t i3 = 0; i3 < n3; ++i3) dst[i3] = row_[i3].real();
    }
  }
}

}  // namespace diffreg::fft
