// Serial 3D real-to-complex FFT on a full array; reference implementation
// used by tests and by the single-rank fallback paths.
//
// Real layout:     [N1][N2][N3], i3 fastest.
// Spectral layout: [N1][N2][N3c] with N3c = N3/2 + 1 (Hermitian half along
//                  axis 3), k3 fastest. k1, k2 run over the full signed
//                  frequency range in FFT order.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "fft/fft1d.hpp"

namespace diffreg::fft {

/// Signed frequency of FFT-ordered index i for size n: 0..n/2, -(n/2-1)..-1.
constexpr index_t fft_frequency(index_t i, index_t n) {
  return (i <= n / 2) ? i : i - n;
}

class SerialFft3d {
 public:
  explicit SerialFft3d(const Int3& dims);

  const Int3& dims() const { return dims_; }
  Int3 spectral_dims() const { return {dims_[0], dims_[1], n3c_}; }
  index_t real_size() const { return dims_.prod(); }
  index_t spectral_size() const { return dims_[0] * dims_[1] * n3c_; }

  /// Unnormalized forward transform.
  void forward(std::span<const real_t> real_in,
               std::span<complex_t> spectral_out);
  /// Inverse with 1/(N1 N2 N3) normalization; inverse(forward(x)) == x.
  void inverse(std::span<const complex_t> spectral_in,
               std::span<real_t> real_out);

 private:
  Int3 dims_;
  index_t n3c_;
  Fft1d fft1_, fft2_, fft3_;
  std::vector<complex_t> row_;      // length max(N1, N2, N3) scratch
  std::vector<complex_t> work_;     // [N1][N2][N3c] working array
};

}  // namespace diffreg::fft
