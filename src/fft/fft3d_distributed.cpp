#include "fft/fft3d_distributed.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/timer.hpp"

namespace diffreg::fft {

using grid::PencilDecomp;

namespace {

/// Cache-blocked 2D transpose: dst[j * dst_stride + i] = src[i * src_stride
/// + j] for i < rows, j < cols. Tiling keeps both the strided reads and the
/// writes inside a few cache lines per tile.
void transpose_block(const complex_t* src, index_t src_stride, complex_t* dst,
                     index_t dst_stride, index_t rows, index_t cols) {
  constexpr index_t kTile = 8;
  for (index_t j0 = 0; j0 < cols; j0 += kTile) {
    const index_t j1 = std::min(cols, j0 + kTile);
    for (index_t i0 = 0; i0 < rows; i0 += kTile) {
      const index_t i1 = std::min(rows, i0 + kTile);
      for (index_t j = j0; j < j1; ++j)
        for (index_t i = i0; i < i1; ++i)
          dst[j * dst_stride + i] = src[i * src_stride + j];
    }
  }
}

}  // namespace

DistributedFft3d::DistributedFft3d(PencilDecomp& decomp, WirePrecision wire,
                                   bool overlap)
    : decomp_(&decomp),
      wire_(wire),
      overlap_(overlap),
      fft1_(decomp.dims()[0]),
      fft2_(decomp.dims()[1]),
      fft3_(decomp.dims()[2]) {
  const Int3 rl = decomp.local_real_dims();
  const index_t n1l = rl[0], n2l = rl[1];
  const index_t n3c = decomp.n3c();
  const index_t n3cl = decomp.srange3().size();
  const index_t n2kl = decomp.srange2().size();
  const index_t n1 = decomp.dims()[0];
  const index_t n2 = decomp.dims()[1];

  a_stride_ = n1l * n2l * n3c;
  b_stride_ = n1l * n3cl * n2;
  s_stride_ = decomp.local_spectral_size();

  stage_a_.resize(kMaxBatch * a_stride_);
  stage_b_.resize(kMaxBatch * b_stride_);
  stage_e_.resize(kMaxBatch * s_stride_);
  row_.resize(std::max(decomp.dims()[2], n1));

  const index_t n3 = decomp.dims()[2];
  ablock_rows_ = std::max<index_t>(
      1, (index_t{1} << 15) / (n3 * static_cast<index_t>(sizeof(complex_t))));
  arow_block_.resize(ablock_rows_ * n3);

  const int p1 = decomp.p1(), p2 = decomp.p2();
  row_send_counts_.resize(p2);
  row_recv_counts_.resize(p2);
  for (int q = 0; q < p2; ++q) {
    row_send_counts_[q] = n1l * block_range(n3c, p2, q).size() * n2l;
    row_recv_counts_[q] = n1l * n3cl * block_range(n2, p2, q).size();
  }
  col_send_counts_.resize(p1);
  col_recv_counts_.resize(p1);
  for (int q = 0; q < p1; ++q) {
    col_send_counts_[q] = n3cl * block_range(n2, p1, q).size() * n1l;
    col_recv_counts_[q] = n3cl * n2kl * block_range(n1, p1, q).size();
  }

  const index_t max_total =
      std::max({a_stride_, b_stride_, s_stride_});
  send_buf_.resize(kMaxBatch * max_total);
  recv_buf_.resize(kMaxBatch * max_total);
  if (wire_ == WirePrecision::kF32) {
    send_buf32_.resize(kMaxBatch * max_total);
    recv_buf32_.resize(kMaxBatch * max_total);
  }
  const int max_p = std::max(p1, p2);
  scaled_send_counts_.resize(max_p);
  scaled_recv_counts_.resize(max_p);
}

void DistributedFft3d::exchange(mpisim::Communicator& comm, int npeers,
                                int ncomp,
                                const std::vector<index_t>& send_counts,
                                const std::vector<index_t>& recv_counts,
                                index_t send_total, index_t recv_total,
                                int tag) {
  for (int q = 0; q < npeers; ++q) {
    scaled_send_counts_[q] = ncomp * send_counts[q];
    scaled_recv_counts_[q] = ncomp * recv_counts[q];
  }
  comm.set_time_kind(TimeKind::kFftComm);
  const std::span<const complex_t> send(
      send_buf_.data(), static_cast<size_t>(ncomp * send_total));
  const std::span<const index_t> scounts(
      scaled_send_counts_.data(), static_cast<size_t>(npeers));
  const std::span<complex_t> recv(recv_buf_.data(),
                                  static_cast<size_t>(ncomp * recv_total));
  const std::span<const index_t> rcounts(
      scaled_recv_counts_.data(), static_cast<size_t>(npeers));
  if (wire_ == WirePrecision::kF32) {
    comm.alltoallv_converted(
        send, scounts, recv, rcounts,
        std::span<complex32_t>(send_buf32_.data(), send.size()),
        std::span<complex32_t>(recv_buf32_.data(), recv.size()), tag);
  } else {
    comm.alltoallv(send, scounts, recv, rcounts, tag);
  }
}

mpisim::CommRequest DistributedFft3d::iexchange(
    mpisim::Communicator& comm, int npeers, int ncomp,
    const std::vector<index_t>& send_counts,
    const std::vector<index_t>& recv_counts, index_t send_total,
    index_t recv_total, int tag) {
  for (int q = 0; q < npeers; ++q) {
    scaled_send_counts_[q] = ncomp * send_counts[q];
    scaled_recv_counts_[q] = ncomp * recv_counts[q];
  }
  comm.set_time_kind(TimeKind::kFftComm);
  const std::span<const complex_t> send(
      send_buf_.data(), static_cast<size_t>(ncomp * send_total));
  const std::span<const index_t> scounts(
      scaled_send_counts_.data(), static_cast<size_t>(npeers));
  const std::span<complex_t> recv(recv_buf_.data(),
                                  static_cast<size_t>(ncomp * recv_total));
  const std::span<const index_t> rcounts(
      scaled_recv_counts_.data(), static_cast<size_t>(npeers));
  if (wire_ == WirePrecision::kF32)
    return comm.ialltoallv_converted(
        send, scounts, recv, rcounts,
        std::span<complex32_t>(send_buf32_.data(), send.size()),
        std::span<complex32_t>(recv_buf32_.data(), recv.size()), tag);
  return comm.ialltoallv(send, scounts, recv, rcounts, tag);
}

// ---------------------------------------------------------------------------
// Stage A: real <-> Hermitian half-spectrum along axis 3, two rows per
// complex transform.

void DistributedFft3d::stage_a_forward(const real_t* real_in,
                                       complex_t* half_out) {
  const Int3 rl = decomp_->local_real_dims();
  const index_t rows = rl[0] * rl[1];
  const index_t n3 = decomp_->dims()[2];
  const index_t n3c = decomp_->n3c();

  // z = x0 + i*x1: one c2c FFT per row *pair* yields both half-spectra via
  // the split X0[k] = (Z[k] + conj(Z[n-k]))/2, X1[k] = -i*(Z[k] -
  // conj(Z[n-k]))/2. Pairs are packed into cache-sized blocks so the 1D
  // transforms run through the stage-major batch path.
  const index_t npairs = rows / 2;
  index_t pair = 0;
  while (pair < npairs) {
    const index_t g = std::min(ablock_rows_, npairs - pair);
    for (index_t t = 0; t < g; ++t) {
      const real_t* s0 = real_in + 2 * (pair + t) * n3;
      const real_t* s1 = s0 + n3;
      complex_t* z = arow_block_.data() + t * n3;
      for (index_t i3 = 0; i3 < n3; ++i3) z[i3] = complex_t(s0[i3], s1[i3]);
    }
    fft3_.forward_batch(arow_block_.data(), g);
    for (index_t t = 0; t < g; ++t) {
      const complex_t* z = arow_block_.data() + t * n3;
      complex_t* d0 = half_out + 2 * (pair + t) * n3c;
      complex_t* d1 = d0 + n3c;
      d0[0] = complex_t(z[0].real(), 0);
      d1[0] = complex_t(z[0].imag(), 0);
      for (index_t k = 1; k < n3c; ++k) {
        const complex_t zk = z[k];
        const complex_t zc = std::conj(z[n3 - k]);
        d0[k] = real_t(0.5) * (zk + zc);
        const complex_t diff = zk - zc;  // == 2i * X1[k]
        d1[k] = complex_t(real_t(0.5) * diff.imag(),
                          real_t(-0.5) * diff.real());
      }
    }
    pair += g;
  }
  const index_t row = 2 * npairs;
  if (row < rows) {  // odd row count: pad the last row to a full c2c FFT
    const real_t* src = real_in + row * n3;
    for (index_t i3 = 0; i3 < n3; ++i3) row_[i3] = complex_t(src[i3], 0);
    fft3_.forward(row_.data());
    std::copy_n(row_.data(), n3c, half_out + row * n3c);
  }
}

void DistributedFft3d::stage_a_inverse(const complex_t* half_in,
                                       real_t* real_out) {
  const Int3 rl = decomp_->local_real_dims();
  const index_t rows = rl[0] * rl[1];
  const index_t n3 = decomp_->dims()[2];
  const index_t n3c = decomp_->n3c();

  // Rebuild z = x0 + i*x1 in the spectral domain: Z[k] = S0[k] + i*S1[k]
  // on the stored half, Hermitian continuation on the mirrored half; one
  // inverse c2c FFT per row pair, blocked through the batch path. The
  // stages upstream ran unnormalized, so the scatter applies the whole
  // 1/(N1 N2 N3) in one pass.
  const real_t inv_n = real_t(1) / static_cast<real_t>(decomp_->dims().prod());
  const index_t npairs = rows / 2;
  index_t pair = 0;
  while (pair < npairs) {
    const index_t g = std::min(ablock_rows_, npairs - pair);
    for (index_t t = 0; t < g; ++t) {
      const complex_t* s0 = half_in + 2 * (pair + t) * n3c;
      const complex_t* s1 = s0 + n3c;
      complex_t* z = arow_block_.data() + t * n3;
      for (index_t k = 0; k < n3c; ++k)
        z[k] = complex_t(s0[k].real() - s1[k].imag(),
                         s0[k].imag() + s1[k].real());
      for (index_t k = n3c; k < n3; ++k) {
        const complex_t a = s0[n3 - k];
        const complex_t b = s1[n3 - k];
        // conj(a) + i*conj(b)
        z[k] = complex_t(a.real() + b.imag(), b.real() - a.imag());
      }
    }
    fft3_.inverse_batch_noscale(arow_block_.data(), g);
    for (index_t t = 0; t < g; ++t) {
      const complex_t* z = arow_block_.data() + t * n3;
      real_t* d0 = real_out + 2 * (pair + t) * n3;
      real_t* d1 = d0 + n3;
      for (index_t i3 = 0; i3 < n3; ++i3) {
        d0[i3] = z[i3].real() * inv_n;
        d1[i3] = z[i3].imag() * inv_n;
      }
    }
    pair += g;
  }
  const index_t row = 2 * npairs;
  if (row < rows) {  // odd row count: Hermitian completion, c2c inverse
    const complex_t* src = half_in + row * n3c;
    for (index_t k3 = 0; k3 < n3c; ++k3) row_[k3] = src[k3];
    for (index_t k3 = n3c; k3 < n3; ++k3) row_[k3] = std::conj(src[n3 - k3]);
    fft3_.inverse_batch_noscale(row_.data(), 1);
    real_t* dst = real_out + row * n3;
    for (index_t i3 = 0; i3 < n3; ++i3) dst[i3] = row_[i3].real() * inv_n;
  }
}

// ---------------------------------------------------------------------------
// Public transforms.

void DistributedFft3d::forward(std::span<const real_t> local_real,
                               std::span<complex_t> local_spectral) {
  const real_t* reals[1] = {local_real.data()};
  complex_t* specs[1] = {local_spectral.data()};
  assert(static_cast<index_t>(local_real.size()) == local_real_size());
  assert(static_cast<index_t>(local_spectral.size()) == local_spectral_size());
  forward_many(std::span<const real_t* const>(reals),
               std::span<complex_t* const>(specs));
}

void DistributedFft3d::inverse(std::span<const complex_t> local_spectral,
                               std::span<real_t> local_real) {
  const complex_t* specs[1] = {local_spectral.data()};
  real_t* reals[1] = {local_real.data()};
  assert(static_cast<index_t>(local_real.size()) == local_real_size());
  assert(static_cast<index_t>(local_spectral.size()) == local_spectral_size());
  inverse_many(std::span<const complex_t* const>(specs),
               std::span<real_t* const>(reals));
}

void DistributedFft3d::forward_many(std::span<const real_t* const> reals,
                                    std::span<complex_t* const> specs) {
  const int ncomp = static_cast<int>(reals.size());
  if (ncomp < 1 || ncomp > kMaxBatch ||
      specs.size() != static_cast<size_t>(ncomp))
    throw std::invalid_argument("DistributedFft3d: bad batch size");
  Timings& timings = decomp_->comm().timings();
  const Int3 rl = decomp_->local_real_dims();
  const index_t n3cl = decomp_->srange3().size();
  const index_t n2kl = decomp_->srange2().size();

  {  // Stage A: r2c along axis 3.
    ScopedTimer t(timings, TimeKind::kFftExec);
    for (int c = 0; c < ncomp; ++c)
      stage_a_forward(reals[c], stage_a_.data() + c * a_stride_);
  }

  row_transpose_forward(ncomp);  // stage_a_ -> stage_b_

  {  // Stage C: c2c along axis 2 — components are contiguous in stage_b_,
     // so one batch call covers all of them.
    ScopedTimer t(timings, TimeKind::kFftExec);
    fft2_.forward_batch(stage_b_.data(), ncomp * rl[0] * n3cl);
  }

  col_transpose_forward(ncomp, specs);  // stage_b_ -> specs

  {  // Stage E: c2c along axis 1 (contiguous rows of the spectral layout).
    ScopedTimer t(timings, TimeKind::kFftExec);
    for (int c = 0; c < ncomp; ++c)
      fft1_.forward_batch(specs[c], n3cl * n2kl);
  }
}

void DistributedFft3d::inverse_many(std::span<const complex_t* const> specs,
                                    std::span<real_t* const> reals) {
  const int ncomp = static_cast<int>(specs.size());
  if (ncomp < 1 || ncomp > kMaxBatch ||
      reals.size() != static_cast<size_t>(ncomp))
    throw std::invalid_argument("DistributedFft3d: bad batch size");
  Timings& timings = decomp_->comm().timings();
  const Int3 rl = decomp_->local_real_dims();
  const index_t n3cl = decomp_->srange3().size();
  const index_t n2kl = decomp_->srange2().size();

  {  // Stage E inverse, out-of-place into stage_e_ (the caller's spectrum
     // stays const; no copy pass — the bit-reversal gather reads it).
     // Unnormalized: the whole 1/(N1 N2 N3) is folded into stage A's
     // scatter, saving two full scaling sweeps.
    ScopedTimer t(timings, TimeKind::kFftExec);
    for (int c = 0; c < ncomp; ++c)
      fft1_.inverse_batch_noscale(specs[c], stage_e_.data() + c * s_stride_,
                                  n3cl * n2kl);
  }

  col_transpose_inverse(ncomp);  // stage_e_ -> stage_b_

  {  // Stage C inverse (unnormalized, see stage E).
    ScopedTimer t(timings, TimeKind::kFftExec);
    fft2_.inverse_batch_noscale(stage_b_.data(), ncomp * rl[0] * n3cl);
  }

  row_transpose_inverse(ncomp);  // stage_b_ -> stage_a_

  {  // Stage A inverse: c2r along axis 3.
    ScopedTimer t(timings, TimeKind::kFftExec);
    for (int c = 0; c < ncomp; ++c)
      stage_a_inverse(stage_a_.data() + c * a_stride_, reals[c]);
  }
}

// ---------------------------------------------------------------------------
// Transposes. Pack/unpack loops write the flat send/recv buffers in peer
// order, each peer chunk holding the components back to back.

void DistributedFft3d::row_transpose_forward(int ncomp) {
  auto& row_comm = decomp_->row_comm();
  Timings& timings = row_comm.timings();
  const int p2 = decomp_->p2();
  const Int3 rl = decomp_->local_real_dims();
  const index_t n1l = rl[0], n2l = rl[1];
  const index_t n3c = decomp_->n3c();
  const index_t n2 = decomp_->dims()[1];
  const index_t n3cl = decomp_->srange3().size();

  if (p2 == 1) {
    // Degenerate pencil dimension: the exchange is the identity, so
    // transpose stage_a_ -> stage_b_ directly instead of round-tripping
    // through the send/recv buffers. Still counted as an exchange entered,
    // keeping the comm counters comparable across process grids.
    ScopedTimer t(timings, TimeKind::kFftExec);
    timings.add_exchange(TimeKind::kFftComm);
    for (int c = 0; c < ncomp; ++c) {
      const complex_t* a = stage_a_.data() + c * a_stride_;
      complex_t* b = stage_b_.data() + c * b_stride_;
      for (index_t i1 = 0; i1 < n1l; ++i1)
        transpose_block(a + i1 * n2 * n3c, n3c, b + i1 * n3c * n2, n2,
                        /*rows=*/n2, /*cols=*/n3c);
    }
    return;
  }

  {
    ScopedTimer t(timings, TimeKind::kFftExec);
    index_t pos = 0;
    for (int q = 0; q < p2; ++q) {
      const BlockRange k3r = block_range(n3c, p2, q);
      for (int c = 0; c < ncomp; ++c) {
        const complex_t* a = stage_a_.data() + c * a_stride_;
        for (index_t i1 = 0; i1 < n1l; ++i1)
          for (index_t k3 = k3r.begin; k3 < k3r.end; ++k3)
            for (index_t i2 = 0; i2 < n2l; ++i2)
              send_buf_[pos++] = a[(i1 * n2l + i2) * n3c + k3];
      }
    }
  }
  // Unpack the peer chunks selected by `want_self` (chunk offsets are
  // q-major prefix sums, so self and peers can be unpacked in any order).
  const int self_q = row_comm.rank();
  const auto unpack = [&](bool want_self) {
    ScopedTimer t(timings, TimeKind::kFftExec);
    index_t base = 0;
    for (int q = 0; q < p2; ++q) {
      const BlockRange i2r = block_range(n2, p2, q);
      if ((q == self_q) == want_self) {
        index_t pos = base;
        for (int c = 0; c < ncomp; ++c) {
          complex_t* b = stage_b_.data() + c * b_stride_;
          for (index_t i1 = 0; i1 < n1l; ++i1)
            for (index_t k3 = 0; k3 < n3cl; ++k3)
              for (index_t i2 = i2r.begin; i2 < i2r.end; ++i2)
                b[(i1 * n3cl + k3) * n2 + i2] = recv_buf_[pos++];
        }
      }
      base += ncomp * row_recv_counts_[q];
    }
  };
  if (overlap_) {
    // Self chunk lands locally at post time; unpack it under the flight.
    auto req = iexchange(row_comm, p2, ncomp, row_send_counts_,
                         row_recv_counts_, a_stride_, b_stride_, kTagRowFwd);
    unpack(/*want_self=*/true);
    req.wait();
    unpack(/*want_self=*/false);
  } else {
    exchange(row_comm, p2, ncomp, row_send_counts_, row_recv_counts_,
             a_stride_, b_stride_, kTagRowFwd);
    unpack(/*want_self=*/true);
    unpack(/*want_self=*/false);
  }
}

void DistributedFft3d::row_transpose_inverse(int ncomp) {
  auto& row_comm = decomp_->row_comm();
  Timings& timings = row_comm.timings();
  const int p2 = decomp_->p2();
  const Int3 rl = decomp_->local_real_dims();
  const index_t n1l = rl[0], n2l = rl[1];
  const index_t n3c = decomp_->n3c();
  const index_t n2 = decomp_->dims()[1];
  const index_t n3cl = decomp_->srange3().size();

  if (p2 == 1) {
    ScopedTimer t(timings, TimeKind::kFftExec);
    timings.add_exchange(TimeKind::kFftComm);
    for (int c = 0; c < ncomp; ++c) {
      const complex_t* b = stage_b_.data() + c * b_stride_;
      complex_t* a = stage_a_.data() + c * a_stride_;
      for (index_t i1 = 0; i1 < n1l; ++i1)
        transpose_block(b + i1 * n3c * n2, n2, a + i1 * n2 * n3c, n3c,
                        /*rows=*/n3c, /*cols=*/n2);
    }
    return;
  }

  {
    ScopedTimer t(timings, TimeKind::kFftExec);
    index_t pos = 0;
    for (int q = 0; q < p2; ++q) {
      const BlockRange i2r = block_range(n2, p2, q);
      for (int c = 0; c < ncomp; ++c) {
        const complex_t* b = stage_b_.data() + c * b_stride_;
        for (index_t i1 = 0; i1 < n1l; ++i1)
          for (index_t k3 = 0; k3 < n3cl; ++k3)
            for (index_t i2 = i2r.begin; i2 < i2r.end; ++i2)
              send_buf_[pos++] = b[(i1 * n3cl + k3) * n2 + i2];
      }
    }
  }
  const int self_q = row_comm.rank();
  const auto unpack = [&](bool want_self) {
    ScopedTimer t(timings, TimeKind::kFftExec);
    index_t base = 0;
    for (int q = 0; q < p2; ++q) {
      const BlockRange k3r = block_range(n3c, p2, q);
      if ((q == self_q) == want_self) {
        index_t pos = base;
        for (int c = 0; c < ncomp; ++c) {
          complex_t* a = stage_a_.data() + c * a_stride_;
          for (index_t i1 = 0; i1 < n1l; ++i1)
            for (index_t k3 = k3r.begin; k3 < k3r.end; ++k3)
              for (index_t i2 = 0; i2 < n2l; ++i2)
                a[(i1 * n2l + i2) * n3c + k3] = recv_buf_[pos++];
        }
      }
      base += ncomp * row_send_counts_[q];
    }
  };
  if (overlap_) {
    auto req = iexchange(row_comm, p2, ncomp, row_recv_counts_,
                         row_send_counts_, b_stride_, a_stride_, kTagRowInv);
    unpack(/*want_self=*/true);
    req.wait();
    unpack(/*want_self=*/false);
  } else {
    exchange(row_comm, p2, ncomp, row_recv_counts_, row_send_counts_,
             b_stride_, a_stride_, kTagRowInv);
    unpack(/*want_self=*/true);
    unpack(/*want_self=*/false);
  }
}

void DistributedFft3d::col_transpose_forward(
    int ncomp, std::span<complex_t* const> specs) {
  auto& col_comm = decomp_->col_comm();
  Timings& timings = col_comm.timings();
  const int p1 = decomp_->p1();
  const index_t n1l = decomp_->range1().size();
  const index_t n3cl = decomp_->srange3().size();
  const index_t n1 = decomp_->dims()[0];
  const index_t n2 = decomp_->dims()[1];
  const index_t n2kl = decomp_->srange2().size();

  if (p1 == 1) {
    ScopedTimer t(timings, TimeKind::kFftExec);
    timings.add_exchange(TimeKind::kFftComm);
    for (int c = 0; c < ncomp; ++c) {
      const complex_t* b = stage_b_.data() + c * b_stride_;
      complex_t* s = specs[c];
      for (index_t k3 = 0; k3 < n3cl; ++k3)
        transpose_block(b + k3 * n2, n3cl * n2, s + k3 * n2 * n1, n1,
                        /*rows=*/n1, /*cols=*/n2);
    }
    return;
  }

  {
    ScopedTimer t(timings, TimeKind::kFftExec);
    index_t pos = 0;
    for (int q = 0; q < p1; ++q) {
      const BlockRange k2r = block_range(n2, p1, q);
      for (int c = 0; c < ncomp; ++c) {
        const complex_t* b = stage_b_.data() + c * b_stride_;
        for (index_t k3 = 0; k3 < n3cl; ++k3)
          for (index_t k2 = k2r.begin; k2 < k2r.end; ++k2)
            for (index_t i1 = 0; i1 < n1l; ++i1)
              send_buf_[pos++] = b[(i1 * n3cl + k3) * n2 + k2];
      }
    }
  }
  const int self_q = col_comm.rank();
  const auto unpack = [&](bool want_self) {
    ScopedTimer t(timings, TimeKind::kFftExec);
    index_t base = 0;
    for (int q = 0; q < p1; ++q) {
      const BlockRange i1r = block_range(n1, p1, q);
      if ((q == self_q) == want_self) {
        index_t pos = base;
        for (int c = 0; c < ncomp; ++c) {
          complex_t* s = specs[c];
          for (index_t k3 = 0; k3 < n3cl; ++k3)
            for (index_t k2 = 0; k2 < n2kl; ++k2)
              for (index_t i1 = i1r.begin; i1 < i1r.end; ++i1)
                s[(k3 * n2kl + k2) * n1 + i1] = recv_buf_[pos++];
        }
      }
      base += ncomp * col_recv_counts_[q];
    }
  };
  if (overlap_) {
    auto req = iexchange(col_comm, p1, ncomp, col_send_counts_,
                         col_recv_counts_, b_stride_, s_stride_, kTagColFwd);
    unpack(/*want_self=*/true);
    req.wait();
    unpack(/*want_self=*/false);
  } else {
    exchange(col_comm, p1, ncomp, col_send_counts_, col_recv_counts_,
             b_stride_, s_stride_, kTagColFwd);
    unpack(/*want_self=*/true);
    unpack(/*want_self=*/false);
  }
}

void DistributedFft3d::col_transpose_inverse(int ncomp) {
  auto& col_comm = decomp_->col_comm();
  Timings& timings = col_comm.timings();
  const int p1 = decomp_->p1();
  const index_t n1l = decomp_->range1().size();
  const index_t n3cl = decomp_->srange3().size();
  const index_t n1 = decomp_->dims()[0];
  const index_t n2 = decomp_->dims()[1];
  const index_t n2kl = decomp_->srange2().size();

  if (p1 == 1) {
    ScopedTimer t(timings, TimeKind::kFftExec);
    timings.add_exchange(TimeKind::kFftComm);
    for (int c = 0; c < ncomp; ++c) {
      const complex_t* s = stage_e_.data() + c * s_stride_;
      complex_t* b = stage_b_.data() + c * b_stride_;
      for (index_t k3 = 0; k3 < n3cl; ++k3)
        transpose_block(s + k3 * n2 * n1, n1, b + k3 * n2, n3cl * n2,
                        /*rows=*/n2, /*cols=*/n1);
    }
    return;
  }

  {
    ScopedTimer t(timings, TimeKind::kFftExec);
    index_t pos = 0;
    for (int q = 0; q < p1; ++q) {
      const BlockRange i1r = block_range(n1, p1, q);
      for (int c = 0; c < ncomp; ++c) {
        const complex_t* s = stage_e_.data() + c * s_stride_;
        for (index_t k3 = 0; k3 < n3cl; ++k3)
          for (index_t k2 = 0; k2 < n2kl; ++k2)
            for (index_t i1 = i1r.begin; i1 < i1r.end; ++i1)
              send_buf_[pos++] = s[(k3 * n2kl + k2) * n1 + i1];
      }
    }
  }
  const int self_q = col_comm.rank();
  const auto unpack = [&](bool want_self) {
    ScopedTimer t(timings, TimeKind::kFftExec);
    index_t base = 0;
    for (int q = 0; q < p1; ++q) {
      const BlockRange k2r = block_range(n2, p1, q);
      if ((q == self_q) == want_self) {
        index_t pos = base;
        for (int c = 0; c < ncomp; ++c) {
          complex_t* b = stage_b_.data() + c * b_stride_;
          for (index_t k3 = 0; k3 < n3cl; ++k3)
            for (index_t k2 = k2r.begin; k2 < k2r.end; ++k2)
              for (index_t i1 = 0; i1 < n1l; ++i1)
                b[(i1 * n3cl + k3) * n2 + k2] = recv_buf_[pos++];
        }
      }
      base += ncomp * col_send_counts_[q];
    }
  };
  if (overlap_) {
    auto req = iexchange(col_comm, p1, ncomp, col_recv_counts_,
                         col_send_counts_, s_stride_, b_stride_, kTagColInv);
    unpack(/*want_self=*/true);
    req.wait();
    unpack(/*want_self=*/false);
  } else {
    exchange(col_comm, p1, ncomp, col_recv_counts_, col_send_counts_,
             s_stride_, b_stride_, kTagColInv);
    unpack(/*want_self=*/true);
    unpack(/*want_self=*/false);
  }
}

}  // namespace diffreg::fft
