#include "fft/fft3d_distributed.hpp"

#include <algorithm>
#include <cassert>

#include "common/timer.hpp"

namespace diffreg::fft {

using grid::PencilDecomp;

DistributedFft3d::DistributedFft3d(PencilDecomp& decomp)
    : decomp_(&decomp),
      fft1_(decomp.dims()[0]),
      fft2_(decomp.dims()[1]),
      fft3_(decomp.dims()[2]) {
  const Int3 rl = decomp.local_real_dims();
  stage_a_.resize(rl[0] * rl[1] * decomp.n3c());
  stage_b_.resize(rl[0] * decomp.srange3().size() * decomp.dims()[1]);
  row_.resize(std::max(decomp.dims()[2], decomp.dims()[0]));
}

void DistributedFft3d::forward(std::span<const real_t> local_real,
                               std::span<complex_t> local_spectral) {
  assert(static_cast<index_t>(local_real.size()) == local_real_size());
  assert(static_cast<index_t>(local_spectral.size()) == local_spectral_size());
  auto& comm = decomp_->comm();
  Timings& timings = comm.timings();
  const Int3 rl = decomp_->local_real_dims();
  const index_t n3 = decomp_->dims()[2];
  const index_t n3c = decomp_->n3c();

  {  // Stage A: r2c along axis 3.
    ScopedTimer t(timings, TimeKind::kFftExec);
    for (index_t row = 0; row < rl[0] * rl[1]; ++row) {
      const real_t* src = local_real.data() + row * n3;
      for (index_t i3 = 0; i3 < n3; ++i3) row_[i3] = complex_t(src[i3], 0);
      fft3_.forward(row_.data());
      std::copy_n(row_.data(), n3c, stage_a_.data() + row * n3c);
    }
  }

  row_transpose_forward();  // stage_a_ -> stage_b_

  {  // Stage C: c2c along axis 2 (contiguous rows of stage_b_).
    ScopedTimer t(timings, TimeKind::kFftExec);
    const index_t rows = rl[0] * decomp_->srange3().size();
    fft2_.forward_batch(stage_b_.data(), rows);
  }

  col_transpose_forward(local_spectral);  // stage_b_ -> local_spectral

  {  // Stage E: c2c along axis 1 (contiguous rows of the spectral layout).
    ScopedTimer t(timings, TimeKind::kFftExec);
    const index_t rows =
        decomp_->srange3().size() * decomp_->srange2().size();
    fft1_.forward_batch(local_spectral.data(), rows);
  }
}

void DistributedFft3d::inverse(std::span<const complex_t> local_spectral,
                               std::span<real_t> local_real) {
  assert(static_cast<index_t>(local_real.size()) == local_real_size());
  assert(static_cast<index_t>(local_spectral.size()) == local_spectral_size());
  auto& comm = decomp_->comm();
  Timings& timings = comm.timings();
  const Int3 rl = decomp_->local_real_dims();
  const index_t n3 = decomp_->dims()[2];
  const index_t n3c = decomp_->n3c();

  // Stage E inverse needs a mutable copy (interface takes const spectral).
  std::vector<complex_t> spec(local_spectral.begin(), local_spectral.end());
  {
    ScopedTimer t(timings, TimeKind::kFftExec);
    const index_t rows =
        decomp_->srange3().size() * decomp_->srange2().size();
    fft1_.inverse_batch(spec.data(), rows);
  }

  col_transpose_inverse(spec);  // spec -> stage_b_

  {  // Stage C inverse.
    ScopedTimer t(timings, TimeKind::kFftExec);
    const index_t rows = rl[0] * decomp_->srange3().size();
    fft2_.inverse_batch(stage_b_.data(), rows);
  }

  row_transpose_inverse();  // stage_b_ -> stage_a_

  {  // Stage A inverse: per-row Hermitian completion, c2c inverse, reals.
    ScopedTimer t(timings, TimeKind::kFftExec);
    for (index_t row = 0; row < rl[0] * rl[1]; ++row) {
      const complex_t* src = stage_a_.data() + row * n3c;
      for (index_t k3 = 0; k3 < n3c; ++k3) row_[k3] = src[k3];
      for (index_t k3 = n3c; k3 < n3; ++k3) row_[k3] = std::conj(src[n3 - k3]);
      fft3_.inverse(row_.data());
      real_t* dst = local_real.data() + row * n3;
      for (index_t i3 = 0; i3 < n3; ++i3) dst[i3] = row_[i3].real();
    }
  }
}

void DistributedFft3d::row_transpose_forward() {
  auto& row_comm = decomp_->row_comm();
  Timings& timings = row_comm.timings();
  row_comm.set_time_kind(TimeKind::kFftComm);
  const int p2 = decomp_->p2();
  const Int3 rl = decomp_->local_real_dims();
  const index_t n1l = rl[0], n2l = rl[1];
  const index_t n3c = decomp_->n3c();
  const index_t n2 = decomp_->dims()[1];

  std::vector<std::vector<complex_t>> send(p2);
  {
    ScopedTimer t(timings, TimeKind::kFftExec);
    for (int q = 0; q < p2; ++q) {
      const BlockRange k3r = block_range(n3c, p2, q);
      auto& buf = send[q];
      buf.resize(n1l * k3r.size() * n2l);
      index_t pos = 0;
      for (index_t i1 = 0; i1 < n1l; ++i1)
        for (index_t k3 = k3r.begin; k3 < k3r.end; ++k3)
          for (index_t i2 = 0; i2 < n2l; ++i2)
            buf[pos++] = stage_a_[(i1 * n2l + i2) * n3c + k3];
    }
  }
  auto recv = row_comm.alltoallv(std::move(send), kTagRowFwd);
  {
    ScopedTimer t(timings, TimeKind::kFftExec);
    const index_t n3cl = decomp_->srange3().size();
    for (int q = 0; q < p2; ++q) {
      const BlockRange i2r = block_range(n2, p2, q);
      const auto& buf = recv[q];
      index_t pos = 0;
      for (index_t i1 = 0; i1 < n1l; ++i1)
        for (index_t k3 = 0; k3 < n3cl; ++k3)
          for (index_t i2 = i2r.begin; i2 < i2r.end; ++i2)
            stage_b_[(i1 * n3cl + k3) * n2 + i2] = buf[pos++];
    }
  }
}

void DistributedFft3d::row_transpose_inverse() {
  auto& row_comm = decomp_->row_comm();
  Timings& timings = row_comm.timings();
  row_comm.set_time_kind(TimeKind::kFftComm);
  const int p2 = decomp_->p2();
  const Int3 rl = decomp_->local_real_dims();
  const index_t n1l = rl[0], n2l = rl[1];
  const index_t n3c = decomp_->n3c();
  const index_t n2 = decomp_->dims()[1];
  const index_t n3cl = decomp_->srange3().size();

  std::vector<std::vector<complex_t>> send(p2);
  {
    ScopedTimer t(timings, TimeKind::kFftExec);
    for (int q = 0; q < p2; ++q) {
      const BlockRange i2r = block_range(n2, p2, q);
      auto& buf = send[q];
      buf.resize(n1l * n3cl * i2r.size());
      index_t pos = 0;
      for (index_t i1 = 0; i1 < n1l; ++i1)
        for (index_t k3 = 0; k3 < n3cl; ++k3)
          for (index_t i2 = i2r.begin; i2 < i2r.end; ++i2)
            buf[pos++] = stage_b_[(i1 * n3cl + k3) * n2 + i2];
    }
  }
  auto recv = row_comm.alltoallv(std::move(send), kTagRowInv);
  {
    ScopedTimer t(timings, TimeKind::kFftExec);
    for (int q = 0; q < p2; ++q) {
      const BlockRange k3r = block_range(n3c, p2, q);
      const auto& buf = recv[q];
      index_t pos = 0;
      for (index_t i1 = 0; i1 < n1l; ++i1)
        for (index_t k3 = k3r.begin; k3 < k3r.end; ++k3)
          for (index_t i2 = 0; i2 < n2l; ++i2)
            stage_a_[(i1 * n2l + i2) * n3c + k3] = buf[pos++];
    }
  }
}

void DistributedFft3d::col_transpose_forward(std::span<complex_t> spectral) {
  auto& col_comm = decomp_->col_comm();
  Timings& timings = col_comm.timings();
  col_comm.set_time_kind(TimeKind::kFftComm);
  const int p1 = decomp_->p1();
  const index_t n1l = decomp_->range1().size();
  const index_t n3cl = decomp_->srange3().size();
  const index_t n1 = decomp_->dims()[0];
  const index_t n2 = decomp_->dims()[1];

  std::vector<std::vector<complex_t>> send(p1);
  {
    ScopedTimer t(timings, TimeKind::kFftExec);
    for (int q = 0; q < p1; ++q) {
      const BlockRange k2r = block_range(n2, p1, q);
      auto& buf = send[q];
      buf.resize(n3cl * k2r.size() * n1l);
      index_t pos = 0;
      for (index_t k3 = 0; k3 < n3cl; ++k3)
        for (index_t k2 = k2r.begin; k2 < k2r.end; ++k2)
          for (index_t i1 = 0; i1 < n1l; ++i1)
            buf[pos++] = stage_b_[(i1 * n3cl + k3) * n2 + k2];
    }
  }
  auto recv = col_comm.alltoallv(std::move(send), kTagColFwd);
  {
    ScopedTimer t(timings, TimeKind::kFftExec);
    const index_t n2kl = decomp_->srange2().size();
    for (int q = 0; q < p1; ++q) {
      const BlockRange i1r = block_range(n1, p1, q);
      const auto& buf = recv[q];
      index_t pos = 0;
      for (index_t k3 = 0; k3 < n3cl; ++k3)
        for (index_t k2 = 0; k2 < n2kl; ++k2)
          for (index_t i1 = i1r.begin; i1 < i1r.end; ++i1)
            spectral[(k3 * n2kl + k2) * n1 + i1] = buf[pos++];
    }
  }
}

void DistributedFft3d::col_transpose_inverse(
    std::span<const complex_t> spectral) {
  auto& col_comm = decomp_->col_comm();
  Timings& timings = col_comm.timings();
  col_comm.set_time_kind(TimeKind::kFftComm);
  const int p1 = decomp_->p1();
  const index_t n1l = decomp_->range1().size();
  const index_t n3cl = decomp_->srange3().size();
  const index_t n1 = decomp_->dims()[0];
  const index_t n2 = decomp_->dims()[1];
  const index_t n2kl = decomp_->srange2().size();

  std::vector<std::vector<complex_t>> send(p1);
  {
    ScopedTimer t(timings, TimeKind::kFftExec);
    for (int q = 0; q < p1; ++q) {
      const BlockRange i1r = block_range(n1, p1, q);
      auto& buf = send[q];
      buf.resize(n3cl * n2kl * i1r.size());
      index_t pos = 0;
      for (index_t k3 = 0; k3 < n3cl; ++k3)
        for (index_t k2 = 0; k2 < n2kl; ++k2)
          for (index_t i1 = i1r.begin; i1 < i1r.end; ++i1)
            buf[pos++] = spectral[(k3 * n2kl + k2) * n1 + i1];
    }
  }
  auto recv = col_comm.alltoallv(std::move(send), kTagColInv);
  {
    ScopedTimer t(timings, TimeKind::kFftExec);
    for (int q = 0; q < p1; ++q) {
      const BlockRange k2r = block_range(n2, p1, q);
      const auto& buf = recv[q];
      index_t pos = 0;
      for (index_t k3 = 0; k3 < n3cl; ++k3)
        for (index_t k2 = k2r.begin; k2 < k2r.end; ++k2)
          for (index_t i1 = 0; i1 < n1l; ++i1)
            stage_b_[(i1 * n3cl + k3) * n2 + k2] = buf[pos++];
    }
  }
}

}  // namespace diffreg::fft
