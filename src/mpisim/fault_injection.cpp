#include "mpisim/fault_injection.hpp"

#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "mpisim/errors.hpp"

namespace diffreg::mpisim {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double parse_number(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0')
    throw CommConfigError("fault-spec: malformed value for '" + key +
                                "': '" + value + "'");
  return parsed;
}

double parse_probability(const std::string& key, const std::string& value) {
  const double p = parse_number(key, value);
  if (p < 0 || p > 1)
    throw CommConfigError("fault-spec: probability '" + key +
                                "' must be in [0, 1], got " + value);
  return p;
}

}  // namespace

FaultSpec FaultSpec::parse(const std::string& spec) {
  FaultSpec out;
  bool delay_prob_given = false;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string::npos)
      throw CommConfigError("fault-spec: expected key=value, got '" +
                                  item + "'");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed") {
      out.seed = static_cast<std::uint64_t>(parse_number(key, value));
    } else if (key == "drop") {
      out.drop = parse_probability(key, value);
    } else if (key == "dup") {
      out.dup = parse_probability(key, value);
    } else if (key == "truncate") {
      out.truncate = parse_probability(key, value);
    } else if (key == "bitflip") {
      out.bitflip = parse_probability(key, value);
    } else if (key == "delay_ms") {
      out.delay_ms = parse_number(key, value);
      if (out.delay_ms < 0)
        throw CommConfigError("fault-spec: delay_ms must be >= 0");
    } else if (key == "delay_prob") {
      out.delay_prob = parse_probability(key, value);
      delay_prob_given = true;
    } else if (key == "crash_rank") {
      out.crash_rank = static_cast<int>(parse_number(key, value));
    } else if (key == "crash_at") {
      out.crash_at = static_cast<long>(parse_number(key, value));
    } else if (key == "crash_repeat") {
      out.crash_repeat = parse_number(key, value) != 0;
    } else if (key == "checksum") {
      out.checksum = parse_number(key, value) != 0;
    } else {
      throw CommConfigError("fault-spec: unknown key '" + key + "'");
    }
  }
  (void)delay_prob_given;
  if (out.crash_rank >= 0 && out.crash_at < 0)
    throw CommConfigError(
        "fault-spec: crash_rank needs a crash_at step");
  return out;
}

double FaultInjectingBackend::roll(std::uint64_t message,
                                   std::uint64_t salt) const {
  // Counter-keyed hash, not a shared stream: the draw for (rank, message,
  // decision) is a pure function of the spec seed, so fault placement is
  // identical across runs and thread schedules.
  const std::uint64_t key =
      splitmix64(spec_.seed ^ (static_cast<std::uint64_t>(rank()) << 48) ^
                 (message << 8) ^ salt);
  return static_cast<double>(key >> 11) * 0x1.0p-53;
}

void FaultInjectingBackend::step() {
  ++op_count_;
  // The crash is keyed to the LAUNCH rank identity (split children are
  // renumbered and must not re-match) and, by default, fires ONCE per rank
  // family: whichever backend instance first passes its crash_at consumes
  // it, so a caller that catches the RankCrashError models a restarted
  // rank whose retries can succeed. crash_repeat keeps the node down.
  if (rank_state_->root_rank != spec_.crash_rank || spec_.crash_at < 0)
    return;
  if (op_count_ <= spec_.crash_at) return;
  if (!spec_.crash_repeat && rank_state_->crashed) return;
  rank_state_->crashed = true;
  throw RankCrashError(rank_state_->root_rank, op_count_);
}

void FaultInjectingBackend::send_bytes(std::span<const std::byte> data,
                                       int dest, int tag) {
  step();
  const std::uint64_t m = msg_count_++;
  if (spec_.delay_ms > 0 && roll(m, 0) < spec_.delay_prob)
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(spec_.delay_ms));
  if (roll(m, 1) < spec_.drop) return;  // Lost on the wire.

  std::span<const std::byte> wire = data;
  const bool truncate = !data.empty() && roll(m, 2) < spec_.truncate;
  const bool flip = !data.empty() && roll(m, 3) < spec_.bitflip;
  if (truncate || flip) {
    scratch_.assign(data.begin(), data.end());
    if (truncate) {
      const auto cut = 1 + static_cast<size_t>(roll(m, 4) * 7.99) %
                               scratch_.size();
      scratch_.resize(scratch_.size() - std::min(cut, scratch_.size()));
    }
    if (flip && !scratch_.empty()) {
      const auto bit = static_cast<size_t>(
          roll(m, 5) * static_cast<double>(scratch_.size() * 8));
      scratch_[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
    }
    wire = scratch_;
  }
  inner_->send_bytes(wire, dest, tag);
  if (roll(m, 6) < spec_.dup) inner_->send_bytes(wire, dest, tag);
}

Incoming FaultInjectingBackend::recv_bytes(int src, int tag) {
  step();
  return inner_->recv_bytes(src, tag);
}

std::optional<Incoming> FaultInjectingBackend::try_recv_bytes(
    int src, int tag, double timeout_ms) {
  step();
  return inner_->try_recv_bytes(src, tag, timeout_ms);
}

bool FaultInjectingBackend::probe(int src, int tag) {
  return inner_->probe(src, tag);
}

void FaultInjectingBackend::barrier() {
  step();
  inner_->barrier();
}

bool FaultInjectingBackend::try_barrier(double timeout_ms) {
  step();
  return inner_->try_barrier(timeout_ms);
}

std::shared_ptr<Backend> FaultInjectingBackend::split(int color, int new_rank,
                                                      int new_size,
                                                      double timeout_ms) {
  // Sub-communicators inherit the schedule (fresh counters: the child's
  // message stream is its own deterministic sequence) and SHARE the
  // per-rank crash state, so the one-shot crash is consumed once per rank,
  // not once per sub-communicator.
  std::shared_ptr<Backend> child =
      inner_->split(color, new_rank, new_size, timeout_ms);
  if (!child) return nullptr;
  return std::shared_ptr<Backend>(
      new FaultInjectingBackend(std::move(child), spec_, rank_state_));
}

}  // namespace diffreg::mpisim
