#include "mpisim/errors.hpp"

#include <cstdio>

namespace diffreg::mpisim {

std::string CommDiagnosis::describe() const {
  char head[192];
  if (src >= 0)
    std::snprintf(head, sizeof head,
                  "rank %d/%d blocked in %s on (src=%d, tag=%d) for %.1f ms",
                  rank, size, operation.c_str(), src, tag, waited_ms);
  else
    std::snprintf(head, sizeof head, "rank %d/%d blocked in %s for %.1f ms",
                  rank, size, operation.c_str(), waited_ms);
  std::string out = head;
  if (!missing.empty()) {
    out += "; still missing:";
    for (const auto& [m_src, m_tag] : missing) {
      char item[48];
      std::snprintf(item, sizeof item, " (src=%d, tag=%d)", m_src, m_tag);
      out += item;
    }
  }
  char counters[128];
  std::snprintf(counters, sizeof counters,
                "; counters: %llu B / %llu msgs sent, %llu exchanges",
                static_cast<unsigned long long>(bytes_sent),
                static_cast<unsigned long long>(messages_sent),
                static_cast<unsigned long long>(exchanges));
  out += counters;
  return out;
}

}  // namespace diffreg::mpisim
