#include "mpisim/backend.hpp"

#include <algorithm>
#include <chrono>

namespace diffreg::mpisim {

namespace detail {

void Mailbox::push(Message message) {
  {
    std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(message));
  }
  cv_.notify_all();
}

Incoming Mailbox::pop(int src, int tag) {
  std::unique_lock lock(mutex_);
  for (;;) {
    auto it = std::find_if(queue_.begin(), queue_.end(), [&](const Message& m) {
      return m.src == src && m.tag == tag;
    });
    if (it != queue_.end()) {
      Incoming in{std::move(it->data), it->arrival};
      queue_.erase(it);
      return in;
    }
    cv_.wait(lock);
  }
}

bool Mailbox::probe(int src, int tag) {
  std::scoped_lock lock(mutex_);
  return std::any_of(queue_.begin(), queue_.end(), [&](const Message& m) {
    return m.src == src && m.tag == tag;
  });
}

SharedState::SharedState(int size_in) : size(size_in), mailboxes(size_in) {}

}  // namespace detail

double MailboxBackend::now() const {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void MailboxBackend::send_bytes(std::span<const std::byte> data, int dest,
                                int tag) {
  // The copy here IS the buffered-send contract: the caller's span is free
  // for reuse the moment this returns, and the copy stands in for the wire.
  state_->mailboxes[static_cast<size_t>(dest)].push(
      {rank_, tag, std::vector<std::byte>(data.begin(), data.end()), now()});
}

Incoming MailboxBackend::recv_bytes(int src, int tag) {
  return state_->mailboxes[static_cast<size_t>(rank_)].pop(src, tag);
}

bool MailboxBackend::probe(int src, int tag) {
  return state_->mailboxes[static_cast<size_t>(rank_)].probe(src, tag);
}

void MailboxBackend::barrier() {
  auto& s = *state_;
  std::unique_lock lock(s.barrier_mutex);
  const long generation = s.barrier_generation;
  if (++s.barrier_count == s.size) {
    s.barrier_count = 0;
    ++s.barrier_generation;
    lock.unlock();
    s.barrier_cv.notify_all();
  } else {
    s.barrier_cv.wait(lock, [&] { return s.barrier_generation != generation; });
  }
}

std::shared_ptr<Backend> MailboxBackend::split(int color, int new_rank,
                                               int new_size) {
  // One split epoch per collective call so repeated splits don't collide.
  long epoch = 0;
  {
    std::scoped_lock lock(state_->split_mutex);
    epoch = state_->split_epoch;
  }
  std::shared_ptr<detail::SharedState> child;
  {
    std::scoped_lock lock(state_->split_mutex);
    auto key = std::make_pair(epoch, color);
    auto it = state_->split_states.find(key);
    if (it == state_->split_states.end()) {
      child = std::make_shared<detail::SharedState>(new_size);
      state_->split_states.emplace(key, child);
    } else {
      child = it->second;
    }
  }
  barrier();
  // After the barrier every rank has resolved its child state; advance the
  // epoch (rank 0) and clear the board lazily on the next epoch rollover.
  if (rank_ == 0) {
    std::scoped_lock lock(state_->split_mutex);
    ++state_->split_epoch;
  }
  barrier();
  return std::make_shared<MailboxBackend>(std::move(child), new_rank);
}

}  // namespace diffreg::mpisim
