#include "mpisim/backend.hpp"

#include <algorithm>
#include <chrono>

namespace diffreg::mpisim {

namespace detail {

void Mailbox::push(Message message) {
  {
    std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(message));
  }
  cv_.notify_all();
}

Incoming Mailbox::pop(int src, int tag) {
  std::unique_lock lock(mutex_);
  for (;;) {
    auto it = std::find_if(queue_.begin(), queue_.end(), [&](const Message& m) {
      return m.src == src && m.tag == tag;
    });
    if (it != queue_.end()) {
      Incoming in{std::move(it->data), it->arrival};
      queue_.erase(it);
      return in;
    }
    cv_.wait(lock);
  }
}

std::optional<Incoming> Mailbox::pop_for(int src, int tag,
                                         double timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(
              timeout_ms > 0 ? timeout_ms : 0));
  std::unique_lock lock(mutex_);
  for (;;) {
    auto it = std::find_if(queue_.begin(), queue_.end(), [&](const Message& m) {
      return m.src == src && m.tag == tag;
    });
    if (it != queue_.end()) {
      Incoming in{std::move(it->data), it->arrival};
      queue_.erase(it);
      return in;
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      // Final check under the lock: a push may have raced the timeout.
      it = std::find_if(queue_.begin(), queue_.end(), [&](const Message& m) {
        return m.src == src && m.tag == tag;
      });
      if (it == queue_.end()) return std::nullopt;
    }
  }
}

bool Mailbox::probe(int src, int tag) {
  std::scoped_lock lock(mutex_);
  return std::any_of(queue_.begin(), queue_.end(), [&](const Message& m) {
    return m.src == src && m.tag == tag;
  });
}

std::size_t Mailbox::clear() {
  std::scoped_lock lock(mutex_);
  const std::size_t dropped = queue_.size();
  queue_.clear();
  return dropped;
}

SharedState::SharedState(int size_in) : size(size_in), mailboxes(size_in) {}

}  // namespace detail

double MailboxBackend::now() const {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void MailboxBackend::send_bytes(std::span<const std::byte> data, int dest,
                                int tag) {
  // The copy here IS the buffered-send contract: the caller's span is free
  // for reuse the moment this returns, and the copy stands in for the wire.
  state_->mailboxes[static_cast<size_t>(dest)].push(
      {rank_, tag, std::vector<std::byte>(data.begin(), data.end()), now()});
}

Incoming MailboxBackend::recv_bytes(int src, int tag) {
  return state_->mailboxes[static_cast<size_t>(rank_)].pop(src, tag);
}

std::optional<Incoming> MailboxBackend::try_recv_bytes(int src, int tag,
                                                       double timeout_ms) {
  return state_->mailboxes[static_cast<size_t>(rank_)].pop_for(src, tag,
                                                               timeout_ms);
}

bool MailboxBackend::probe(int src, int tag) {
  return state_->mailboxes[static_cast<size_t>(rank_)].probe(src, tag);
}

std::size_t MailboxBackend::drain() {
  return state_->mailboxes[static_cast<size_t>(rank_)].clear();
}

void MailboxBackend::barrier() {
  auto& s = *state_;
  std::unique_lock lock(s.barrier_mutex);
  const long generation = s.barrier_generation;
  if (++s.barrier_count == s.size) {
    s.barrier_count = 0;
    ++s.barrier_generation;
    lock.unlock();
    s.barrier_cv.notify_all();
  } else {
    s.barrier_cv.wait(lock, [&] { return s.barrier_generation != generation; });
  }
}

bool MailboxBackend::try_barrier(double timeout_ms) {
  auto& s = *state_;
  std::unique_lock lock(s.barrier_mutex);
  const long generation = s.barrier_generation;
  if (++s.barrier_count == s.size) {
    s.barrier_count = 0;
    ++s.barrier_generation;
    lock.unlock();
    s.barrier_cv.notify_all();
    return true;
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(
              timeout_ms > 0 ? timeout_ms : 0));
  while (s.barrier_generation == generation) {
    if (s.barrier_cv.wait_until(lock, deadline) == std::cv_status::timeout &&
        s.barrier_generation == generation) {
      // Withdraw under the lock so a late full complement still releases
      // cleanly on its own (every waiter left re-decrements its entry).
      --s.barrier_count;
      return false;
    }
  }
  return true;
}

std::shared_ptr<Backend> MailboxBackend::split(int color, int new_rank,
                                               int new_size,
                                               double timeout_ms) {
  // One split epoch per collective call so repeated splits don't collide.
  long epoch = 0;
  {
    std::scoped_lock lock(state_->split_mutex);
    epoch = state_->split_epoch;
  }
  std::shared_ptr<detail::SharedState> child;
  {
    std::scoped_lock lock(state_->split_mutex);
    auto key = std::make_pair(epoch, color);
    auto it = state_->split_states.find(key);
    if (it == state_->split_states.end()) {
      child = std::make_shared<detail::SharedState>(new_size);
      state_->split_states.emplace(key, child);
    } else {
      child = it->second;
    }
  }
  // Both rendezvous barriers honor the watchdog deadline: a peer that died
  // after the caller's collective agreement (e.g. on a checksum failure in
  // the allgather) must surface as a timeout here, not strand the
  // survivors in an untimed wait.
  if (timeout_ms > 0) {
    if (!try_barrier(timeout_ms)) return nullptr;
  } else {
    barrier();
  }
  // After the barrier every rank has resolved its child state; advance the
  // epoch (rank 0) and clear the board lazily on the next epoch rollover.
  if (rank_ == 0) {
    std::scoped_lock lock(state_->split_mutex);
    ++state_->split_epoch;
  }
  if (timeout_ms > 0) {
    if (!try_barrier(timeout_ms)) return nullptr;
  } else {
    barrier();
  }
  return std::make_shared<MailboxBackend>(std::move(child), new_rank);
}

}  // namespace diffreg::mpisim
