#include "mpisim/communicator.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <optional>
#include <string>
#include <thread>

#include "common/logger.hpp"
#include "mpisim/fault_injection.hpp"

namespace diffreg::mpisim {

void Communicator::check_collective_consistent(std::int64_t value,
                                               const char* what) {
  if (size() == 1) return;
  struct Extent {
    std::int64_t lo, hi;
  };
  const Extent mine{value, value};
  const Extent global = allreduce_op(
      mine,
      [](Extent a, Extent b) {
        return Extent{a.lo < b.lo ? a.lo : b.lo, a.hi > b.hi ? a.hi : b.hi};
      },
      kCollectiveTag + 5);
  if (global.lo != global.hi)
    throw std::runtime_error(
        std::string("mpisim: ranks disagree on ") + what +
        " (collective-consistency self-check failed)");
}

CommDiagnosis Communicator::make_diagnosis(
    const char* operation, int src, int tag, double waited_ms,
    std::vector<std::pair<int, int>> missing) const {
  CommDiagnosis d;
  d.rank = rank_;
  d.size = size_;
  d.operation = operation;
  d.src = src;
  d.tag = tag;
  d.waited_ms = waited_ms;
  d.missing = std::move(missing);
  d.bytes_sent = timings_->total_bytes();
  d.messages_sent = timings_->total_messages();
  d.exchanges = timings_->total_exchanges();
  return d;
}

void Communicator::send_with_checksum(std::span<const std::byte> payload,
                                      int dest, int tag) {
  checksum_stage_.resize(payload.size() + sizeof(std::uint64_t));
  if (!payload.empty())
    std::memcpy(checksum_stage_.data(), payload.data(), payload.size());
  const std::uint64_t sum = fnv1a64(payload);
  std::memcpy(checksum_stage_.data() + payload.size(), &sum, sizeof sum);
  timings_->add_message(time_kind_, checksum_stage_.size());
  backend_->send_bytes(checksum_stage_, dest, tag);
}

void Communicator::verify_and_strip_checksum(std::vector<std::byte>& data,
                                             int src, int tag) const {
  if (data.size() < sizeof(std::uint64_t))
    throw CommIntegrityError(rank_, src, tag, data.size(),
                             "payload shorter than its checksum trailer "
                             "(truncated on the wire)");
  const size_t payload_size = data.size() - sizeof(std::uint64_t);
  std::uint64_t stored = 0;
  std::memcpy(&stored, data.data() + payload_size, sizeof stored);
  const std::uint64_t actual =
      fnv1a64(std::span<const std::byte>(data.data(), payload_size));
  if (stored != actual)
    throw CommIntegrityError(rank_, src, tag, payload_size,
                             "checksum mismatch (payload corrupted on the "
                             "wire)");
  data.resize(payload_size);
}

Incoming Communicator::receive_payload(int src, int tag,
                                       const char* operation) {
  Incoming in;
  if (timeout_ms_ > 0) {
    WallTimer waited;
    std::optional<Incoming> got =
        backend_->try_recv_bytes(src, tag, timeout_ms_);
    if (!got)
      throw CommTimeoutError(
          make_diagnosis(operation, src, tag, waited.seconds() * 1e3,
                         {{src, tag}}));
    in = std::move(*got);
  } else {
    in = backend_->recv_bytes(src, tag);
  }
  if (checksums_) verify_and_strip_checksum(in.data, src, tag);
  return in;
}

void Communicator::barrier() {
  check_idle();
  if (size() == 1) return;
  ScopedTimer timer(*timings_, time_kind_);
  if (timeout_ms_ > 0) {
    if (!backend_->try_barrier(timeout_ms_))
      throw CommTimeoutError(
          make_diagnosis("barrier", -1, -1, timeout_ms_, {}));
    return;
  }
  backend_->barrier();
}

Communicator Communicator::split(int color) {
  check_idle();
  // Gather (color, parent rank) from everyone; members of each color are
  // ranked by parent rank. The backend only has to wire up the agreed-upon
  // channels — the collective agreement itself is transport-independent.
  struct Entry {
    int color;
    int rank;
  };
  auto entries = allgather(Entry{color, rank_});

  int new_rank = 0;
  int new_size = 0;
  for (const Entry& e : entries) {
    if (e.color != color) continue;
    if (e.rank < rank_) ++new_rank;
    ++new_size;
  }

  std::shared_ptr<Backend> child_backend =
      backend_->split(color, new_rank, new_size, timeout_ms_);
  if (!child_backend)
    throw CommTimeoutError(
        make_diagnosis("split", -1, -1, timeout_ms_, {}));
  Communicator child(std::move(child_backend), timings_);
  // Robustness settings follow the rank into sub-communicators: a hung
  // row/col exchange must trip the same watchdog as the parent's.
  child.timeout_ms_ = timeout_ms_;
  child.checksums_ = checksums_;
  return child;
}

CommRequest::~CommRequest() {
  if (!comm_) return;
  // An abandoned request is a bug magnet: the drain below keeps the message
  // schedule intact but swallows any failure. Say so loudly (rated, so a
  // leak in a loop does not flood the log) with enough context to find the
  // post site.
  std::string context = "mpisim: CommRequest destroyed before wait(); "
                        "draining " +
                        std::to_string(comm_->pending_recvs_.size()) +
                        " pending receive(s)";
  if (!comm_->pending_recvs_.empty()) {
    const detail::PendingRecv& first = comm_->pending_recvs_.front();
    context += " (first: src=" + std::to_string(first.src) +
               ", tag=" + std::to_string(first.tag) + ")";
  }
  log_warn_rated("mpisim.commrequest.drain",
                 context + " — call wait() to surface failures");
  try {
    wait();
  } catch (const std::exception& e) {
    // Destructors must not throw; the schedule is already poisoned, so the
    // best we can do is make the swallowed failure visible.
    log_warn_rated("mpisim.commrequest.drain-error",
                   std::string("mpisim: drain-on-destroy swallowed: ") +
                       e.what());
  } catch (...) {
  }
}

void CommRequest::wait() {
  if (!comm_) return;
  Communicator* comm = std::exchange(comm_, nullptr);
  Timings& timings = *comm->timings_;
  Backend& backend = *comm->backend_;
  const double wait_entry = backend.now();
  double last_arrival = post_time_;
  try {
    // Time actually spent blocked (plus delivery memcpy/widen sweeps) is
    // charged to the category like a blocking receive would be.
    ScopedTimer timer(timings, kind_);
    for (const detail::PendingRecv& pr : comm->pending_recvs_) {
      Incoming in;
      if (comm->timeout_ms_ > 0) {
        WallTimer waited;
        std::optional<Incoming> got =
            backend.try_recv_bytes(pr.src, pr.tag, comm->timeout_ms_);
        if (!got) {
          // Deadline expired: snapshot which of the posted matches are
          // STILL missing (probe is nonblocking), so the diagnosis names
          // every absent peer of the exchange, not just the one we were
          // blocked on.
          std::vector<std::pair<int, int>> missing;
          for (const detail::PendingRecv& other : comm->pending_recvs_)
            if (!backend.probe(other.src, other.tag))
              missing.emplace_back(other.src, other.tag);
          throw CommTimeoutError(comm->make_diagnosis(
              "nonblocking wait", pr.src, pr.tag, waited.seconds() * 1e3,
              std::move(missing)));
        }
        in = std::move(*got);
      } else {
        in = backend.recv_bytes(pr.src, pr.tag);
      }
      if (comm->checksums_)
        comm->verify_and_strip_checksum(in.data, pr.src, pr.tag);
      if (in.data.size() != pr.payload_bytes)
        throw std::runtime_error(
            "mpisim: nonblocking receive payload size does not match the "
            "posted buffer");
      if (pr.widen != nullptr)
        pr.widen(in.data.data(), pr.dst, pr.elems);
      else if (!in.data.empty())
        std::memcpy(pr.dst, in.data.data(), in.data.size());
      last_arrival = std::max(last_arrival, in.arrival);
    }
  } catch (...) {
    // The exchange is unrecoverable; release the one-outstanding-request
    // slot so the failure propagates instead of cascading into
    // "communication attempted while a request is outstanding".
    comm->pending_recvs_.clear();
    comm->pending_ = false;
    throw;
  }
  comm->pending_recvs_.clear();
  comm->pending_ = false;
  // Hidden comm time: the wire was busy from the post until the last
  // message landed; whatever portion of that elapsed before the caller
  // blocked here was overlapped with compute.
  timings.add_hidden(kind_,
                     std::max(0.0, std::min(last_arrival, wait_entry) -
                                       post_time_));
}

bool CommRequest::test() {
  if (!comm_) return true;
  for (const detail::PendingRecv& pr : comm_->pending_recvs_)
    if (!comm_->backend_->probe(pr.src, pr.tag)) return false;
  wait();  // Every match has arrived: completes without blocking.
  return true;
}

std::vector<Timings> run_spmd(
    int p, const std::function<void(Communicator&)>& body) {
  // Environment hooks let the chaos CI job rerun any existing suite under
  // faults/watchdog without recompiling; explicit SpmdOptions callers are
  // unaffected.
  SpmdOptions options;
  if (const char* spec = std::getenv("DIFFREG_FAULT_SPEC"))
    options.fault_spec = spec;
  if (const char* timeout = std::getenv("DIFFREG_COMM_TIMEOUT_MS"))
    options.comm_timeout_ms = std::atof(timeout);
  return run_spmd(p, body, options);
}

std::vector<Timings> run_spmd(int p,
                              const std::function<void(Communicator&)>& body,
                              const SpmdOptions& options) {
  // Parse up front so a malformed spec fails the launch, not rank threads.
  std::optional<FaultSpec> spec;
  if (!options.fault_spec.empty())
    spec = FaultSpec::parse(options.fault_spec);
  const bool checksums =
      options.wire_checksums || (spec.has_value() && spec->checksum);

  auto state = std::make_shared<detail::SharedState>(p);
  std::vector<Timings> timings(p);
  std::vector<std::thread> threads;
  threads.reserve(p);
  std::mutex error_mutex;
  std::exception_ptr first_error;

  for (int r = 0; r < p; ++r) {
    threads.emplace_back([&, r] {
      std::shared_ptr<Backend> backend =
          std::make_shared<MailboxBackend>(state, r);
      if (spec.has_value() && spec->enabled())
        backend = std::make_shared<FaultInjectingBackend>(std::move(backend),
                                                          *spec);
      Communicator comm(std::move(backend), &timings[r]);
      comm.set_comm_timeout_ms(options.comm_timeout_ms);
      comm.set_wire_checksums(checksums);
      try {
        body(comm);
      } catch (...) {
        std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return timings;
}

}  // namespace diffreg::mpisim
