#include "mpisim/communicator.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <optional>
#include <string>
#include <thread>

#include "common/logger.hpp"
#include "mpisim/fault_injection.hpp"

namespace diffreg::mpisim {

void Communicator::check_collective_consistent(std::int64_t value,
                                               const char* what) {
  if (size() == 1) return;
  struct Extent {
    std::int64_t lo, hi;
  };
  const Extent mine{value, value};
  const Extent global = allreduce_op(
      mine,
      [](Extent a, Extent b) {
        return Extent{a.lo < b.lo ? a.lo : b.lo, a.hi > b.hi ? a.hi : b.hi};
      },
      kCollectiveTag + 5);
  if (global.lo != global.hi)
    throw CommContractError(
        std::string("mpisim: ranks disagree on ") + what +
        " (collective-consistency self-check failed)");
}

namespace {

// splitmix64 finalizer: decorrelates the packed (op index, src, dst, bytes)
// words the transpose-consistency accumulators sum, so distinct mispairings
// cannot cancel each other out of the wrapping total.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// FNV-1a continuation over the 8 bytes of one word (little-endian order —
// part of the verifier wire format, see docs/ANALYSIS.md).
std::uint64_t fold_word(std::uint64_t hash, std::uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (word >> (8 * i)) & 0xffu;
    hash *= 1099511628211ull;
  }
  return hash;
}

// The word both endpoints of one peer chunk fold: sender folds it into the
// send accumulator with (src = self), receiver into the recv accumulator
// with (dst = self). Globally sum(send) == sum(recv) iff the claimed and
// expected chunks pair up one-to-one.
std::uint64_t chunk_word(std::uint64_t op_index, int src, int dst,
                         std::uint64_t bytes) {
  std::uint64_t w = mix64(op_index);
  w = mix64(w + ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
                  << 32) |
                 static_cast<std::uint32_t>(dst)));
  return mix64(w + bytes);
}

}  // namespace

void Communicator::verify_record(ScheduleOpKind kind, int tag,
                                 std::uint32_t wire_bits,
                                 std::uint64_t extra) {
  if (!verify_ || in_verify_ || size_ == 1) return;
  std::uint64_t h = 1469598103934665603ull;
  h = fold_word(h, static_cast<std::uint64_t>(kind));
  h = fold_word(h, static_cast<std::uint32_t>(tag));
  h = fold_word(h, wire_bits);
  h = fold_word(h, extra);
  if (h == 0) h = 1;  // 0 is the recovery pass's "no op here" padding.
  verify_hash_ = fold_word(verify_hash_, h);
  verify_op_hashes_.push_back(h);
  verify_op_sigs_.push_back({kind, tag, wire_bits, extra});
  verify_op_send_sums_.push_back(0);
  verify_op_recv_sums_.push_back(0);
}

// diffreg:zero-alloc
void Communicator::verify_fold_send(int dest, std::uint64_t bytes) {
  if (!verify_ || in_verify_ || verify_op_hashes_.empty()) return;
  const std::uint64_t w =
      chunk_word(verify_op_hashes_.size() - 1, rank_, dest, bytes);
  verify_send_sum_ += w;
  verify_op_send_sums_.back() += w;
}

// diffreg:zero-alloc
void Communicator::verify_fold_recv(int src, std::uint64_t bytes) {
  if (!verify_ || in_verify_ || verify_op_hashes_.empty()) return;
  const std::uint64_t w =
      chunk_word(verify_op_hashes_.size() - 1, src, rank_, bytes);
  verify_recv_sum_ += w;
  verify_op_recv_sums_.back() += w;
}

void Communicator::verify_fold_counts(std::span<const index_t> send_counts,
                                      std::span<const index_t> recv_counts,
                                      std::size_t elem_bytes) {
  if (!verify_ || in_verify_ || size_ == 1) return;
  for (int r = 0; r < size_; ++r) {
    if (r == rank_) continue;
    verify_fold_send(r, static_cast<std::uint64_t>(send_counts[r]) *
                            elem_bytes);
    verify_fold_recv(r, static_cast<std::uint64_t>(recv_counts[r]) *
                            elem_bytes);
  }
}

void Communicator::verify_checkpoint(const char* operation) {
  if (!verify_ || in_verify_ || size_ == 1) return;
  // RAII reset: the checkpoint (and the recovery pass it may enter) uses
  // the ordinary collectives, which must not record themselves — and the
  // guard must clear even when the allreduce below throws (watchdog).
  struct Guard {
    bool& flag;
    ~Guard() { flag = false; }
  } guard{in_verify_};
  in_verify_ = true;
  // One packed allreduce: hashes agree iff min == max; the byte-count
  // accumulators transpose iff the wrapping sums of both sides agree.
  struct Packet {
    std::uint64_t lo, hi, send, recv;
  };
  const Packet mine{verify_hash_, verify_hash_, verify_send_sum_,
                    verify_recv_sum_};
  const Packet global = allreduce_op(
      mine,
      [](Packet a, Packet b) {
        return Packet{a.lo < b.lo ? a.lo : b.lo, a.hi > b.hi ? a.hi : b.hi,
                      a.send + b.send, a.recv + b.recv};
      },
      kCollectiveTag + 6);
  if (global.lo == global.hi && global.send == global.recv) return;
  verify_raise_divergence(operation);
}

void Communicator::verify_raise_divergence(const char* operation) {
  // Every rank saw the same mismatched global packet, so every rank enters
  // this recovery pass together: exchange the per-op histories (padded to
  // the longest rank's schedule) and agree on the FIRST index where either
  // the signatures or the byte sums differ — then all throw.
  const long my_count = static_cast<long>(verify_op_hashes_.size());
  const long max_count = allreduce_op(
      my_count, [](long a, long b) { return a > b ? a : b; },
      kCollectiveTag + 6);
  const auto min_op = [](std::uint64_t a, std::uint64_t b) {
    return a < b ? a : b;
  };
  const auto max_op = [](std::uint64_t a, std::uint64_t b) {
    return a > b ? a : b;
  };
  const auto sum_op = [](std::uint64_t a, std::uint64_t b) { return a + b; };
  std::vector<std::uint64_t> hash_min(verify_op_hashes_);
  hash_min.resize(static_cast<std::size_t>(max_count), 0);
  std::vector<std::uint64_t> hash_max = hash_min;
  allreduce_vec(hash_min, min_op, kCollectiveTag + 6);
  allreduce_vec(hash_max, max_op, kCollectiveTag + 6);
  std::vector<std::uint64_t> send_sums(verify_op_send_sums_);
  send_sums.resize(static_cast<std::size_t>(max_count), 0);
  std::vector<std::uint64_t> recv_sums(verify_op_recv_sums_);
  recv_sums.resize(static_cast<std::size_t>(max_count), 0);
  allreduce_vec(send_sums, sum_op, kCollectiveTag + 6);
  allreduce_vec(recv_sums, sum_op, kCollectiveTag + 6);
  long first = -1;
  bool counts_only = false;
  for (long i = 0; i < max_count; ++i) {
    const auto j = static_cast<std::size_t>(i);
    if (hash_min[j] != hash_max[j] || send_sums[j] != recv_sums[j]) {
      first = i;
      counts_only = hash_min[j] == hash_max[j];
      break;
    }
  }
  throw ScheduleDivergenceError(make_diagnosis(operation, -1, -1, 0, {}),
                                first, my_count,
                                verify_describe_op(first, counts_only));
}

std::string Communicator::verify_describe_op(long index,
                                             bool counts_only) const {
  if (index < 0)
    return "not localizable — the per-op histories agree element-wise "
           "(rolling-hash collision?)";
  if (index >= static_cast<long>(verify_op_sigs_.size()))
    return "none — this rank's schedule was already exhausted";
  static constexpr const char* kNames[] = {
      "barrier",  "broadcast", "allreduce", "allreduce_vec", "allgather",
      "alltoall", "alltoallv", "split",     "mark"};
  const detail::ScheduleOpSig& sig =
      verify_op_sigs_[static_cast<std::size_t>(index)];
  std::string s = kNames[static_cast<int>(sig.kind)];
  s += " (tag/id " + std::to_string(sig.tag);
  if (sig.wire_bits != 0)
    s += ", wire " + std::to_string(sig.wire_bits) + "-bit";
  if (sig.extra != 0) s += ", n " + std::to_string(sig.extra);
  s += ")";
  if (counts_only) s += " [signatures agree; per-peer byte counts mismatch]";
  return s;
}

CommDiagnosis Communicator::make_diagnosis(
    const char* operation, int src, int tag, double waited_ms,
    std::vector<std::pair<int, int>> missing) const {
  CommDiagnosis d;
  d.rank = rank_;
  d.size = size_;
  d.operation = operation;
  d.src = src;
  d.tag = tag;
  d.waited_ms = waited_ms;
  d.missing = std::move(missing);
  d.bytes_sent = timings_->total_bytes();
  d.messages_sent = timings_->total_messages();
  d.exchanges = timings_->total_exchanges();
  return d;
}

void Communicator::send_with_checksum(std::span<const std::byte> payload,
                                      int dest, int tag) {
  checksum_stage_.resize(payload.size() + sizeof(std::uint64_t));
  if (!payload.empty())
    std::memcpy(checksum_stage_.data(), payload.data(), payload.size());
  const std::uint64_t sum = fnv1a64(payload);
  std::memcpy(checksum_stage_.data() + payload.size(), &sum, sizeof sum);
  timings_->add_message(time_kind_, checksum_stage_.size());
  backend_->send_bytes(checksum_stage_, dest, tag);
}

void Communicator::verify_and_strip_checksum(std::vector<std::byte>& data,
                                             int src, int tag) const {
  if (data.size() < sizeof(std::uint64_t))
    throw CommIntegrityError(rank_, src, tag, data.size(),
                             "payload shorter than its checksum trailer "
                             "(truncated on the wire)");
  const size_t payload_size = data.size() - sizeof(std::uint64_t);
  std::uint64_t stored = 0;
  std::memcpy(&stored, data.data() + payload_size, sizeof stored);
  const std::uint64_t actual =
      fnv1a64(std::span<const std::byte>(data.data(), payload_size));
  if (stored != actual)
    throw CommIntegrityError(rank_, src, tag, payload_size,
                             "checksum mismatch (payload corrupted on the "
                             "wire)");
  data.resize(payload_size);
}

Incoming Communicator::receive_payload(int src, int tag,
                                       const char* operation) {
  Incoming in;
  if (timeout_ms_ > 0) {
    WallTimer waited;
    std::optional<Incoming> got =
        backend_->try_recv_bytes(src, tag, timeout_ms_);
    if (!got)
      throw CommTimeoutError(
          make_diagnosis(operation, src, tag, waited.seconds() * 1e3,
                         {{src, tag}}));
    in = std::move(*got);
  } else {
    in = backend_->recv_bytes(src, tag);
  }
  if (checksums_) verify_and_strip_checksum(in.data, src, tag);
  return in;
}

bool Communicator::recover_after_fault(double timeout_ms) {
  // Local reset first, unconditionally: an aborted exchange may have left
  // the one-outstanding-request slot taken, and the verifier's rolling
  // hashes diverged the moment the ranks left the exchange at different
  // points — both must clear even when the rendezvous below fails.
  pending_recvs_.clear();
  pending_ = false;
  verify_hash_ = 1469598103934665603ull;
  verify_send_sum_ = 0;
  verify_recv_sum_ = 0;
  verify_op_hashes_.clear();
  verify_op_sigs_.clear();
  verify_op_send_sums_.clear();
  verify_op_recv_sums_.clear();
  if (size_ == 1) {
    backend_->drain();
    return true;
  }
  // Quiesce → drain → resync, straight on the backend (the raw transport —
  // recovery is out-of-band and must not fold into the schedule hash it
  // just reset). The first rendezvous guarantees no rank is still sending
  // into a queue being drained; the second that no rank resumes sending
  // before every queue is clean. A peer that never arrives (truly down, or
  // still throwing its injected crash) fails the rendezvous: report
  // unrecoverable instead of hanging or rethrowing.
  const double deadline = timeout_ms > 0 ? timeout_ms : 1000;
  try {
    if (!backend_->try_barrier(deadline)) return false;
    const std::size_t dropped = backend_->drain();
    if (dropped > 0)
      log_warn_rated("mpisim.recover.drain",
                     "mpisim: fault recovery dropped " +
                         std::to_string(dropped) +
                         " stale in-flight message(s)");
    if (!backend_->try_barrier(deadline)) return false;
  } catch (const CommError&) {
    // The recovery attempt itself tripped the fault injector (a persistent
    // crash): the rank is effectively down for this communicator.
    return false;
  }
  return true;
}

void Communicator::barrier() {
  check_idle();
  if (size() == 1) return;
  verify_record(ScheduleOpKind::kBarrier, 0, 0, 0);
  verify_checkpoint("barrier");
  ScopedTimer timer(*timings_, time_kind_);
  if (timeout_ms_ > 0) {
    if (!backend_->try_barrier(timeout_ms_))
      throw CommTimeoutError(
          make_diagnosis("barrier", -1, -1, timeout_ms_, {}));
    return;
  }
  backend_->barrier();
}

Communicator Communicator::split(int color) {
  check_idle();
  // The split itself is recorded before its internal allgather (which
  // records its own op): both entries are issued identically on every rank,
  // so the history stays rank-invariant. The color is rank-specific and
  // must NOT be folded.
  verify_record(ScheduleOpKind::kSplit, 0, 0, 0);
  verify_checkpoint("split");
  // Gather (color, parent rank) from everyone; members of each color are
  // ranked by parent rank. The backend only has to wire up the agreed-upon
  // channels — the collective agreement itself is transport-independent.
  struct Entry {
    int color;
    int rank;
  };
  auto entries = allgather(Entry{color, rank_});

  int new_rank = 0;
  int new_size = 0;
  for (const Entry& e : entries) {
    if (e.color != color) continue;
    if (e.rank < rank_) ++new_rank;
    ++new_size;
  }

  std::shared_ptr<Backend> child_backend =
      backend_->split(color, new_rank, new_size, timeout_ms_);
  if (!child_backend)
    throw CommTimeoutError(
        make_diagnosis("split", -1, -1, timeout_ms_, {}));
  Communicator child(std::move(child_backend), timings_);
  // Robustness settings follow the rank into sub-communicators: a hung
  // row/col exchange must trip the same watchdog as the parent's. The
  // schedule verifier restarts with fresh hash state — sub-communicator
  // histories are compared within the sub-communicator only.
  child.timeout_ms_ = timeout_ms_;
  child.checksums_ = checksums_;
  child.verify_ = verify_;
  return child;
}

CommRequest::~CommRequest() {
  if (!comm_) return;
  // An abandoned request is a bug magnet: the drain below keeps the message
  // schedule intact but swallows any failure. Say so loudly (rated, so a
  // leak in a loop does not flood the log) with enough context to find the
  // post site.
  std::string context = "mpisim: CommRequest destroyed before wait(); "
                        "draining " +
                        std::to_string(comm_->pending_recvs_.size()) +
                        " pending receive(s)";
  if (!comm_->pending_recvs_.empty()) {
    const detail::PendingRecv& first = comm_->pending_recvs_.front();
    context += " (first: src=" + std::to_string(first.src) +
               ", tag=" + std::to_string(first.tag) + ")";
  }
  log_warn_rated("mpisim.commrequest.drain",
                 context + " — call wait() to surface failures");
  try {
    wait();
  } catch (const std::exception& e) {
    // Destructors must not throw; the schedule is already poisoned, so the
    // best we can do is make the swallowed failure visible.
    log_warn_rated("mpisim.commrequest.drain-error",
                   std::string("mpisim: drain-on-destroy swallowed: ") +
                       e.what());
  } catch (...) {
  }
}

void CommRequest::wait() {
  if (!comm_) return;
  Communicator* comm = std::exchange(comm_, nullptr);
  Timings& timings = *comm->timings_;
  Backend& backend = *comm->backend_;
  const double wait_entry = backend.now();
  double last_arrival = post_time_;
  try {
    // Time actually spent blocked (plus delivery memcpy/widen sweeps) is
    // charged to the category like a blocking receive would be.
    ScopedTimer timer(timings, kind_);
    for (const detail::PendingRecv& pr : comm->pending_recvs_) {
      Incoming in;
      if (comm->timeout_ms_ > 0) {
        WallTimer waited;
        std::optional<Incoming> got =
            backend.try_recv_bytes(pr.src, pr.tag, comm->timeout_ms_);
        if (!got) {
          // Deadline expired: snapshot which of the posted matches are
          // STILL missing (probe is nonblocking), so the diagnosis names
          // every absent peer of the exchange, not just the one we were
          // blocked on.
          std::vector<std::pair<int, int>> missing;
          for (const detail::PendingRecv& other : comm->pending_recvs_)
            if (!backend.probe(other.src, other.tag))
              missing.emplace_back(other.src, other.tag);
          throw CommTimeoutError(comm->make_diagnosis(
              "nonblocking wait", pr.src, pr.tag, waited.seconds() * 1e3,
              std::move(missing)));
        }
        in = std::move(*got);
      } else {
        in = backend.recv_bytes(pr.src, pr.tag);
      }
      if (comm->checksums_)
        comm->verify_and_strip_checksum(in.data, pr.src, pr.tag);
      if (in.data.size() != pr.payload_bytes)
        throw CommContractError(
            "mpisim: nonblocking receive payload size does not match the "
            "posted buffer");
      if (pr.widen != nullptr)
        pr.widen(in.data.data(), pr.dst, pr.elems);
      else if (!in.data.empty())
        std::memcpy(pr.dst, in.data.data(), in.data.size());
      last_arrival = std::max(last_arrival, in.arrival);
    }
  } catch (...) {
    // The exchange is unrecoverable; release the one-outstanding-request
    // slot so the failure propagates instead of cascading into
    // "communication attempted while a request is outstanding".
    comm->pending_recvs_.clear();
    comm->pending_ = false;
    throw;
  }
  comm->pending_recvs_.clear();
  comm->pending_ = false;
  // Hidden comm time: the wire was busy from the post until the last
  // message landed; whatever portion of that elapsed before the caller
  // blocked here was overlapped with compute.
  timings.add_hidden(kind_,
                     std::max(0.0, std::min(last_arrival, wait_entry) -
                                       post_time_));
}

bool CommRequest::test() {
  if (!comm_) return true;
  for (const detail::PendingRecv& pr : comm_->pending_recvs_)
    if (!comm_->backend_->probe(pr.src, pr.tag)) return false;
  wait();  // Every match has arrived: completes without blocking.
  return true;
}

std::vector<Timings> run_spmd(
    int p, const std::function<void(Communicator&)>& body) {
  // Environment hooks let the chaos CI job rerun any existing suite under
  // faults/watchdog without recompiling; explicit SpmdOptions callers are
  // unaffected.
  // The getenv calls below run on the host thread BEFORE any rank thread
  // spawns, so the mt-unsafe lint does not apply (nothing concurrently
  // mutates the environment).
  SpmdOptions options;
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* spec = std::getenv("DIFFREG_FAULT_SPEC"))
    options.fault_spec = spec;
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* timeout = std::getenv("DIFFREG_COMM_TIMEOUT_MS"))
    options.comm_timeout_ms = std::atof(timeout);
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* verify = std::getenv("DIFFREG_VERIFY_SCHEDULE"))
    options.verify_schedule = std::atoi(verify) != 0;
  return run_spmd(p, body, options);
}

std::vector<Timings> run_spmd(int p,
                              const std::function<void(Communicator&)>& body,
                              const SpmdOptions& options) {
  // Parse up front so a malformed spec fails the launch, not rank threads.
  std::optional<FaultSpec> spec;
  if (!options.fault_spec.empty())
    spec = FaultSpec::parse(options.fault_spec);
  const bool checksums =
      options.wire_checksums || (spec.has_value() && spec->checksum);

  auto state = std::make_shared<detail::SharedState>(p);
  std::vector<Timings> timings(p);
  std::vector<std::thread> threads;
  threads.reserve(p);
  std::mutex error_mutex;
  std::exception_ptr first_error;

  for (int r = 0; r < p; ++r) {
    threads.emplace_back([&, r] {
      std::shared_ptr<Backend> backend =
          std::make_shared<MailboxBackend>(state, r);
      if (spec.has_value() && spec->enabled())
        backend = std::make_shared<FaultInjectingBackend>(std::move(backend),
                                                          *spec);
      Communicator comm(std::move(backend), &timings[r]);
      comm.set_comm_timeout_ms(options.comm_timeout_ms);
      comm.set_wire_checksums(checksums);
      comm.set_verify_schedule(options.verify_schedule);
      try {
        body(comm);
      } catch (...) {
        std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return timings;
}

}  // namespace diffreg::mpisim
