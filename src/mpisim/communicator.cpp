#include "mpisim/communicator.hpp"

#include <algorithm>
#include <exception>
#include <string>
#include <thread>

namespace diffreg::mpisim {

namespace detail {

void Mailbox::push(Message message) {
  {
    std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(message));
  }
  cv_.notify_all();
}

std::vector<std::byte> Mailbox::pop(int src, int tag) {
  std::unique_lock lock(mutex_);
  for (;;) {
    auto it = std::find_if(queue_.begin(), queue_.end(), [&](const Message& m) {
      return m.src == src && m.tag == tag;
    });
    if (it != queue_.end()) {
      std::vector<std::byte> data = std::move(it->data);
      queue_.erase(it);
      return data;
    }
    cv_.wait(lock);
  }
}

SharedState::SharedState(int size_in) : size(size_in), mailboxes(size_in) {}

}  // namespace detail

void Communicator::check_collective_consistent(std::int64_t value,
                                               const char* what) {
  if (size() == 1) return;
  struct Extent {
    std::int64_t lo, hi;
  };
  const Extent mine{value, value};
  const Extent global = allreduce_op(
      mine,
      [](Extent a, Extent b) {
        return Extent{a.lo < b.lo ? a.lo : b.lo, a.hi > b.hi ? a.hi : b.hi};
      },
      kCollectiveTag + 5);
  if (global.lo != global.hi)
    throw std::runtime_error(
        std::string("mpisim: ranks disagree on ") + what +
        " (collective-consistency self-check failed)");
}

void Communicator::barrier() {
  if (size() == 1) return;
  ScopedTimer timer(*timings_, time_kind_);
  auto& s = *state_;
  std::unique_lock lock(s.barrier_mutex);
  const long generation = s.barrier_generation;
  if (++s.barrier_count == s.size) {
    s.barrier_count = 0;
    ++s.barrier_generation;
    lock.unlock();
    s.barrier_cv.notify_all();
  } else {
    s.barrier_cv.wait(lock,
                      [&] { return s.barrier_generation != generation; });
  }
}

Communicator Communicator::split(int color) {
  // Gather (color, parent rank) from everyone; members of each color are
  // ranked by parent rank.
  struct Entry {
    int color;
    int rank;
  };
  auto entries = allgather(Entry{color, rank_});

  int new_rank = 0;
  int new_size = 0;
  for (const Entry& e : entries) {
    if (e.color != color) continue;
    if (e.rank < rank_) ++new_rank;
    ++new_size;
  }

  // One split epoch per collective call so repeated splits don't collide.
  long epoch = 0;
  {
    std::scoped_lock lock(state_->split_mutex);
    epoch = state_->split_epoch;
  }
  std::shared_ptr<detail::SharedState> child;
  {
    std::scoped_lock lock(state_->split_mutex);
    auto key = std::make_pair(epoch, color);
    auto it = state_->split_states.find(key);
    if (it == state_->split_states.end()) {
      child = std::make_shared<detail::SharedState>(new_size);
      state_->split_states.emplace(key, child);
    } else {
      child = it->second;
    }
  }
  barrier();
  // After the barrier every rank has resolved its child state; advance the
  // epoch (rank 0) and clear the board lazily on the next epoch rollover.
  if (rank_ == 0) {
    std::scoped_lock lock(state_->split_mutex);
    ++state_->split_epoch;
  }
  barrier();
  return Communicator(std::move(child), new_rank, timings_);
}

std::vector<Timings> run_spmd(
    int p, const std::function<void(Communicator&)>& body) {
  auto state = std::make_shared<detail::SharedState>(p);
  std::vector<Timings> timings(p);
  std::vector<std::thread> threads;
  threads.reserve(p);
  std::mutex error_mutex;
  std::exception_ptr first_error;

  for (int r = 0; r < p; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm(state, r, &timings[r]);
      try {
        body(comm);
      } catch (...) {
        std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return timings;
}

}  // namespace diffreg::mpisim
