#include "mpisim/communicator.hpp"

#include <algorithm>
#include <exception>
#include <string>
#include <thread>

namespace diffreg::mpisim {

void Communicator::check_collective_consistent(std::int64_t value,
                                               const char* what) {
  if (size() == 1) return;
  struct Extent {
    std::int64_t lo, hi;
  };
  const Extent mine{value, value};
  const Extent global = allreduce_op(
      mine,
      [](Extent a, Extent b) {
        return Extent{a.lo < b.lo ? a.lo : b.lo, a.hi > b.hi ? a.hi : b.hi};
      },
      kCollectiveTag + 5);
  if (global.lo != global.hi)
    throw std::runtime_error(
        std::string("mpisim: ranks disagree on ") + what +
        " (collective-consistency self-check failed)");
}

void Communicator::barrier() {
  check_idle();
  if (size() == 1) return;
  ScopedTimer timer(*timings_, time_kind_);
  backend_->barrier();
}

Communicator Communicator::split(int color) {
  check_idle();
  // Gather (color, parent rank) from everyone; members of each color are
  // ranked by parent rank. The backend only has to wire up the agreed-upon
  // channels — the collective agreement itself is transport-independent.
  struct Entry {
    int color;
    int rank;
  };
  auto entries = allgather(Entry{color, rank_});

  int new_rank = 0;
  int new_size = 0;
  for (const Entry& e : entries) {
    if (e.color != color) continue;
    if (e.rank < rank_) ++new_rank;
    ++new_size;
  }

  return Communicator(backend_->split(color, new_rank, new_size), timings_);
}

CommRequest::~CommRequest() {
  if (!comm_) return;
  try {
    wait();
  } catch (...) {
    // Destructors must not throw; an abandoned request is still drained so
    // the message schedule stays intact. Call wait() to surface failures.
  }
}

void CommRequest::wait() {
  if (!comm_) return;
  Communicator* comm = std::exchange(comm_, nullptr);
  Timings& timings = *comm->timings_;
  Backend& backend = *comm->backend_;
  const double wait_entry = backend.now();
  double last_arrival = post_time_;
  {
    // Time actually spent blocked (plus delivery memcpy/widen sweeps) is
    // charged to the category like a blocking receive would be.
    ScopedTimer timer(timings, kind_);
    for (const detail::PendingRecv& pr : comm->pending_recvs_) {
      const Incoming in = backend.recv_bytes(pr.src, pr.tag);
      if (in.data.size() != pr.payload_bytes)
        throw std::runtime_error(
            "mpisim: nonblocking receive payload size does not match the "
            "posted buffer");
      if (pr.widen != nullptr)
        pr.widen(in.data.data(), pr.dst, pr.elems);
      else if (!in.data.empty())
        std::memcpy(pr.dst, in.data.data(), in.data.size());
      last_arrival = std::max(last_arrival, in.arrival);
    }
  }
  comm->pending_recvs_.clear();
  comm->pending_ = false;
  // Hidden comm time: the wire was busy from the post until the last
  // message landed; whatever portion of that elapsed before the caller
  // blocked here was overlapped with compute.
  timings.add_hidden(kind_,
                     std::max(0.0, std::min(last_arrival, wait_entry) -
                                       post_time_));
}

bool CommRequest::test() {
  if (!comm_) return true;
  for (const detail::PendingRecv& pr : comm_->pending_recvs_)
    if (!comm_->backend_->probe(pr.src, pr.tag)) return false;
  wait();  // Every match has arrived: completes without blocking.
  return true;
}

std::vector<Timings> run_spmd(
    int p, const std::function<void(Communicator&)>& body) {
  auto state = std::make_shared<detail::SharedState>(p);
  std::vector<Timings> timings(p);
  std::vector<std::thread> threads;
  threads.reserve(p);
  std::mutex error_mutex;
  std::exception_ptr first_error;

  for (int r = 0; r < p; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm(std::make_shared<MailboxBackend>(state, r),
                        &timings[r]);
      try {
        body(comm);
      } catch (...) {
        std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return timings;
}

}  // namespace diffreg::mpisim
