/// @file errors.hpp
/// Structured communication failures for the fault-tolerant runtime.
///
/// The watchdog (Communicator timeouts on recv/wait/barrier) and the wire
/// checksum validation never report a bare "something broke": every failure
/// carries a machine-readable diagnosis — which rank, blocked on which
/// (src, tag), what was still missing, and a snapshot of the rank's comm
/// counters — so a hung or corrupted run dies with the information a
/// post-mortem needs instead of a stack of blocked threads. The class name
/// is embedded in what() so log greps (and the chaos CI job) can classify
/// failures without RTTI.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace diffreg::mpisim {

/// FNV-1a 64-bit over a byte payload: the wire-checksum hash. Not
/// cryptographic — it only needs to make truncation and bit-flips loud.
// diffreg:zero-alloc
inline std::uint64_t fnv1a64(std::span<const std::byte> data) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const std::byte b : data) {
    hash ^= static_cast<std::uint64_t>(b);
    hash *= 1099511628211ull;
  }
  return hash;
}

/// Per-rank snapshot assembled at the moment a communication failure is
/// raised: who failed, inside which operation, waiting on whom, and how much
/// traffic the rank had moved up to that point (from its Timings).
struct CommDiagnosis {
  int rank = 0;
  int size = 0;
  std::string operation;  ///< "recv", "nonblocking wait", "barrier", ...
  int src = -1;           ///< Blocking source rank (-1: not a point-to-point).
  int tag = -1;           ///< Blocking tag (-1: not a point-to-point).
  double waited_ms = 0;   ///< How long the rank blocked before giving up.
  /// Outstanding (src, tag) matches that had NOT arrived when the deadline
  /// expired (probe snapshot; nonblocking waits list every missing peer).
  std::vector<std::pair<int, int>> missing;
  std::uint64_t bytes_sent = 0;   ///< Timings total at failure time.
  std::uint64_t messages_sent = 0;
  std::uint64_t exchanges = 0;

  /// One-line human-readable rendering (embedded into what()).
  std::string describe() const;
};

/// Base of every structured communication failure.
class CommError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A caller violated the Communicator API contract: mismatched buffer
/// sizes, malformed count tables, misuse of the one-outstanding-request
/// rule. These are programming errors, not wire failures — but they are
/// structured all the same so src/mpisim has a single exception root (the
/// contract lint in tools/lint enforces that every throw derives from
/// CommError).
class CommContractError : public CommError {
 public:
  explicit CommContractError(const std::string& what)
      : CommError("CommContractError: " + what) {}
};

/// A malformed runtime-configuration string (e.g. a --fault-spec value):
/// rejected host-side before any ranks spawn.
class CommConfigError : public CommError {
 public:
  explicit CommConfigError(const std::string& what)
      : CommError("CommConfigError: " + what) {}
};

/// A watchdog deadline expired on a blocking receive, request wait, or
/// barrier. Carries the full per-rank diagnosis.
class CommTimeoutError : public CommError {
 public:
  explicit CommTimeoutError(CommDiagnosis diagnosis)
      : CommError("CommTimeoutError: " + diagnosis.describe()),
        diagnosis_(std::move(diagnosis)) {}

  const CommDiagnosis& diagnosis() const { return diagnosis_; }

 private:
  CommDiagnosis diagnosis_;
};

/// A received payload failed checksum validation (or was too short to carry
/// its trailer): the message was truncated or corrupted on the wire.
class CommIntegrityError : public CommError {
 public:
  CommIntegrityError(int rank, int src, int tag, std::size_t payload_bytes,
                     const std::string& detail)
      : CommError("CommIntegrityError: rank " + std::to_string(rank) +
                  " received a corrupt payload from rank " +
                  std::to_string(src) + " (tag " + std::to_string(tag) + ", " +
                  std::to_string(payload_bytes) + " bytes): " + detail),
        src_(src),
        tag_(tag) {}

  int src() const { return src_; }
  int tag() const { return tag_; }

 private:
  int src_ = -1;
  int tag_ = -1;
};

/// Raised by the fault injector when the configured crash step is reached:
/// models a rank dying mid-run (the surviving ranks then hit the watchdog).
class RankCrashError : public CommError {
 public:
  RankCrashError(int rank, long step)
      : CommError("RankCrashError: rank " + std::to_string(rank) +
                  " crashed by fault injection at backend step " +
                  std::to_string(step)) {}
};

/// Raised on EVERY rank by the opt-in collective-schedule verifier
/// (--verify-schedule) when the ranks of a communicator disagree on the
/// sequence of collective operations they issued — the bug class that
/// otherwise presents as a silent hang (some ranks inside exchange k, the
/// rest inside exchange k+1) or as data landing in the wrong exchange.
/// Carries the usual per-rank CommDiagnosis plus the first op index at
/// which the recorded schedules differ and THIS rank's operation at that
/// index, so the post-mortem names the exact call site class instead of a
/// stack of blocked threads.
class ScheduleDivergenceError : public CommError {
 public:
  ScheduleDivergenceError(CommDiagnosis diagnosis, long first_mismatch_index,
                          long ops_recorded, std::string op_description)
      : CommError(
            "ScheduleDivergenceError: " + diagnosis.describe() +
            " — collective schedules diverge at op index " +
            std::to_string(first_mismatch_index) + " (this rank recorded " +
            std::to_string(ops_recorded) + " collective op(s); op " +
            std::to_string(first_mismatch_index) + " on this rank: " +
            op_description + ")"),
        diagnosis_(std::move(diagnosis)),
        first_mismatch_index_(first_mismatch_index),
        ops_recorded_(ops_recorded),
        op_description_(std::move(op_description)) {}

  const CommDiagnosis& diagnosis() const { return diagnosis_; }
  /// First index (0-based, per communicator object) at which the per-rank
  /// schedule histories disagree; -1 when the rolling hashes diverged but
  /// the exchanged histories did not localize an index (only possible via
  /// hash collision).
  long first_mismatch_index() const { return first_mismatch_index_; }
  /// How many collective ops THIS rank had recorded when the divergence
  /// was detected.
  long ops_recorded() const { return ops_recorded_; }
  /// Human-readable signature of this rank's op at the mismatch index (or
  /// a note that the rank's schedule was already exhausted there).
  const std::string& op_description() const { return op_description_; }

 private:
  CommDiagnosis diagnosis_;
  long first_mismatch_index_ = -1;
  long ops_recorded_ = 0;
  std::string op_description_;
};

}  // namespace diffreg::mpisim
