/// @file fault_injection.hpp
/// Deterministic seeded fault injection behind the Backend interface.
///
/// `FaultInjectingBackend` decorates any `mpisim::Backend` and perturbs the
/// byte stream the way a sick network or a dying node would: per-message
/// delivery delay, message drop, duplicate delivery, payload truncation,
/// payload bit-flips, and rank-crash-at-step. Every decision is drawn from a
/// counter-keyed hash of (seed, rank, message index), NOT from a shared RNG
/// stream, so a given spec perturbs the same messages on every run
/// regardless of thread scheduling — chaos tests are reproducible bug
/// reports, not flakes.
///
/// Specs are parsed from a flat key=value string (the `--fault-spec` CLI
/// flag and the DIFFREG_FAULT_SPEC environment hook):
///
///     "seed=7,drop=0.01,delay_ms=5,delay_prob=0.1"
///
/// Keys: seed (u64), drop / dup / truncate / bitflip (probabilities in
/// [0,1]), delay_ms (per-delayed-message sleep), delay_prob (fraction of
/// messages delayed; default 1 when delay_ms is set), crash_rank /
/// crash_at (the given LAUNCH rank throws RankCrashError once a backend's
/// op count first exceeds crash_at), crash_repeat (0/1: with 0 — the
/// default — the crash fires ONCE per rank, modeling a transient node
/// death whose rank rejoins after the failure is caught and recovered;
/// with 1 every backend op past crash_at keeps throwing, modeling a node
/// that stays down), checksum (0/1: ask the Communicator to run wire
/// checksums so corruption surfaces as CommIntegrityError instead of wrong
/// answers). crash_rank names the rank of the LAUNCH communicator — the
/// crash follows that rank into every split sub-communicator instead of
/// re-triggering on whichever sub-rank happens to share the number.
/// Unknown keys and malformed values throw CommConfigError (errors.hpp).
///
/// See docs/FAULT_MODEL.md for the fault taxonomy and how the chaos CI job
/// uses these specs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mpisim/backend.hpp"

namespace diffreg::mpisim {

/// Parsed fault schedule. Default-constructed = no faults.
struct FaultSpec {
  std::uint64_t seed = 1;
  double drop = 0;      ///< P(message silently dropped on the wire).
  double dup = 0;       ///< P(message delivered twice).
  double truncate = 0;  ///< P(payload loses its trailing 1..8 bytes).
  double bitflip = 0;   ///< P(one payload bit inverted).
  double delay_ms = 0;  ///< Sleep applied to delayed messages.
  double delay_prob = 1.0;  ///< Fraction of messages delayed (when delay_ms>0).
  int crash_rank = -1;      ///< Launch rank that crashes (-1: nobody).
  long crash_at = -1;       ///< Backend step at which crash_rank throws.
  /// false: the crash fires once per rank (transient death — the rank
  /// rejoins after the failure is caught). true: every backend op past
  /// crash_at throws (the node stays down).
  bool crash_repeat = false;
  bool checksum = false;    ///< Request wire checksums from the Communicator.

  /// True when any perturbation is configured (checksum alone is not one).
  bool enabled() const {
    return drop > 0 || dup > 0 || truncate > 0 || bitflip > 0 ||
           delay_ms > 0 || crash_rank >= 0;
  }

  /// Parses the key=value spec grammar above; throws std::invalid_argument
  /// on unknown keys, malformed numbers, or out-of-range probabilities.
  static FaultSpec parse(const std::string& spec);
};

/// Crash bookkeeping shared by every FaultInjectingBackend of one rank's
/// wrapper family (the launch wrapper and all its split() descendants).
/// `root_rank` pins the crash to a LAUNCH rank identity — sub-communicator
/// rank numbers are renumbered on split and must not re-match crash_rank —
/// and `crashed` makes the default crash one-shot across the whole family:
/// whichever backend instance first passes its crash_at step consumes the
/// crash for the rank.
struct FaultRankState {
  int root_rank = -1;    ///< Rank id on the launch communicator.
  bool crashed = false;  ///< The one-shot crash has already fired.
};

/// Backend decorator applying a FaultSpec to every message. Wraps the inner
/// transport 1:1 — same rank/size/clock — and rewraps sub-communicators on
/// split() so faults follow the rank into row/col exchanges.
class FaultInjectingBackend final : public Backend {
 public:
  FaultInjectingBackend(std::shared_ptr<Backend> inner, const FaultSpec& spec)
      : inner_(std::move(inner)),
        spec_(spec),
        rank_state_(std::make_shared<FaultRankState>(
            FaultRankState{inner_->rank(), false})) {}

  int rank() const override { return inner_->rank(); }
  int size() const override { return inner_->size(); }
  void send_bytes(std::span<const std::byte> data, int dest,
                  int tag) override;
  Incoming recv_bytes(int src, int tag) override;
  std::optional<Incoming> try_recv_bytes(int src, int tag,
                                         double timeout_ms) override;
  bool probe(int src, int tag) override;
  void barrier() override;
  bool try_barrier(double timeout_ms) override;
  std::shared_ptr<Backend> split(int color, int new_rank, int new_size,
                                 double timeout_ms) override;
  std::size_t drain() override { return inner_->drain(); }
  double now() const override { return inner_->now(); }

 private:
  /// Child constructor (split): inherits the parent's per-rank crash state
  /// so the one-shot crash is consumed once per rank, not once per
  /// sub-communicator.
  FaultInjectingBackend(std::shared_ptr<Backend> inner, const FaultSpec& spec,
                        std::shared_ptr<FaultRankState> rank_state)
      : inner_(std::move(inner)),
        spec_(spec),
        rank_state_(std::move(rank_state)) {}

  /// Deterministic uniform draw in [0, 1) for decision `salt` of message
  /// `message`: a splitmix64 hash of (seed, rank, message, salt).
  double roll(std::uint64_t message, std::uint64_t salt) const;
  /// Counts a backend operation and throws RankCrashError when this rank's
  /// configured crash step is reached.
  void step();

  std::shared_ptr<Backend> inner_;
  FaultSpec spec_;
  std::shared_ptr<FaultRankState> rank_state_;
  long op_count_ = 0;            ///< All backend calls (crash_at clock).
  std::uint64_t msg_count_ = 0;  ///< Sends only (per-message RNG key).
  std::vector<std::byte> scratch_;  ///< Corruption staging (reused).
};

}  // namespace diffreg::mpisim
