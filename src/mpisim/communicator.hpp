// mpisim: a thread-backed message-passing runtime.
//
// The paper's solver is an MPI SPMD program (TACC Maverick/Stampede). This
// machine has no MPI, so we reproduce the programming model: `run_spmd(p, f)`
// launches p "ranks" (threads) that may only exchange data through a
// Communicator — point-to-point messages are copied through per-rank
// mailboxes, so all data movement that would be network traffic under MPI is
// real buffer traffic here, and is accounted separately from computation via
// the Timings categories (the comm/exec split of Tables I-IV).
//
// Supported surface (what the solver needs): rank/size, barrier, send/recv,
// sendrecv, broadcast, allreduce (sum/max/min), allgather, alltoall(v), and
// communicator splitting (row/col sub-communicators of the pencil grid).
#pragma once

#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "common/timer.hpp"
#include "common/types.hpp"

namespace diffreg::mpisim {

namespace detail {

struct Message {
  int src = 0;
  int tag = 0;
  std::vector<std::byte> data;
};

/// One receive queue per rank; senders push, the owner pops by (src, tag).
class Mailbox {
 public:
  void push(Message message);
  /// Blocks until a message with the given source and tag is available.
  std::vector<std::byte> pop(int src, int tag);

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

/// State shared by all ranks of one communicator.
struct SharedState {
  explicit SharedState(int size);

  const int size;
  std::vector<Mailbox> mailboxes;

  // Generation-counted central barrier.
  std::mutex barrier_mutex;
  std::condition_variable barrier_cv;
  int barrier_count = 0;
  long barrier_generation = 0;

  // Exchange board used by split(): the first rank of each (color, epoch)
  // creates the child state, everyone else in that color looks it up.
  std::mutex split_mutex;
  std::map<std::pair<long, int>, std::shared_ptr<SharedState>> split_states;
  long split_epoch = 0;
};

}  // namespace detail

/// Handle through which one rank communicates. Cheap to copy.
class Communicator {
 public:
  Communicator() = default;
  Communicator(std::shared_ptr<detail::SharedState> state, int rank,
               Timings* timings)
      : state_(std::move(state)), rank_(rank), timings_(timings) {}

  int rank() const { return rank_; }
  int size() const { return state_ ? state_->size : 1; }
  bool is_root() const { return rank_ == 0; }

  /// Category charged for time spent blocked in communication calls.
  void set_time_kind(TimeKind kind) { time_kind_ = kind; }
  TimeKind time_kind() const { return time_kind_; }
  Timings& timings() { return *timings_; }

  void barrier();

  template <typename T>
  void send(std::span<const T> data, int dest, int tag);

  template <typename T>
  std::vector<T> recv(int src, int tag);

  /// Exchanges buffers with a partner rank without deadlocking.
  template <typename T>
  std::vector<T> sendrecv(std::span<const T> send_data, int dest, int src,
                          int tag);

  template <typename T>
  void broadcast(std::vector<T>& data, int root);

  template <typename T>
  T allreduce_sum(T value);
  template <typename T>
  T allreduce_max(T value);
  template <typename T>
  T allreduce_min(T value);

  template <typename T>
  std::vector<T> allgather(T value);

  /// Personalized all-to-all: send_bufs[r] goes to rank r; returns one buffer
  /// per source rank. Self-exchange is a local move.
  template <typename T>
  std::vector<std::vector<T>> alltoallv(std::vector<std::vector<T>> send_bufs,
                                        int tag);

  /// Splits into sub-communicators by color; new ranks are ordered by the
  /// parent rank. Collective over the parent communicator.
  Communicator split(int color);

 private:
  template <typename T>
  static std::vector<std::byte> serialize(std::span<const T> data);
  template <typename T>
  static std::vector<T> deserialize(std::vector<std::byte> bytes);

  std::shared_ptr<detail::SharedState> state_;
  int rank_ = 0;
  Timings* timings_ = nullptr;
  TimeKind time_kind_ = TimeKind::kOther;

  // Tags above this bound are reserved for collectives.
  static constexpr int kCollectiveTag = 1 << 20;
};

/// Runs `body` on p ranks (threads) and returns the per-rank timings.
/// Exceptions thrown by any rank are rethrown (first one wins).
std::vector<Timings> run_spmd(int p,
                              const std::function<void(Communicator&)>& body);

/// Standalone single-rank communicator (no threads spawned); all collectives
/// degenerate to local moves. Useful for serial drivers and microbenchmarks.
/// `timings` must outlive the returned communicator.
inline Communicator single_rank(Timings& timings) {
  return Communicator(std::make_shared<detail::SharedState>(1), 0, &timings);
}

// ---------------------------------------------------------------------------
// Template implementations.

template <typename T>
std::vector<std::byte> Communicator::serialize(std::span<const T> data) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::byte> bytes(data.size_bytes());
  if (!bytes.empty()) std::memcpy(bytes.data(), data.data(), bytes.size());
  return bytes;
}

template <typename T>
std::vector<T> Communicator::deserialize(std::vector<std::byte> bytes) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (bytes.size() % sizeof(T) != 0)
    throw std::runtime_error("mpisim: message size does not match type");
  std::vector<T> data(bytes.size() / sizeof(T));
  if (!bytes.empty()) std::memcpy(data.data(), bytes.data(), bytes.size());
  return data;
}

template <typename T>
void Communicator::send(std::span<const T> data, int dest, int tag) {
  ScopedTimer timer(*timings_, time_kind_);
  state_->mailboxes[dest].push({rank_, tag, serialize(data)});
}

template <typename T>
std::vector<T> Communicator::recv(int src, int tag) {
  ScopedTimer timer(*timings_, time_kind_);
  return deserialize<T>(state_->mailboxes[rank_].pop(src, tag));
}

template <typename T>
std::vector<T> Communicator::sendrecv(std::span<const T> send_data, int dest,
                                      int src, int tag) {
  // Sends are buffered (never block), so send-then-recv cannot deadlock.
  send(send_data, dest, tag);
  return recv<T>(src, tag);
}

template <typename T>
void Communicator::broadcast(std::vector<T>& data, int root) {
  const int tag = kCollectiveTag + 1;
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r)
      if (r != root) send(std::span<const T>(data), r, tag);
  } else {
    data = recv<T>(root, tag);
  }
}

template <typename T>
std::vector<T> Communicator::allgather(T value) {
  const int tag = kCollectiveTag + 2;
  std::vector<T> all(size());
  if (rank_ == 0) {
    all[0] = value;
    for (int r = 1; r < size(); ++r) all[r] = recv<T>(r, tag)[0];
  } else {
    send(std::span<const T>(&value, 1), 0, tag);
  }
  broadcast(all, 0);
  return all;
}

template <typename T>
T Communicator::allreduce_sum(T value) {
  T result{};
  for (T v : allgather(value)) result += v;
  return result;
}

template <typename T>
T Communicator::allreduce_max(T value) {
  auto all = allgather(value);
  T result = all[0];
  for (T v : all)
    if (v > result) result = v;
  return result;
}

template <typename T>
T Communicator::allreduce_min(T value) {
  auto all = allgather(value);
  T result = all[0];
  for (T v : all)
    if (v < result) result = v;
  return result;
}

template <typename T>
std::vector<std::vector<T>> Communicator::alltoallv(
    std::vector<std::vector<T>> send_bufs, int tag) {
  if (static_cast<int>(send_bufs.size()) != size())
    throw std::runtime_error("mpisim: alltoallv needs one buffer per rank");
  std::vector<std::vector<T>> recv_bufs(size());
  recv_bufs[rank_] = std::move(send_bufs[rank_]);
  for (int offset = 1; offset < size(); ++offset) {
    const int dest = (rank_ + offset) % size();
    send(std::span<const T>(send_bufs[dest]), dest, tag);
  }
  for (int offset = 1; offset < size(); ++offset) {
    const int src = (rank_ - offset + size()) % size();
    recv_bufs[src] = recv<T>(src, tag);
  }
  return recv_bufs;
}

}  // namespace diffreg::mpisim
