/// @file communicator.hpp
/// mpisim: a thread-backed message-passing runtime.
///
/// The paper's solver is an MPI SPMD program (TACC Maverick/Stampede). This
/// machine has no MPI, so we reproduce the programming model: `run_spmd(p, f)`
/// launches p "ranks" (threads) that may only exchange data through a
/// Communicator — point-to-point messages are copied through per-rank
/// mailboxes, so all data movement that would be network traffic under MPI is
/// real buffer traffic here, and is accounted separately from computation via
/// the Timings categories (the comm/exec split of Tables I-IV).
///
/// The Communicator itself is transport-agnostic: every byte that moves goes
/// through the abstract `Backend` interface (backend.hpp). The collective
/// algorithms, consistency self-checks, wire-precision conversions, and all
/// Timings accounting live HERE, so a real-MPI backend inherits them — and
/// the entire test suite — by implementing six byte-level primitives.
///
/// Supported surface (what the solver needs): rank/size, barrier, send/recv,
/// sendrecv, broadcast, allreduce (sum/max/min, scalar and element-wise
/// vector), allgather, alltoall(v), nonblocking alltoallv / point-to-point
/// variants returning CommRequest completion handles, and communicator
/// splitting (row/col sub-communicators of the pencil grid).
///
/// Collective algorithms (all O(log p) message depth, no rank-0 funnel):
///   broadcast         binomial tree rooted at `root`
///   allgather         Bruck dissemination (works for any p)
///   allreduce scalar  recursive doubling; non-power-of-two ranks fold into
///                     the largest power-of-two group first and get the
///                     result back afterwards
///   allreduce vector  binomial-tree reduce to rank 0 + binomial broadcast
///                     (reduce-then-broadcast, for batched field norms)
///   alltoallv         pairwise exchange (p-1 rounds, bandwidth-bound by
///                     design) with a collective-consistency self-check; a
///                     span-based overload works over caller-owned flat
///                     buffers so hot paths (the FFT transposes) allocate
///                     nothing per call, and a converting overload
///                     (alltoallv_converted) down-converts the payload into
///                     caller-owned fp32 staging buffers before it hits the
///                     wire and up-converts on receive — half the bytes for
///                     ~1e-7 relative rounding (WirePrecision::kF32)
/// Scalar allreduce combines operands in subgroup order, so every rank
/// computes bitwise-identical results; the vector form broadcasts rank 0's
/// combination, which is likewise identical everywhere.
///
/// Nonblocking exchanges (`ialltoallv`, `ialltoallv_converted`,
/// `isend_narrowed`/`irecv_widened`/`irecv_into`) post the SAME message
/// schedule as their blocking twins — identical tags, payload order, byte /
/// message / exchange counters — and defer only the receives behind a
/// `CommRequest`. Between post and `wait()` the caller computes; the span of
/// wire time that elapsed under that compute is accounted to the Timings
/// hidden-comm counter, which is how the overlap efficiency of Tables I-IV's
/// comm legs is measured. At most ONE request may be outstanding per
/// Communicator: any receive, barrier, or collective while one is pending
/// throws (wait-before-read enforcement), which turns forgotten waits into
/// loud errors instead of stolen messages. Plain sends stay legal while a
/// request is in flight — they are buffered and cannot race the pending
/// receives — which is what lets GhostExchange push the second halo slab
/// under the first one's flight.
///
/// Every send is also accounted to the rank's Timings as (bytes, messages)
/// under the communicator's current TimeKind, and each alltoallv entered
/// bumps an exchange counter — this is the comm-volume side of the paper's
/// comm/exec split (Tables I-IV report time; the counters make message-count
/// regressions visible too).
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/precision.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"
#include "mpisim/backend.hpp"
#include "mpisim/errors.hpp"

namespace diffreg::mpisim {

class Communicator;

namespace detail {

/// One deferred receive of an outstanding nonblocking exchange. The storage
/// lives in the owning Communicator (grow-only, reused across posts) so warm
/// overlapped paths allocate nothing.
struct PendingRecv {
  int src = 0;
  int tag = 0;
  /// Destination bytes: the final buffer (plain receives) or the Wide
  /// buffer a widening receive up-converts into.
  std::byte* dst = nullptr;
  /// Exact wire payload size the matching message must carry.
  size_t payload_bytes = 0;
  /// Element count of a widening receive (payload_bytes / sizeof(Narrow)).
  size_t elems = 0;
  /// Non-null for widening receives: up-converts `elems` Narrow elements of
  /// the wire payload straight into `dst`. Null receives memcpy instead.
  void (*widen)(const std::byte* payload, std::byte* dst, size_t elems) =
      nullptr;
};

/// Widening kernel instantiated per (Wide, Narrow) pair for PendingRecv.
template <typename Wide, typename Narrow>
void widen_payload(const std::byte* payload, std::byte* dst, size_t elems) {
  widen_into(
      std::span<const Narrow>(reinterpret_cast<const Narrow*>(payload), elems),
      std::span<Wide>(reinterpret_cast<Wide*>(dst), elems));
}

}  // namespace detail

/// Collective-op classes recorded by the schedule verifier
/// (Communicator::set_verify_schedule). The numeric values are folded into
/// the per-rank schedule hash, so they are part of the verifier wire format
/// (docs/ANALYSIS.md): append new kinds at the end, never renumber.
enum class ScheduleOpKind : std::uint8_t {
  kBarrier = 0,
  kBroadcast,
  kAllreduce,
  kAllreduceVec,
  kAllgather,
  kAlltoall,
  kAlltoallv,
  kSplit,
  kMark,
};

namespace detail {

/// Rank-invariant signature of one recorded collective op: exactly the
/// fields the rolling schedule hash folds, retained per op so a detected
/// divergence can be reported as "op k on this rank was X" instead of a
/// bare hash mismatch.
struct ScheduleOpSig {
  ScheduleOpKind kind;
  int tag = 0;  ///< Exchange tag / broadcast root / reduction-op id.
  std::uint32_t wire_bits = 0;  ///< Per-element wire width in bits (0: n/a).
  std::uint64_t extra = 0;      ///< Kind-specific word (vector length).
};

}  // namespace detail

/// Completion handle of a nonblocking exchange (MPI_Request analogue).
/// Move-only; produced by Communicator::ialltoallv and friends.
///
/// The posting call has already pushed every outgoing message (sends are
/// buffered and complete at post), so the handle tracks only the deferred
/// receives. `wait()` blocks until all of them have landed, scatters /
/// widens them into the destination buffers, and credits the wire time that
/// elapsed under the caller's compute to the Timings hidden-comm counter.
/// Destination buffers must not be read before wait()/test() succeeds —
/// and the owning Communicator enforces the discipline by throwing on any
/// receive or collective posted while this request is outstanding.
class CommRequest {
 public:
  /// An already-completed request (what pure-send posts return).
  CommRequest() = default;

  CommRequest(CommRequest&& other) noexcept { *this = std::move(other); }
  CommRequest& operator=(CommRequest&& other) noexcept {
    comm_ = std::exchange(other.comm_, nullptr);
    post_time_ = other.post_time_;
    kind_ = other.kind_;
    return *this;
  }
  CommRequest(const CommRequest&) = delete;
  CommRequest& operator=(const CommRequest&) = delete;

  /// Completes an abandoned request (swallowing errors — destructors must
  /// not throw) so the message schedule stays intact; call wait() yourself
  /// to surface failures.
  ~CommRequest();

  /// True once the request has completed (wait()/test() succeeded or the
  /// post had nothing to defer).
  bool done() const { return comm_ == nullptr; }

  /// Blocks until every deferred receive has landed and delivers the
  /// payloads. Time spent blocked is charged to the exchange's TimeKind as
  /// usual; the post-to-last-arrival span that elapsed BEFORE entering
  /// wait() is credited as hidden comm time.
  void wait();

  /// Nonblocking completion probe: returns false while any message is still
  /// in flight; otherwise completes the request (equivalent to wait()) and
  /// returns true.
  bool test();

 private:
  friend class Communicator;
  CommRequest(Communicator* comm, double post_time, TimeKind kind)
      : comm_(comm), post_time_(post_time), kind_(kind) {}

  Communicator* comm_ = nullptr;  ///< Owning communicator; null once done.
  double post_time_ = 0.0;        ///< Backend-clock stamp of the post.
  TimeKind kind_ = TimeKind::kOther;  ///< Category captured at post time.
};

/// Handle through which one rank communicates. Cheap to copy (copies share
/// the transport); a Communicator with an outstanding CommRequest must not
/// be copied.
class Communicator {
 public:
  Communicator() = default;
  /// Wraps a transport endpoint. `timings` must outlive the communicator.
  Communicator(std::shared_ptr<Backend> backend, Timings* timings)
      : backend_(std::move(backend)),
        rank_(backend_ ? backend_->rank() : 0),
        size_(backend_ ? backend_->size() : 1),
        timings_(timings) {}

  /// This rank's id in [0, size()).
  int rank() const { return rank_; }
  /// Number of ranks in the communicator.
  int size() const { return size_; }
  bool is_root() const { return rank_ == 0; }

  /// The transport endpoint (for backend-aware tooling; solver code never
  /// needs it).
  Backend* backend() { return backend_.get(); }

  /// Category charged for time spent blocked in communication calls.
  void set_time_kind(TimeKind kind) { time_kind_ = kind; }
  TimeKind time_kind() const { return time_kind_; }
  Timings& timings() { return *timings_; }

  /// Watchdog deadline (milliseconds) for every blocking receive, request
  /// wait, and barrier: instead of hanging, the blocked call throws a
  /// CommTimeoutError carrying a per-rank diagnosis (errors.hpp). 0 (the
  /// default) keeps the historical block-forever behavior. Inherited by
  /// split() sub-communicators.
  void set_comm_timeout_ms(double timeout_ms) { timeout_ms_ = timeout_ms; }
  double comm_timeout_ms() const { return timeout_ms_; }

  /// Wire checksums: every sent payload gains an FNV-1a 64-bit trailer that
  /// is validated and stripped on receive, so truncation and bit-flips
  /// surface as CommIntegrityError instead of wrong answers. Off by default
  /// (the trailer changes the byte/message counters, so counter-gated
  /// benches run without it). Inherited by split() sub-communicators.
  void set_wire_checksums(bool on) { checksums_ = on; }
  bool wire_checksums() const { return checksums_; }

  /// Collective-schedule verification (--verify-schedule): every collective
  /// entered folds its rank-invariant signature (op kind, tag / root /
  /// reduction-op id, wire precision) into a per-rank rolling FNV hash, and
  /// every exchange folds its per-peer payload byte counts into a pair of
  /// transpose-consistency accumulators (sum over sender claims must equal
  /// sum over receiver expectations). At every barrier and exchange-class
  /// collective ENTRY — before any payload moves — the ranks cross-check the
  /// state with one packed allreduce and, on mismatch, throw
  /// ScheduleDivergenceError on EVERY rank naming the first mismatching op
  /// index, instead of deadlocking or silently mispairing exchanges.
  ///
  /// Off by default: when off the only cost is one predicted branch per
  /// collective. When on, the payload schedule is untouched — solver
  /// results stay bitwise identical and the exchange counters do not move
  /// (the checkpoint allreduce adds messages, never exchanges). Inherited
  /// by split() sub-communicators (with fresh hash state; copies of a
  /// communicator carry their own history, compared against the matching
  /// copies on the other ranks).
  void set_verify_schedule(bool on) { verify_ = on; }
  bool verify_schedule() const { return verify_; }

  /// Folds a caller-chosen marker into the schedule hash: the hook for
  /// symmetric point-to-point phases (e.g. the ghost-halo exchange) that
  /// never pass through a collective the verifier could observe. Marks are
  /// checkpointed at entry like the exchange-class collectives — BEFORE the
  /// phase's point-to-point traffic — so a rank skipping a marked phase is
  /// caught in the checkpoint allreduce instead of stranding its neighbours
  /// in blocking receives. No-op when verification is off.
  void verify_mark(int tag) {
    verify_record(ScheduleOpKind::kMark, tag, 0, 0);
    verify_checkpoint("mark");
  }

  /// Collective fault recovery: returns the communicator to a clean state
  /// after an exchange died mid-flight (rank crash, watchdog timeout,
  /// integrity failure). Abandoned request state and the schedule
  /// verifier's rolling hashes are reset on this copy, then the ranks
  /// rendezvous (deadline `timeout_ms`), each drains its own receive queue
  /// — discarding the dead exchange's stale in-flight payloads so the NEXT
  /// exchange cannot match them — and rendezvous again so no rank resumes
  /// sending before every queue is clean. Returns false (after resetting
  /// the local state) when a peer never arrives: the communicator is
  /// unrecoverable — a rank is truly down — and the caller should rebuild
  /// it instead. Never throws. Collective.
  bool recover_after_fault(double timeout_ms);

  /// Blocks until every rank entered. Collective.
  void barrier();

  /// Buffered point-to-point send: copies `data` onto the wire and returns
  /// immediately (never blocks on the receiver). Legal even while a
  /// nonblocking request is outstanding.
  template <typename T>
  void send(std::span<const T> data, int dest, int tag);

  /// Blocking receive of a whole message from (src, tag).
  template <typename T>
  std::vector<T> recv(int src, int tag);

  /// Receives into a caller-provided buffer (no allocation on the caller
  /// side); throws if the message payload does not match `out` exactly.
  template <typename T>
  void recv_into(std::span<T> out, int src, int tag);

  /// Exchanges buffers with a partner rank without deadlocking.
  template <typename T>
  std::vector<T> sendrecv(std::span<const T> send_data, int dest, int src,
                          int tag);

  template <typename T>
  void broadcast(std::vector<T>& data, int root);

  template <typename T>
  T allreduce_sum(T value);
  template <typename T>
  T allreduce_max(T value);
  template <typename T>
  T allreduce_min(T value);

  /// Element-wise in-place vector allreduce (reduce to rank 0, broadcast
  /// back): 2 log p rounds and 2(p-1) messages carrying the whole batch,
  /// versus log p rounds and p log p messages per scalar allreduce — batching
  /// k >= 2 field norms cuts messages, and from k >= 3 also depth. All ranks
  /// must pass the same number of elements; a mismatch poisons the reduction
  /// and throws (never hangs).
  template <typename T>
  void allreduce_sum(std::vector<T>& data);
  template <typename T>
  void allreduce_max(std::vector<T>& data);
  template <typename T>
  void allreduce_min(std::vector<T>& data);

  template <typename T>
  std::vector<T> allgather(T value);

  /// Personalized all-to-all: send_bufs[r] goes to rank r; returns one buffer
  /// per source rank. Self-exchange is a local move.
  template <typename T>
  std::vector<std::vector<T>> alltoallv(std::vector<std::vector<T>> send_bufs,
                                        int tag);

  /// Zero-allocation personalized all-to-all over caller-provided flat
  /// buffers: rank r's chunk occupies send[sum(send_counts[0..r-1]) ..) and
  /// lands in recv at the offset implied by recv_counts. Both count arrays
  /// must have one entry per rank and sum to the corresponding span size;
  /// the caller owns (and can reuse) all four buffers across calls.
  /// Self-exchange is a local copy.
  template <typename T>
  void alltoallv(std::span<const T> send, std::span<const index_t> send_counts,
                 std::span<T> recv, std::span<const index_t> recv_counts,
                 int tag);

  /// Nonblocking twin of the span alltoallv. Performs the identical checks,
  /// exchange accounting, self copy, and sends — the message schedule is
  /// bitwise the same as the blocking call — but defers the p-1 receives
  /// behind the returned CommRequest. `recv` must stay untouched until
  /// wait()/test() succeeds; the SELF chunk of `recv` is already valid at
  /// return (it never crosses the wire). At most one request may be
  /// outstanding per communicator.
  template <typename T>
  [[nodiscard]] CommRequest ialltoallv(std::span<const T> send,
                                       std::span<const index_t> send_counts,
                                       std::span<T> recv,
                                       std::span<const index_t> recv_counts,
                                       int tag);

  /// Mixed-precision variant of the span alltoallv: every PEER chunk is
  /// down-converted into `send_stage`, shipped at Narrow width, received
  /// into `recv_stage`, and up-converted into `recv`; the SELF chunk is a
  /// direct Wide copy (it never crosses the wire, so narrowing it would
  /// cost two conversion sweeps and fp32 rounding for nothing). Counts are
  /// in ELEMENTS and identical to the fp64 call — only the per-element
  /// wire width changes, so the exchange schedule is bitwise the same.
  /// Timings record the narrow bytes that actually crossed the wire plus
  /// the volume the narrowing saved (bytes_saved). Staging buffers are
  /// caller-owned so warm plans allocate nothing; they must be at least as
  /// large as the corresponding payload span.
  template <typename Wide, typename Narrow>
  void alltoallv_converted(std::span<const Wide> send,
                           std::span<const index_t> send_counts,
                           std::span<Wide> recv,
                           std::span<const index_t> recv_counts,
                           std::span<Narrow> send_stage,
                           std::span<Narrow> recv_stage, int tag);

  /// Nonblocking twin of alltoallv_converted: narrows and ships every peer
  /// chunk at post (same counters, same saved-bytes accounting), defers the
  /// widening receives. The thread-backed transport widens straight from
  /// the wire payload, so `recv_stage` is only size-validated here — but a
  /// real-MPI backend lands narrow payloads in it, so callers must keep it
  /// alive and untouched until completion, exactly like the blocking call.
  template <typename Wide, typename Narrow>
  [[nodiscard]] CommRequest ialltoallv_converted(
      std::span<const Wide> send, std::span<const index_t> send_counts,
      std::span<Wide> recv, std::span<const index_t> recv_counts,
      std::span<Narrow> send_stage, std::span<Narrow> recv_stage, int tag);

  /// Narrowing point-to-point send: down-converts `data` into the
  /// caller-owned `stage` and ships the narrow payload (ghost-slab halos).
  template <typename Wide, typename Narrow>
  void send_narrowed(std::span<const Wide> data, std::span<Narrow> stage,
                     int dest, int tag);

  /// Widening receive, the mirror of send_narrowed: receives a narrow
  /// payload into `stage` and up-converts into `out`.
  template <typename Wide, typename Narrow>
  void recv_widened(std::span<Wide> out, std::span<Narrow> stage, int src,
                    int tag);

  /// Nonblocking narrowing send. The payload is narrowed and on the wire
  /// when this returns (buffered-send contract), so the returned request is
  /// already complete — it exists for schedule symmetry with irecv_widened.
  template <typename Wide, typename Narrow>
  CommRequest isend_narrowed(std::span<const Wide> data,
                             std::span<Narrow> stage, int dest, int tag);

  /// Nonblocking widening receive: registers the (src, tag) match and
  /// returns; wait() pops the narrow payload and up-converts into `out`.
  /// `out` (and, under a real-MPI backend, `stage`) must stay untouched
  /// until completion.
  template <typename Wide, typename Narrow>
  [[nodiscard]] CommRequest irecv_widened(std::span<Wide> out,
                                          std::span<Narrow> stage, int src,
                                          int tag);

  /// Nonblocking receive into a caller-owned buffer, the fp64 twin of
  /// irecv_widened: wait() pops the (src, tag) payload and memcpys it into
  /// `out` (exact size match enforced).
  template <typename T>
  [[nodiscard]] CommRequest irecv_into(std::span<T> out, int src, int tag);

  /// Fixed-count all-to-all: exactly one element to and from every rank,
  /// over caller-owned buffers of p elements each (zero allocation). This is
  /// the count-exchange primitive variable-size plans (e.g. the scattered
  /// interpolation plan) use to learn their alltoallv recv counts.
  template <typename T>
  void alltoall(std::span<const T> send, std::span<T> recv, int tag);

  /// Splits into sub-communicators by color; new ranks are ordered by the
  /// parent rank. Collective over the parent communicator.
  Communicator split(int color);

 private:
  friend class CommRequest;

  template <typename T>
  static std::vector<T> deserialize(std::vector<std::byte> bytes);

  /// Shared schedule validation of the span alltoallv variants: checks the
  /// per-rank count tables against the payload element totals (and the
  /// self-chunk symmetry), returning the self chunk's (send offset, recv
  /// offset). Keeping this in one place guarantees the fp64 and converted
  /// exchanges enforce identical invariants.
  std::pair<index_t, index_t> check_alltoallv_counts(
      std::span<const index_t> send_counts,
      std::span<const index_t> recv_counts, size_t send_size,
      size_t recv_size) const;

  /// Wait-before-read enforcement: throws while a nonblocking request is
  /// outstanding. Guards every receive, barrier, collective, and post —
  /// but NOT plain sends (buffered sends cannot race the pending receives).
  void check_idle() const {
    if (pending_)
      throw CommContractError(
          "mpisim: communication attempted while a nonblocking request is "
          "outstanding — wait() the CommRequest first");
  }

  /// Registers the deferred receives staged in pending_recvs_ and hands out
  /// the completion handle (or a done request when nothing was deferred).
  CommRequest finish_post(double post_time);

  /// The single blocking-receive funnel: applies the watchdog deadline
  /// (throwing CommTimeoutError with a diagnosis when it expires) and the
  /// wire-checksum validation (throwing CommIntegrityError on corruption).
  /// Every blocking receive path — recv, recv_into, and the collectives
  /// built on them — lands here.
  Incoming receive_payload(int src, int tag, const char* operation);

  /// Appends the checksum trailer and ships payload+trailer as one message.
  void send_with_checksum(std::span<const std::byte> payload, int dest,
                          int tag);

  /// Validates and strips the checksum trailer of a received payload.
  void verify_and_strip_checksum(std::vector<std::byte>& data, int src,
                                 int tag) const;

  /// Assembles the per-rank failure snapshot attached to CommTimeoutError.
  CommDiagnosis make_diagnosis(
      const char* operation, int src, int tag, double waited_ms,
      std::vector<std::pair<int, int>> missing) const;

  // --- Collective-schedule verifier (set_verify_schedule) ----------------

  /// Folds one op signature into the rolling hash and the per-op history.
  /// No-op unless verification is on and this is not the verifier's own
  /// traffic (in_verify_) — and never at size() == 1.
  void verify_record(ScheduleOpKind kind, int tag, std::uint32_t wire_bits,
                     std::uint64_t extra);
  /// Folds one peer chunk into the transpose-consistency accumulators.
  /// Sender and receiver fold the identical (op index, src, dst, bytes)
  /// word, so globally sum(sender claims) == sum(receiver expectations)
  /// iff the per-peer count tables transpose.
  void verify_fold_send(int dest, std::uint64_t bytes);
  void verify_fold_recv(int src, std::uint64_t bytes);
  /// Folds both sides of a validated alltoallv count table (the self chunk
  /// is excluded: it never crosses the wire).
  void verify_fold_counts(std::span<const index_t> send_counts,
                          std::span<const index_t> recv_counts,
                          std::size_t elem_bytes);
  /// Cross-checks the rolling state across the communicator with one packed
  /// allreduce of (hash min, hash max, send sum, recv sum); on mismatch
  /// every rank enters verify_raise_divergence together.
  void verify_checkpoint(const char* operation);
  /// Localizes a detected divergence (per-op history allreduces, padded to
  /// the longest rank's schedule) and throws ScheduleDivergenceError.
  [[noreturn]] void verify_raise_divergence(const char* operation);
  std::string verify_describe_op(long index, bool counts_only) const;

  /// Recursive-doubling scalar allreduce with any associative commutative op.
  template <typename T, typename Op>
  T allreduce_op(T value, Op op, int tag);
  /// Binomial-tree reduce to rank 0 + broadcast, element-wise over `data`.
  template <typename T, typename Op>
  void allreduce_vec(std::vector<T>& data, Op op, int tag);
  /// Collective-consistency self-check: throws on EVERY rank (instead of
  /// hanging some of them) if `value` differs across the communicator. One
  /// O(log p) allreduce of a packed (min, max) pair.
  void check_collective_consistent(std::int64_t value, const char* what);

  std::shared_ptr<Backend> backend_;
  int rank_ = 0;
  int size_ = 1;
  Timings* timings_ = nullptr;
  TimeKind time_kind_ = TimeKind::kOther;

  /// Deferred receives of the (single) outstanding request. Grow-only and
  /// reused across posts, so warm overlapped paths allocate nothing.
  std::vector<detail::PendingRecv> pending_recvs_;
  bool pending_ = false;

  double timeout_ms_ = 0;  ///< Watchdog deadline; 0 = block forever.
  bool checksums_ = false;  ///< FNV-1a trailer on every payload.
  /// Staging for checksummed sends (grow-only, reused across messages).
  std::vector<std::byte> checksum_stage_;

  bool verify_ = false;     ///< Schedule verification enabled.
  bool in_verify_ = false;  ///< Reentrancy guard: the verifier's own traffic.
  std::uint64_t verify_hash_ = 1469598103934665603ull;  ///< Rolling FNV.
  std::uint64_t verify_send_sum_ = 0;  ///< Σ sender-side chunk words.
  std::uint64_t verify_recv_sum_ = 0;  ///< Σ receiver-side chunk words.
  std::vector<std::uint64_t> verify_op_hashes_;  ///< Per-op sig hashes.
  std::vector<detail::ScheduleOpSig> verify_op_sigs_;  ///< For reporting.
  std::vector<std::uint64_t> verify_op_send_sums_;  ///< Per-op send words.
  std::vector<std::uint64_t> verify_op_recv_sums_;  ///< Per-op recv words.

  // Tags above this bound are reserved for collectives.
  static constexpr int kCollectiveTag = 1 << 20;
};

template <typename T>
void Communicator::alltoall(std::span<const T> send, std::span<T> recv,
                            int tag) {
  const int p = size();
  if (static_cast<int>(send.size()) != p ||
      static_cast<int>(recv.size()) != p)
    throw CommContractError("mpisim: alltoall needs one element per rank");
  check_idle();
  // Verifier checkpoints run at collective ENTRY, before any payload moves:
  // ranks that diverged into different collectives still meet in the
  // checkpoint allreduce (same dedicated tag) and all throw, instead of
  // blocking on each other's mismatched payload tags.
  verify_record(ScheduleOpKind::kAlltoall, tag, sizeof(T) * 8, 0);
  verify_checkpoint("alltoall");
  check_collective_consistent(tag, "alltoall tag");
  timings_->add_exchange(time_kind_);
  if (verify_) {
    for (int r = 0; r < p; ++r) {
      if (r == rank_) continue;
      verify_fold_send(r, sizeof(T));
      verify_fold_recv(r, sizeof(T));
    }
  }
  recv[rank_] = send[rank_];
  for (int offset = 1; offset < p; ++offset) {
    const int dest = (rank_ + offset) % p;
    this->send(send.subspan(static_cast<size_t>(dest), 1), dest, tag);
  }
  for (int offset = 1; offset < p; ++offset) {
    const int src = (rank_ - offset + p) % p;
    recv_into(recv.subspan(static_cast<size_t>(src), 1), src, tag);
  }
}

/// Robustness knobs of an SPMD run (fault_injection.hpp, errors.hpp).
/// Default-constructed = the historical behavior: mailbox transport, no
/// faults, block-forever receives, no checksums.
struct SpmdOptions {
  /// Fault-injection spec (FaultSpec grammar); empty = no fault wrapper.
  std::string fault_spec;
  /// Watchdog deadline applied to every rank's communicator; 0 = off.
  double comm_timeout_ms = 0;
  /// Wire checksums on every rank (also enabled by `checksum=1` in the
  /// fault spec).
  bool wire_checksums = false;
  /// Collective-schedule verification on every rank
  /// (Communicator::set_verify_schedule; also enabled by the
  /// DIFFREG_VERIFY_SCHEDULE environment hook in the env-reading overload).
  bool verify_schedule = false;
};

/// Runs `body` on p ranks (threads) and returns the per-rank timings.
/// Exceptions thrown by any rank are rethrown (first one wins). This
/// overload reads the DIFFREG_FAULT_SPEC / DIFFREG_COMM_TIMEOUT_MS
/// environment hooks (the chaos CI mechanism: any existing suite can be
/// rerun under faults without recompiling).
std::vector<Timings> run_spmd(int p,
                              const std::function<void(Communicator&)>& body);

/// run_spmd with explicit robustness options (ignores the environment).
std::vector<Timings> run_spmd(int p,
                              const std::function<void(Communicator&)>& body,
                              const SpmdOptions& options);

/// Standalone single-rank communicator (no threads spawned); all collectives
/// degenerate to local moves. Useful for serial drivers and microbenchmarks.
/// `timings` must outlive the returned communicator.
inline Communicator single_rank(Timings& timings) {
  return Communicator(
      std::make_shared<MailboxBackend>(
          std::make_shared<detail::SharedState>(1), 0),
      &timings);
}

// ---------------------------------------------------------------------------
// Template implementations.

template <typename T>
std::vector<T> Communicator::deserialize(std::vector<std::byte> bytes) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (bytes.size() % sizeof(T) != 0)
    throw CommContractError("mpisim: message size does not match type");
  std::vector<T> data(bytes.size() / sizeof(T));
  if (!bytes.empty()) std::memcpy(data.data(), bytes.data(), bytes.size());
  return data;
}

template <typename T>
void Communicator::send(std::span<const T> data, int dest, int tag) {
  static_assert(std::is_trivially_copyable_v<T>);
  ScopedTimer timer(*timings_, time_kind_);
  if (checksums_) {
    send_with_checksum(std::as_bytes(data), dest, tag);
    return;
  }
  timings_->add_message(time_kind_, data.size_bytes());
  backend_->send_bytes(std::as_bytes(data), dest, tag);
}

template <typename T>
std::vector<T> Communicator::recv(int src, int tag) {
  check_idle();
  ScopedTimer timer(*timings_, time_kind_);
  return deserialize<T>(receive_payload(src, tag, "recv").data);
}

template <typename T>
void Communicator::recv_into(std::span<T> out, int src, int tag) {
  static_assert(std::is_trivially_copyable_v<T>);
  check_idle();
  ScopedTimer timer(*timings_, time_kind_);
  const Incoming in = receive_payload(src, tag, "recv_into");
  if (in.data.size() != out.size_bytes())
    throw CommContractError(
        "mpisim: recv_into buffer size does not match message payload");
  if (!in.data.empty()) std::memcpy(out.data(), in.data.data(), in.data.size());
}

template <typename T>
std::vector<T> Communicator::sendrecv(std::span<const T> send_data, int dest,
                                      int src, int tag) {
  // Sends are buffered (never block), so send-then-recv cannot deadlock.
  send(send_data, dest, tag);
  return recv<T>(src, tag);
}

template <typename T>
void Communicator::broadcast(std::vector<T>& data, int root) {
  const int tag = kCollectiveTag + 1;
  const int p = size();
  if (p == 1) return;
  // Record-only (no checkpoint): tree collectives are cheap and frequent,
  // so a divergence here is caught — with the right op index — at the next
  // barrier / exchange-class checkpoint.
  verify_record(ScheduleOpKind::kBroadcast, root, sizeof(T) * 8, 0);
  // Binomial tree in root-relative rank space: vrank 0 is the root; a rank
  // receives from the partner that clears its lowest set bit, then forwards
  // to every vrank obtained by setting a higher-order bit.
  const int vrank = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      data = recv<T>((vrank - mask + root) % p, tag);
      break;
    }
    mask <<= 1;
  }
  // Forward to the subtree children: all bits below the receive bit are
  // clear, so vrank + mask addresses a distinct rank for each smaller mask.
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < p)
      send(std::span<const T>(data), (vrank + mask + root) % p, tag);
    mask >>= 1;
  }
}

template <typename T>
std::vector<T> Communicator::allgather(T value) {
  const int tag = kCollectiveTag + 2;
  const int p = size();
  verify_record(ScheduleOpKind::kAllgather, 0, sizeof(T) * 8, 0);
  // Bruck dissemination: after the round with distance d, this rank holds
  // the values of ranks rank .. rank+2d-1 (mod p) in shifted order. ceil(log2
  // p) rounds for any p.
  std::vector<T> shifted{value};
  for (int d = 1; d < p; d <<= 1) {
    const int dest = (rank_ - d + p) % p;
    const int src = (rank_ + d) % p;
    const int count = std::min(d, p - d);
    auto got = sendrecv(
        std::span<const T>(shifted.data(), static_cast<size_t>(count)), dest,
        src, tag);
    shifted.insert(shifted.end(), got.begin(), got.end());
  }
  std::vector<T> all(p);
  for (int j = 0; j < p; ++j) all[(rank_ + j) % p] = shifted[j];
  return all;
}

template <typename T, typename Op>
T Communicator::allreduce_op(T value, Op op, int tag) {
  const int p = size();
  if (p == 1) return value;
  int pof2 = 1;
  while (pof2 * 2 <= p) pof2 *= 2;
  const int rem = p - pof2;

  // Fold phase: the odd ranks below 2*rem hand their value to the even
  // neighbour, leaving a power-of-two group (group ids: even folded ranks
  // get rank/2, the rest rank - rem).
  T acc = value;
  int group_id = -1;
  if (rank_ < 2 * rem) {
    if (rank_ % 2 == 1) {
      send(std::span<const T>(&acc, 1), rank_ - 1, tag);
    } else {
      acc = op(acc, recv<T>(rank_ + 1, tag)[0]);
      group_id = rank_ / 2;
    }
  } else {
    group_id = rank_ - rem;
  }

  // Recursive doubling inside the power-of-two group. Both partners combine
  // (lower subgroup, higher subgroup) in that order, so every rank computes
  // the bitwise-identical result.
  if (group_id >= 0) {
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int partner_id = group_id ^ mask;
      const int partner = partner_id < rem ? partner_id * 2 : partner_id + rem;
      T other = sendrecv(std::span<const T>(&acc, 1), partner, partner,
                         tag)[0];
      acc = group_id < partner_id ? op(acc, other) : op(other, acc);
    }
  }

  // Unfold phase: folded odd ranks get the finished result back.
  if (rank_ < 2 * rem) {
    if (rank_ % 2 == 1)
      acc = recv<T>(rank_ - 1, tag)[0];
    else
      send(std::span<const T>(&acc, 1), rank_ + 1, tag);
  }
  return acc;
}

template <typename T, typename Op>
void Communicator::allreduce_vec(std::vector<T>& data, Op op, int tag) {
  const int p = size();
  if (p == 1) return;
  // Binomial-tree reduce to rank 0 (mirror of the broadcast tree): receive
  // and fold the higher-rank subtrees, then send the partial to the parent.
  // Length validation piggybacks on the tree: a parent seeing a mismatched
  // child length "poisons" the reduction by forwarding an empty buffer, and
  // rank 0 broadcasts the result plus one sentinel element when clean or an
  // empty buffer when poisoned — so mismatches throw instead of hanging, at
  // no extra message cost.
  const size_t my_size = data.size();
  bool poisoned = false;
  int mask = 1;
  while (mask < p) {
    if (rank_ & mask) {
      if (poisoned) data.clear();
      send(std::span<const T>(data), rank_ ^ mask, tag);
      break;
    }
    if (rank_ + mask < p) {
      auto other = recv<T>(rank_ + mask, tag);
      if (other.size() != my_size) {
        poisoned = true;
      } else {
        for (size_t i = 0; i < my_size; ++i) data[i] = op(data[i], other[i]);
      }
    }
    mask <<= 1;
  }
  if (rank_ == 0) {
    if (poisoned)
      data.clear();
    else
      data.push_back(T{});  // sentinel: distinguishes a clean empty result
  }
  broadcast(data, 0);
  if (data.size() != my_size + 1)
    throw CommContractError(
        "mpisim: vector allreduce element counts differ across ranks");
  data.pop_back();
}

// The scalar/vector allreduce wrappers record the reduction-op IDENTITY
// (1 = sum, 2 = max, 3 = min) in the signature's tag slot: all three share
// one wire tag, so a rank doing allreduce_sum while its peers do
// allreduce_max combines values silently — the schedule hash is the only
// thing that can catch that class of divergence.

template <typename T>
T Communicator::allreduce_sum(T value) {
  verify_record(ScheduleOpKind::kAllreduce, 1, sizeof(T) * 8, 0);
  return allreduce_op(value, [](T a, T b) { return a + b; },
                      kCollectiveTag + 3);
}

template <typename T>
T Communicator::allreduce_max(T value) {
  verify_record(ScheduleOpKind::kAllreduce, 2, sizeof(T) * 8, 0);
  return allreduce_op(value, [](T a, T b) { return a > b ? a : b; },
                      kCollectiveTag + 3);
}

template <typename T>
T Communicator::allreduce_min(T value) {
  verify_record(ScheduleOpKind::kAllreduce, 3, sizeof(T) * 8, 0);
  return allreduce_op(value, [](T a, T b) { return a < b ? a : b; },
                      kCollectiveTag + 3);
}

template <typename T>
void Communicator::allreduce_sum(std::vector<T>& data) {
  verify_record(ScheduleOpKind::kAllreduceVec, 1, sizeof(T) * 8, data.size());
  allreduce_vec(data, [](T a, T b) { return a + b; }, kCollectiveTag + 4);
}

template <typename T>
void Communicator::allreduce_max(std::vector<T>& data) {
  verify_record(ScheduleOpKind::kAllreduceVec, 2, sizeof(T) * 8, data.size());
  allreduce_vec(data, [](T a, T b) { return a > b ? a : b; },
                kCollectiveTag + 4);
}

template <typename T>
void Communicator::allreduce_min(std::vector<T>& data) {
  verify_record(ScheduleOpKind::kAllreduceVec, 3, sizeof(T) * 8, data.size());
  allreduce_vec(data, [](T a, T b) { return a < b ? a : b; },
                kCollectiveTag + 4);
}

template <typename T>
std::vector<std::vector<T>> Communicator::alltoallv(
    std::vector<std::vector<T>> send_bufs, int tag) {
  if (static_cast<int>(send_bufs.size()) != size())
    throw CommContractError("mpisim: alltoallv needs one buffer per rank");
  check_idle();
  verify_record(ScheduleOpKind::kAlltoallv, tag, sizeof(T) * 8, 0);
  verify_checkpoint("alltoallv");
  // Every rank must have entered the same alltoallv (same tag) — a
  // mismatched schedule would otherwise deliver buffers to the wrong
  // exchange and corrupt data silently. O(log p) cost, negligible against
  // the pairwise payload exchange.
  check_collective_consistent(tag, "alltoallv tag");
  timings_->add_exchange(time_kind_);
  std::vector<std::vector<T>> recv_bufs(size());
  recv_bufs[rank_] = std::move(send_bufs[rank_]);
  for (int offset = 1; offset < size(); ++offset) {
    const int dest = (rank_ + offset) % size();
    // This overload learns its recv sizes from the arriving messages, so
    // the receiver folds what actually landed (below) instead of an
    // expectation — order divergence is still caught by the hash.
    verify_fold_send(dest, send_bufs[dest].size() * sizeof(T));
    send(std::span<const T>(send_bufs[dest]), dest, tag);
  }
  for (int offset = 1; offset < size(); ++offset) {
    const int src = (rank_ - offset + size()) % size();
    recv_bufs[src] = recv<T>(src, tag);
    verify_fold_recv(src, recv_bufs[src].size() * sizeof(T));
  }
  return recv_bufs;
}

inline std::pair<index_t, index_t> Communicator::check_alltoallv_counts(
    std::span<const index_t> send_counts,
    std::span<const index_t> recv_counts, size_t send_size,
    size_t recv_size) const {
  const int p = size();
  if (static_cast<int>(send_counts.size()) != p ||
      static_cast<int>(recv_counts.size()) != p)
    throw CommContractError("mpisim: alltoallv needs one count per rank");
  index_t send_total = 0, recv_total = 0;
  for (int r = 0; r < p; ++r) {
    send_total += send_counts[r];
    recv_total += recv_counts[r];
  }
  if (send_total != static_cast<index_t>(send_size) ||
      recv_total != static_cast<index_t>(recv_size))
    throw CommContractError("mpisim: alltoallv counts do not sum to buffers");
  if (send_counts[rank_] != recv_counts[rank_])
    throw CommContractError("mpisim: alltoallv self chunk size mismatch");
  // Offsets are prefix sums of the counts; computed on the fly so the call
  // itself allocates nothing.
  index_t self_send_off = 0, self_recv_off = 0;
  for (int r = 0; r < rank_; ++r) {
    self_send_off += send_counts[r];
    self_recv_off += recv_counts[r];
  }
  return {self_send_off, self_recv_off};
}

template <typename T>
void Communicator::alltoallv(std::span<const T> send,
                             std::span<const index_t> send_counts,
                             std::span<T> recv,
                             std::span<const index_t> recv_counts, int tag) {
  const int p = size();
  const auto [self_send_off, self_recv_off] = check_alltoallv_counts(
      send_counts, recv_counts, send.size(), recv.size());
  check_idle();
  verify_record(ScheduleOpKind::kAlltoallv, tag, sizeof(T) * 8, 0);
  verify_checkpoint("alltoallv");
  check_collective_consistent(tag, "alltoallv tag");
  timings_->add_exchange(time_kind_);
  verify_fold_counts(send_counts, recv_counts, sizeof(T));

  if (send_counts[rank_] > 0)
    std::memcpy(recv.data() + self_recv_off, send.data() + self_send_off,
                static_cast<size_t>(send_counts[rank_]) * sizeof(T));

  for (int offset = 1; offset < p; ++offset) {
    const int dest = (rank_ + offset) % p;
    index_t off = 0;
    for (int r = 0; r < dest; ++r) off += send_counts[r];
    this->send(send.subspan(static_cast<size_t>(off),
                            static_cast<size_t>(send_counts[dest])),
               dest, tag);
  }
  for (int offset = 1; offset < p; ++offset) {
    const int src = (rank_ - offset + p) % p;
    index_t off = 0;
    for (int r = 0; r < src; ++r) off += recv_counts[r];
    recv_into(recv.subspan(static_cast<size_t>(off),
                           static_cast<size_t>(recv_counts[src])),
              src, tag);
  }
}

template <typename T>
CommRequest Communicator::ialltoallv(std::span<const T> send,
                                     std::span<const index_t> send_counts,
                                     std::span<T> recv,
                                     std::span<const index_t> recv_counts,
                                     int tag) {
  const int p = size();
  const auto [self_send_off, self_recv_off] = check_alltoallv_counts(
      send_counts, recv_counts, send.size(), recv.size());
  check_idle();
  verify_record(ScheduleOpKind::kAlltoallv, tag, sizeof(T) * 8, 0);
  verify_checkpoint("alltoallv");
  check_collective_consistent(tag, "alltoallv tag");
  timings_->add_exchange(time_kind_);
  verify_fold_counts(send_counts, recv_counts, sizeof(T));

  if (send_counts[rank_] > 0)
    std::memcpy(recv.data() + self_recv_off, send.data() + self_send_off,
                static_cast<size_t>(send_counts[rank_]) * sizeof(T));

  const double post_time = backend_ ? backend_->now() : 0.0;
  for (int offset = 1; offset < p; ++offset) {
    const int dest = (rank_ + offset) % p;
    index_t off = 0;
    for (int r = 0; r < dest; ++r) off += send_counts[r];
    this->send(send.subspan(static_cast<size_t>(off),
                            static_cast<size_t>(send_counts[dest])),
               dest, tag);
  }
  pending_recvs_.clear();
  for (int offset = 1; offset < p; ++offset) {
    const int src = (rank_ - offset + p) % p;
    index_t off = 0;
    for (int r = 0; r < src; ++r) off += recv_counts[r];
    pending_recvs_.push_back(
        {src, tag, reinterpret_cast<std::byte*>(recv.data() + off),
         static_cast<size_t>(recv_counts[src]) * sizeof(T), 0, nullptr});
  }
  return finish_post(post_time);
}

template <typename Wide, typename Narrow>
void Communicator::alltoallv_converted(std::span<const Wide> send,
                                       std::span<const index_t> send_counts,
                                       std::span<Wide> recv,
                                       std::span<const index_t> recv_counts,
                                       std::span<Narrow> send_stage,
                                       std::span<Narrow> recv_stage, int tag) {
  static_assert(sizeof(Narrow) < sizeof(Wide));
  const int p = size();
  const auto [self_send_off, self_recv_off] = check_alltoallv_counts(
      send_counts, recv_counts, send.size(), recv.size());
  if (send_stage.size() < send.size() || recv_stage.size() < recv.size())
    throw CommContractError(
        "mpisim: alltoallv_converted staging buffers too small");
  check_idle();
  // The signature folds the NARROW width: that is what crosses the wire,
  // so a rank disagreeing about the wire precision of an exchange (fp64
  // vs fp32 variant, same tag) hashes differently.
  verify_record(ScheduleOpKind::kAlltoallv, tag, sizeof(Narrow) * 8, 0);
  verify_checkpoint("alltoallv");
  check_collective_consistent(tag, "alltoallv tag");
  timings_->add_exchange(time_kind_);
  verify_fold_counts(send_counts, recv_counts, sizeof(Narrow));

  // Self chunk: direct Wide copy (bit-exact, no staging round trip).
  if (send_counts[rank_] > 0)
    std::memcpy(recv.data() + self_recv_off, send.data() + self_send_off,
                static_cast<size_t>(send_counts[rank_]) * sizeof(Wide));

  // Peer chunks: narrow, ship, widen. Conversion sweeps are charged to the
  // current comm category — they are wire-format work a native fp32
  // transport would not need — and the volume they keep off the wire is
  // accounted to the bytes_saved counter (sender side, like add_message).
  for (int offset = 1; offset < p; ++offset) {
    const int dest = (rank_ + offset) % p;
    index_t off = 0;
    for (int r = 0; r < dest; ++r) off += send_counts[r];
    {
      ScopedTimer timer(*timings_, time_kind_);
      narrow_into(send.subspan(static_cast<size_t>(off),
                               static_cast<size_t>(send_counts[dest])),
                  send_stage.subspan(static_cast<size_t>(off),
                                     static_cast<size_t>(send_counts[dest])));
    }
    timings_->add_saved(time_kind_,
                        static_cast<std::uint64_t>(send_counts[dest]) *
                            (sizeof(Wide) - sizeof(Narrow)));
    this->send(std::span<const Narrow>(
                   send_stage.data() + off,
                   static_cast<size_t>(send_counts[dest])),
               dest, tag);
  }
  for (int offset = 1; offset < p; ++offset) {
    const int src = (rank_ - offset + p) % p;
    index_t off = 0;
    for (int r = 0; r < src; ++r) off += recv_counts[r];
    recv_into(std::span<Narrow>(recv_stage.data() + off,
                                static_cast<size_t>(recv_counts[src])),
              src, tag);
    ScopedTimer timer(*timings_, time_kind_);
    widen_into(std::span<const Narrow>(recv_stage.data() + off,
                                       static_cast<size_t>(recv_counts[src])),
               recv.subspan(static_cast<size_t>(off),
                            static_cast<size_t>(recv_counts[src])));
  }
}

template <typename Wide, typename Narrow>
CommRequest Communicator::ialltoallv_converted(
    std::span<const Wide> send, std::span<const index_t> send_counts,
    std::span<Wide> recv, std::span<const index_t> recv_counts,
    std::span<Narrow> send_stage, std::span<Narrow> recv_stage, int tag) {
  static_assert(sizeof(Narrow) < sizeof(Wide));
  const int p = size();
  const auto [self_send_off, self_recv_off] = check_alltoallv_counts(
      send_counts, recv_counts, send.size(), recv.size());
  if (send_stage.size() < send.size() || recv_stage.size() < recv.size())
    throw CommContractError(
        "mpisim: alltoallv_converted staging buffers too small");
  check_idle();
  // The signature folds the NARROW width: that is what crosses the wire,
  // so a rank disagreeing about the wire precision of an exchange (fp64
  // vs fp32 variant, same tag) hashes differently.
  verify_record(ScheduleOpKind::kAlltoallv, tag, sizeof(Narrow) * 8, 0);
  verify_checkpoint("alltoallv");
  check_collective_consistent(tag, "alltoallv tag");
  timings_->add_exchange(time_kind_);
  verify_fold_counts(send_counts, recv_counts, sizeof(Narrow));

  if (send_counts[rank_] > 0)
    std::memcpy(recv.data() + self_recv_off, send.data() + self_send_off,
                static_cast<size_t>(send_counts[rank_]) * sizeof(Wide));

  const double post_time = backend_ ? backend_->now() : 0.0;
  for (int offset = 1; offset < p; ++offset) {
    const int dest = (rank_ + offset) % p;
    index_t off = 0;
    for (int r = 0; r < dest; ++r) off += send_counts[r];
    {
      ScopedTimer timer(*timings_, time_kind_);
      narrow_into(send.subspan(static_cast<size_t>(off),
                               static_cast<size_t>(send_counts[dest])),
                  send_stage.subspan(static_cast<size_t>(off),
                                     static_cast<size_t>(send_counts[dest])));
    }
    timings_->add_saved(time_kind_,
                        static_cast<std::uint64_t>(send_counts[dest]) *
                            (sizeof(Wide) - sizeof(Narrow)));
    this->send(std::span<const Narrow>(
                   send_stage.data() + off,
                   static_cast<size_t>(send_counts[dest])),
               dest, tag);
  }
  pending_recvs_.clear();
  for (int offset = 1; offset < p; ++offset) {
    const int src = (rank_ - offset + p) % p;
    index_t off = 0;
    for (int r = 0; r < src; ++r) off += recv_counts[r];
    pending_recvs_.push_back(
        {src, tag, reinterpret_cast<std::byte*>(recv.data() + off),
         static_cast<size_t>(recv_counts[src]) * sizeof(Narrow),
         static_cast<size_t>(recv_counts[src]),
         &detail::widen_payload<Wide, Narrow>});
  }
  return finish_post(post_time);
}

template <typename Wide, typename Narrow>
void Communicator::send_narrowed(std::span<const Wide> data,
                                 std::span<Narrow> stage, int dest, int tag) {
  static_assert(sizeof(Narrow) < sizeof(Wide));
  if (stage.size() < data.size())
    throw CommContractError("mpisim: send_narrowed staging buffer too small");
  {
    ScopedTimer timer(*timings_, time_kind_);
    narrow_into(data, stage.subspan(0, data.size()));
  }
  timings_->add_saved(time_kind_,
                      data.size_bytes() - data.size() * sizeof(Narrow));
  send(std::span<const Narrow>(stage.data(), data.size()), dest, tag);
}

template <typename Wide, typename Narrow>
void Communicator::recv_widened(std::span<Wide> out, std::span<Narrow> stage,
                                int src, int tag) {
  static_assert(sizeof(Narrow) < sizeof(Wide));
  if (stage.size() < out.size())
    throw CommContractError("mpisim: recv_widened staging buffer too small");
  recv_into(stage.subspan(0, out.size()), src, tag);
  ScopedTimer timer(*timings_, time_kind_);
  widen_into(std::span<const Narrow>(stage.data(), out.size()), out);
}

template <typename Wide, typename Narrow>
CommRequest Communicator::isend_narrowed(std::span<const Wide> data,
                                         std::span<Narrow> stage, int dest,
                                         int tag) {
  // Buffered sends complete at post, so the "request" is already done; the
  // narrowing + accounting are exactly the blocking call's.
  send_narrowed(data, stage, dest, tag);
  return CommRequest();
}

template <typename Wide, typename Narrow>
CommRequest Communicator::irecv_widened(std::span<Wide> out,
                                        std::span<Narrow> stage, int src,
                                        int tag) {
  static_assert(sizeof(Narrow) < sizeof(Wide));
  if (stage.size() < out.size())
    throw CommContractError("mpisim: recv_widened staging buffer too small");
  check_idle();
  const double post_time = backend_ ? backend_->now() : 0.0;
  pending_recvs_.clear();
  pending_recvs_.push_back({src, tag, reinterpret_cast<std::byte*>(out.data()),
                            out.size() * sizeof(Narrow), out.size(),
                            &detail::widen_payload<Wide, Narrow>});
  return finish_post(post_time);
}

template <typename T>
CommRequest Communicator::irecv_into(std::span<T> out, int src, int tag) {
  static_assert(std::is_trivially_copyable_v<T>);
  check_idle();
  const double post_time = backend_ ? backend_->now() : 0.0;
  pending_recvs_.clear();
  pending_recvs_.push_back({src, tag, reinterpret_cast<std::byte*>(out.data()),
                            out.size_bytes(), 0, nullptr});
  return finish_post(post_time);
}

inline CommRequest Communicator::finish_post(double post_time) {
  if (pending_recvs_.empty()) return CommRequest();
  pending_ = true;
  return CommRequest(this, post_time, time_kind_);
}

}  // namespace diffreg::mpisim
