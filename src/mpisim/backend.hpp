/// @file backend.hpp
/// Abstract byte-level transport behind mpisim::Communicator.
///
/// The Communicator owns everything a real-MPI port should NOT have to
/// reimplement: the O(log p) collective algorithms, the collective-
/// consistency self-checks, the wire-precision conversion sweeps, and the
/// Timings byte/message/exchange/hidden accounting. Everything that IS
/// transport-specific — moving bytes, blocking matches, barriers, splitting
/// the rank group — lives behind this interface. `MailboxBackend` is the
/// thread-backed in-process implementation (p ranks as threads, one receive
/// queue per rank); an `MpiBackend` wrapping MPI_Send/MPI_Recv/MPI_Comm_split
/// can drop in later and inherit the counters and the entire test suite
/// unchanged.
///
/// Transport contract (what callers and the Communicator rely on):
///  * `send_bytes` is BUFFERED: the payload is copied (or otherwise owned by
///    the transport) before the call returns, and the call never blocks on
///    the receiver. Overlapped callers reuse their pack buffers immediately
///    after posting a send — GhostExchange packs slab 2 into the same buffer
///    while slab 1 is still in flight — so an implementation that keeps a
///    reference to the caller's span would corrupt data. (MPI analogue:
///    MPI_Bsend semantics, or an eager-protocol MPI_Isend completed at post.)
///  * Messages between a (source, destination) pair are matched by tag in
///    FIFO order; `recv_bytes` blocks until a (src, tag) match arrives and
///    `probe` is its nonblocking counterpart.
///  * `recv_bytes` reports each message's ARRIVAL time on the clock exposed
///    by `now()`. CommRequest::wait() uses it to split an exchange's wire
///    time into hidden (overlapped with compute between post and wait) and
///    blocked portions — see Timings::add_hidden.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <utility>
#include <vector>

namespace diffreg::mpisim {

/// A received payload plus its arrival timestamp (seconds on the owning
/// backend's `now()` clock).
struct Incoming {
  std::vector<std::byte> data;
  double arrival = 0.0;
};

/// Abstract rank-to-rank byte transport. One instance per rank per
/// communicator; instances of the same communicator share the underlying
/// channel state. All methods are called from the owning rank only.
class Backend {
 public:
  virtual ~Backend() = default;

  /// This rank's id within the communicator, in [0, size()).
  virtual int rank() const = 0;
  /// Number of ranks in the communicator.
  virtual int size() const = 0;

  /// Buffered, never-blocking send of `data` to `dest` under `tag`. The
  /// payload must be captured before returning (see the transport contract
  /// above — overlapped callers reuse send buffers right away).
  virtual void send_bytes(std::span<const std::byte> data, int dest,
                          int tag) = 0;

  /// Blocks until a message from `src` with `tag` is available and returns
  /// it together with its arrival timestamp.
  virtual Incoming recv_bytes(int src, int tag) = 0;

  /// Deadline variant of recv_bytes: blocks at most `timeout_ms` and returns
  /// std::nullopt when no match arrived in time (the watchdog primitive —
  /// the Communicator turns the nullopt into a CommTimeoutError with a full
  /// diagnosis). `timeout_ms <= 0` degenerates to an immediate probe.
  virtual std::optional<Incoming> try_recv_bytes(int src, int tag,
                                                 double timeout_ms) = 0;

  /// Nonblocking match probe: true iff recv_bytes(src, tag) would not block.
  virtual bool probe(int src, int tag) = 0;

  /// Blocks until every rank of this communicator has entered.
  virtual void barrier() = 0;

  /// Deadline variant of barrier: returns false when not every rank arrived
  /// within `timeout_ms` (this rank then withdraws from the barrier so the
  /// shared state stays consistent for the ranks that do show up later).
  virtual bool try_barrier(double timeout_ms) = 0;

  /// Creates this rank's transport for the sub-communicator selected by
  /// `color`. The caller (Communicator::split) has already agreed on
  /// `new_rank`/`new_size` collectively; the backend only wires up the
  /// channels. Collective over the parent communicator. With
  /// `timeout_ms > 0` the internal rendezvous is deadline-bounded and
  /// returns nullptr when a peer never arrives (a rank that died after the
  /// caller's collective agreement must not strand the survivors here).
  virtual std::shared_ptr<Backend> split(int color, int new_rank,
                                         int new_size,
                                         double timeout_ms) = 0;

  /// Discards every undelivered message addressed to THIS rank, returning
  /// how many were dropped. The fault-recovery primitive: after an aborted
  /// exchange, in-flight payloads of the dead exchange sit in the receive
  /// queues and would otherwise be matched by the NEXT exchange on the same
  /// (src, tag) — a stale payload masquerading as fresh data. Callers must
  /// quiesce the communicator first (no rank still sending) or the drain
  /// races with live traffic; Communicator::recover_after_fault wraps the
  /// drain in that rendezvous. Default: no-op (transports with no local
  /// queue state have nothing to discard).
  virtual std::size_t drain() { return 0; }

  /// Monotonic wall clock, in seconds, on the same timebase as the arrival
  /// stamps returned by recv_bytes.
  virtual double now() const = 0;
};

namespace detail {

/// One in-flight message of the thread-backed transport.
struct Message {
  int src = 0;
  int tag = 0;
  std::vector<std::byte> data;
  double arrival = 0.0;
};

/// One receive queue per rank; senders push, the owner pops by (src, tag).
class Mailbox {
 public:
  void push(Message message);
  /// Blocks until a message with the given source and tag is available.
  Incoming pop(int src, int tag);
  /// Deadline pop: nullopt when no (src, tag) match arrived in time.
  std::optional<Incoming> pop_for(int src, int tag, double timeout_ms);
  /// Nonblocking: true iff a (src, tag) match is queued.
  bool probe(int src, int tag);
  /// Discards every queued message; returns how many were dropped.
  std::size_t clear();

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

/// State shared by all ranks of one thread-backed communicator.
struct SharedState {
  explicit SharedState(int size);

  const int size;
  std::vector<Mailbox> mailboxes;

  // Generation-counted central barrier.
  std::mutex barrier_mutex;
  std::condition_variable barrier_cv;
  int barrier_count = 0;
  long barrier_generation = 0;

  // Exchange board used by split(): the first rank of each (color, epoch)
  // creates the child state, everyone else in that color looks it up.
  std::mutex split_mutex;
  std::map<std::pair<long, int>, std::shared_ptr<SharedState>> split_states;
  long split_epoch = 0;
};

}  // namespace detail

/// Thread-backed Backend: ranks are threads of one process and the "wire" is
/// a copy through the destination rank's mailbox. The push copies the
/// payload at send time (the buffered-send contract) and stamps its arrival,
/// so all data movement that would be network traffic under MPI is real,
/// timestamped buffer traffic here.
class MailboxBackend final : public Backend {
 public:
  MailboxBackend(std::shared_ptr<detail::SharedState> state, int rank)
      : state_(std::move(state)), rank_(rank) {}

  int rank() const override { return rank_; }
  int size() const override { return state_->size; }
  void send_bytes(std::span<const std::byte> data, int dest,
                  int tag) override;
  Incoming recv_bytes(int src, int tag) override;
  std::optional<Incoming> try_recv_bytes(int src, int tag,
                                         double timeout_ms) override;
  bool probe(int src, int tag) override;
  void barrier() override;
  bool try_barrier(double timeout_ms) override;
  std::shared_ptr<Backend> split(int color, int new_rank, int new_size,
                                 double timeout_ms) override;
  std::size_t drain() override;
  double now() const override;

 private:
  std::shared_ptr<detail::SharedState> state_;
  int rank_ = 0;
};

}  // namespace diffreg::mpisim
