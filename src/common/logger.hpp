// Minimal thread-safe logger. Rank 0 of an SPMD run typically owns stdout;
// other ranks stay quiet unless explicitly enabled. Supports an injectable
// sink (tests capture warnings instead of scraping stderr) and per-key
// rate-limited warnings for conditions that can fire once per message on a
// hot path (e.g. the CommRequest drain-on-destroy warning).
#pragma once

#include <atomic>
#include <cstdio>
#include <functional>
#include <map>
#include <mutex>
#include <string>

namespace diffreg {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  /// Replacement output target; called with the level and the raw message
  /// (no level tag) under the logger mutex.
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& instance();

  /// Atomic: the level filter is read on every log call from every rank
  /// thread, while a driver may adjust verbosity mid-run. Relaxed ordering
  /// is enough — the level is an advisory filter, not a synchronization
  /// point (a message racing a level change may legitimately land on either
  /// side of it).
  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  /// Routes output to `sink` instead of stderr; pass nullptr to restore
  /// stderr. Installing a sink also resets the rate-limit counters so a
  /// test capturing warnings starts from a clean slate.
  void set_sink(Sink sink);

  void log(LogLevel level, const std::string& message);

  /// Rate-limited log: at most kRatedLimit emissions per `key`, then one
  /// final suppression notice. Keys are small and stable (e.g.
  /// "mpisim.commrequest.drain"), so the map stays tiny.
  void log_rated(LogLevel level, const std::string& key,
                 const std::string& message);

 private:
  Logger() = default;

  static constexpr int kRatedLimit = 3;

  void emit(LogLevel level, const std::string& message);

  std::atomic<LogLevel> level_ = LogLevel::kInfo;
  std::mutex mutex_;
  Sink sink_;
  std::map<std::string, int> rated_counts_;
};

void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);
void log_debug(const std::string& message);
/// Rate-limited warning (Logger::log_rated at kWarn).
void log_warn_rated(const std::string& key, const std::string& message);

}  // namespace diffreg
