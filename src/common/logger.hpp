// Minimal thread-safe logger. Rank 0 of an SPMD run typically owns stdout;
// other ranks stay quiet unless explicitly enabled.
#pragma once

#include <cstdio>
#include <mutex>
#include <string>

namespace diffreg {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  void log(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kInfo;
  std::mutex mutex_;
};

void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);
void log_debug(const std::string& message);

}  // namespace diffreg
