#include "common/timer.hpp"

namespace diffreg {

std::string_view time_kind_name(TimeKind kind) {
  switch (kind) {
    case TimeKind::kFftComm:
      return "fft_comm";
    case TimeKind::kFftExec:
      return "fft_exec";
    case TimeKind::kInterpComm:
      return "interp_comm";
    case TimeKind::kInterpExec:
      return "interp_exec";
    case TimeKind::kOther:
      return "other";
    case TimeKind::kCount:
      break;
  }
  return "unknown";
}

}  // namespace diffreg
