// Wall-clock timers with the accounting categories used in the paper's
// evaluation tables: FFT communication, FFT execution, interpolation
// communication, interpolation execution (Tables I-IV report exactly these).
// Alongside the wall-clock split, each category also accumulates
// communication *volume* (bytes and messages sent, and collective alltoallv
// exchanges entered), so a message-count regression is visible even when the
// wall-clock split looks unchanged. The byte counters record POST-CONVERSION
// wire bytes: when an exchange ships an fp32 payload (WirePrecision::kF32)
// the narrowed size is what lands in `bytes`, and the volume the narrowing
// avoided is accumulated separately in `saved_bytes` — so fp64-vs-fp32 runs
// are directly comparable and the saving itself is a gated counter.
//
// Nonblocking exchanges (mpisim::Communicator::ialltoallv and friends)
// additionally report *hidden* communication time: the span between posting
// an exchange and the arrival of its last message, capped at the moment the
// caller blocked in CommRequest::wait(). That is the portion of the wire
// time that overlapped with useful compute. The overlap efficiency of a
// category is hidden / (hidden + timed comm); blocking exchanges contribute
// zero hidden time, so the ratio is exactly 0 for the legacy schedule.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string_view>

namespace diffreg {

enum class TimeKind : int {
  kFftComm = 0,
  kFftExec,
  kInterpComm,
  kInterpExec,
  kOther,
  kCount,
};

constexpr int kNumTimeKinds = static_cast<int>(TimeKind::kCount);

std::string_view time_kind_name(TimeKind kind);

/// Simple monotonic stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Per-rank accumulator for the paper's timing categories plus the
/// communication volume charged to each category.
class Timings {
 public:
  void add(TimeKind kind, double seconds) {
    seconds_[static_cast<int>(kind)] += seconds;
  }
  double get(TimeKind kind) const { return seconds_[static_cast<int>(kind)]; }

  /// Accounts one point-to-point message of `bytes` payload (sender side).
  void add_message(TimeKind kind, std::uint64_t bytes) {
    add_comm(kind, bytes, 1, 0);
  }
  /// Accounts one alltoallv exchange entered by this rank.
  void add_exchange(TimeKind kind) { add_comm(kind, 0, 0, 1); }
  /// Accounts bytes that a wire down-conversion kept OFF the wire (sender
  /// side, like add_message): payload bytes at fp64 minus bytes shipped.
  void add_saved(TimeKind kind, std::uint64_t bytes) {
    add_comm(kind, 0, 0, 0, bytes);
  }
  /// Raw counter accumulation (used by add_message/add_exchange and deltas).
  // diffreg:zero-alloc
  void add_comm(TimeKind kind, std::uint64_t bytes, std::uint64_t messages,
                std::uint64_t exchanges, std::uint64_t saved = 0) {
    bytes_[static_cast<int>(kind)] += bytes;
    messages_[static_cast<int>(kind)] += messages;
    exchanges_[static_cast<int>(kind)] += exchanges;
    saved_bytes_[static_cast<int>(kind)] += saved;
  }

  /// Accounts wire time a nonblocking exchange hid under compute (the span
  /// from post to last arrival, capped at the wait() entry).
  void add_hidden(TimeKind kind, double seconds) {
    hidden_seconds_[static_cast<int>(kind)] += seconds;
  }
  double hidden(TimeKind kind) const {
    return hidden_seconds_[static_cast<int>(kind)];
  }
  /// Fraction of a category's wire time that overlapped with compute:
  /// hidden / (hidden + timed comm). Returns 0 when no comm happened.
  double overlap_efficiency(TimeKind kind) const {
    const double h = hidden(kind);
    const double total = h + get(kind);
    return total > 0.0 ? h / total : 0.0;
  }

  std::uint64_t bytes(TimeKind kind) const {
    return bytes_[static_cast<int>(kind)];
  }
  std::uint64_t messages(TimeKind kind) const {
    return messages_[static_cast<int>(kind)];
  }
  std::uint64_t exchanges(TimeKind kind) const {
    return exchanges_[static_cast<int>(kind)];
  }
  std::uint64_t saved_bytes(TimeKind kind) const {
    return saved_bytes_[static_cast<int>(kind)];
  }
  std::uint64_t total_bytes() const {
    std::uint64_t sum = 0;
    for (auto b : bytes_) sum += b;
    return sum;
  }
  std::uint64_t total_messages() const {
    std::uint64_t sum = 0;
    for (auto m : messages_) sum += m;
    return sum;
  }
  std::uint64_t total_saved_bytes() const {
    std::uint64_t sum = 0;
    for (auto b : saved_bytes_) sum += b;
    return sum;
  }
  std::uint64_t total_exchanges() const {
    std::uint64_t sum = 0;
    for (auto e : exchanges_) sum += e;
    return sum;
  }

  void clear() {
    seconds_.fill(0.0);
    hidden_seconds_.fill(0.0);
    bytes_.fill(0);
    messages_.fill(0);
    exchanges_.fill(0);
    saved_bytes_.fill(0);
  }

  Timings& operator+=(const Timings& other) {
    for (int k = 0; k < kNumTimeKinds; ++k) {
      seconds_[k] += other.seconds_[k];
      hidden_seconds_[k] += other.hidden_seconds_[k];
      bytes_[k] += other.bytes_[k];
      messages_[k] += other.messages_[k];
      exchanges_[k] += other.exchanges_[k];
      saved_bytes_[k] += other.saved_bytes_[k];
    }
    return *this;
  }
  /// Element-wise max, used to report the slowest rank like the paper does.
  // diffreg:zero-alloc
  void max_with(const Timings& other) {
    for (int k = 0; k < kNumTimeKinds; ++k) {
      if (other.seconds_[k] > seconds_[k]) seconds_[k] = other.seconds_[k];
      if (other.hidden_seconds_[k] > hidden_seconds_[k])
        hidden_seconds_[k] = other.hidden_seconds_[k];
      if (other.bytes_[k] > bytes_[k]) bytes_[k] = other.bytes_[k];
      if (other.messages_[k] > messages_[k]) messages_[k] = other.messages_[k];
      if (other.exchanges_[k] > exchanges_[k])
        exchanges_[k] = other.exchanges_[k];
      if (other.saved_bytes_[k] > saved_bytes_[k])
        saved_bytes_[k] = other.saved_bytes_[k];
    }
  }

 private:
  std::array<double, kNumTimeKinds> seconds_{};
  std::array<double, kNumTimeKinds> hidden_seconds_{};
  std::array<std::uint64_t, kNumTimeKinds> bytes_{};
  std::array<std::uint64_t, kNumTimeKinds> messages_{};
  std::array<std::uint64_t, kNumTimeKinds> exchanges_{};
  std::array<std::uint64_t, kNumTimeKinds> saved_bytes_{};
};

/// Per-category `after - before`, for timing a phase of a longer run.
inline Timings timings_delta(const Timings& before, const Timings& after) {
  Timings d;
  for (int k = 0; k < kNumTimeKinds; ++k) {
    const auto kind = static_cast<TimeKind>(k);
    d.add(kind, after.get(kind) - before.get(kind));
    d.add_hidden(kind, after.hidden(kind) - before.hidden(kind));
    d.add_comm(kind, after.bytes(kind) - before.bytes(kind),
               after.messages(kind) - before.messages(kind),
               after.exchanges(kind) - before.exchanges(kind),
               after.saved_bytes(kind) - before.saved_bytes(kind));
  }
  return d;
}

/// RAII helper: accumulates the scope's duration into a Timings category.
class ScopedTimer {
 public:
  ScopedTimer(Timings& timings, TimeKind kind)
      : timings_(timings), kind_(kind) {}
  ~ScopedTimer() { timings_.add(kind_, timer_.seconds()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timings& timings_;
  TimeKind kind_;
  WallTimer timer_;
};

}  // namespace diffreg
