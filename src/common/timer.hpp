// Wall-clock timers with the accounting categories used in the paper's
// evaluation tables: FFT communication, FFT execution, interpolation
// communication, interpolation execution (Tables I-IV report exactly these).
#pragma once

#include <array>
#include <chrono>
#include <string_view>

namespace diffreg {

enum class TimeKind : int {
  kFftComm = 0,
  kFftExec,
  kInterpComm,
  kInterpExec,
  kOther,
  kCount,
};

constexpr int kNumTimeKinds = static_cast<int>(TimeKind::kCount);

std::string_view time_kind_name(TimeKind kind);

/// Simple monotonic stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Per-rank accumulator for the paper's timing categories.
class Timings {
 public:
  void add(TimeKind kind, double seconds) {
    seconds_[static_cast<int>(kind)] += seconds;
  }
  double get(TimeKind kind) const { return seconds_[static_cast<int>(kind)]; }
  void clear() { seconds_.fill(0.0); }

  Timings& operator+=(const Timings& other) {
    for (int k = 0; k < kNumTimeKinds; ++k) seconds_[k] += other.seconds_[k];
    return *this;
  }
  /// Element-wise max, used to report the slowest rank like the paper does.
  void max_with(const Timings& other) {
    for (int k = 0; k < kNumTimeKinds; ++k)
      if (other.seconds_[k] > seconds_[k]) seconds_[k] = other.seconds_[k];
  }

 private:
  std::array<double, kNumTimeKinds> seconds_{};
};

/// Per-category `after - before`, for timing a phase of a longer run.
inline Timings timings_delta(const Timings& before, const Timings& after) {
  Timings d;
  for (int k = 0; k < kNumTimeKinds; ++k) {
    const auto kind = static_cast<TimeKind>(k);
    d.add(kind, after.get(kind) - before.get(kind));
  }
  return d;
}

/// RAII helper: accumulates the scope's duration into a Timings category.
class ScopedTimer {
 public:
  ScopedTimer(Timings& timings, TimeKind kind)
      : timings_(timings), kind_(kind) {}
  ~ScopedTimer() { timings_.add(kind_, timer_.seconds()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timings& timings_;
  TimeKind kind_;
  WallTimer timer_;
};

}  // namespace diffreg
