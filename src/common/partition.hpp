// 1D block distribution of n items over p parts, allowing n % p != 0.
//
// This is the building block of the 2D pencil decomposition (paper Fig. 4):
// the first `n % p` parts get one extra item, so part sizes differ by at most
// one and every alltoallv exchange can be expressed with these ranges.
#pragma once

#include <cassert>

#include "common/types.hpp"

namespace diffreg {

struct BlockRange {
  index_t begin = 0;
  index_t end = 0;  // exclusive
  index_t size() const { return end - begin; }
};

/// Half-open index range owned by part r of p when distributing n items.
constexpr BlockRange block_range(index_t n, int p, int r) {
  const index_t base = n / p;
  const index_t rem = n % p;
  const index_t begin = r * base + (r < rem ? r : rem);
  const index_t size = base + (r < rem ? 1 : 0);
  return {begin, begin + size};
}

/// Part that owns global index i under block_range(n, p, .).
constexpr int block_owner(index_t i, index_t n, int p) {
  assert(i >= 0 && i < n);
  const index_t base = n / p;
  const index_t rem = n % p;
  const index_t split = rem * (base + 1);  // first index of the smaller parts
  if (i < split) return static_cast<int>(i / (base + 1));
  return static_cast<int>(rem + (i - split) / base);
}

}  // namespace diffreg
