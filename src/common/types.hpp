// Core scalar, index, and small-vector types shared by every diffreg module.
//
// The solver works on the periodic domain [0, 2*pi)^3 discretized with a
// regular grid of N1 x N2 x N3 points (paper section II). All fields are
// double precision.
#pragma once

#include <array>
#include <cmath>
#include <complex>
#include <cstddef>
#include <cstdint>
#include <numbers>

namespace diffreg {

using real_t = double;
using complex_t = std::complex<real_t>;
using index_t = std::int64_t;

inline constexpr real_t kTwoPi = 2.0 * std::numbers::pi_v<real_t>;

/// Integer triple, used for grid sizes and multi-indices (i1, i2, i3).
struct Int3 {
  index_t x[3]{0, 0, 0};

  constexpr index_t& operator[](int d) { return x[d]; }
  constexpr index_t operator[](int d) const { return x[d]; }
  constexpr index_t prod() const { return x[0] * x[1] * x[2]; }
  friend constexpr bool operator==(const Int3&, const Int3&) = default;
};

/// Point / vector in R^3 (velocities, deformation-map values, wavenumbers).
struct Vec3 {
  real_t x[3]{0, 0, 0};

  constexpr real_t& operator[](int d) { return x[d]; }
  constexpr real_t operator[](int d) const { return x[d]; }

  friend constexpr Vec3 operator+(Vec3 a, Vec3 b) {
    return {a[0] + b[0], a[1] + b[1], a[2] + b[2]};
  }
  friend constexpr Vec3 operator-(Vec3 a, Vec3 b) {
    return {a[0] - b[0], a[1] - b[1], a[2] - b[2]};
  }
  friend constexpr Vec3 operator*(real_t s, Vec3 a) {
    return {s * a[0], s * a[1], s * a[2]};
  }
  constexpr real_t dot(Vec3 b) const {
    return x[0] * b[0] + x[1] * b[1] + x[2] * b[2];
  }
  real_t norm() const { return std::sqrt(dot(*this)); }
};

/// Row-major linear index of (i1, i2, i3) in an n1 x n2 x n3 block
/// (i3 fastest, matching the memory layout used throughout the library).
constexpr index_t linear_index(index_t i1, index_t i2, index_t i3,
                               const Int3& n) {
  return (i1 * n[1] + i2) * n[2] + i3;
}

/// Wraps x into the periodic interval [0, period).
inline real_t periodic_wrap(real_t x, real_t period) {
  x = std::fmod(x, period);
  if (x < 0) x += period;
  // fmod of a slightly negative value can round back up to `period` itself.
  if (x >= period) x -= period;
  return x;
}

/// Wraps an integer index into [0, n).
constexpr index_t periodic_index(index_t i, index_t n) {
  i %= n;
  return i < 0 ? i + n : i;
}

/// Wraps x into [0, 2*pi) and converts to grid units in [0, n) for cell
/// size h (= 2*pi/n as a rounded double). The guard matters: h is rounded,
/// so wrap/h can land on exactly n for points just below the period even
/// though the wrap itself is strictly below 2*pi — callers indexing a
/// 4-point stencil off floor(u) would then read one cell past their block
/// (and ownership classification would pick the wrong rank).
inline real_t periodic_grid_units(real_t x, real_t h, index_t n) {
  const real_t u = periodic_wrap(x, kTwoPi) / h;
  return u >= static_cast<real_t>(n) ? u - static_cast<real_t>(n) : u;
}

/// Determinant of the 3x3 matrix with rows a, b, c.
constexpr real_t det3(const Vec3& a, const Vec3& b, const Vec3& c) {
  return a[0] * (b[1] * c[2] - b[2] * c[1]) -
         a[1] * (b[0] * c[2] - b[2] * c[0]) +
         a[2] * (b[0] * c[1] - b[1] * c[0]);
}

}  // namespace diffreg
