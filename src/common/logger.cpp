#include "common/logger.hpp"

namespace diffreg {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel level, const std::string& message) {
  if (level < level_) return;
  const char* tag = "";
  switch (level) {
    case LogLevel::kDebug:
      tag = "[debug] ";
      break;
    case LogLevel::kInfo:
      tag = "[info] ";
      break;
    case LogLevel::kWarn:
      tag = "[warn] ";
      break;
    case LogLevel::kError:
      tag = "[error] ";
      break;
    case LogLevel::kOff:
      return;
  }
  std::scoped_lock lock(mutex_);
  std::fprintf(stderr, "%s%s\n", tag, message.c_str());
}

void log_info(const std::string& message) {
  Logger::instance().log(LogLevel::kInfo, message);
}
void log_warn(const std::string& message) {
  Logger::instance().log(LogLevel::kWarn, message);
}
void log_error(const std::string& message) {
  Logger::instance().log(LogLevel::kError, message);
}
void log_debug(const std::string& message) {
  Logger::instance().log(LogLevel::kDebug, message);
}

}  // namespace diffreg
