#include "common/logger.hpp"

namespace diffreg {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) {
  std::scoped_lock lock(mutex_);
  sink_ = std::move(sink);
  rated_counts_.clear();
}

void Logger::emit(LogLevel level, const std::string& message) {
  if (sink_) {
    sink_(level, message);
    return;
  }
  const char* tag = "";
  switch (level) {
    case LogLevel::kDebug:
      tag = "[debug] ";
      break;
    case LogLevel::kInfo:
      tag = "[info] ";
      break;
    case LogLevel::kWarn:
      tag = "[warn] ";
      break;
    case LogLevel::kError:
      tag = "[error] ";
      break;
    case LogLevel::kOff:
      return;
  }
  std::fprintf(stderr, "%s%s\n", tag, message.c_str());
}

void Logger::log(LogLevel level, const std::string& message) {
  if (level < level_.load(std::memory_order_relaxed) || level == LogLevel::kOff)
    return;
  std::scoped_lock lock(mutex_);
  emit(level, message);
}

void Logger::log_rated(LogLevel level, const std::string& key,
                       const std::string& message) {
  if (level < level_.load(std::memory_order_relaxed) || level == LogLevel::kOff)
    return;
  std::scoped_lock lock(mutex_);
  const int count = ++rated_counts_[key];
  if (count > kRatedLimit) return;
  if (count == kRatedLimit)
    emit(level, message + " (suppressing further '" + key + "' messages)");
  else
    emit(level, message);
}

void log_info(const std::string& message) {
  Logger::instance().log(LogLevel::kInfo, message);
}
void log_warn(const std::string& message) {
  Logger::instance().log(LogLevel::kWarn, message);
}
void log_error(const std::string& message) {
  Logger::instance().log(LogLevel::kError, message);
}
void log_debug(const std::string& message) {
  Logger::instance().log(LogLevel::kDebug, message);
}
void log_warn_rated(const std::string& key, const std::string& message) {
  Logger::instance().log_rated(LogLevel::kWarn, key, message);
}

}  // namespace diffreg
