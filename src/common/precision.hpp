// Mixed-precision support types (CLAIRE-style: Mang et al. 2019, Brunn et
// al. 2020 run the inexact Gauss-Newton-Krylov inner loop in single
// precision while the outer Newton iteration stays double).
//
// Two independent knobs build on these types:
//
//  * WirePrecision — the payload width of the hot exchange paths (FFT
//    transposes, ghost halos, interpolation value scatter, resample remap).
//    kF32 ships every message at half the bytes: senders down-convert into
//    caller-owned fp32 staging buffers, receivers up-convert back, and the
//    Timings counters record the bytes that actually crossed the wire plus
//    the volume saved by the narrowing.
//  * Compute precision of the inner Krylov solve — fp32 storage for the PCG
//    recurrence vectors with fp64 accumulation in every dot product/norm
//    (see core/pcg.hpp); the outer Newton step, gradient, objective, and
//    line search stay fp64 throughout.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <string_view>

#include "common/types.hpp"

namespace diffreg {

/// Single-precision scalar / complex used for wire payloads and the inner
/// Krylov storage. `real_t` (double) remains the precision of every field
/// the solver owns.
using real32_t = float;
using complex32_t = std::complex<real32_t>;

/// Payload element width of an exchange path. kF64 ships fields bit-exact;
/// kF32 down-converts on send and up-converts on receive (half the bytes,
/// ~1e-7 relative rounding per value).
enum class WirePrecision {
  kF64,
  kF32,
};

inline std::string_view wire_precision_name(WirePrecision wire) {
  return wire == WirePrecision::kF32 ? "fp32" : "fp64";
}

/// Element-wise down-conversion into a caller-owned staging span.
/// Works for real (double -> float) and complex (complex<double> ->
/// complex<float>) payloads alike.
template <typename Wide, typename Narrow>
inline void narrow_into(std::span<const Wide> in, std::span<Narrow> out) {
  for (size_t i = 0; i < in.size(); ++i)
    out[i] = static_cast<Narrow>(in[i]);
}

/// Element-wise up-conversion, the mirror of narrow_into.
template <typename Narrow, typename Wide>
inline void widen_into(std::span<const Narrow> in, std::span<Wide> out) {
  for (size_t i = 0; i < in.size(); ++i)
    out[i] = static_cast<Wide>(in[i]);
}

}  // namespace diffreg
