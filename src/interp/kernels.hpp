// Local interpolation kernels on ghosted pencil blocks.
//
// The semi-Lagrangian scheme needs off-grid evaluations of fields at
// departure points (paper section III-B2). Tricubic (4^3-point Lagrange)
// interpolation is the paper's choice: interpolation errors accumulate over
// time steps without a dt factor, so cubic accuracy is required. A trilinear
// kernel is provided for the accuracy/cost ablation.
//
// Coordinates are in *grid units relative to the ghosted block origin*:
// u = (global grid coordinate) - (block offset) + (ghost width). The caller
// guarantees the full stencil lies inside the ghosted block.
#pragma once

#include <cmath>

#include "common/types.hpp"

namespace diffreg::interp {

enum class Method { kTricubic, kTrilinear };

/// Cubic Lagrange weights for nodes {-1, 0, 1, 2} at fraction t in [0, 1).
// diffreg:zero-alloc
inline void cubic_weights(real_t t, real_t w[4]) {
  const real_t t2 = t * t;
  const real_t t3 = t2 * t;
  w[0] = (-t3 + 3 * t2 - 2 * t) / 6;  // node -1
  w[1] = (t3 - 2 * t2 - t + 2) / 2;   // node  0
  w[2] = (-t3 + t2 + 2 * t) / 2;      // node  1
  w[3] = (t3 - t) / 6;                // node  2
}

/// Precomputed tricubic stencil: the base offset of the 4^3 neighbourhood
/// inside the ghosted block plus the separable Lagrange weights. The paper
/// computes these interpolation coefficients once per Newton iteration (the
/// departure points are fixed by the velocity) and reuses them for every
/// field; InterpPlan stores one per planned point at build time.
struct CubicStencil {
  index_t base = 0;  // offset of the (i1-1, i2-1, i3-1) stencil corner
  real_t w1[4], w2[4], w3[4];
};

// diffreg:zero-alloc
inline void make_cubic_stencil(const Int3& gdims, real_t u1, real_t u2,
                               real_t u3, CubicStencil& st) {
  const index_t i1 = static_cast<index_t>(std::floor(u1));
  const index_t i2 = static_cast<index_t>(std::floor(u2));
  const index_t i3 = static_cast<index_t>(std::floor(u3));
  st.base = (i1 - 1) * gdims[1] * gdims[2] + (i2 - 1) * gdims[2] + (i3 - 1);
  cubic_weights(u1 - static_cast<real_t>(i1), st.w1);
  cubic_weights(u2 - static_cast<real_t>(i2), st.w2);
  cubic_weights(u3 - static_cast<real_t>(i3), st.w3);
}

/// Applies a precomputed stencil to one ghosted field. The i3 direction is
/// kept in four independent accumulators (the 4 contiguous line entries), so
/// the 64 multiply-adds vectorize and pipeline instead of forming a serial
/// reduction chain; ~64 coefficients as in the paper's O(600 N^3 / p) flop
/// estimate.
// diffreg:zero-alloc
inline real_t cubic_stencil_apply(const real_t* g, const Int3& gdims,
                                  const CubicStencil& st) {
  const index_t s1 = gdims[1] * gdims[2];
  const index_t s2 = gdims[2];
  const real_t* base = g + st.base;
  real_t acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
  for (int a = 0; a < 4; ++a) {
    const real_t w1a = st.w1[a];
    const real_t* plane = base + a * s1;
    for (int b = 0; b < 4; ++b) {
      const real_t s = w1a * st.w2[b];
      const real_t* line = plane + b * s2;
      acc0 += s * line[0];
      acc1 += s * line[1];
      acc2 += s * line[2];
      acc3 += s * line[3];
    }
  }
  return st.w3[0] * acc0 + st.w3[1] * acc1 + st.w3[2] * acc2 +
         st.w3[3] * acc3;
}

/// Evaluates the tricubic interpolant of the ghosted block `g` (dims
/// `gdims`, i3 fastest) at ghosted-grid-unit position (u1, u2, u3).
// diffreg:zero-alloc
inline real_t tricubic_eval(const real_t* g, const Int3& gdims, real_t u1,
                            real_t u2, real_t u3) {
  CubicStencil st;
  make_cubic_stencil(gdims, u1, u2, u3, st);
  return cubic_stencil_apply(g, gdims, st);
}

/// Trilinear interpolation (ablation baseline; first-order kernel).
// diffreg:zero-alloc
inline real_t trilinear_eval(const real_t* g, const Int3& gdims, real_t u1,
                             real_t u2, real_t u3) {
  const index_t i1 = static_cast<index_t>(std::floor(u1));
  const index_t i2 = static_cast<index_t>(std::floor(u2));
  const index_t i3 = static_cast<index_t>(std::floor(u3));
  const real_t t1 = u1 - static_cast<real_t>(i1);
  const real_t t2 = u2 - static_cast<real_t>(i2);
  const real_t t3 = u3 - static_cast<real_t>(i3);

  const index_t s1 = gdims[1] * gdims[2];
  const index_t s2 = gdims[2];
  const real_t* base = g + i1 * s1 + i2 * s2 + i3;

  auto lerp = [](real_t a, real_t b, real_t t) { return a + t * (b - a); };
  const real_t c00 = lerp(base[0], base[1], t3);
  const real_t c01 = lerp(base[s2], base[s2 + 1], t3);
  const real_t c10 = lerp(base[s1], base[s1 + 1], t3);
  const real_t c11 = lerp(base[s1 + s2], base[s1 + s2 + 1], t3);
  return lerp(lerp(c00, c01, t2), lerp(c10, c11, t2), t1);
}

}  // namespace diffreg::interp
