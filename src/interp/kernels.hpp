// Local interpolation kernels on ghosted pencil blocks.
//
// The semi-Lagrangian scheme needs off-grid evaluations of fields at
// departure points (paper section III-B2). Tricubic (4^3-point Lagrange)
// interpolation is the paper's choice: interpolation errors accumulate over
// time steps without a dt factor, so cubic accuracy is required. A trilinear
// kernel is provided for the accuracy/cost ablation.
//
// Coordinates are in *grid units relative to the ghosted block origin*:
// u = (global grid coordinate) - (block offset) + (ghost width). The caller
// guarantees the full stencil lies inside the ghosted block.
#pragma once

#include <cmath>

#include "common/types.hpp"

namespace diffreg::interp {

enum class Method { kTricubic, kTrilinear };

/// Cubic Lagrange weights for nodes {-1, 0, 1, 2} at fraction t in [0, 1).
inline void cubic_weights(real_t t, real_t w[4]) {
  const real_t t2 = t * t;
  const real_t t3 = t2 * t;
  w[0] = (-t3 + 3 * t2 - 2 * t) / 6;  // node -1
  w[1] = (t3 - 2 * t2 - t + 2) / 2;   // node  0
  w[2] = (-t3 + t2 + 2 * t) / 2;      // node  1
  w[3] = (t3 - t) / 6;                // node  2
}

/// Evaluates the tricubic interpolant of the ghosted block `g` (dims
/// `gdims`, i3 fastest) at ghosted-grid-unit position (u1, u2, u3).
inline real_t tricubic_eval(const real_t* g, const Int3& gdims, real_t u1,
                            real_t u2, real_t u3) {
  const index_t i1 = static_cast<index_t>(std::floor(u1));
  const index_t i2 = static_cast<index_t>(std::floor(u2));
  const index_t i3 = static_cast<index_t>(std::floor(u3));
  real_t w1[4], w2[4], w3[4];
  cubic_weights(u1 - static_cast<real_t>(i1), w1);
  cubic_weights(u2 - static_cast<real_t>(i2), w2);
  cubic_weights(u3 - static_cast<real_t>(i3), w3);

  const index_t s1 = gdims[1] * gdims[2];
  const index_t s2 = gdims[2];
  const real_t* base = g + (i1 - 1) * s1 + (i2 - 1) * s2 + (i3 - 1);

  real_t sum1 = 0;
  for (int a = 0; a < 4; ++a) {
    const real_t* plane = base + a * s1;
    real_t sum2 = 0;
    for (int b = 0; b < 4; ++b) {
      const real_t* line = plane + b * s2;
      // 4 fused multiply-adds; ~64 coefficients total as in the paper's
      // O(600 N^3 / p) flop estimate.
      const real_t sum3 =
          w3[0] * line[0] + w3[1] * line[1] + w3[2] * line[2] + w3[3] * line[3];
      sum2 += w2[b] * sum3;
    }
    sum1 += w1[a] * sum2;
  }
  return sum1;
}

/// Trilinear interpolation (ablation baseline; first-order kernel).
inline real_t trilinear_eval(const real_t* g, const Int3& gdims, real_t u1,
                             real_t u2, real_t u3) {
  const index_t i1 = static_cast<index_t>(std::floor(u1));
  const index_t i2 = static_cast<index_t>(std::floor(u2));
  const index_t i3 = static_cast<index_t>(std::floor(u3));
  const real_t t1 = u1 - static_cast<real_t>(i1);
  const real_t t2 = u2 - static_cast<real_t>(i2);
  const real_t t3 = u3 - static_cast<real_t>(i3);

  const index_t s1 = gdims[1] * gdims[2];
  const index_t s2 = gdims[2];
  const real_t* base = g + i1 * s1 + i2 * s2 + i3;

  auto lerp = [](real_t a, real_t b, real_t t) { return a + t * (b - a); };
  const real_t c00 = lerp(base[0], base[1], t3);
  const real_t c01 = lerp(base[s2], base[s2 + 1], t3);
  const real_t c10 = lerp(base[s1], base[s1 + 1], t3);
  const real_t c11 = lerp(base[s1 + s2], base[s1 + s2 + 1], t3);
  return lerp(lerp(c00, c01, t2), lerp(c10, c11, t2), t1);
}

}  // namespace diffreg::interp
