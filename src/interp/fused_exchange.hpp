// Cross-job fused interpolation exchange (the batch service's throughput
// mechanism; docs/SERVICE.md).
//
// InterpPlan::interpolate_many fuses the value scatter of several FIELDS of
// one plan into one alltoallv. FusedInterp fuses across PLANS: J co-resident
// same-shape jobs, each with its own departure points (its own plan) and its
// own field, ride ONE ghost halo exchange and ONE value alltoallv per
// semi-Lagrangian step — the message count per step is independent of how
// many jobs share the decomposition. This is the `interpolate_many`
// mechanism lifted from "components of one velocity" to "independent
// registrations".
//
// Bitwise contract: every point is evaluated with its own plan's
// precomputed stencil against its own job's ghosted block — only the
// message GROUPING changes, not any evaluated value — so per-job outputs
// are bitwise identical to calling plan->interpolate per job. The fused
// value exchange uses its own tag (403), so its messages never collide with
// a plan's private exchanges.
//
// Overlap: like the per-plan path, an `overlap` FusedInterp posts the fused
// value alltoallv nonblocking (PR 6 CommRequest machinery) and evaluates
// every job's SELF-owned majority under its flight. One fused exchange in
// flight replaces J per-job ones — within the communicator's
// one-outstanding-request budget.
#pragma once

#include <span>
#include <vector>

#include "grid/ghost_exchange.hpp"
#include "interp/interp_plan.hpp"

namespace diffreg::interp {

class FusedInterp {
 public:
  /// `wire`/`overlap` must match the plans this instance will drive (they
  /// decide the staging buffers and the exchange schedule).
  explicit FusedInterp(grid::PencilDecomp& decomp,
                       WirePrecision wire = WirePrecision::kF64,
                       bool overlap = false);

  /// Evaluates fields[i] at plans[i]'s planned points into outs[i] (which
  /// must hold plans[i]->num_points() entries), for all i, through ONE
  /// ghost exchange and ONE value alltoallv. All plans must be built on
  /// the constructor's decomposition with matching wire/overlap; `gx` is
  /// any ghost exchanger of that decomposition with width kGhostWidth.
  /// Outputs must not alias inputs. Collective.
  void interpolate_many(grid::GhostExchange& gx,
                        std::span<InterpPlan* const> plans,
                        std::span<const real_t* const> fields,
                        std::span<real_t* const> outs,
                        Method method = Method::kTricubic);

  /// Number of fused exchange rounds served (throughput accounting: J jobs
  /// per round means J-1 alltoallv saved per round).
  int fused_calls() const { return fused_calls_; }

 private:
  grid::PencilDecomp* decomp_;
  WirePrecision wire_;
  bool overlap_;
  int fused_calls_ = 0;

  // Fused per-peer counts (self zeroed) and the rank-major/plan-minor
  // value buffers; grow-only, reused across rounds.
  std::vector<index_t> send_counts_, recv_counts_;
  std::vector<real_t> send_vals_, recv_vals_;
  std::vector<real32_t> send_vals32_, recv_vals32_;  // kF32 staging
  std::vector<real_t> ghosted_;  // J ghost blocks back to back

  // Per-(plan, rank) offsets into the plans' rank-major point tables and
  // into the fused buffers (round scratch).
  std::vector<index_t> eval_base_, ret_base_, plan_recv_cum_, plan_send_cum_;

  static constexpr int kTagFusedValues = 403;
};

}  // namespace diffreg::interp
