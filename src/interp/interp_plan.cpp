#include "interp/interp_plan.hpp"

#include <cassert>
#include <cmath>

namespace diffreg::interp {

using grid::GhostExchange;
using grid::PencilDecomp;

InterpPlan::InterpPlan(PencilDecomp& decomp, std::span<const Vec3> points)
    : decomp_(&decomp), num_points_(static_cast<index_t>(points.size())) {
  auto& comm = decomp.comm();
  Timings& timings = comm.timings();
  comm.set_time_kind(TimeKind::kInterpComm);
  const Int3 dims = decomp.dims();
  const int p = comm.size();

  // Scatter phase: classify every point by the pencil that owns it and pack
  // its coordinates in grid units.
  std::vector<std::vector<real_t>> send_coords(p);
  send_index_.assign(p, {});
  {
    ScopedTimer t(timings, TimeKind::kInterpExec);
    const real_t h1 = kTwoPi / static_cast<real_t>(dims[0]);
    const real_t h2 = kTwoPi / static_cast<real_t>(dims[1]);
    const real_t h3 = kTwoPi / static_cast<real_t>(dims[2]);
    for (index_t i = 0; i < num_points_; ++i) {
      const real_t u1 = periodic_wrap(points[i][0], kTwoPi) / h1;
      const real_t u2 = periodic_wrap(points[i][1], kTwoPi) / h2;
      const real_t u3 = periodic_wrap(points[i][2], kTwoPi) / h3;
      const index_t f1 = periodic_index(static_cast<index_t>(u1), dims[0]);
      const index_t f2 = periodic_index(static_cast<index_t>(u2), dims[1]);
      const int owner = decomp.owner_of(f1, f2);
      send_index_[owner].push_back(i);
      auto& buf = send_coords[owner];
      buf.push_back(u1);
      buf.push_back(u2);
      buf.push_back(u3);
    }
  }

  recv_coords_ = comm.alltoallv(std::move(send_coords), kTagCoords);

  // Convert the received global grid-unit coordinates into ghosted-block
  // units once, so execute() does no coordinate arithmetic.
  {
    ScopedTimer t(timings, TimeKind::kInterpExec);
    const real_t off1 =
        static_cast<real_t>(kGhostWidth - decomp.range1().begin);
    const real_t off2 =
        static_cast<real_t>(kGhostWidth - decomp.range2().begin);
    const real_t off3 = static_cast<real_t>(kGhostWidth);
    for (auto& buf : recv_coords_) {
      for (size_t j = 0; j < buf.size(); j += 3) {
        buf[j] += off1;
        buf[j + 1] += off2;
        buf[j + 2] += off3;
      }
    }
  }
}

void InterpPlan::execute(GhostExchange& gx, std::span<const real_t> field,
                         std::span<real_t> out, Method method) {
  assert(static_cast<index_t>(out.size()) == num_points_);
  assert(gx.width() >= kGhostWidth);
  auto& comm = decomp_->comm();
  Timings& timings = comm.timings();
  comm.set_time_kind(TimeKind::kInterpComm);
  const int p = comm.size();

  gx.exchange(field, ghosted_);
  const Int3 gdims = gx.ghost_dims();

  // Evaluate all received points (ours and other ranks').
  std::vector<std::vector<real_t>> values(p);
  {
    ScopedTimer t(timings, TimeKind::kInterpExec);
    for (int q = 0; q < p; ++q) {
      const auto& coords = recv_coords_[q];
      auto& vals = values[q];
      vals.resize(coords.size() / 3);
      if (method == Method::kTricubic) {
        for (size_t j = 0; j < vals.size(); ++j)
          vals[j] = tricubic_eval(ghosted_.data(), gdims, coords[3 * j],
                                  coords[3 * j + 1], coords[3 * j + 2]);
      } else {
        for (size_t j = 0; j < vals.size(); ++j)
          vals[j] = trilinear_eval(ghosted_.data(), gdims, coords[3 * j],
                                   coords[3 * j + 1], coords[3 * j + 2]);
      }
    }
  }

  auto returned = comm.alltoallv(std::move(values), kTagValues);

  {  // Scatter the returned values into the caller's point order.
    ScopedTimer t(timings, TimeKind::kInterpExec);
    for (int q = 0; q < p; ++q) {
      const auto& idx = send_index_[q];
      const auto& vals = returned[q];
      assert(vals.size() == idx.size());
      for (size_t j = 0; j < idx.size(); ++j) out[idx[j]] = vals[j];
    }
  }
}

void InterpPlan::execute(GhostExchange& gx, const grid::VectorField& field,
                         std::vector<Vec3>& out, Method method) {
  out.resize(num_points_);
  std::vector<real_t> component(num_points_);
  for (int d = 0; d < 3; ++d) {
    execute(gx, field[d], component, method);
    for (index_t i = 0; i < num_points_; ++i) out[i][d] = component[i];
  }
}

}  // namespace diffreg::interp
