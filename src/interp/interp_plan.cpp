#include "interp/interp_plan.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace diffreg::interp {

using grid::GhostExchange;
using grid::PencilDecomp;

InterpPlan::InterpPlan(PencilDecomp& decomp, WirePrecision wire, bool overlap)
    : decomp_(&decomp), wire_(wire), overlap_(overlap) {
  const int p = decomp.comm().size();
  send_counts_.assign(p, 0);
  recv_counts_.assign(p, 0);
  cursor_.assign(p, 0);
  val_send_counts_.assign(p, 0);
  val_recv_counts_.assign(p, 0);
}

InterpPlan::InterpPlan(PencilDecomp& decomp, std::span<const Vec3> points,
                       WirePrecision wire, bool overlap)
    : InterpPlan(decomp, wire, overlap) {
  build(points);
}

void InterpPlan::build(std::span<const Vec3> points) {
  auto& comm = decomp_->comm();
  Timings& timings = comm.timings();
  comm.set_time_kind(TimeKind::kInterpComm);
  const Int3 dims = decomp_->dims();
  const int p = comm.size();
  num_points_ = static_cast<index_t>(points.size());

  // Classify every point by the pencil that owns it (pass 1: counts), then
  // pack its grid-unit coordinates dest-ordered (pass 2). Two passes over
  // the points replace the old per-rank vector<vector> staging, so the
  // buffers below are flat and reused across rebuilds.
  {
    ScopedTimer t(timings, TimeKind::kInterpExec);
    const real_t h1 = kTwoPi / static_cast<real_t>(dims[0]);
    const real_t h2 = kTwoPi / static_cast<real_t>(dims[1]);
    const real_t h3 = kTwoPi / static_cast<real_t>(dims[2]);
    if (owner_.size() < static_cast<size_t>(num_points_)) {
      owner_.resize(num_points_);
      wrapped_.resize(3 * num_points_);
      send_index_.resize(num_points_);
      send_coords_.resize(3 * num_points_);
    }
    std::fill(send_counts_.begin(), send_counts_.end(), index_t(0));
    for (index_t i = 0; i < num_points_; ++i) {
      const real_t u1 = periodic_grid_units(points[i][0], h1, dims[0]);
      const real_t u2 = periodic_grid_units(points[i][1], h2, dims[1]);
      const real_t u3 = periodic_grid_units(points[i][2], h3, dims[2]);
      const index_t f1 = periodic_index(static_cast<index_t>(u1), dims[0]);
      const index_t f2 = periodic_index(static_cast<index_t>(u2), dims[1]);
      const int owner = decomp_->owner_of(f1, f2);
      owner_[i] = owner;
      wrapped_[3 * i] = u1;
      wrapped_[3 * i + 1] = u2;
      wrapped_[3 * i + 2] = u3;
      ++send_counts_[owner];
    }
    cursor_[0] = 0;
    for (int r = 1; r < p; ++r)
      cursor_[r] = cursor_[r - 1] + send_counts_[r - 1];
    for (index_t i = 0; i < num_points_; ++i) {
      const index_t slot = cursor_[owner_[i]]++;
      send_index_[slot] = i;
      send_coords_[3 * slot] = wrapped_[3 * i];
      send_coords_[3 * slot + 1] = wrapped_[3 * i + 1];
      send_coords_[3 * slot + 2] = wrapped_[3 * i + 2];
    }
  }

  // Learn how many points each rank sends me (one fixed-count alltoall),
  // then exchange the coordinates themselves (one alltoallv). The count
  // tables double as the per-peer tables of every later value exchange.
  comm.alltoall(std::span<const index_t>(send_counts_),
                std::span<index_t>(recv_counts_), kTagCounts);
  recv_total_ = 0;
  for (int r = 0; r < p; ++r) recv_total_ += recv_counts_[r];
  for (int r = 0; r < p; ++r) {
    val_send_counts_[r] = 3 * send_counts_[r];
    val_recv_counts_[r] = 3 * recv_counts_[r];
  }
  if (recv_coords_.size() < static_cast<size_t>(3 * recv_total_))
    recv_coords_.resize(3 * recv_total_);
  comm.alltoallv(
      std::span<const real_t>(send_coords_.data(), 3 * num_points_),
      std::span<const index_t>(val_send_counts_),
      std::span<real_t>(recv_coords_.data(), 3 * recv_total_),
      std::span<const index_t>(val_recv_counts_), kTagCoords);

  // Convert the received global grid-unit coordinates into ghosted-block
  // units and precompute the tricubic stencils (base offset + separable
  // weights) once, so the interpolate sweep does no coordinate arithmetic
  // at all — the paper's "interpolation coefficients computed once per
  // Newton iteration".
  {
    ScopedTimer t(timings, TimeKind::kInterpExec);
    const real_t off1 =
        static_cast<real_t>(kGhostWidth - decomp_->range1().begin);
    const real_t off2 =
        static_cast<real_t>(kGhostWidth - decomp_->range2().begin);
    const real_t off3 = static_cast<real_t>(kGhostWidth);
    const Int3 ld = decomp_->local_real_dims();
    const Int3 gdims{ld[0] + 2 * kGhostWidth, ld[1] + 2 * kGhostWidth,
                     ld[2] + 2 * kGhostWidth};
    // A coordinate owned here lies in [begin, begin + nloc) — but adding
    // the integer ghost offset rounds, and a point just below the upper
    // boundary can land on exactly nloc + kGhostWidth, whose stencil reads
    // one cell past the ghosted block. The true value is strictly below
    // the bound, so clamping to the previous representable double is
    // faithful.
    const real_t hi1 = std::nextafter(
        static_cast<real_t>(ld[0] + kGhostWidth), real_t(0));
    const real_t hi2 = std::nextafter(
        static_cast<real_t>(ld[1] + kGhostWidth), real_t(0));
    const real_t hi3 = std::nextafter(
        static_cast<real_t>(ld[2] + kGhostWidth), real_t(0));
    if (stencils_.size() < static_cast<size_t>(recv_total_))
      stencils_.resize(recv_total_);
    for (index_t j = 0; j < recv_total_; ++j) {
      recv_coords_[3 * j] = std::min(recv_coords_[3 * j] + off1, hi1);
      recv_coords_[3 * j + 1] = std::min(recv_coords_[3 * j + 1] + off2, hi2);
      recv_coords_[3 * j + 2] = std::min(recv_coords_[3 * j + 2] + off3, hi3);
      make_cubic_stencil(gdims, recv_coords_[3 * j], recv_coords_[3 * j + 1],
                         recv_coords_[3 * j + 2], stencils_[j]);
      // The whole 4^3 neighbourhood must lie inside the ghosted block: a
      // point routed here with a coordinate outside [0, n) would both read
      // out of bounds and mean the ownership classification disagreed.
      assert(stencils_[j].base >= 0 &&
             stencils_[j].base + 3 * (gdims[1] * gdims[2] + gdims[2] + 1) <
                 gdims.prod());
    }
  }

  // Pre-size the value buffers for the common vector-field batch so the
  // first interpolate of a fresh velocity allocates nothing.
  constexpr int kPresizeBatch = 3;
  if (eval_vals_.size() < static_cast<size_t>(kPresizeBatch * recv_total_))
    eval_vals_.resize(kPresizeBatch * recv_total_);
  if (ret_vals_.size() < static_cast<size_t>(kPresizeBatch * num_points_))
    ret_vals_.resize(kPresizeBatch * num_points_);
  if (wire_ == WirePrecision::kF32) {
    if (eval_vals32_.size() < eval_vals_.size())
      eval_vals32_.resize(eval_vals_.size());
    if (ret_vals32_.size() < ret_vals_.size())
      ret_vals32_.resize(ret_vals_.size());
  }

  built_ = true;
  ++builds_;
}

void InterpPlan::interpolate(GhostExchange& gx, std::span<const real_t> field,
                             std::span<real_t> out, Method method) {
  assert(static_cast<index_t>(out.size()) == num_points_);
  const real_t* fields[1] = {field.data()};
  real_t* outs[1] = {out.data()};
  interpolate_many(gx, std::span<const real_t* const>(fields, 1),
                   std::span<real_t* const>(outs, 1), method);
}

void InterpPlan::interpolate_many(GhostExchange& gx,
                                  std::span<const real_t* const> fields,
                                  std::span<real_t* const> outs,
                                  Method method) {
  assert(built_);
  assert(fields.size() == outs.size());
  // The planned coordinates and stencil offsets are expressed in blocks
  // ghosted by exactly kGhostWidth.
  assert(gx.width() == kGhostWidth);
  const int m = static_cast<int>(fields.size());
  auto& comm = decomp_->comm();
  Timings& timings = comm.timings();
  comm.set_time_kind(TimeKind::kInterpComm);
  const int p = comm.size();
  const index_t gsize = gx.ghost_size();

  if (ghosted_.size() < static_cast<size_t>(m) * gsize)
    ghosted_.resize(static_cast<size_t>(m) * gsize);
  if (eval_vals_.size() < static_cast<size_t>(m) * recv_total_)
    eval_vals_.resize(static_cast<size_t>(m) * recv_total_);
  if (ret_vals_.size() < static_cast<size_t>(m) * num_points_)
    ret_vals_.resize(static_cast<size_t>(m) * num_points_);
  if (wire_ == WirePrecision::kF32) {
    if (eval_vals32_.size() < eval_vals_.size())
      eval_vals32_.resize(eval_vals_.size());
    if (ret_vals32_.size() < ret_vals_.size())
      ret_vals32_.resize(ret_vals_.size());
  }

  // One halo exchange for the whole batch.
  gx.exchange_many(fields,
                   std::span<real_t>(ghosted_.data(),
                                     static_cast<size_t>(m) * gsize));
  const Int3 gdims = gx.ghost_dims();

  // Self chunk bounds: departure points rarely leave their own pencil
  // (semi-Lagrangian steps move points by a fraction of a cell), so the
  // bulk of the planned points are evaluated ON the rank that asked for
  // them. Those values are written straight into the caller's output —
  // they skip the eval staging, the alltoallv self copy, and the scatter
  // pass entirely — and the value exchange ships only the true cross-rank
  // points. Comm counters are unchanged: self traffic was never wire
  // traffic.
  const int rank = comm.rank();
  index_t self_recv_off = 0, self_send_off = 0;
  for (int r = 0; r < rank; ++r) {
    self_recv_off += recv_counts_[r];
    self_send_off += send_counts_[r];
  }
  const index_t self_cnt = recv_counts_[rank];

  // Per-point evaluation kernel, shared by the blocking and overlapped
  // sweeps: `self` points land straight in the caller's output, peer points
  // in the point-major eval staging. Each point reads only its precomputed
  // stencil and the ghosted blocks, so evaluation ORDER cannot change any
  // value — the overlapped reordering below is bitwise-neutral.
  const auto eval_point = [&](index_t j, bool self) {
    const index_t pos = j < self_recv_off ? j : j - self_cnt;
    const index_t orig =
        self ? send_index_[self_send_off + (j - self_recv_off)] : 0;
    if (method == Method::kTricubic) {
      const CubicStencil& st = stencils_[j];
      for (int f = 0; f < m; ++f) {
        const real_t val =
            cubic_stencil_apply(ghosted_.data() + f * gsize, gdims, st);
        if (self)
          outs[f][orig] = val;
        else
          eval_vals_[pos * m + f] = val;
      }
    } else {
      const real_t u1 = recv_coords_[3 * j];
      const real_t u2 = recv_coords_[3 * j + 1];
      const real_t u3 = recv_coords_[3 * j + 2];
      for (int f = 0; f < m; ++f) {
        const real_t val =
            trilinear_eval(ghosted_.data() + f * gsize, gdims, u1, u2, u3);
        if (self)
          outs[f][orig] = val;
        else
          eval_vals_[pos * m + f] = val;
      }
    }
  };

  // One value alltoallv for the whole batch: the counts are the plan's
  // per-peer point counts scaled by the batch size, with the self chunk
  // delivered locally by the eval sweep (count 0). kF32 plans ship the
  // values at fp32 through the persistent staging pair.
  for (int r = 0; r < p; ++r) {
    val_send_counts_[r] = r == rank ? 0 : recv_counts_[r] * m;
    val_recv_counts_[r] = r == rank ? 0 : send_counts_[r] * m;
  }
  const std::span<const real_t> val_send(
      eval_vals_.data(), static_cast<size_t>(m) * (recv_total_ - self_cnt));
  const std::span<real_t> val_recv(
      ret_vals_.data(), static_cast<size_t>(m) * (num_points_ - self_cnt));

  if (overlap_) {
    // Peer points first: their values are all the exchange ships.
    {
      ScopedTimer t(timings, TimeKind::kInterpExec);
      for (index_t j = 0; j < self_recv_off; ++j) eval_point(j, false);
      for (index_t j = self_recv_off + self_cnt; j < recv_total_; ++j)
        eval_point(j, false);
    }
    // Post the value exchange, then evaluate the SELF-owned majority while
    // it is in flight. Same tags, payloads, and counters as the blocking
    // call — only the wait moves past the self sweep.
    mpisim::CommRequest req =
        wire_ == WirePrecision::kF32
            ? comm.ialltoallv_converted(
                  val_send, std::span<const index_t>(val_send_counts_),
                  val_recv, std::span<const index_t>(val_recv_counts_),
                  std::span<real32_t>(eval_vals32_.data(), val_send.size()),
                  std::span<real32_t>(ret_vals32_.data(), val_recv.size()),
                  kTagValues)
            : comm.ialltoallv(val_send,
                              std::span<const index_t>(val_send_counts_),
                              val_recv,
                              std::span<const index_t>(val_recv_counts_),
                              kTagValues);
    {
      ScopedTimer t(timings, TimeKind::kInterpExec);
      for (index_t j = self_recv_off; j < self_recv_off + self_cnt; ++j)
        eval_point(j, true);
    }
    req.wait();
  } else {
    // Legacy schedule: evaluate everything, then one blocking exchange.
    {
      ScopedTimer t(timings, TimeKind::kInterpExec);
      for (index_t j = 0; j < recv_total_; ++j)
        eval_point(j, j >= self_recv_off && j < self_recv_off + self_cnt);
    }
    if (wire_ == WirePrecision::kF32) {
      comm.alltoallv_converted(
          val_send, std::span<const index_t>(val_send_counts_), val_recv,
          std::span<const index_t>(val_recv_counts_),
          std::span<real32_t>(eval_vals32_.data(), val_send.size()),
          std::span<real32_t>(ret_vals32_.data(), val_recv.size()),
          kTagValues);
    } else {
      comm.alltoallv(val_send, std::span<const index_t>(val_send_counts_),
                     val_recv, std::span<const index_t>(val_recv_counts_),
                     kTagValues);
    }
  }

  {  // Scatter the returned cross-rank values into the caller's point
     // order, skipping the self block (already written by the eval sweep).
    ScopedTimer t(timings, TimeKind::kInterpExec);
    index_t pos = 0;
    for (index_t s = 0; s < num_points_; ++s) {
      if (s >= self_send_off && s < self_send_off + self_cnt) continue;
      const index_t orig = send_index_[s];
      for (int f = 0; f < m; ++f) outs[f][orig] = ret_vals_[pos * m + f];
      ++pos;
    }
  }
}

void InterpPlan::interpolate_vec(GhostExchange& gx,
                                 const grid::VectorField& field,
                                 std::vector<Vec3>& out, Method method) {
  if (out.size() != static_cast<size_t>(num_points_)) out.resize(num_points_);
  if (comp_out_.size() < static_cast<size_t>(3 * num_points_))
    comp_out_.resize(3 * num_points_);
  const real_t* fields[3] = {field[0].data(), field[1].data(),
                             field[2].data()};
  real_t* outs[3] = {comp_out_.data(), comp_out_.data() + num_points_,
                     comp_out_.data() + 2 * num_points_};
  interpolate_many(gx, std::span<const real_t* const>(fields, 3),
                   std::span<real_t* const>(outs, 3), method);
  for (index_t i = 0; i < num_points_; ++i)
    out[i] = Vec3{comp_out_[i], comp_out_[num_points_ + i],
                  comp_out_[2 * num_points_ + i]};
}

}  // namespace diffreg::interp
