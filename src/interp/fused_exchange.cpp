#include "interp/fused_exchange.hpp"

#include <cassert>

namespace diffreg::interp {

using grid::GhostExchange;

FusedInterp::FusedInterp(grid::PencilDecomp& decomp, WirePrecision wire,
                         bool overlap)
    : decomp_(&decomp), wire_(wire), overlap_(overlap) {
  const int p = decomp.comm().size();
  send_counts_.assign(p, 0);
  recv_counts_.assign(p, 0);
}

void FusedInterp::interpolate_many(GhostExchange& gx,
                                   std::span<InterpPlan* const> plans,
                                   std::span<const real_t* const> fields,
                                   std::span<real_t* const> outs,
                                   Method method) {
  const int nj = static_cast<int>(plans.size());
  assert(nj >= 1);
  assert(fields.size() == plans.size() && outs.size() == plans.size());
  assert(gx.width() == kGhostWidth);
  auto& comm = decomp_->comm();
  Timings& timings = comm.timings();
  comm.set_time_kind(TimeKind::kInterpComm);
  const int p = comm.size();
  const int rank = comm.rank();
  const index_t gsize = gx.ghost_size();
  const Int3 gdims = gx.ghost_dims();

  // Per-(plan, rank) offsets into each plan's rank-major point tables and
  // the fused per-peer counts (self chunks are delivered locally: count 0).
  plan_recv_cum_.resize(static_cast<size_t>(nj) * p);
  plan_send_cum_.resize(static_cast<size_t>(nj) * p);
  eval_base_.resize(static_cast<size_t>(nj) * p);
  ret_base_.resize(static_cast<size_t>(nj) * p);
  std::fill(send_counts_.begin(), send_counts_.end(), index_t(0));
  std::fill(recv_counts_.begin(), recv_counts_.end(), index_t(0));
  for (int i = 0; i < nj; ++i) {
    const InterpPlan& plan = *plans[i];
    assert(plan.built());
    assert(plan.decomp_ == decomp_ && plan.wire_ == wire_ &&
           plan.overlap_ == overlap_);
    index_t rcum = 0, scum = 0;
    for (int r = 0; r < p; ++r) {
      plan_recv_cum_[static_cast<size_t>(i) * p + r] = rcum;
      plan_send_cum_[static_cast<size_t>(i) * p + r] = scum;
      rcum += plan.recv_counts_[r];
      scum += plan.send_counts_[r];
      if (r != rank) {
        send_counts_[r] += plan.recv_counts_[r];
        recv_counts_[r] += plan.send_counts_[r];
      }
    }
  }
  // Fused buffer layout: rank-major (the alltoallv chunk order), plan-minor
  // within each rank's chunk.
  index_t send_total = 0, recv_total = 0;
  for (int r = 0; r < p; ++r) {
    index_t eoff = send_total, roff = recv_total;
    for (int i = 0; i < nj; ++i) {
      eval_base_[static_cast<size_t>(i) * p + r] = eoff;
      ret_base_[static_cast<size_t>(i) * p + r] = roff;
      if (r != rank) {
        eoff += plans[i]->recv_counts_[r];
        roff += plans[i]->send_counts_[r];
      }
    }
    send_total += send_counts_[r];
    recv_total += recv_counts_[r];
  }

  if (ghosted_.size() < static_cast<size_t>(nj) * gsize)
    ghosted_.resize(static_cast<size_t>(nj) * gsize);
  if (send_vals_.size() < static_cast<size_t>(send_total))
    send_vals_.resize(send_total);
  if (recv_vals_.size() < static_cast<size_t>(recv_total))
    recv_vals_.resize(recv_total);
  if (wire_ == WirePrecision::kF32) {
    if (send_vals32_.size() < send_vals_.size())
      send_vals32_.resize(send_vals_.size());
    if (recv_vals32_.size() < recv_vals_.size())
      recv_vals32_.resize(recv_vals_.size());
  }

  // One halo exchange for ALL jobs: each job's field gets its own ghosted
  // block, but they share the four neighbour messages.
  gx.exchange_many(fields, std::span<real_t>(ghosted_.data(),
                                             static_cast<size_t>(nj) * gsize));

  // Evaluates plan i's rank-r point chunk: self chunks land straight in the
  // caller's outputs (exactly like the per-plan path — self traffic is
  // never wire traffic), peer chunks in the fused send buffer. Each point
  // reads only its own plan's stencil and its own job's ghosted block, so
  // the fused grouping cannot change any value.
  const auto eval_chunk = [&](int i, int r) {
    const InterpPlan& plan = *plans[i];
    const real_t* ghosted = ghosted_.data() + static_cast<size_t>(i) * gsize;
    const index_t j0 = plan_recv_cum_[static_cast<size_t>(i) * p + r];
    const index_t cnt = plan.recv_counts_[r];
    const bool self = r == rank;
    const index_t s0 = plan_send_cum_[static_cast<size_t>(i) * p + r];
    real_t* dst = send_vals_.data() + eval_base_[static_cast<size_t>(i) * p + r];
    for (index_t k = 0; k < cnt; ++k) {
      const index_t j = j0 + k;
      real_t val;
      if (method == Method::kTricubic) {
        val = cubic_stencil_apply(ghosted, gdims, plan.stencils_[j]);
      } else {
        val = trilinear_eval(ghosted, gdims, plan.recv_coords_[3 * j],
                             plan.recv_coords_[3 * j + 1],
                             plan.recv_coords_[3 * j + 2]);
      }
      if (self)
        outs[i][plan.send_index_[s0 + k]] = val;
      else
        dst[k] = val;
    }
  };

  const std::span<const real_t> val_send(send_vals_.data(), send_total);
  const std::span<real_t> val_recv(recv_vals_.data(), recv_total);
  if (overlap_) {
    // Peer chunks of every job first (they are all the exchange ships),
    // then every job's SELF majority under the fused flight.
    {
      ScopedTimer t(timings, TimeKind::kInterpExec);
      for (int i = 0; i < nj; ++i)
        for (int r = 0; r < p; ++r)
          if (r != rank) eval_chunk(i, r);
    }
    mpisim::CommRequest req =
        wire_ == WirePrecision::kF32
            ? comm.ialltoallv_converted(
                  val_send, std::span<const index_t>(send_counts_), val_recv,
                  std::span<const index_t>(recv_counts_),
                  std::span<real32_t>(send_vals32_.data(), send_total),
                  std::span<real32_t>(recv_vals32_.data(), recv_total),
                  kTagFusedValues)
            : comm.ialltoallv(val_send, std::span<const index_t>(send_counts_),
                              val_recv, std::span<const index_t>(recv_counts_),
                              kTagFusedValues);
    {
      ScopedTimer t(timings, TimeKind::kInterpExec);
      for (int i = 0; i < nj; ++i) eval_chunk(i, rank);
    }
    req.wait();
  } else {
    {
      ScopedTimer t(timings, TimeKind::kInterpExec);
      for (int i = 0; i < nj; ++i)
        for (int r = 0; r < p; ++r) eval_chunk(i, r);
    }
    if (wire_ == WirePrecision::kF32) {
      comm.alltoallv_converted(
          val_send, std::span<const index_t>(send_counts_), val_recv,
          std::span<const index_t>(recv_counts_),
          std::span<real32_t>(send_vals32_.data(), send_total),
          std::span<real32_t>(recv_vals32_.data(), recv_total),
          kTagFusedValues);
    } else {
      comm.alltoallv(val_send, std::span<const index_t>(send_counts_),
                     val_recv, std::span<const index_t>(recv_counts_),
                     kTagFusedValues);
    }
  }

  {  // Scatter every job's returned cross-rank values into its own point
     // order (self chunks were already written by the eval sweep).
    ScopedTimer t(timings, TimeKind::kInterpExec);
    for (int i = 0; i < nj; ++i) {
      const InterpPlan& plan = *plans[i];
      for (int r = 0; r < p; ++r) {
        if (r == rank) continue;
        const index_t s0 = plan_send_cum_[static_cast<size_t>(i) * p + r];
        const real_t* src =
            recv_vals_.data() + ret_base_[static_cast<size_t>(i) * p + r];
        const index_t cnt = plan.send_counts_[r];
        for (index_t k = 0; k < cnt; ++k)
          outs[i][plan.send_index_[s0 + k]] = src[k];
      }
    }
  }
  ++fused_calls_;
}

}  // namespace diffreg::interp
