// Distributed off-grid interpolation with a cached communication plan
// (paper Algorithm 1 and section III-C2).
//
// A plan is *built* once per set of departure points ("scatter" phase): every
// query point is assigned to the rank whose pencil contains it, the per-rank
// point counts are exchanged with one fixed-count alltoall, the coordinates
// with one alltoallv, and flat dest-ordered send/recv tables are kept.
// Interpolating a field then costs one ghost-layer exchange, a local
// (tri)cubic evaluation sweep, and one alltoallv to return values — exactly
// the paper's "communicate points, interpolate, communicate back".
//
// Caching contract: departure points only change when the velocity changes,
// so the owner (semilag::Transport) rebuilds the plan in set_velocity and
// every state/adjoint solve and PCG Hessian matvec of the Newton iteration
// reuses it. The plan owns all of its buffers (flat send/recv arrays,
// per-peer count tables mirroring the mpisim alltoallv style, value and
// ghost scratch), so `interpolate`/`interpolate_many` perform no heap
// allocation once the buffers are warm; `build` reuses them across velocity
// updates. `interpolate_many` evaluates a batch of fields through ONE ghost
// exchange and ONE value alltoallv, so e.g. the three components of a vector
// field cost one exchange instead of three. Points the owner rank itself
// asked for — the vast majority: a semi-Lagrangian step moves departure
// points by a fraction of a cell, so most stay inside their own pencil —
// are evaluated straight into the caller's output, skipping the value
// staging, the alltoallv self copy, and the scatter pass; the value
// exchange ships only the true cross-rank points.
//
// Wire precision: with WirePrecision::kF32 the per-matvec VALUE scatter
// ships fp32 through plan-owned staging (half the bytes on the Hessian
// matvec hot path). The departure-point COORDINATES of build() stay fp64 on
// the wire: they run once per Newton iterate (off the matvec path), and the
// stencil placement they feed carries the ownership/bounds invariants that
// the fp64 classification guarantees — narrowing them would trade those
// guarantees for a negligible saving.
//
// Comm/compute overlap: an `overlap` plan reorders interpolate_many into
// peer-points-first / SELF-points-under-flight: the cross-rank points are
// evaluated and their value alltoallv is POSTED (nonblocking), then the
// SELF-owned majority is evaluated while the exchange is in the air, and
// only then does the plan wait for the returned values. Every point is
// evaluated with the same stencil against the same ghosted block, and the
// message schedule (tags, payloads, counters) is byte-identical to the
// blocking call — results are bitwise equal with overlap on or off; only
// the wire's idle time changes (accounted as Timings hidden comm time).
#pragma once

#include <span>
#include <vector>

#include "grid/decomposition.hpp"
#include "grid/field_math.hpp"
#include "grid/ghost_exchange.hpp"
#include "interp/kernels.hpp"

namespace diffreg::interp {

/// Ghost width required by the tricubic stencil.
inline constexpr index_t kGhostWidth = 2;

class InterpPlan {
 public:
  /// Creates an empty plan bound to `decomp`; call build() before use.
  /// `overlap` selects the nonblocking value exchange of interpolate_many
  /// (SELF points evaluated under the alltoallv flight); results and
  /// message schedule are identical either way.
  explicit InterpPlan(grid::PencilDecomp& decomp,
                      WirePrecision wire = WirePrecision::kF64,
                      bool overlap = false);

  /// Convenience: creates and immediately builds. Collective.
  InterpPlan(grid::PencilDecomp& decomp, std::span<const Vec3> points,
             WirePrecision wire = WirePrecision::kF64, bool overlap = false);

  WirePrecision wire() const { return wire_; }
  /// True when the value exchange is posted nonblocking and SELF points are
  /// evaluated under its flight.
  bool overlap() const { return overlap_; }

  /// (Re)builds the plan for a new set of departure points. `points` are
  /// physical coordinates in [0, 2*pi)^3 (wrapped internally), one value
  /// produced per point by the interpolate calls. Collective (one alltoall
  /// for the counts + one alltoallv for the coordinates); reuses all
  /// previously grown buffers.
  void build(std::span<const Vec3> points);

  bool built() const { return built_; }
  /// Number of build() calls this plan has served (plan-reuse accounting).
  int build_count() const { return builds_; }
  index_t num_points() const { return num_points_; }

  /// Interpolates `field` (owned local block) at the planned points.
  /// `out` must have num_points() entries, ordered like the input points,
  /// and must not alias `field`. Collective; uses `gx` (shared ghost
  /// exchanger, width exactly kGhostWidth — the precomputed stencil
  /// offsets are expressed in blocks ghosted by kGhostWidth).
  void interpolate(grid::GhostExchange& gx, std::span<const real_t> field,
                   std::span<real_t> out, Method method = Method::kTricubic);

  /// Batched interpolation: fields[f] is evaluated into outs[f] for all f,
  /// sharing ONE ghost exchange and ONE value alltoallv across the whole
  /// batch. Outputs must not alias inputs.
  void interpolate_many(grid::GhostExchange& gx,
                        std::span<const real_t* const> fields,
                        std::span<real_t* const> outs,
                        Method method = Method::kTricubic);

  /// Interpolates the three components of a vector field (one batched
  /// exchange); `out` is resized to num_points().
  void interpolate_vec(grid::GhostExchange& gx,
                       const grid::VectorField& field, std::vector<Vec3>& out,
                       Method method = Method::kTricubic);

 private:
  // The cross-job fused exchange (interp/fused_exchange.hpp) drives several
  // plans' value scatters through one alltoallv; it reads the planned
  // routing tables directly.
  friend class FusedInterp;

  grid::PencilDecomp* decomp_;
  WirePrecision wire_ = WirePrecision::kF64;
  bool overlap_ = false;
  index_t num_points_ = 0;
  index_t recv_total_ = 0;
  bool built_ = false;
  int builds_ = 0;

  // Scatter side: my points grouped by destination (owner) rank.
  std::vector<index_t> send_counts_;   // points owed to each rank [p]
  std::vector<index_t> send_index_;    // dest-ordered slot -> original index
  std::vector<real_t> send_coords_;    // dest-ordered, 3 reals per point
  // Gather side: points I evaluate on behalf of every rank, in
  // ghosted-block grid units (3 reals per point, rank-major).
  std::vector<index_t> recv_counts_;   // points received from each rank [p]
  std::vector<real_t> recv_coords_;
  // Interpolation coefficients, precomputed once per build (paper: "once
  // per Newton iteration") and reused by every tricubic interpolate.
  std::vector<CubicStencil> stencils_;

  // Build scratch (reused across rebuilds).
  std::vector<int> owner_;             // per-point owner rank
  std::vector<real_t> wrapped_;        // per-point wrapped grid-unit coords
  std::vector<index_t> cursor_;        // per-rank pack cursor [p]

  // Interpolate scratch: count tables scaled to the current payload and the
  // flat value/ghost buffers (grow-only, shared by all batch sizes).
  std::vector<index_t> val_send_counts_, val_recv_counts_;  // [p]
  std::vector<real_t> eval_vals_;      // recv_total_ * batch
  std::vector<real_t> ret_vals_;       // num_points_ * batch
  // fp32 wire staging of the value exchange (kF32 plans only; presized
  // alongside eval_vals_/ret_vals_ so the mixed path never allocates warm).
  std::vector<real32_t> eval_vals32_, ret_vals32_;
  std::vector<real_t> ghosted_;        // batch ghost blocks back to back
  std::vector<real_t> comp_out_;       // interpolate_vec staging (3 comps)

  static constexpr int kTagCounts = 400;
  static constexpr int kTagCoords = 401;
  static constexpr int kTagValues = 402;
};

}  // namespace diffreg::interp
