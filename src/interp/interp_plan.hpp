// Distributed off-grid interpolation with a cached communication plan
// (paper Algorithm 1 and section III-C2).
//
// A plan is built once per set of departure points ("scatter" phase): every
// query point is assigned to the rank whose pencil contains it, the point
// coordinates are exchanged with one alltoallv, and send and receive lists are
// kept. Executing the plan for a field then costs one ghost-layer exchange,
// a local (tri)cubic evaluation sweep, and one alltoallv to return values —
// exactly the paper's "communicate points, interpolate, communicate back".
// Because the departure points only change when the velocity changes, the
// plan is reused for every field and every time step of a Newton iteration.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "grid/decomposition.hpp"
#include "grid/field_math.hpp"
#include "grid/ghost_exchange.hpp"
#include "interp/kernels.hpp"

namespace diffreg::interp {

/// Ghost width required by the tricubic stencil.
inline constexpr index_t kGhostWidth = 2;

class InterpPlan {
 public:
  /// Collective. `points` are physical coordinates in [0, 2*pi)^3 (wrapped
  /// internally), one value produced per point on `execute`.
  InterpPlan(grid::PencilDecomp& decomp, std::span<const Vec3> points);

  index_t num_points() const { return num_points_; }

  /// Interpolates `field` (owned local block) at the planned points.
  /// `out` must have num_points() entries, ordered like the input points.
  /// Collective; uses `gx` (shared ghost exchanger, width >= 2).
  void execute(grid::GhostExchange& gx, std::span<const real_t> field,
               std::span<real_t> out, Method method = Method::kTricubic);

  /// Convenience: interpolates the three components of a vector field.
  void execute(grid::GhostExchange& gx, const grid::VectorField& field,
               std::vector<Vec3>& out, Method method = Method::kTricubic);

 private:
  grid::PencilDecomp* decomp_;
  index_t num_points_ = 0;

  // For each destination rank: which of my points it owns.
  std::vector<std::vector<index_t>> send_index_;
  // Received query points, in ghosted-grid-unit coordinates, per source rank.
  std::vector<std::vector<real_t>> recv_coords_;  // 3 reals per point

  std::vector<real_t> ghosted_;  // scratch for the ghosted field

  static constexpr int kTagCoords = 401;
  static constexpr int kTagValues = 402;
};

}  // namespace diffreg::interp
