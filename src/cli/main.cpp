// diffreg command-line driver.
//
// Registers a pair of volumes (built-in workloads or raw files written by
// imaging::write_raw_volume) and reports the paper's diagnostics. Examples:
//
//   diffreg --grid 64,64,64 --ranks 2 --workload synthetic
//   diffreg --grid 48,56,48 --workload brain --continuation --out result
//   diffreg --grid 64,64,64 --template t --reference r --incompressible
//   diffreg --grid 32,32,32 --ranks 4 --batch jobs.txt
//
// With --out PREFIX the deformed template, the residual and the
// det(grad y) map are written as PREFIX_*.{raw,mhd} volumes plus a
// mid-axial PGM slice each. With --batch FILE every non-comment line of
// FILE is one registration job (same flags as the command line, inheriting
// the command-line defaults) and all jobs run through one shared plan
// registry — see docs/SERVICE.md.
#include <cstdio>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli/cli_options.hpp"
#include "core/diffreg.hpp"
#include "grid/field_io.hpp"
#include "imaging/io.hpp"

using namespace diffreg;

namespace {

/// Reads and parses a --batch job file. Returns false after printing the
/// offending line (host-side, before any ranks spawn).
bool read_job_file(const std::string& path, const cli::CliOptions& defaults,
                   std::vector<cli::CliOptions>& jobs) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open job file %s\n", path.c_str());
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::string error;
    auto jo = cli::parse_options(line, defaults, error);
    if (!jo) {
      std::fprintf(stderr, "error: %s:%d: %s\n", path.c_str(), lineno,
                   error.c_str());
      return false;
    }
    jobs.push_back(std::move(*jo));
  }
  if (jobs.empty()) {
    std::fprintf(stderr, "error: job file %s has no jobs\n", path.c_str());
    return false;
  }
  return true;
}

/// Batch service mode: submit every job to a BatchSolver and print the
/// per-job summary table plus registry statistics on the root rank.
int run_batch(const cli::CliOptions& opt,
              const std::vector<cli::CliOptions>& jobs,
              const mpisim::SpmdOptions& spmd) {
  const auto body = [&](mpisim::Communicator& comm) {
    core::BatchSolver batch(comm);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const cli::CliOptions& jo = jobs[j];
      core::BatchJobSpec spec;
      spec.dims = jo.dims;
      spec.request.options = jo.reg;
      spec.request.job_id = j + 1;
      spec.request.priority = jo.priority;
      spec.request.deadline_seconds = jo.deadline;
      spec.request.checkpoint_path = jo.multi.checkpoint_path;
      if (jo.multi.checkpoint_every > 0)
        spec.request.checkpoint_every = jo.multi.checkpoint_every;
      // With a batch manifest, every job checkpoints by default so a killed
      // batch can warm-start its in-flight jobs on resume.
      if (!opt.batch_manifest.empty() && spec.request.checkpoint_path.empty())
        spec.request.checkpoint_path =
            opt.batch_manifest + ".job" + std::to_string(j + 1) + ".ckpt";
      spec.make_inputs = [jo](grid::PencilDecomp& d, grid::ScalarField& t,
                              grid::ScalarField& r) {
        spectral::SpectralOps ops(d);
        std::string error;
        if (!cli::build_workload(d, ops, jo, t, r, error))
          throw std::runtime_error(error);
      };
      batch.submit(std::move(spec));
    }

    core::BatchOptions bopt;
    bopt.shards = opt.shards;
    bopt.verbose = opt.reg.verbose;
    // The CLI service enforces deadlines (the library default keeps them
    // advisory for embedding callers) and wires up the fault-isolation
    // knobs.
    bopt.enforce_deadlines = true;
    bopt.retry_budget = opt.retry_budget;
    bopt.backoff_ms = opt.backoff_ms;
    bopt.degrade = opt.degrade;
    bopt.manifest_path = opt.batch_manifest;
    auto report = batch.run_all(bopt);

    if (comm.is_root()) {
      std::printf(
          "batch: %zu jobs  %d shard%s  wall %.2f s  %.3f registrations/s\n",
          report.summary.size(), report.shards,
          report.shards == 1 ? "" : "s", report.wall_seconds,
          report.registrations_per_sec);
      if (report.rounds > 1 || report.shard_rebuilds > 0)
        std::printf("fault recovery: %d round%s  %d shard rebuild%s\n",
                    report.rounds, report.rounds == 1 ? "" : "s",
                    report.shard_rebuilds,
                    report.shard_rebuilds == 1 ? "" : "s");
      std::printf(
          "plan registry: %d builds (%d decomp, %d spectral, %d resample, "
          "%d transport)  %d leases\n",
          report.registry.decomp_builds + report.registry.spectral_builds +
              report.registry.resample_builds +
              report.registry.transport_builds,
          report.registry.decomp_builds, report.registry.spectral_builds,
          report.registry.resample_builds, report.registry.transport_builds,
          report.registry.leases);
      std::printf(
          "%4s %5s %4s %6s %7s %8s %8s %8s %8s %8s %8s %17s\n", "job",
          "shard", "conv", "newton", "matvecs", "rel res", "min det",
          "solve s", "done at", "deadline", "attempts", "outcome");
      int counts[6] = {0, 0, 0, 0, 0, 0};
      for (const auto& s : report.summary) {
        std::printf(
            "%4llu %5d %4s %6d %7d %8.3f %8.3f %8.2f %8.2f %8s %8d %17s\n",
            static_cast<unsigned long long>(s.job_id), s.shard,
            s.converged ? "yes" : "no", s.newton_iters, s.matvecs,
            s.rel_residual, s.min_det, s.solve_seconds,
            s.completed_at_seconds, s.deadline_met ? "met" : "MISSED",
            s.attempts, core::to_string(s.outcome));
        ++counts[static_cast<int>(s.outcome)];
      }
      // One grep-stable line for CI: the terminal outcome census.
      std::printf(
          "batch outcomes: %d done, %d degraded, %d deadline-exceeded, "
          "%d poisoned\n",
          counts[static_cast<int>(core::JobOutcome::kDone)],
          counts[static_cast<int>(core::JobOutcome::kDegraded)],
          counts[static_cast<int>(core::JobOutcome::kDeadlineExceeded)],
          counts[static_cast<int>(core::JobOutcome::kPoisoned)]);
    }
  };
  try {
    mpisim::run_spmd(opt.ranks, body, spmd);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fatal: %s\n", e.what());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string parse_error;
  auto parsed = cli::parse_options(argc, argv, parse_error);
  if (!parsed) {
    std::fprintf(stderr, "error: %s\n", parse_error.c_str());
    return 1;
  }
  if (parsed->help) {
    cli::print_usage();
    return 0;
  }
  const cli::CliOptions opt = *parsed;

  mpisim::SpmdOptions spmd;
  spmd.fault_spec = opt.fault_spec;
  spmd.comm_timeout_ms = opt.comm_timeout_ms;
  spmd.verify_schedule = opt.verify_schedule;

  if (!opt.batch_file.empty()) {
    std::vector<cli::CliOptions> jobs;
    if (!read_job_file(opt.batch_file, opt, jobs)) return 1;
    return run_batch(opt, jobs, spmd);
  }

  int exit_code = 0;
  const auto body = [&](mpisim::Communicator& comm) {
    grid::PencilDecomp decomp(comm, opt.dims);
    spectral::SpectralOps ops(decomp);
    const bool root = comm.is_root();

    // Build or load the image pair.
    grid::ScalarField rho_t, rho_r;
    std::string werror;
    if (!cli::build_workload(decomp, ops, opt, rho_t, rho_r, werror)) {
      if (root) std::fprintf(stderr, "error: %s\n", werror.c_str());
      exit_code = 1;
      return;
    }

    // Solve.
    core::RegistrationSolver solver(decomp, opt.reg);
    core::RegistrationResult result;
    double summary_beta = opt.reg.beta;
    if (opt.multilevel) {
      core::MultilevelOptions mopt = opt.multi;
      if (opt.continuation) {
        core::ContinuationOptions copt = opt.cont;
        copt.beta_start = 1e-1;
        copt.beta_target = opt.reg.beta;
        mopt.coarse_beta_cont = copt;
      }
      auto ml = core::run_multilevel_continuation(decomp, opt.reg, rho_t,
                                                  rho_r, mopt);
      if (root && !ml.admissible)
        std::printf("warning: no admissible coarse stage (min det too "
                    "small); finer levels ran at beta %.1e\n",
                    ml.final_beta);
      if (root)
        for (const auto& lev : ml.levels)
          std::printf(
              "level %lldx%lldx%lld: beta %.1e  newton %d  matvecs %d  "
              "rel res %.3f  min det %.3f  %.2f s\n",
              static_cast<long long>(lev.dims[0]),
              static_cast<long long>(lev.dims[1]),
              static_cast<long long>(lev.dims[2]), lev.beta,
              lev.newton_iterations, lev.matvecs, lev.rel_residual,
              lev.min_det, lev.time_seconds);
      summary_beta = ml.final_beta;
      result = std::move(ml.fine);
    } else if (opt.continuation) {
      core::ContinuationOptions copt = opt.cont;
      copt.beta_start = 1e-1;
      copt.beta_target = opt.reg.beta;
      auto cont = core::run_beta_continuation(solver, rho_t, rho_r, copt);
      if (root)
        for (int s = 0; s < cont.stages; ++s)
          std::printf("stage %d: beta %.1e  rel res %.3f  min det %.3f\n", s,
                      cont.stage_betas[s], cont.stage_residuals[s],
                      cont.stage_min_dets[s]);
      if (root && !cont.admissible)
        std::printf("warning: no admissible stage (min det <= %.2f); "
                    "reporting the beta %.1e solve\n",
                    copt.min_det_bound, cont.final_beta);
      // Reflect the beta that produced `best` in the summary below.
      summary_beta = cont.final_beta;
      result = std::move(cont.best);
    } else {
      result = solver.run(rho_t, rho_r);
    }

    if (root) {
      std::printf("grid %lldx%lldx%lld  ranks %d  beta %.1e  %s  %s  %s\n",
                  static_cast<long long>(opt.dims[0]),
                  static_cast<long long>(opt.dims[1]),
                  static_cast<long long>(opt.dims[2]), opt.ranks,
                  summary_beta,
                  opt.reg.incompressible ? "incompressible" : "compressible",
                  opt.reg.gauss_newton ? "gauss-newton" : "full-newton",
                  opt.reg.precision == core::Precision::kMixed
                      ? "mixed-precision"
                      : "double-precision");
      std::printf("newton its %d  matvecs %d  converged %s\n",
                  result.newton.iterations, result.newton.total_matvecs,
                  result.newton.converged ? "yes" : "no");
      std::printf("rel residual %.4f   det(grad y) in [%.4f, %.4f]\n",
                  result.rel_residual, result.min_det, result.max_det);
      std::printf("time to solution %.2f s  (fft %.2f+%.2f s, interp "
                  "%.2f+%.2f s comm+exec)\n",
                  result.time_to_solution,
                  result.timings.get(TimeKind::kFftComm),
                  result.timings.get(TimeKind::kFftExec),
                  result.timings.get(TimeKind::kInterpComm),
                  result.timings.get(TimeKind::kInterpExec));
    }

    // Optional outputs.
    if (!opt.out_prefix.empty()) {
      grid::ScalarField deformed, det;
      solver.deform_template(rho_t, result.velocity, deformed);
      solver.jacobian_field(result.velocity, det);
      const index_t n = decomp.local_real_size();
      grid::ScalarField residual(n);
      for (index_t i = 0; i < n; ++i)
        residual[i] = std::abs(deformed[i] - rho_r[i]);

      auto dump = [&](const grid::ScalarField& f, const char* name,
                      real_t lo, real_t hi) {
        auto full = grid::gather_to_root(decomp, f);
        if (!root) return;
        const std::string base = opt.out_prefix + "_" + name;
        imaging::write_raw_volume(base, opt.dims, full);
        imaging::write_pgm_slice(base + ".pgm", opt.dims, full,
                                 opt.dims[0] / 2, lo, hi);
      };
      dump(deformed, "deformed", 0, 1);
      dump(residual, "residual", 0, 1);
      dump(det, "det", 0, 2);
      if (root)
        std::printf("wrote %s_{deformed,residual,det}.{raw,mhd,pgm}\n",
                    opt.out_prefix.c_str());
    }
  };
  try {
    mpisim::run_spmd(opt.ranks, body, spmd);
  } catch (const std::exception& e) {
    // Structured failure path: watchdog timeouts, integrity violations,
    // injected crashes and checkpoint errors all land here with their
    // diagnosis in what() instead of hanging the run.
    std::fprintf(stderr, "fatal: %s\n", e.what());
    return 1;
  }
  return exit_code;
}
