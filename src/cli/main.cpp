// diffreg command-line driver.
//
// Registers a pair of volumes (built-in workloads or raw files written by
// imaging::write_raw_volume) and reports the paper's diagnostics. Examples:
//
//   diffreg --grid 64,64,64 --ranks 2 --workload synthetic
//   diffreg --grid 48,56,48 --workload brain --continuation --out result
//   diffreg --grid 64,64,64 --template t --reference r --incompressible
//
// With --out PREFIX the deformed template, the residual and the
// det(grad y) map are written as PREFIX_*.{raw,mhd} volumes plus a
// mid-axial PGM slice each.
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "core/diffreg.hpp"
#include "grid/field_io.hpp"
#include "imaging/io.hpp"
#include "imaging/synthetic.hpp"

using namespace diffreg;

namespace {

struct CliOptions {
  Int3 dims{64, 64, 64};
  int ranks = 2;
  std::string workload = "synthetic";  // synthetic | brain | spheres | files
  std::string template_path, reference_path;
  std::string out_prefix;
  bool continuation = false;
  core::RegistrationOptions reg;
  core::ContinuationOptions cont;
  core::MultilevelOptions multi;
  bool multilevel = false;  // set by --levels N with N > 1
  // Fault-tolerant runtime (docs/FAULT_MODEL.md).
  std::string fault_spec;       // --fault-spec, forwarded to run_spmd
  double comm_timeout_ms = 0;   // --comm-timeout-ms, 0 = watchdog off
};

void print_usage() {
  std::printf(
      "diffreg — distributed-memory large deformation diffeomorphic 3D "
      "image registration (SC16 reproduction)\n\n"
      "usage: diffreg [options]\n"
      "  --grid N1,N2,N3      grid size (default 64,64,64)\n"
      "  --ranks P            simulated MPI ranks (default 2)\n"
      "  --workload W         synthetic | brain | spheres (default synthetic)\n"
      "  --template PATH      raw volume (with --reference; overrides workload)\n"
      "  --reference PATH     raw volume\n"
      "  --beta B             regularization weight (default 1e-2)\n"
      "  --reg h1|h2          regularization seminorm (default h2)\n"
      "  --nt N               semi-Lagrangian time steps (default 4)\n"
      "  --gtol T             relative gradient tolerance (default 1e-2)\n"
      "  --max-newton N       Newton iteration cap (default 50)\n"
      "  --incompressible     enforce div v = 0 (volume preserving map)\n"
      "  --precision P        double | mixed (default double); mixed ships\n"
      "                       every hot exchange as fp32 and runs the inner\n"
      "                       Krylov solve in single precision (outer Newton\n"
      "                       stays double — see README precision policy)\n"
      "  --overlap M          on | off (default off); on posts the hot\n"
      "                       exchanges nonblocking and runs independent\n"
      "                       local work under their flight (bitwise\n"
      "                       identical results and message schedule)\n"
      "  --full-newton        keep the full-Newton Hessian terms\n"
      "  --trilinear          trilinear instead of tricubic interpolation\n"
      "  --continuation       run beta continuation (start 1e-1 -> beta)\n"
      "  --levels N           N-level coarse-to-fine grid pyramid "
      "(default 1 = single level);\n"
      "                       with --continuation the coarsest level runs "
      "the beta schedule\n"
      "  --coarsest D         pyramid floor: no axis below D points "
      "(default 8)\n"
      "  --two-level          coarse-grid Hessian preconditioner for the "
      "PCG solves\n"
      "  --precond-iters N    inner CG sweeps of the coarse Hessian solve "
      "(default 5)\n"
      "  --out PREFIX         write deformed/residual/det volumes + slices\n"
      "  --guard M            on | off (default off); collective finite\n"
      "                       sweeps per Newton iterate plus line-search,\n"
      "                       PCG-breakdown and mixed-precision recovery\n"
      "  --comm-timeout-ms T  comm watchdog: blocking receives/barriers\n"
      "                       raise CommTimeoutError with a per-rank\n"
      "                       diagnosis after T ms (default 0 = off)\n"
      "  --fault-spec S       fault injection for robustness testing, e.g.\n"
      "                       \"seed=7,drop=0.01,delay_ms=5\" (see\n"
      "                       docs/FAULT_MODEL.md for the full grammar)\n"
      "  --checkpoint PATH    checkpoint file (default diffreg.ckpt)\n"
      "  --checkpoint-every N write a checkpoint every N accepted Newton\n"
      "                       iterates and at every level end\n"
      "  --resume PATH        warm-restart a killed run from a checkpoint\n"
      "  --verbose            per-iteration Newton log\n"
      "  --help               this message\n");
}

bool parse_int3(const char* arg, Int3& out) {
  long long a = 0, b = 0, c = 0;
  if (std::sscanf(arg, "%lld,%lld,%lld", &a, &b, &c) != 3) return false;
  if (a < 4 || b < 4 || c < 4) return false;
  out = {a, b, c};
  return true;
}

std::optional<CliOptions> parse(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (flag == "--help" || flag == "-h") {
      print_usage();
      return std::nullopt;
    } else if (flag == "--grid") {
      const char* v = next();
      if (!v || !parse_int3(v, opt.dims)) {
        std::fprintf(stderr, "error: bad --grid\n");
        return std::nullopt;
      }
    } else if (flag == "--ranks") {
      const char* v = next();
      if (!v || (opt.ranks = std::atoi(v)) < 1) {
        std::fprintf(stderr, "error: bad --ranks\n");
        return std::nullopt;
      }
    } else if (flag == "--workload") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.workload = v;
    } else if (flag == "--template") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.template_path = v;
      opt.workload = "files";
    } else if (flag == "--reference") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.reference_path = v;
      opt.workload = "files";
    } else if (flag == "--beta") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.reg.beta = std::atof(v);
    } else if (flag == "--reg") {
      const char* v = next();
      if (!v) return std::nullopt;
      if (std::strcmp(v, "h1") == 0)
        opt.reg.reg_type = core::RegType::kH1Seminorm;
      else if (std::strcmp(v, "h2") == 0)
        opt.reg.reg_type = core::RegType::kH2Seminorm;
      else {
        std::fprintf(stderr, "error: --reg must be h1 or h2\n");
        return std::nullopt;
      }
    } else if (flag == "--nt") {
      const char* v = next();
      if (!v || (opt.reg.nt = std::atoi(v)) < 1) return std::nullopt;
    } else if (flag == "--gtol") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.reg.gtol = std::atof(v);
    } else if (flag == "--max-newton") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.reg.max_newton_iters = std::atoi(v);
    } else if (flag == "--incompressible") {
      opt.reg.incompressible = true;
    } else if (flag == "--precision") {
      const char* v = next();
      if (!v) return std::nullopt;
      if (std::strcmp(v, "double") == 0)
        opt.reg.precision = core::Precision::kDouble;
      else if (std::strcmp(v, "mixed") == 0)
        opt.reg.precision = core::Precision::kMixed;
      else {
        std::fprintf(stderr, "error: --precision must be double or mixed\n");
        return std::nullopt;
      }
    } else if (flag == "--overlap") {
      const char* v = next();
      if (!v) return std::nullopt;
      if (std::strcmp(v, "on") == 0)
        opt.reg.overlap = true;
      else if (std::strcmp(v, "off") == 0)
        opt.reg.overlap = false;
      else {
        std::fprintf(stderr, "error: --overlap must be on or off\n");
        return std::nullopt;
      }
    } else if (flag == "--full-newton") {
      opt.reg.gauss_newton = false;
    } else if (flag == "--trilinear") {
      opt.reg.interp_method = interp::Method::kTrilinear;
    } else if (flag == "--continuation") {
      opt.continuation = true;
    } else if (flag == "--levels") {
      const char* v = next();
      if (!v || (opt.multi.levels = std::atoi(v)) < 1) {
        std::fprintf(stderr, "error: bad --levels\n");
        return std::nullopt;
      }
      opt.multilevel = opt.multi.levels > 1;
    } else if (flag == "--coarsest") {
      const char* v = next();
      if (!v || (opt.multi.coarsest_dim = std::atoll(v)) < 4) {
        std::fprintf(stderr, "error: bad --coarsest\n");
        return std::nullopt;
      }
    } else if (flag == "--two-level") {
      opt.reg.two_level_precond = true;
    } else if (flag == "--precond-iters") {
      const char* v = next();
      if (!v || (opt.reg.precond_inner_iters = std::atoi(v)) < 1) {
        std::fprintf(stderr, "error: bad --precond-iters\n");
        return std::nullopt;
      }
    } else if (flag == "--out") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.out_prefix = v;
    } else if (flag == "--guard") {
      const char* v = next();
      if (!v) return std::nullopt;
      if (std::strcmp(v, "on") == 0)
        opt.reg.guard = true;
      else if (std::strcmp(v, "off") == 0)
        opt.reg.guard = false;
      else {
        std::fprintf(stderr, "error: --guard must be on or off\n");
        return std::nullopt;
      }
    } else if (flag == "--comm-timeout-ms") {
      const char* v = next();
      if (!v || (opt.comm_timeout_ms = std::atof(v)) < 0) {
        std::fprintf(stderr, "error: bad --comm-timeout-ms\n");
        return std::nullopt;
      }
    } else if (flag == "--fault-spec") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.fault_spec = v;
    } else if (flag == "--checkpoint") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.multi.checkpoint_path = v;
    } else if (flag == "--checkpoint-every") {
      const char* v = next();
      if (!v || (opt.multi.checkpoint_every = std::atoi(v)) < 1) {
        std::fprintf(stderr, "error: bad --checkpoint-every\n");
        return std::nullopt;
      }
    } else if (flag == "--resume") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.multi.resume_path = v;
    } else if (flag == "--verbose") {
      opt.reg.verbose = true;
    } else {
      std::fprintf(stderr, "error: unknown flag %s (try --help)\n",
                   flag.c_str());
      return std::nullopt;
    }
  }
  if (opt.workload == "files" &&
      (opt.template_path.empty() || opt.reference_path.empty())) {
    std::fprintf(stderr, "error: --template and --reference go together\n");
    return std::nullopt;
  }
  // Checkpoint/restart runs through the multilevel driver (a single level
  // is both the coarsest and the finest), so the flags imply it.
  if (!opt.multi.checkpoint_path.empty() && opt.multi.checkpoint_every == 0)
    opt.multi.checkpoint_every = 1;
  if (opt.multi.checkpoint_every > 0 && opt.multi.checkpoint_path.empty())
    opt.multi.checkpoint_path = "diffreg.ckpt";
  if (opt.multi.checkpoint_every > 0 || !opt.multi.resume_path.empty()) {
    if (!opt.multilevel) opt.multi.levels = 1;
    opt.multilevel = true;
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = parse(argc, argv);
  if (!parsed) return argc > 1 && std::string(argv[1]) == "--help" ? 0 : 1;
  const CliOptions opt = *parsed;

  int exit_code = 0;
  mpisim::SpmdOptions spmd;
  spmd.fault_spec = opt.fault_spec;
  spmd.comm_timeout_ms = opt.comm_timeout_ms;
  const auto body = [&](mpisim::Communicator& comm) {
    grid::PencilDecomp decomp(comm, opt.dims);
    spectral::SpectralOps ops(decomp);
    const bool root = comm.is_root();

    // Build or load the image pair.
    grid::ScalarField rho_t, rho_r;
    if (opt.workload == "synthetic") {
      rho_t = imaging::synthetic_template(decomp);
      auto v = opt.reg.incompressible
                   ? imaging::synthetic_velocity_divfree(decomp, 0.5)
                   : imaging::synthetic_velocity(decomp, 0.5);
      rho_r = imaging::make_reference(ops, rho_t, v, opt.reg.nt);
    } else if (opt.workload == "brain") {
      rho_r = imaging::brain_phantom(decomp, 1);
      rho_t = imaging::brain_phantom(decomp, 2);
    } else if (opt.workload == "spheres") {
      const real_t c = kTwoPi / 2;
      rho_t = imaging::sphere_phantom(decomp, {c, c, c}, 1.2);
      rho_r = imaging::sphere_phantom(decomp, {c + 0.4, c - 0.3, c}, 1.4);
    } else if (opt.workload == "files") {
      std::vector<real_t> full_t, full_r;
      if (root) {
        full_t = imaging::read_raw_volume(opt.template_path, opt.dims);
        full_r = imaging::read_raw_volume(opt.reference_path, opt.dims);
      }
      rho_t = grid::scatter_from_root(
          decomp, root ? std::span<const real_t>(full_t)
                       : std::span<const real_t>());
      rho_r = grid::scatter_from_root(
          decomp, root ? std::span<const real_t>(full_r)
                       : std::span<const real_t>());
    } else {
      if (root)
        std::fprintf(stderr, "error: unknown workload %s\n",
                     opt.workload.c_str());
      exit_code = 1;
      return;
    }

    // Solve.
    core::RegistrationSolver solver(decomp, opt.reg);
    core::RegistrationResult result;
    if (opt.multilevel) {
      core::MultilevelOptions mopt = opt.multi;
      if (opt.continuation) {
        core::ContinuationOptions copt = opt.cont;
        copt.beta_start = 1e-1;
        copt.beta_target = opt.reg.beta;
        mopt.coarse_beta_cont = copt;
      }
      auto ml = core::run_multilevel_continuation(decomp, opt.reg, rho_t,
                                                  rho_r, mopt);
      if (root && !ml.admissible)
        std::printf("warning: no admissible coarse stage (min det too "
                    "small); finer levels ran at beta %.1e\n",
                    ml.final_beta);
      if (root)
        for (const auto& lev : ml.levels)
          std::printf(
              "level %lldx%lldx%lld: beta %.1e  newton %d  matvecs %d  "
              "rel res %.3f  min det %.3f  %.2f s\n",
              static_cast<long long>(lev.dims[0]),
              static_cast<long long>(lev.dims[1]),
              static_cast<long long>(lev.dims[2]), lev.beta,
              lev.newton_iterations, lev.matvecs, lev.rel_residual,
              lev.min_det, lev.time_seconds);
      solver.mutable_options().beta = ml.final_beta;
      result = std::move(ml.fine);
    } else if (opt.continuation) {
      core::ContinuationOptions copt = opt.cont;
      copt.beta_start = 1e-1;
      copt.beta_target = opt.reg.beta;
      auto cont = core::run_beta_continuation(solver, rho_t, rho_r, copt);
      if (root)
        for (int s = 0; s < cont.stages; ++s)
          std::printf("stage %d: beta %.1e  rel res %.3f  min det %.3f\n", s,
                      cont.stage_betas[s], cont.stage_residuals[s],
                      cont.stage_min_dets[s]);
      if (root && !cont.admissible)
        std::printf("warning: no admissible stage (min det <= %.2f); "
                    "reporting the beta %.1e solve\n",
                    copt.min_det_bound, cont.final_beta);
      // run_beta_continuation restores the solver's options; reflect the
      // beta that produced `best` in the summary below.
      solver.mutable_options().beta = cont.final_beta;
      result = std::move(cont.best);
    } else {
      result = solver.run(rho_t, rho_r);
    }

    if (root) {
      std::printf("grid %lldx%lldx%lld  ranks %d  beta %.1e  %s  %s  %s\n",
                  static_cast<long long>(opt.dims[0]),
                  static_cast<long long>(opt.dims[1]),
                  static_cast<long long>(opt.dims[2]), opt.ranks,
                  solver.options().beta,
                  opt.reg.incompressible ? "incompressible" : "compressible",
                  opt.reg.gauss_newton ? "gauss-newton" : "full-newton",
                  opt.reg.precision == core::Precision::kMixed
                      ? "mixed-precision"
                      : "double-precision");
      std::printf("newton its %d  matvecs %d  converged %s\n",
                  result.newton.iterations, result.newton.total_matvecs,
                  result.newton.converged ? "yes" : "no");
      std::printf("rel residual %.4f   det(grad y) in [%.4f, %.4f]\n",
                  result.rel_residual, result.min_det, result.max_det);
      std::printf("time to solution %.2f s  (fft %.2f+%.2f s, interp "
                  "%.2f+%.2f s comm+exec)\n",
                  result.time_to_solution,
                  result.timings.get(TimeKind::kFftComm),
                  result.timings.get(TimeKind::kFftExec),
                  result.timings.get(TimeKind::kInterpComm),
                  result.timings.get(TimeKind::kInterpExec));
    }

    // Optional outputs.
    if (!opt.out_prefix.empty()) {
      grid::ScalarField deformed, det;
      solver.deform_template(rho_t, result.velocity, deformed);
      solver.jacobian_field(result.velocity, det);
      const index_t n = decomp.local_real_size();
      grid::ScalarField residual(n);
      for (index_t i = 0; i < n; ++i)
        residual[i] = std::abs(deformed[i] - rho_r[i]);

      auto dump = [&](const grid::ScalarField& f, const char* name,
                      real_t lo, real_t hi) {
        auto full = grid::gather_to_root(decomp, f);
        if (!root) return;
        const std::string base = opt.out_prefix + "_" + name;
        imaging::write_raw_volume(base, opt.dims, full);
        imaging::write_pgm_slice(base + ".pgm", opt.dims, full,
                                 opt.dims[0] / 2, lo, hi);
      };
      dump(deformed, "deformed", 0, 1);
      dump(residual, "residual", 0, 1);
      dump(det, "det", 0, 2);
      if (root)
        std::printf("wrote %s_{deformed,residual,det}.{raw,mhd,pgm}\n",
                    opt.out_prefix.c_str());
    }
  };
  try {
    mpisim::run_spmd(opt.ranks, body, spmd);
  } catch (const std::exception& e) {
    // Structured failure path: watchdog timeouts, integrity violations,
    // injected crashes and checkpoint errors all land here with their
    // diagnosis in what() instead of hanging the run.
    std::fprintf(stderr, "fatal: %s\n", e.what());
    return 1;
  }
  return exit_code;
}
