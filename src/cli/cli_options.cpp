#include "cli/cli_options.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <vector>

#include "grid/field_io.hpp"
#include "imaging/io.hpp"
#include "imaging/synthetic.hpp"

namespace diffreg::cli {

void print_usage() {
  std::printf(
      "diffreg — distributed-memory large deformation diffeomorphic 3D "
      "image registration (SC16 reproduction)\n\n"
      "usage: diffreg [options]\n"
      "  --grid N1,N2,N3      grid size (default 64,64,64)\n"
      "  --ranks P            simulated MPI ranks (default 2)\n"
      "  --workload W         synthetic | brain | spheres (default synthetic)\n"
      "  --template PATH      raw volume (with --reference; overrides workload)\n"
      "  --reference PATH     raw volume\n"
      "  --amplitude A        synthetic workload displacement amplitude\n"
      "                       (default 0.5); vary it per job line to build\n"
      "                       distinct pairs in a batch\n"
      "  --beta B             regularization weight (default 1e-2)\n"
      "  --reg h1|h2          regularization seminorm (default h2)\n"
      "  --nt N               semi-Lagrangian time steps (default 4)\n"
      "  --gtol T             relative gradient tolerance (default 1e-2)\n"
      "  --max-newton N       Newton iteration cap (default 50)\n"
      "  --incompressible     enforce div v = 0 (volume preserving map)\n"
      "  --precision P        double | mixed (default double); mixed ships\n"
      "                       every hot exchange as fp32 and runs the inner\n"
      "                       Krylov solve in single precision (outer Newton\n"
      "                       stays double — see README precision policy)\n"
      "  --overlap M          on | off (default off); on posts the hot\n"
      "                       exchanges nonblocking and runs independent\n"
      "                       local work under their flight (bitwise\n"
      "                       identical results and message schedule)\n"
      "  --full-newton        keep the full-Newton Hessian terms\n"
      "  --trilinear          trilinear instead of tricubic interpolation\n"
      "  --continuation       run beta continuation (start 1e-1 -> beta)\n"
      "  --levels N           N-level coarse-to-fine grid pyramid "
      "(default 1 = single level);\n"
      "                       with --continuation the coarsest level runs "
      "the beta schedule\n"
      "  --coarsest D         pyramid floor: no axis below D points "
      "(default 8)\n"
      "  --two-level          coarse-grid Hessian preconditioner for the "
      "PCG solves\n"
      "  --precond-iters N    inner CG sweeps of the coarse Hessian solve "
      "(default 5)\n"
      "  --out PREFIX         write deformed/residual/det volumes + slices\n"
      "  --guard M            on | off (default off); collective finite\n"
      "                       sweeps per Newton iterate plus line-search,\n"
      "                       PCG-breakdown and mixed-precision recovery\n"
      "  --comm-timeout-ms T  comm watchdog: blocking receives/barriers\n"
      "                       raise CommTimeoutError with a per-rank\n"
      "                       diagnosis after T ms (default 0 = off)\n"
      "  --fault-spec S       fault injection for robustness testing, e.g.\n"
      "                       \"seed=7,drop=0.01,delay_ms=5\" (see\n"
      "                       docs/FAULT_MODEL.md for the full grammar)\n"
      "  --verify-schedule M  on | off (default off); on cross-checks the\n"
      "                       collective schedule across ranks at every\n"
      "                       barrier/exchange and raises a structured\n"
      "                       ScheduleDivergenceError naming the first\n"
      "                       mismatching op instead of hanging (results\n"
      "                       stay bitwise identical — docs/ANALYSIS.md)\n"
      "  --checkpoint PATH    checkpoint file (default diffreg.ckpt)\n"
      "  --checkpoint-every N write a checkpoint every N accepted Newton\n"
      "                       iterates and at every level end\n"
      "  --resume PATH        warm-restart a killed run from a checkpoint\n"
      "  --batch FILE         registration service mode: run every job line\n"
      "                       in FILE through one shared plan registry\n"
      "                       (docs/SERVICE.md). A job line holds the same\n"
      "                       flags as the command line and inherits every\n"
      "                       flag it does not override; blank lines and\n"
      "                       # comments are skipped\n"
      "  --shards N           split the ranks into N equal shard\n"
      "                       communicators for --batch (default 0 =\n"
      "                       automatic; 1 = bitwise-reference mode)\n"
      "  --priority N         job-line flag: higher priority runs earlier\n"
      "  --deadline S         job-line flag: deadline in seconds on the\n"
      "                       batch clock; under --batch a late job is\n"
      "                       cancelled between Newton iterates (or, with\n"
      "                       --degrade on, re-admitted once with a cheaper\n"
      "                       configuration)\n"
      "  --retry-budget N     extra attempts a faulted batch job gets\n"
      "                       before it is marked poisoned (default 2)\n"
      "  --backoff-ms T       base of the deterministic exponential retry\n"
      "                       backoff, T * 2^(k-1) ms before retry k on the\n"
      "                       batch clock (default 0 = retry immediately)\n"
      "  --degrade M          on | off (default off); re-admit a job that\n"
      "                       missed its deadline ONCE with halved\n"
      "                       iteration caps (outcome 'degraded')\n"
      "  --batch-manifest P   persist per-job outcomes to manifest P and\n"
      "                       resume from it: completed jobs are skipped,\n"
      "                       in-flight jobs warm-start from their solver\n"
      "                       checkpoints (docs/FAULT_MODEL.md)\n"
      "  --verbose            per-iteration Newton log\n"
      "  --help               this message\n");
}

namespace {

bool parse_int3(const std::string& arg, Int3& out) {
  long long a = 0, b = 0, c = 0;
  if (std::sscanf(arg.c_str(), "%lld,%lld,%lld", &a, &b, &c) != 3)
    return false;
  if (a < 4 || b < 4 || c < 4) return false;
  out = {a, b, c};
  return true;
}

// Flags that configure the run as a whole (rank count, batch layout, the
// fault-tolerance runtime, the multilevel/continuation drivers and output
// dumping) make no sense inside a --batch job line: a job is one
// single-level solve on an already-chosen shard.
bool global_only_flag(const std::string& flag) {
  static const char* const kGlobal[] = {
      "--ranks",   "--batch",        "--shards",       "--fault-spec",
      "--comm-timeout-ms", "--verify-schedule", "--levels", "--coarsest",
      "--continuation", "--resume",   "--out",          "--help",
      "-h",        "--retry-budget", "--backoff-ms",   "--degrade",
      "--batch-manifest"};
  for (const char* g : kGlobal)
    if (flag == g) return true;
  return false;
}

/// Shared grammar for command lines and job-spec lines. Fills `opt`
/// in place (the caller seeds it with defaults) and reports the first
/// problem through `error`.
bool parse_tokens(const std::vector<std::string>& args, bool job_line,
                  CliOptions& opt, std::string& error) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& flag = args[i];
    auto next = [&]() -> const std::string* {
      return (i + 1 < args.size()) ? &args[++i] : nullptr;
    };
    auto missing = [&]() {
      error = "missing value for " + flag;
      return false;
    };
    if (job_line && global_only_flag(flag)) {
      error = "flag " + flag + " is global-only and not allowed in a job line";
      return false;
    }
    if (flag == "--help" || flag == "-h") {
      opt.help = true;
      return true;
    } else if (flag == "--grid") {
      const auto* v = next();
      if (!v) return missing();
      if (!parse_int3(*v, opt.dims)) {
        error = "bad --grid " + *v + " (want N1,N2,N3 with N >= 4)";
        return false;
      }
    } else if (flag == "--ranks") {
      const auto* v = next();
      if (!v) return missing();
      if ((opt.ranks = std::atoi(v->c_str())) < 1) {
        error = "bad --ranks " + *v;
        return false;
      }
    } else if (flag == "--workload") {
      const auto* v = next();
      if (!v) return missing();
      opt.workload = *v;
    } else if (flag == "--template") {
      const auto* v = next();
      if (!v) return missing();
      opt.template_path = *v;
      opt.workload = "files";
    } else if (flag == "--reference") {
      const auto* v = next();
      if (!v) return missing();
      opt.reference_path = *v;
      opt.workload = "files";
    } else if (flag == "--amplitude") {
      const auto* v = next();
      if (!v) return missing();
      opt.synthetic_amplitude = std::atof(v->c_str());
    } else if (flag == "--beta") {
      const auto* v = next();
      if (!v) return missing();
      opt.reg.beta = std::atof(v->c_str());
    } else if (flag == "--reg") {
      const auto* v = next();
      if (!v) return missing();
      if (*v == "h1")
        opt.reg.reg_type = core::RegType::kH1Seminorm;
      else if (*v == "h2")
        opt.reg.reg_type = core::RegType::kH2Seminorm;
      else {
        error = "--reg must be h1 or h2";
        return false;
      }
    } else if (flag == "--nt") {
      const auto* v = next();
      if (!v) return missing();
      if ((opt.reg.nt = std::atoi(v->c_str())) < 1) {
        error = "bad --nt " + *v;
        return false;
      }
    } else if (flag == "--gtol") {
      const auto* v = next();
      if (!v) return missing();
      opt.reg.gtol = std::atof(v->c_str());
    } else if (flag == "--max-newton") {
      const auto* v = next();
      if (!v) return missing();
      opt.reg.max_newton_iters = std::atoi(v->c_str());
    } else if (flag == "--incompressible") {
      opt.reg.incompressible = true;
    } else if (flag == "--precision") {
      const auto* v = next();
      if (!v) return missing();
      if (*v == "double")
        opt.reg.precision = core::Precision::kDouble;
      else if (*v == "mixed")
        opt.reg.precision = core::Precision::kMixed;
      else {
        error = "--precision must be double or mixed";
        return false;
      }
    } else if (flag == "--overlap") {
      const auto* v = next();
      if (!v) return missing();
      if (*v == "on")
        opt.reg.overlap = true;
      else if (*v == "off")
        opt.reg.overlap = false;
      else {
        error = "--overlap must be on or off";
        return false;
      }
    } else if (flag == "--full-newton") {
      opt.reg.gauss_newton = false;
    } else if (flag == "--trilinear") {
      opt.reg.interp_method = interp::Method::kTrilinear;
    } else if (flag == "--continuation") {
      opt.continuation = true;
    } else if (flag == "--levels") {
      const auto* v = next();
      if (!v) return missing();
      if ((opt.multi.levels = std::atoi(v->c_str())) < 1) {
        error = "bad --levels " + *v;
        return false;
      }
      opt.multilevel = opt.multi.levels > 1;
    } else if (flag == "--coarsest") {
      const auto* v = next();
      if (!v) return missing();
      if ((opt.multi.coarsest_dim = std::atoll(v->c_str())) < 4) {
        error = "bad --coarsest " + *v;
        return false;
      }
    } else if (flag == "--two-level") {
      opt.reg.two_level_precond = true;
    } else if (flag == "--precond-iters") {
      const auto* v = next();
      if (!v) return missing();
      if ((opt.reg.precond_inner_iters = std::atoi(v->c_str())) < 1) {
        error = "bad --precond-iters " + *v;
        return false;
      }
    } else if (flag == "--out") {
      const auto* v = next();
      if (!v) return missing();
      opt.out_prefix = *v;
    } else if (flag == "--guard") {
      const auto* v = next();
      if (!v) return missing();
      if (*v == "on")
        opt.reg.guard = true;
      else if (*v == "off")
        opt.reg.guard = false;
      else {
        error = "--guard must be on or off";
        return false;
      }
    } else if (flag == "--comm-timeout-ms") {
      const auto* v = next();
      if (!v) return missing();
      if ((opt.comm_timeout_ms = std::atof(v->c_str())) < 0) {
        error = "bad --comm-timeout-ms " + *v;
        return false;
      }
    } else if (flag == "--fault-spec") {
      const auto* v = next();
      if (!v) return missing();
      opt.fault_spec = *v;
    } else if (flag == "--verify-schedule") {
      const auto* v = next();
      if (!v) return missing();
      if (*v == "on")
        opt.verify_schedule = true;
      else if (*v == "off")
        opt.verify_schedule = false;
      else {
        error = "--verify-schedule must be on or off";
        return false;
      }
    } else if (flag == "--checkpoint") {
      const auto* v = next();
      if (!v) return missing();
      opt.multi.checkpoint_path = *v;
    } else if (flag == "--checkpoint-every") {
      const auto* v = next();
      if (!v) return missing();
      if ((opt.multi.checkpoint_every = std::atoi(v->c_str())) < 1) {
        error = "bad --checkpoint-every " + *v;
        return false;
      }
    } else if (flag == "--resume") {
      const auto* v = next();
      if (!v) return missing();
      opt.multi.resume_path = *v;
    } else if (flag == "--batch") {
      const auto* v = next();
      if (!v) return missing();
      opt.batch_file = *v;
    } else if (flag == "--shards") {
      const auto* v = next();
      if (!v) return missing();
      if ((opt.shards = std::atoi(v->c_str())) < 0) {
        error = "bad --shards " + *v;
        return false;
      }
    } else if (flag == "--priority") {
      const auto* v = next();
      if (!v) return missing();
      opt.priority = std::atoi(v->c_str());
    } else if (flag == "--deadline") {
      const auto* v = next();
      if (!v) return missing();
      if ((opt.deadline = std::atof(v->c_str())) < 0) {
        error = "bad --deadline " + *v;
        return false;
      }
    } else if (flag == "--retry-budget") {
      const auto* v = next();
      if (!v) return missing();
      if ((opt.retry_budget = std::atoi(v->c_str())) < 0) {
        error = "bad --retry-budget " + *v;
        return false;
      }
    } else if (flag == "--backoff-ms") {
      const auto* v = next();
      if (!v) return missing();
      if ((opt.backoff_ms = std::atof(v->c_str())) < 0) {
        error = "bad --backoff-ms " + *v;
        return false;
      }
    } else if (flag == "--degrade") {
      const auto* v = next();
      if (!v) return missing();
      if (*v == "on")
        opt.degrade = true;
      else if (*v == "off")
        opt.degrade = false;
      else {
        error = "--degrade must be on or off";
        return false;
      }
    } else if (flag == "--batch-manifest") {
      const auto* v = next();
      if (!v) return missing();
      opt.batch_manifest = *v;
    } else if (flag == "--verbose") {
      opt.reg.verbose = true;
    } else {
      error = "unknown flag " + flag + " (try --help)";
      return false;
    }
  }
  if (opt.workload == "files" &&
      (opt.template_path.empty() || opt.reference_path.empty())) {
    error = "--template and --reference go together";
    return false;
  }
  // Checkpoint/restart of a standalone run goes through the multilevel
  // driver (a single level is both the coarsest and the finest), so the
  // flags imply it. A batch job checkpoints through its SolveRequest
  // instead, so job lines skip the implication.
  if (!job_line) {
    if (!opt.multi.checkpoint_path.empty() && opt.multi.checkpoint_every == 0)
      opt.multi.checkpoint_every = 1;
    if (opt.multi.checkpoint_every > 0 && opt.multi.checkpoint_path.empty())
      opt.multi.checkpoint_path = "diffreg.ckpt";
    if (opt.multi.checkpoint_every > 0 || !opt.multi.resume_path.empty()) {
      if (!opt.multilevel) opt.multi.levels = 1;
      opt.multilevel = true;
    }
  }
  return true;
}

}  // namespace

std::optional<CliOptions> parse_options(int argc, char** argv,
                                        std::string& error) {
  error.clear();
  std::vector<std::string> args(argv + 1, argv + argc);
  CliOptions opt;
  if (!parse_tokens(args, /*job_line=*/false, opt, error)) return std::nullopt;
  return opt;
}

std::optional<CliOptions> parse_options(const std::string& job_spec,
                                        const CliOptions& defaults,
                                        std::string& error) {
  error.clear();
  std::vector<std::string> args;
  std::istringstream in(job_spec);
  for (std::string tok; in >> tok;) args.push_back(std::move(tok));
  CliOptions opt = defaults;
  if (!parse_tokens(args, /*job_line=*/true, opt, error)) return std::nullopt;
  return opt;
}

bool build_workload(grid::PencilDecomp& decomp, spectral::SpectralOps& ops,
                    const CliOptions& opt, grid::ScalarField& rho_t,
                    grid::ScalarField& rho_r, std::string& error) {
  const bool root = decomp.comm().is_root();
  if (opt.workload == "synthetic") {
    rho_t = imaging::synthetic_template(decomp);
    auto v = opt.reg.incompressible
                 ? imaging::synthetic_velocity_divfree(decomp,
                                                       opt.synthetic_amplitude)
                 : imaging::synthetic_velocity(decomp,
                                               opt.synthetic_amplitude);
    rho_r = imaging::make_reference(ops, rho_t, v, opt.reg.nt);
  } else if (opt.workload == "brain") {
    rho_r = imaging::brain_phantom(decomp, 1);
    rho_t = imaging::brain_phantom(decomp, 2);
  } else if (opt.workload == "spheres") {
    const real_t c = kTwoPi / 2;
    rho_t = imaging::sphere_phantom(decomp, {c, c, c}, 1.2);
    rho_r = imaging::sphere_phantom(decomp, {c + 0.4, c - 0.3, c}, 1.4);
  } else if (opt.workload == "files") {
    std::vector<real_t> full_t, full_r;
    if (root) {
      full_t = imaging::read_raw_volume(opt.template_path, opt.dims);
      full_r = imaging::read_raw_volume(opt.reference_path, opt.dims);
    }
    rho_t = grid::scatter_from_root(decomp, root
                                                ? std::span<const real_t>(full_t)
                                                : std::span<const real_t>());
    rho_r = grid::scatter_from_root(decomp, root
                                                ? std::span<const real_t>(full_r)
                                                : std::span<const real_t>());
  } else {
    error = "unknown workload " + opt.workload;
    return false;
  }
  return true;
}

}  // namespace diffreg::cli
