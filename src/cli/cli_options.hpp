// Reusable CLI option parsing and workload construction, shared by the
// diffreg driver (src/cli/main.cpp) and the --batch job-file reader: one
// grammar for command lines AND job-spec lines, so every solver flag a user
// can type is also a per-job override in jobs.txt (docs/SERVICE.md).
#pragma once

#include <optional>
#include <string>

#include "core/continuation.hpp"
#include "core/options.hpp"
#include "spectral/operators.hpp"

namespace diffreg::cli {

struct CliOptions {
  Int3 dims{64, 64, 64};
  int ranks = 2;
  std::string workload = "synthetic";  // synthetic | brain | spheres | files
  std::string template_path, reference_path;
  std::string out_prefix;
  bool continuation = false;
  core::RegistrationOptions reg;
  core::ContinuationOptions cont;
  core::MultilevelOptions multi;
  bool multilevel = false;  // set by --levels N with N > 1
  /// Displacement amplitude of the synthetic workload's ground-truth
  /// velocity (--amplitude; job lines vary it to make distinct pairs).
  double synthetic_amplitude = 0.5;
  // Fault-tolerant runtime (docs/FAULT_MODEL.md).
  std::string fault_spec;       // --fault-spec, forwarded to run_spmd
  double comm_timeout_ms = 0;   // --comm-timeout-ms, 0 = watchdog off
  // Collective-schedule verifier (docs/ANALYSIS.md).
  bool verify_schedule = false;  // --verify-schedule, forwarded to run_spmd
  // Batch service mode (docs/SERVICE.md).
  std::string batch_file;  // --batch jobs.txt; empty = single-job mode
  int shards = 0;          // --shards N; 0 = automatic
  int priority = 0;        // job-line --priority (higher runs earlier)
  double deadline = 0;     // job-line --deadline seconds (0 = none)
  // Batch fault isolation (docs/FAULT_MODEL.md). The CLI enforces
  // deadlines under --batch (the library default keeps them advisory).
  int retry_budget = 2;        // --retry-budget N extra attempts per job
  double backoff_ms = 0;       // --backoff-ms T base of exponential backoff
  bool degrade = false;        // --degrade on: one cheaper re-admission
  std::string batch_manifest;  // --batch-manifest PATH: checkpoint/resume
  bool help = false;       // --help seen: print usage, exit 0
};

void print_usage();

/// Parses a full command line. On error returns nullopt with a one-line
/// message in `error` (never prints). `--help` returns an options object
/// with `help` set.
std::optional<CliOptions> parse_options(int argc, char** argv,
                                        std::string& error);

/// Parses one whitespace-tokenized job-spec line from a --batch file, on
/// top of `defaults` (the command-line options): a job inherits every flag
/// it does not override. Global/batch-only flags (--ranks, --batch,
/// --shards, --fault-spec, --comm-timeout-ms, --help) are rejected in job
/// lines.
std::optional<CliOptions> parse_options(const std::string& job_spec,
                                        const CliOptions& defaults,
                                        std::string& error);

/// Builds or loads the image pair of `opt` on `decomp` (collective over
/// the decomposition's communicator — under --batch that is the shard the
/// job landed on). `ops` must live on `decomp`. Returns false with `error`
/// set for an unknown workload.
bool build_workload(grid::PencilDecomp& decomp, spectral::SpectralOps& ops,
                    const CliOptions& opt, grid::ScalarField& rho_t,
                    grid::ScalarField& rho_r, std::string& error);

}  // namespace diffreg::cli
