// Cross-job fused state transport (declared in semilag/transport.hpp; the
// batch service's per-step fusion — docs/SERVICE.md).
#include <cassert>
#include <stdexcept>
#include <vector>

#include "interp/fused_exchange.hpp"
#include "semilag/transport.hpp"

namespace diffreg::semilag {

void solve_states_fused(std::span<Transport* const> transports,
                        std::span<const grid::ScalarField* const> rho0,
                        interp::FusedInterp& fused) {
  const int nj = static_cast<int>(transports.size());
  assert(nj >= 1 && rho0.size() == transports.size());
  Transport& t0 = *transports[0];
  const int nt = t0.config_.nt;

  for (int i = 0; i < nj; ++i) {
    Transport& t = *transports[i];
    if (!t.plans_built_)
      throw std::logic_error(
          "solve_states_fused: set_velocity before solve_states_fused");
    if (t.decomp_ != t0.decomp_ || t.config_.nt != nt ||
        t.config_.method != t0.config_.method)
      throw std::invalid_argument(
          "solve_states_fused: transports must share decomp and config");
    // Exactly what solve_state does before its step loop.
    t.rho_hist_[0] = *rho0[i];
    for (auto& g : t.grad_rho_hist_) g.reset();
  }

  // Each step of the state equation is a pure interpolation (advect_step
  // with no source terms writes the interpolated values straight to the
  // next slice), so the J jobs' steps fuse into one FusedInterp round:
  // one ghost exchange + one value alltoallv per step instead of J each.
  // Values are bitwise identical to per-transport solve_state — the fused
  // path changes message grouping only.
  std::vector<interp::InterpPlan*> plans(nj);
  std::vector<const real_t*> fields(nj);
  std::vector<real_t*> outs(nj);
  for (int i = 0; i < nj; ++i) plans[i] = &transports[i]->plan_fwd_;
  for (int j = 0; j < nt; ++j) {
    for (int i = 0; i < nj; ++i) {
      fields[i] = transports[i]->rho_hist_[j].data();
      outs[i] = transports[i]->rho_hist_[j + 1].data();
    }
    fused.interpolate_many(t0.gx_, plans,
                           std::span<const real_t* const>(fields),
                           std::span<real_t* const>(outs), t0.config_.method);
  }
}

}  // namespace diffreg::semilag
