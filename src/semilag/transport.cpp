#include "semilag/transport.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace diffreg::semilag {

using interp::InterpPlan;

namespace {

/// Bitwise equality of two fields (plan-invalidation check: identical bits
/// guarantee identical departure points, so the cached plans stay valid).
bool same_bits(const ScalarField& a, const ScalarField& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(real_t)) == 0);
}

}  // namespace

Transport::Transport(spectral::SpectralOps& ops, const TransportConfig& config)
    : ops_(&ops),
      decomp_(&ops.decomp()),
      config_(config),
      gx_(*decomp_, interp::kGhostWidth, TimeKind::kInterpComm, config.wire,
          config.overlap),
      plan_fwd_(*decomp_, config.wire, config.overlap),
      plan_bwd_(*decomp_, config.wire, config.overlap),
      star_plan_(*decomp_, config.wire, config.overlap) {
  if (config_.nt < 1)
    throw std::invalid_argument("Transport: nt must be >= 1");
  const index_t n = decomp_->local_real_size();
  nu_at_x_.resize(n);
  f_at_x_.resize(n);
  f0_grid_.resize(n);
  f1_grid_.resize(n);
  rho_hist_.assign(config_.nt + 1, ScalarField(n, 0));
  grad_rho_hist_.assign(config_.nt + 1, std::nullopt);
}

void Transport::compute_departure_points(int sign) {
  const Int3 dims = decomp_->dims();
  const Int3 ld = decomp_->local_real_dims();
  const real_t h1 = kTwoPi / static_cast<real_t>(dims[0]);
  const real_t h2 = kTwoPi / static_cast<real_t>(dims[1]);
  const real_t h3 = kTwoPi / static_cast<real_t>(dims[2]);
  const index_t lo1 = decomp_->range1().begin;
  const index_t lo2 = decomp_->range2().begin;
  const real_t s = static_cast<real_t>(sign) * dt();

  points_.resize(decomp_->local_real_size());
  index_t idx = 0;
  for (index_t i1 = 0; i1 < ld[0]; ++i1) {
    const real_t x1 = static_cast<real_t>(lo1 + i1) * h1;
    for (index_t i2 = 0; i2 < ld[1]; ++i2) {
      const real_t x2 = static_cast<real_t>(lo2 + i2) * h2;
      for (index_t i3 = 0; i3 < ld[2]; ++i3, ++idx) {
        const real_t x3 = static_cast<real_t>(i3) * h3;
        points_[idx] = Vec3{x1 - s * v_[0][idx], x2 - s * v_[1][idx],
                            x3 - s * v_[2][idx]};
      }
    }
  }

  // RK2 correction (eq. 6): X = x - s/2 (v(x) + v(X*)). The predictor plan
  // is a persistent member so its buffers are reused across rebuilds.
  star_plan_.build(points_);
  star_plan_.interpolate_vec(gx_, v_, v_star_, config_.method);
  idx = 0;
  for (index_t i1 = 0; i1 < ld[0]; ++i1) {
    const real_t x1 = static_cast<real_t>(lo1 + i1) * h1;
    for (index_t i2 = 0; i2 < ld[1]; ++i2) {
      const real_t x2 = static_cast<real_t>(lo2 + i2) * h2;
      for (index_t i3 = 0; i3 < ld[2]; ++i3, ++idx) {
        const real_t x3 = static_cast<real_t>(i3) * h3;
        const real_t half = real_t(0.5) * s;
        points_[idx] =
            Vec3{x1 - half * (v_[0][idx] + v_star_[idx][0]),
                 x2 - half * (v_[1][idx] + v_star_[idx][1]),
                 x3 - half * (v_[2][idx] + v_star_[idx][2])};
      }
    }
  }
}

void Transport::set_velocity(const VectorField& v) {
  assert(v.local_size() == decomp_->local_real_size());
  // Plan cache: identical velocity bits => identical departure points =>
  // the cached plans (and v/div v at the departure points) stay valid.
  if (plans_built_ && same_bits(v_[0], v[0]) && same_bits(v_[1], v[1]) &&
      same_bits(v_[2], v[2]))
    return;
  v_ = v;
  for (auto& g : grad_rho_hist_) g.reset();
  lambda_hist_.clear();
  rho_tilde_hist_.clear();
  grad_rho_tilde_hist_.clear();

  compute_departure_points(+1);
  plan_fwd_.build(points_);
  plan_fwd_.interpolate_vec(gx_, v_, v_at_fwd_, config_.method);

  compute_departure_points(-1);
  plan_bwd_.build(points_);

  if (!config_.incompressible) {
    ops_->divergence(v_, div_v_);
    div_v_at_bwd_.resize(decomp_->local_real_size());
    plan_bwd_.interpolate(gx_, div_v_, div_v_at_bwd_, config_.method);
  } else {
    div_v_.clear();
    div_v_at_bwd_.clear();
  }
  plans_built_ = true;
  ++plan_builds_;
}

void Transport::advect_step(InterpPlan& plan, const ScalarField& nu,
                            const ScalarField* f0_at_points,
                            const ScalarField* f1_grid, ScalarField& out) {
  plan.interpolate(gx_, nu, nu_at_x_, config_.method);
  const index_t n = decomp_->local_real_size();
  const real_t half_dt = real_t(0.5) * dt();
  if (f0_at_points == nullptr && f1_grid == nullptr) {
    out = nu_at_x_;
    return;
  }
  assert(f0_at_points != nullptr && f1_grid != nullptr);
  if (out.size() != static_cast<size_t>(n)) out.resize(n);
  for (index_t i = 0; i < n; ++i)
    out[i] = nu_at_x_[i] + half_dt * ((*f0_at_points)[i] + (*f1_grid)[i]);
}

void Transport::solve_state(const ScalarField& rho0) {
  if (!plans_built_)
    throw std::logic_error("Transport: set_velocity before solve_state");
  rho_hist_[0] = rho0;
  for (auto& g : grad_rho_hist_) g.reset();
  for (int j = 0; j < config_.nt; ++j)
    advect_step(plan_fwd_, rho_hist_[j], nullptr, nullptr, rho_hist_[j + 1]);
}

const VectorField& Transport::state_gradient(int j) {
  auto& slot = grad_rho_hist_[j];
  if (!slot) {
    VectorField g(decomp_->local_real_size());
    ops_->gradient(rho_hist_[j], g);
    slot = std::move(g);
  }
  return *slot;
}

void Transport::solve_adjoint(const ScalarField& lambda1, VectorField& b,
                              bool store_lambda) {
  if (!plans_built_)
    throw std::logic_error("Transport: set_velocity before solve_adjoint");
  const index_t n = decomp_->local_real_size();
  const int nt = config_.nt;
  if (store_lambda) lambda_hist_.assign(nt + 1, ScalarField(n, 0));

  ScalarField cur = lambda1;
  ScalarField next(n);
  grid::resize_zero(b, n);

  auto accumulate = [&](int j, const ScalarField& lam) {
    const real_t w = dt() * ((j == 0 || j == nt) ? real_t(0.5) : real_t(1));
    const VectorField& grad_rho = state_gradient(j);
    for (int d = 0; d < 3; ++d)
      for (index_t i = 0; i < n; ++i) b[d][i] += w * lam[i] * grad_rho[d][i];
  };

  if (store_lambda) lambda_hist_[nt] = cur;
  accumulate(nt, cur);
  for (int j = nt; j >= 1; --j) {
    if (config_.incompressible) {
      advect_step(plan_bwd_, cur, nullptr, nullptr, next);
    } else {
      // f = lam * div v is linear in lam: f0(X) = lam(X) div_v(X) comes from
      // the cached div v at the departure points, the corrector uses the
      // predictor value (eq. 7).
      plan_bwd_.interpolate(gx_, cur, nu_at_x_, config_.method);
      const real_t step = dt();
      for (index_t i = 0; i < n; ++i) {
        const real_t f0 = nu_at_x_[i] * div_v_at_bwd_[i];
        const real_t predictor = nu_at_x_[i] + step * f0;
        const real_t f1 = predictor * div_v_[i];
        next[i] = nu_at_x_[i] + real_t(0.5) * step * (f0 + f1);
      }
    }
    std::swap(cur, next);
    if (store_lambda) lambda_hist_[j - 1] = cur;
    accumulate(j - 1, cur);
  }
}

void Transport::solve_incremental_state(const VectorField& vtilde,
                                        ScalarField& rho_tilde1,
                                        bool store_hist) {
  if (!plans_built_)
    throw std::logic_error(
        "Transport: set_velocity/solve_state before incremental state");
  const index_t n = decomp_->local_real_size();
  const int nt = config_.nt;
  if (store_hist) {
    rho_tilde_hist_.assign(nt + 1, ScalarField(n, 0));
    grad_rho_tilde_hist_.assign(nt + 1, std::nullopt);
  }

  auto source = [&](int j, ScalarField& f) {
    const VectorField& grad_rho = state_gradient(j);
    for (index_t i = 0; i < n; ++i)
      f[i] = -(vtilde[0][i] * grad_rho[0][i] + vtilde[1][i] * grad_rho[1][i] +
               vtilde[2][i] * grad_rho[2][i]);
  };

  ScalarField cur(n, 0);  // rho_tilde(0) = 0
  ScalarField next(n);
  source(0, f0_grid_);
  for (int j = 0; j < nt; ++j) {
    source(j + 1, f1_grid_);
    if (j == 0) {
      // rho_tilde(0) = 0, so the advected term vanishes.
      plan_fwd_.interpolate(gx_, f0_grid_, f_at_x_, config_.method);
      const real_t half_dt = real_t(0.5) * dt();
      for (index_t i = 0; i < n; ++i)
        next[i] = half_dt * (f_at_x_[i] + f1_grid_[i]);
    } else {
      // Advected quantity and source share one batched exchange.
      const real_t* fields[2] = {cur.data(), f0_grid_.data()};
      real_t* outs[2] = {nu_at_x_.data(), f_at_x_.data()};
      plan_fwd_.interpolate_many(gx_,
                                 std::span<const real_t* const>(fields, 2),
                                 std::span<real_t* const>(outs, 2),
                                 config_.method);
      const real_t half_dt = real_t(0.5) * dt();
      for (index_t i = 0; i < n; ++i)
        next[i] = nu_at_x_[i] + half_dt * (f_at_x_[i] + f1_grid_[i]);
    }
    std::swap(cur, next);
    std::swap(f0_grid_, f1_grid_);
    if (store_hist) rho_tilde_hist_[j + 1] = cur;
  }
  rho_tilde1 = cur;
}

void Transport::solve_incremental_adjoint_gn(const ScalarField& lambda_tilde1,
                                             VectorField& b_tilde) {
  // Same operator as the adjoint solve, applied to lambda_tilde.
  solve_adjoint(lambda_tilde1, b_tilde, /*store_lambda=*/false);
}

void Transport::solve_incremental_adjoint_full(
    const ScalarField& lambda_tilde1, const VectorField& vtilde,
    VectorField& b_tilde) {
  if (lambda_hist_.empty() || rho_tilde_hist_.empty())
    throw std::logic_error(
        "Transport: full-Newton matvec needs stored lambda and rho_tilde "
        "histories");
  const index_t n = decomp_->local_real_size();
  const int nt = config_.nt;

  // div(lam_j vtilde) on the grid, per time level.
  VectorField lam_vt(n);
  auto extra_source = [&](int j, ScalarField& s) {
    const ScalarField& lam = lambda_hist_[j];
    for (int d = 0; d < 3; ++d)
      for (index_t i = 0; i < n; ++i) lam_vt[d][i] = lam[i] * vtilde[d][i];
    ops_->divergence(lam_vt, s);
  };

  auto grad_rho_tilde = [&](int j) -> const VectorField& {
    auto& slot = grad_rho_tilde_hist_[j];
    if (!slot) {
      VectorField g(n);
      ops_->gradient(rho_tilde_hist_[j], g);
      slot = std::move(g);
    }
    return *slot;
  };

  ScalarField cur = lambda_tilde1;
  ScalarField next(n);
  grid::resize_zero(b_tilde, n);

  auto accumulate = [&](int j, const ScalarField& lam_tilde) {
    const real_t w = dt() * ((j == 0 || j == nt) ? real_t(0.5) : real_t(1));
    const VectorField& grad_rho = state_gradient(j);
    const VectorField& grad_rto = grad_rho_tilde(j);
    const ScalarField& lam = lambda_hist_[j];
    for (int d = 0; d < 3; ++d)
      for (index_t i = 0; i < n; ++i)
        b_tilde[d][i] +=
            w * (lam_tilde[i] * grad_rho[d][i] + lam[i] * grad_rto[d][i]);
  };

  accumulate(nt, cur);
  extra_source(nt, f0_grid_);
  for (int j = nt; j >= 1; --j) {
    // f = lam_tilde div v + div(lam vtilde); the first part is linear in
    // lam_tilde, the second is an explicit per-level field. Both fields
    // ride the same batched exchange.
    const real_t* fields[2] = {cur.data(), f0_grid_.data()};
    real_t* outs[2] = {nu_at_x_.data(), f_at_x_.data()};
    plan_bwd_.interpolate_many(gx_,
                               std::span<const real_t* const>(fields, 2),
                               std::span<real_t* const>(outs, 2),
                               config_.method);
    extra_source(j - 1, f1_grid_);
    const real_t step = dt();
    const bool compressible = !config_.incompressible;
    for (index_t i = 0; i < n; ++i) {
      const real_t divv_X = compressible ? div_v_at_bwd_[i] : real_t(0);
      const real_t divv_x = compressible ? div_v_[i] : real_t(0);
      const real_t f0 = nu_at_x_[i] * divv_X + f_at_x_[i];
      const real_t predictor = nu_at_x_[i] + step * f0;
      const real_t f1 = predictor * divv_x + f1_grid_[i];
      next[i] = nu_at_x_[i] + real_t(0.5) * step * (f0 + f1);
    }
    std::swap(cur, next);
    std::swap(f0_grid_, f1_grid_);
    accumulate(j - 1, cur);
  }
}

void Transport::solve_displacement(VectorField& u1) {
  if (!plans_built_)
    throw std::logic_error("Transport: set_velocity before displacement");
  const index_t n = decomp_->local_real_size();
  const int nt = config_.nt;
  const real_t half_dt = real_t(0.5) * dt();

  u1 = VectorField(n);  // u(0) = 0
  grid::resize_zero(u_at_x_, n);
  for (int j = 0; j < nt; ++j) {
    if (j == 0) {
      for (int d = 0; d < 3; ++d)
        for (index_t i = 0; i < n; ++i)
          u1[d][i] = -half_dt * (v_at_fwd_[i][d] + v_[d][i]);
      continue;
    }
    // All three components share one batched exchange per time step.
    const real_t* fields[3] = {u1[0].data(), u1[1].data(), u1[2].data()};
    real_t* outs[3] = {u_at_x_[0].data(), u_at_x_[1].data(),
                       u_at_x_[2].data()};
    plan_fwd_.interpolate_many(gx_, std::span<const real_t* const>(fields, 3),
                               std::span<real_t* const>(outs, 3),
                               config_.method);
    for (int d = 0; d < 3; ++d)
      for (index_t i = 0; i < n; ++i)
        u1[d][i] = u_at_x_[d][i] - half_dt * (v_at_fwd_[i][d] + v_[d][i]);
  }
}

void Transport::interp_at_forward_points(const ScalarField& f,
                                         ScalarField& out) {
  if (!plans_built_)
    throw std::logic_error("Transport: set_velocity before interpolation");
  if (out.size() != f.size()) out.resize(f.size());
  plan_fwd_.interpolate(gx_, f, out, config_.method);
}

void Transport::interp_vec_at_forward_points(const VectorField& f,
                                             VectorField& out) {
  if (!plans_built_)
    throw std::logic_error("Transport: set_velocity before interpolation");
  const index_t n = f.local_size();
  if (out.local_size() != n) out = VectorField(n);
  const real_t* fields[3] = {f[0].data(), f[1].data(), f[2].data()};
  real_t* outs[3] = {out[0].data(), out[1].data(), out[2].data()};
  plan_fwd_.interpolate_many(gx_, std::span<const real_t* const>(fields, 3),
                             std::span<real_t* const>(outs, 3),
                             config_.method);
}

}  // namespace diffreg::semilag
