// Time-varying (non-stationary) velocity transport — the extension the
// paper names for registering image time series / optical flow ("our
// approach can be extended to non-stationary velocities... all the
// parallelism related issues remain the same", section V).
//
// The velocity is piecewise stationary on the nt time intervals:
// v(x, t) = v_j(x) for t in [t_j, t_{j+1}). Each interval gets its own RK2
// departure points and interpolation plan; everything else (pencil layout,
// ghost exchange, scatter-phase interpolation) is identical to the
// stationary solver, exactly as the paper claims.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "grid/ghost_exchange.hpp"
#include "interp/interp_plan.hpp"
#include "spectral/operators.hpp"

namespace diffreg::semilag {

class TimeVaryingTransport {
 public:
  /// One velocity field per time interval; nt = velocities.size().
  TimeVaryingTransport(spectral::SpectralOps& ops,
                       std::span<const grid::VectorField> velocities,
                       interp::Method method = interp::Method::kTricubic);

  int nt() const { return static_cast<int>(plans_fwd_.size()); }
  real_t dt() const { return real_t(1) / static_cast<real_t>(nt()); }

  /// Forward solve of the state equation; keeps the nt+1 slices.
  void solve_state(const grid::ScalarField& rho0);
  const grid::ScalarField& state(int j) const { return rho_hist_[j]; }
  const grid::ScalarField& final_state() const { return rho_hist_.back(); }

  /// Backward solve of the adjoint equation from lam(1) = lambda1; stores
  /// lam(t_j) for all j (the per-interval gradient integrand of the
  /// time-series formulation uses them).
  void solve_adjoint(const grid::ScalarField& lambda1);
  const grid::ScalarField& adjoint(int j) const { return lambda_hist_[j]; }

  /// Displacement u with y = x + u (per-interval velocities).
  void solve_displacement(grid::VectorField& u1);

 private:
  spectral::SpectralOps* ops_;
  grid::PencilDecomp* decomp_;
  interp::Method method_;
  grid::GhostExchange gx_;

  std::vector<grid::VectorField> v_;
  // Per interval: forward/backward departure-point plans, div v_j on the
  // grid and at the backward points, v_j at the forward points.
  std::vector<std::unique_ptr<interp::InterpPlan>> plans_fwd_, plans_bwd_;
  std::vector<grid::ScalarField> div_v_, div_v_at_bwd_;
  std::vector<std::vector<Vec3>> v_at_fwd_;

  std::vector<grid::ScalarField> rho_hist_, lambda_hist_;
  grid::ScalarField nu_at_x_;
};

}  // namespace diffreg::semilag
