// Semi-Lagrangian solvers for the transport equations of the optimality
// system (paper sections III-B2 and III-C3):
//
//   state              dt rho + v . grad rho = 0                  (2b)
//   adjoint           -dt lam - div(v lam) = 0                    (3)
//   incremental state  dt rto + v . grad rto = -vt . grad rho     (5a)
//   incr. adjoint GN  -dt lto - div(v lto) = 0                    (5c, GN)
//   incr. adjoint full -dt lto - div(lto v + lam vt) = 0          (5c)
//   displacement       dt u + v . grad u = -v   =>  y = x + u     (1)
//
// All solvers use the unconditionally stable RK2 scheme of eq. (6)/(7): the
// departure points X are computed once per velocity (they are shared by all
// time steps because v is stationary), the interpolation communication plans
// are cached (paper: "the scatter phase needs to be done once per field per
// Newton iteration"), and each step costs one or two plan executions.
//
// Plan caching contract: set_velocity() rebuilds the forward/backward plans
// ONLY when the velocity actually changed (bitwise comparison against the
// cached iterate); a repeated set_velocity with the same field — e.g. the
// Newton driver restoring the accepted iterate after a line search — is a
// no-op. Every state/adjoint solve and every PCG Hessian matvec in between
// reuses the cached plans; plan_build_count() exposes the rebuild count so
// tests can assert the reuse. All interpolation scratch is owned by the
// plans or this class, so the per-step hot path allocates nothing.
//
// The state history rho(t_j) (nt+1 slices) is stored, as are — lazily — the
// spectral gradients grad rho(t_j), which the gradient/Hessian integrands
// reuse across all PCG iterations of a Newton step.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "grid/ghost_exchange.hpp"
#include "interp/interp_plan.hpp"
#include "spectral/operators.hpp"

namespace diffreg::interp {
class FusedInterp;
}

namespace diffreg::semilag {

class Transport;

/// Lockstep state solve for J co-resident same-shape jobs: replicates
/// Transport::solve_state on every transport, but each of the nt time steps
/// pushes all J interpolations through ONE fused ghost exchange and ONE
/// fused value alltoallv (see interp/fused_exchange.hpp). Per-job results
/// are bitwise identical to calling solve_state per transport. All
/// transports must share the decomposition and TransportConfig and have
/// their (per-job) velocities set. Collective.
void solve_states_fused(std::span<Transport* const> transports,
                        std::span<const grid::ScalarField* const> rho0,
                        interp::FusedInterp& fused);

using grid::ScalarField;
using grid::VectorField;

struct TransportConfig {
  int nt = 4;  // number of time steps (paper uses 4)
  interp::Method method = interp::Method::kTricubic;
  /// When true, div v = 0 is assumed and all div-v source terms vanish.
  bool incompressible = false;
  /// Wire format of the ghost-halo slabs and the interpolation value
  /// scatter (kF32 halves the bytes of every transport exchange; the
  /// departure-point coordinates of a plan build stay fp64 — see
  /// interp/interp_plan.hpp).
  WirePrecision wire = WirePrecision::kF64;
  /// Comm/compute overlap of the transport exchanges: the ghost halo packs
  /// its second slab under the first halo's flight and the interpolation
  /// value scatter evaluates the SELF points under the alltoallv flight.
  /// Results and message schedule are identical either way.
  bool overlap = false;
};

class Transport {
 public:
  Transport(spectral::SpectralOps& ops, const TransportConfig& config);

  const TransportConfig& config() const { return config_; }
  int nt() const { return config_.nt; }
  real_t dt() const { return real_t(1) / static_cast<real_t>(config_.nt); }

  /// Computes RK2 departure points for +v and -v, rebuilds both cached
  /// interpolation plans, and caches v and div v at the departure points.
  /// A velocity bitwise equal to the cached one is a no-op (the plans stay
  /// valid). Collective.
  void set_velocity(const VectorField& v);
  const VectorField& velocity() const { return v_; }

  /// Number of times the departure points + plans were (re)built. Grows by
  /// one per *distinct* set_velocity; all solves in between reuse the plans.
  int plan_build_count() const { return plan_builds_; }

  /// Drops the cached velocity/plan state so the next set_velocity always
  /// rebuilds, while keeping every buffer allocation warm. Pool hygiene for
  /// the PlanRegistry transport pool: a transport checked out for a new job
  /// must not inherit the previous job's plans or lazily-computed histories.
  void invalidate_plans() {
    plans_built_ = false;
    for (auto& g : grad_rho_hist_) g.reset();
    lambda_hist_.clear();
    rho_tilde_hist_.clear();
    grad_rho_tilde_hist_.clear();
  }

  /// Forward solve of (2b); stores rho(t_j) for j = 0..nt.
  void solve_state(const ScalarField& rho0);
  const ScalarField& state(int j) const { return rho_hist_[j]; }
  const ScalarField& final_state() const { return rho_hist_[config_.nt]; }

  /// Spectral gradients of the stored state slices (computed on first use,
  /// reused by every gradient evaluation and Hessian matvec).
  const VectorField& state_gradient(int j);

  /// Backward solve of (3) from lam(1) = lambda1; accumulates the gradient
  /// integrand b = Int lam grad rho dt (trapezoidal in time). When
  /// `store_lambda` is set the history lam(t_j) is kept for full Newton.
  void solve_adjoint(const ScalarField& lambda1, VectorField& b,
                     bool store_lambda = false);
  const ScalarField& adjoint(int j) const { return lambda_hist_[j]; }

  /// Forward solve of (5a) with rto(0) = 0; returns rto(1). When
  /// `store_hist` is set the history (and its gradients) are kept for the
  /// full-Newton matvec.
  void solve_incremental_state(const VectorField& vtilde,
                               ScalarField& rho_tilde1,
                               bool store_hist = false);

  /// Gauss-Newton incremental adjoint: backward solve of (5c) without the
  /// lam terms, from lto(1) = lambda_tilde1; accumulates
  /// bt = Int lto grad rho dt.
  void solve_incremental_adjoint_gn(const ScalarField& lambda_tilde1,
                                    VectorField& b_tilde);

  /// Full-Newton incremental adjoint: keeps the div(lam vt) source and the
  /// lam grad rto integrand term. Requires solve_adjoint(store_lambda=true)
  /// and solve_incremental_state(store_hist=true) first.
  void solve_incremental_adjoint_full(const ScalarField& lambda_tilde1,
                                      const VectorField& vtilde,
                                      VectorField& b_tilde);

  /// Solves (1) for the displacement u = y - x; y1(x) = x + u(x, 1).
  void solve_displacement(VectorField& u1);

  /// Interpolates an arbitrary scalar field at the forward departure points
  /// (diagnostics / image warping by one step).
  void interp_at_forward_points(const ScalarField& f, ScalarField& out);

  /// Batched variant: all three components of `f` share one exchange.
  void interp_vec_at_forward_points(const VectorField& f, VectorField& out);

 private:
  friend void solve_states_fused(std::span<Transport* const>,
                                 std::span<const grid::ScalarField* const>,
                                 interp::FusedInterp&);

  /// RK2 departure points (eq. 6) for velocity sign * v, into points_.
  void compute_departure_points(int sign);

  /// One semi-Lagrangian step of d nu/dt = f along the planned direction:
  /// out(x) = nu(X) + dt/2 (f0(X) + f1(x)); the f terms are optional.
  void advect_step(interp::InterpPlan& plan, const ScalarField& nu,
                   const ScalarField* f0_at_points, const ScalarField* f1_grid,
                   ScalarField& out);

  spectral::SpectralOps* ops_;
  grid::PencilDecomp* decomp_;
  TransportConfig config_;
  grid::GhostExchange gx_;

  VectorField v_;
  ScalarField div_v_;  // empty when incompressible
  bool plans_built_ = false;
  int plan_builds_ = 0;
  interp::InterpPlan plan_fwd_;   // departure points of +v
  interp::InterpPlan plan_bwd_;   // departure points of -v
  interp::InterpPlan star_plan_;  // RK2 predictor points (build scratch)
  std::vector<Vec3> v_at_fwd_;    // v(X) at forward points
  ScalarField div_v_at_bwd_;

  std::vector<ScalarField> rho_hist_;
  std::vector<std::optional<VectorField>> grad_rho_hist_;
  std::vector<ScalarField> lambda_hist_;
  std::vector<ScalarField> rho_tilde_hist_;
  std::vector<std::optional<VectorField>> grad_rho_tilde_hist_;

  // Scratch buffers reused across steps (no per-call heap churn).
  std::vector<Vec3> points_;   // departure points of the current build
  std::vector<Vec3> v_star_;   // RK2 predictor velocities
  ScalarField nu_at_x_, f_at_x_, f0_grid_, f1_grid_;
  VectorField u_at_x_;         // displacement components at X (batched)
};

}  // namespace diffreg::semilag
