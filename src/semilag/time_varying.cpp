#include "semilag/time_varying.hpp"

#include <stdexcept>

namespace diffreg::semilag {

using grid::ScalarField;
using grid::VectorField;
using interp::InterpPlan;

TimeVaryingTransport::TimeVaryingTransport(
    spectral::SpectralOps& ops, std::span<const VectorField> velocities,
    interp::Method method)
    : ops_(&ops),
      decomp_(&ops.decomp()),
      method_(method),
      gx_(*decomp_, interp::kGhostWidth) {
  if (velocities.empty())
    throw std::invalid_argument(
        "TimeVaryingTransport: need at least one velocity interval");
  const int nt = static_cast<int>(velocities.size());
  const real_t step = real_t(1) / static_cast<real_t>(nt);
  const index_t n = decomp_->local_real_size();
  nu_at_x_.resize(n);

  const Int3 dims = decomp_->dims();
  const Int3 ld = decomp_->local_real_dims();
  const real_t h1 = kTwoPi / dims[0], h2 = kTwoPi / dims[1],
               h3 = kTwoPi / dims[2];
  const index_t lo1 = decomp_->range1().begin, lo2 = decomp_->range2().begin;

  v_.assign(velocities.begin(), velocities.end());
  plans_fwd_.resize(nt);
  plans_bwd_.resize(nt);
  div_v_.resize(nt);
  div_v_at_bwd_.resize(nt);
  v_at_fwd_.resize(nt);

  // Per-interval RK2 departure points (eq. 6 with v = v_j). The predictor
  // plan and its scratch are shared across all intervals.
  InterpPlan star(*decomp_);
  std::vector<Vec3> v_star;
  auto departure_points = [&](const VectorField& v, int sign,
                              std::vector<Vec3>& pts) {
    const real_t s = static_cast<real_t>(sign) * step;
    pts.resize(n);
    index_t idx = 0;
    for (index_t a = 0; a < ld[0]; ++a) {
      const real_t x1 = (lo1 + a) * h1;
      for (index_t b = 0; b < ld[1]; ++b) {
        const real_t x2 = (lo2 + b) * h2;
        for (index_t c = 0; c < ld[2]; ++c, ++idx)
          pts[idx] = Vec3{x1 - s * v[0][idx], x2 - s * v[1][idx],
                          c * h3 - s * v[2][idx]};
      }
    }
    star.build(pts);
    star.interpolate_vec(gx_, v, v_star, method_);
    idx = 0;
    for (index_t a = 0; a < ld[0]; ++a) {
      const real_t x1 = (lo1 + a) * h1;
      for (index_t b = 0; b < ld[1]; ++b) {
        const real_t x2 = (lo2 + b) * h2;
        for (index_t c = 0; c < ld[2]; ++c, ++idx) {
          const real_t half = real_t(0.5) * s;
          pts[idx] = Vec3{x1 - half * (v[0][idx] + v_star[idx][0]),
                          x2 - half * (v[1][idx] + v_star[idx][1]),
                          c * h3 - half * (v[2][idx] + v_star[idx][2])};
        }
      }
    }
  };

  std::vector<Vec3> pts;
  for (int j = 0; j < nt; ++j) {
    departure_points(v_[j], +1, pts);
    plans_fwd_[j] = std::make_unique<InterpPlan>(*decomp_, pts);
    plans_fwd_[j]->interpolate_vec(gx_, v_[j], v_at_fwd_[j], method_);
    departure_points(v_[j], -1, pts);
    plans_bwd_[j] = std::make_unique<InterpPlan>(*decomp_, pts);
    ops_->divergence(v_[j], div_v_[j]);
    div_v_at_bwd_[j].resize(n);
    plans_bwd_[j]->interpolate(gx_, div_v_[j], div_v_at_bwd_[j], method_);
  }
}

void TimeVaryingTransport::solve_state(const ScalarField& rho0) {
  rho_hist_.assign(nt() + 1, ScalarField());
  rho_hist_[0] = rho0;
  for (int j = 0; j < nt(); ++j) {
    rho_hist_[j + 1].resize(rho0.size());
    plans_fwd_[j]->interpolate(gx_, rho_hist_[j], rho_hist_[j + 1],
                              method_);
  }
}

void TimeVaryingTransport::solve_adjoint(const ScalarField& lambda1) {
  const index_t n = decomp_->local_real_size();
  const real_t step = dt();
  lambda_hist_.assign(nt() + 1, ScalarField());
  lambda_hist_[nt()] = lambda1;
  for (int j = nt(); j >= 1; --j) {
    // Advect lam along -v_j with the linear-in-lam source lam div v_j.
    plans_bwd_[j - 1]->interpolate(gx_, lambda_hist_[j], nu_at_x_, method_);
    auto& next = lambda_hist_[j - 1];
    next.resize(n);
    const auto& divv = div_v_[j - 1];
    const auto& divv_X = div_v_at_bwd_[j - 1];
    for (index_t i = 0; i < n; ++i) {
      const real_t f0 = nu_at_x_[i] * divv_X[i];
      const real_t predictor = nu_at_x_[i] + step * f0;
      next[i] = nu_at_x_[i] + real_t(0.5) * step * (f0 + predictor * divv[i]);
    }
  }
}

void TimeVaryingTransport::solve_displacement(VectorField& u1) {
  const index_t n = decomp_->local_real_size();
  const real_t half_dt = real_t(0.5) * dt();
  u1 = VectorField(n);
  ScalarField next(n);
  for (int j = 0; j < nt(); ++j) {
    for (int d = 0; d < 3; ++d) {
      if (j == 0) {
        for (index_t i = 0; i < n; ++i)
          next[i] = -half_dt * (v_at_fwd_[j][i][d] + v_[j][d][i]);
      } else {
        plans_fwd_[j]->interpolate(gx_, u1[d], nu_at_x_, method_);
        for (index_t i = 0; i < n; ++i)
          next[i] = nu_at_x_[i] - half_dt * (v_at_fwd_[j][i][d] + v_[j][d][i]);
      }
      std::swap(u1[d], next);
    }
  }
}

}  // namespace diffreg::semilag
