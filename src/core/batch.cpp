#include "core/batch.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <stdexcept>

#include "common/timer.hpp"
#include "interp/fused_exchange.hpp"

namespace diffreg::core {

namespace {

semilag::TransportConfig transport_config(const RegistrationOptions& opt) {
  semilag::TransportConfig tc;
  tc.nt = opt.nt;
  tc.method = opt.interp_method;
  tc.incompressible = opt.incompressible;
  tc.wire = opt.wire();
  tc.overlap = opt.overlap;
  return tc;
}

Vec3 smoothing_sigma(const RegistrationOptions& opt, const Int3& dims) {
  return {opt.smoothing_cells * kTwoPi / dims[0],
          opt.smoothing_cells * kTwoPi / dims[1],
          opt.smoothing_cells * kTwoPi / dims[2]};
}

}  // namespace

std::uint64_t BatchSolver::submit(BatchJobSpec spec) {
  if (spec.dims[0] < 1 || spec.dims[1] < 1 || spec.dims[2] < 1)
    throw std::invalid_argument("BatchSolver: job needs valid dims");
  if (!spec.make_inputs &&
      (spec.request.rho_t == nullptr || spec.request.rho_r == nullptr))
    throw std::invalid_argument(
        "BatchSolver: job needs input pointers or an input factory");
  if (spec.request.job_id == 0) spec.request.job_id = next_job_id_++;
  const std::uint64_t id = spec.request.job_id;
  queue_.push_back(std::move(spec));
  return id;
}

BatchSolver::Shard& BatchSolver::shard_context(int shards, int shard_size,
                                               int color) {
  auto it = shards_.find(shards);
  if (it == shards_.end()) {
    Shard ctx;
    // One shard is the parent communicator itself: no split, so the comm
    // schedule (and therefore every result) matches standalone solves
    // bitwise. More shards split collectively — every rank participates.
    ctx.sub = shards == 1 ? comm_ : comm_.split(color);
    (void)shard_size;
    ctx.registry = std::make_shared<PlanRegistry>(ctx.sub);
    it = shards_.emplace(shards, std::move(ctx)).first;
  }
  return it->second;
}

BatchReport BatchSolver::run_all(const BatchOptions& opts) {
  BatchReport out;
  const int p = comm_.size();
  const int njobs = static_cast<int>(queue_.size());
  if (njobs == 0) return out;

  // Scheduling order: priority desc, FIFO within a class (stable sort
  // preserves submit order among equal priorities).
  std::vector<int> order(njobs);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return queue_[a].request.priority > queue_[b].request.priority;
  });

  const bool all_factories =
      std::all_of(queue_.begin(), queue_.end(),
                  [](const BatchJobSpec& s) { return bool(s.make_inputs); });
  int shards = opts.shards;
  if (shards == 0) {
    shards = 1;
    if (all_factories)
      for (int s = std::min(p, njobs); s >= 1; --s)
        if (p % s == 0) {
          shards = s;
          break;
        }
  } else {
    if (shards < 1 || p % shards != 0)
      throw std::invalid_argument(
          "BatchSolver: shards must divide the rank count");
    if (shards > 1 && !all_factories)
      throw std::invalid_argument(
          "BatchSolver: raw-pointer inputs require shards = 1 (their blocks "
          "live on the parent decomposition)");
  }
  const int shard_size = p / shards;
  const int color = comm_.rank() / shard_size;
  Shard& ctx = shard_context(shards, shard_size, color);
  out.shards = shards;

  WallTimer batch_clock;

  // My shard's slice: round-robin over the scheduling order.
  std::vector<int> mine;  // queue indices, execution order
  for (int k = 0; k < njobs; ++k)
    if (k % shards == color) mine.push_back(order[k]);
  const int jn = static_cast<int>(mine.size());

  // Materialize inputs on the shard decomposition.
  struct JobData {
    ScalarField t_owned, r_owned;          // factory outputs
    const ScalarField* rho_t = nullptr;    // raw (unsmoothed) inputs
    const ScalarField* rho_r = nullptr;
    ScalarField t_smooth, r_smooth;        // fused pre-smoothing outputs
    bool presmoothed = false;
  };
  std::vector<JobData> data(jn);
  for (int i = 0; i < jn; ++i) {
    const BatchJobSpec& spec = queue_[mine[i]];
    if (spec.make_inputs) {
      auto decomp = ctx.registry->decomp(spec.dims);
      spec.make_inputs(*decomp, data[i].t_owned, data[i].r_owned);
      data[i].rho_t = &data[i].t_owned;
      data[i].rho_r = &data[i].r_owned;
    } else {
      data[i].rho_t = spec.request.rho_t;
      data[i].rho_r = spec.request.rho_r;
    }
  }

  // Fused input pre-smoothing: the template AND reference fields of all
  // co-resident jobs that want smoothing ride batched gaussian_smooth_many
  // calls (per-field sigma), up to the FFT batch width per exchange set.
  // Bitwise identical per field to the in-solve smoothing it replaces.
  if (opts.fuse_exchanges) {
    struct SmoothItem {
      const real_t* in;
      real_t* out;
      Vec3 sigma;
    };
    // Group by the spectral-operator key the smoothing runs on.
    std::map<std::tuple<index_t, index_t, index_t, int, int>,
             std::vector<SmoothItem>>
        groups;
    for (int i = 0; i < jn; ++i) {
      const BatchJobSpec& spec = queue_[mine[i]];
      const RegistrationOptions& jopt = spec.request.options;
      if (!jopt.smooth_inputs) continue;
      auto decomp = ctx.registry->decomp(spec.dims);
      const index_t n = decomp->local_real_size();
      data[i].t_smooth.resize(n);
      data[i].r_smooth.resize(n);
      const Vec3 sigma = smoothing_sigma(jopt, spec.dims);
      auto& g = groups[{spec.dims[0], spec.dims[1], spec.dims[2],
                        static_cast<int>(jopt.wire()), jopt.overlap ? 1 : 0}];
      g.push_back({data[i].rho_t->data(), data[i].t_smooth.data(), sigma});
      g.push_back({data[i].rho_r->data(), data[i].r_smooth.data(), sigma});
      data[i].presmoothed = true;
    }
    for (auto& [key, items] : groups) {
      const Int3 dims{std::get<0>(key), std::get<1>(key), std::get<2>(key)};
      auto ops = ctx.registry->spectral(
          dims, static_cast<WirePrecision>(std::get<3>(key)),
          std::get<4>(key) != 0);
      const int chunk = fft::DistributedFft3d::kMaxBatch;
      for (std::size_t b = 0; b < items.size(); b += chunk) {
        const int m = static_cast<int>(
            std::min<std::size_t>(chunk, items.size() - b));
        const real_t* ins[fft::DistributedFft3d::kMaxBatch];
        real_t* outs[fft::DistributedFft3d::kMaxBatch];
        Vec3 sigmas[fft::DistributedFft3d::kMaxBatch];
        for (int q = 0; q < m; ++q) {
          ins[q] = items[b + q].in;
          outs[q] = items[b + q].out;
          sigmas[q] = items[b + q].sigma;
        }
        ops->gaussian_smooth_many(std::span<const real_t* const>(ins, m),
                                  std::span<const Vec3>(sigmas, m),
                                  std::span<real_t* const>(outs, m));
      }
    }
  }

  // Sequential solves through the shared registry; one facade per grid.
  std::map<std::tuple<index_t, index_t, index_t>,
           std::unique_ptr<RegistrationSolver>>
      solvers;
  const auto solver_for = [&](const BatchJobSpec& spec) -> RegistrationSolver& {
    auto& slot = solvers[{spec.dims[0], spec.dims[1], spec.dims[2]}];
    if (!slot)
      slot = std::make_unique<RegistrationSolver>(
          *ctx.registry->decomp(spec.dims), spec.request.options,
          ctx.registry);
    return *slot;
  };
  std::vector<double> completed_at(jn, 0);
  for (int i = 0; i < jn; ++i) {
    const BatchJobSpec& spec = queue_[mine[i]];
    SolveRequest req = spec.request;
    if (data[i].presmoothed) {
      req.rho_t = &data[i].t_smooth;
      req.rho_r = &data[i].r_smooth;
      req.options.smooth_inputs = false;
    } else {
      req.rho_t = data[i].rho_t;
      req.rho_r = data[i].rho_r;
    }
    SolveReport rep = solver_for(spec).solve(req);
    completed_at[i] = batch_clock.seconds();
    rep.deadline_met = req.deadline_seconds <= 0 ||
                       completed_at[i] <= req.deadline_seconds;
    if (opts.verbose && ctx.sub.rank() == 0)
      std::printf("[batch shard %d] job %llu: %s in %d iters, rel res "
                  "%.3e, %.2fs\n",
                  color, static_cast<unsigned long long>(rep.job_id),
                  rep.newton.converged ? "converged" : "NOT converged",
                  rep.newton.iterations, static_cast<double>(rep.rel_residual),
                  completed_at[i]);
    out.reports.push_back(std::move(rep));
  }

  // Deformed templates: co-resident same-shape jobs run their final
  // transport lockstep through the fused exchange (one ghost exchange and
  // one value alltoallv per time step for the whole group).
  if (opts.want_deformed) {
    out.deformed.resize(jn);
    if (opts.fuse_exchanges) {
      std::map<std::tuple<index_t, index_t, index_t, int, int, int, int, int>,
               std::vector<int>>
          groups;
      for (int i = 0; i < jn; ++i) {
        const BatchJobSpec& spec = queue_[mine[i]];
        const semilag::TransportConfig tc =
            transport_config(spec.request.options);
        groups[{spec.dims[0], spec.dims[1], spec.dims[2], tc.nt,
                static_cast<int>(tc.method), tc.incompressible ? 1 : 0,
                static_cast<int>(tc.wire), tc.overlap ? 1 : 0}]
            .push_back(i);
      }
      for (auto& [key, members] : groups) {
        const int g = static_cast<int>(members.size());
        const BatchJobSpec& spec0 = queue_[mine[members[0]]];
        const semilag::TransportConfig tc =
            transport_config(spec0.request.options);
        auto decomp = ctx.registry->decomp(spec0.dims);
        std::vector<std::shared_ptr<semilag::Transport>> leased(g);
        std::vector<semilag::Transport*> transports(g);
        std::vector<const ScalarField*> templates(g);
        for (int q = 0; q < g; ++q) {
          leased[q] = ctx.registry->acquire_transport(spec0.dims, tc);
          transports[q] = leased[q].get();
          transports[q]->set_velocity(out.reports[members[q]].velocity);
          templates[q] = data[members[q]].rho_t;  // unsmoothed template
        }
        interp::FusedInterp fused(*decomp, tc.wire, tc.overlap);
        semilag::solve_states_fused(
            std::span<semilag::Transport* const>(transports),
            std::span<const ScalarField* const>(templates), fused);
        for (int q = 0; q < g; ++q) {
          out.deformed[members[q]] = transports[q]->final_state();
          ctx.registry->release_transport(spec0.dims, tc,
                                          std::move(leased[q]));
        }
      }
    } else {
      for (int i = 0; i < jn; ++i) {
        const BatchJobSpec& spec = queue_[mine[i]];
        solver_for(spec).deform_template(*data[i].rho_t,
                                         out.reports[i].velocity,
                                         out.deformed[i]);
      }
    }
  }

  // Global per-job digest: shard-rank-0 of the executing shard contributes
  // each job's numbers, everyone else zeros; one vector allreduce over the
  // PARENT communicator assembles the full table on every rank (this is
  // also the batch-end barrier across shards).
  constexpr int kCols = 9;
  std::vector<double> flat(static_cast<std::size_t>(njobs) * kCols, 0.0);
  if (ctx.sub.rank() == 0) {
    for (int i = 0; i < jn; ++i) {
      const SolveReport& rep = out.reports[i];
      double* row = flat.data() + static_cast<std::size_t>(mine[i]) * kCols;
      row[0] = color;
      row[1] = rep.newton.converged ? 1 : 0;
      row[2] = rep.newton.iterations;
      row[3] = rep.newton.total_matvecs;
      row[4] = static_cast<double>(rep.rel_residual);
      row[5] = static_cast<double>(rep.min_det);
      row[6] = rep.time_to_solution;
      row[7] = completed_at[i];
      row[8] = rep.deadline_met ? 1 : 0;
    }
  }
  comm_.allreduce_sum(flat);
  out.summary.resize(njobs);
  for (int j = 0; j < njobs; ++j) {
    const double* row = flat.data() + static_cast<std::size_t>(j) * kCols;
    BatchJobSummary& s = out.summary[j];
    s.job_id = queue_[j].request.job_id;
    s.shard = static_cast<int>(row[0]);
    s.ran_here = s.shard == color;
    s.converged = row[1] != 0;
    s.newton_iters = static_cast<int>(row[2]);
    s.matvecs = static_cast<int>(row[3]);
    s.rel_residual = static_cast<real_t>(row[4]);
    s.min_det = static_cast<real_t>(row[5]);
    s.solve_seconds = row[6];
    s.completed_at_seconds = row[7];
    s.deadline_met = row[8] != 0;
  }

  out.wall_seconds = comm_.allreduce_max(batch_clock.seconds());
  out.registrations_per_sec =
      out.wall_seconds > 0 ? njobs / out.wall_seconds : 0;
  out.registry = ctx.registry->stats();
  queue_.clear();
  return out;
}

}  // namespace diffreg::core
