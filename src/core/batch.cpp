#include "core/batch.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <map>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>

#include "common/timer.hpp"
#include "core/batch_manifest.hpp"
#include "core/checkpoint.hpp"
#include "grid/field_math.hpp"
#include "interp/fused_exchange.hpp"
#include "mpisim/errors.hpp"

namespace diffreg::core {

namespace {

semilag::TransportConfig transport_config(const RegistrationOptions& opt) {
  semilag::TransportConfig tc;
  tc.nt = opt.nt;
  tc.method = opt.interp_method;
  tc.incompressible = opt.incompressible;
  tc.wire = opt.wire();
  tc.overlap = opt.overlap;
  return tc;
}

Vec3 smoothing_sigma(const RegistrationOptions& opt, const Int3& dims) {
  return {opt.smoothing_cells * kTwoPi / dims[0],
          opt.smoothing_cells * kTwoPi / dims[1],
          opt.smoothing_cells * kTwoPi / dims[2]};
}

bool is_final(JobOutcome outcome) {
  return outcome == JobOutcome::kDone || outcome == JobOutcome::kDegraded ||
         outcome == JobOutcome::kPoisoned ||
         outcome == JobOutcome::kDeadlineExceeded;
}

/// The degrade ladder: a cheaper configuration for a job's one post-deadline
/// re-admission — halved outer/inner iteration caps, no two-level
/// preconditioner. The degraded attempt runs without deadline enforcement
/// (it is the job's last chance to produce a usable result).
void degrade_options(RegistrationOptions& opt) {
  opt.max_newton_iters = std::max(1, opt.max_newton_iters / 2);
  opt.max_krylov_iters = std::max(1, opt.max_krylov_iters / 2);
  opt.two_level_precond = false;
}

}  // namespace

const char* to_string(JobOutcome outcome) {
  switch (outcome) {
    case JobOutcome::kDone:
      return "done";
    case JobOutcome::kRetrying:
      return "retrying";
    case JobOutcome::kPoisoned:
      return "poisoned";
    case JobOutcome::kDeadlineExceeded:
      return "deadline-exceeded";
    case JobOutcome::kDegraded:
      return "degraded";
    default:
      return "pending";
  }
}

JobOutcome outcome_from_string(const std::string& name) {
  if (name == "done") return JobOutcome::kDone;
  if (name == "retrying") return JobOutcome::kRetrying;
  if (name == "poisoned") return JobOutcome::kPoisoned;
  if (name == "deadline-exceeded") return JobOutcome::kDeadlineExceeded;
  if (name == "degraded") return JobOutcome::kDegraded;
  return JobOutcome::kPending;
}

std::uint64_t BatchSolver::submit(BatchJobSpec spec) {
  if (spec.dims[0] < 1 || spec.dims[1] < 1 || spec.dims[2] < 1)
    throw std::invalid_argument("BatchSolver: job needs valid dims");
  if (!spec.make_inputs &&
      (spec.request.rho_t == nullptr || spec.request.rho_r == nullptr))
    throw std::invalid_argument(
        "BatchSolver: job needs input pointers or an input factory");
  if (spec.request.job_id == 0) spec.request.job_id = next_job_id_++;
  const std::uint64_t id = spec.request.job_id;
  queue_.push_back(std::move(spec));
  return id;
}

BatchSolver::Shard& BatchSolver::shard_context(int shards, int shard_size,
                                               int color) {
  auto it = shards_.find(shards);
  if (it == shards_.end()) {
    Shard ctx;
    // One shard is the parent communicator itself: no split, so the comm
    // schedule (and therefore every result) matches standalone solves
    // bitwise. More shards split collectively — every rank participates.
    ctx.sub = shards == 1 ? comm_ : comm_.split(color);
    (void)shard_size;
    ctx.registry = std::make_shared<PlanRegistry>(ctx.sub);
    it = shards_.emplace(shards, std::move(ctx)).first;
  }
  return it->second;
}

BatchReport BatchSolver::run_all(const BatchOptions& opts) {
  BatchReport out;
  const int p = comm_.size();
  const int njobs = static_cast<int>(queue_.size());
  if (njobs == 0) return out;

  // Scheduling order: priority desc, FIFO within a class (stable sort
  // preserves submit order among equal priorities).
  std::vector<int> order(njobs);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return queue_[a].request.priority > queue_[b].request.priority;
  });

  const bool all_factories =
      std::all_of(queue_.begin(), queue_.end(),
                  [](const BatchJobSpec& s) { return bool(s.make_inputs); });
  int shards = opts.shards;
  if (shards == 0) {
    shards = 1;
    if (all_factories)
      for (int s = std::min(p, njobs); s >= 1; --s)
        if (p % s == 0) {
          shards = s;
          break;
        }
  } else {
    if (shards < 1 || p % shards != 0)
      throw std::invalid_argument(
          "BatchSolver: shards must divide the rank count");
    if (shards > 1 && !all_factories)
      throw std::invalid_argument(
          "BatchSolver: raw-pointer inputs require shards = 1 (their blocks "
          "live on the parent decomposition)");
  }
  const int shard_size = p / shards;
  const int color = comm_.rank() / shard_size;
  Shard* ctx = &shard_context(shards, shard_size, color);
  out.shards = shards;

  WallTimer batch_clock;

  // Recovery rendezvous deadline: must exceed the comm watchdog so that
  // surviving ranks have time to time out of a faulted exchange and reach
  // the recovery barrier before the barrier itself gives up.
  const double watchdog = comm_.comm_timeout_ms();
  const double recover_timeout =
      opts.recover_timeout_ms != 0
          ? opts.recover_timeout_ms
          : (watchdog > 0 ? std::max(2 * watchdog, 1000.0) : 1000.0);

  // Global per-job state table. Kept identical on every rank at every round
  // boundary (the sync allreduce reconciles it), which is what makes the
  // failover decisions collective-consistent.
  struct JobState {
    JobOutcome outcome = JobOutcome::kPending;
    int attempts = 0;
    int shard = -1;
    bool from_manifest = false;  ///< Final outcome restored, job skipped.
    bool resume = false;         ///< Re-run of a manifest in-flight job.
    double converged = 0, newton_iters = 0, matvecs = 0;
    double rel_residual = 1, min_det = 0, solve_seconds = 0;
    double completed_at = 0;
    bool deadline_met = true;
    std::string checkpoint;  ///< Solver checkpoint path (for warm starts).
  };
  std::vector<JobState> st(njobs);
  for (int j = 0; j < njobs; ++j)
    st[j].checkpoint = queue_[j].request.checkpoint_path;

  // Batch resume: restore final outcomes from the manifest (those jobs are
  // never placed — zero plan work for them) and mark in-flight jobs for a
  // warm start from their solver checkpoints.
  const bool manifest_on = !opts.manifest_path.empty();
  if (manifest_on) {
    const std::vector<BatchManifestEntry> entries =
        load_manifest(comm_, opts.manifest_path);
    std::map<std::uint64_t, const BatchManifestEntry*> by_id;
    for (const BatchManifestEntry& e : entries) by_id[e.job_id] = &e;
    for (int j = 0; j < njobs; ++j) {
      auto it = by_id.find(queue_[j].request.job_id);
      if (it == by_id.end()) continue;
      const BatchManifestEntry& e = *it->second;
      const JobOutcome prior = outcome_from_string(e.outcome);
      if (st[j].checkpoint.empty()) st[j].checkpoint = e.checkpoint_path;
      if (is_final(prior)) {
        st[j].outcome = prior;
        st[j].attempts = e.attempts;
        st[j].completed_at = e.completed_at_seconds;
        st[j].deadline_met = e.deadline_met;
        st[j].from_manifest = true;
      } else {
        st[j].attempts = e.attempts;
        st[j].resume = true;
      }
    }
  }

  auto manifest_entry = [&](int qi) {
    BatchManifestEntry e;
    e.job_id = queue_[qi].request.job_id;
    e.outcome = to_string(st[qi].outcome);
    e.attempts = st[qi].attempts;
    e.completed_at_seconds = st[qi].completed_at;
    e.deadline_met = st[qi].deadline_met;
    e.checkpoint_path = st[qi].checkpoint;
    return e;
  };
  auto persist = [&](mpisim::Communicator& on, int qi) {
    if (manifest_on) update_manifest(on, opts.manifest_path, {manifest_entry(qi)});
  };

  // Initial manifest write: a kill before the first completion must still
  // leave a resumable manifest naming every job.
  if (manifest_on) {
    std::vector<BatchManifestEntry> all;
    all.reserve(static_cast<std::size_t>(njobs));
    for (int j = 0; j < njobs; ++j) all.push_back(manifest_entry(j));
    update_manifest(comm_, opts.manifest_path, all);
  }

  // Shard-local execution state. jobdata survives rounds (inputs are reused
  // across retries) but is cleared when the shard is rebuilt.
  struct JobData {
    bool ready = false;
    ScalarField t_owned, r_owned;        // factory outputs
    const ScalarField* rho_t = nullptr;  // raw (unsmoothed) inputs
    const ScalarField* rho_r = nullptr;
    ScalarField t_smooth, r_smooth;  // fused pre-smoothing outputs
    bool presmoothed = false;
    grid::VectorField v0;  // checkpoint warm start (manifest resume)
    bool has_v0 = false;
    real_t warm_gradient_reference = 0;
  };
  std::map<int, JobData> jobdata;  // keyed by queue index
  std::map<std::tuple<index_t, index_t, index_t>,
           std::unique_ptr<RegistrationSolver>>
      solvers;
  const auto solver_for = [&](const BatchJobSpec& spec) -> RegistrationSolver& {
    auto& slot = solvers[{spec.dims[0], spec.dims[1], spec.dims[2]}];
    if (!slot)
      slot = std::make_unique<RegistrationSolver>(
          *ctx->registry->decomp(spec.dims), spec.request.options,
          ctx->registry);
    return *slot;
  };

  auto materialize = [&](int qi) {
    JobData& jd = jobdata[qi];
    if (jd.ready) return;
    const BatchJobSpec& spec = queue_[qi];
    if (spec.make_inputs) {
      auto decomp = ctx->registry->decomp(spec.dims);
      spec.make_inputs(*decomp, jd.t_owned, jd.r_owned);
      jd.rho_t = &jd.t_owned;
      jd.rho_r = &jd.r_owned;
    } else {
      jd.rho_t = spec.request.rho_t;
      jd.rho_r = spec.request.rho_r;
    }
    // Warm start for manifest-resumed in-flight jobs: scatter the last
    // solver checkpoint when one exists and matches the grid; any
    // checkpoint problem silently falls back to a cold start.
    if (st[qi].resume && !st[qi].checkpoint.empty() && !jd.has_v0) {
      try {
        auto decomp = ctx->registry->decomp(spec.dims);
        const CheckpointHeader hdr =
            read_checkpoint_header(decomp->comm(), st[qi].checkpoint);
        if (hdr.level_dims == spec.dims) {
          jd.v0 = read_checkpoint_velocity(*decomp, st[qi].checkpoint);
          jd.has_v0 = true;
          jd.warm_gradient_reference =
              static_cast<real_t>(hdr.gradient_reference);
        }
      } catch (const CheckpointError&) {
        // Cold start: the checkpoint is missing or stale.
      }
    }
    jd.ready = true;
  };

  // Fused input pre-smoothing: the template AND reference fields of the
  // given co-resident jobs that want smoothing ride batched
  // gaussian_smooth_many calls (per-field sigma), up to the FFT batch width
  // per exchange set. Bitwise identical per field to the in-solve smoothing
  // it replaces.
  auto presmooth = [&](const std::vector<int>& members) {
    struct SmoothItem {
      const real_t* in;
      real_t* out;
      Vec3 sigma;
    };
    // Group by the spectral-operator key the smoothing runs on.
    std::map<std::tuple<index_t, index_t, index_t, int, int>,
             std::vector<SmoothItem>>
        groups;
    for (int qi : members) {
      const BatchJobSpec& spec = queue_[qi];
      const RegistrationOptions& jopt = spec.request.options;
      JobData& jd = jobdata[qi];
      if (!jopt.smooth_inputs || jd.presmoothed) continue;
      auto decomp = ctx->registry->decomp(spec.dims);
      const index_t n = decomp->local_real_size();
      jd.t_smooth.resize(n);
      jd.r_smooth.resize(n);
      const Vec3 sigma = smoothing_sigma(jopt, spec.dims);
      auto& g = groups[{spec.dims[0], spec.dims[1], spec.dims[2],
                        static_cast<int>(jopt.wire()), jopt.overlap ? 1 : 0}];
      g.push_back({jd.rho_t->data(), jd.t_smooth.data(), sigma});
      g.push_back({jd.rho_r->data(), jd.r_smooth.data(), sigma});
      jd.presmoothed = true;
    }
    for (auto& [key, items] : groups) {
      const Int3 dims{std::get<0>(key), std::get<1>(key), std::get<2>(key)};
      auto ops = ctx->registry->spectral(
          dims, static_cast<WirePrecision>(std::get<3>(key)),
          std::get<4>(key) != 0);
      const int chunk = fft::DistributedFft3d::kMaxBatch;
      for (std::size_t b = 0; b < items.size(); b += chunk) {
        const int m =
            static_cast<int>(std::min<std::size_t>(chunk, items.size() - b));
        const real_t* ins[fft::DistributedFft3d::kMaxBatch];
        real_t* outs[fft::DistributedFft3d::kMaxBatch];
        Vec3 sigmas[fft::DistributedFft3d::kMaxBatch];
        for (int q = 0; q < m; ++q) {
          ins[q] = items[b + q].in;
          outs[q] = items[b + q].out;
          sigmas[q] = items[b + q].sigma;
        }
        ops->gaussian_smooth_many(std::span<const real_t* const>(ins, m),
                                  std::span<const Vec3>(sigmas, m),
                                  std::span<real_t* const>(outs, m));
      }
    }
  };

  // One in-flight placement of a job on this shard.
  struct Attempt {
    int qi = 0;             ///< Queue index.
    int attempts = 0;       ///< Attempts already spent (incremented at start).
    double not_before = 0;  ///< Batch-clock backoff deadline.
    bool degraded = false;  ///< Running the post-deadline degrade config.
  };

  std::map<int, SolveReport> my_reports;  // queue index -> full report
  std::vector<int> my_completed;          // queue indices, completion order
  bool healthy = true;
  // Rounds are bounded: every round either finishes the batch or spends at
  // least one attempt / one rebuild, and attempts are budget-bounded.
  const int max_rounds = std::max(1, opts.retry_budget + 2);

  const auto verbose_line = [&](const char* fmt, auto... args) {
    if (opts.verbose && ctx->sub.rank() == 0) std::printf(fmt, args...);
  };

  for (int round = 0; round < max_rounds; ++round) {
    out.rounds = round + 1;

    // Assignment: pending jobs in scheduling order, round-robin over
    // shards. Identical on every rank (it is a pure function of st).
    std::deque<Attempt> runq;
    std::set<int> my_assigned;
    {
      int k = 0;
      for (int idx : order) {
        if (is_final(st[idx].outcome)) continue;
        if (k % shards == color) {
          runq.push_back({idx, st[idx].attempts, 0.0, false});
          my_assigned.insert(idx);
        }
        ++k;
      }
    }

    // Materialize inputs (and fused pre-smoothing) for this round's
    // placements, inside the fault boundary: a fault mid-smoothing drains
    // the shard's communicators and falls back to per-solve smoothing,
    // which is bitwise identical per field.
    if (healthy && !runq.empty()) {
      std::vector<int> fresh;
      for (const Attempt& a : runq) fresh.push_back(a.qi);
      auto input_fault = [&](const char* what) {
        verbose_line("[batch shard %d] input phase faulted: %s\n", color,
                     what);
        for (int qi : fresh) jobdata[qi].presmoothed = false;
        if (!ctx->registry->recover_after_fault(recover_timeout)) {
          healthy = false;
          return;
        }
        // Second chance without the fused smoothing: the solves smooth
        // in-line, bitwise identical per field. A second fault means the
        // shard is not salvageable this round.
        try {
          for (int qi : fresh) materialize(qi);
        } catch (const grid::NonFiniteFieldError&) {
          healthy = false;
        } catch (const mpisim::CommError&) {
          healthy = false;
        }
      };
      try {
        for (int qi : fresh) materialize(qi);
        if (opts.fuse_exchanges) presmooth(fresh);
      } catch (const grid::NonFiniteFieldError& e) {
        input_fault(e.what());
      } catch (const mpisim::CommError& e) {
        input_fault(e.what());
      }
    }

    // Finalization helpers (st mutations run identically on every rank of
    // the shard — the ranks execute this loop in lockstep).
    auto finalize_done = [&](const Attempt& a, SolveReport rep) {
      const double done_at = batch_clock.seconds();
      const double deadline = queue_[a.qi].request.deadline_seconds;
      rep.deadline_met = deadline <= 0 || done_at <= deadline;
      JobState& s = st[a.qi];
      s.outcome = a.degraded ? JobOutcome::kDegraded : JobOutcome::kDone;
      s.converged = rep.newton.converged ? 1 : 0;
      s.newton_iters = rep.newton.iterations;
      s.matvecs = rep.newton.total_matvecs;
      s.rel_residual = static_cast<double>(rep.rel_residual);
      s.min_det = static_cast<double>(rep.min_det);
      s.solve_seconds = rep.time_to_solution;
      s.completed_at = done_at;
      s.deadline_met = rep.deadline_met;
      verbose_line(
          "[batch shard %d] job %llu: %s (%s) in %d iters, rel res %.3e, "
          "attempt %d, %.2fs\n",
          color, static_cast<unsigned long long>(rep.job_id),
          rep.newton.converged ? "converged" : "NOT converged",
          to_string(s.outcome), rep.newton.iterations,
          static_cast<double>(rep.rel_residual), s.attempts, done_at);
      my_reports[a.qi] = std::move(rep);
      my_completed.push_back(a.qi);
      persist(ctx->sub, a.qi);
    };

    auto handle_fault = [&](Attempt a, const char* what) {
      verbose_line("[batch shard %d] job %llu attempt %d faulted: %s\n", color,
                   static_cast<unsigned long long>(queue_[a.qi].request.job_id),
                   a.attempts, what);
      if (!ctx->registry->recover_after_fault(recover_timeout)) {
        // Unrecoverable (a rank is down or the wire would not quiesce):
        // stop local execution; the failover round rebuilds this shard and
        // redistributes its unfinished jobs.
        st[a.qi].outcome = JobOutcome::kRetrying;
        healthy = false;
        return;
      }
      if (a.attempts > opts.retry_budget) {
        JobState& s = st[a.qi];
        s.outcome = JobOutcome::kPoisoned;
        s.completed_at = batch_clock.seconds();
        s.deadline_met = queue_[a.qi].request.deadline_seconds <= 0;
        verbose_line("[batch shard %d] job %llu poisoned after %d attempts\n",
                     color,
                     static_cast<unsigned long long>(
                         queue_[a.qi].request.job_id),
                     a.attempts);
        persist(ctx->sub, a.qi);
        return;
      }
      // Deterministic exponential backoff on the batch clock: retry k waits
      // backoff_ms * 2^(k-1). No wall-clock randomness — every rank of the
      // shard computes the same deadline.
      st[a.qi].outcome = JobOutcome::kRetrying;
      a.not_before =
          opts.backoff_ms > 0
              ? batch_clock.seconds() +
                    opts.backoff_ms * std::ldexp(1.0, a.attempts - 1) / 1000.0
              : 0;
      runq.push_back(a);
      persist(ctx->sub, a.qi);
    };

    // The per-job structured-error boundary: the heart of the fault
    // isolation. Each attempt either finalizes its job or requeues it; a
    // CommError / NonFiniteFieldError never propagates past this loop.
    while (healthy && !runq.empty()) {
      Attempt a = runq.front();
      runq.pop_front();
      const BatchJobSpec& spec = queue_[a.qi];
      JobData& jd = jobdata[a.qi];
      while (a.not_before > 0 && batch_clock.seconds() < a.not_before)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

      SolveRequest req = spec.request;
      if (jd.presmoothed) {
        req.rho_t = &jd.t_smooth;
        req.rho_r = &jd.r_smooth;
        req.options.smooth_inputs = false;
      } else {
        req.rho_t = jd.rho_t;
        req.rho_r = jd.rho_r;
      }
      if (jd.has_v0) {
        req.v0 = &jd.v0;
        if (jd.warm_gradient_reference > 0)
          req.options.gradient_reference = jd.warm_gradient_reference;
      }
      if (!st[a.qi].checkpoint.empty())
        req.checkpoint_path = st[a.qi].checkpoint;
      const double deadline = req.deadline_seconds;
      const bool enforce =
          opts.enforce_deadlines && deadline > 0 && !a.degraded;
      if (a.degraded) degrade_options(req.options);

      st[a.qi].attempts = ++a.attempts;
      st[a.qi].shard = color;

      try {
        if (enforce) {
          // Admission check: cancel before spending a solve when the
          // deadline already passed (a shard-collective decision, so every
          // rank takes the same branch).
          if (ctx->sub.allreduce_max(
                  batch_clock.seconds() > deadline ? 1.0 : 0.0) > 0.5)
            throw JobDeadlineError("deadline passed before admission");
          // Cancellation between Newton iterates: the hook throws on every
          // rank at the same iterate (the lateness vote is collective), so
          // the solve terminates cleanly on all ranks. Caller hooks keep
          // running first, mirroring the checkpoint chaining.
          auto caller_hook = req.options.iterate_hook;
          mpisim::Communicator vote = ctx->sub;
          req.options.iterate_hook =
              [caller_hook, vote, deadline,
               &batch_clock](const NewtonIterateInfo& info) mutable {
                if (caller_hook) caller_hook(info);
                if (vote.allreduce_max(
                        batch_clock.seconds() > deadline ? 1.0 : 0.0) > 0.5)
                  throw JobDeadlineError("deadline exceeded mid-solve");
              };
        }
        finalize_done(a, solver_for(spec).solve(req));
      } catch (const JobDeadlineError&) {
        if (opts.degrade && !a.degraded) {
          a.degraded = true;
          st[a.qi].outcome = JobOutcome::kRetrying;
          verbose_line(
              "[batch shard %d] job %llu past deadline, re-admitting "
              "degraded\n",
              color, static_cast<unsigned long long>(spec.request.job_id));
          runq.push_back(a);
        } else {
          JobState& s = st[a.qi];
          s.outcome = JobOutcome::kDeadlineExceeded;
          s.completed_at = batch_clock.seconds();
          s.deadline_met = false;
          verbose_line("[batch shard %d] job %llu cancelled past deadline\n",
                       color,
                       static_cast<unsigned long long>(spec.request.job_id));
          persist(ctx->sub, a.qi);
        }
      } catch (const grid::NonFiniteFieldError& e) {
        handle_fault(a, e.what());
      } catch (const mpisim::CommError& e) {
        handle_fault(a, e.what());
      }
    }

    // Round sync over the PARENT communicator: shard rank 0 contributes the
    // digest rows of this round's placements, every rank contributes its
    // shard-health vote, one allreduce assembles both tables identically on
    // every rank (this is also the cross-shard round barrier).
    constexpr int kCols = 12;
    std::vector<double> flat(
        static_cast<std::size_t>(njobs) * kCols + shards, 0.0);
    if (ctx->sub.rank() == 0) {
      for (int qi : my_assigned) {
        const JobState& s = st[qi];
        double* row = flat.data() + static_cast<std::size_t>(qi) * kCols;
        row[0] = s.shard;
        row[1] = s.converged;
        row[2] = s.newton_iters;
        row[3] = s.matvecs;
        row[4] = s.rel_residual;
        row[5] = s.min_det;
        row[6] = s.solve_seconds;
        row[7] = s.completed_at;
        row[8] = s.deadline_met ? 1 : 0;
        row[9] = static_cast<int>(s.outcome);
        row[10] = s.attempts;
        row[11] = 1;  // contributed
      }
    }
    // Health is voted by EVERY rank of the shard, not just rank 0: a rank
    // whose recovery attempt diverged from its peers must still force the
    // rebuild, or the shard would deadlock split between two beliefs.
    if (!healthy) flat[static_cast<std::size_t>(njobs) * kCols + color] = 1;
    comm_.allreduce_sum(flat);
    for (int j = 0; j < njobs; ++j) {
      const double* row = flat.data() + static_cast<std::size_t>(j) * kCols;
      if (row[11] < 0.5) continue;
      JobState& s = st[j];
      s.shard = static_cast<int>(row[0]);
      s.converged = row[1];
      s.newton_iters = row[2];
      s.matvecs = row[3];
      s.rel_residual = row[4];
      s.min_det = row[5];
      s.solve_seconds = row[6];
      s.completed_at = row[7];
      s.deadline_met = row[8] != 0;
      s.outcome = static_cast<JobOutcome>(static_cast<int>(row[9]));
      s.attempts = static_cast<int>(row[10]);
    }
    std::vector<char> shard_down(static_cast<std::size_t>(shards), 0);
    int down_count = 0;
    for (int s = 0; s < shards; ++s) {
      shard_down[static_cast<std::size_t>(s)] =
          flat[static_cast<std::size_t>(njobs) * kCols + s] > 0.5 ? 1 : 0;
      down_count += shard_down[static_cast<std::size_t>(s)];
    }

    const bool any_pending = std::any_of(
        st.begin(), st.end(),
        [](const JobState& s) { return !is_final(s.outcome); });
    if (!any_pending) break;
    if (round + 1 >= max_rounds) {
      // Out of failover rounds: whatever is still pending is poisoned — a
      // decision every rank reaches identically from the synced table.
      for (int j = 0; j < njobs; ++j) {
        if (is_final(st[j].outcome)) continue;
        st[j].outcome = JobOutcome::kPoisoned;
        st[j].deadline_met = queue_[j].request.deadline_seconds <= 0;
      }
      break;
    }

    // Failover: drain and rebuild every unhealthy shard — purge its
    // registry (plans and pooled transports are bound to the dead shard's
    // communicators), re-split the parent communicator, and start a fresh
    // registry. Healthy shards keep their warm context; the re-split is
    // collective, so they participate and drop the fresh communicator.
    if (down_count > 0) {
      out.shard_rebuilds += down_count;
      verbose_line("[batch shard %d] failover round %d: rebuilding %d "
                   "shard(s)\n",
                   color, round + 1, down_count);
      mpisim::Communicator fresh =
          shards == 1 ? comm_ : comm_.split(color);
      if (shard_down[static_cast<std::size_t>(color)]) {
        solvers.clear();  // solvers reference the purged registry's decomps
        jobdata.clear();
        ctx->registry->purge();
        if (shards == 1) comm_.recover_after_fault(recover_timeout);
        Shard rebuilt;
        rebuilt.sub = fresh;
        rebuilt.registry = std::make_shared<PlanRegistry>(fresh);
        shards_[shards] = std::move(rebuilt);
        ctx = &shards_[shards];
        healthy = true;
      }
    }
  }

  // Deformed templates: co-resident same-shape jobs run their final
  // transport lockstep through the fused exchange (one ghost exchange and
  // one value alltoallv per time step for the whole group). Faults here
  // degrade to per-job transports; a job whose deform still faults leaves
  // an empty field rather than failing the batch.
  const int jn = static_cast<int>(my_completed.size());
  if (opts.want_deformed) {
    out.deformed.resize(static_cast<std::size_t>(jn));
    bool deformed_ok = false;
    if (opts.fuse_exchanges) {
      try {
        for (int qi : my_completed) materialize(qi);
        std::map<
            std::tuple<index_t, index_t, index_t, int, int, int, int, int>,
            std::vector<int>>
            groups;
        for (int i = 0; i < jn; ++i) {
          const BatchJobSpec& spec = queue_[my_completed[i]];
          const semilag::TransportConfig tc =
              transport_config(spec.request.options);
          groups[{spec.dims[0], spec.dims[1], spec.dims[2], tc.nt,
                  static_cast<int>(tc.method), tc.incompressible ? 1 : 0,
                  static_cast<int>(tc.wire), tc.overlap ? 1 : 0}]
              .push_back(i);
        }
        for (auto& [key, members] : groups) {
          const int g = static_cast<int>(members.size());
          const BatchJobSpec& spec0 = queue_[my_completed[members[0]]];
          const semilag::TransportConfig tc =
              transport_config(spec0.request.options);
          auto decomp = ctx->registry->decomp(spec0.dims);
          std::vector<std::shared_ptr<semilag::Transport>> leased(g);
          std::vector<semilag::Transport*> transports(g);
          std::vector<const ScalarField*> templates(g);
          for (int q = 0; q < g; ++q) {
            const int qi = my_completed[members[q]];
            leased[q] = ctx->registry->acquire_transport(spec0.dims, tc);
            transports[q] = leased[q].get();
            transports[q]->set_velocity(my_reports[qi].velocity);
            templates[q] = jobdata[qi].rho_t;  // unsmoothed template
          }
          interp::FusedInterp fused(*decomp, tc.wire, tc.overlap);
          semilag::solve_states_fused(
              std::span<semilag::Transport* const>(transports),
              std::span<const ScalarField* const>(templates), fused);
          for (int q = 0; q < g; ++q) {
            out.deformed[static_cast<std::size_t>(members[q])] =
                transports[q]->final_state();
            ctx->registry->release_transport(spec0.dims, tc,
                                             std::move(leased[q]));
          }
        }
        deformed_ok = true;
      } catch (const grid::NonFiniteFieldError&) {
        ctx->registry->recover_after_fault(recover_timeout);
      } catch (const mpisim::CommError&) {
        ctx->registry->recover_after_fault(recover_timeout);
      }
    }
    if (!deformed_ok) {
      for (int i = 0; i < jn; ++i) {
        const int qi = my_completed[i];
        const BatchJobSpec& spec = queue_[qi];
        try {
          materialize(qi);
          solver_for(spec).deform_template(
              *jobdata[qi].rho_t, my_reports[qi].velocity,
              out.deformed[static_cast<std::size_t>(i)]);
        } catch (const grid::NonFiniteFieldError&) {
          ctx->registry->recover_after_fault(recover_timeout);
        } catch (const mpisim::CommError&) {
          ctx->registry->recover_after_fault(recover_timeout);
        }
      }
    }
  }

  // Full reports of my shard's jobs, in completion order, aligned with
  // out.deformed.
  out.reports.reserve(static_cast<std::size_t>(jn));
  for (int qi : my_completed) out.reports.push_back(std::move(my_reports[qi]));

  out.summary.resize(static_cast<std::size_t>(njobs));
  for (int j = 0; j < njobs; ++j) {
    const JobState& sj = st[j];
    BatchJobSummary& s = out.summary[static_cast<std::size_t>(j)];
    s.job_id = queue_[j].request.job_id;
    s.shard = sj.shard;
    s.ran_here = !sj.from_manifest && sj.shard == color;
    s.outcome = sj.outcome;
    s.attempts = sj.attempts;
    s.converged = sj.converged != 0;
    s.newton_iters = static_cast<int>(sj.newton_iters);
    s.matvecs = static_cast<int>(sj.matvecs);
    s.rel_residual = static_cast<real_t>(sj.rel_residual);
    s.min_det = static_cast<real_t>(sj.min_det);
    s.solve_seconds = sj.solve_seconds;
    s.completed_at_seconds = sj.completed_at;
    s.deadline_met = sj.deadline_met;
  }

  // Final manifest write: every job's terminal outcome, in one atomic
  // replace (the per-finalization updates make this mostly a no-op, but it
  // also records cap-poisoned jobs that never reached a shard update).
  if (manifest_on) {
    std::vector<BatchManifestEntry> all;
    all.reserve(static_cast<std::size_t>(njobs));
    for (int j = 0; j < njobs; ++j) all.push_back(manifest_entry(j));
    update_manifest(comm_, opts.manifest_path, all);
  }

  out.wall_seconds = comm_.allreduce_max(batch_clock.seconds());
  out.registrations_per_sec =
      out.wall_seconds > 0 ? njobs / out.wall_seconds : 0;
  out.registry = ctx->registry->stats();
  queue_.clear();
  return out;
}

}  // namespace diffreg::core
