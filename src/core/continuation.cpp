#include "core/continuation.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "core/checkpoint.hpp"
#include "spectral/resample.hpp"

namespace diffreg::core {

namespace {

/// Grid hierarchy, finest first: repeated halving (odd dims round up) until
/// the level budget or the coarsest-dim floor is exhausted.
std::vector<Int3> build_level_dims(const Int3& fine, int levels,
                                   index_t coarsest_dim) {
  std::vector<Int3> dims{fine};
  while (static_cast<int>(dims.size()) < levels) {
    const Int3 next = spectral::coarsen_dims(dims.back(), coarsest_dim);
    if (next == dims.back()) break;
    dims.push_back(next);
  }
  return dims;
}

MultilevelLevelReport make_level_report(const Int3& dims, real_t beta,
                                        const RegistrationResult& result,
                                        double seconds) {
  MultilevelLevelReport rep;
  rep.dims = dims;
  rep.beta = beta;
  rep.newton_iterations = result.newton.iterations;
  rep.matvecs = result.newton.total_matvecs;
  rep.converged = result.newton.converged;
  rep.rel_residual = result.rel_residual;
  rep.min_det = result.min_det;
  rep.time_seconds = seconds;
  return rep;
}

}  // namespace

ContinuationResult run_beta_continuation(RegistrationSolver& solver,
                                         const ScalarField& rho_t,
                                         const ScalarField& rho_r,
                                         const ContinuationOptions& copt) {
  ContinuationResult out;
  // Per-stage parameters ride the request; the solver's own options are
  // never touched (no restore guard needed on any exit path).
  RegistrationOptions stage_opt = solver.options();
  real_t beta = copt.beta_start;
  const VectorField* warm_start = nullptr;

  for (int stage = 0; stage < copt.max_stages; ++stage) {
    stage_opt.beta = beta;
    SolveRequest req;
    req.rho_t = &rho_t;
    req.rho_r = &rho_r;
    req.v0 = warm_start;
    req.options = stage_opt;
    RegistrationResult result = solver.solve(req);
    // ||g(0)|| is beta-independent (the quadratic regularizer's gradient
    // vanishes at v = 0): the cold first stage measures it, later
    // warm-started stages reuse it instead of re-solving state + adjoint.
    if (warm_start == nullptr) {
      out.gradient_reference = result.newton.initial_gradient_norm;
      stage_opt.gradient_reference = out.gradient_reference;
    }

    out.stage_betas.push_back(beta);
    out.stage_residuals.push_back(result.rel_residual);
    out.stage_min_dets.push_back(result.min_det);
    ++out.stages;

    const bool admissible = result.min_det > copt.min_det_bound;
    // The first stage is kept even when inadmissible (flagged below), so
    // callers never receive a default-constructed result with an empty
    // velocity and final_beta = 0.
    if (admissible || stage == 0) {
      out.best = std::move(result);
      out.admissible = admissible;
      out.final_beta = beta;
      warm_start = admissible ? &out.best.velocity : nullptr;
    }
    if (!admissible || beta <= copt.beta_target) break;
    beta = std::max(copt.beta_target, beta / copt.reduction_factor);
  }
  return out;
}

MultilevelResult run_multilevel_continuation(grid::PencilDecomp& fine_decomp,
                                             const RegistrationOptions& opt,
                                             const ScalarField& rho_t,
                                             const ScalarField& rho_r,
                                             const MultilevelOptions& mopt) {
  if (mopt.levels < 1)
    throw std::invalid_argument(
        "run_multilevel_continuation: levels must be >= 1");
  if (mopt.checkpoint_every > 0 && mopt.checkpoint_path.empty())
    throw std::invalid_argument(
        "run_multilevel_continuation: checkpoint_every > 0 needs a "
        "checkpoint_path");
  const std::vector<Int3> level_dims =
      build_level_dims(fine_decomp.dims(), mopt.levels, mopt.coarsest_dim);
  const int nlevels = static_cast<int>(level_dims.size());

  MultilevelResult out;

  // Decompositions share the fine process grid so every transfer is a pure
  // layout remap (level 0 borrows the caller's decomposition).
  std::vector<std::unique_ptr<grid::PencilDecomp>> owned;
  std::vector<grid::PencilDecomp*> decomps{&fine_decomp};
  for (int k = 1; k < nlevels; ++k) {
    owned.push_back(std::make_unique<grid::PencilDecomp>(
        fine_decomp.comm(), level_dims[k], fine_decomp.p1(),
        fine_decomp.p2()));
    decomps.push_back(owned.back().get());
  }

  // Smooth once on the fine grid (exactly what RegistrationSolver would do)
  // and restrict the smoothed images: spectral truncation keeps the coarser
  // levels alias free on its own, and solving the SAME band-truncated
  // problem on every level is what makes carrying ||g(0)|| across levels
  // valid — re-smoothing per level at that level's cell size would shrink
  // the coarse gradient and corrupt the carried reference.
  RegistrationOptions base = opt;
  std::vector<ScalarField> rho_ts(nlevels), rho_rs(nlevels);
  if (opt.smooth_inputs && nlevels > 1) {
    spectral::SpectralOps fine_ops(fine_decomp);
    const Int3 fd = fine_decomp.dims();
    const Vec3 sigma{opt.smoothing_cells * kTwoPi / fd[0],
                     opt.smoothing_cells * kTwoPi / fd[1],
                     opt.smoothing_cells * kTwoPi / fd[2]};
    fine_ops.gaussian_smooth(rho_t, sigma, rho_ts[0]);
    fine_ops.gaussian_smooth(rho_r, sigma, rho_rs[0]);
    base.smooth_inputs = false;
  } else {
    rho_ts[0] = rho_t;
    rho_rs[0] = rho_r;
  }

  // Cascade image restriction: both images of a transition share one
  // batched 2-component transfer (5 exchanges per level).
  for (int k = 1; k < nlevels; ++k) {
    spectral::ResamplePlan plan(*decomps[k - 1], *decomps[k], opt.wire());
    const index_t n = decomps[k]->local_real_size();
    rho_ts[k].resize(n);
    rho_rs[k].resize(n);
    const real_t* ins[2] = {rho_ts[k - 1].data(), rho_rs[k - 1].data()};
    real_t* outs[2] = {rho_ts[k].data(), rho_rs[k].data()};
    plan.apply_many(std::span<const real_t* const>(ins, 2),
                    std::span<real_t* const>(outs, 2));
  }

  auto scheduled_beta = [&](int k) {  // k = 0 is the finest level
    if (mopt.level_betas.empty()) return opt.beta;
    const int i = std::min<int>(nlevels - 1 - k,
                                static_cast<int>(mopt.level_betas.size()) - 1);
    return mopt.level_betas[i];
  };

  real_t beta_override = -1;  // set by the coarse beta continuation

  // Resume: locate the checkpoint's pyramid level and restore the carried
  // solver state. All checkpoint reads are collective and converge on
  // errors, so a bad file throws CheckpointError on every rank.
  int resume_level = -1;
  int resume_base_iters = 0;
  real_t resume_beta = 0;
  VectorField resume_v;
  if (!mopt.resume_path.empty()) {
    const CheckpointHeader hdr =
        read_checkpoint_header(fine_decomp.comm(), mopt.resume_path);
    if (!(hdr.fine_dims == fine_decomp.dims()))
      throw CheckpointError(
          "checkpoint fine grid does not match this run: " +
          mopt.resume_path);
    for (int k = 0; k < nlevels; ++k)
      if (hdr.level_dims == level_dims[k]) {
        resume_level = k;
        break;
      }
    if (resume_level < 0)
      throw CheckpointError(
          "checkpoint level matches no level of this pyramid: " +
          mopt.resume_path);
    out.gradient_reference = hdr.gradient_reference;
    out.admissible = hdr.admissible;
    if (hdr.beta_override > 0) beta_override = hdr.beta_override;
    resume_base_iters = hdr.newton_iters_done;
    resume_beta = hdr.beta;
    resume_v =
        read_checkpoint_velocity(*decomps[resume_level], mopt.resume_path);
  }

  RegistrationResult prev;  // result of the level below the current one
  for (int k = nlevels - 1; k >= 0; --k) {
    // Levels coarser than the checkpoint already ran before the kill.
    if (resume_level >= 0 && k > resume_level) continue;
    const bool resuming_here = resume_level == k;

    RegistrationOptions lopt = base;
    lopt.beta = resuming_here
                    ? resume_beta
                    : (beta_override > 0 ? beta_override : scheduled_beta(k));
    lopt.gradient_reference = out.gradient_reference;

    // Periodic in-level checkpoints ride the accepted-iterate hook (chained
    // with any caller-installed hook, which runs first — a kill that fires
    // from the user hook leaves the previous checkpoint in place). A
    // coarsest level running the beta continuation only checkpoints at
    // level end: its intermediate stages are warm starts, not resumable
    // Newton state.
    const bool coarse_cont = k == nlevels - 1 &&
                             mopt.coarse_beta_cont.has_value() &&
                             !resuming_here;
    const int base_iters = resuming_here ? resume_base_iters : 0;
    if (mopt.checkpoint_every > 0 && !coarse_cont) {
      const real_t level_beta = lopt.beta;
      const Int3 ldims = level_dims[k];
      grid::PencilDecomp* const ldecomp = decomps[k];
      const auto user_hook = base.iterate_hook;
      lopt.iterate_hook = [&, level_beta, ldims, ldecomp, base_iters,
                           user_hook](const NewtonIterateInfo& info) {
        if (user_hook) user_hook(info);
        if ((base_iters + info.iterates_done) % mopt.checkpoint_every != 0)
          return;
        CheckpointHeader hdr;
        hdr.fine_dims = fine_decomp.dims();
        hdr.level_dims = ldims;
        hdr.beta = level_beta;
        hdr.beta_override = beta_override;
        hdr.gradient_reference = out.gradient_reference > 0
                                     ? out.gradient_reference
                                     : info.gradient_reference;
        hdr.admissible = out.admissible;
        hdr.newton_iters_done = base_iters + info.iterates_done;
        write_checkpoint(*ldecomp, hdr, *info.velocity,
                         mopt.checkpoint_path);
      };
    }
    RegistrationSolver solver(*decomps[k], lopt);

    WallTimer wall;
    RegistrationResult result;
    if (resuming_here) {
      // Warm-restart the interrupted level from the stored iterate. The
      // carried gradient_reference keeps the stopping target identical, so
      // this replays exactly the iterates the killed run never finished
      // (level-end checkpoints replay zero: the warm start is already
      // converged).
      result = solver.run(rho_ts[k], rho_rs[k], &resume_v);
      result.newton.iterations += base_iters;
      if (k == nlevels - 1) out.coarsest = result;
    } else if (k == nlevels - 1) {
      if (mopt.coarse_beta_cont.has_value()) {
        ContinuationResult cont = run_beta_continuation(
            solver, rho_ts[k], rho_rs[k], *mopt.coarse_beta_cont);
        out.admissible = cont.admissible;
        out.gradient_reference = cont.gradient_reference;
        beta_override = cont.final_beta;
        lopt.beta = cont.final_beta;  // for the report below
        result = std::move(cont.best);
      } else {
        result = solver.run(rho_ts[k], rho_rs[k]);
        out.gradient_reference = result.newton.initial_gradient_norm;
      }
      out.coarsest = result;
    } else {
      // Warm-start prolongation honors the precision policy like every
      // other transfer (the one-shot spectral_resample helper would build
      // a default fp64-wire plan).
      spectral::ResamplePlan prolong(*decomps[k + 1], *decomps[k],
                                     opt.wire());
      VectorField v0;
      prolong.apply(prev.velocity, v0);
      result = solver.run(rho_ts[k], rho_rs[k], &v0);
    }
    out.levels.push_back(
        make_level_report(level_dims[k], lopt.beta, result, wall.seconds()));
    out.final_beta = lopt.beta;

    // Level-end checkpoint: marks the level complete (a resume from it
    // replays nothing here and moves on to the prolongation).
    if (mopt.checkpoint_every > 0) {
      CheckpointHeader hdr;
      hdr.fine_dims = fine_decomp.dims();
      hdr.level_dims = level_dims[k];
      hdr.beta = lopt.beta;
      hdr.beta_override = beta_override;
      hdr.gradient_reference = out.gradient_reference;
      hdr.admissible = out.admissible;
      hdr.newton_iters_done = result.newton.iterations;
      write_checkpoint(*decomps[k], hdr, result.velocity,
                       mopt.checkpoint_path);
    }

    if (k == 0)
      out.fine = std::move(result);
    else
      prev = std::move(result);
  }
  return out;
}

GridContinuationResult run_grid_continuation(grid::PencilDecomp& fine_decomp,
                                             const RegistrationOptions& opt,
                                             const ScalarField& rho_t,
                                             const ScalarField& rho_r) {
  MultilevelOptions mopt;
  mopt.levels = 2;
  // Legacy behavior: exactly one halving, no floor beyond what keeps the
  // grid a valid FFT size.
  mopt.coarsest_dim = 2;
  MultilevelResult ml =
      run_multilevel_continuation(fine_decomp, opt, rho_t, rho_r, mopt);
  GridContinuationResult out;
  out.coarse = std::move(ml.coarsest);
  out.fine = std::move(ml.fine);
  return out;
}

}  // namespace diffreg::core
