#include "core/continuation.hpp"

#include <stdexcept>

#include "spectral/resample.hpp"

namespace diffreg::core {

ContinuationResult run_beta_continuation(RegistrationSolver& solver,
                                         const ScalarField& rho_t,
                                         const ScalarField& rho_r,
                                         const ContinuationOptions& copt) {
  ContinuationResult out;
  real_t beta = copt.beta_start;
  const VectorField* warm_start = nullptr;

  for (int stage = 0; stage < copt.max_stages; ++stage) {
    solver.mutable_options().beta = beta;
    RegistrationResult result = solver.run(rho_t, rho_r, warm_start);
    // ||g(0)|| is beta-independent (the quadratic regularizer's gradient
    // vanishes at v = 0): the cold first stage measures it, later
    // warm-started stages reuse it instead of re-solving state + adjoint.
    if (warm_start == nullptr)
      solver.mutable_options().gradient_reference =
          result.newton.initial_gradient_norm;

    out.stage_betas.push_back(beta);
    out.stage_residuals.push_back(result.rel_residual);
    out.stage_min_dets.push_back(result.min_det);
    ++out.stages;

    const bool admissible = result.min_det > copt.min_det_bound;
    if (admissible) {
      out.best = std::move(result);
      out.final_beta = beta;
      warm_start = &out.best.velocity;
    }
    if (!admissible || beta <= copt.beta_target) break;
    beta = std::max(copt.beta_target, beta / copt.reduction_factor);
  }
  return out;
}

GridContinuationResult run_grid_continuation(grid::PencilDecomp& fine_decomp,
                                             const RegistrationOptions& opt,
                                             const ScalarField& rho_t,
                                             const ScalarField& rho_r) {
  const Int3 fd = fine_decomp.dims();
  if (fd[0] % 2 || fd[1] % 2 || fd[2] % 2)
    throw std::invalid_argument(
        "run_grid_continuation: fine grid dims must be even");
  const Int3 cd{fd[0] / 2, fd[1] / 2, fd[2] / 2};

  GridContinuationResult out;
  {
    grid::PencilDecomp coarse_decomp(fine_decomp.comm(), cd,
                                     fine_decomp.p1(), fine_decomp.p2());
    auto rho_t_c = spectral::spectral_resample(fine_decomp, rho_t,
                                               coarse_decomp);
    auto rho_r_c = spectral::spectral_resample(fine_decomp, rho_r,
                                               coarse_decomp);
    RegistrationSolver coarse_solver(coarse_decomp, opt);
    out.coarse = coarse_solver.run(rho_t_c, rho_r_c);

    VectorField v0 = spectral::spectral_resample(
        coarse_decomp, out.coarse.velocity, fine_decomp);
    RegistrationSolver fine_solver(fine_decomp, opt);
    out.fine = fine_solver.run(rho_t, rho_r, &v0);
  }
  return out;
}

}  // namespace diffreg::core
