// RegistrationSolver: the public facade of the library.
//
// Given pencil-local blocks of a template image rho_T and a reference image
// rho_R it runs the full pipeline of the paper: spectral smoothing of the
// inputs, velocity initialization, inexact Gauss-Newton-Krylov optimization
// of the optimal-control problem (2), and deformation-map diagnostics.
//
// Usage (inside an mpisim::run_spmd rank, or with a size-1 communicator):
//
//   grid::PencilDecomp decomp(comm, {64, 64, 64});
//   core::RegistrationOptions opt;
//   core::RegistrationSolver solver(decomp, opt);
//   auto result = solver.run(rho_t_local, rho_r_local);
#pragma once

#include <memory>

#include "core/deformation.hpp"
#include "core/newton.hpp"
#include "core/optimality.hpp"
#include "core/options.hpp"

namespace diffreg::core {

struct RegistrationResult {
  VectorField velocity;  // optimal stationary velocity field
  NewtonReport newton;
  /// Coarse-grid Hessian matvecs spent inside the two-level preconditioner
  /// (0 unless options.two_level_precond).
  int coarse_matvecs = 0;

  // Image mismatch, as L2 norms of the residual (paper Figs. 1/6/7).
  real_t initial_residual_norm = 0;  // ||rho_T - rho_R||
  real_t final_residual_norm = 0;    // ||rho_T(y1) - rho_R||
  /// final/initial; < 1 means the registration reduced the mismatch.
  real_t rel_residual = 1;

  // Deformation-map quality (paper Fig. 7: det must stay positive).
  real_t min_det = 0, max_det = 0, mean_det = 0;

  double time_to_solution = 0;  // seconds, this rank's wall clock
  Timings timings;              // this rank's comm/exec split of the solve
};

class RegistrationSolver {
 public:
  RegistrationSolver(grid::PencilDecomp& decomp,
                     const RegistrationOptions& options);

  /// Solves the registration problem. `v0` optionally warm-starts the
  /// velocity (used by beta continuation). Collective.
  RegistrationResult run(const ScalarField& rho_t, const ScalarField& rho_r,
                         const VectorField* v0 = nullptr);

  /// Deformed template rho_T(y1) for the result's velocity: transports the
  /// (unsmoothed) template to t = 1. Collective.
  void deform_template(const ScalarField& rho_t, const VectorField& velocity,
                       ScalarField& deformed);

  /// Pointwise det(grad y1) field for a velocity (paper Fig. 7 map).
  void jacobian_field(const VectorField& velocity, ScalarField& det);

  const RegistrationOptions& options() const { return options_; }
  /// Mutable access for drivers that adapt parameters between runs
  /// (beta continuation).
  RegistrationOptions& mutable_options() { return options_; }
  spectral::SpectralOps& ops() { return *ops_; }
  grid::PencilDecomp& decomp() { return *decomp_; }

 private:
  void preprocess(const ScalarField& in, ScalarField& out);

  grid::PencilDecomp* decomp_;
  RegistrationOptions options_;
  std::unique_ptr<spectral::SpectralOps> ops_;
};

}  // namespace diffreg::core
