// RegistrationSolver: the public facade of the library.
//
// Given pencil-local blocks of a template image rho_T and a reference image
// rho_R it runs the full pipeline of the paper: spectral smoothing of the
// inputs, velocity initialization, inexact Gauss-Newton-Krylov optimization
// of the optimal-control problem (2), and deformation-map diagnostics.
//
// The one entrypoint shape is a SolveRequest: inputs + per-solve options +
// job metadata (id, priority, deadline, checkpoint path). Every solve is a
// pure function of its request — the solver holds no mutable option state,
// so drivers that adapt parameters between solves (beta continuation, the
// batch service) submit a fresh request per stage instead of mutating the
// solver. `run(rho_t, rho_r, v0)` stays as a thin convenience wrapper that
// solves a request built from the constructor options.
//
// Usage (inside an mpisim::run_spmd rank, or with a size-1 communicator):
//
//   grid::PencilDecomp decomp(comm, {64, 64, 64});
//   core::RegistrationOptions opt;
//   core::RegistrationSolver solver(decomp, opt);
//   auto result = solver.run(rho_t_local, rho_r_local);
//
// With a PlanRegistry (the batch service path), the solver leases its
// spectral operators and pools its transports instead of owning them, so B
// same-shape jobs build each plan family exactly once:
//
//   auto registry = std::make_shared<core::PlanRegistry>(comm);
//   core::RegistrationSolver solver(*registry->decomp(dims), opt, registry);
//   auto report = solver.solve(request);
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/deformation.hpp"
#include "core/newton.hpp"
#include "core/optimality.hpp"
#include "core/options.hpp"

namespace diffreg::core {

class PlanRegistry;

/// One registration job: everything a solve needs, in one value. The field
/// pointers must stay valid for the duration of solve(); the request itself
/// is copyable (job queues hold them by value).
struct SolveRequest {
  const ScalarField* rho_t = nullptr;  ///< Template image (pencil-local).
  const ScalarField* rho_r = nullptr;  ///< Reference image (pencil-local).
  const VectorField* v0 = nullptr;     ///< Optional warm-start velocity.
  RegistrationOptions options;

  // Job metadata (service semantics; see docs/SERVICE.md).
  std::uint64_t job_id = 0;  ///< 0: assigned by the batch driver.
  /// Higher runs earlier; FIFO within a priority class.
  int priority = 0;
  /// Wall-clock budget in seconds since batch start (0: none). Advisory by
  /// default — SolveReport::deadline_met records whether the job finished
  /// in time — but BatchSolver cancels late jobs between Newton iterates
  /// when BatchOptions::enforce_deadlines is set (the CLI service does).
  double deadline_seconds = 0;
  /// When non-empty, a restart checkpoint is written after every
  /// `checkpoint_every`-th accepted Newton iterate (core/checkpoint.hpp).
  std::string checkpoint_path;
  int checkpoint_every = 1;
};

struct RegistrationResult {
  VectorField velocity;  // optimal stationary velocity field
  NewtonReport newton;
  /// Coarse-grid Hessian matvecs spent inside the two-level preconditioner
  /// (0 unless options.two_level_precond).
  int coarse_matvecs = 0;

  // Image mismatch, as L2 norms of the residual (paper Figs. 1/6/7).
  real_t initial_residual_norm = 0;  // ||rho_T - rho_R||
  real_t final_residual_norm = 0;    // ||rho_T(y1) - rho_R||
  /// final/initial; < 1 means the registration reduced the mismatch.
  real_t rel_residual = 1;

  // Deformation-map quality (paper Fig. 7: det must stay positive).
  real_t min_det = 0, max_det = 0, mean_det = 0;

  double time_to_solution = 0;  // seconds, this rank's wall clock
  Timings timings;              // this rank's comm/exec split of the solve

  // Job metadata, echoed from the SolveRequest.
  std::uint64_t job_id = 0;
  /// False iff the request carried a deadline and the solve finished after
  /// it (measured against the batch clock when run by BatchSolver, against
  /// this solve's own wall clock otherwise).
  bool deadline_met = true;
};

/// The batch driver's name for the result of one job.
using SolveReport = RegistrationResult;

class RegistrationSolver {
 public:
  /// Standalone solver: owns its spectral operators (built once from the
  /// constructor options) and builds a fresh transport per solve — the
  /// historical behavior, bitwise identical to it.
  RegistrationSolver(grid::PencilDecomp& decomp,
                     const RegistrationOptions& options);

  /// Service solver: leases spectral operators from `registry` and checks
  /// transports out of its pool, so plan setup is shared across all solvers
  /// and jobs on the registry. `decomp` must be (a lease of) the registry's
  /// decomposition for its dims.
  RegistrationSolver(grid::PencilDecomp& decomp,
                     const RegistrationOptions& options,
                     std::shared_ptr<PlanRegistry> registry);

  ~RegistrationSolver();

  /// Solves one registration job. Collective.
  SolveReport solve(const SolveRequest& request);

  /// Convenience wrapper: solves a request built from the constructor
  /// options. `v0` optionally warm-starts the velocity (used by beta
  /// continuation). Collective.
  RegistrationResult run(const ScalarField& rho_t, const ScalarField& rho_r,
                         const VectorField* v0 = nullptr);

  /// Deformed template rho_T(y1) for the result's velocity: transports the
  /// (unsmoothed) template to t = 1. Collective.
  void deform_template(const ScalarField& rho_t, const VectorField& velocity,
                       ScalarField& deformed);

  /// Pointwise det(grad y1) field for a velocity (paper Fig. 7 map).
  void jacobian_field(const VectorField& velocity, ScalarField& det);

  const RegistrationOptions& options() const { return options_; }
  spectral::SpectralOps& ops() { return *ops_; }
  grid::PencilDecomp& decomp() { return *decomp_; }

 private:
  void preprocess(const ScalarField& in, ScalarField& out,
                  const RegistrationOptions& opt);
  /// Points ops_ at operators for (wire, overlap): the constructor-built
  /// (or registry-leased) set when the request matches it, a rebuilt/newly
  /// leased set otherwise.
  void ensure_ops(WirePrecision wire, bool overlap);
  semilag::TransportConfig transport_config(
      const RegistrationOptions& opt) const;

  grid::PencilDecomp* decomp_;
  RegistrationOptions options_;
  std::shared_ptr<PlanRegistry> registry_;  // null for standalone solvers
  std::shared_ptr<spectral::SpectralOps> ops_;
  WirePrecision ops_wire_;
  bool ops_overlap_;
};

}  // namespace diffreg::core
