// Deformation-map diagnostics (paper Figs. 2 and 7): the map y = x + u with
// the displacement u from eq. (1), and the pointwise determinant of the
// deformation gradient det(grad y) = det(I + grad u). det > 0 everywhere
// certifies that the computed map is diffeomorphic; det == 1 means the map
// is locally volume preserving.
#pragma once

#include "semilag/transport.hpp"
#include "spectral/operators.hpp"

namespace diffreg::core {

using grid::ScalarField;
using grid::VectorField;

struct DeformationAnalysis {
  VectorField displacement;  // u(x, 1); y1 = x + u
  ScalarField det_grad_y;    // pointwise det(grad y1)
  real_t min_det = 0;
  real_t max_det = 0;
  real_t mean_det = 0;
};

/// Computes the deformation map of the transport's current velocity and its
/// Jacobian-determinant statistics. Collective.
DeformationAnalysis analyze_deformation(spectral::SpectralOps& ops,
                                        semilag::Transport& transport);

/// det(I + grad u) for a given displacement (also used by tests).
void jacobian_determinant(spectral::SpectralOps& ops, const VectorField& u,
                          ScalarField& det);

/// Global min/max/mean of a pointwise determinant field, written into
/// `out.{min,max,mean}_det`. The local reductions are seeded with the +-inf
/// identities, so ranks whose local block is empty (a decomposition with
/// more parts than slabs along one axis) cannot bias the extrema.
/// Collective.
void reduce_determinant_stats(grid::PencilDecomp& decomp,
                              const ScalarField& det,
                              DeformationAnalysis& out);

}  // namespace diffreg::core
