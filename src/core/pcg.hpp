// Matrix-free preconditioned conjugate gradient for the Newton step
// (paper section III-A: "we use a preconditioned Conjugate-Gradient method
// to compute the Newton step... done inexactly with a tolerance that depends
// on the relative norm of the gradient").
//
// Two precision variants share the PcgResult contract:
//  * pcg_solve       — the historical all-fp64 recurrence.
//  * pcg_solve_mixed — the CLAIRE-style inner loop: the Krylov work vectors
//    (x, r, z, p, Ap) are STORED fp32 and the recurrence updates run at
//    fp32, while every dot product/norm accumulates in fp64 and the
//    operator applies (Hessian matvec, preconditioner) run through fp64
//    staging fields — so the heavy spectral/transport pipeline is reused
//    unchanged (with its own fp32 wire format when enabled). The Newton
//    step this returns is a *search direction*: the outer loop re-computes
//    the true fp64 gradient at every iterate and line-searches in fp64, the
//    iterative-refinement structure that makes the reduced inner precision
//    safe (Mang et al. 2019, Brunn et al. 2020 observe no loss in
//    registration accuracy).
#pragma once

#include <functional>

#include "grid/field_math.hpp"

namespace diffreg::core {

using grid::VectorField;
using grid::VectorField32;

struct PcgResult {
  int iterations = 0;
  bool converged = false;
  real_t rel_residual = 1;
  /// True when a direction of non-positive curvature was encountered (the
  /// solve returns the best iterate so far, standard in truncated Newton).
  bool negative_curvature = false;
  /// True when the recurrence broke down numerically (a NaN/Inf or negative
  /// inner product): the solve stops with the last finite iterate — or the
  /// preconditioned gradient when it happened on the first sweep — instead
  /// of iterating on garbage. Detection is a scalar isfinite check on inner
  /// products the recurrence computes anyway, so the healthy path is
  /// bitwise unchanged.
  bool breakdown = false;
};

/// Caller-owned scratch of one PCG solve. Reusing a workspace across solves
/// of the same size keeps the hot paths allocation free — the Newton driver
/// holds one across its iterations, and the two-level preconditioner holds
/// one for its inner coarse-grid sweeps.
struct PcgWorkspace {
  VectorField r, z, p, ap;
};

using ApplyFn = std::function<void(const VectorField&, VectorField&)>;

/// Solves A x = b to a relative (preconditioned) residual `rtol`, starting
/// from x = 0 (pass rtol = 0 to always run `max_iters` sweeps — the fixed
/// iteration count inner solves of a nested preconditioner want). `apply_a`
/// must be SPD on the subspace explored; `apply_m` is the preconditioner
/// (approximate inverse of A). Collective.
PcgResult pcg_solve(grid::PencilDecomp& decomp, const ApplyFn& apply_a,
                    const ApplyFn& apply_m, const VectorField& b,
                    VectorField& x, real_t rtol, int max_iters,
                    PcgWorkspace& ws);

/// Convenience overload owning a transient workspace (allocates).
PcgResult pcg_solve(grid::PencilDecomp& decomp, const ApplyFn& apply_a,
                    const ApplyFn& apply_m, const VectorField& b,
                    VectorField& x, real_t rtol, int max_iters);

/// Caller-owned scratch of one mixed-precision PCG solve: fp32 storage for
/// the recurrence vectors plus two fp64 fields that stage the operator
/// applies. Roughly 60% of the fp64 workspace footprint.
struct PcgWorkspace32 {
  VectorField32 x, r, z, p, ap;
  VectorField wide_in, wide_out;
};

/// Mixed-precision PCG (see the header comment): same contract as
/// pcg_solve — b and the returned x are fp64 — but the Krylov iteration
/// runs on fp32 fields with fp64 dot-product accumulation. Collective.
PcgResult pcg_solve_mixed(grid::PencilDecomp& decomp, const ApplyFn& apply_a,
                          const ApplyFn& apply_m, const VectorField& b,
                          VectorField& x, real_t rtol, int max_iters,
                          PcgWorkspace32& ws);

}  // namespace diffreg::core
