// Matrix-free preconditioned conjugate gradient for the Newton step
// (paper section III-A: "we use a preconditioned Conjugate-Gradient method
// to compute the Newton step... done inexactly with a tolerance that depends
// on the relative norm of the gradient").
#pragma once

#include <functional>

#include "grid/field_math.hpp"

namespace diffreg::core {

using grid::VectorField;

struct PcgResult {
  int iterations = 0;
  bool converged = false;
  real_t rel_residual = 1;
  /// True when a direction of non-positive curvature was encountered (the
  /// solve returns the best iterate so far, standard in truncated Newton).
  bool negative_curvature = false;
};

/// Caller-owned scratch of one PCG solve. Reusing a workspace across solves
/// of the same size keeps the hot paths allocation free — the Newton driver
/// holds one across its iterations, and the two-level preconditioner holds
/// one for its inner coarse-grid sweeps.
struct PcgWorkspace {
  VectorField r, z, p, ap;
};

using ApplyFn = std::function<void(const VectorField&, VectorField&)>;

/// Solves A x = b to a relative (preconditioned) residual `rtol`, starting
/// from x = 0 (pass rtol = 0 to always run `max_iters` sweeps — the fixed
/// iteration count inner solves of a nested preconditioner want). `apply_a`
/// must be SPD on the subspace explored; `apply_m` is the preconditioner
/// (approximate inverse of A). Collective.
PcgResult pcg_solve(grid::PencilDecomp& decomp, const ApplyFn& apply_a,
                    const ApplyFn& apply_m, const VectorField& b,
                    VectorField& x, real_t rtol, int max_iters,
                    PcgWorkspace& ws);

/// Convenience overload owning a transient workspace (allocates).
PcgResult pcg_solve(grid::PencilDecomp& decomp, const ApplyFn& apply_a,
                    const ApplyFn& apply_m, const VectorField& b,
                    VectorField& x, real_t rtol, int max_iters);

}  // namespace diffreg::core
