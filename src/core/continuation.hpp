// Parameter and grid continuation (paper section III-A: "since the problem
// is highly nonlinear we use parameter continuation on beta"; section I,
// Limitations: "grid continuation and multilevel preconditioning").
//
// Two composable drivers:
//  * run_beta_continuation — solve a heavily regularized problem first, then
//    repeatedly reduce beta, warm-starting the velocity, until either the
//    target beta is reached or the deformation map would leave the
//    admissible set (min det(grad y) below a bound).
//  * run_multilevel_continuation — an N-level coarse-to-fine grid pyramid:
//    the images are spectrally restricted down a hierarchy of grids (odd
//    dims supported), the coarsest level is solved cold (optionally with a
//    full beta continuation to find the smallest admissible beta cheaply),
//    and each finer level is warm-started with the spectrally prolonged
//    velocity of the level below. ||g(0)|| measured on the coarsest level is
//    carried up as the gradient reference, so no finer level pays the extra
//    state+adjoint solves a warm start would otherwise trigger.
#pragma once

#include <optional>
#include <vector>

#include "core/registration.hpp"

namespace diffreg::core {

struct ContinuationOptions {
  real_t beta_start = 1;
  real_t beta_target = 1e-3;
  real_t reduction_factor = 10;
  /// Admissibility bound on det(grad y) (paper: metrics on grad y1 determine
  /// the target beta); below it the previous stage's result is kept.
  real_t min_det_bound = 0.1;
  int max_stages = 8;
};

struct ContinuationResult {
  /// Last admissible stage — or the first stage when even it violated the
  /// det bound (flagged by `admissible`); never a default-constructed
  /// placeholder, so callers always get a usable velocity field.
  RegistrationResult best;
  /// True when `best` satisfies the min-det admissibility bound.
  bool admissible = false;
  real_t final_beta = 0;  // beta of `best`
  /// ||g(0)|| measured by the cold first stage (beta-independent on a fixed
  /// grid); multilevel drivers carry it across levels.
  real_t gradient_reference = 0;
  std::vector<real_t> stage_betas;
  std::vector<real_t> stage_residuals;  // rel_residual per stage
  std::vector<real_t> stage_min_dets;
  int stages = 0;
};

/// Runs the continuation schedule on `solver`. Per-stage parameters (beta,
/// gradient_reference) are passed explicitly through each stage's
/// SolveRequest — the solver's own options are never mutated, so the
/// caller's beta and gradient_reference are trivially unchanged after
/// return. Collective.
ContinuationResult run_beta_continuation(RegistrationSolver& solver,
                                         const ScalarField& rho_t,
                                         const ScalarField& rho_r,
                                         const ContinuationOptions& copt);

struct MultilevelOptions {
  /// Total pyramid depth including the finest grid; 1 = plain cold solve.
  /// Fewer levels are run when the coarsest-dim floor is reached first.
  int levels = 3;
  /// No axis is coarsened below this many points (it should stay >= the
  /// process-grid extents so every rank keeps a nonempty block).
  index_t coarsest_dim = 8;
  /// Per-level beta schedule, coarsest level first; when shorter than the
  /// pyramid the last entry is reused, when empty the RegistrationOptions
  /// beta is used on every level.
  std::vector<real_t> level_betas;
  /// When set, the coarsest level runs a full beta continuation instead of a
  /// single solve, and its final (admissible) beta is used on every finer
  /// level — the cheap coarse grid determines how far beta can be pushed.
  std::optional<ContinuationOptions> coarse_beta_cont;

  // Checkpoint/restart (core/checkpoint.hpp, docs/FAULT_MODEL.md). With
  // checkpoint_every = N > 0 a checkpoint is written to checkpoint_path
  // after every N-th accepted Newton iterate and at the end of every level
  // (atomically: a crash mid-write keeps the previous one). A coarsest
  // level running a beta continuation checkpoints at level end only — its
  // per-stage warm starts are not restartable mid-stage. resume_path
  // restarts a killed run: completed levels are skipped, the interrupted
  // level is warm-started from the stored velocity, and — because Newton
  // state is fully determined by (velocity, options) — the resumed run
  // replays the remaining iterates of the uninterrupted trajectory.
  std::string checkpoint_path;  ///< Target file (required when writing).
  int checkpoint_every = 0;     ///< Newton-iterate period; 0 disables.
  std::string resume_path;      ///< Checkpoint to restart from; "" = cold.
};

struct MultilevelLevelReport {
  Int3 dims{0, 0, 0};
  real_t beta = 0;
  int newton_iterations = 0;
  int matvecs = 0;
  bool converged = false;
  real_t rel_residual = 1;
  real_t min_det = 0;
  double time_seconds = 0;
};

struct MultilevelResult {
  RegistrationResult fine;      // finest-level result
  RegistrationResult coarsest;  // coarsest-level result (the pyramid seed)
  /// False only when the coarsest-level beta continuation could not find an
  /// admissible stage (see ContinuationResult::admissible).
  bool admissible = true;
  real_t final_beta = 0;          // beta solved at the finest level
  real_t gradient_reference = 0;  // ||g(0)|| carried across the levels
  std::vector<MultilevelLevelReport> levels;  // coarsest first
};

/// Coarse-to-fine pyramid solve on `fine_decomp`'s communicator. Builds the
/// coarser decompositions internally (same process grid), restricts the
/// images level by level (one batched 2-component transfer per transition),
/// and prolongs each level's velocity as the next warm start. Odd dims are
/// supported via the resample's Nyquist rules. Collective.
MultilevelResult run_multilevel_continuation(grid::PencilDecomp& fine_decomp,
                                             const RegistrationOptions& opt,
                                             const ScalarField& rho_t,
                                             const ScalarField& rho_r,
                                             const MultilevelOptions& mopt);

struct GridContinuationResult {
  RegistrationResult coarse;  // half-resolution solve
  RegistrationResult fine;    // full-resolution solve, warm started
};

/// Two-level grid continuation: the levels = 2 special case of
/// run_multilevel_continuation, kept for callers of the original API.
/// Any grid dims >= 4 are supported (odd dims included). Collective.
GridContinuationResult run_grid_continuation(grid::PencilDecomp& fine_decomp,
                                             const RegistrationOptions& opt,
                                             const ScalarField& rho_t,
                                             const ScalarField& rho_r);

}  // namespace diffreg::core
