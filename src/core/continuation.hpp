// Parameter continuation in beta (paper section III-A: "since the problem is
// highly nonlinear we use parameter continuation on beta"): solve a heavily
// regularized problem first, then repeatedly reduce beta — warm-starting the
// velocity — until either the target beta is reached or the deformation map
// would leave the admissible set (min det(grad y) below a bound).
#pragma once

#include <vector>

#include "core/registration.hpp"

namespace diffreg::core {

struct ContinuationOptions {
  real_t beta_start = 1;
  real_t beta_target = 1e-3;
  real_t reduction_factor = 10;
  /// Admissibility bound on det(grad y) (paper: metrics on grad y1 determine
  /// the target beta); below it the previous stage's result is kept.
  real_t min_det_bound = 0.1;
  int max_stages = 8;
};

struct ContinuationResult {
  RegistrationResult best;        // last admissible stage
  real_t final_beta = 0;          // beta of `best`
  std::vector<real_t> stage_betas;
  std::vector<real_t> stage_residuals;  // rel_residual per stage
  std::vector<real_t> stage_min_dets;
  int stages = 0;
};

/// Runs the continuation schedule on `solver` (its beta option is mutated
/// per stage). Collective.
ContinuationResult run_beta_continuation(RegistrationSolver& solver,
                                         const ScalarField& rho_t,
                                         const ScalarField& rho_r,
                                         const ContinuationOptions& copt);

struct GridContinuationResult {
  RegistrationResult coarse;  // half-resolution solve
  RegistrationResult fine;    // full-resolution solve, warm started
};

/// Two-level grid continuation (paper section I, Limitations: "grid
/// continuation and multilevel preconditioning"): solves the problem on a
/// half-resolution grid first, spectrally prolongs the coarse velocity, and
/// warm-starts the fine-grid solve with it. All fine-grid dimensions must be
/// even. Collective.
GridContinuationResult run_grid_continuation(grid::PencilDecomp& fine_decomp,
                                             const RegistrationOptions& opt,
                                             const ScalarField& rho_t,
                                             const ScalarField& rho_r);

}  // namespace diffreg::core
