#include "core/batch_manifest.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

namespace diffreg::core {

namespace {

// One lock for the whole process: in the thread-backed mpisim runtime every
// shard root of a batch is a thread of this process, and each read-merge-
// rewrite of the shared manifest must be atomic against the others.
std::mutex& manifest_mutex() {
  static std::mutex m;
  return m;
}

// Root-side status codes, broadcast so every rank converges on the same
// success-or-throw decision (mirrors core/checkpoint's agree_or_throw).
enum : std::int32_t {
  kOk = 0,
  kMissing,  // load only: absent file == empty manifest, not an error
  kReadFailed,
  kParseFailed,
  kWriteFailed,
};

const char* status_message(std::int32_t status) {
  switch (status) {
    case kReadFailed:
      return "cannot read batch manifest";
    case kParseFailed:
      return "batch manifest is malformed";
    case kWriteFailed:
      return "cannot write batch manifest";
    default:
      return "batch manifest I/O failed";
  }
}

void agree_or_throw(mpisim::Communicator& comm, std::int32_t status,
                    const std::string& path) {
  std::vector<std::int32_t> wire{status};
  comm.set_time_kind(TimeKind::kOther);
  comm.broadcast(wire, 0);
  if (wire[0] != kOk && wire[0] != kMissing)
    throw BatchManifestError(std::string(status_message(wire[0])) + ": " +
                             path);
}

/// Reads the whole file; kMissing when it does not exist.
std::int32_t slurp(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return errno == ENOENT ? kMissing : kReadFailed;
  std::string text;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, got);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) return kReadFailed;
  out = std::move(text);
  return kOk;
}

/// Extracts the text after `"key":` on `line`; nullptr when absent.
const char* field_start(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return nullptr;
  const char* s = line.c_str() + pos + needle.size();
  while (*s == ' ') ++s;
  return s;
}

bool parse_string_field(const std::string& line, const char* key,
                        std::string& out) {
  const char* s = field_start(line, key);
  if (!s || *s != '"') return false;
  const char* end = std::strchr(s + 1, '"');
  if (!end) return false;
  out.assign(s + 1, end);
  return true;
}

bool parse_number_field(const std::string& line, const char* key,
                        double& out) {
  const char* s = field_start(line, key);
  if (!s) return false;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s) return false;
  out = v;
  return true;
}

bool parse_bool_field(const std::string& line, const char* key, bool& out) {
  const char* s = field_start(line, key);
  if (!s) return false;
  if (std::strncmp(s, "true", 4) == 0) {
    out = true;
    return true;
  }
  if (std::strncmp(s, "false", 5) == 0) {
    out = false;
    return true;
  }
  return false;
}

/// Parses manifest text (format documented in the header). Returns kOk or
/// kParseFailed; the grammar is line-based — one job object per line.
std::int32_t parse(const std::string& text,
                   std::vector<BatchManifestEntry>& out) {
  out.clear();
  bool saw_version = false;
  bool any_content = false;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.find_first_not_of(" \t\r") != std::string::npos)
      any_content = true;
    double num = 0;
    if (!saw_version && parse_number_field(line, "version", num)) {
      if (num != 1) return kParseFailed;
      saw_version = true;
      continue;
    }
    if (!parse_number_field(line, "job_id", num)) continue;
    BatchManifestEntry e;
    e.job_id = static_cast<std::uint64_t>(num);
    if (!parse_string_field(line, "outcome", e.outcome)) return kParseFailed;
    if (parse_number_field(line, "attempts", num))
      e.attempts = static_cast<int>(num);
    parse_number_field(line, "completed_at_seconds", e.completed_at_seconds);
    parse_bool_field(line, "deadline_met", e.deadline_met);
    parse_string_field(line, "checkpoint", e.checkpoint_path);
    out.push_back(std::move(e));
  }
  // A non-empty file MUST carry the version header: corruption (or a
  // foreign file) is a structured error, never a silent "first run".
  return saw_version || !any_content ? kOk : kParseFailed;
}

std::string serialize(const std::vector<BatchManifestEntry>& entries) {
  std::string text = "{\n  \"version\": 1,\n  \"jobs\": [\n";
  char buf[160];
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const BatchManifestEntry& e = entries[i];
    std::snprintf(buf, sizeof buf,
                  "    {\"job_id\": %llu, \"outcome\": \"%s\", "
                  "\"attempts\": %d, \"completed_at_seconds\": %.17g, "
                  "\"deadline_met\": %s, \"checkpoint\": ",
                  static_cast<unsigned long long>(e.job_id),
                  e.outcome.c_str(), e.attempts, e.completed_at_seconds,
                  e.deadline_met ? "true" : "false");
    text += buf;
    text += '"';
    text += e.checkpoint_path;
    text += i + 1 < entries.size() ? "\"},\n" : "\"}\n";
  }
  text += "  ]\n}\n";
  return text;
}

/// Atomic replace: write to `path + ".tmp"`, then rename over `path`.
std::int32_t write_atomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return kWriteFailed;
  bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  ok = std::fclose(f) == 0 && ok;
  if (ok) ok = std::rename(tmp.c_str(), path.c_str()) == 0;
  if (!ok) {
    std::remove(tmp.c_str());
    return kWriteFailed;
  }
  return kOk;
}

/// Root-side read-merge-rewrite under the process-wide lock.
std::int32_t merge_root(const std::string& path,
                        const std::vector<BatchManifestEntry>& updates) {
  std::scoped_lock lock(manifest_mutex());
  std::string text;
  std::int32_t status = slurp(path, text);
  std::vector<BatchManifestEntry> entries;
  if (status == kOk) {
    status = parse(text, entries);
    if (status != kOk) return status;
  } else if (status != kMissing) {
    return status;
  }
  std::map<std::uint64_t, std::size_t> index;
  for (std::size_t i = 0; i < entries.size(); ++i)
    index[entries[i].job_id] = i;
  for (const BatchManifestEntry& u : updates) {
    auto it = index.find(u.job_id);
    if (it != index.end()) {
      entries[it->second] = u;
    } else {
      index[u.job_id] = entries.size();
      entries.push_back(u);
    }
  }
  std::stable_sort(
      entries.begin(), entries.end(),
      [](const BatchManifestEntry& a, const BatchManifestEntry& b) {
        return a.job_id < b.job_id;
      });
  return write_atomic(path, serialize(entries));
}

}  // namespace

std::vector<BatchManifestEntry> read_manifest_file(const std::string& path) {
  std::string text;
  std::int32_t status = slurp(path, text);
  if (status == kMissing) return {};
  std::vector<BatchManifestEntry> entries;
  if (status == kOk) status = parse(text, entries);
  if (status != kOk)
    throw BatchManifestError(std::string(status_message(status)) + ": " +
                             path);
  return entries;
}

void write_manifest_file(const std::string& path,
                         const std::vector<BatchManifestEntry>& entries) {
  std::scoped_lock lock(manifest_mutex());
  if (write_atomic(path, serialize(entries)) != kOk)
    throw BatchManifestError(std::string(status_message(kWriteFailed)) + ": " +
                             path);
}

std::vector<BatchManifestEntry> load_manifest(mpisim::Communicator& comm,
                                              const std::string& path) {
  std::string text;
  std::int32_t status = kOk;
  std::vector<BatchManifestEntry> entries;
  if (comm.rank() == 0) {
    std::scoped_lock lock(manifest_mutex());
    status = slurp(path, text);
    // Parse on the root first so a malformed manifest is a converged error,
    // not a divergence between ranks.
    if (status == kOk) status = parse(text, entries);
  }
  agree_or_throw(comm, status, path);
  if (comm.size() > 1) {
    std::vector<char> bytes(text.begin(), text.end());
    std::vector<std::int64_t> len{static_cast<std::int64_t>(bytes.size())};
    comm.set_time_kind(TimeKind::kOther);
    comm.broadcast(len, 0);
    bytes.resize(static_cast<std::size_t>(len[0]));
    if (!bytes.empty()) comm.broadcast(bytes, 0);
    if (comm.rank() != 0)
      parse(std::string(bytes.begin(), bytes.end()), entries);
  }
  return entries;
}

void update_manifest(mpisim::Communicator& comm, const std::string& path,
                     const std::vector<BatchManifestEntry>& updates) {
  std::int32_t status = kOk;
  if (comm.rank() == 0) status = merge_root(path, updates);
  agree_or_throw(comm, status, path);
}

}  // namespace diffreg::core
