#include "core/rigid.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "interp/kernels.hpp"

namespace diffreg::core {

namespace {

/// Rotation matrix R = Rz(c) Ry(b) Rx(a), rows returned as three Vec3.
std::array<Vec3, 3> rotation_matrix(const Vec3& angles) {
  const real_t ca = std::cos(angles[0]), sa = std::sin(angles[0]);
  const real_t cb = std::cos(angles[1]), sb = std::sin(angles[1]);
  const real_t cc = std::cos(angles[2]), sc = std::sin(angles[2]);
  return {Vec3{cb * cc, sa * sb * cc - ca * sc, ca * sb * cc + sa * sc},
          Vec3{cb * sc, sa * sb * sc + ca * cc, ca * sb * sc - sa * cc},
          Vec3{-sb, sa * cb, ca * cb}};
}

}  // namespace

RigidRegistration::RigidRegistration(const Int3& dims) : dims_(dims) {
  constexpr index_t w = 2;
  padded_dims_ = {dims[0] + 2 * w, dims[1] + 2 * w, dims[2] + 2 * w};
}

std::vector<real_t> RigidRegistration::pad_periodic(
    std::span<const real_t> full) const {
  constexpr index_t w = 2;
  std::vector<real_t> padded(padded_dims_.prod());
  for (index_t i1 = 0; i1 < padded_dims_[0]; ++i1) {
    const index_t s1 = periodic_index(i1 - w, dims_[0]);
    for (index_t i2 = 0; i2 < padded_dims_[1]; ++i2) {
      const index_t s2 = periodic_index(i2 - w, dims_[1]);
      for (index_t i3 = 0; i3 < padded_dims_[2]; ++i3) {
        const index_t s3 = periodic_index(i3 - w, dims_[2]);
        padded[linear_index(i1, i2, i3, padded_dims_)] =
            full[linear_index(s1, s2, s3, dims_)];
      }
    }
  }
  return padded;
}

void RigidRegistration::apply(std::span<const real_t> rho_t_full,
                              const Params& params,
                              std::vector<real_t>& out) const {
  const auto padded = pad_periodic(rho_t_full);
  out.resize(dims_.prod());
  const auto rot = rotation_matrix(params.angles);
  const Vec3 center{kTwoPi / 2, kTwoPi / 2, kTwoPi / 2};
  const real_t h1 = kTwoPi / dims_[0], h2 = kTwoPi / dims_[1],
               h3 = kTwoPi / dims_[2];
  constexpr real_t w = 2;
  const real_t hi1 = std::nextafter(static_cast<real_t>(dims_[0]) + w, w);
  const real_t hi2 = std::nextafter(static_cast<real_t>(dims_[1]) + w, w);
  const real_t hi3 = std::nextafter(static_cast<real_t>(dims_[2]) + w, w);

  index_t idx = 0;
  for (index_t i1 = 0; i1 < dims_[0]; ++i1)
    for (index_t i2 = 0; i2 < dims_[1]; ++i2)
      for (index_t i3 = 0; i3 < dims_[2]; ++i3, ++idx) {
        const Vec3 x{i1 * h1 - center[0], i2 * h2 - center[1],
                     i3 * h3 - center[2]};
        const Vec3 y{rot[0].dot(x) + center[0] + params.translation[0],
                     rot[1].dot(x) + center[1] + params.translation[1],
                     rot[2].dot(x) + center[2] + params.translation[2]};
        // min: adding w can round a just-below-n coordinate up to exactly
        // n + w, whose stencil would read one cell past the padded block
        // (same clamp as the interpolation plan's receiver side).
        const real_t u1 =
            std::min(periodic_grid_units(y[0], h1, dims_[0]) + w, hi1);
        const real_t u2 =
            std::min(periodic_grid_units(y[1], h2, dims_[1]) + w, hi2);
        const real_t u3 =
            std::min(periodic_grid_units(y[2], h3, dims_[2]) + w, hi3);
        out[idx] =
            interp::tricubic_eval(padded.data(), padded_dims_, u1, u2, u3);
      }
}

real_t RigidRegistration::objective(std::span<const real_t> padded_t,
                                    std::span<const real_t> rho_r,
                                    const Params& params) const {
  const auto rot = rotation_matrix(params.angles);
  const Vec3 center{kTwoPi / 2, kTwoPi / 2, kTwoPi / 2};
  const real_t h1 = kTwoPi / dims_[0], h2 = kTwoPi / dims_[1],
               h3 = kTwoPi / dims_[2];
  constexpr real_t w = 2;
  const real_t hi1 = std::nextafter(static_cast<real_t>(dims_[0]) + w, w);
  const real_t hi2 = std::nextafter(static_cast<real_t>(dims_[1]) + w, w);
  const real_t hi3 = std::nextafter(static_cast<real_t>(dims_[2]) + w, w);

  real_t sum = 0;
  index_t idx = 0;
  for (index_t i1 = 0; i1 < dims_[0]; ++i1)
    for (index_t i2 = 0; i2 < dims_[1]; ++i2)
      for (index_t i3 = 0; i3 < dims_[2]; ++i3, ++idx) {
        const Vec3 x{i1 * h1 - center[0], i2 * h2 - center[1],
                     i3 * h3 - center[2]};
        const Vec3 y{rot[0].dot(x) + center[0] + params.translation[0],
                     rot[1].dot(x) + center[1] + params.translation[1],
                     rot[2].dot(x) + center[2] + params.translation[2]};
        // min: adding w can round a just-below-n coordinate up to exactly
        // n + w, whose stencil would read one cell past the padded block
        // (same clamp as the interpolation plan's receiver side).
        const real_t u1 =
            std::min(periodic_grid_units(y[0], h1, dims_[0]) + w, hi1);
        const real_t u2 =
            std::min(periodic_grid_units(y[1], h2, dims_[1]) + w, hi2);
        const real_t u3 =
            std::min(periodic_grid_units(y[2], h3, dims_[2]) + w, hi3);
        const real_t val =
            interp::tricubic_eval(padded_t.data(), padded_dims_, u1, u2, u3);
        const real_t diff = val - rho_r[idx];
        sum += diff * diff;
      }
  return real_t(0.5) * sum;
}

RigidRegistration::Result RigidRegistration::run(
    std::span<const real_t> rho_t_full, std::span<const real_t> rho_r_full,
    int max_iters) {
  Result result;
  const auto padded = pad_periodic(rho_t_full);

  {
    real_t sum = 0;
    for (index_t i = 0; i < dims_.prod(); ++i) {
      const real_t d = rho_t_full[i] - rho_r_full[i];
      sum += d * d;
    }
    result.initial_residual = std::sqrt(sum);
  }

  Params p{};  // identity start
  auto pack = [](const Params& q) {
    return std::array<real_t, 6>{q.angles[0], q.angles[1], q.angles[2],
                                 q.translation[0], q.translation[1],
                                 q.translation[2]};
  };
  auto unpack = [](const std::array<real_t, 6>& a) {
    Params q;
    q.angles = {a[0], a[1], a[2]};
    q.translation = {a[3], a[4], a[5]};
    return q;
  };

  real_t fval = objective(padded, rho_r_full, p);
  real_t step = real_t(0.1);
  const real_t fd_eps = real_t(1e-4);

  for (int it = 0; it < max_iters; ++it) {
    auto a = pack(p);
    std::array<real_t, 6> grad{};
    for (int j = 0; j < 6; ++j) {
      auto ap = a, am = a;
      ap[j] += fd_eps;
      am[j] -= fd_eps;
      grad[j] = (objective(padded, rho_r_full, unpack(ap)) -
                 objective(padded, rho_r_full, unpack(am))) /
                (2 * fd_eps);
    }
    real_t gnorm = 0;
    for (real_t g : grad) gnorm += g * g;
    gnorm = std::sqrt(gnorm);
    if (gnorm < real_t(1e-10)) break;

    // Backtracking on the normalized descent direction.
    bool accepted = false;
    for (int ls = 0; ls < 20; ++ls) {
      auto trial = a;
      for (int j = 0; j < 6; ++j) trial[j] -= step * grad[j] / gnorm;
      const Params q = unpack(trial);
      const real_t ftrial = objective(padded, rho_r_full, q);
      if (ftrial < fval) {
        p = q;
        fval = ftrial;
        accepted = true;
        step *= real_t(1.5);  // tentative growth for the next iteration
        break;
      }
      step *= real_t(0.5);
    }
    result.iterations = it + 1;
    if (!accepted) break;
  }

  result.params = p;
  result.final_residual = std::sqrt(2 * fval);
  return result;
}

}  // namespace diffreg::core
