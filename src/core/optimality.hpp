// Reduced-space optimality system of the registration problem (paper
// section II-B): objective J(v), reduced gradient g(v) (eq. 4), and the
// (Gauss-)Newton Hessian matvec H(v) vtilde (eq. 5), all matrix free.
//
// The caller drives the order of operations (the Newton solver does):
//   1. evaluate(v)        — state solve, J(v)
//   2. gradient(g)        — adjoint solve at the current iterate
//   3. hessian_matvec(..) — any number of times (PCG), reusing the state and
//                           adjoint fields of the current iterate
// Re-calling evaluate() with a new velocity invalidates 2./3.
#pragma once

#include "core/regularization.hpp"
#include "semilag/transport.hpp"

namespace diffreg::core {

class TwoLevelPreconditioner;

class OptimalitySystem {
 public:
  /// `rho_t`/`rho_r` are the (already smoothed) template and reference
  /// images, pencil-local blocks.
  OptimalitySystem(spectral::SpectralOps& ops, semilag::Transport& transport,
                   Regularization& reg, ScalarField rho_t, ScalarField rho_r,
                   bool incompressible, bool gauss_newton)
      : ops_(&ops),
        transport_(&transport),
        reg_(&reg),
        rho_t_(std::move(rho_t)),
        rho_r_(std::move(rho_r)),
        incompressible_(incompressible),
        gauss_newton_(gauss_newton) {}

  grid::PencilDecomp& decomp() { return ops_->decomp(); }
  semilag::Transport& transport() { return *transport_; }
  Regularization& regularization() { return *reg_; }
  bool incompressible() const { return incompressible_; }
  const ScalarField& rho_t() const { return rho_t_; }
  const ScalarField& rho_r() const { return rho_r_; }

  /// Sets the velocity (state solve) and returns
  /// J(v) = 1/2 ||rho(1) - rho_r||^2 + J_reg(v).
  real_t evaluate(const VectorField& v);

  /// Image mismatch 1/2 ||rho(1) - rho_r||^2 of the last evaluate().
  real_t mismatch() const { return mismatch_; }

  /// Reduced gradient at the last-evaluated iterate:
  /// g = beta A v + P b, b = Int lam grad rho dt. Collective.
  void gradient(VectorField& g);

  /// (Gauss-)Newton Hessian matvec at the last-evaluated iterate.
  /// Full Newton requires gradient() to have stored the adjoint history.
  void hessian_matvec(const VectorField& vtilde, VectorField& out);

  /// Preconditioner application: the spectral smoother out = (beta A)^{-1} r
  /// plus, when a two-level preconditioner is attached, the coarse-grid
  /// Hessian correction on the low band (+ Leray projection in the
  /// incompressible case).
  void apply_preconditioner(const VectorField& r, VectorField& out);

  /// Attaches the (caller-owned) two-level preconditioner; gradient() keeps
  /// it linearized at the current iterate, apply_preconditioner() applies
  /// its correction. Pass nullptr to detach.
  void set_two_level(TwoLevelPreconditioner* precond) {
    two_level_ = precond;
  }
  TwoLevelPreconditioner* two_level() { return two_level_; }

  /// rho(1) - rho_r of the current iterate.
  void final_residual(ScalarField& out) const;

  int matvec_count() const { return matvecs_; }
  void reset_matvec_count() { matvecs_ = 0; }

 private:
  spectral::SpectralOps* ops_;
  semilag::Transport* transport_;
  Regularization* reg_;
  ScalarField rho_t_, rho_r_;
  bool incompressible_;
  bool gauss_newton_;
  TwoLevelPreconditioner* two_level_ = nullptr;

  real_t mismatch_ = 0;
  int matvecs_ = 0;

  // Scratch, persistent across calls so the PCG-hot gradient/matvec paths
  // do not allocate per invocation.
  ScalarField lambda1_, rho_tilde1_, lam_scratch_;
  VectorField b_, b_tilde_, reg_term_;
};

}  // namespace diffreg::core
