#include "core/checkpoint.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "grid/field_io.hpp"

namespace diffreg::core {

namespace {

constexpr char kMagic[4] = {'D', 'R', 'C', 'K'};
constexpr std::uint32_t kVersion = 1;

/// Fixed-layout on-disk header (trivially copyable, broadcastable).
struct WireHeader {
  char magic[4];
  std::uint32_t version;
  std::int64_t fine[3];
  std::int64_t level[3];
  double beta;
  double beta_override;
  double gradient_reference;
  std::int32_t admissible;
  std::int32_t newton_iters_done;
};

WireHeader to_wire(const CheckpointHeader& h) {
  WireHeader w{};
  std::memcpy(w.magic, kMagic, sizeof kMagic);
  w.version = kVersion;
  for (int d = 0; d < 3; ++d) {
    w.fine[d] = h.fine_dims[d];
    w.level[d] = h.level_dims[d];
  }
  w.beta = h.beta;
  w.beta_override = h.beta_override;
  w.gradient_reference = h.gradient_reference;
  w.admissible = h.admissible ? 1 : 0;
  w.newton_iters_done = h.newton_iters_done;
  return w;
}

CheckpointHeader from_wire(const WireHeader& w) {
  CheckpointHeader h;
  for (int d = 0; d < 3; ++d) {
    h.fine_dims[d] = w.fine[d];
    h.level_dims[d] = w.level[d];
  }
  h.beta = w.beta;
  h.beta_override = w.beta_override;
  h.gradient_reference = w.gradient_reference;
  h.admissible = w.admissible != 0;
  h.newton_iters_done = w.newton_iters_done;
  return h;
}

// Root-side I/O status codes, broadcast so every rank converges on the same
// success-or-throw decision (a one-sided throw would hang the collective).
enum : std::int32_t {
  kOk = 0,
  kCannotOpen,
  kTruncatedHeader,
  kBadMagic,
  kBadDims,
  kTruncatedPayload,
  kWriteFailed,
};

const char* status_message(std::int32_t status) {
  switch (status) {
    case kCannotOpen:
      return "cannot open checkpoint file";
    case kTruncatedHeader:
      return "checkpoint header truncated";
    case kBadMagic:
      return "not a checkpoint file (bad magic or version)";
    case kBadDims:
      return "checkpoint grid dims are invalid or do not match";
    case kTruncatedPayload:
      return "checkpoint velocity payload truncated";
    case kWriteFailed:
      return "cannot write checkpoint file";
    default:
      return "checkpoint I/O failed";
  }
}

/// Broadcasts rank 0's status and throws CheckpointError everywhere on
/// failure, naming the path.
void agree_or_throw(mpisim::Communicator& comm, std::int32_t status,
                    const std::string& path) {
  std::vector<std::int32_t> wire{status};
  comm.set_time_kind(TimeKind::kOther);
  comm.broadcast(wire, 0);
  if (wire[0] != kOk)
    throw CheckpointError(std::string(status_message(wire[0])) + ": " + path);
}

/// Root-side header read; returns the status and fills `header` on success.
std::int32_t read_header_root(std::FILE* f, WireHeader& header) {
  if (std::fread(&header, sizeof header, 1, f) != 1) return kTruncatedHeader;
  if (std::memcmp(header.magic, kMagic, sizeof kMagic) != 0 ||
      header.version != kVersion)
    return kBadMagic;
  for (int d = 0; d < 3; ++d)
    if (header.level[d] <= 0 || header.fine[d] <= 0) return kBadDims;
  return kOk;
}

}  // namespace

void write_checkpoint(grid::PencilDecomp& level_decomp,
                      const CheckpointHeader& header,
                      const grid::VectorField& velocity,
                      const std::string& path) {
  // Gather all three components first: the gathers are collective, so they
  // must complete on every rank before the root-only I/O outcome decides
  // whether to throw.
  std::vector<real_t> full[3];
  for (int d = 0; d < 3; ++d)
    full[d] = grid::gather_to_root(level_decomp,
                                   std::span<const real_t>(velocity[d]));

  std::int32_t status = kOk;
  mpisim::Communicator& comm = level_decomp.comm();
  if (comm.is_root()) {
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
      status = kCannotOpen;
    } else {
      const WireHeader wire = to_wire(header);
      bool ok = std::fwrite(&wire, sizeof wire, 1, f) == 1;
      for (int d = 0; ok && d < 3; ++d)
        ok = std::fwrite(full[d].data(), sizeof(real_t), full[d].size(), f) ==
             full[d].size();
      ok = std::fclose(f) == 0 && ok;
      // The rename is what makes the write atomic: a crash before this
      // point leaves the previous checkpoint untouched.
      if (ok) ok = std::rename(tmp.c_str(), path.c_str()) == 0;
      if (!ok) {
        std::remove(tmp.c_str());
        status = kWriteFailed;
      }
    }
  }
  agree_or_throw(comm, status, path);
}

CheckpointHeader read_checkpoint_header(mpisim::Communicator& comm,
                                        const std::string& path) {
  WireHeader wire{};
  std::int32_t status = kOk;
  if (comm.is_root()) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) {
      status = kCannotOpen;
    } else {
      status = read_header_root(f, wire);
      std::fclose(f);
    }
  }
  agree_or_throw(comm, status, path);
  std::vector<WireHeader> bcast{wire};
  comm.set_time_kind(TimeKind::kOther);
  comm.broadcast(bcast, 0);
  return from_wire(bcast[0]);
}

grid::VectorField read_checkpoint_velocity(grid::PencilDecomp& level_decomp,
                                           const std::string& path) {
  mpisim::Communicator& comm = level_decomp.comm();
  const index_t full_size = level_decomp.dims().prod();
  std::vector<real_t> full[3];
  std::int32_t status = kOk;
  if (comm.is_root()) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) {
      status = kCannotOpen;
    } else {
      WireHeader wire{};
      status = read_header_root(f, wire);
      if (status == kOk) {
        const Int3 stored{wire.level[0], wire.level[1], wire.level[2]};
        if (!(stored == level_decomp.dims())) status = kBadDims;
      }
      for (int d = 0; status == kOk && d < 3; ++d) {
        full[d].resize(static_cast<size_t>(full_size));
        if (std::fread(full[d].data(), sizeof(real_t), full[d].size(), f) !=
            full[d].size())
          status = kTruncatedPayload;
      }
      std::fclose(f);
    }
  }
  agree_or_throw(comm, status, path);
  grid::VectorField v(level_decomp.local_real_size());
  for (int d = 0; d < 3; ++d) {
    std::vector<real_t> local = grid::scatter_from_root(
        level_decomp, std::span<const real_t>(full[d]));
    v[d] = std::move(local);
  }
  return v;
}

}  // namespace diffreg::core
