#include "core/precond.hpp"

#include <stdexcept>
#include <utility>

namespace diffreg::core {

namespace {

semilag::TransportConfig coarse_transport_config(
    const RegistrationOptions& opt) {
  semilag::TransportConfig tc;
  tc.nt = opt.nt;
  tc.method = opt.interp_method;
  tc.incompressible = opt.incompressible;
  tc.wire = opt.wire();
  tc.overlap = opt.overlap;
  return tc;
}

}  // namespace

TwoLevelPreconditioner::TwoLevelPreconditioner(
    grid::PencilDecomp& fine_decomp, const RegistrationOptions& opt,
    const ScalarField& rho_t_s, const ScalarField& rho_r_s)
    : coarse_decomp_(fine_decomp.comm(),
                     spectral::coarsen_dims(fine_decomp.dims(),
                                            opt.precond_coarsest_dim),
                     fine_decomp.p1(), fine_decomp.p2()),
      ops_(coarse_decomp_, opt.wire(), opt.overlap),
      transport_(ops_, coarse_transport_config(opt)),
      reg_(ops_, opt.reg_type, opt.beta),
      restrict_plan_(fine_decomp, coarse_decomp_, opt.wire()),
      prolong_plan_(coarse_decomp_, fine_decomp, opt.wire()),
      inner_iters_(opt.precond_inner_iters),
      mixed_(opt.precision == Precision::kMixed) {
  if (coarse_decomp_.dims() == fine_decomp.dims())
    throw std::invalid_argument(
        "TwoLevelPreconditioner: grid cannot be coarsened (raise the fine "
        "resolution or lower precond_coarsest_dim)");
  const index_t nc = coarse_decomp_.local_real_size();
  ScalarField rho_t_c(nc), rho_r_c(nc);
  const real_t* ins[2] = {rho_t_s.data(), rho_r_s.data()};
  real_t* outs[2] = {rho_t_c.data(), rho_r_c.data()};
  restrict_plan_.apply_many(std::span<const real_t* const>(ins, 2),
                            std::span<real_t* const>(outs, 2));
  // Always Gauss-Newton on the coarse level: SPD by construction, which the
  // inner CG (and PCG theory for the outer solve) requires.
  system_ = std::make_unique<OptimalitySystem>(
      ops_, transport_, reg_, std::move(rho_t_c), std::move(rho_r_c),
      opt.incompressible, /*gauss_newton=*/true);
  v_c_ = VectorField(nc);
  r_c_ = VectorField(nc);
  z_c_ = VectorField(nc);
  smooth_c_ = VectorField(nc);
  corr_ = VectorField(fine_decomp.local_real_size());
}

void TwoLevelPreconditioner::sync(const VectorField& v_fine) {
  restrict_plan_.apply(v_fine, v_c_);
  system_->evaluate(v_c_);  // coarse state solve at the restricted iterate
  synced_ = true;
}

void TwoLevelPreconditioner::correct(const VectorField& r, VectorField& out) {
  if (!synced_) return;
  restrict_plan_.apply(r, r_c_);

  // Approximate coarse Hessian inverse: a fixed number of CG sweeps (rtol 0
  // keeps the application deterministic), spectrally preconditioned. A
  // truncated CG is a (mildly) nonlinear map of r, so the outer PCG's
  // fixed-preconditioner assumption holds only approximately — the standard
  // trade of inexact two-level schemes (CLAIRE runs a tolerance-based PCG
  // here). The outer solve is safeguarded for exactly this: its
  // negative-curvature exit returns the best iterate, and the Newton driver
  // falls back to preconditioned steepest descent on ascent directions.
  const auto apply_a = [&](const VectorField& x, VectorField& y) {
    system_->hessian_matvec(x, y);
  };
  const auto apply_m = [&](const VectorField& x, VectorField& y) {
    system_->apply_preconditioner(x, y);
  };
  if (mixed_)
    pcg_solve_mixed(coarse_decomp_, apply_a, apply_m, r_c_, z_c_,
                    /*rtol=*/0, inner_iters_, ws32_);
  else
    pcg_solve(coarse_decomp_, apply_a, apply_m, r_c_, z_c_, /*rtol=*/0,
              inner_iters_, ws_);

  // Subtract the smoother's low band: the caller applied (beta A)^{-1} on
  // ALL modes, and on matching wavenumbers (beta A_c)^{-1} restricted is
  // exactly that low band — without this the low modes would be counted by
  // both halves of the preconditioner.
  reg_.invert(r_c_, smooth_c_);
  grid::axpy(real_t(-1), smooth_c_, z_c_);

  prolong_plan_.apply(z_c_, corr_);
  grid::axpy(real_t(1), corr_, out);
}

}  // namespace diffreg::core
