// Rigid (rotation + translation) registration baseline.
//
// The paper's Fig. 1 contrasts rigid registration against deformable LDDR:
// rigid alignment removes the bulk pose difference but leaves a large
// residual that only a deformable map can remove. This comparator is a
// small serial solver (runs on gathered full images): the six pose
// parameters are fit by gradient descent with numerical derivatives and a
// backtracking step size, sampling the template with periodic tricubic
// interpolation.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace diffreg::core {

class RigidRegistration {
 public:
  struct Params {
    Vec3 angles;       // Euler angles (radians), rotation about the center
    Vec3 translation;  // physical units on [0, 2*pi)^3
  };

  struct Result {
    Params params;
    real_t initial_residual = 0;  // ||rho_T - rho_R||_2 (grid L2)
    real_t final_residual = 0;    // ||rho_T(y_rigid) - rho_R||_2
    int iterations = 0;
  };

  explicit RigidRegistration(const Int3& dims);

  /// Fits the pose of `rho_t_full` onto `rho_r_full` (full arrays).
  Result run(std::span<const real_t> rho_t_full,
             std::span<const real_t> rho_r_full, int max_iters = 100);

  /// Resamples the template under the rigid map y(x) = R(x-c) + c + t.
  void apply(std::span<const real_t> rho_t_full, const Params& params,
             std::vector<real_t>& out) const;

 private:
  real_t objective(std::span<const real_t> padded_t,
                   std::span<const real_t> rho_r, const Params& params) const;
  /// Pads a full image with a periodic 2-wide halo for the tricubic kernel.
  std::vector<real_t> pad_periodic(std::span<const real_t> full) const;

  Int3 dims_;
  Int3 padded_dims_;
};

}  // namespace diffreg::core
