#include "core/pcg.hpp"

#include <cmath>

namespace diffreg::core {

PcgResult pcg_solve(grid::PencilDecomp& decomp, const ApplyFn& apply_a,
                    const ApplyFn& apply_m, const VectorField& b,
                    VectorField& x, real_t rtol, int max_iters) {
  PcgResult result;
  const index_t n = b.local_size();
  x = VectorField(n);

  VectorField r = b;  // r = b - A*0
  VectorField z(n), p(n), ap(n);
  apply_m(r, z);
  p = z;

  real_t rz = grid::dot(decomp, r, z);
  const real_t r0 = std::sqrt(std::max(rz, real_t(0)));
  if (r0 == 0) {
    result.converged = true;
    result.rel_residual = 0;
    return result;
  }

  for (int it = 0; it < max_iters; ++it) {
    apply_a(p, ap);
    const real_t pap = grid::dot(decomp, p, ap);
    if (pap <= 0) {
      // Non-positive curvature: stop with the current iterate (x = 0 on the
      // first iteration falls back to the preconditioned gradient).
      result.negative_curvature = true;
      if (it == 0) x = z;
      break;
    }
    const real_t alpha = rz / pap;
    grid::axpy(alpha, p, x);
    grid::axpy(-alpha, ap, r);
    apply_m(r, z);
    const real_t rz_next = grid::dot(decomp, r, z);
    result.iterations = it + 1;
    result.rel_residual = std::sqrt(std::max(rz_next, real_t(0))) / r0;
    if (result.rel_residual <= rtol) {
      result.converged = true;
      break;
    }
    const real_t beta = rz_next / rz;
    rz = rz_next;
    // p = z + beta p
    for (int d = 0; d < 3; ++d)
      for (index_t i = 0; i < n; ++i) p[d][i] = z[d][i] + beta * p[d][i];
  }
  return result;
}

}  // namespace diffreg::core
