#include "core/pcg.hpp"

#include <cmath>

namespace diffreg::core {

PcgResult pcg_solve(grid::PencilDecomp& decomp, const ApplyFn& apply_a,
                    const ApplyFn& apply_m, const VectorField& b,
                    VectorField& x, real_t rtol, int max_iters,
                    PcgWorkspace& ws) {
  PcgResult result;
  const index_t n = b.local_size();
  grid::resize_zero(x, n);

  ws.r = b;  // r = b - A*0 (assignment reuses the workspace's capacity)
  grid::resize_zero(ws.z, n);
  grid::resize_zero(ws.p, n);
  grid::resize_zero(ws.ap, n);
  VectorField& r = ws.r;
  VectorField& z = ws.z;
  VectorField& p = ws.p;
  VectorField& ap = ws.ap;
  apply_m(r, z);
  grid::copy(z, p);

  real_t rz = grid::dot(decomp, r, z);
  const real_t r0 = std::sqrt(std::max(rz, real_t(0)));
  if (r0 == 0) {
    result.converged = true;
    result.rel_residual = 0;
    return result;
  }

  for (int it = 0; it < max_iters; ++it) {
    apply_a(p, ap);
    const real_t pap = grid::dot(decomp, p, ap);
    if (pap <= 0) {
      // Non-positive curvature: stop with the current iterate (x = 0 on the
      // first iteration falls back to the preconditioned gradient).
      result.negative_curvature = true;
      if (it == 0) grid::copy(z, x);
      break;
    }
    const real_t alpha = rz / pap;
    grid::axpy(alpha, p, x);
    grid::axpy(-alpha, ap, r);
    apply_m(r, z);
    const real_t rz_next = grid::dot(decomp, r, z);
    result.iterations = it + 1;
    result.rel_residual = std::sqrt(std::max(rz_next, real_t(0))) / r0;
    if (result.rel_residual <= rtol) {
      result.converged = true;
      break;
    }
    const real_t beta = rz_next / rz;
    rz = rz_next;
    // p = z + beta p
    for (int d = 0; d < 3; ++d)
      for (index_t i = 0; i < n; ++i) p[d][i] = z[d][i] + beta * p[d][i];
  }
  return result;
}

PcgResult pcg_solve(grid::PencilDecomp& decomp, const ApplyFn& apply_a,
                    const ApplyFn& apply_m, const VectorField& b,
                    VectorField& x, real_t rtol, int max_iters) {
  PcgWorkspace ws;
  return pcg_solve(decomp, apply_a, apply_m, b, x, rtol, max_iters, ws);
}

}  // namespace diffreg::core
