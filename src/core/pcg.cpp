#include "core/pcg.hpp"

#include <cmath>

namespace diffreg::core {

namespace {

/// Storage-generic PCG recurrence shared by the fp64 and mixed solvers, so
/// the safeguard-sensitive loop (negative-curvature exit, Eisenstat-Walker
/// stop, recurrence updates) exists exactly once. `r` must hold the
/// right-hand side on entry and `x_s` the zeroed iterate, both in storage
/// precision T; every reduction runs through the fp64-accumulating dot
/// overloads. On a first-iteration negative-curvature exit
/// (result.negative_curvature && result.iterations == 0) the caller must
/// fall back to `z` (the preconditioned gradient) instead of `x_s`.
template <typename T, typename ApplyA, typename ApplyM>
PcgResult pcg_recurrence(grid::PencilDecomp& decomp, const ApplyA& apply_a,
                         const ApplyM& apply_m, grid::BasicVectorField<T>& r,
                         grid::BasicVectorField<T>& z,
                         grid::BasicVectorField<T>& p,
                         grid::BasicVectorField<T>& ap,
                         grid::BasicVectorField<T>& x_s, real_t rtol,
                         int max_iters) {
  PcgResult result;
  const index_t n = r.local_size();
  apply_m(r, z);
  grid::copy(z, p);

  real_t rz = grid::dot(decomp, r, z);
  if (!std::isfinite(rz)) {
    // The right-hand side (or preconditioner output) is already poisoned;
    // there is nothing to iterate on.
    result.breakdown = true;
    return result;
  }
  const real_t r0 = std::sqrt(std::max(rz, real_t(0)));
  if (r0 == 0) {
    result.converged = true;
    result.rel_residual = 0;
    return result;
  }

  for (int it = 0; it < max_iters; ++it) {
    apply_a(p, ap);
    const real_t pap = grid::dot(decomp, p, ap);
    if (!std::isfinite(pap)) {
      // NaN/Inf curvature would otherwise slip past the pap <= 0 test
      // (NaN compares false) and poison every later iterate.
      result.breakdown = true;
      break;
    }
    if (pap <= 0) {
      // Non-positive curvature: stop with the current iterate (x_s = 0 on
      // the first iteration; the caller falls back to z).
      result.negative_curvature = true;
      break;
    }
    const real_t alpha = rz / pap;
    grid::axpy(alpha, p, x_s);
    grid::axpy(-alpha, ap, r);
    apply_m(r, z);
    const real_t rz_next = grid::dot(decomp, r, z);
    if (!std::isfinite(rz_next)) {
      result.breakdown = true;
      break;
    }
    result.iterations = it + 1;
    result.rel_residual = std::sqrt(std::max(rz_next, real_t(0))) / r0;
    if (result.rel_residual <= rtol) {
      result.converged = true;
      break;
    }
    const real_t beta = rz_next / rz;
    rz = rz_next;
    // p = z + beta p, at the recurrence storage precision.
    const T beta_s = static_cast<T>(beta);
    for (int d = 0; d < 3; ++d)
      for (index_t i = 0; i < n; ++i) p[d][i] = z[d][i] + beta_s * p[d][i];
  }
  return result;
}

}  // namespace

PcgResult pcg_solve(grid::PencilDecomp& decomp, const ApplyFn& apply_a,
                    const ApplyFn& apply_m, const VectorField& b,
                    VectorField& x, real_t rtol, int max_iters,
                    PcgWorkspace& ws) {
  const index_t n = b.local_size();
  grid::resize_zero(x, n);
  ws.r = b;  // r = b - A*0 (assignment reuses the workspace's capacity)
  grid::resize_zero(ws.z, n);
  grid::resize_zero(ws.p, n);
  grid::resize_zero(ws.ap, n);
  // The caller's x doubles as the iterate storage (no extra field, no
  // final copy; bitwise identical to the historical all-fp64 loop).
  PcgResult result = pcg_recurrence<real_t>(decomp, apply_a, apply_m, ws.r,
                                            ws.z, ws.p, ws.ap, x, rtol,
                                            max_iters);
  if ((result.negative_curvature || result.breakdown) &&
      result.iterations == 0)
    grid::copy(ws.z, x);  // fall back to the preconditioned gradient
  return result;
}

PcgResult pcg_solve(grid::PencilDecomp& decomp, const ApplyFn& apply_a,
                    const ApplyFn& apply_m, const VectorField& b,
                    VectorField& x, real_t rtol, int max_iters) {
  PcgWorkspace ws;
  return pcg_solve(decomp, apply_a, apply_m, b, x, rtol, max_iters, ws);
}

PcgResult pcg_solve_mixed(grid::PencilDecomp& decomp, const ApplyFn& apply_a,
                          const ApplyFn& apply_m, const VectorField& b,
                          VectorField& x, real_t rtol, int max_iters,
                          PcgWorkspace32& ws) {
  const index_t n = b.local_size();
  // Only the recurrence vectors need zeroing; the caller's x is always
  // overwritten by one of the final copies below, and the fp64 staging
  // fields are fully rewritten by the converting copies in every apply.
  grid::resize_zero(ws.x, n);
  grid::copy(b, ws.r);  // narrowing: r = b - A*0 at fp32 storage
  grid::resize_zero(ws.z, n);
  grid::resize_zero(ws.p, n);
  grid::resize_zero(ws.ap, n);

  // Operator applies stay fp64 (the spectral/transport pipeline is fp64
  // end to end; its *wire* may be fp32): widen the fp32 operand, apply,
  // narrow the result back into the recurrence storage.
  const auto apply_a32 = [&](const VectorField32& in, VectorField32& out) {
    grid::copy(in, ws.wide_in);
    apply_a(ws.wide_in, ws.wide_out);
    grid::copy(ws.wide_out, out);
  };
  const auto apply_m32 = [&](const VectorField32& in, VectorField32& out) {
    grid::copy(in, ws.wide_in);
    apply_m(ws.wide_in, ws.wide_out);
    grid::copy(ws.wide_out, out);
  };

  PcgResult result =
      pcg_recurrence<real32_t>(decomp, apply_a32, apply_m32, ws.r, ws.z,
                               ws.p, ws.ap, ws.x, rtol, max_iters);
  if ((result.negative_curvature || result.breakdown) &&
      result.iterations == 0)
    grid::copy(ws.z, x);  // widening fallback direction
  else
    grid::copy(ws.x, x);  // widen the fp32 iterate into the fp64 step
  return result;
}

}  // namespace diffreg::core
