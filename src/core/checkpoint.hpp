/// @file checkpoint.hpp
/// Solver-state checkpointing: warm restarts for killed continuation runs.
///
/// A checkpoint captures everything `run_multilevel_continuation` needs to
/// resume a solve mid-level: the current velocity iterate, which pyramid
/// level it lives on, the regularization state (beta, the coarse-grid beta
/// override), the outer convergence anchor (gradient_reference), the
/// admissibility flag, and how many Newton iterates the level had already
/// accepted. Newton state is fully determined by (velocity, options), so
/// replaying the remaining iterates from a checkpoint reproduces the
/// uninterrupted trajectory bitwise — the resume acceptance test asserts
/// exactly that.
///
/// On-disk format (version 1, native endianness, fp64 payload):
///
///     magic "DRCK" | u32 version
///     i64 fine_dims[3] | i64 level_dims[3]
///     f64 beta | f64 beta_override | f64 gradient_reference
///     i32 admissible | i32 newton_iters_done
///     payload: 3 * prod(level_dims) f64 — the velocity components x/y/z,
///              each a full row-major [N1][N2][N3] array
///
/// The payload moves through grid::field_io's gather/scatter, so the file
/// layout is decomposition-independent: a run may resume on a different
/// rank count. Writes go to `path + ".tmp"` and are renamed into place, so
/// a crash mid-write never corrupts the previous checkpoint. All three
/// entry points are COLLECTIVE and converge on errors: rank 0's I/O outcome
/// is broadcast, so a missing or corrupt file throws CheckpointError on
/// every rank instead of hanging the non-root ranks.
#pragma once

#include <stdexcept>
#include <string>

#include "common/types.hpp"
#include "grid/decomposition.hpp"
#include "grid/field_math.hpp"

namespace diffreg::core {

/// Raised (collectively) on unreadable, corrupt, or mismatched checkpoints.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The scalar solver state stored alongside the velocity payload.
struct CheckpointHeader {
  Int3 fine_dims{0, 0, 0};   ///< Finest-grid dims (run identity check).
  Int3 level_dims{0, 0, 0};  ///< Grid the stored velocity lives on.
  real_t beta = 0;           ///< Regularization weight of the level solve.
  real_t beta_override = -1;  ///< Coarse-continuation result (-1: none).
  real_t gradient_reference = 0;  ///< Outer gtol anchor (0: not yet set).
  bool admissible = true;    ///< min-det(J) admissibility so far.
  int newton_iters_done = 0;  ///< Accepted Newton iterates on this level.
};

/// Gathers `velocity` (on `level_decomp`'s grid) to rank 0 and writes
/// header + payload atomically. Collective over the decomposition's
/// communicator.
void write_checkpoint(grid::PencilDecomp& level_decomp,
                      const CheckpointHeader& header,
                      const grid::VectorField& velocity,
                      const std::string& path);

/// Rank 0 reads and validates the header; the result is broadcast.
/// Collective.
CheckpointHeader read_checkpoint_header(mpisim::Communicator& comm,
                                        const std::string& path);

/// Rank 0 reads the velocity payload and scatters it onto `level_decomp`,
/// whose dims must equal the header's level_dims. Collective.
grid::VectorField read_checkpoint_velocity(grid::PencilDecomp& level_decomp,
                                           const std::string& path);

}  // namespace diffreg::core
