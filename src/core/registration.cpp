#include "core/registration.hpp"

#include "core/checkpoint.hpp"
#include "core/plan_registry.hpp"
#include "core/precond.hpp"

namespace diffreg::core {

namespace {

/// Holds the solve's transport: pool-checked-out when a registry is
/// present (released back on destruction), otherwise a fresh local build —
/// the historical per-solve behavior.
class TransportLease {
 public:
  TransportLease(PlanRegistry* registry, spectral::SpectralOps& ops,
                 const semilag::TransportConfig& tc)
      : registry_(registry), dims_(ops.decomp().dims()), tc_(tc) {
    if (registry_ != nullptr)
      pooled_ = registry_->acquire_transport(dims_, tc_);
    else
      owned_ = std::make_unique<semilag::Transport>(ops, tc_);
  }
  ~TransportLease() {
    if (pooled_) registry_->release_transport(dims_, tc_, std::move(pooled_));
  }
  semilag::Transport& get() { return pooled_ ? *pooled_ : *owned_; }

 private:
  PlanRegistry* registry_;
  Int3 dims_;
  semilag::TransportConfig tc_;
  std::shared_ptr<semilag::Transport> pooled_;
  std::unique_ptr<semilag::Transport> owned_;
};

}  // namespace

RegistrationSolver::RegistrationSolver(grid::PencilDecomp& decomp,
                                       const RegistrationOptions& options)
    : decomp_(&decomp),
      options_(options),
      ops_(std::make_shared<spectral::SpectralOps>(decomp, options.wire(),
                                                   options.overlap)),
      ops_wire_(options.wire()),
      ops_overlap_(options.overlap) {}

RegistrationSolver::RegistrationSolver(grid::PencilDecomp& decomp,
                                       const RegistrationOptions& options,
                                       std::shared_ptr<PlanRegistry> registry)
    : decomp_(&decomp),
      options_(options),
      registry_(std::move(registry)),
      ops_(registry_->spectral(decomp.dims(), options.wire(),
                               options.overlap)),
      ops_wire_(options.wire()),
      ops_overlap_(options.overlap) {}

RegistrationSolver::~RegistrationSolver() = default;

void RegistrationSolver::ensure_ops(WirePrecision wire, bool overlap) {
  if (wire == ops_wire_ && overlap == ops_overlap_) return;
  if (registry_)
    ops_ = registry_->spectral(decomp_->dims(), wire, overlap);
  else
    ops_ = std::make_shared<spectral::SpectralOps>(*decomp_, wire, overlap);
  ops_wire_ = wire;
  ops_overlap_ = overlap;
}

semilag::TransportConfig RegistrationSolver::transport_config(
    const RegistrationOptions& opt) const {
  semilag::TransportConfig tc;
  tc.nt = opt.nt;
  tc.method = opt.interp_method;
  tc.incompressible = opt.incompressible;
  tc.wire = opt.wire();
  tc.overlap = opt.overlap;
  return tc;
}

void RegistrationSolver::preprocess(const ScalarField& in, ScalarField& out,
                                    const RegistrationOptions& opt) {
  if (!opt.smooth_inputs) {
    out = in;
    return;
  }
  const Int3 dims = decomp_->dims();
  const Vec3 sigma{opt.smoothing_cells * kTwoPi / dims[0],
                   opt.smoothing_cells * kTwoPi / dims[1],
                   opt.smoothing_cells * kTwoPi / dims[2]};
  ops_->gaussian_smooth(in, sigma, out);
}

RegistrationResult RegistrationSolver::run(const ScalarField& rho_t,
                                           const ScalarField& rho_r,
                                           const VectorField* v0) {
  SolveRequest req;
  req.rho_t = &rho_t;
  req.rho_r = &rho_r;
  req.v0 = v0;
  req.options = options_;
  return solve(req);
}

SolveReport RegistrationSolver::solve(const SolveRequest& request) {
  RegistrationOptions opt = request.options;
  ensure_ops(opt.wire(), opt.overlap);

  // Periodic restart checkpoints, chained behind any hook the caller
  // installed (caller's hook observes first).
  if (!request.checkpoint_path.empty()) {
    const auto caller_hook = opt.iterate_hook;
    const int every = request.checkpoint_every > 0 ? request.checkpoint_every
                                                   : 1;
    const real_t beta = opt.beta;
    opt.iterate_hook = [this, caller_hook, every, beta,
                        path = request.checkpoint_path](
                           const NewtonIterateInfo& info) {
      if (caller_hook) caller_hook(info);
      if (info.iterates_done % every != 0) return;
      CheckpointHeader hdr;
      hdr.fine_dims = decomp_->dims();
      hdr.level_dims = decomp_->dims();
      hdr.beta = beta;
      hdr.gradient_reference = info.gradient_reference;
      hdr.newton_iters_done = info.iterates_done;
      write_checkpoint(*decomp_, hdr, *info.velocity, path);
    };
  }

  RegistrationResult result;
  result.job_id = request.job_id;
  auto& comm = decomp_->comm();
  const Timings timings_before = comm.timings();
  WallTimer wall;

  ScalarField rho_t_s, rho_r_s;
  preprocess(*request.rho_t, rho_t_s, opt);
  preprocess(*request.rho_r, rho_r_s, opt);

  TransportLease lease(registry_.get(), *ops_, transport_config(opt));
  semilag::Transport& transport = lease.get();

  Regularization reg(*ops_, opt.reg_type, opt.beta);
  OptimalitySystem system(*ops_, transport, reg, rho_t_s, rho_r_s,
                          opt.incompressible, opt.gauss_newton);

  // Two-level preconditioner, unless this grid is already at (or below) the
  // coarse floor — on such grids (e.g. the coarsest level of a pyramid) the
  // plain spectral smoother is the right tool and the correction has no
  // coarser band to work with.
  std::unique_ptr<TwoLevelPreconditioner> two_level;
  if (opt.two_level_precond &&
      spectral::coarsen_dims(decomp_->dims(), opt.precond_coarsest_dim) !=
          decomp_->dims()) {
    two_level = std::make_unique<TwoLevelPreconditioner>(*decomp_, opt,
                                                         rho_t_s, rho_r_s);
    system.set_two_level(two_level.get());
  }

  const index_t n = decomp_->local_real_size();
  VectorField v(n);
  if (request.v0 != nullptr) {
    v = *request.v0;
    if (opt.incompressible) ops_->leray_project(v);
  }

  {
    ScalarField diff(n);
    for (index_t i = 0; i < n; ++i) diff[i] = rho_t_s[i] - rho_r_s[i];
    result.initial_residual_norm = grid::norm_l2(*decomp_, diff);
  }

  result.newton = newton_solve(system, v, opt);

  // The system's last evaluate() is at the final v: reuse its residual.
  {
    ScalarField res(n);
    system.final_residual(res);
    result.final_residual_norm = grid::norm_l2(*decomp_, res);
    result.rel_residual =
        result.initial_residual_norm > 0
            ? result.final_residual_norm / result.initial_residual_norm
            : real_t(0);
  }

  const DeformationAnalysis deformation = analyze_deformation(*ops_, transport);
  result.min_det = deformation.min_det;
  result.max_det = deformation.max_det;
  result.mean_det = deformation.mean_det;

  if (two_level) result.coarse_matvecs = two_level->coarse_matvecs();
  result.velocity = std::move(v);
  result.time_to_solution = wall.seconds();
  result.timings = timings_delta(timings_before, comm.timings());
  // Standalone semantics: the deadline is measured against this solve's own
  // wall clock. BatchSolver overwrites this against the batch clock.
  result.deadline_met = request.deadline_seconds <= 0 ||
                        result.time_to_solution <= request.deadline_seconds;
  return result;
}

void RegistrationSolver::deform_template(const ScalarField& rho_t,
                                         const VectorField& velocity,
                                         ScalarField& deformed) {
  TransportLease lease(registry_.get(), *ops_, transport_config(options_));
  semilag::Transport& transport = lease.get();
  transport.set_velocity(velocity);
  transport.solve_state(rho_t);
  deformed = transport.final_state();
}

void RegistrationSolver::jacobian_field(const VectorField& velocity,
                                        ScalarField& det) {
  TransportLease lease(registry_.get(), *ops_, transport_config(options_));
  semilag::Transport& transport = lease.get();
  transport.set_velocity(velocity);
  VectorField u;
  transport.solve_displacement(u);
  jacobian_determinant(*ops_, u, det);
}

}  // namespace diffreg::core
