#include "core/registration.hpp"

#include "core/precond.hpp"

namespace diffreg::core {

RegistrationSolver::RegistrationSolver(grid::PencilDecomp& decomp,
                                       const RegistrationOptions& options)
    : decomp_(&decomp),
      options_(options),
      ops_(std::make_unique<spectral::SpectralOps>(decomp, options.wire(),
                                                   options.overlap)) {}

void RegistrationSolver::preprocess(const ScalarField& in, ScalarField& out) {
  if (!options_.smooth_inputs) {
    out = in;
    return;
  }
  const Int3 dims = decomp_->dims();
  const Vec3 sigma{options_.smoothing_cells * kTwoPi / dims[0],
                   options_.smoothing_cells * kTwoPi / dims[1],
                   options_.smoothing_cells * kTwoPi / dims[2]};
  ops_->gaussian_smooth(in, sigma, out);
}

RegistrationResult RegistrationSolver::run(const ScalarField& rho_t,
                                           const ScalarField& rho_r,
                                           const VectorField* v0) {
  RegistrationResult result;
  auto& comm = decomp_->comm();
  const Timings timings_before = comm.timings();
  WallTimer wall;

  ScalarField rho_t_s, rho_r_s;
  preprocess(rho_t, rho_t_s);
  preprocess(rho_r, rho_r_s);

  semilag::TransportConfig tc;
  tc.nt = options_.nt;
  tc.method = options_.interp_method;
  tc.incompressible = options_.incompressible;
  tc.wire = options_.wire();
  tc.overlap = options_.overlap;
  semilag::Transport transport(*ops_, tc);

  Regularization reg(*ops_, options_.reg_type, options_.beta);
  OptimalitySystem system(*ops_, transport, reg, rho_t_s, rho_r_s,
                          options_.incompressible, options_.gauss_newton);

  // Two-level preconditioner, unless this grid is already at (or below) the
  // coarse floor — on such grids (e.g. the coarsest level of a pyramid) the
  // plain spectral smoother is the right tool and the correction has no
  // coarser band to work with.
  std::unique_ptr<TwoLevelPreconditioner> two_level;
  if (options_.two_level_precond &&
      spectral::coarsen_dims(decomp_->dims(),
                             options_.precond_coarsest_dim) !=
          decomp_->dims()) {
    two_level = std::make_unique<TwoLevelPreconditioner>(*decomp_, options_,
                                                         rho_t_s, rho_r_s);
    system.set_two_level(two_level.get());
  }

  const index_t n = decomp_->local_real_size();
  VectorField v(n);
  if (v0 != nullptr) {
    v = *v0;
    if (options_.incompressible) ops_->leray_project(v);
  }

  {
    ScalarField diff(n);
    for (index_t i = 0; i < n; ++i) diff[i] = rho_t_s[i] - rho_r_s[i];
    result.initial_residual_norm = grid::norm_l2(*decomp_, diff);
  }

  result.newton = newton_solve(system, v, options_);

  // The system's last evaluate() is at the final v: reuse its residual.
  {
    ScalarField res(n);
    system.final_residual(res);
    result.final_residual_norm = grid::norm_l2(*decomp_, res);
    result.rel_residual =
        result.initial_residual_norm > 0
            ? result.final_residual_norm / result.initial_residual_norm
            : real_t(0);
  }

  const DeformationAnalysis deformation = analyze_deformation(*ops_, transport);
  result.min_det = deformation.min_det;
  result.max_det = deformation.max_det;
  result.mean_det = deformation.mean_det;

  if (two_level) result.coarse_matvecs = two_level->coarse_matvecs();
  result.velocity = std::move(v);
  result.time_to_solution = wall.seconds();
  result.timings = timings_delta(timings_before, comm.timings());
  return result;
}

void RegistrationSolver::deform_template(const ScalarField& rho_t,
                                         const VectorField& velocity,
                                         ScalarField& deformed) {
  semilag::TransportConfig tc;
  tc.nt = options_.nt;
  tc.method = options_.interp_method;
  tc.incompressible = options_.incompressible;
  tc.wire = options_.wire();
  tc.overlap = options_.overlap;
  semilag::Transport transport(*ops_, tc);
  transport.set_velocity(velocity);
  transport.solve_state(rho_t);
  deformed = transport.final_state();
}

void RegistrationSolver::jacobian_field(const VectorField& velocity,
                                        ScalarField& det) {
  semilag::TransportConfig tc;
  tc.nt = options_.nt;
  tc.method = options_.interp_method;
  tc.incompressible = options_.incompressible;
  tc.wire = options_.wire();
  tc.overlap = options_.overlap;
  semilag::Transport transport(*ops_, tc);
  transport.set_velocity(velocity);
  VectorField u;
  transport.solve_displacement(u);
  jacobian_determinant(*ops_, u, det);
}

}  // namespace diffreg::core
