// BatchSolver: registration as a service — B independent image pairs
// through shared plan infrastructure (ROADMAP item 3; docs/SERVICE.md).
//
// Jobs are submitted as SolveRequests (plus a grid and, optionally, an
// input factory) into a FIFO+priority queue; run_all() drains the queue
// collectively. Three throughput mechanisms stack on the shared
// PlanRegistry:
//
//  * plan amortization — all solvers and jobs of a shard lease their
//    decomposition/spectral/resample plans from one registry and check
//    transports out of its pool, so B same-shape jobs build each plan
//    family exactly once (registry.plan_build_count() proves it);
//  * communicator sharding — the p ranks are split into S sub-communicators
//    that each run a slice of the queue CONCURRENTLY: while one shard's
//    job computes, another shard's job is on the wire, so one job's compute
//    overlaps another job's exchanges (the cross-job form of the PR 6
//    comm/compute overlap). shards=0 picks S automatically; jobs whose
//    inputs are raw pointers pin S=1 (their blocks live on the parent
//    decomposition);
//  * fused exchanges — co-resident same-shape jobs of one shard batch
//    their uniform-control-flow phases (input pre-smoothing through
//    gaussian_smooth_many, final deformed-template transport through
//    solve_states_fused/FusedInterp) into single collectives, the
//    `interpolate_many` mechanism across jobs instead of across components.
//
// Determinism contract: with shards=1 every job's velocity is bitwise
// identical to running it alone through RegistrationSolver at the same rank
// count (the fused phases change message grouping, never values). Sharding
// changes the effective rank count per job (S shards of p/S ranks), which
// changes collective reduction order — a throughput mode, not a bitwise
// mode; see docs/SERVICE.md.
//
// Fault isolation (docs/FAULT_MODEL.md): each job's solve runs inside a
// structured-error boundary. A job that dies with a CommError or
// grid::NonFiniteFieldError is requeued on its shard with deterministic
// exponential backoff (batch-clock based, no wall-clock randomness) up to
// BatchOptions::retry_budget extra attempts; a job that exhausts the budget
// ends JobOutcome::kPoisoned instead of sinking the batch. Before a retry
// the shard's communicators are quiesced and drained
// (PlanRegistry::recover_after_fault), so a retried job's velocity is
// bitwise identical to its fault-free run. When recovery itself fails (a
// rank is truly down), the shard is drained: its registry is purged, the
// shard communicator and registry are rebuilt, and its unfinished jobs are
// redistributed across shards in the next failover round.
//
// Fairness/deadline semantics: higher priority runs earlier, FIFO within a
// priority class; round-robin assignment over shards in that order. By
// default deadlines are advisory (jobs are never killed): deadline_met
// records whether the job finished within its budget, measured on the batch
// clock (seconds since run_all start). With enforce_deadlines set, a job
// past its deadline is cancelled between Newton iterates (kDeadlineExceeded)
// or — with degrade also set — re-admitted ONCE with a cheaper
// configuration (kDegraded).
//
// Batch checkpoint/resume: with manifest_path set, per-job outcomes are
// persisted to a JSON manifest (core/batch_manifest.hpp) as they finalize.
// A killed batch rerun with the same job list and manifest skips the jobs
// the manifest marks final (zero plan work for them) and warm-starts
// in-flight jobs from their solver checkpoints when available.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/plan_registry.hpp"
#include "core/registration.hpp"

namespace diffreg::core {

/// Final (or persisted) state of one batch job — the job-outcome state
/// machine of docs/SERVICE.md: queued -> running -> {done, retrying(n),
/// poisoned, deadline-exceeded, degraded}.
enum class JobOutcome {
  kPending = 0,           ///< Queued, not yet finalized.
  kDone = 1,              ///< Solve completed (converged or not).
  kRetrying = 2,          ///< Faulted, requeued; non-final.
  kPoisoned = 3,          ///< Exhausted the retry budget; gave up.
  kDeadlineExceeded = 4,  ///< Cancelled past its deadline.
  kDegraded = 5,          ///< Completed on the cheaper degrade config.
};

/// Stable name for an outcome ("done", "poisoned", ...), as persisted in
/// batch manifests and printed by the CLI.
const char* to_string(JobOutcome outcome);
/// Inverse of to_string; unknown names map to kPending (re-run on resume).
JobOutcome outcome_from_string(const std::string& name);

/// Internal cancellation signal for deadline enforcement: thrown out of the
/// iterate hook on EVERY rank of the shard at the same iterate (the
/// past-deadline decision is a shard collective), so the solve terminates
/// cleanly with no stranded messages. Deliberately not a CommError: the
/// retry boundary must not treat a cancellation as a transport fault.
class JobDeadlineError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One queued job: the request plus what the batch driver needs to place
/// it. Either the request carries pencil-local input pointers (valid blocks
/// of the PARENT decomposition — pins shards=1), or `make_inputs` builds
/// the inputs on whatever shard decomposition the job lands on.
struct BatchJobSpec {
  SolveRequest request;
  Int3 dims{0, 0, 0};  ///< Grid of this job.
  /// Input factory: fills pencil-local template/reference blocks for the
  /// decomposition the job was placed on. Called once per placement, before
  /// the solve (again after a shard failover moves the job).
  std::function<void(grid::PencilDecomp&, ScalarField&, ScalarField&)>
      make_inputs;
};

struct BatchOptions {
  /// Concurrent shards; 0 = automatic (largest divisor of the rank count
  /// not exceeding the job count; 1 when any job carries raw input
  /// pointers). Must divide the rank count.
  int shards = 0;
  /// Fuse the uniform phases of co-resident same-shape jobs (input
  /// pre-smoothing, deformed-template transport) into single collectives.
  /// Per-job results are bitwise unaffected.
  bool fuse_exchanges = true;
  /// Also compute each job's deformed template rho_T(y1) (through the
  /// fused transport when fuse_exchanges is set).
  bool want_deformed = false;
  bool verbose = false;  ///< Per-job progress lines on rank 0 of each shard.

  // Fault isolation (docs/FAULT_MODEL.md). The retry path costs nothing on
  // the fault-free path: no extra collectives, no schedule change.
  /// Extra attempts a faulted job gets before it is marked kPoisoned
  /// (attempts = retry_budget + 1 total).
  int retry_budget = 2;
  /// Base of the deterministic exponential backoff before retry k:
  /// backoff_ms * 2^(k-1), measured on the batch clock (every rank of the
  /// shard waits it out identically — no wall-clock randomness). 0: retry
  /// immediately.
  double backoff_ms = 0;
  /// Enforce deadlines: cancel a job past its deadline between Newton
  /// iterates (kDeadlineExceeded). Off by default — the library default
  /// keeps deadlines advisory; the CLI batch driver turns this on.
  bool enforce_deadlines = false;
  /// With enforce_deadlines: re-admit a cancelled job ONCE with a cheaper
  /// configuration (halved iteration caps, no two-level preconditioner)
  /// instead of failing it; such a job ends kDegraded.
  bool degrade = false;
  /// Batch manifest path for checkpoint/resume (empty: off). See
  /// core/batch_manifest.hpp and the header comment above.
  std::string manifest_path;
  /// Rendezvous deadline for post-fault recovery (recover_after_fault). 0:
  /// derived from the communicator watchdog (2x comm_timeout_ms, at least
  /// 1000 ms) — it must exceed the watchdog so surviving ranks have time to
  /// time out of the faulted exchange and reach the recovery barrier.
  double recover_timeout_ms = 0;
};

/// Global per-job digest, present on EVERY rank after run_all (full
/// SolveReports exist only on the ranks of the shard that ran the job).
struct BatchJobSummary {
  std::uint64_t job_id = 0;
  int shard = 0;
  bool ran_here = false;  ///< True on the ranks of the executing shard.
  /// Final state; kPending never survives run_all. Jobs restored from a
  /// manifest keep their persisted outcome and report shard = -1.
  JobOutcome outcome = JobOutcome::kPending;
  int attempts = 0;  ///< Solve attempts spent (1 for a fault-free job).
  bool converged = false;
  int newton_iters = 0;
  int matvecs = 0;
  real_t rel_residual = 1;
  real_t min_det = 0;
  double solve_seconds = 0;
  /// Batch-clock timestamp (seconds since run_all start) of the FINAL
  /// successful attempt's completion; retries never reset the clock, so
  /// deadline_met is judged against the job's original admission.
  double completed_at_seconds = 0;
  bool deadline_met = true;
};

struct BatchReport {
  /// Full reports of the jobs THIS rank's shard ran, in completion order.
  std::vector<SolveReport> reports;
  /// Deformed templates aligned with `reports` (empty unless
  /// BatchOptions::want_deformed).
  std::vector<ScalarField> deformed;
  /// One digest per submitted job (submit order), identical on all ranks.
  std::vector<BatchJobSummary> summary;
  double wall_seconds = 0;  ///< Max over ranks, run_all start to finish.
  double registrations_per_sec = 0;
  int shards = 1;
  int rounds = 1;          ///< Scheduling rounds run (1 = no failover).
  int shard_rebuilds = 0;  ///< Shards drained and rebuilt after faults.
  PlanRegistry::Stats registry;  ///< This rank's shard registry, cumulative.
};

class BatchSolver {
 public:
  /// All ranks of `comm` must construct the solver, submit the SAME job
  /// sequence, and call run_all together (SPMD discipline).
  explicit BatchSolver(mpisim::Communicator comm) : comm_(comm) {}

  /// Enqueues a job; returns its job id (assigned when request.job_id is
  /// 0). Submission never communicates.
  std::uint64_t submit(BatchJobSpec spec);

  std::size_t pending() const { return queue_.size(); }

  /// Drains the queue. Collective over the constructor communicator.
  /// Shard registries persist across run_all calls, so a second batch of
  /// same-shape jobs builds no plans at all. Structured job failures
  /// (CommError, NonFiniteFieldError) are absorbed by the retry/failover
  /// machinery and reported per job in the summary; only infrastructure
  /// errors (manifest I/O, invalid options) still throw.
  BatchReport run_all(const BatchOptions& opts = {});

 private:
  struct Shard {
    mpisim::Communicator sub;
    std::shared_ptr<PlanRegistry> registry;
  };
  Shard& shard_context(int shards, int shard_size, int color);

  mpisim::Communicator comm_;
  std::vector<BatchJobSpec> queue_;
  std::uint64_t next_job_id_ = 1;
  // Shard contexts cached across run_all calls, keyed by shard count.
  std::map<int, Shard> shards_;
};

}  // namespace diffreg::core
