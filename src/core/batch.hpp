// BatchSolver: registration as a service — B independent image pairs
// through shared plan infrastructure (ROADMAP item 3; docs/SERVICE.md).
//
// Jobs are submitted as SolveRequests (plus a grid and, optionally, an
// input factory) into a FIFO+priority queue; run_all() drains the queue
// collectively. Three throughput mechanisms stack on the shared
// PlanRegistry:
//
//  * plan amortization — all solvers and jobs of a shard lease their
//    decomposition/spectral/resample plans from one registry and check
//    transports out of its pool, so B same-shape jobs build each plan
//    family exactly once (registry.plan_build_count() proves it);
//  * communicator sharding — the p ranks are split into S sub-communicators
//    that each run a slice of the queue CONCURRENTLY: while one shard's
//    job computes, another shard's job is on the wire, so one job's compute
//    overlaps another job's exchanges (the cross-job form of the PR 6
//    comm/compute overlap). shards=0 picks S automatically; jobs whose
//    inputs are raw pointers pin S=1 (their blocks live on the parent
//    decomposition);
//  * fused exchanges — co-resident same-shape jobs of one shard batch
//    their uniform-control-flow phases (input pre-smoothing through
//    gaussian_smooth_many, final deformed-template transport through
//    solve_states_fused/FusedInterp) into single collectives, the
//    `interpolate_many` mechanism across jobs instead of across components.
//
// Determinism contract: with shards=1 every job's velocity is bitwise
// identical to running it alone through RegistrationSolver at the same rank
// count (the fused phases change message grouping, never values). Sharding
// changes the effective rank count per job (S shards of p/S ranks), which
// changes collective reduction order — a throughput mode, not a bitwise
// mode; see docs/SERVICE.md.
//
// Fairness/deadline semantics: higher priority runs earlier, FIFO within a
// priority class; round-robin assignment over shards in that order.
// Deadlines are advisory (jobs are never killed): deadline_met records
// whether the job finished within its budget, measured on the batch clock
// (seconds since run_all start).
#pragma once

#include <functional>
#include <vector>

#include "core/plan_registry.hpp"
#include "core/registration.hpp"

namespace diffreg::core {

/// One queued job: the request plus what the batch driver needs to place
/// it. Either the request carries pencil-local input pointers (valid blocks
/// of the PARENT decomposition — pins shards=1), or `make_inputs` builds
/// the inputs on whatever shard decomposition the job lands on.
struct BatchJobSpec {
  SolveRequest request;
  Int3 dims{0, 0, 0};  ///< Grid of this job.
  /// Input factory: fills pencil-local template/reference blocks for the
  /// decomposition the job was placed on. Called once, before the solve.
  std::function<void(grid::PencilDecomp&, ScalarField&, ScalarField&)>
      make_inputs;
};

struct BatchOptions {
  /// Concurrent shards; 0 = automatic (largest divisor of the rank count
  /// not exceeding the job count; 1 when any job carries raw input
  /// pointers). Must divide the rank count.
  int shards = 0;
  /// Fuse the uniform phases of co-resident same-shape jobs (input
  /// pre-smoothing, deformed-template transport) into single collectives.
  /// Per-job results are bitwise unaffected.
  bool fuse_exchanges = true;
  /// Also compute each job's deformed template rho_T(y1) (through the
  /// fused transport when fuse_exchanges is set).
  bool want_deformed = false;
  bool verbose = false;  ///< Per-job progress lines on rank 0 of each shard.
};

/// Global per-job digest, present on EVERY rank after run_all (full
/// SolveReports exist only on the ranks of the shard that ran the job).
struct BatchJobSummary {
  std::uint64_t job_id = 0;
  int shard = 0;
  bool ran_here = false;  ///< True on the ranks of the executing shard.
  bool converged = false;
  int newton_iters = 0;
  int matvecs = 0;
  real_t rel_residual = 1;
  real_t min_det = 0;
  double solve_seconds = 0;
  /// Batch-clock timestamp (seconds since run_all start) of completion.
  double completed_at_seconds = 0;
  bool deadline_met = true;
};

struct BatchReport {
  /// Full reports of the jobs THIS rank's shard ran, in execution order.
  std::vector<SolveReport> reports;
  /// Deformed templates aligned with `reports` (empty unless
  /// BatchOptions::want_deformed).
  std::vector<ScalarField> deformed;
  /// One digest per submitted job (submit order), identical on all ranks.
  std::vector<BatchJobSummary> summary;
  double wall_seconds = 0;  ///< Max over ranks, run_all start to finish.
  double registrations_per_sec = 0;
  int shards = 1;
  PlanRegistry::Stats registry;  ///< This rank's shard registry, cumulative.
};

class BatchSolver {
 public:
  /// All ranks of `comm` must construct the solver, submit the SAME job
  /// sequence, and call run_all together (SPMD discipline).
  explicit BatchSolver(mpisim::Communicator comm) : comm_(comm) {}

  /// Enqueues a job; returns its job id (assigned when request.job_id is
  /// 0). Submission never communicates.
  std::uint64_t submit(BatchJobSpec spec);

  std::size_t pending() const { return queue_.size(); }

  /// Drains the queue. Collective over the constructor communicator.
  /// Shard registries persist across run_all calls, so a second batch of
  /// same-shape jobs builds no plans at all.
  BatchReport run_all(const BatchOptions& opts = {});

 private:
  struct Shard {
    mpisim::Communicator sub;
    std::shared_ptr<PlanRegistry> registry;
  };
  Shard& shard_context(int shards, int shard_size, int color);

  mpisim::Communicator comm_;
  std::vector<BatchJobSpec> queue_;
  std::uint64_t next_job_id_ = 1;
  // Shard contexts cached across run_all calls, keyed by shard count.
  std::map<int, Shard> shards_;
};

}  // namespace diffreg::core
