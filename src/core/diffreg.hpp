// Umbrella header: the public API of the diffreg library.
//
// diffreg reproduces "Distributed-Memory Large Deformation Diffeomorphic 3D
// Image Registration" (Mang, Gholami, Biros; SC16). See README.md for a
// quickstart and DESIGN.md for the architecture.
#pragma once

#include "common/logger.hpp"
#include "common/partition.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"
#include "core/batch.hpp"
#include "core/checkpoint.hpp"
#include "core/continuation.hpp"
#include "core/deformation.hpp"
#include "core/newton.hpp"
#include "core/optimality.hpp"
#include "core/options.hpp"
#include "core/pcg.hpp"
#include "core/plan_registry.hpp"
#include "core/precond.hpp"
#include "core/registration.hpp"
#include "core/regularization.hpp"
#include "core/rigid.hpp"
#include "fft/fft1d.hpp"
#include "fft/fft3d_distributed.hpp"
#include "fft/fft3d_serial.hpp"
#include "grid/decomposition.hpp"
#include "grid/field_io.hpp"
#include "grid/field_math.hpp"
#include "grid/ghost_exchange.hpp"
#include "interp/fused_exchange.hpp"
#include "interp/interp_plan.hpp"
#include "interp/kernels.hpp"
#include "mpisim/communicator.hpp"
#include "semilag/time_varying.hpp"
#include "semilag/transport.hpp"
#include "spectral/operators.hpp"
#include "spectral/resample.hpp"
