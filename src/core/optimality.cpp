#include "core/optimality.hpp"

#include "core/precond.hpp"

namespace diffreg::core {

real_t OptimalitySystem::evaluate(const VectorField& v) {
  transport_->set_velocity(v);
  transport_->solve_state(rho_t_);
  const ScalarField& rho1 = transport_->final_state();
  const index_t n = decomp().local_real_size();
  if (lambda1_.size() != static_cast<size_t>(n)) lambda1_.resize(n);
  for (index_t i = 0; i < n; ++i) lambda1_[i] = rho1[i] - rho_r_[i];
  const real_t res_norm = grid::norm_l2(decomp(), lambda1_);
  mismatch_ = real_t(0.5) * res_norm * res_norm;
  return mismatch_ + reg_->evaluate(v);
}

void OptimalitySystem::gradient(VectorField& g) {
  const index_t n = decomp().local_real_size();
  // Adjoint terminal condition lam(1) = rho_r - rho(1) = -lambda1_.
  if (lam_scratch_.size() != static_cast<size_t>(n)) lam_scratch_.resize(n);
  for (index_t i = 0; i < n; ++i) lam_scratch_[i] = -lambda1_[i];
  transport_->solve_adjoint(lam_scratch_, b_, /*store_lambda=*/!gauss_newton_);

  if (incompressible_) ops_->leray_project(b_);
  reg_->apply(transport_->velocity(), reg_term_);
  g = b_;
  grid::axpy(real_t(1), reg_term_, g);

  // gradient() runs once per accepted Newton iterate — the natural place to
  // re-linearize the coarse Hessian the preconditioner applies.
  if (two_level_ != nullptr) two_level_->sync(transport_->velocity());
}

void OptimalitySystem::hessian_matvec(const VectorField& vtilde,
                                      VectorField& out) {
  ++matvecs_;
  const index_t n = decomp().local_real_size();
  transport_->solve_incremental_state(vtilde, rho_tilde1_,
                                      /*store_hist=*/!gauss_newton_);
  if (lam_scratch_.size() != static_cast<size_t>(n)) lam_scratch_.resize(n);
  for (index_t i = 0; i < n; ++i) lam_scratch_[i] = -rho_tilde1_[i];

  if (gauss_newton_)
    transport_->solve_incremental_adjoint_gn(lam_scratch_, b_tilde_);
  else
    transport_->solve_incremental_adjoint_full(lam_scratch_, vtilde, b_tilde_);

  if (incompressible_) ops_->leray_project(b_tilde_);
  reg_->apply(vtilde, out);
  grid::axpy(real_t(1), b_tilde_, out);
}

void OptimalitySystem::apply_preconditioner(const VectorField& r,
                                            VectorField& out) {
  reg_->invert(r, out);
  if (two_level_ != nullptr) two_level_->correct(r, out);
  if (incompressible_) ops_->leray_project(out);
}

void OptimalitySystem::final_residual(ScalarField& out) const {
  out = lambda1_;
}

}  // namespace diffreg::core
