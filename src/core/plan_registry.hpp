// PlanRegistry: shared plan infrastructure for many-pair registration
// (ROADMAP item 3, the service counterpart of the PR 3 caching contract).
//
// Every plan family the solver builds — pencil decompositions (two
// communicator splits each), spectral operator sets (a distributed FFT plan
// with all transpose buffers), resample plans, and transports (ghost
// exchanger + interpolation plans + time-history storage) — is built ONCE
// per key and leased to jobs. Keys are (dims, process grid, wire precision,
// overlap) plus, for transports, the transport configuration; two jobs with
// the same shape and precision policy share one entry, jobs with different
// shapes or wire formats get distinct entries.
//
// Two lease shapes:
//  * decomp/spectral/resample — genuinely shareable (stateless between
//    calls apart from scratch that every use overwrites): one shared entry,
//    handed out as shared_ptr leases.
//  * transport — job-scoped (it caches the job's velocity, departure-point
//    plans and time histories), so it is POOLED, not shared: acquire checks
//    one out (building only when the free list is empty), release checks it
//    back in with its buffers warm. A transport reused across jobs keeps
//    every allocation; only the per-velocity departure plans rebuild, which
//    is the PR 3 contract (plans follow the velocity, buffers follow the
//    plan object).
//
// `stats()` exposes per-family build counters and the total lease count, so
// tests and the batch bench can assert "B same-shape jobs built each plan
// exactly once" the same way Transport::plan_build_count() proves
// per-velocity reuse.
//
// Collective discipline: decomp construction splits the communicator and a
// first lease builds plans, so lease calls are COLLECTIVE over the
// registry's communicator — all ranks must lease the same keys in the same
// order (the usual SPMD discipline). The registry is per-rank state (each
// rank of an mpisim::run_spmd body constructs its own); it is not
// thread-shared and needs no locks.
#pragma once

#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "grid/decomposition.hpp"
#include "semilag/transport.hpp"
#include "spectral/operators.hpp"
#include "spectral/resample.hpp"

namespace diffreg::core {

class PlanRegistry {
 public:
  /// The registry serves plans on (splits of) this communicator; all
  /// decompositions it builds use the default near-square process grid for
  /// the communicator's size.
  explicit PlanRegistry(mpisim::Communicator comm) : comm_(comm) {}

  mpisim::Communicator& comm() { return comm_; }

  /// Decomposition for `dims` (built on first lease; two communicator
  /// splits). Collective.
  std::shared_ptr<grid::PencilDecomp> decomp(const Int3& dims);

  /// Spectral operator set (FFT plan + wavenumber tables) for
  /// (dims, wire, overlap), bound to decomp(dims). Collective.
  std::shared_ptr<spectral::SpectralOps> spectral(const Int3& dims,
                                                  WirePrecision wire,
                                                  bool overlap);

  /// Grid-transfer plan decomp(from) -> decomp(to) at `wire`. Collective.
  std::shared_ptr<spectral::ResamplePlan> resample(const Int3& from,
                                                   const Int3& to,
                                                   WirePrecision wire);

  /// Checks a transport for (dims, tc) out of the pool, building one only
  /// when the free list is empty. The returned transport is invalidated
  /// (no cached velocity or histories) but keeps all buffer capacity from
  /// its previous job. Collective on first build.
  std::shared_ptr<semilag::Transport> acquire_transport(
      const Int3& dims, const semilag::TransportConfig& tc);

  /// Returns a transport to the pool for the next job with the same key.
  void release_transport(const Int3& dims, const semilag::TransportConfig& tc,
                         std::shared_ptr<semilag::Transport> transport);

  /// Collective fault recovery: quiesces and drains the registry's
  /// communicator and every cached decomposition's row/col communicators
  /// (map order — identical on all ranks), discarding stale in-flight
  /// payloads of an aborted exchange so the next lease observes a clean
  /// wire. Pooled transports need no extra scrubbing here: acquire_transport
  /// already invalidates plans/histories on checkout — the stale state a
  /// fault leaves behind lives in the communicators, which is what this
  /// drains. Returns false when any communicator is unrecoverable (a rank
  /// is truly down): the shard should be rebuilt, not reused. Never throws.
  bool recover_after_fault(double timeout_ms);

  /// Drops every cached plan and pooled transport (the failover purge: a
  /// rebuilt shard must not lease plans bound to the dead shard's
  /// communicators). Build counters are cumulative and survive the purge.
  void purge();

  struct Stats {
    int decomp_builds = 0;
    int spectral_builds = 0;
    int resample_builds = 0;
    int transport_builds = 0;
    int leases = 0;  ///< Lease/acquire calls served (builds + cache hits).
  };
  const Stats& stats() const { return stats_; }
  /// Total plan objects constructed across all families — the
  /// `plan_build_count` of the registry contract: stays flat while leases
  /// grow when jobs share infrastructure.
  int plan_build_count() const {
    return stats_.decomp_builds + stats_.spectral_builds +
           stats_.resample_builds + stats_.transport_builds;
  }

  std::size_t decomp_entries() const { return decomps_.size(); }
  std::size_t spectral_entries() const { return spectrals_.size(); }
  std::size_t resample_entries() const { return resamples_.size(); }

 private:
  using DimsKey = std::tuple<index_t, index_t, index_t>;
  // dims + wire + overlap.
  using SpectralKey = std::tuple<index_t, index_t, index_t, int, int>;
  // from-dims + to-dims + wire.
  using ResampleKey = std::tuple<index_t, index_t, index_t, index_t, index_t,
                                 index_t, int>;
  // dims + nt + method + incompressible + wire + overlap.
  using TransportKey =
      std::tuple<index_t, index_t, index_t, int, int, int, int, int>;

  static DimsKey dims_key(const Int3& d) { return {d[0], d[1], d[2]}; }
  static TransportKey transport_key(const Int3& d,
                                    const semilag::TransportConfig& tc) {
    return {d[0],
            d[1],
            d[2],
            tc.nt,
            static_cast<int>(tc.method),
            tc.incompressible ? 1 : 0,
            static_cast<int>(tc.wire),
            tc.overlap ? 1 : 0};
  }

  mpisim::Communicator comm_;
  std::map<DimsKey, std::shared_ptr<grid::PencilDecomp>> decomps_;
  std::map<SpectralKey, std::shared_ptr<spectral::SpectralOps>> spectrals_;
  std::map<ResampleKey, std::shared_ptr<spectral::ResamplePlan>> resamples_;
  std::map<TransportKey, std::vector<std::shared_ptr<semilag::Transport>>>
      transport_pool_;
  Stats stats_;
};

}  // namespace diffreg::core
