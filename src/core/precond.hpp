// Two-level (coarse-grid) Hessian preconditioner (paper section I,
// Limitations: "multilevel preconditioning"; the CLAIRE line of work —
// Mang & Biros 2017, Brunn et al. 2020 — shows this is what keeps the PCG
// iteration count flat when beta gets small).
//
// The spectral preconditioner (beta A)^{-1} is exact on the regularization
// term but ignores the data term of the Hessian H = beta A + H_data, which
// dominates the LOW-frequency end — at small beta the spectrally
// preconditioned system becomes badly conditioned exactly there. The
// remedy: treat the low band with an approximate inverse of the full coarse
// Hessian and keep the spectral smoother for the high band.
//
// Because the grid transfers are spectral truncation / zero padding,
// restrict/prolong are an exact orthogonal frequency-band splitting, and
// (beta A)^{-1} acts identically on matching integer wavenumbers of both
// grids. The application therefore needs no explicit band projector:
//
//   P^{-1} r = (beta A)^{-1} r                              (all modes)
//            + prolong( Hc^{-1}~ r_c  -  (beta A_c)^{-1} r_c ),
//
// with r_c = restrict(r) and Hc^{-1}~ a few inner CG sweeps on the coarse
// Gauss-Newton Hessian (themselves preconditioned by the coarse spectral
// inverse). The subtraction removes the smoother's low band, so low modes
// see exactly the coarse Hessian solve and high modes exactly the smoother.
//
// One application costs two grid transfers (5 alltoallv each, all three
// components batched) plus `inner_iters` coarse-grid Hessian matvecs — the
// coarse grid has ~1/8 the points, so the whole correction is a fraction of
// one fine matvec. All state (coarse decomposition, transport, transfer
// plans, CG workspace) is owned here and reused: warm applications perform
// no heap allocation beyond the coarse transport's plan cache.
#pragma once

#include <memory>

#include "core/optimality.hpp"
#include "core/options.hpp"
#include "core/pcg.hpp"
#include "core/regularization.hpp"
#include "semilag/transport.hpp"
#include "spectral/resample.hpp"

namespace diffreg::core {

class TwoLevelPreconditioner {
 public:
  /// `rho_t_s`/`rho_r_s` are the (already smoothed) fine-grid images; they
  /// are restricted once at construction. Collective.
  TwoLevelPreconditioner(grid::PencilDecomp& fine_decomp,
                         const RegistrationOptions& opt,
                         const ScalarField& rho_t_s,
                         const ScalarField& rho_r_s);

  /// Re-linearizes the coarse Hessian at a new iterate: restricts the fine
  /// velocity and runs the coarse state solve. Called by the optimality
  /// system once per accepted Newton iterate (from gradient()). Collective.
  void sync(const VectorField& v_fine);

  /// Adds the coarse-grid correction to `out` (which already holds the fine
  /// spectral smoother applied to `r`). No-op until the first sync().
  void correct(const VectorField& r, VectorField& out);

  grid::PencilDecomp& coarse_decomp() { return coarse_decomp_; }
  /// Coarse Hessian matvecs performed so far (the inner CG work).
  int coarse_matvecs() const { return system_->matvec_count(); }

 private:
  grid::PencilDecomp coarse_decomp_;
  spectral::SpectralOps ops_;
  semilag::Transport transport_;
  Regularization reg_;
  spectral::ResamplePlan restrict_plan_;  // fine -> coarse
  spectral::ResamplePlan prolong_plan_;   // coarse -> fine
  std::unique_ptr<OptimalitySystem> system_;
  int inner_iters_;
  /// Under Precision::kMixed the inner coarse CG sweeps run the fp32
  /// recurrence (pcg_solve_mixed) — the coarse Hessian inverse is an
  /// approximation by construction, so the reduced storage precision costs
  /// nothing the truncated iteration had not already given up.
  bool mixed_;
  bool synced_ = false;

  // Persistent scratch (coarse blocks + one fine block).
  VectorField v_c_, r_c_, z_c_, smooth_c_, corr_;
  PcgWorkspace ws_;
  PcgWorkspace32 ws32_;
};

}  // namespace diffreg::core
