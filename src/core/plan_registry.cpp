#include "core/plan_registry.hpp"

namespace diffreg::core {

// Leased handles borrow from the registry's maps (a SpectralOps references
// its PencilDecomp, a Transport its SpectralOps), so every lease is valid
// for the registry's lifetime — the maps never evict.

std::shared_ptr<grid::PencilDecomp> PlanRegistry::decomp(const Int3& dims) {
  ++stats_.leases;
  const DimsKey key = dims_key(dims);
  auto it = decomps_.find(key);
  if (it == decomps_.end()) {
    it = decomps_
             .emplace(key, std::make_shared<grid::PencilDecomp>(comm_, dims))
             .first;
    ++stats_.decomp_builds;
  }
  return it->second;
}

std::shared_ptr<spectral::SpectralOps> PlanRegistry::spectral(
    const Int3& dims, WirePrecision wire, bool overlap) {
  ++stats_.leases;
  const SpectralKey key{dims[0], dims[1], dims[2], static_cast<int>(wire),
                        overlap ? 1 : 0};
  auto it = spectrals_.find(key);
  if (it == spectrals_.end()) {
    auto d = decomp(dims);
    it = spectrals_
             .emplace(key, std::make_shared<spectral::SpectralOps>(*d, wire,
                                                                   overlap))
             .first;
    ++stats_.spectral_builds;
  }
  return it->second;
}

std::shared_ptr<spectral::ResamplePlan> PlanRegistry::resample(
    const Int3& from, const Int3& to, WirePrecision wire) {
  ++stats_.leases;
  const ResampleKey key{from[0], from[1], from[2], to[0],
                        to[1],   to[2],   static_cast<int>(wire)};
  auto it = resamples_.find(key);
  if (it == resamples_.end()) {
    auto src = decomp(from);
    auto dst = decomp(to);
    it = resamples_
             .emplace(key,
                      std::make_shared<spectral::ResamplePlan>(*src, *dst, wire))
             .first;
    ++stats_.resample_builds;
  }
  return it->second;
}

std::shared_ptr<semilag::Transport> PlanRegistry::acquire_transport(
    const Int3& dims, const semilag::TransportConfig& tc) {
  ++stats_.leases;
  auto& free_list = transport_pool_[transport_key(dims, tc)];
  if (!free_list.empty()) {
    auto t = free_list.back();
    free_list.pop_back();
    // Pool hygiene: a checked-out transport must behave like a fresh one —
    // no plans or velocity cache from the previous job — while keeping its
    // buffer capacity.
    t->invalidate_plans();
    return t;
  }
  auto ops = spectral(dims, tc.wire, tc.overlap);
  auto t = std::make_shared<semilag::Transport>(*ops, tc);
  ++stats_.transport_builds;
  return t;
}

void PlanRegistry::release_transport(const Int3& dims,
                                     const semilag::TransportConfig& tc,
                                     std::shared_ptr<semilag::Transport> t) {
  transport_pool_[transport_key(dims, tc)].push_back(std::move(t));
}

bool PlanRegistry::recover_after_fault(double timeout_ms) {
  // The registry communicator first (shard-wide rendezvous), then each
  // decomposition's comm family. decomps_ is an ordered map over identical
  // keys on every rank, so the rendezvous sequence is rank-invariant.
  bool ok = comm_.recover_after_fault(timeout_ms);
  for (auto& [key, decomp] : decomps_)
    ok = decomp->recover_after_fault(timeout_ms) && ok;
  return ok;
}

void PlanRegistry::purge() {
  transport_pool_.clear();
  resamples_.clear();
  spectrals_.clear();
  decomps_.clear();
}

}  // namespace diffreg::core
