// Regularization functionals for the velocity (paper section II-B and the
// "different regularization functionals" design goal).
//
//   H1 seminorm: J_reg = beta/2 ||grad v||^2,  A = -lap   (eq. 2a)
//   H2 seminorm: J_reg = beta/2 ||lap v||^2,   A = lap^2  (biharmonic; the
//                smoothness LDDR theory asks for, and the operator whose
//                inverse the paper uses as the spectral preconditioner)
//
// Both operators are diagonal in Fourier space, so `apply` and `invert` cost
// one batched forward + one batched inverse FFT for all three velocity
// components (the components share each transpose's alltoallv exchange, so
// an apply is 4 exchanges instead of 12). `invert` acts as the identity
// on the k = 0 mode (the seminorms do not control the mean; passing it
// through unchanged keeps the operator SPD so it is a valid preconditioner).
#pragma once

#include "grid/field_math.hpp"
#include "spectral/operators.hpp"

namespace diffreg::core {

using grid::ScalarField;
using grid::VectorField;

enum class RegType { kH1Seminorm, kH2Seminorm };

class Regularization {
 public:
  Regularization(spectral::SpectralOps& ops, RegType type, real_t beta)
      : ops_(&ops), type_(type), beta_(beta) {}

  RegType type() const { return type_; }
  real_t beta() const { return beta_; }
  void set_beta(real_t beta) { beta_ = beta; }

  int gamma() const { return type_ == RegType::kH1Seminorm ? 1 : 2; }

  /// J_reg(v) = beta/2 <v, A v>. `av_` is persistent scratch: evaluate() is
  /// called once per line-search step, so the apply must not allocate.
  real_t evaluate(const VectorField& v) {
    if (av_.local_size() != v.local_size()) av_ = VectorField(v.local_size());
    ops_->neg_laplacian_pow(v, gamma(), av_);
    return real_t(0.5) * beta_ * grid::dot(ops_->decomp(), v, av_);
  }

  /// out = beta A v.
  void apply(const VectorField& v, VectorField& out) {
    ops_->neg_laplacian_pow(v, gamma(), out);
    grid::scale(beta_, out);
  }

  /// out = (beta A)^{-1} v on k != 0 modes, identity on the mean mode
  /// (which the seminorm does not control); this is the paper's spectral
  /// preconditioner, SPD by construction.
  void invert(const VectorField& v, VectorField& out) {
    ops_->inv_neg_laplacian_pow(v, gamma(), out, real_t(1) / beta_,
                                /*mean_scale=*/real_t(1));
  }

 private:
  spectral::SpectralOps* ops_;
  RegType type_;
  real_t beta_;
  VectorField av_;  // scratch for evaluate()
};

}  // namespace diffreg::core
