#include "core/newton.hpp"

#include <cmath>
#include <cstdio>

#include "core/pcg.hpp"

namespace diffreg::core {

namespace {

real_t forcing_term(const RegistrationOptions& opt, real_t rel_gradient) {
  switch (opt.forcing) {
    case Forcing::kQuadratic:
      return std::min(opt.forcing_max, rel_gradient);
    case Forcing::kSuperlinear:
      return std::min(opt.forcing_max, std::sqrt(rel_gradient));
    case Forcing::kConstant:
      break;
  }
  return opt.forcing_max;
}

}  // namespace

NewtonReport newton_solve(OptimalitySystem& system, VectorField& v,
                          const RegistrationOptions& options) {
  NewtonReport report;
  auto& decomp = system.decomp();
  const bool root = decomp.comm().is_root();
  const index_t n = decomp.local_real_size();

  system.reset_matvec_count();
  const int plan_builds_before = system.transport().plan_build_count();

  VectorField g(n), rhs(n), step(n), v_trial(n);
  // Workspaces shared across the Newton iterations; only the one matching
  // options.precision ever allocates its fields.
  PcgWorkspace pcg_ws;
  PcgWorkspace32 pcg_ws32;
  const bool mixed = options.precision == Precision::kMixed;

  // Convergence is measured relative to the gradient at zero velocity, so a
  // warm-started solve targets the same absolute gradient norm as a cold one
  // (otherwise a good initial guess shrinks g0 and *tightens* the stopping
  // criterion, making warm starts do more work than cold starts). Callers
  // that know ||g(0)|| pass it via options to skip the extra solves here.
  real_t g_ref = options.gradient_reference;
  if (g_ref <= 0 && grid::norm_l2(decomp, v) > 0) {
    VectorField zero(n);
    system.evaluate(zero);
    system.gradient(g);
    g_ref = grid::norm_l2(decomp, g);
  }

  real_t objective = system.evaluate(v);
  real_t g0_norm = 0;

  for (int iter = 0; iter <= options.max_newton_iters; ++iter) {
    system.gradient(g);
    if (options.guard) {
      // Collective finite sweep (every rank throws together; see
      // grid::validate_finite). The objective is already reduced, so the
      // scalar test below is consistent across ranks without another
      // collective.
      grid::validate_finite(decomp, g, "newton gradient");
      if (!std::isfinite(objective))
        throw grid::NonFiniteFieldError(
            "non-finite objective in newton_solve");
    }
    const real_t g_norm = grid::norm_l2(decomp, g);
    if (iter == 0) {
      g0_norm = g_ref > 0 ? g_ref : g_norm;
      report.initial_gradient_norm = g_norm;
    }
    const real_t rel_g = g0_norm > 0 ? g_norm / g0_norm : real_t(0);

    NewtonIterationLog entry;
    entry.iteration = iter;
    entry.objective = objective;
    entry.gradient_norm = g_norm;
    entry.rel_gradient = rel_g;

    if (options.verbose && root)
      std::fprintf(stderr,
                   "[newton] it %2d  J %.6e  |g| %.6e  rel %.3e\n", iter,
                   objective, g_norm, rel_g);

    if (g_norm == 0 || rel_g <= options.gtol) {
      report.converged = true;
      report.log.push_back(entry);
      break;
    }
    if (iter == options.max_newton_iters) {
      report.log.push_back(entry);
      break;
    }

    // Newton step: H s = -g, solved inexactly (Eisenstat-Walker forcing).
    // Under Precision::kMixed the Krylov recurrence runs on fp32 storage
    // (pcg_solve_mixed) — safe because this loop is an iterative
    // refinement: the gradient above is re-computed in full fp64 at every
    // iterate, so inner rounding only perturbs the search direction, never
    // the measured optimality.
    const real_t eta = forcing_term(options, rel_g);
    entry.forcing = eta;
    rhs = g;
    grid::scale(real_t(-1), rhs);
    const auto apply_a = [&](const VectorField& x, VectorField& y) {
      system.hessian_matvec(x, y);
    };
    const auto apply_m = [&](const VectorField& x, VectorField& y) {
      system.apply_preconditioner(x, y);
    };
    PcgResult pcg =
        mixed ? pcg_solve_mixed(decomp, apply_a, apply_m, rhs, step, eta,
                                options.max_krylov_iters, pcg_ws32)
              : pcg_solve(decomp, apply_a, apply_m, rhs, step, eta,
                          options.max_krylov_iters, pcg_ws);
    if (mixed && options.guard && (pcg.breakdown || !pcg.converged)) {
      // Guard-mode precision escalation: the fp32 recurrence broke down or
      // stagnated short of its forcing tolerance — redo this step's Krylov
      // solve in full fp64 (the conservative end of the recovery ladder;
      // docs/FAULT_MODEL.md).
      pcg = pcg_solve(decomp, apply_a, apply_m, rhs, step, eta,
                      options.max_krylov_iters, pcg_ws);
      ++report.fp64_escalations;
    }
    if (options.guard) grid::validate_finite(decomp, step, "newton step");
    entry.krylov_iterations = pcg.iterations;

    // Descent safeguard: fall back to the preconditioned steepest-descent
    // direction if PCG returned an ascent direction.
    real_t gs = grid::dot(decomp, g, step);
    if (gs >= 0) {
      system.apply_preconditioner(rhs, step);
      gs = grid::dot(decomp, g, step);
    }

    // Armijo backtracking line search.
    real_t alpha = 1;
    bool accepted = false;
    real_t trial_objective = objective;
    for (int ls = 0; ls < options.max_line_search; ++ls) {
      grid::copy(v, v_trial);
      grid::axpy(alpha, step, v_trial);
      trial_objective = system.evaluate(v_trial);
      if (trial_objective <= objective + options.armijo_c1 * alpha * gs) {
        accepted = true;
        break;
      }
      alpha *= real_t(0.5);
    }
    if (!accepted && options.guard) {
      // Guard-mode line-search recovery: retry along the preconditioned
      // steepest-descent direction with a damped initial step. The damping
      // both skips the step lengths a Newton direction would want and
      // extends the halving ladder past where the first search gave up.
      system.apply_preconditioner(rhs, step);
      gs = grid::dot(decomp, g, step);
      if (gs < 0) {
        alpha = real_t(0.25);
        for (int ls = 0; ls < options.max_line_search; ++ls) {
          grid::copy(v, v_trial);
          grid::axpy(alpha, step, v_trial);
          trial_objective = system.evaluate(v_trial);
          if (trial_objective <=
              objective + options.armijo_c1 * alpha * gs) {
            accepted = true;
            ++report.line_search_recoveries;
            break;
          }
          alpha *= real_t(0.5);
        }
      }
    }
    if (!accepted) {
      // Restore the state fields of the current iterate and stop.
      objective = system.evaluate(v);
      entry.step_length = 0;
      report.log.push_back(entry);
      if (options.verbose && root)
        std::fprintf(stderr, "[newton] line search failed at it %d\n", iter);
      break;
    }

    grid::copy(v_trial, v);
    objective = trial_objective;
    entry.step_length = alpha;
    report.log.push_back(entry);
    report.iterations = iter + 1;

    if (options.iterate_hook) {
      NewtonIterateInfo info;
      info.iterates_done = iter + 1;
      info.gradient_reference = g0_norm;
      info.velocity = &v;
      options.iterate_hook(info);
    }
  }

  report.final_objective = objective;
  report.final_gradient_norm =
      report.log.empty() ? real_t(0) : report.log.back().gradient_norm;
  report.total_matvecs = system.matvec_count();
  report.plan_builds =
      system.transport().plan_build_count() - plan_builds_before;
  return report;
}

}  // namespace diffreg::core
