/// @file batch_manifest.hpp
/// Batch-level checkpoint/resume: the per-job outcome manifest.
///
/// A batch manifest is a small JSON file (`--batch-manifest state.json`)
/// recording, for every job of a batch, its last known outcome, attempt
/// count, completion time, and per-job solver-checkpoint path. A killed
/// `--batch` process rerun with the same job list and manifest path skips
/// the jobs the manifest marks final and warm-starts in-flight jobs from
/// their solver checkpoints (core/checkpoint.hpp) — the batch analogue of
/// the per-solve checkpoint/restart of docs/FAULT_MODEL.md.
///
/// File format (version 1, one job object per line so the parser can stay
/// line-based; paths must not contain '"'):
///
///     {
///       "version": 1,
///       "jobs": [
///         {"job_id": 1, "outcome": "done", "attempts": 1,
///          "completed_at_seconds": 1.25, "deadline_met": true,
///          "checkpoint": "state.json.job1.ckpt"},
///         ...
///       ]
///     }
///
/// Durability and collectivity follow core/checkpoint: writes go to
/// `path + ".tmp"` and rename into place (a kill mid-write never corrupts
/// the previous manifest), all I/O runs on rank 0 of the calling
/// communicator, and rank 0's verdict is broadcast so failures throw
/// BatchManifestError on EVERY rank instead of hanging the others. Updates
/// are read-merge-rewrite under a process-wide lock: in the thread-backed
/// mpisim runtime the shards of one batch are threads of one process and
/// funnel their shard-root writes through the same file. (A real-MPI port
/// would funnel through one writer rank or per-shard files instead.)
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "mpisim/communicator.hpp"

namespace diffreg::core {

/// Raised (collectively) on unreadable, unparseable, or unwritable batch
/// manifests. Deliberately NOT a CommError: a manifest failure is an I/O
/// problem, never a transport fault the batch retry machinery should eat.
class BatchManifestError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One job's persisted state. `outcome` holds the JobOutcome name used by
/// the batch layer ("pending", "retrying", "done", "degraded", "poisoned",
/// "deadline-exceeded"); unknown names degrade to "pending" on load so a
/// newer manifest re-runs rather than wedges an older binary.
struct BatchManifestEntry {
  std::uint64_t job_id = 0;
  std::string outcome = "pending";
  int attempts = 0;
  double completed_at_seconds = 0;
  bool deadline_met = true;
  std::string checkpoint_path;
};

/// Host-side read (no communication): parses `path` into entries. A missing
/// file is an empty manifest (first run); a malformed one throws
/// BatchManifestError.
std::vector<BatchManifestEntry> read_manifest_file(const std::string& path);

/// Host-side atomic write (no communication): serializes `entries` to
/// `path + ".tmp"` and renames into place. Throws BatchManifestError when
/// the write or rename fails.
void write_manifest_file(const std::string& path,
                         const std::vector<BatchManifestEntry>& entries);

/// Collective load: rank 0 reads `path` and broadcasts the bytes; every
/// rank parses the identical payload. A missing file yields an empty
/// manifest everywhere; read failures throw BatchManifestError on every
/// rank (rank-0 verdict broadcast, like core/checkpoint).
std::vector<BatchManifestEntry> load_manifest(mpisim::Communicator& comm,
                                              const std::string& path);

/// Collective update: rank 0 merges `updates` into the manifest (matched by
/// job_id; new ids append) and rewrites it atomically, under the
/// process-wide manifest lock; the verdict is broadcast and failures throw
/// BatchManifestError on every rank. All ranks of `comm` must call together.
void update_manifest(mpisim::Communicator& comm, const std::string& path,
                     const std::vector<BatchManifestEntry>& updates);

}  // namespace diffreg::core
