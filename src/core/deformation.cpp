#include "core/deformation.hpp"

#include <limits>

namespace diffreg::core {

void jacobian_determinant(spectral::SpectralOps& ops, const VectorField& u,
                          ScalarField& det) {
  const index_t n = ops.local_size();
  det.resize(n);
  // Row d of the Jacobian of y = x + u is e_d + grad u_d.
  VectorField row0(n), row1(n), row2(n);
  ops.gradient(u[0], row0);
  ops.gradient(u[1], row1);
  ops.gradient(u[2], row2);
  for (index_t i = 0; i < n; ++i) {
    const Vec3 a{1 + row0[0][i], row0[1][i], row0[2][i]};
    const Vec3 b{row1[0][i], 1 + row1[1][i], row1[2][i]};
    const Vec3 c{row2[0][i], row2[1][i], 1 + row2[2][i]};
    det[i] = det3(a, b, c);
  }
}

void reduce_determinant_stats(grid::PencilDecomp& decomp,
                              const ScalarField& det,
                              DeformationAnalysis& out) {
  // +-inf identities: a rank owning zero points must not contribute to the
  // extrema (seeding with a sentinel like 1.0 corrupts the global min/max
  // whenever every true determinant lies on one side of it).
  real_t local_min = std::numeric_limits<real_t>::infinity();
  real_t local_max = -std::numeric_limits<real_t>::infinity();
  real_t local_sum = 0;
  for (real_t d : det) {
    local_min = std::min(local_min, d);
    local_max = std::max(local_max, d);
    local_sum += d;
  }
  auto& comm = decomp.comm();
  comm.set_time_kind(TimeKind::kOther);
  // min and -max share one vector allreduce (min(-x) = -max(x)).
  std::vector<real_t> extrema{local_min, -local_max};
  comm.allreduce_min(extrema);
  out.min_det = extrema[0];
  out.max_det = -extrema[1];
  out.mean_det = comm.allreduce_sum(local_sum) /
                 static_cast<real_t>(decomp.dims().prod());
}

DeformationAnalysis analyze_deformation(spectral::SpectralOps& ops,
                                        semilag::Transport& transport) {
  DeformationAnalysis out;
  transport.solve_displacement(out.displacement);
  jacobian_determinant(ops, out.displacement, out.det_grad_y);
  reduce_determinant_stats(ops.decomp(), out.det_grad_y, out);
  return out;
}

}  // namespace diffreg::core
