// Inexact (Gauss-)Newton-Krylov driver with Armijo line search
// (paper section III-A; the role PETSc/TAO plays in the original code).
#pragma once

#include <vector>

#include "core/optimality.hpp"
#include "core/options.hpp"

namespace diffreg::core {

struct NewtonIterationLog {
  int iteration = 0;
  real_t objective = 0;
  real_t gradient_norm = 0;
  real_t rel_gradient = 1;
  int krylov_iterations = 0;
  real_t step_length = 0;
  real_t forcing = 0;
};

struct NewtonReport {
  bool converged = false;
  int iterations = 0;
  int total_matvecs = 0;
  /// Interpolation-plan rebuilds (departure-point recomputations) the solve
  /// triggered. Every objective evaluation of a *new* velocity costs one;
  /// all PCG matvecs and the accepted-iterate re-evaluation reuse cached
  /// plans, so this stays far below total_matvecs.
  int plan_builds = 0;
  /// Guard-mode recoveries: exhausted line searches rescued by the damped
  /// steepest-descent retry (0 unless options.guard).
  int line_search_recoveries = 0;
  /// Guard-mode escalations: mixed-precision Krylov solves re-run at fp64
  /// after a breakdown or stagnation (0 unless options.guard and
  /// Precision::kMixed).
  int fp64_escalations = 0;
  real_t initial_gradient_norm = 0;
  real_t final_gradient_norm = 0;
  real_t final_objective = 0;
  std::vector<NewtonIterationLog> log;
};

/// Minimizes J over v. `v` carries the initial guess in and the solution
/// out. Collective over the decomposition's communicator.
NewtonReport newton_solve(OptimalitySystem& system, VectorField& v,
                          const RegistrationOptions& options);

}  // namespace diffreg::core
