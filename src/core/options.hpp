// User-facing configuration of the registration solver (paper section IV-A3
// lists the experiment defaults: beta = 1e-2, nt = 4, gtol = 1e-2,
// Gauss-Newton with quadratic forcing).
#pragma once

#include <functional>

#include "common/precision.hpp"
#include "core/regularization.hpp"
#include "grid/field_math.hpp"
#include "interp/kernels.hpp"

namespace diffreg::core {

/// Snapshot handed to RegistrationOptions::iterate_hook after every ACCEPTED
/// Newton iterate. Observational only: the hook must not mutate the solve.
/// The velocity pointer is valid only for the duration of the call.
struct NewtonIterateInfo {
  int iterates_done = 0;  ///< Accepted iterates so far in this solve.
  real_t gradient_reference = 0;  ///< ||g(0)|| anchor of the running solve.
  const grid::VectorField* velocity = nullptr;  ///< Current iterate.
};

enum class Forcing {
  kQuadratic,    // eta_k = min(eta_max, ||g_k|| / ||g_0||)
  kSuperlinear,  // eta_k = min(eta_max, sqrt(||g_k|| / ||g_0||))
  kConstant,     // eta_k = eta_max
};

/// Solver precision policy (CLAIRE-style mixed precision).
///   kDouble — everything fp64, bitwise identical to the historical solver.
///   kMixed  — fp32 wire format on every hot exchange (FFT transposes,
///             ghost halos, interpolation value scatter, resample remap)
///             AND fp32 storage for the inner Krylov recurrence, while the
///             outer Newton iteration (gradient, objective, line search,
///             step update) stays fp64 and re-computes the true fp64
///             residual every iterate (iterative-refinement structure).
enum class Precision {
  kDouble,
  kMixed,
};

struct RegistrationOptions {
  // Discretization.
  int nt = 4;
  interp::Method interp_method = interp::Method::kTricubic;

  // Formulation.
  real_t beta = 1e-2;
  RegType reg_type = RegType::kH2Seminorm;
  bool incompressible = false;

  // Precision policy. kDouble is the default: kMixed is opt-in (CLI
  // --precision mixed) and is only safe because the outer Newton loop stays
  // fp64 — see the README "Precision policy" section.
  Precision precision = Precision::kDouble;
  /// Wire format implied by the precision policy, consumed by every plan
  /// the solver builds (FFT, ghost exchange, interpolation, resample).
  WirePrecision wire() const {
    return precision == Precision::kMixed ? WirePrecision::kF32
                                          : WirePrecision::kF64;
  }

  /// Comm/compute overlap (CLI --overlap on). When set, every plan the
  /// solver builds (FFT transposes, ghost halos, interpolation value
  /// scatter) posts its exchanges nonblocking and runs the independent
  /// local work under their flight. The message schedule and the results
  /// are bitwise identical to the default blocking schedule — only the
  /// wire's idle time moves (into the Timings hidden-comm counters).
  bool overlap = false;

  // Newton-Krylov solver.
  bool gauss_newton = true;
  real_t gtol = 1e-2;           // relative gradient reduction
  // ||g|| at zero velocity, the reference for gtol in warm-started solves.
  // <= 0 means unknown: the solver computes it (one extra state + adjoint
  // solve) when given a warm start. Continuation drivers cache it across
  // stages on the same grid, where it is independent of beta.
  real_t gradient_reference = 0;
  int max_newton_iters = 50;
  int max_krylov_iters = 100;
  Forcing forcing = Forcing::kQuadratic;
  real_t forcing_max = 0.5;

  // Two-level coarse-grid Hessian preconditioner (opt-in; see
  // core/precond.hpp). Combines the spectral smoother (beta A)^{-1} with an
  // approximate coarse-grid Gauss-Newton Hessian inverse on the low
  // frequency band — the band where the spectral preconditioner degrades as
  // beta shrinks.
  bool two_level_precond = false;
  /// Coarse-grid floor for the preconditioner level (no axis below this).
  index_t precond_coarsest_dim = 8;
  /// Inner CG sweeps of the coarse Hessian solve per application.
  int precond_inner_iters = 5;

  // Armijo line search.
  int max_line_search = 12;
  real_t armijo_c1 = 1e-4;

  // Input preprocessing (paper section III-B1: spectral Gaussian smoothing
  // with bandwidth of about one grid cell to control aliasing).
  bool smooth_inputs = true;
  real_t smoothing_cells = 1.0;

  // Numerical safeguards (CLI --guard on; docs/FAULT_MODEL.md). Adds
  // collective finite sweeps at Newton-iterate granularity, a damped
  // steepest-descent recovery when the line search exhausts, and — under
  // Precision::kMixed — automatic per-iterate escalation to the fp64 Krylov
  // solve when the fp32 recurrence breaks down or stagnates. Off by
  // default: with guard off the solve is bitwise identical to the
  // pre-safeguard solver.
  bool guard = false;

  /// Called after every accepted Newton iterate (null: off). The
  /// checkpoint/restart driver installs this to write periodic checkpoints;
  /// tests use it to kill a run mid-level. Exceptions it throws propagate
  /// out of newton_solve — a hook that throws on every rank at the same
  /// iterate terminates the solve cleanly on all ranks.
  std::function<void(const NewtonIterateInfo&)> iterate_hook;

  bool verbose = false;
};

}  // namespace diffreg::core
