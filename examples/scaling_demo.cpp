// Strong-scaling demonstration on one node: the same synthetic registration
// problem solved with 1, 2 and 4 simulated MPI ranks, reporting the paper's
// table columns (time to solution, FFT comm/exec, interpolation comm/exec).
//
// Notes: this machine exposes 2 physical cores, so ideal speedup saturates
// at 2x; the point of the demo is that the distributed code path (pencil
// FFT transposes, ghost exchange, interpolation scatter) produces the same
// answer at every rank count while the comm/exec split shifts the way the
// paper's Tables I-IV describe.
#include <cstdio>

#include "core/diffreg.hpp"
#include "imaging/synthetic.hpp"

using namespace diffreg;

int main() {
  const Int3 dims{32, 32, 32};

  std::printf("%5s %8s %12s | %10s %10s | %10s %10s | %8s\n", "ranks", "grid",
              "time (s)", "fft comm", "fft exec", "itp comm", "itp exec",
              "rel res");

  for (int ranks : {1, 2, 4}) {
    double time = 0, rel = 0;
    Timings timings;
    auto all = mpisim::run_spmd(ranks, [&](mpisim::Communicator& comm) {
      grid::PencilDecomp decomp(comm, dims);
      spectral::SpectralOps ops(decomp);
      auto rho_t = imaging::synthetic_template(decomp);
      auto v_star = imaging::synthetic_velocity(decomp, 0.5);
      auto rho_r = imaging::make_reference(ops, rho_t, v_star);

      core::RegistrationOptions opt;
      opt.beta = 1e-2;
      opt.max_newton_iters = 5;
      core::RegistrationSolver solver(decomp, opt);
      auto result = solver.run(rho_t, rho_r);
      if (comm.is_root()) {
        time = result.time_to_solution;
        rel = result.rel_residual;
      }
    });
    for (const auto& t : all) timings.max_with(t);

    std::printf("%5d %5lld^3 %12.2f | %10.2f %10.2f | %10.2f %10.2f | %8.3f\n",
                ranks, static_cast<long long>(dims[0]), time,
                timings.get(TimeKind::kFftComm),
                timings.get(TimeKind::kFftExec),
                timings.get(TimeKind::kInterpComm),
                timings.get(TimeKind::kInterpExec), rel);
  }
  return 0;
}
